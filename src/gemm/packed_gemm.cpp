#include "gemm/packed_gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/check.h"
#include "core/env.h"
#include "core/kernels/dispatch.h"

namespace mx {
namespace gemm {

namespace {

/** GEMMs executed (relaxed: observability only). */
std::atomic<std::uint64_t> g_calls{0};

/** -1 = unresolved, else a Mode value. */
std::atomic<int> g_mode{-1};

int
env_mode()
{
    // The shared knob parser warns once on anything unrecognized —
    // this site used to map "ON", "auto " and "2" to Auto in silence.
    return core::env::enum_knob(
        "MX_GEMM", static_cast<int>(Mode::Auto),
        {{"auto", static_cast<int>(Mode::Auto)},
         {"1", static_cast<int>(Mode::On)},
         {"on", static_cast<int>(Mode::On)},
         {"true", static_cast<int>(Mode::On)},
         {"0", static_cast<int>(Mode::Off)},
         {"off", static_cast<int>(Mode::Off)},
         {"false", static_cast<int>(Mode::Off)}});
}

bool
env_verifies_gemm()
{
    return core::env::flag_knob("MX_GEMM_VERIFY", false);
}

void
check_pair(const GemmPlan& plan, const PackedOperand& a,
           const PackedOperand& b)
{
    MX_CHECK_ARG(a.valid() && b.valid(), "gemm: invalid operand");
    MX_CHECK_ARG(a.cols() == b.cols(),
                 "gemm: contraction widths differ (" << a.cols() << " vs "
                                                     << b.cols() << ")");
    MX_CHECK_ARG(a.plan().k1 == plan.a.k1 && a.plan().m == plan.a.m &&
                 b.plan().k1 == plan.b.k1 && b.plan().m == plan.b.m,
                 "gemm: operand plans do not match the GemmPlan");
}

void
check_nn(const GemmPlan& plan, const PackedOperand& a,
         std::span<const NnBlockRef> b, std::size_t ncols)
{
    MX_CHECK_ARG(a.valid(), "gemm_nn: invalid A operand");
    MX_CHECK_ARG(a.plan().k1 == plan.a.k1 && a.plan().m == plan.a.m,
                 "gemm_nn: A operand plan does not match the GemmPlan");
    MX_CHECK_ARG(ncols >= 1, "gemm_nn: empty output");
    const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
    std::size_t covered = 0;
    for (std::size_t k = 0; k < b.size(); ++k) {
        const NnBlockRef& ref = b[k];
        MX_CHECK_ARG(ref.op != nullptr && ref.op->valid(),
                     "gemm_nn: chunk " << k << " is invalid");
        MX_CHECK_ARG(ref.op->plan().k1 == plan.b.k1 &&
                     ref.op->plan().m == plan.b.m,
                     "gemm_nn: chunk " << k
                         << "'s plan does not match the GemmPlan");
        MX_CHECK_ARG(ref.op->cols() <= k1 &&
                     (k + 1 == b.size() || ref.op->cols() == k1),
                     "gemm_nn: chunk " << k << " is " << ref.op->cols()
                         << " wide; only the last chunk may be short");
        MX_CHECK_ARG(ref.row_off + ncols <= ref.op->rows(),
                     "gemm_nn: chunk " << k << " rows [" << ref.row_off
                         << ", " << ref.row_off + ncols
                         << ") exceed its " << ref.op->rows() << " rows");
        covered += ref.op->cols();
    }
    MX_CHECK_ARG(covered == a.cols(),
                 "gemm_nn: chunks cover " << covered
                     << " contraction elements, A has " << a.cols());
}

class ScalarGemmKernel final : public PackedGemmKernel
{
  public:
    const char* name() const override { return "scalar"; }

    void
    gemm(const GemmPlan& plan, const PackedOperand& a,
         const PackedOperand& b, float* c) const override
    {
        check_pair(plan, a, b);
        const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
        const std::size_t cols = a.cols();
        for (std::size_t i = 0; i < a.rows(); ++i) {
            const std::int16_t* am = a.row_mantissa(i);
            const std::uint8_t* atau = a.row_tau(i);
            const std::int16_t* aexp = a.row_exp(i);
            float* crow = c + i * b.rows();
            for (std::size_t j = 0; j < b.rows(); ++j) {
                const std::int16_t* bm = b.row_mantissa(j);
                const std::uint8_t* btau = b.row_tau(j);
                const std::int16_t* bexp = b.row_exp(j);
                float acc = 0.0f;
                std::size_t blk = 0;
                for (std::size_t off = 0; off < cols; off += k1, ++blk)
                    acc += detail::block_contrib(
                        plan, am, atau, aexp[blk], bm, btau, bexp[blk],
                        off, std::min(k1, cols - off));
                crow[j] = acc;
            }
        }
    }

    void
    gemm_nn(const GemmPlan& plan, const PackedOperand& a,
            std::span<const NnBlockRef> b, std::size_t ncols,
            float* c) const override
    {
        check_nn(plan, a, b, ncols);
        const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
        for (std::size_t i = 0; i < a.rows(); ++i) {
            const std::int16_t* am = a.row_mantissa(i);
            const std::uint8_t* atau = a.row_tau(i);
            const std::int16_t* aexp = a.row_exp(i);
            float* crow = c + i * ncols;
            for (std::size_t j = 0; j < ncols; ++j) {
                float acc = 0.0f;
                for (std::size_t k = 0; k < b.size(); ++k) {
                    const PackedOperand& chunk = *b[k].op;
                    const std::size_t br = b[k].row_off + j;
                    acc += detail::block_contrib2(
                        plan, am, atau, aexp[k], k * k1,
                        chunk.row_mantissa(br), chunk.row_tau(br),
                        chunk.row_exp(br)[0], 0, chunk.cols());
                }
                crow[j] = acc;
            }
        }
    }
};

/** Shared divergence check of a packed result against an FP64-accumulated
 *  dequantized reference (behind MX_GEMM_VERIFY=1). */
void
check_against(const tensor::Tensor& ref, const float* c)
{
    double cmax = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        cmax = std::max(cmax, std::fabs(static_cast<double>(ref.data()[i])));
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const double diff =
            std::fabs(static_cast<double>(c[i]) - ref.data()[i]);
        // The packed path accumulates across blocks in FP32 where the
        // reference accumulates in FP64; the divergence bound is a few
        // float ulps of the result magnitude per block.
        MX_CHECK(diff <= 1e-4 * std::max(cmax, 1e-30),
                 "MX_GEMM_VERIFY: packed GEMM diverged from the "
                 "dequantized reference by " << diff << " at index " << i);
    }
}

/** Dequantized-reference cross-check of the NT leg. */
void
verify_against_reference(const PackedOperand& a, const PackedOperand& b,
                         const float* c)
{
    check_against(tensor::matmul_nt(dequantize(a), dequantize(b)), c);
}

/** Dequantized-reference cross-check of the NN leg: assemble the
 *  [ncols x K] B^T grid from the chunks, then compare as an NT GEMM. */
void
verify_nn_against_reference(const PackedOperand& a,
                            std::span<const NnBlockRef> b,
                            std::size_t ncols, const float* c)
{
    tensor::Tensor bt({static_cast<std::int64_t>(ncols),
                       static_cast<std::int64_t>(a.cols())});
    std::size_t off = 0;
    for (const NnBlockRef& ref : b) {
        tensor::Tensor g = dequantize(*ref.op);
        for (std::size_t j = 0; j < ncols; ++j)
            for (std::size_t t = 0; t < ref.op->cols(); ++t)
                bt.data()[j * a.cols() + off + t] =
                    g.data()[(ref.row_off + j) * ref.op->cols() + t];
        off += ref.op->cols();
    }
    check_against(tensor::matmul_nt(dequantize(a), bt), c);
}

} // namespace

tensor::Tensor
dequantize(const PackedOperand& op)
{
    MX_CHECK_ARG(op.valid(), "gemm::dequantize: invalid operand");
    const core::kernels::QuantPlan& p = op.plan();
    tensor::Tensor t({static_cast<std::int64_t>(op.rows()),
                      static_cast<std::int64_t>(op.cols())});
    for (std::size_t r = 0; r < op.rows(); ++r) {
        const std::int16_t* mant = op.row_mantissa(r);
        const std::uint8_t* tau = op.row_tau(r);
        const std::int16_t* exp = op.row_exp(r);
        float* out = t.data() + r * op.cols();
        for (std::size_t k = 0; k < op.cols(); ++k) {
            const int e = exp[k / static_cast<std::size_t>(p.k1)] -
                          tau[k / static_cast<std::size_t>(p.k2)] -
                          (p.m - 1);
            out[k] = static_cast<float>(
                static_cast<double>(mant[k]) *
                core::kernels::detail::pow2_double(e));
        }
    }
    return t;
}

const PackedGemmKernel&
scalar_gemm_kernel()
{
    static const ScalarGemmKernel kernel;
    return kernel;
}

const PackedGemmKernel&
active_gemm_kernel()
{
    // Slaved to the quantize-kernel dispatch: same CPU probe, same
    // MX_FORCE_SCALAR override, same set_force_scalar test hook.
    const PackedGemmKernel* avx2 = avx2_gemm_kernel();
    if (avx2 != nullptr &&
        &core::kernels::active_kernel() != &core::kernels::scalar_kernel())
        return *avx2;
    return scalar_gemm_kernel();
}

Mode
mode()
{
    int m = g_mode.load(std::memory_order_acquire);
    if (m < 0) {
        // Benign race: concurrent first calls resolve identically.
        m = env_mode();
        g_mode.store(m, std::memory_order_release);
    }
    return static_cast<Mode>(m);
}

void
set_mode(Mode m)
{
    g_mode.store(static_cast<int>(m), std::memory_order_release);
}

bool
packed_profitable()
{
    return &active_gemm_kernel() != &scalar_gemm_kernel();
}

bool
route_packed(bool packed_only)
{
    switch (mode()) {
      case Mode::Off: return false;
      case Mode::On: return true;
      case Mode::Auto: return packed_only || packed_profitable();
    }
    return false;
}

std::uint64_t
call_count()
{
    return g_calls.load(std::memory_order_relaxed);
}

tensor::Tensor
matmul_nt_packed(const tensor::Tensor& x,
                 const core::kernels::QuantPlan& a_plan,
                 const PackedOperand& w, core::RoundingMode rounding)
{
    MX_CHECK_ARG(x.ndim() == 2 && w.valid() &&
                 x.dim(1) == static_cast<std::int64_t>(w.cols()),
                 "matmul_nt_packed: activation shape "
                     << x.shape_string() << " does not match packed ["
                     << w.rows() << " x " << w.cols() << "]");
    const GemmPlan plan = make_gemm_plan(a_plan, w.plan());
    core::Rounder rounder(rounding);
    const PackedOperand a = PackedOperand::quantize(
        a_plan, x.data(), static_cast<std::size_t>(x.dim(0)), w.cols(),
        rounder);
    tensor::Tensor c(
        {x.dim(0), static_cast<std::int64_t>(w.rows())});
    active_gemm_kernel().gemm(plan, a, w, c.data());
    g_calls.fetch_add(1, std::memory_order_relaxed);
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_against_reference(a, w, c.data());
    return c;
}

tensor::Tensor
matmul_nt_packed2(const tensor::Tensor& x,
                  const core::kernels::QuantPlan& a_plan,
                  const tensor::Tensor& y,
                  const core::kernels::QuantPlan& b_plan,
                  core::RoundingMode rounding)
{
    MX_CHECK_ARG(x.ndim() == 2 && y.ndim() == 2 && x.dim(1) == y.dim(1),
                 "matmul_nt_packed2: " << x.shape_string() << " x "
                                       << y.shape_string());
    const GemmPlan plan = make_gemm_plan(a_plan, b_plan);
    core::Rounder rounder(rounding);
    const PackedOperand a = PackedOperand::quantize(
        a_plan, x.data(), static_cast<std::size_t>(x.dim(0)),
        static_cast<std::size_t>(x.dim(1)), rounder);
    const PackedOperand b = PackedOperand::quantize(
        b_plan, y.data(), static_cast<std::size_t>(y.dim(0)),
        static_cast<std::size_t>(y.dim(1)), rounder);
    return matmul_nt_prequant(plan, a, b);
}

tensor::Tensor
matmul_nt_prequant(const GemmPlan& plan, const PackedOperand& a,
                   const PackedOperand& b)
{
    tensor::Tensor c({static_cast<std::int64_t>(a.rows()),
                      static_cast<std::int64_t>(b.rows())});
    active_gemm_kernel().gemm(plan, a, b, c.data());
    g_calls.fetch_add(1, std::memory_order_relaxed);
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_against_reference(a, b, c.data());
    return c;
}

tensor::Tensor
matmul_nn_packed(const GemmPlan& plan, const PackedOperand& a,
                 std::span<const NnBlockRef> b, std::size_t ncols)
{
    tensor::Tensor c({static_cast<std::int64_t>(a.rows()),
                      static_cast<std::int64_t>(ncols)});
    active_gemm_kernel().gemm_nn(plan, a, b, ncols, c.data());
    g_calls.fetch_add(1, std::memory_order_relaxed);
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_nn_against_reference(a, b, ncols, c.data());
    return c;
}

} // namespace gemm
} // namespace mx
