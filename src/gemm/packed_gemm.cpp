#include "gemm/packed_gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "core/check.h"
#include "core/env.h"
#include "core/kernels/dispatch.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "obs/obs.h"

namespace mx {
namespace gemm {

namespace {

/** GEMMs executed (relaxed: observability only). */
std::atomic<std::uint64_t> g_calls{0};

/** Count one packed GEMM in both the legacy call_count() atomic and
 *  the obs registry (the MX_METRICS / trace-counter view). */
void
count_call()
{
    g_calls.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& calls = obs::counter("gemm.calls");
    calls.add(1);
}

/** Attach the standard per-call trace args: output shape, output-tile
 *  grid size, k1 blocks per row, active SIMD tier, and an estimate of
 *  packed + output bytes touched.  Skipped entirely when tracing is
 *  off (the span is not recording). */
void
annotate_gemm_span(obs::Span& span, const GemmPlan& plan, std::size_t m,
                   std::size_t n, std::size_t k, std::size_t packed_bytes)
{
    if (!obs::trace_enabled())
        return;
    const std::size_t nti = (m + kTileRowsA - 1) / kTileRowsA;
    const std::size_t ntj = (n + kTileRowsB - 1) / kTileRowsB;
    span.arg("m", static_cast<double>(m));
    span.arg("n", static_cast<double>(n));
    span.arg("k", static_cast<double>(k));
    span.arg("tiles", static_cast<double>(nti * ntj));
    span.arg("k1_blocks", static_cast<double>(plan.blocks_per_row(k)));
    span.arg("simd", static_cast<double>(
                         core::kernels::active_simd_level()));
    span.arg("bytes", static_cast<double>(packed_bytes + m * n * 4));
}

/** -1 = unresolved, else a Mode value. */
std::atomic<int> g_mode{-1};

/** -1 = unresolved, else the MX_GEMM_THREADS lane count. */
std::atomic<long> g_gemm_threads{-1};

int
env_mode()
{
    // The shared knob parser warns once on anything unrecognized —
    // this site used to map "ON", "auto " and "2" to Auto in silence.
    return core::env::enum_knob(
        "MX_GEMM", static_cast<int>(Mode::Auto),
        {{"auto", static_cast<int>(Mode::Auto)},
         {"1", static_cast<int>(Mode::On)},
         {"on", static_cast<int>(Mode::On)},
         {"true", static_cast<int>(Mode::On)},
         {"0", static_cast<int>(Mode::Off)},
         {"off", static_cast<int>(Mode::Off)},
         {"false", static_cast<int>(Mode::Off)}});
}

bool
env_verifies_gemm()
{
    return core::env::flag_knob("MX_GEMM_VERIFY", false);
}

void
check_pair(const GemmPlan& plan, const PackedOperand& a,
           const PackedOperand& b)
{
    MX_CHECK_ARG(a.valid() && b.valid(), "gemm: invalid operand");
    MX_CHECK_ARG(a.cols() == b.cols(),
                 "gemm: contraction widths differ (" << a.cols() << " vs "
                                                     << b.cols() << ")");
    MX_CHECK_ARG(a.plan().k1 == plan.a.k1 && a.plan().m == plan.a.m &&
                 b.plan().k1 == plan.b.k1 && b.plan().m == plan.b.m,
                 "gemm: operand plans do not match the GemmPlan");
}

void
check_nn(const GemmPlan& plan, const PackedOperand& a,
         std::span<const NnBlockRef> b, std::size_t ncols)
{
    MX_CHECK_ARG(a.valid(), "gemm_nn: invalid A operand");
    MX_CHECK_ARG(a.plan().k1 == plan.a.k1 && a.plan().m == plan.a.m,
                 "gemm_nn: A operand plan does not match the GemmPlan");
    MX_CHECK_ARG(ncols >= 1, "gemm_nn: empty output");
    const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
    std::size_t covered = 0;
    for (std::size_t k = 0; k < b.size(); ++k) {
        const NnBlockRef& ref = b[k];
        MX_CHECK_ARG(ref.op != nullptr && ref.op->valid(),
                     "gemm_nn: chunk " << k << " is invalid");
        MX_CHECK_ARG(ref.op->plan().k1 == plan.b.k1 &&
                     ref.op->plan().m == plan.b.m,
                     "gemm_nn: chunk " << k
                         << "'s plan does not match the GemmPlan");
        MX_CHECK_ARG(ref.op->cols() <= k1 &&
                     (k + 1 == b.size() || ref.op->cols() == k1),
                     "gemm_nn: chunk " << k << " is " << ref.op->cols()
                         << " wide; only the last chunk may be short");
        MX_CHECK_ARG(ref.row_off + ncols <= ref.op->rows(),
                     "gemm_nn: chunk " << k << " rows [" << ref.row_off
                         << ", " << ref.row_off + ncols
                         << ") exceed its " << ref.op->rows() << " rows");
        covered += ref.op->cols();
    }
    MX_CHECK_ARG(covered == a.cols(),
                 "gemm_nn: chunks cover " << covered
                     << " contraction elements, A has " << a.cols());
}

class ScalarGemmKernel final : public PackedGemmKernel
{
  public:
    const char* name() const override { return "scalar"; }

    void
    gemm_tile(const GemmPlan& plan, const PackedOperand& a,
              const PackedOperand& b, const Tile& t, float* c,
              std::size_t ldc) const override
    {
        const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
        const std::size_t cols = a.cols();
        const std::size_t nblocks = (cols + k1 - 1) / k1;
        // kc panels outermost: the tile's B rows stay L1/L2-resident
        // across a panel instead of streaming the whole contraction
        // per output element.  Panels ascend and the intermediate C
        // load/store round-trips are exact, so each element's FP32
        // addition chain equals the streaming order.
        for (std::size_t p0 = 0; p0 < nblocks; p0 += kPanelBlocks) {
            const std::size_t p1 = std::min(nblocks, p0 + kPanelBlocks);
            const bool first = p0 == 0;
            for (std::size_t i = t.i0; i < t.i1; ++i) {
                const std::int16_t* am = a.row_mantissa(i);
                const std::uint8_t* atau = a.row_tau(i);
                const std::int16_t* aexp = a.row_exp(i);
                float* crow = c + i * ldc;
                for (std::size_t j = t.j0; j < t.j1; ++j) {
                    const std::int16_t* bm = b.row_mantissa(j);
                    const std::uint8_t* btau = b.row_tau(j);
                    const std::int16_t* bexp = b.row_exp(j);
                    float acc = first ? 0.0f : crow[j];
                    for (std::size_t blk = p0; blk < p1; ++blk) {
                        const std::size_t off = blk * k1;
                        acc += detail::block_contrib(
                            plan, am, atau, aexp[blk], bm, btau,
                            bexp[blk], off, std::min(k1, cols - off));
                    }
                    crow[j] = acc;
                }
            }
        }
    }

    void
    gemm_nn_tile(const GemmPlan& plan, const PackedOperand& a,
                 std::span<const NnBlockRef> b, const Tile& t, float* c,
                 std::size_t ldc) const override
    {
        const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
        for (std::size_t p0 = 0; p0 < b.size(); p0 += kPanelBlocks) {
            const std::size_t p1 = std::min(b.size(), p0 + kPanelBlocks);
            const bool first = p0 == 0;
            for (std::size_t i = t.i0; i < t.i1; ++i) {
                const std::int16_t* am = a.row_mantissa(i);
                const std::uint8_t* atau = a.row_tau(i);
                const std::int16_t* aexp = a.row_exp(i);
                float* crow = c + i * ldc;
                for (std::size_t j = t.j0; j < t.j1; ++j) {
                    float acc = first ? 0.0f : crow[j];
                    for (std::size_t k = p0; k < p1; ++k) {
                        const PackedOperand& chunk = *b[k].op;
                        const std::size_t br = b[k].row_off + j;
                        acc += detail::block_contrib2(
                            plan, am, atau, aexp[k], k * k1,
                            chunk.row_mantissa(br), chunk.row_tau(br),
                            chunk.row_exp(br)[0], 0, chunk.cols());
                    }
                    crow[j] = acc;
                }
            }
        }
    }
};

/**
 * The pool the blocked drivers shard tiles across.  The default lane
 * count rides the shared process pool; a pinned MX_GEMM_THREADS /
 * set_gemm_threads count gets its own cached pool (tests pin 2 and 7
 * back to back — churning pool threads per GEMM would dwarf the GEMM).
 */
/** Pinned-count pool cache behind pool_for (leaked, like the obs
 *  registries: lanes may still be draining at static destruction). */
core::Mutex g_pools_mu;
std::map<std::size_t, std::unique_ptr<core::ThreadPool>>*
    g_pools MX_GUARDED_BY(g_pools_mu) = nullptr;

core::ThreadPool&
pool_for(std::size_t threads)
{
    if (threads == core::ThreadPool::default_thread_count())
        return core::ThreadPool::shared();
    core::LockGuard lk(g_pools_mu);
    if (g_pools == nullptr)
        g_pools =
            new std::map<std::size_t, std::unique_ptr<core::ThreadPool>>;
    std::unique_ptr<core::ThreadPool>& slot = (*g_pools)[threads];
    if (slot == nullptr)
        slot = std::make_unique<core::ThreadPool>(threads);
    return *slot;
}

/**
 * Walk the FIXED (rows x cols) output-tile grid, sharding whole tiles
 * across gemm_threads() lanes.  The grid depends only on the output
 * shape — never on the thread count — and every C element lives in
 * exactly one tile, so any lane-to-tile assignment is bit-identical.
 */
template <typename TileFn>
void
run_tiled(std::size_t rows, std::size_t cols, const TileFn& run_tile)
{
    const std::size_t nti = (rows + kTileRowsA - 1) / kTileRowsA;
    const std::size_t ntj = (cols + kTileRowsB - 1) / kTileRowsB;
    const std::size_t ntiles = nti * ntj;
    const auto tile_at = [&](std::size_t t) {
        const std::size_t i0 = (t / ntj) * kTileRowsA;
        const std::size_t j0 = (t % ntj) * kTileRowsB;
        return Tile{i0, std::min(rows, i0 + kTileRowsA), j0,
                    std::min(cols, j0 + kTileRowsB)};
    };
    const std::size_t threads = gemm_threads();
    if (threads <= 1 || ntiles <= 1) {
        for (std::size_t t = 0; t < ntiles; ++t)
            run_tile(tile_at(t));
        return;
    }
    pool_for(threads).parallel_for(
        ntiles, [&](std::size_t t) { run_tile(tile_at(t)); });
}

/** The threaded whole-GEMM drivers the matmul_* entry points run. */
void
run_gemm(const PackedGemmKernel& kernel, const GemmPlan& plan,
         const PackedOperand& a, const PackedOperand& b, float* c)
{
    check_pair(plan, a, b);
    run_tiled(a.rows(), b.rows(), [&](const Tile& t) {
        kernel.gemm_tile(plan, a, b, t, c, b.rows());
    });
}

void
run_gemm_nn(const PackedGemmKernel& kernel, const GemmPlan& plan,
            const PackedOperand& a, std::span<const NnBlockRef> b,
            std::size_t ncols, float* c)
{
    check_nn(plan, a, b, ncols);
    run_tiled(a.rows(), ncols, [&](const Tile& t) {
        kernel.gemm_nn_tile(plan, a, b, t, c, ncols);
    });
}

/** Shared divergence check of a packed result against an FP64-accumulated
 *  dequantized reference (behind MX_GEMM_VERIFY=1). */
void
check_against(const tensor::Tensor& ref, const float* c)
{
    double cmax = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        cmax = std::max(cmax, std::fabs(static_cast<double>(ref.data()[i])));
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const double diff =
            std::fabs(static_cast<double>(c[i]) - ref.data()[i]);
        // The packed path accumulates across blocks in FP32 where the
        // reference accumulates in FP64; the divergence bound is a few
        // float ulps of the result magnitude per block.
        MX_CHECK(diff <= 1e-4 * std::max(cmax, 1e-30),
                 "MX_GEMM_VERIFY: packed GEMM diverged from the "
                 "dequantized reference by " << diff << " at index " << i);
    }
}

/** Dequantized-reference cross-check of the NT leg. */
void
verify_against_reference(const PackedOperand& a, const PackedOperand& b,
                         const float* c)
{
    check_against(tensor::matmul_nt(dequantize(a), dequantize(b)), c);
}

/** Dequantized-reference cross-check of the NN leg: assemble the
 *  [ncols x K] B^T grid from the chunks, then compare as an NT GEMM. */
void
verify_nn_against_reference(const PackedOperand& a,
                            std::span<const NnBlockRef> b,
                            std::size_t ncols, const float* c)
{
    tensor::Tensor bt({static_cast<std::int64_t>(ncols),
                       static_cast<std::int64_t>(a.cols())});
    std::size_t off = 0;
    for (const NnBlockRef& ref : b) {
        tensor::Tensor g = dequantize(*ref.op);
        for (std::size_t j = 0; j < ncols; ++j)
            for (std::size_t t = 0; t < ref.op->cols(); ++t)
                bt.data()[j * a.cols() + off + t] =
                    g.data()[(ref.row_off + j) * ref.op->cols() + t];
        off += ref.op->cols();
    }
    check_against(tensor::matmul_nt(dequantize(a), bt), c);
}

} // namespace

void
PackedGemmKernel::gemm(const GemmPlan& plan, const PackedOperand& a,
                       const PackedOperand& b, float* c) const
{
    check_pair(plan, a, b);
    for (std::size_t i0 = 0; i0 < a.rows(); i0 += kTileRowsA)
        for (std::size_t j0 = 0; j0 < b.rows(); j0 += kTileRowsB)
            gemm_tile(plan, a, b,
                      Tile{i0, std::min(a.rows(), i0 + kTileRowsA), j0,
                           std::min(b.rows(), j0 + kTileRowsB)},
                      c, b.rows());
}

void
PackedGemmKernel::gemm_nn(const GemmPlan& plan, const PackedOperand& a,
                          std::span<const NnBlockRef> b, std::size_t ncols,
                          float* c) const
{
    check_nn(plan, a, b, ncols);
    for (std::size_t i0 = 0; i0 < a.rows(); i0 += kTileRowsA)
        for (std::size_t j0 = 0; j0 < ncols; j0 += kTileRowsB)
            gemm_nn_tile(plan, a, b,
                         Tile{i0, std::min(a.rows(), i0 + kTileRowsA), j0,
                              std::min(ncols, j0 + kTileRowsB)},
                         c, ncols);
}

tensor::Tensor
dequantize(const PackedOperand& op)
{
    MX_CHECK_ARG(op.valid(), "gemm::dequantize: invalid operand");
    const core::kernels::QuantPlan& p = op.plan();
    tensor::Tensor t({static_cast<std::int64_t>(op.rows()),
                      static_cast<std::int64_t>(op.cols())});
    for (std::size_t r = 0; r < op.rows(); ++r) {
        const std::int16_t* mant = op.row_mantissa(r);
        const std::uint8_t* tau = op.row_tau(r);
        const std::int16_t* exp = op.row_exp(r);
        float* out = t.data() + r * op.cols();
        for (std::size_t k = 0; k < op.cols(); ++k) {
            const int e = exp[k / static_cast<std::size_t>(p.k1)] -
                          tau[k / static_cast<std::size_t>(p.k2)] -
                          (p.m - 1);
            out[k] = static_cast<float>(
                static_cast<double>(mant[k]) *
                core::kernels::detail::pow2_double(e));
        }
    }
    return t;
}

const PackedGemmKernel&
scalar_gemm_kernel()
{
    static const ScalarGemmKernel kernel;
    return kernel;
}

const PackedGemmKernel&
active_gemm_kernel()
{
    // Slaved to the quantize-kernel dispatch: same CPU probe, same
    // MX_FORCE_SCALAR / MX_FORCE_AVX2 overrides, same set_simd_level
    // test hook — the quantize and GEMM legs can never mix tiers.
    switch (core::kernels::active_simd_level()) {
      case core::kernels::SimdLevel::Avx512:
        if (const PackedGemmKernel* k = avx512_gemm_kernel())
            return *k;
        [[fallthrough]];
      case core::kernels::SimdLevel::Avx2:
        if (const PackedGemmKernel* k = avx2_gemm_kernel())
            return *k;
        [[fallthrough]];
      case core::kernels::SimdLevel::Scalar:
        break;
    }
    return scalar_gemm_kernel();
}

std::size_t
gemm_threads()
{
    long t = g_gemm_threads.load(std::memory_order_acquire);
    if (t < 0) {
        // Benign race: concurrent first calls resolve identically.
        t = static_cast<long>(core::env::size_knob(
            "MX_GEMM_THREADS", core::ThreadPool::default_thread_count(),
            /*min_value=*/1));
        g_gemm_threads.store(t, std::memory_order_release);
    }
    return static_cast<std::size_t>(t);
}

void
set_gemm_threads(std::size_t threads)
{
    g_gemm_threads.store(threads == 0 ? -1 : static_cast<long>(threads),
                         std::memory_order_release);
}

Mode
mode()
{
    int m = g_mode.load(std::memory_order_acquire);
    if (m < 0) {
        // Benign race: concurrent first calls resolve identically.
        m = env_mode();
        g_mode.store(m, std::memory_order_release);
    }
    return static_cast<Mode>(m);
}

void
set_mode(Mode m)
{
    g_mode.store(static_cast<int>(m), std::memory_order_release);
}

bool
packed_profitable()
{
    return &active_gemm_kernel() != &scalar_gemm_kernel();
}

bool
route_packed(bool packed_only)
{
    switch (mode()) {
      case Mode::Off: return false;
      case Mode::On: return true;
      case Mode::Auto: return packed_only || packed_profitable();
    }
    return false;
}

std::uint64_t
call_count()
{
    return g_calls.load(std::memory_order_relaxed);
}

tensor::Tensor
matmul_nt_packed(const tensor::Tensor& x,
                 const core::kernels::QuantPlan& a_plan,
                 const PackedOperand& w, core::RoundingMode rounding)
{
    MX_CHECK_ARG(x.ndim() == 2 && w.valid() &&
                 x.dim(1) == static_cast<std::int64_t>(w.cols()),
                 "matmul_nt_packed: activation shape "
                     << x.shape_string() << " does not match packed ["
                     << w.rows() << " x " << w.cols() << "]");
    const GemmPlan plan = make_gemm_plan(a_plan, w.plan());
    obs::Span span("gemm.nt_packed");
    core::Rounder rounder(rounding);
    const PackedOperand a = PackedOperand::quantize(
        a_plan, x.data(), static_cast<std::size_t>(x.dim(0)), w.cols(),
        rounder);
    annotate_gemm_span(span, plan, a.rows(), w.rows(), w.cols(),
                       a.memory_bytes() + w.memory_bytes());
    tensor::Tensor c(
        {x.dim(0), static_cast<std::int64_t>(w.rows())});
    run_gemm(active_gemm_kernel(), plan, a, w, c.data());
    count_call();
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_against_reference(a, w, c.data());
    return c;
}

tensor::Tensor
matmul_nt_packed2(const tensor::Tensor& x,
                  const core::kernels::QuantPlan& a_plan,
                  const tensor::Tensor& y,
                  const core::kernels::QuantPlan& b_plan,
                  core::RoundingMode rounding)
{
    MX_CHECK_ARG(x.ndim() == 2 && y.ndim() == 2 && x.dim(1) == y.dim(1),
                 "matmul_nt_packed2: " << x.shape_string() << " x "
                                       << y.shape_string());
    const GemmPlan plan = make_gemm_plan(a_plan, b_plan);
    core::Rounder rounder(rounding);
    const PackedOperand a = PackedOperand::quantize(
        a_plan, x.data(), static_cast<std::size_t>(x.dim(0)),
        static_cast<std::size_t>(x.dim(1)), rounder);
    const PackedOperand b = PackedOperand::quantize(
        b_plan, y.data(), static_cast<std::size_t>(y.dim(0)),
        static_cast<std::size_t>(y.dim(1)), rounder);
    return matmul_nt_prequant(plan, a, b);
}

tensor::Tensor
matmul_nt_prequant(const GemmPlan& plan, const PackedOperand& a,
                   const PackedOperand& b)
{
    obs::Span span("gemm.nt_prequant");
    annotate_gemm_span(span, plan, a.rows(), b.rows(), a.cols(),
                       a.memory_bytes() + b.memory_bytes());
    tensor::Tensor c({static_cast<std::int64_t>(a.rows()),
                      static_cast<std::int64_t>(b.rows())});
    run_gemm(active_gemm_kernel(), plan, a, b, c.data());
    count_call();
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_against_reference(a, b, c.data());
    return c;
}

tensor::Tensor
matmul_nn_packed(const GemmPlan& plan, const PackedOperand& a,
                 std::span<const NnBlockRef> b, std::size_t ncols)
{
    obs::Span span("gemm.nn_packed");
    if (obs::trace_enabled()) {
        std::size_t b_bytes = 0;
        for (const NnBlockRef& ref : b)
            b_bytes += ref.op->memory_bytes();
        annotate_gemm_span(span, plan, a.rows(), ncols, a.cols(),
                           a.memory_bytes() + b_bytes);
    }
    tensor::Tensor c({static_cast<std::int64_t>(a.rows()),
                      static_cast<std::int64_t>(ncols)});
    run_gemm_nn(active_gemm_kernel(), plan, a, b, ncols, c.data());
    count_call();
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_nn_against_reference(a, b, ncols, c.data());
    return c;
}

} // namespace gemm
} // namespace mx
