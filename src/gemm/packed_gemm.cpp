#include "gemm/packed_gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/check.h"
#include "core/env.h"
#include "core/kernels/dispatch.h"

namespace mx {
namespace gemm {

namespace {

/** GEMMs executed (relaxed: observability only). */
std::atomic<std::uint64_t> g_calls{0};

/** -1 = unresolved, else a Mode value. */
std::atomic<int> g_mode{-1};

int
env_mode()
{
    // The shared knob parser warns once on anything unrecognized —
    // this site used to map "ON", "auto " and "2" to Auto in silence.
    return core::env::enum_knob(
        "MX_GEMM", static_cast<int>(Mode::Auto),
        {{"auto", static_cast<int>(Mode::Auto)},
         {"1", static_cast<int>(Mode::On)},
         {"on", static_cast<int>(Mode::On)},
         {"true", static_cast<int>(Mode::On)},
         {"0", static_cast<int>(Mode::Off)},
         {"off", static_cast<int>(Mode::Off)},
         {"false", static_cast<int>(Mode::Off)}});
}

bool
env_verifies_gemm()
{
    return core::env::flag_knob("MX_GEMM_VERIFY", false);
}

void
check_pair(const GemmPlan& plan, const PackedOperand& a,
           const PackedOperand& b)
{
    MX_CHECK_ARG(a.valid() && b.valid(), "gemm: invalid operand");
    MX_CHECK_ARG(a.cols() == b.cols(),
                 "gemm: contraction widths differ (" << a.cols() << " vs "
                                                     << b.cols() << ")");
    MX_CHECK_ARG(a.plan().k1 == plan.a.k1 && a.plan().m == plan.a.m &&
                 b.plan().k1 == plan.b.k1 && b.plan().m == plan.b.m,
                 "gemm: operand plans do not match the GemmPlan");
}

class ScalarGemmKernel final : public PackedGemmKernel
{
  public:
    const char* name() const override { return "scalar"; }

    void
    gemm(const GemmPlan& plan, const PackedOperand& a,
         const PackedOperand& b, float* c) const override
    {
        check_pair(plan, a, b);
        const std::size_t k1 = static_cast<std::size_t>(plan.a.k1);
        const std::size_t cols = a.cols();
        for (std::size_t i = 0; i < a.rows(); ++i) {
            const std::int16_t* am = a.row_mantissa(i);
            const std::uint8_t* atau = a.row_tau(i);
            const std::int16_t* aexp = a.row_exp(i);
            float* crow = c + i * b.rows();
            for (std::size_t j = 0; j < b.rows(); ++j) {
                const std::int16_t* bm = b.row_mantissa(j);
                const std::uint8_t* btau = b.row_tau(j);
                const std::int16_t* bexp = b.row_exp(j);
                float acc = 0.0f;
                std::size_t blk = 0;
                for (std::size_t off = 0; off < cols; off += k1, ++blk)
                    acc += detail::block_contrib(
                        plan, am, atau, aexp[blk], bm, btau, bexp[blk],
                        off, std::min(k1, cols - off));
                crow[j] = acc;
            }
        }
    }
};

/** Dequantized-reference cross-check behind MX_GEMM_VERIFY=1. */
void
verify_against_reference(const PackedOperand& a, const PackedOperand& b,
                         const float* c)
{
    auto dequant = [](const PackedOperand& op) {
        const core::kernels::QuantPlan& p = op.plan();
        tensor::Tensor t({static_cast<std::int64_t>(op.rows()),
                          static_cast<std::int64_t>(op.cols())});
        for (std::size_t r = 0; r < op.rows(); ++r) {
            const std::int16_t* mant = op.row_mantissa(r);
            const std::uint8_t* tau = op.row_tau(r);
            const std::int16_t* exp = op.row_exp(r);
            float* out = t.data() + r * op.cols();
            for (std::size_t k = 0; k < op.cols(); ++k) {
                const int e = exp[k / static_cast<std::size_t>(p.k1)] -
                              tau[k / static_cast<std::size_t>(p.k2)] -
                              (p.m - 1);
                out[k] = static_cast<float>(
                    static_cast<double>(mant[k]) *
                    core::kernels::detail::pow2_double(e));
            }
        }
        return t;
    };
    tensor::Tensor ref = tensor::matmul_nt(dequant(a), dequant(b));
    double cmax = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        cmax = std::max(cmax, std::fabs(static_cast<double>(ref.data()[i])));
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const double diff =
            std::fabs(static_cast<double>(c[i]) - ref.data()[i]);
        // The packed path accumulates across blocks in FP32 where the
        // reference accumulates in FP64; the divergence bound is a few
        // float ulps of the result magnitude per block.
        MX_CHECK(diff <= 1e-4 * std::max(cmax, 1e-30),
                 "MX_GEMM_VERIFY: packed GEMM diverged from the "
                 "dequantized reference by " << diff << " at index " << i);
    }
}

} // namespace

const PackedGemmKernel&
scalar_gemm_kernel()
{
    static const ScalarGemmKernel kernel;
    return kernel;
}

const PackedGemmKernel&
active_gemm_kernel()
{
    // Slaved to the quantize-kernel dispatch: same CPU probe, same
    // MX_FORCE_SCALAR override, same set_force_scalar test hook.
    const PackedGemmKernel* avx2 = avx2_gemm_kernel();
    if (avx2 != nullptr &&
        &core::kernels::active_kernel() != &core::kernels::scalar_kernel())
        return *avx2;
    return scalar_gemm_kernel();
}

Mode
mode()
{
    int m = g_mode.load(std::memory_order_acquire);
    if (m < 0) {
        // Benign race: concurrent first calls resolve identically.
        m = env_mode();
        g_mode.store(m, std::memory_order_release);
    }
    return static_cast<Mode>(m);
}

void
set_mode(Mode m)
{
    g_mode.store(static_cast<int>(m), std::memory_order_release);
}

bool
packed_profitable()
{
    return &active_gemm_kernel() != &scalar_gemm_kernel();
}

bool
route_packed(bool packed_only)
{
    switch (mode()) {
      case Mode::Off: return false;
      case Mode::On: return true;
      case Mode::Auto: return packed_only || packed_profitable();
    }
    return false;
}

std::uint64_t
call_count()
{
    return g_calls.load(std::memory_order_relaxed);
}

tensor::Tensor
matmul_nt_packed(const tensor::Tensor& x,
                 const core::kernels::QuantPlan& a_plan,
                 const PackedOperand& w, core::RoundingMode rounding)
{
    MX_CHECK_ARG(x.ndim() == 2 && w.valid() &&
                 x.dim(1) == static_cast<std::int64_t>(w.cols()),
                 "matmul_nt_packed: activation shape "
                     << x.shape_string() << " does not match packed ["
                     << w.rows() << " x " << w.cols() << "]");
    const GemmPlan plan = make_gemm_plan(a_plan, w.plan());
    core::Rounder rounder(rounding);
    const PackedOperand a = PackedOperand::quantize(
        a_plan, x.data(), static_cast<std::size_t>(x.dim(0)), w.cols(),
        rounder);
    tensor::Tensor c(
        {x.dim(0), static_cast<std::int64_t>(w.rows())});
    active_gemm_kernel().gemm(plan, a, w, c.data());
    g_calls.fetch_add(1, std::memory_order_relaxed);
    static const bool verify = env_verifies_gemm();
    if (verify)
        verify_against_reference(a, w, c.data());
    return c;
}

} // namespace gemm
} // namespace mx
