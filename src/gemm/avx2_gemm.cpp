/**
 * @file
 * AVX2 PackedGemmKernel.  Bit-identical to the scalar reference by
 * construction: every step up to the one double->float rounding per
 * k1-block pair is exact integer arithmetic, so reassociating it across
 * SIMD lanes cannot change the result.
 *
 * Fast path (the MX family: k1 = 16, k2 = 2 on both sides, m <= 7 —
 * MX9/MX6/MX4 and their mx_custom neighbours):
 *   - one _mm256_madd_epi16 multiplies 16 int16 mantissa pairs and adds
 *     adjacent products, yielding all 8 k2-sub-block dot products of a
 *     block in one instruction;
 *   - the 8 combined shifts (budget - taua_s - taub_s) come from two
 *     8-byte tau loads widened to epi32, applied with _mm256_sllv_epi32
 *     (the per-sub-block shifter of Figure 6);
 *   - the 8 shifted sub-sums fit int32 by the GemmPlan headroom check
 *     and reduce horizontally to the block integer.
 * Everything else — ragged tail blocks, non-16 k1, d2 = 0 sides, wide
 * mantissas — delegates per block to detail::block_contrib, the same
 * routine the scalar kernel runs.
 *
 * This translation unit is the only one in mx_gemm compiled with
 * -mavx2; callers reach it through gemm::active_gemm_kernel(), which is
 * slaved to the core/kernels runtime CPU dispatch.
 */

#include "gemm/packed_gemm.h"

#if defined(MX_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

#include "core/check.h"

namespace mx {
namespace gemm {

namespace {

/** Horizontal sum of 8 int32 lanes (exact). */
inline std::int32_t
hsum_epi32(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

class Avx2GemmKernel final : public PackedGemmKernel
{
  public:
    const char* name() const override { return "avx2"; }

    void
    gemm(const GemmPlan& plan, const PackedOperand& a,
         const PackedOperand& b, float* c) const override
    {
        const bool fast =
            plan.a.k1 == 16 && plan.a.k2 == 2 && plan.b.k2 == 2 &&
            plan.a.d2 > 0 && plan.b.d2 > 0 &&
            // 8 shifted sub-sums summed in int32: products reach
            // 2^(ma+mb+1) per pair, << budget, x8 sub-blocks.
            plan.a.m + plan.b.m + 1 + plan.budget + 3 <= 31;
        if (!fast) {
            scalar_gemm_kernel().gemm(plan, a, b, c);
            return;
        }

        const std::size_t cols = a.cols();
        MX_CHECK_ARG(a.valid() && b.valid() && cols == b.cols() &&
                     a.plan().k1 == plan.a.k1 && a.plan().m == plan.a.m &&
                     b.plan().k1 == plan.b.k1 && b.plan().m == plan.b.m,
                     "gemm: operands do not match the GemmPlan");
        const std::size_t full = cols / 16; // whole 16-element blocks
        const std::size_t tail_off = full * 16;
        const __m256i vbudget = _mm256_set1_epi32(plan.budget);

        for (std::size_t i = 0; i < a.rows(); ++i) {
            const std::int16_t* am = a.row_mantissa(i);
            const std::uint8_t* atau = a.row_tau(i);
            const std::int16_t* aexp = a.row_exp(i);
            float* crow = c + i * b.rows();
            for (std::size_t j = 0; j < b.rows(); ++j) {
                const std::int16_t* bm = b.row_mantissa(j);
                const std::uint8_t* btau = b.row_tau(j);
                const std::int16_t* bexp = b.row_exp(j);
                float acc = 0.0f;
                for (std::size_t blk = 0; blk < full; ++blk) {
                    const std::size_t off = blk * 16;
                    // 8 sub-block dot products in one madd.
                    const __m256i ma = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(am + off));
                    const __m256i mb = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bm + off));
                    const __m256i dots = _mm256_madd_epi16(ma, mb);
                    // Per-sub-block shifts from the two tau streams.
                    const __m256i ta = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        reinterpret_cast<const __m128i*>(atau + off / 2)));
                    const __m256i tb = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        reinterpret_cast<const __m128i*>(btau + off / 2)));
                    const __m256i shift = _mm256_sub_epi32(
                        vbudget, _mm256_add_epi32(ta, tb));
                    const __m256i aligned = _mm256_sllv_epi32(dots, shift);
                    const std::int64_t blki = hsum_epi32(aligned);
                    acc += static_cast<float>(
                        static_cast<double>(blki) *
                        core::kernels::detail::pow2_double(
                            aexp[blk] + bexp[blk] - plan.exp_bias));
                }
                if (tail_off < cols)
                    acc += detail::block_contrib(plan, am, atau,
                                                 aexp[full], bm, btau,
                                                 bexp[full], tail_off,
                                                 cols - tail_off);
                crow[j] = acc;
            }
        }
    }

    void
    gemm_nn(const GemmPlan& plan, const PackedOperand& a,
            std::span<const NnBlockRef> b, std::size_t ncols,
            float* c) const override
    {
        const bool fast =
            plan.a.k1 == 16 && plan.a.k2 == 2 && plan.b.k2 == 2 &&
            plan.a.d2 > 0 && plan.b.d2 > 0 &&
            plan.a.m + plan.b.m + 1 + plan.budget + 3 <= 31;
        if (!fast) {
            scalar_gemm_kernel().gemm_nn(plan, a, b, ncols, c);
            return;
        }

        // Same validation as the scalar leg (cheap relative to the
        // O(M * N * K) work below); a full chunk is exactly one
        // 16-element block, so its row views are the madd inputs.
        scalar_validate_nn(a, b, ncols);
        const std::size_t full_chunks =
            !b.empty() && b.back().op->cols() == 16 ? b.size()
                                                    : b.size() - 1;
        const __m256i vbudget = _mm256_set1_epi32(plan.budget);

        for (std::size_t i = 0; i < a.rows(); ++i) {
            const std::int16_t* am = a.row_mantissa(i);
            const std::uint8_t* atau = a.row_tau(i);
            const std::int16_t* aexp = a.row_exp(i);
            float* crow = c + i * ncols;
            for (std::size_t j = 0; j < ncols; ++j) {
                float acc = 0.0f;
                for (std::size_t k = 0; k < full_chunks; ++k) {
                    const PackedOperand& chunk = *b[k].op;
                    const std::size_t br = b[k].row_off + j;
                    const __m256i ma = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(am + k * 16));
                    const __m256i mb = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(
                            chunk.row_mantissa(br)));
                    const __m256i dots = _mm256_madd_epi16(ma, mb);
                    const __m256i ta = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        reinterpret_cast<const __m128i*>(atau + k * 8)));
                    const __m256i tb = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        reinterpret_cast<const __m128i*>(
                            chunk.row_tau(br))));
                    const __m256i shift = _mm256_sub_epi32(
                        vbudget, _mm256_add_epi32(ta, tb));
                    const __m256i aligned = _mm256_sllv_epi32(dots, shift);
                    const std::int64_t blki = hsum_epi32(aligned);
                    acc += static_cast<float>(
                        static_cast<double>(blki) *
                        core::kernels::detail::pow2_double(
                            aexp[k] + chunk.row_exp(br)[0] -
                            plan.exp_bias));
                }
                if (full_chunks < b.size()) {
                    const PackedOperand& tailc = *b.back().op;
                    const std::size_t br = b.back().row_off + j;
                    acc += detail::block_contrib2(
                        plan, am, atau, aexp[full_chunks],
                        full_chunks * 16, tailc.row_mantissa(br),
                        tailc.row_tau(br), tailc.row_exp(br)[0], 0,
                        tailc.cols());
                }
                crow[j] = acc;
            }
        }
    }

  private:
    /** Re-run the scalar kernel's argument validation (shared checks
     *  live in packed_gemm.cpp's anonymous namespace): a 1x1 probe on
     *  the chunk structure through the reference path would cost a full
     *  GEMM, so mirror the cheap structural checks here instead. */
    static void
    scalar_validate_nn(const PackedOperand& a,
                       std::span<const NnBlockRef> b, std::size_t ncols)
    {
        MX_CHECK_ARG(a.valid() && ncols >= 1 && !b.empty(),
                     "gemm_nn: invalid operands");
        std::size_t covered = 0;
        for (std::size_t k = 0; k < b.size(); ++k) {
            const NnBlockRef& ref = b[k];
            MX_CHECK_ARG(ref.op != nullptr && ref.op->valid() &&
                         ref.op->cols() <= 16 &&
                         (k + 1 == b.size() || ref.op->cols() == 16) &&
                         ref.row_off + ncols <= ref.op->rows(),
                         "gemm_nn: malformed chunk " << k);
            covered += ref.op->cols();
        }
        MX_CHECK_ARG(covered == a.cols(),
                     "gemm_nn: chunks cover " << covered
                         << " contraction elements, A has " << a.cols());
    }
};

} // namespace

const PackedGemmKernel*
avx2_gemm_kernel()
{
    static const Avx2GemmKernel kernel;
    return &kernel;
}

} // namespace gemm
} // namespace mx

#else // !MX_HAVE_AVX2

namespace mx {
namespace gemm {

const PackedGemmKernel*
avx2_gemm_kernel()
{
    return nullptr;
}

} // namespace gemm
} // namespace mx

#endif // MX_HAVE_AVX2
