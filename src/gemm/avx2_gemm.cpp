/**
 * @file
 * AVX2 PackedGemmKernel.  Bit-identical to the scalar reference by
 * construction: every step up to the one double->float rounding per
 * k1-block pair is exact integer arithmetic, so reassociating it across
 * SIMD lanes cannot change the result.
 *
 * Fast path (detail::simd_fast_path — the MX family: k1 = 16, k2 = 2 on
 * both sides, m <= 7 — MX9/MX6/MX4 and their mx_custom neighbours):
 *   - one _mm256_madd_epi16 multiplies 16 int16 mantissa pairs and adds
 *     adjacent products, yielding all 8 k2-sub-block dot products of a
 *     block in one instruction;
 *   - the 8 combined shifts (budget - taua_s - taub_s) come from two
 *     8-byte tau loads widened to epi32, applied with _mm256_sllv_epi32
 *     (the per-sub-block shifter of Figure 6);
 *   - the 8 shifted sub-sums fit int32 by the GemmPlan headroom check
 *     and reduce horizontally to the block integer.
 *
 * The tile microkernel is register-blocked: kRegCols output columns per
 * pass share each A-side mantissa/tau load while their FP32 partial
 * sums stay in registers, and the kc panel loop (kPanelBlocks) keeps
 * the register block's B rows cache-resident across the sweep.
 * Everything off the fast path — ragged tail blocks, non-16 k1, d2 = 0
 * sides, wide mantissas — delegates to the scalar tile kernel or
 * detail::block_contrib, the same code the reference runs.
 *
 * This translation unit is the only one in mx_gemm compiled with
 * -mavx2; callers reach it through gemm::active_gemm_kernel(), which is
 * slaved to the core/kernels runtime CPU dispatch.
 */

#include "gemm/packed_gemm.h"

#if defined(MX_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace mx {
namespace gemm {

namespace {

/** Horizontal sum of 8 int32 lanes (exact). */
inline std::int32_t
hsum_epi32(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

/** Output columns per register block (the microkernel's j unroll). */
constexpr std::size_t kRegCols = 4;

/** A block's 16 int16 mantissas. */
inline __m256i
load_mant(const std::int16_t* p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

/** A block's 8 tau bytes, widened to epi32 shift counts. */
inline __m256i
load_tau(const std::uint8_t* p)
{
    return _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

class Avx2GemmKernel final : public PackedGemmKernel
{
  public:
    const char* name() const override { return "avx2"; }

    void
    gemm_tile(const GemmPlan& plan, const PackedOperand& a,
              const PackedOperand& b, const Tile& t, float* c,
              std::size_t ldc) const override
    {
        if (!detail::simd_fast_path(plan)) {
            scalar_gemm_kernel().gemm_tile(plan, a, b, t, c, ldc);
            return;
        }
        const std::size_t cols = a.cols();
        const std::size_t full = cols / 16; // whole 16-element blocks
        const std::size_t nblocks = (cols + 15) / 16;
        const __m256i vbudget = _mm256_set1_epi32(plan.budget);

        for (std::size_t p0 = 0; p0 < nblocks; p0 += kPanelBlocks) {
            const std::size_t p1 = std::min(nblocks, p0 + kPanelBlocks);
            const std::size_t pfull = std::min(p1, full);
            const bool first = p0 == 0;
            for (std::size_t i = t.i0; i < t.i1; ++i) {
                const std::int16_t* am = a.row_mantissa(i);
                const std::uint8_t* atau = a.row_tau(i);
                const std::int16_t* aexp = a.row_exp(i);
                float* crow = c + i * ldc;
                for (std::size_t j0 = t.j0; j0 < t.j1; j0 += kRegCols) {
                    const std::size_t jn = std::min(kRegCols, t.j1 - j0);
                    const std::int16_t* bm[kRegCols];
                    const std::uint8_t* btau[kRegCols];
                    const std::int16_t* bexp[kRegCols];
                    float acc[kRegCols];
                    for (std::size_t jj = 0; jj < jn; ++jj) {
                        bm[jj] = b.row_mantissa(j0 + jj);
                        btau[jj] = b.row_tau(j0 + jj);
                        bexp[jj] = b.row_exp(j0 + jj);
                        acc[jj] = first ? 0.0f : crow[j0 + jj];
                    }
                    for (std::size_t blk = p0; blk < pfull; ++blk) {
                        const std::size_t off = blk * 16;
                        const __m256i ma = load_mant(am + off);
                        const __m256i ta = load_tau(atau + off / 2);
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const __m256i dots = _mm256_madd_epi16(
                                ma, load_mant(bm[jj] + off));
                            const __m256i shift = _mm256_sub_epi32(
                                vbudget,
                                _mm256_add_epi32(
                                    ta, load_tau(btau[jj] + off / 2)));
                            const std::int64_t blki =
                                hsum_epi32(_mm256_sllv_epi32(dots, shift));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(blki) *
                                core::kernels::detail::pow2_double(
                                    aexp[blk] + bexp[jj][blk] -
                                    plan.exp_bias));
                        }
                    }
                    // The ragged tail block (index `full`) lives in the
                    // last panel, after its full blocks: order ascends.
                    if (p1 > full)
                        for (std::size_t jj = 0; jj < jn; ++jj)
                            acc[jj] += detail::block_contrib(
                                plan, am, atau, aexp[full], bm[jj],
                                btau[jj], bexp[jj][full], full * 16,
                                cols - full * 16);
                    for (std::size_t jj = 0; jj < jn; ++jj)
                        crow[j0 + jj] = acc[jj];
                }
            }
        }
    }

    void
    gemm_nn_tile(const GemmPlan& plan, const PackedOperand& a,
                 std::span<const NnBlockRef> b, const Tile& t, float* c,
                 std::size_t ldc) const override
    {
        if (!detail::simd_fast_path(plan)) {
            scalar_gemm_kernel().gemm_nn_tile(plan, a, b, t, c, ldc);
            return;
        }
        // A full chunk is exactly one 16-element block, so its row
        // views are the madd inputs.
        const std::size_t full_chunks =
            !b.empty() && b.back().op->cols() == 16 ? b.size()
                                                    : b.size() - 1;
        const __m256i vbudget = _mm256_set1_epi32(plan.budget);

        for (std::size_t p0 = 0; p0 < b.size(); p0 += kPanelBlocks) {
            const std::size_t p1 = std::min(b.size(), p0 + kPanelBlocks);
            const std::size_t pfull = std::min(p1, full_chunks);
            const bool first = p0 == 0;
            for (std::size_t i = t.i0; i < t.i1; ++i) {
                const std::int16_t* am = a.row_mantissa(i);
                const std::uint8_t* atau = a.row_tau(i);
                const std::int16_t* aexp = a.row_exp(i);
                float* crow = c + i * ldc;
                for (std::size_t j0 = t.j0; j0 < t.j1; j0 += kRegCols) {
                    const std::size_t jn = std::min(kRegCols, t.j1 - j0);
                    float acc[kRegCols];
                    for (std::size_t jj = 0; jj < jn; ++jj)
                        acc[jj] = first ? 0.0f : crow[j0 + jj];
                    for (std::size_t k = p0; k < pfull; ++k) {
                        const PackedOperand& chunk = *b[k].op;
                        const std::size_t br0 = b[k].row_off + j0;
                        const __m256i ma = load_mant(am + k * 16);
                        const __m256i ta = load_tau(atau + k * 8);
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const std::size_t br = br0 + jj;
                            const __m256i dots = _mm256_madd_epi16(
                                ma, load_mant(chunk.row_mantissa(br)));
                            const __m256i shift = _mm256_sub_epi32(
                                vbudget,
                                _mm256_add_epi32(
                                    ta, load_tau(chunk.row_tau(br))));
                            const std::int64_t blki =
                                hsum_epi32(_mm256_sllv_epi32(dots, shift));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(blki) *
                                core::kernels::detail::pow2_double(
                                    aexp[k] + chunk.row_exp(br)[0] -
                                    plan.exp_bias));
                        }
                    }
                    if (p1 > full_chunks) {
                        const PackedOperand& tailc = *b.back().op;
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const std::size_t br =
                                b.back().row_off + j0 + jj;
                            acc[jj] += detail::block_contrib2(
                                plan, am, atau, aexp[full_chunks],
                                full_chunks * 16, tailc.row_mantissa(br),
                                tailc.row_tau(br), tailc.row_exp(br)[0],
                                0, tailc.cols());
                        }
                    }
                    for (std::size_t jj = 0; jj < jn; ++jj)
                        crow[j0 + jj] = acc[jj];
                }
            }
        }
    }
};

} // namespace

const PackedGemmKernel*
avx2_gemm_kernel()
{
    static const Avx2GemmKernel kernel;
    return &kernel;
}

} // namespace gemm
} // namespace mx

#else // !MX_HAVE_AVX2

namespace mx {
namespace gemm {

const PackedGemmKernel*
avx2_gemm_kernel()
{
    return nullptr;
}

} // namespace gemm
} // namespace mx

#endif // MX_HAVE_AVX2
