#pragma once

/**
 * @file
 * The integer execution view of a packed MX/BFP matrix operand.
 *
 * The packed bit stream (formats/block_codec.h layout) is the storage
 * form; a PackedOperand is the same information laid out for the
 * Figure 6 dot-product pipeline to consume directly: int16 mantissas
 * (row-major, SIMD-friendly), per-sub-block shifts at the operand's own
 * k2 granularity, and per-block shared exponents.  Nothing here is a
 * dequantized float — the view stays in the integer domain, which is
 * what lets the packed GEMM run without ever materializing an FP32
 * copy of the operand.
 *
 * Two builders cover both GEMM operands:
 *  - decode():   bit stream -> view (weights, built once at freeze);
 *  - quantize(): floats -> view through the dispatched QuantKernel
 *                (activations, built per call — the same quantization
 *                the fake-quant path applies, captured as encodings
 *                instead of being rounded back to floats).
 *
 * Rows are independent: blocks never straddle a row boundary (the
 * nn::quantize_rows contract), every row occupies the same number of
 * stream bits, and row_bit_offset() exposes the per-row offsets so
 * ragged widths (rows ending in a short tail block) need no re-plan.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/quant_kernel.h"
#include "core/rounding.h"

namespace mx {
namespace gemm {

/** Decoded [rows x cols] operand in the packed-GEMM execution layout. */
class PackedOperand
{
  public:
    PackedOperand() = default;

    /**
     * Decode a packed pow2-block stream (the exact
     * formats/block_codec.h layout quantize_pack_rows emits) into the
     * execution view.  @p bytes must hold rows * row_bits(plan, cols)
     * bits.  The span is only read during the call — a view into a
     * read-only artifact mapping works (the operand owns its arrays).
     */
    static PackedOperand decode(const core::kernels::QuantPlan& plan,
                                std::span<const std::uint8_t> bytes,
                                std::size_t rows, std::size_t cols);

    /**
     * Decode a *byte-aligned* row stream: row r starts at byte offset
     * r * row_stream_bytes(plan, cols), with the final partial byte of
     * each row zero-padded (the pack_rows_aligned layout).  This is the
     * storage form of the native MX K/V cache — byte alignment is what
     * makes per-token append a memcpy and prefix truncation a resize,
     * at a cost of at most 7 pad bits per row.
     */
    static PackedOperand decode_rows(const core::kernels::QuantPlan& plan,
                                     std::span<const std::uint8_t> bytes,
                                     std::size_t rows, std::size_t cols);

    /**
     * Quantize a float matrix straight into the execution view through
     * the dispatched QuantKernel — the activation-side builder.  The
     * integer encodings are identical to what quantize_rows would
     * produce before its final dequantize-to-grid step.
     */
    static PackedOperand quantize(const core::kernels::QuantPlan& plan,
                                  const float* x, std::size_t rows,
                                  std::size_t cols,
                                  const core::Rounder& rounder);

    /** True once a builder has run. */
    bool valid() const { return rows_ > 0 && cols_ > 0; }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    const core::kernels::QuantPlan& plan() const { return plan_; }

    /** k1-blocks per row (the last may be a short tail). */
    std::size_t blocks_per_row() const { return blocks_per_row_; }
    /** k2 sub-blocks per row (zero-filled when d2 == 0). */
    std::size_t subs_per_row() const { return subs_per_row_; }

    /** Row @p r's mantissas (cols entries, |M| <= 2^m - 1). */
    const std::int16_t*
    row_mantissa(std::size_t r) const
    {
        return mantissa_.data() + r * cols_;
    }

    /** Row @p r's sub-block shifts (subs_per_row() entries). */
    const std::uint8_t*
    row_tau(std::size_t r) const
    {
        return tau_.data() + r * subs_per_row_;
    }

    /** Row @p r's shared exponents (blocks_per_row() entries). */
    const std::int16_t*
    row_exp(std::size_t r) const
    {
        return exp_.data() + r * blocks_per_row_;
    }

    /** Bit offset of row @p r inside the source packed stream (every
     *  row occupies the same number of bits, ragged tail included). */
    std::size_t row_bit_offset(std::size_t r) const;

    /** Heap bytes held by the view (the serving-memory number the
     *  bench reports next to 32-bit floats and the packed stream). */
    std::size_t memory_bytes() const;

  private:
    PackedOperand(const core::kernels::QuantPlan& plan, std::size_t rows,
                  std::size_t cols);

    core::kernels::QuantPlan plan_;
    std::size_t rows_ = 0, cols_ = 0;
    std::size_t blocks_per_row_ = 0, subs_per_row_ = 0;
    std::vector<std::int16_t> mantissa_; ///< rows x cols
    std::vector<std::uint8_t> tau_;      ///< rows x subs_per_row
    std::vector<std::int16_t> exp_;      ///< rows x blocks_per_row
};

/** Stream bits of one row of @p cols elements under @p plan (the
 *  per-row stride behind PackedOperand::row_bit_offset). */
std::size_t row_bits(const core::kernels::QuantPlan& plan,
                     std::size_t cols);

/** Byte stride of one row in a byte-aligned row stream (the
 *  pack_rows_aligned / decode_rows layout): ceil(row_bits / 8). */
std::size_t row_stream_bytes(const core::kernels::QuantPlan& plan,
                             std::size_t cols);

/**
 * Quantize+pack @p rows rows of @p cols floats, appending each row's
 * packed bits to @p out at a byte-aligned offset (zero-padding the
 * row's final partial byte).  The append form of the native MX K/V
 * cache: quantize once when a token arrives, then only bytes move.
 * Grows @p out by rows * row_stream_bytes(plan, cols).
 */
void pack_rows_aligned(const core::kernels::QuantPlan& plan,
                       const float* x, std::size_t rows, std::size_t cols,
                       const core::Rounder& rounder,
                       std::vector<std::uint8_t>& out);

} // namespace gemm
} // namespace mx
