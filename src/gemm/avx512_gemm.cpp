/**
 * @file
 * AVX-512/VNNI PackedGemmKernel.  Bit-identical to the scalar and AVX2
 * kernels by construction — the same exact-integer argument (every step
 * up to the one double->float rounding per k1-block pair is exact), now
 * applied across 512-bit lanes.
 *
 * Fast path (detail::simd_fast_path, shared with AVX2): TWO k1 = 16
 * blocks per 512-bit op —
 *   - one _mm512_dpwssd_epi32 against a zero accumulator multiplies 32
 *     int16 mantissa pairs and adds adjacent products, yielding all 16
 *     k2-sub-block dot products of a block PAIR in one instruction
 *     (VNNI's fused multiply-accumulate; with a zero source it is
 *     exactly the 512-bit madd);
 *   - the 16 combined shifts come from 16-byte tau loads widened to
 *     epi32, applied with _mm512_sllv_epi32;
 *   - the two blocks reduce separately — a 256-bit horizontal sum per
 *     half, in block order — because each block carries its own shared
 *     exponent; the int32 headroom guarantee is per block, unchanged.
 * An odd trailing full block runs the 256-bit single-block step; ragged
 * tails and non-fast plans delegate to detail::block_contrib / the
 * scalar tile kernel, exactly like the AVX2 leg.
 *
 * The NN leg's chunk rows live in different PackedOperands, so a block
 * pair's B-side 512-bit vector is assembled from two 256-bit row loads
 * (insert) and its taus from two 8-byte loads (unpack) — the A side
 * and the arithmetic stay full-width.
 *
 * Register blocking and kc panels mirror the AVX2 microkernel
 * (kRegCols output columns share each A-side load; kPanelBlocks keeps
 * the register block's B rows cache-resident).
 *
 * This translation unit is the only one in mx_gemm compiled with
 * -mavx512f/-mavx512bw/-mavx512vnni; callers reach it through
 * gemm::active_gemm_kernel(), which is slaved to the core/kernels
 * runtime CPU dispatch (the probe requires avx512f, avx512bw and
 * avx512vnni before this kernel is ever selected).
 */

#include "gemm/packed_gemm.h"

#if defined(MX_HAVE_AVX512)

#include <immintrin.h>

#include <algorithm>

namespace mx {
namespace gemm {

namespace {

/** Horizontal sum of 8 int32 lanes (exact). */
inline std::int32_t
hsum_epi32(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

/** Output columns per register block (the microkernel's j unroll). */
constexpr std::size_t kRegCols = 4;

/** A block pair's 32 int16 mantissas. */
inline __m512i
load_mant2(const std::int16_t* p)
{
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

/** A block pair's 16 tau bytes, widened to epi32 shift counts. */
inline __m512i
load_tau2(const std::uint8_t* p)
{
    return _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/** A single block's 16 int16 mantissas (the odd-block step). */
inline __m256i
load_mant1(const std::int16_t* p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

/** A single block's 8 tau bytes, widened to epi32. */
inline __m256i
load_tau1(const std::uint8_t* p)
{
    return _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

class Avx512GemmKernel final : public PackedGemmKernel
{
  public:
    const char* name() const override { return "avx512"; }

    void
    gemm_tile(const GemmPlan& plan, const PackedOperand& a,
              const PackedOperand& b, const Tile& t, float* c,
              std::size_t ldc) const override
    {
        if (!detail::simd_fast_path(plan)) {
            scalar_gemm_kernel().gemm_tile(plan, a, b, t, c, ldc);
            return;
        }
        const std::size_t cols = a.cols();
        const std::size_t full = cols / 16; // whole 16-element blocks
        const std::size_t nblocks = (cols + 15) / 16;
        const __m512i vbudget2 = _mm512_set1_epi32(plan.budget);
        const __m256i vbudget1 = _mm256_set1_epi32(plan.budget);
        const __m512i zero = _mm512_setzero_si512();

        for (std::size_t p0 = 0; p0 < nblocks; p0 += kPanelBlocks) {
            const std::size_t p1 = std::min(nblocks, p0 + kPanelBlocks);
            const std::size_t pfull = std::min(p1, full);
            const bool first = p0 == 0;
            for (std::size_t i = t.i0; i < t.i1; ++i) {
                const std::int16_t* am = a.row_mantissa(i);
                const std::uint8_t* atau = a.row_tau(i);
                const std::int16_t* aexp = a.row_exp(i);
                float* crow = c + i * ldc;
                for (std::size_t j0 = t.j0; j0 < t.j1; j0 += kRegCols) {
                    const std::size_t jn = std::min(kRegCols, t.j1 - j0);
                    const std::int16_t* bm[kRegCols];
                    const std::uint8_t* btau[kRegCols];
                    const std::int16_t* bexp[kRegCols];
                    float acc[kRegCols];
                    for (std::size_t jj = 0; jj < jn; ++jj) {
                        bm[jj] = b.row_mantissa(j0 + jj);
                        btau[jj] = b.row_tau(j0 + jj);
                        bexp[jj] = b.row_exp(j0 + jj);
                        acc[jj] = first ? 0.0f : crow[j0 + jj];
                    }
                    std::size_t blk = p0;
                    for (; blk + 2 <= pfull; blk += 2) {
                        const std::size_t off = blk * 16;
                        const __m512i ma = load_mant2(am + off);
                        const __m512i ta = load_tau2(atau + off / 2);
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const __m512i dots = _mm512_dpwssd_epi32(
                                zero, ma, load_mant2(bm[jj] + off));
                            const __m512i shift = _mm512_sub_epi32(
                                vbudget2,
                                _mm512_add_epi32(
                                    ta, load_tau2(btau[jj] + off / 2)));
                            const __m512i aligned =
                                _mm512_sllv_epi32(dots, shift);
                            // One hsum per block — each block carries
                            // its own exponent pair, and the per-block
                            // reduction order matches the scalar chain.
                            const std::int64_t lo = hsum_epi32(
                                _mm512_castsi512_si256(aligned));
                            const std::int64_t hi = hsum_epi32(
                                _mm512_extracti64x4_epi64(aligned, 1));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(lo) *
                                core::kernels::detail::pow2_double(
                                    aexp[blk] + bexp[jj][blk] -
                                    plan.exp_bias));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(hi) *
                                core::kernels::detail::pow2_double(
                                    aexp[blk + 1] + bexp[jj][blk + 1] -
                                    plan.exp_bias));
                        }
                    }
                    if (blk < pfull) { // odd trailing full block
                        const std::size_t off = blk * 16;
                        const __m256i ma = load_mant1(am + off);
                        const __m256i ta = load_tau1(atau + off / 2);
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const __m256i dots = _mm256_madd_epi16(
                                ma, load_mant1(bm[jj] + off));
                            const __m256i shift = _mm256_sub_epi32(
                                vbudget1,
                                _mm256_add_epi32(
                                    ta, load_tau1(btau[jj] + off / 2)));
                            const std::int64_t blki =
                                hsum_epi32(_mm256_sllv_epi32(dots, shift));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(blki) *
                                core::kernels::detail::pow2_double(
                                    aexp[blk] + bexp[jj][blk] -
                                    plan.exp_bias));
                        }
                    }
                    if (p1 > full) // ragged tail block, always last
                        for (std::size_t jj = 0; jj < jn; ++jj)
                            acc[jj] += detail::block_contrib(
                                plan, am, atau, aexp[full], bm[jj],
                                btau[jj], bexp[jj][full], full * 16,
                                cols - full * 16);
                    for (std::size_t jj = 0; jj < jn; ++jj)
                        crow[j0 + jj] = acc[jj];
                }
            }
        }
    }

    void
    gemm_nn_tile(const GemmPlan& plan, const PackedOperand& a,
                 std::span<const NnBlockRef> b, const Tile& t, float* c,
                 std::size_t ldc) const override
    {
        if (!detail::simd_fast_path(plan)) {
            scalar_gemm_kernel().gemm_nn_tile(plan, a, b, t, c, ldc);
            return;
        }
        // A full chunk is exactly one 16-element block.
        const std::size_t full_chunks =
            !b.empty() && b.back().op->cols() == 16 ? b.size()
                                                    : b.size() - 1;
        const __m512i vbudget2 = _mm512_set1_epi32(plan.budget);
        const __m256i vbudget1 = _mm256_set1_epi32(plan.budget);
        const __m512i zero = _mm512_setzero_si512();

        for (std::size_t p0 = 0; p0 < b.size(); p0 += kPanelBlocks) {
            const std::size_t p1 = std::min(b.size(), p0 + kPanelBlocks);
            const std::size_t pfull = std::min(p1, full_chunks);
            const bool first = p0 == 0;
            for (std::size_t i = t.i0; i < t.i1; ++i) {
                const std::int16_t* am = a.row_mantissa(i);
                const std::uint8_t* atau = a.row_tau(i);
                const std::int16_t* aexp = a.row_exp(i);
                float* crow = c + i * ldc;
                for (std::size_t j0 = t.j0; j0 < t.j1; j0 += kRegCols) {
                    const std::size_t jn = std::min(kRegCols, t.j1 - j0);
                    float acc[kRegCols];
                    for (std::size_t jj = 0; jj < jn; ++jj)
                        acc[jj] = first ? 0.0f : crow[j0 + jj];
                    std::size_t k = p0;
                    for (; k + 2 <= pfull; k += 2) {
                        // Chunk pair: the A side is contiguous, the two
                        // B rows come from different operands — insert
                        // them into one 512-bit vector.
                        const PackedOperand& c0 = *b[k].op;
                        const PackedOperand& c1 = *b[k + 1].op;
                        const std::size_t br0 = b[k].row_off + j0;
                        const std::size_t br1 = b[k + 1].row_off + j0;
                        const __m512i ma = load_mant2(am + k * 16);
                        const __m512i ta = load_tau2(atau + k * 8);
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const __m512i mb = _mm512_inserti64x4(
                                _mm512_castsi256_si512(load_mant1(
                                    c0.row_mantissa(br0 + jj))),
                                load_mant1(c1.row_mantissa(br1 + jj)), 1);
                            const __m128i tb8 = _mm_unpacklo_epi64(
                                _mm_loadl_epi64(
                                    reinterpret_cast<const __m128i*>(
                                        c0.row_tau(br0 + jj))),
                                _mm_loadl_epi64(
                                    reinterpret_cast<const __m128i*>(
                                        c1.row_tau(br1 + jj))));
                            const __m512i dots =
                                _mm512_dpwssd_epi32(zero, ma, mb);
                            const __m512i shift = _mm512_sub_epi32(
                                vbudget2,
                                _mm512_add_epi32(
                                    ta, _mm512_cvtepu8_epi32(tb8)));
                            const __m512i aligned =
                                _mm512_sllv_epi32(dots, shift);
                            const std::int64_t lo = hsum_epi32(
                                _mm512_castsi512_si256(aligned));
                            const std::int64_t hi = hsum_epi32(
                                _mm512_extracti64x4_epi64(aligned, 1));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(lo) *
                                core::kernels::detail::pow2_double(
                                    aexp[k] + c0.row_exp(br0 + jj)[0] -
                                    plan.exp_bias));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(hi) *
                                core::kernels::detail::pow2_double(
                                    aexp[k + 1] +
                                    c1.row_exp(br1 + jj)[0] -
                                    plan.exp_bias));
                        }
                    }
                    if (k < pfull) { // odd trailing full chunk
                        const PackedOperand& chunk = *b[k].op;
                        const std::size_t br0 = b[k].row_off + j0;
                        const __m256i ma = load_mant1(am + k * 16);
                        const __m256i ta = load_tau1(atau + k * 8);
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const std::size_t br = br0 + jj;
                            const __m256i dots = _mm256_madd_epi16(
                                ma, load_mant1(chunk.row_mantissa(br)));
                            const __m256i shift = _mm256_sub_epi32(
                                vbudget1,
                                _mm256_add_epi32(
                                    ta, load_tau1(chunk.row_tau(br))));
                            const std::int64_t blki =
                                hsum_epi32(_mm256_sllv_epi32(dots, shift));
                            acc[jj] += static_cast<float>(
                                static_cast<double>(blki) *
                                core::kernels::detail::pow2_double(
                                    aexp[k] + chunk.row_exp(br)[0] -
                                    plan.exp_bias));
                        }
                    }
                    if (p1 > full_chunks) {
                        const PackedOperand& tailc = *b.back().op;
                        for (std::size_t jj = 0; jj < jn; ++jj) {
                            const std::size_t br =
                                b.back().row_off + j0 + jj;
                            acc[jj] += detail::block_contrib2(
                                plan, am, atau, aexp[full_chunks],
                                full_chunks * 16, tailc.row_mantissa(br),
                                tailc.row_tau(br), tailc.row_exp(br)[0],
                                0, tailc.cols());
                        }
                    }
                    for (std::size_t jj = 0; jj < jn; ++jj)
                        crow[j0 + jj] = acc[jj];
                }
            }
        }
    }
};

} // namespace

const PackedGemmKernel*
avx512_gemm_kernel()
{
    static const Avx512GemmKernel kernel;
    return &kernel;
}

} // namespace gemm
} // namespace mx

#else // !MX_HAVE_AVX512

namespace mx {
namespace gemm {

const PackedGemmKernel*
avx512_gemm_kernel()
{
    return nullptr;
}

} // namespace gemm
} // namespace mx

#endif // MX_HAVE_AVX512
