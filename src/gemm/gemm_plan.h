#pragma once

/**
 * @file
 * The pairwise plan of a packed-domain dot product (Figure 6).
 *
 * A packed MX/BFP dot product multiplies two quantized operands whose
 * elements are integer mantissas under two-level power-of-two scaling:
 *
 *   a_k = Ma_k * 2^(Ea - taua_s - (ma - 1))
 *   b_k = Mb_k * 2^(Eb - taub_s - (mb - 1))
 *
 * so the product of any aligned k2 sub-block pair is one integer dot
 * product times one power of two.  A GemmPlan captures everything the
 * execution kernels need to run that pipeline without consulting the
 * format descriptors again: the two QuantPlans, the pairwise sub-step
 * granularity over which the combined shift is constant, the total
 * shift budget (so sub-block partial sums can be aligned with integer
 * left shifts — "a little shifting"), and the combined exponent bias
 * applied once per k1-block pair.
 *
 * The two operands may use different formats (Table IV serves (w, a)
 * pairs like (MX4, MX9)) as long as their k1 block granularities agree,
 * so a block pair shares one boundary and one combined exponent.
 */

#include "core/kernels/quant_kernel.h"

namespace mx {
namespace gemm {

/** Execution constants of one packed A x B^T contraction. */
struct GemmPlan
{
    /** Operand plans: a = left/activations, b = right/weights. */
    core::kernels::QuantPlan a, b;

    /**
     * Pairwise sub-step granularity: the combined shift
     * (taua + taub) is constant over g consecutive elements.  With
     * d2 > 0 on both sides this is gcd(k2_a, k2_b); a side with d2 == 0
     * contributes a block-constant (zero) shift, so only the other
     * side's k2 matters.
     */
    int g = 0;

    /** Total shift budget beta_a + beta_b: the left shift that aligns
     *  the least-shifted sub-block pair with the most-shifted one. */
    int budget = 0;

    /**
     * Combined exponent bias (ma - 1) + (mb - 1) + budget: one
     * k1-block pair's integer accumulator holds its partial dot product
     * in units of 2^(Ea + Eb - exp_bias).
     */
    int exp_bias = 0;

    /** Blocks covering a row of @p cols elements. */
    std::size_t
    blocks_per_row(std::size_t cols) const
    {
        return (cols + static_cast<std::size_t>(a.k1) - 1) /
               static_cast<std::size_t>(a.k1);
    }
};

/**
 * True when the packed-GEMM kernels can execute an (a, b) operand pair:
 * matching k1 block granularity, mantissas narrow enough for the int16
 * execution view, and enough int64 headroom to accumulate a whole
 * shifted k1-block pair exactly.
 */
bool gemm_compatible(const core::kernels::QuantPlan& a,
                     const core::kernels::QuantPlan& b);

/**
 * True when a single operand can be decoded into the int16 execution
 * view at all (m <= 15); pairing constraints are gemm_compatible's job.
 */
bool operand_eligible(const core::kernels::QuantPlan& plan);

/** Build the pairwise plan; throws mx::ArgumentError when
 *  !gemm_compatible(a, b). */
GemmPlan make_gemm_plan(const core::kernels::QuantPlan& a,
                        const core::kernels::QuantPlan& b);

} // namespace gemm
} // namespace mx
