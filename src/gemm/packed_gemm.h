#pragma once

/**
 * @file
 * mx_gemm: packed-domain matrix multiplication (the Figure 6 pipeline).
 *
 * Executes C = A * B^T directly on quantized MX/BFP operands — integer
 * mantissa dot products per k2 sub-block, one tau shift per sub-block,
 * one shared-exponent alignment per k1-block pair, FP32 accumulation
 * across blocks — without dequantizing either operand to FP32.  The
 * contract every kernel implementation must honour bit-for-bit, per
 * output element C[i,j], in row-block order:
 *
 *   acc_f32 = 0
 *   for each k1-block pair (Ea, Eb):
 *     blk_i64 = 0
 *     for each pairwise sub-step of g elements (taua, taub constant):
 *       S     = sum_k Ma_k * Mb_k                    // integer dot
 *       blk  += S << (budget - taua - taub)          // tau alignment
 *     acc_f32 += float(double(blk) *
 *                      2^(Ea + Eb - exp_bias))       // exp alignment
 *   C[i,j] = acc_f32
 *
 * Every integer step is exact (the GemmPlan proves int64 headroom), so
 * any implementation that reorders the integer work — AVX2 madd lanes,
 * per-sub-block int32 partial sums — produces the same block integer,
 * and the single double->float rounding per block pins the FP result:
 * scalar and AVX2 are bit-identical by construction, and
 * tests/test_gemm.cpp asserts it across formats, shapes, and ragged
 * widths.
 *
 * Kernel selection rides the existing core/kernels/dispatch layer: the
 * AVX2 gemm kernel is active exactly when the AVX2 quantize kernel is
 * (same CPU probe, same MX_FORCE_SCALAR override, same
 * set_force_scalar test hook).
 *
 * Knobs:
 *   MX_GEMM=auto     (default) frozen layers take the packed path when
 *                    it is profitable (the AVX2 gemm kernel is active)
 *                    or required (the FP32 grid values were dropped);
 *                    otherwise they serve on the dequantized values
 *   MX_GEMM=1        always take the packed path, even on the scalar
 *                    kernel (exercises the reference semantics
 *                    end-to-end; ~5x slower than the values matmul)
 *   MX_GEMM=0        never take the packed path
 *   MX_GEMM_VERIFY=1 cross-check every packed GEMM against the
 *                    dequantized reference matmul (debugging)
 */

#include <cstdint>

#include "gemm/gemm_plan.h"
#include "gemm/packed_operand.h"
#include "tensor/tensor.h"

namespace mx {
namespace gemm {

/** The execute side: one virtual call per whole GEMM. */
class PackedGemmKernel
{
  public:
    virtual ~PackedGemmKernel() = default;

    /** Implementation name for reports and tests ("scalar", "avx2"). */
    virtual const char* name() const = 0;

    /**
     * C[a.rows x b.rows] = A * B^T in the packed domain.  @p a and
     * @p b must share the contraction width (a.cols == b.cols) and
     * match @p plan's operand plans.
     */
    virtual void gemm(const GemmPlan& plan, const PackedOperand& a,
                      const PackedOperand& b, float* c) const = 0;
};

/** The portable reference implementation (always available). */
const PackedGemmKernel& scalar_gemm_kernel();

/** The AVX2 implementation, or nullptr when the build lacks AVX2. */
const PackedGemmKernel* avx2_gemm_kernel();

/**
 * The kernel the frozen serving path routes through: AVX2 when the
 * quantize dispatch resolved to AVX2 (core/kernels/dispatch.h — CPU
 * probe, MX_FORCE_SCALAR, set_force_scalar), scalar otherwise.
 */
const PackedGemmKernel& active_gemm_kernel();

/** Routing policy of the frozen serving path. */
enum class Mode
{
    Auto, ///< Packed when profitable (AVX2) or required (values dropped).
    On,   ///< Always packed, even on the scalar kernel.
    Off,  ///< Never packed; serve on the dequantized values.
};

/** The active policy: MX_GEMM in the environment ("0" = Off, "1" = On,
 *  anything else = Auto), overridable at runtime with set_mode(). */
Mode mode();

/** Runtime override of mode(); pins until the next call. */
void set_mode(Mode m);

/** True when the packed path is the faster engine on this host right
 *  now (the AVX2 gemm kernel is active). */
bool packed_profitable();

/**
 * The routing decision a frozen layer makes per forward: @p packed_only
 * is true when the layer has no FP32 grid values left to fall back to.
 */
bool route_packed(bool packed_only);

/** Packed GEMMs executed since process start (routing observability:
 *  proves a forward actually took the packed path). */
std::uint64_t call_count();

/**
 * C = X * W^T with X[M, K] float activations and W[N, K] packed:
 * quantizes X on the fly into the execution view (the same
 * quantization the fake-quant path applies) and runs the active
 * packed kernel.  Never materializes a dequantized FP32 copy of W.
 *
 * @p a_plan is the activation-side plan (may differ from w.plan() —
 * Table IV (w, a) format splits); gemm_compatible(a_plan, w.plan())
 * must hold.
 */
tensor::Tensor matmul_nt_packed(const tensor::Tensor& x,
                                const core::kernels::QuantPlan& a_plan,
                                const PackedOperand& w,
                                core::RoundingMode rounding =
                                    core::RoundingMode::NearestEven);

namespace detail {

/**
 * One k1-block pair's contribution in the packed domain — the scalar
 * semantics every kernel must reproduce exactly.  Pointers are the
 * operands' whole-row views (PackedOperand::row_mantissa / row_tau);
 * @p off is the block's element offset within the row and @p n its
 * length (k1 or a ragged tail).
 */
inline float
block_contrib(const GemmPlan& plan, const std::int16_t* am_row,
              const std::uint8_t* atau_row, int aexp,
              const std::int16_t* bm_row, const std::uint8_t* btau_row,
              int bexp, std::size_t off, std::size_t n)
{
    const std::size_t g = static_cast<std::size_t>(plan.g);
    const std::size_t k2a = static_cast<std::size_t>(plan.a.k2);
    const std::size_t k2b = static_cast<std::size_t>(plan.b.k2);
    std::int64_t blk = 0;
    for (std::size_t s = 0; s < n; s += g) {
        const std::size_t hi = std::min(n, s + g);
        std::int64_t dot = 0;
        for (std::size_t k = s; k < hi; ++k)
            dot += static_cast<std::int32_t>(am_row[off + k]) *
                   bm_row[off + k];
        const int shift = plan.budget - atau_row[(off + s) / k2a] -
                          btau_row[(off + s) / k2b];
        blk += dot << shift;
    }
    return static_cast<float>(
        static_cast<double>(blk) *
        core::kernels::detail::pow2_double(aexp + bexp - plan.exp_bias));
}

} // namespace detail

} // namespace gemm
} // namespace mx
