#pragma once

/**
 * @file
 * mx_gemm: packed-domain matrix multiplication (the Figure 6 pipeline),
 * cache-blocked and multithreaded.
 *
 * Executes C = A * B^T directly on quantized MX/BFP operands — integer
 * mantissa dot products per k2 sub-block, one tau shift per sub-block,
 * one shared-exponent alignment per k1-block pair, FP32 accumulation
 * across blocks — without dequantizing either operand to FP32.  The
 * contract every kernel implementation must honour bit-for-bit, per
 * output element C[i,j], in ascending k1-block order:
 *
 *   acc_f32 = 0
 *   for each k1-block pair (Ea, Eb):
 *     blk_i64 = 0
 *     for each pairwise sub-step of g elements (taua, taub constant):
 *       S     = sum_k Ma_k * Mb_k                    // integer dot
 *       blk  += S << (budget - taua - taub)          // tau alignment
 *     acc_f32 += float(double(blk) *
 *                      2^(Ea + Eb - exp_bias))       // exp alignment
 *   C[i,j] = acc_f32
 *
 * Every integer step is exact (the GemmPlan proves int64 headroom), so
 * any implementation that reorders the integer work — AVX2 madd lanes,
 * AVX-512 VNNI dot-accumulate lanes, per-sub-block int32 partial sums —
 * produces the same block integer, and the per-block double->float
 * rounding pins the FP result.  The FP32 accumulation across blocks is
 * NOT reorderable, so every execution shape below preserves ascending
 * block order per element:
 *
 *  - Cache blocking.  The whole-GEMM drivers walk C in (mc x nc) output
 *    tiles (kTileRowsA x kTileRowsB); inside a tile the kernels loop
 *    kc-sized k1-block panels (kPanelBlocks) outermost, accumulating
 *    each panel's contribution into C.  Panels ascend, and FP32
 *    loads/stores of intermediate sums are exact, so the per-element
 *    addition sequence is identical to one streaming pass.  A register
 *    block of B rows (the microkernel's j unroll) stays resident in L1
 *    across a panel, and the A row's panel slice is reused across every
 *    B row in the tile.
 *  - Multithreading.  matmul_nt_packed{,2}, matmul_nt_prequant and
 *    matmul_nn_packed shard the FIXED tile grid across a thread pool
 *    sized by MX_GEMM_THREADS (default: the MX_THREADS pool size; 1 =
 *    serial).  The grid never depends on the thread count, and each
 *    C element is computed wholly inside one tile by one thread — all
 *    integer work plus its own FP32 block chain — so results are
 *    bit-identical for any thread count or shard assignment.
 *
 * Scalar, AVX2 and AVX-512 kernels are therefore bit-identical by
 * construction, across any MX_GEMM_THREADS, and
 * tests/test_gemm.cpp asserts it across formats, shapes, ragged
 * widths, thread counts, and dispatch legs.
 *
 * Kernel selection rides core/kernels/dispatch's single SIMD level:
 * AVX-512 (VNNI dot products, 2 k1 blocks per 512-bit lane group) when
 * the host reports avx512f/bw/vnni, AVX2 otherwise, scalar when forced
 * (same MX_FORCE_SCALAR / MX_FORCE_AVX2 overrides, same
 * set_simd_level test hook).
 *
 * Knobs:
 *   MX_GEMM=auto      (default) frozen layers take the packed path when
 *                     it is profitable (a SIMD gemm kernel is active)
 *                     or required (the FP32 grid values were dropped);
 *                     otherwise they serve on the dequantized values
 *   MX_GEMM=1         always take the packed path, even on the scalar
 *                     kernel (exercises the reference semantics
 *                     end-to-end; ~5x slower than the values matmul)
 *   MX_GEMM=0         never take the packed path
 *   MX_GEMM_THREADS=N shard output tiles across N lanes (default: the
 *                     shared pool size; 1 = serial, today's behavior;
 *                     0/negative clamp to 1)
 *   MX_GEMM_VERIFY=1  cross-check every packed GEMM against the
 *                     dequantized reference matmul (debugging)
 */

#include <cstdint>
#include <span>

#include "gemm/gemm_plan.h"
#include "gemm/packed_operand.h"
#include "tensor/tensor.h"

namespace mx {
namespace gemm {

/**
 * One k1-block chunk of a non-transposed right-hand operand (the NN
 * kernel leg).  @p op is a packed operand whose ROWS run along the
 * GEMM's output columns and whose COLS are the chunk's contraction
 * slice (at most one k1 block wide); @p row_off selects the first of
 * the ncols rows that participate (a d_model-row V slab serves every
 * head through its own row_off).  Chunk k covers contraction elements
 * [k * k1, k * k1 + op->cols()), so the chunk widths must tile the A
 * operand's cols exactly.
 */
struct NnBlockRef
{
    const PackedOperand* op = nullptr;
    std::size_t row_off = 0;
};

/** Half-open output tile [i0, i1) x [j0, j1) of a blocked GEMM. */
struct Tile
{
    std::size_t i0 = 0, i1 = 0; ///< A-row (C-row) range.
    std::size_t j0 = 0, j1 = 0; ///< B-row / NN-column (C-col) range.
};

/** Output-tile height: A rows per tile (the mc blocking factor). */
inline constexpr std::size_t kTileRowsA = 64;

/** Output-tile width: B rows / NN cols per tile (the nc factor).  Also
 *  the parallel shard granularity — small enough that a decode-shaped
 *  N still fans out, large enough that a B panel amortizes. */
inline constexpr std::size_t kTileRowsB = 32;

/** k1 blocks per kc panel inside a tile: the contraction slice held
 *  hot while the microkernel sweeps the tile (k1 = 16, int16 mantissas
 *  => 1 KiB of mantissa stream per operand row per panel). */
inline constexpr std::size_t kPanelBlocks = 32;

/**
 * The execute side.  Kernels implement the TILE entry points; the
 * whole-GEMM gemm()/gemm_nn() convenience wrappers validate and walk
 * the tile grid serially (the threaded walk lives in the matmul_*
 * drivers).  Tile calls assume the driver already validated the
 * operand pair / chunk structure — they are the hot path and run once
 * per tile per thread.
 */
class PackedGemmKernel
{
  public:
    virtual ~PackedGemmKernel() = default;

    /** Implementation name for reports and tests
     *  ("scalar", "avx2", "avx512"). */
    virtual const char* name() const = 0;

    /**
     * Compute the C tile @p t of C[a.rows x b.rows] = A * B^T over the
     * FULL contraction (kc panels are internal).  @p ldc is C's row
     * stride (b.rows for a whole GEMM).  Must write every element of
     * the tile exactly per the file contract, and nothing outside it.
     */
    virtual void gemm_tile(const GemmPlan& plan, const PackedOperand& a,
                           const PackedOperand& b, const Tile& t,
                           float* c, std::size_t ldc) const = 0;

    /**
     * The NN-leg tile: C[a.rows x ncols] = A * B with B given as one
     * packed chunk per k1-block (B's storage rows run along C's
     * columns — how P V consumes a native MX V cache).  @p t.j0/j1
     * range over the ncols output columns; @p ldc is C's row stride.
     */
    virtual void gemm_nn_tile(const GemmPlan& plan,
                              const PackedOperand& a,
                              std::span<const NnBlockRef> b,
                              const Tile& t, float* c,
                              std::size_t ldc) const = 0;

    /**
     * C[a.rows x b.rows] = A * B^T in the packed domain: validate, then
     * walk the tile grid serially.  @p a and @p b must share the
     * contraction width (a.cols == b.cols) and match @p plan's operand
     * plans.
     */
    void gemm(const GemmPlan& plan, const PackedOperand& a,
              const PackedOperand& b, float* c) const;

    /** Whole-GEMM NN leg: validate, then walk the tile grid serially.
     *  Chunk widths must tile a.cols() exactly (only the last chunk may
     *  be short). */
    void gemm_nn(const GemmPlan& plan, const PackedOperand& a,
                 std::span<const NnBlockRef> b, std::size_t ncols,
                 float* c) const;
};

/** The portable reference implementation (always available). */
const PackedGemmKernel& scalar_gemm_kernel();

/** The AVX2 implementation, or nullptr when the build lacks AVX2. */
const PackedGemmKernel* avx2_gemm_kernel();

/** The AVX-512/VNNI implementation, or nullptr when the build lacks
 *  the AVX-512 flags. */
const PackedGemmKernel* avx512_gemm_kernel();

/**
 * The kernel the frozen serving path routes through, slaved to
 * core/kernels/dispatch's SIMD level (CPU probe, MX_FORCE_SCALAR,
 * MX_FORCE_AVX2, set_simd_level test hook): AVX-512 at
 * SimdLevel::Avx512, AVX2 at Avx2, scalar otherwise.
 */
const PackedGemmKernel& active_gemm_kernel();

/**
 * Lanes the threaded matmul_* drivers shard output tiles across.
 * Resolved once from MX_GEMM_THREADS (default: the shared pool's lane
 * count); set_gemm_threads overrides at runtime.
 */
std::size_t gemm_threads();

/** Runtime override of gemm_threads(); 0 re-resolves from the
 *  environment on the next call (test hook + embedder API). */
void set_gemm_threads(std::size_t threads);

/** Routing policy of the frozen serving path. */
enum class Mode
{
    Auto, ///< Packed when profitable (SIMD) or required (values dropped).
    On,   ///< Always packed, even on the scalar kernel.
    Off,  ///< Never packed; serve on the dequantized values.
};

/** The active policy: MX_GEMM in the environment ("0" = Off, "1" = On,
 *  anything else = Auto), overridable at runtime with set_mode(). */
Mode mode();

/** Runtime override of mode(); pins until the next call. */
void set_mode(Mode m);

/** True when the packed path is the faster engine on this host right
 *  now (a SIMD gemm kernel is active). */
bool packed_profitable();

/**
 * The routing decision a frozen layer makes per forward: @p packed_only
 * is true when the layer has no FP32 grid values left to fall back to.
 */
bool route_packed(bool packed_only);

/** Packed GEMMs executed since process start (routing observability:
 *  proves a forward actually took the packed path). */
std::uint64_t call_count();

/**
 * C = X * W^T with X[M, K] float activations and W[N, K] packed:
 * quantizes X on the fly into the execution view (the same
 * quantization the fake-quant path applies) and runs the active
 * packed kernel, sharding output tiles across gemm_threads() lanes.
 * Never materializes a dequantized FP32 copy of W.
 *
 * @p a_plan is the activation-side plan (may differ from w.plan() —
 * Table IV (w, a) format splits); gemm_compatible(a_plan, w.plan())
 * must hold.
 */
tensor::Tensor matmul_nt_packed(const tensor::Tensor& x,
                                const core::kernels::QuantPlan& a_plan,
                                const PackedOperand& w,
                                core::RoundingMode rounding =
                                    core::RoundingMode::NearestEven);

/**
 * Activation-activation C = X * Y^T: both operands are float matrices
 * quantized on the fly (X[M, K] under @p a_plan, Y[N, K] under
 * @p b_plan) and contracted by the active packed kernel.  This is the
 * Q K^T leg of packed attention — and the P V leg of the fixed-window
 * forward, where V is transposed before quantization so its rows run
 * along the reduction.
 */
tensor::Tensor matmul_nt_packed2(const tensor::Tensor& x,
                                 const core::kernels::QuantPlan& a_plan,
                                 const tensor::Tensor& y,
                                 const core::kernels::QuantPlan& b_plan,
                                 core::RoundingMode rounding =
                                     core::RoundingMode::NearestEven);

/**
 * C = A * B^T with BOTH operands already in the execution view — the
 * quantize-once handoff: a caller that feeds one activation matrix to
 * several frozen layers (attention's wq/wk/wv share the post-LN input)
 * quantizes it once and reuses the view.  Bit-identical to
 * matmul_nt_packed on the same floats, because quantization is a pure
 * per-row function of the input.
 */
tensor::Tensor matmul_nt_prequant(const GemmPlan& plan,
                                  const PackedOperand& a,
                                  const PackedOperand& b);

/**
 * C[a.rows x ncols] = A * B on the NN leg (see
 * PackedGemmKernel::gemm_nn): @p b holds one packed chunk per k1-block
 * of the contraction, with chunk widths tiling a.cols() exactly.
 */
tensor::Tensor matmul_nn_packed(const GemmPlan& plan,
                                const PackedOperand& a,
                                std::span<const NnBlockRef> b,
                                std::size_t ncols);

/**
 * The operand's grid values — the exact floats the fake-quant path's
 * quantize_rows would produce for the same input (the block codec's
 * decode(encode(x)) == fake_quantize(x) property).  This is the
 * bit-identical FP32 fallback of every packed activation path: grids
 * assembled from stored encodings never re-quantize, so they cannot
 * drift from the reference even where re-quantization would not be
 * idempotent.
 */
tensor::Tensor dequantize(const PackedOperand& op);

namespace detail {

/**
 * One k1-block pair's contribution in the packed domain — the scalar
 * semantics every kernel must reproduce exactly — with independent
 * per-operand element offsets: @p aoff / @p boff locate the block
 * inside each operand's row (the NT leg walks both rows in lockstep;
 * the NN leg's b-chunks are standalone single-block rows at boff 0).
 * Pointers are whole-row views (PackedOperand::row_mantissa /
 * row_tau); @p n is the block length (k1 or a ragged tail).  Both
 * offsets must be k1-aligned so the tau indexing below lands on
 * sub-block boundaries.
 */
inline float
block_contrib2(const GemmPlan& plan, const std::int16_t* am_row,
               const std::uint8_t* atau_row, int aexp, std::size_t aoff,
               const std::int16_t* bm_row, const std::uint8_t* btau_row,
               int bexp, std::size_t boff, std::size_t n)
{
    const std::size_t g = static_cast<std::size_t>(plan.g);
    const std::size_t k2a = static_cast<std::size_t>(plan.a.k2);
    const std::size_t k2b = static_cast<std::size_t>(plan.b.k2);
    std::int64_t blk = 0;
    for (std::size_t s = 0; s < n; s += g) {
        const std::size_t hi = std::min(n, s + g);
        std::int64_t dot = 0;
        for (std::size_t k = s; k < hi; ++k)
            dot += static_cast<std::int32_t>(am_row[aoff + k]) *
                   bm_row[boff + k];
        const int shift = plan.budget - atau_row[(aoff + s) / k2a] -
                          btau_row[(boff + s) / k2b];
        blk += dot << shift;
    }
    return static_cast<float>(
        static_cast<double>(blk) *
        core::kernels::detail::pow2_double(aexp + bexp - plan.exp_bias));
}

/** The NT-leg special case: one shared offset for both operands. */
inline float
block_contrib(const GemmPlan& plan, const std::int16_t* am_row,
              const std::uint8_t* atau_row, int aexp,
              const std::int16_t* bm_row, const std::uint8_t* btau_row,
              int bexp, std::size_t off, std::size_t n)
{
    return block_contrib2(plan, am_row, atau_row, aexp, off, bm_row,
                          btau_row, bexp, off, n);
}

/**
 * True when (plan) fits the SIMD fast path shared by the AVX2 and
 * AVX-512 kernels: the MX family's k1 = 16, k2 = 2 on both sides, and
 * enough int32 headroom to sum a block's 8 shifted sub-sums (products
 * reach 2^(ma+mb+1) per pair, << budget, x8 sub-blocks).
 */
inline bool
simd_fast_path(const GemmPlan& plan)
{
    return plan.a.k1 == 16 && plan.a.k2 == 2 && plan.b.k2 == 2 &&
           plan.a.d2 > 0 && plan.b.d2 > 0 &&
           plan.a.m + plan.b.m + 1 + plan.budget + 3 <= 31;
}

} // namespace detail

} // namespace gemm
} // namespace mx
