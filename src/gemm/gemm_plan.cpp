#include "gemm/gemm_plan.h"

#include <numeric>

#include "core/check.h"

namespace mx {
namespace gemm {

using core::kernels::QuantPlan;

namespace {

/** ceil(log2(n)) for n >= 1. */
int
ceil_log2(std::size_t n)
{
    int bits = 0;
    std::size_t v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/**
 * Bits needed by one k1-block pair's integer accumulator: per-element
 * products reach 2^(ma + mb), the tau alignment left-shifts by up to
 * budget, and k1 shifted products sum — plus one sign bit.
 */
int
block_accumulator_bits(const QuantPlan& a, const QuantPlan& b)
{
    const int budget = ((1 << a.d2) - 1) + ((1 << b.d2) - 1);
    return a.m + b.m + budget + ceil_log2(static_cast<std::size_t>(a.k1)) +
           1;
}

} // namespace

bool
operand_eligible(const QuantPlan& plan)
{
    // int16 mantissa lanes: |M| <= 2^m - 1 must fit, and the AVX2
    // madd_epi16 pair products must not overflow int32 when paired with
    // any other eligible operand (15 + 15 + 1 = 31 bits).
    return plan.m <= 15;
}

bool
gemm_compatible(const QuantPlan& a, const QuantPlan& b)
{
    return operand_eligible(a) && operand_eligible(b) && a.k1 == b.k1 &&
           block_accumulator_bits(a, b) <= 62;
}

GemmPlan
make_gemm_plan(const QuantPlan& a, const QuantPlan& b)
{
    MX_CHECK_ARG(a.k1 == b.k1,
                 "make_gemm_plan: operand block granularities differ (k1="
                     << a.k1 << " vs " << b.k1 << ")");
    MX_CHECK_ARG(operand_eligible(a) && operand_eligible(b),
                 "make_gemm_plan: mantissa too wide for the int16 "
                 "execution view (m=" << a.m << ", " << b.m << ")");
    MX_CHECK_ARG(block_accumulator_bits(a, b) <= 62,
                 "make_gemm_plan: shifted block accumulator would "
                 "overflow int64");

    GemmPlan p;
    p.a = a;
    p.b = b;
    // A side without sub-shifts (d2 == 0) has a block-constant shift, so
    // the pairwise-constant granularity is governed by the other side.
    const int ga = a.d2 > 0 ? a.k2 : a.k1;
    const int gb = b.d2 > 0 ? b.k2 : b.k1;
    p.g = std::gcd(ga, gb);
    p.budget = a.beta + b.beta;
    p.exp_bias = (a.m - 1) + (b.m - 1) + p.budget;
    return p;
}

} // namespace gemm
} // namespace mx
