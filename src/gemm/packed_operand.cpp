#include "gemm/packed_operand.h"

#include <algorithm>

#include "core/bitstream.h"
#include "core/check.h"
#include "core/kernels/dispatch.h"
#include "gemm/gemm_plan.h"

namespace mx {
namespace gemm {

using core::kernels::QuantPlan;

std::size_t
row_bits(const QuantPlan& plan, std::size_t cols)
{
    const std::size_t k1 = static_cast<std::size_t>(plan.k1);
    const std::size_t blocks = (cols + k1 - 1) / k1;
    const std::size_t subs = plan.num_sub_blocks(cols);
    return blocks * static_cast<std::size_t>(plan.d1) +
           subs * static_cast<std::size_t>(plan.d2) +
           cols * static_cast<std::size_t>(1 + plan.m);
}

PackedOperand::PackedOperand(const QuantPlan& plan, std::size_t rows,
                             std::size_t cols)
    : plan_(plan), rows_(rows), cols_(cols)
{
    MX_CHECK_ARG(rows > 0 && cols > 0,
                 "PackedOperand: empty operand [" << rows << " x " << cols
                                                  << "]");
    MX_CHECK_ARG(operand_eligible(plan),
                 "PackedOperand: mantissa too wide for the int16 "
                 "execution view (m=" << plan.m << ")");
    blocks_per_row_ = (cols + static_cast<std::size_t>(plan.k1) - 1) /
                      static_cast<std::size_t>(plan.k1);
    subs_per_row_ = plan.num_sub_blocks(cols);
    mantissa_.resize(rows * cols);
    tau_.assign(rows * subs_per_row_, 0);
    exp_.resize(rows * blocks_per_row_);
}

std::size_t
row_stream_bytes(const QuantPlan& plan, std::size_t cols)
{
    return (row_bits(plan, cols) + 7) / 8;
}

void
pack_rows_aligned(const QuantPlan& plan, const float* x, std::size_t rows,
                  std::size_t cols, const core::Rounder& rounder,
                  std::vector<std::uint8_t>& out)
{
    const core::kernels::QuantKernel& kernel =
        core::kernels::active_kernel();
    const std::size_t stride = row_stream_bytes(plan, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        // One writer per row: BitWriter zero-pads its final partial
        // byte, which is exactly the byte-aligned row boundary.
        core::BitWriter w;
        kernel.quantize_pack_rows(plan, x + r * cols, 1, cols, rounder, w);
        std::vector<std::uint8_t> bytes = w.take();
        MX_CHECK(bytes.size() == stride,
                 "pack_rows_aligned: row packed to " << bytes.size()
                     << " bytes, expected " << stride);
        out.insert(out.end(), bytes.begin(), bytes.end());
    }
}

std::size_t
PackedOperand::row_bit_offset(std::size_t r) const
{
    MX_CHECK_ARG(r < rows_, "PackedOperand: row out of range");
    return r * row_bits(plan_, cols_);
}

std::size_t
PackedOperand::memory_bytes() const
{
    return mantissa_.size() * sizeof(std::int16_t) + tau_.size() +
           exp_.size() * sizeof(std::int16_t);
}

namespace {

/** Decode one row's blocks from @p reader into row @p r of the view. */
void
decode_row(const QuantPlan& plan, core::BitReader& reader, std::size_t cols,
           std::int16_t* mant, std::uint8_t* tau, std::int16_t* exp)
{
    const std::size_t k1 = static_cast<std::size_t>(plan.k1);
    std::size_t sub = 0;
    for (std::size_t off = 0; off < cols; off += k1) {
        const std::size_t n = std::min(k1, cols - off);
        *exp++ = static_cast<std::int16_t>(
            static_cast<int>(reader.read(plan.d1)) - plan.e_max);
        const std::size_t n_sub = plan.num_sub_blocks(n);
        for (std::size_t s = 0; s < n_sub; ++s)
            tau[sub++] = static_cast<std::uint8_t>(reader.read(plan.d2));
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t code = reader.read(1 + plan.m);
            const std::int16_t mag = static_cast<std::int16_t>(code >> 1);
            mant[off + i] = (code & 1) != 0
                                ? static_cast<std::int16_t>(-mag)
                                : mag;
        }
    }
}

} // namespace

PackedOperand
PackedOperand::decode(const QuantPlan& plan,
                      std::span<const std::uint8_t> bytes,
                      std::size_t rows, std::size_t cols)
{
    PackedOperand op(plan, rows, cols);
    MX_CHECK_ARG(bytes.size() * 8 >= rows * row_bits(plan, cols),
                 "PackedOperand::decode: stream too short for ["
                     << rows << " x " << cols << "]");
    core::BitReader reader(bytes);
    for (std::size_t r = 0; r < rows; ++r)
        decode_row(plan, reader, cols, op.mantissa_.data() + r * cols,
                   op.tau_.data() + r * op.subs_per_row_,
                   op.exp_.data() + r * op.blocks_per_row_);
    return op;
}

PackedOperand
PackedOperand::decode_rows(const QuantPlan& plan,
                           std::span<const std::uint8_t> bytes,
                           std::size_t rows, std::size_t cols)
{
    PackedOperand op(plan, rows, cols);
    const std::size_t stride = row_stream_bytes(plan, cols);
    MX_CHECK_ARG(bytes.size() >= rows * stride,
                 "PackedOperand::decode_rows: stream holds "
                     << bytes.size() << " bytes, [" << rows << " x " << cols
                     << "] needs " << rows * stride);
    for (std::size_t r = 0; r < rows; ++r) {
        core::BitReader reader(bytes.subspan(r * stride, stride));
        decode_row(plan, reader, cols, op.mantissa_.data() + r * cols,
                   op.tau_.data() + r * op.subs_per_row_,
                   op.exp_.data() + r * op.blocks_per_row_);
    }
    return op;
}

PackedOperand
PackedOperand::quantize(const QuantPlan& plan, const float* x,
                        std::size_t rows, std::size_t cols,
                        const core::Rounder& rounder)
{
    PackedOperand op(plan, rows, cols);
    const core::kernels::QuantKernel& kernel =
        core::kernels::active_kernel();
    const std::size_t k1 = static_cast<std::size_t>(plan.k1);
    std::vector<float> grid(k1); // dequantized scratch (discarded)
    core::Pow2BlockEncoding enc; // reused; assign keeps capacity
    for (std::size_t r = 0; r < rows; ++r) {
        std::int16_t* mant = op.mantissa_.data() + r * cols;
        std::uint8_t* tau = op.tau_.data() + r * op.subs_per_row_;
        std::int16_t* exp = op.exp_.data() + r * op.blocks_per_row_;
        std::size_t sub = 0;
        for (std::size_t off = 0; off < cols; off += k1) {
            const std::size_t n = std::min(k1, cols - off);
            kernel.quantize_block(
                plan, std::span<const float>(x + r * cols + off, n),
                std::span<float>(grid.data(), n), rounder, &enc);
            *exp++ = static_cast<std::int16_t>(enc.shared_exp);
            for (std::uint8_t t : enc.sub_shift)
                tau[sub++] = t;
            for (std::size_t i = 0; i < n; ++i)
                mant[off + i] =
                    static_cast<std::int16_t>(enc.mantissa[i]);
        }
    }
    return op;
}

} // namespace gemm
} // namespace mx
