#include "models/resnet_mini.h"

#include "artifact/writer.h"
#include "core/check.h"

namespace mx {
namespace models {

using tensor::Tensor;

ResidualBlock::ResidualBlock(std::int64_t channels, nn::QuantSpec spec,
                             stats::Rng& rng)
{
    c1_ = std::make_unique<nn::Conv2d>(channels, channels, 3, 1, 1, spec,
                                       rng);
    c2_ = std::make_unique<nn::Conv2d>(channels, channels, 3, 1, 1, spec,
                                       rng);
    a1_ = std::make_unique<nn::ActivationLayer>(nn::Activation::ReLU);
    a2_ = std::make_unique<nn::ActivationLayer>(nn::Activation::ReLU);
}

Tensor
ResidualBlock::forward(const Tensor& x, bool train)
{
    Tensor h = a1_->forward(c1_->forward(x, train), train);
    Tensor y = c2_->forward(h, train);
    tensor::axpy(y, 1.0f, x); // residual
    return a2_->forward(y, train);
}

Tensor
ResidualBlock::backward(const Tensor& grad_out)
{
    Tensor g = a2_->backward(grad_out);
    Tensor dx = c1_->backward(a1_->backward(c2_->backward(g)));
    tensor::axpy(dx, 1.0f, g); // residual path
    return dx;
}

void
ResidualBlock::collect_params(std::vector<nn::Param*>& out)
{
    c1_->collect_params(out);
    c2_->collect_params(out);
}

void
ResidualBlock::freeze()
{
    c1_->freeze();
    c2_->freeze();
}

void
ResidualBlock::freeze(const nn::QuantSpec& spec)
{
    c1_->freeze(spec);
    c2_->freeze(spec);
}

void
ResidualBlock::unfreeze()
{
    c1_->unfreeze();
    c2_->unfreeze();
}

ResNetMini::ResNetMini(std::int64_t image_size, std::int64_t channels,
                       std::int64_t num_classes, nn::QuantSpec spec,
                       std::uint64_t seed)
    : image_size_(image_size),
      channels_(channels),
      classes_(num_classes),
      seed_(seed),
      rng_(seed)
{
    stem_ = std::make_unique<nn::Conv2d>(1, channels, 3, 1, 1, spec, rng_);
    stem_act_ = std::make_unique<nn::ActivationLayer>(nn::Activation::ReLU);
    for (int i = 0; i < 2; ++i)
        blocks_.push_back(
            std::make_unique<ResidualBlock>(channels, spec, rng_));
    head_ = std::make_unique<nn::Linear>(channels, num_classes, spec, rng_);
}

Tensor
ResNetMini::logits(const Tensor& images, bool train)
{
    MX_CHECK_ARG(images.ndim() == 4 && images.dim(1) == 1 &&
                 images.dim(2) == image_size_,
                 "ResNetMini: input " << images.shape_string());
    if (train)
        cached_n_ = images.dim(0);
    Tensor h = stem_act_->forward(stem_->forward(images, train), train);
    for (auto& b : blocks_)
        h = b->forward(h, train);

    // Global average pool [n, C, S, S] -> [n, C].
    const std::int64_t n = h.dim(0), c = h.dim(1),
                       hw = h.dim(2) * h.dim(3);
    Tensor pooled({n, c});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t ch = 0; ch < c; ++ch) {
            double acc = 0;
            const float* src = h.data() + (i * c + ch) * hw;
            for (std::int64_t k = 0; k < hw; ++k)
                acc += src[k];
            pooled.data()[i * c + ch] =
                static_cast<float>(acc / static_cast<double>(hw));
        }
    return head_->forward(pooled, train);
}

void
ResNetMini::backward(const Tensor& grad)
{
    Tensor dpooled = head_->backward(grad); // [n, C]
    const std::int64_t hw = image_size_ * image_size_;
    Tensor dh({cached_n_, channels_, image_size_, image_size_});
    float inv = 1.0f / static_cast<float>(hw);
    for (std::int64_t i = 0; i < cached_n_; ++i)
        for (std::int64_t ch = 0; ch < channels_; ++ch) {
            float g = dpooled.data()[i * channels_ + ch] * inv;
            float* dst = dh.data() + (i * channels_ + ch) * hw;
            for (std::int64_t k = 0; k < hw; ++k)
                dst[k] = g;
        }
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
        dh = (*it)->backward(dh);
    stem_->backward(stem_act_->backward(dh));
}

std::vector<nn::Param*>
ResNetMini::params()
{
    std::vector<nn::Param*> ps;
    stem_->collect_params(ps);
    for (auto& b : blocks_)
        b->collect_params(ps);
    head_->collect_params(ps);
    return ps;
}

void
ResNetMini::set_spec(const nn::QuantSpec& spec, bool keep_first_last_fp32)
{
    stem_->spec() = keep_first_last_fp32 ? nn::QuantSpec::fp32() : spec;
    for (auto& b : blocks_) {
        b->conv1().spec() = spec;
        b->conv2().spec() = spec;
    }
    head_->spec() = keep_first_last_fp32 ? nn::QuantSpec::fp32() : spec;
}

void
ResNetMini::freeze()
{
    stem_->freeze();
    for (auto& b : blocks_)
        b->freeze();
    head_->freeze();
}

void
ResNetMini::freeze(const nn::QuantSpec& spec, bool keep_first_last_fp32)
{
    set_spec(spec, keep_first_last_fp32);
    freeze();
}

void
ResNetMini::unfreeze()
{
    stem_->unfreeze();
    for (auto& b : blocks_)
        b->unfreeze();
    head_->unfreeze();
}

void
ResNetMini::collect_state(const std::string& prefix,
                          std::vector<nn::FrozenStateRef>& out)
{
    stem_->collect_state(prefix + "stem.", out);
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        blocks_[i]->collect_state(
            prefix + "block" + std::to_string(i) + ".", out);
    head_->collect_state(prefix + "head.", out);
}

void
ResNetMini::save_frozen(const std::string& path)
{
    MX_CHECK_ARG(frozen(), "ResNetMini: save_frozen() needs freeze()");
    artifact::ByteWriter cfg;
    cfg.u64(static_cast<std::uint64_t>(image_size_));
    cfg.u64(static_cast<std::uint64_t>(channels_));
    cfg.u64(static_cast<std::uint64_t>(classes_));
    cfg.u64(seed_);
    artifact::ArtifactWriter w(artifact::ModelFamily::ResNet, cfg.take());
    std::vector<nn::FrozenStateRef> refs;
    collect_state("", refs);
    w.add_all(refs);
    w.write(path);
}

ResNetMini
ResNetMini::load_frozen(const artifact::ArtifactReader& reader,
                        const artifact::LoadOptions& opts)
{
    if (reader.family() != artifact::ModelFamily::ResNet)
        throw artifact::SchemaError(
            "artifact: not a ResNet artifact (family tag " +
            std::to_string(static_cast<std::uint32_t>(reader.family())) +
            ")");
    artifact::ByteReader cfg = reader.config();
    const std::int64_t image_size = static_cast<std::int64_t>(cfg.u64());
    const std::int64_t channels = static_cast<std::int64_t>(cfg.u64());
    const std::int64_t classes = static_cast<std::int64_t>(cfg.u64());
    const std::uint64_t seed = cfg.u64();
    ResNetMini m(image_size, channels, classes, nn::QuantSpec::fp32(),
                 seed);
    std::vector<nn::FrozenStateRef> refs;
    m.collect_state("", refs);
    reader.load_into(refs, opts);
    return m;
}

ResNetMini
ResNetMini::load_frozen(const std::string& path)
{
    return load_frozen(artifact::ArtifactReader(path));
}

} // namespace models
} // namespace mx
