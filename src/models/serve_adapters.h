#pragma once

/**
 * @file
 * Glue between the model miniatures and mx_serve: the decode-serving
 * adapter that gives serve::InferenceEngine requests a per-stream
 * prefix cache.
 *
 * Header-only on purpose: mx_models stays link-independent of
 * mx_serve; binaries that serve (examples, benches, tests) link both.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "models/transformer.h"
#include "serve/engine.h"
#include "serve/session_cache.h"

namespace mx {
namespace models {

/**
 * Builds the session-aware batch function for GPT decode serving: each
 * request row is a pack_decode_row() context, each reply row the
 * stream's next-token logits.  Sessions check their GptDecodeSession
 * out of @p cache for the duration of the row (checkout semantics —
 * see serve/session_cache.h), so the function is safe on any replica
 * count; rows tagged session 0, a disabled cache, or a cache miss all
 * take the bit-identical full-recompute path.
 *
 * @p model and @p cache must outlive the engine.  The model's eval
 * forward is mutation-free, so one model instance serves every
 * replica.
 */
inline serve::InferenceEngine::SessionBatchFn
gpt_decode_batch_fn(GptMini& model, serve::SessionCache& cache)
{
    return [&model, &cache](const tensor::Tensor& in,
                            const std::vector<std::uint64_t>& sessions) {
        const std::int64_t seq_len = model.config().seq_len;
        const std::int64_t vocab = model.config().vocab;
        tensor::Tensor out({in.dim(0), vocab});
        for (std::int64_t r = 0; r < in.dim(0); ++r) {
            const std::vector<int> tokens = GptMini::unpack_decode_row(
                in.data() + r * seq_len, seq_len);
            std::shared_ptr<GptDecodeSession> st;
            if (sessions[static_cast<std::size_t>(r)] != 0 &&
                cache.enabled()) {
                st = cache.take<GptDecodeSession>(
                    sessions[static_cast<std::size_t>(r)]);
                if (st == nullptr)
                    st = std::make_shared<GptDecodeSession>();
            }
            tensor::Tensor logits = model.decode_logits(tokens, st.get());
            std::copy(logits.data(), logits.data() + vocab,
                      out.data() + r * vocab);
            if (st != nullptr) {
                const std::size_t bytes = decode_session_bytes(*st);
                cache.put(sessions[static_cast<std::size_t>(r)],
                          std::move(st), bytes);
            }
        }
        return out;
    };
}

} // namespace models
} // namespace mx
