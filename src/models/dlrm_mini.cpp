#include "models/dlrm_mini.h"

#include "artifact/writer.h"
#include "core/check.h"

namespace mx {
namespace models {

using tensor::Tensor;

DlrmMini::DlrmMini(DlrmConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    for (int t = 0; t < cfg_.num_tables; ++t) {
        tables_.push_back(std::make_unique<nn::Embedding>(
            cfg_.vocab_per_table, cfg_.embed_dim, rng_));
        if (cfg_.embedding_storage)
            tables_.back()->set_storage_format(cfg_.embedding_storage);
    }
    bottom_ = std::make_unique<MlpClassifier>(
        cfg_.dense_dim, cfg_.bottom_hidden, cfg_.embed_dim, cfg_.spec,
        rng_.next_u64());
    const int f = cfg_.num_tables + 1;
    const std::int64_t pairs = static_cast<std::int64_t>(f) * (f - 1) / 2;
    top_ = std::make_unique<MlpClassifier>(
        cfg_.embed_dim + pairs, cfg_.top_hidden, 1, cfg_.spec,
        rng_.next_u64());
}

Tensor
DlrmMini::logits(const data::ClickBatch& batch, bool train)
{
    const std::int64_t n = batch.n;
    const std::int64_t d = cfg_.embed_dim;
    const int f = cfg_.num_tables + 1;
    if (train)
        cached_n_ = n; // eval forwards stay mutation-free

    // Gather per-table ids and run lookups + the bottom MLP.
    Tensor features({n, f, d});
    Tensor dense_vec = bottom_->logits(batch.dense, train); // [n, D]
    for (std::int64_t i = 0; i < n; ++i)
        std::copy(dense_vec.data() + i * d, dense_vec.data() + (i + 1) * d,
                  features.data() + (i * f) * d);
    for (int t = 0; t < cfg_.num_tables; ++t) {
        std::vector<int> ids(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i)
            ids[static_cast<std::size_t>(i)] =
                batch.categorical[static_cast<std::size_t>(
                    i * cfg_.num_tables + t)];
        Tensor emb = tables_[static_cast<std::size_t>(t)]->forward(ids,
                                                                   train);
        for (std::int64_t i = 0; i < n; ++i)
            std::copy(emb.data() + i * d, emb.data() + (i + 1) * d,
                      features.data() + (i * f + (t + 1)) * d);
    }
    if (train)
        cached_features_ = features;

    // Interactions: dense vector concat pairwise dots.
    const std::int64_t pairs = static_cast<std::int64_t>(f) * (f - 1) / 2;
    Tensor top_in({n, d + pairs});
    for (std::int64_t i = 0; i < n; ++i) {
        float* row = top_in.data() + i * (d + pairs);
        const float* feat = features.data() + i * f * d;
        std::copy(feat, feat + d, row); // the bottom vector itself
        std::int64_t p = 0;
        for (int a = 0; a < f; ++a) {
            for (int b = a + 1; b < f; ++b) {
                double dot = 0;
                for (std::int64_t j = 0; j < d; ++j)
                    dot += static_cast<double>(feat[a * d + j]) *
                           feat[b * d + j];
                row[d + p++] = static_cast<float>(dot);
            }
        }
    }
    Tensor out = top_->logits(top_in, train); // [n, 1]
    return out.reshape({n});
}

void
DlrmMini::backward(const Tensor& grad)
{
    const std::int64_t n = cached_n_;
    const std::int64_t d = cfg_.embed_dim;
    const int f = cfg_.num_tables + 1;
    const std::int64_t pairs = static_cast<std::int64_t>(f) * (f - 1) / 2;
    MX_CHECK_ARG(grad.numel() == n, "DlrmMini: grad shape mismatch");

    // Into the top MLP; its returned input gradient feeds the
    // interaction backward.
    Tensor dtop_in = top_->backward(grad.reshape({n, 1}));

    Tensor dfeat = Tensor::zeros({n, f, d});
    for (std::int64_t i = 0; i < n; ++i) {
        const float* feat = cached_features_.data() + i * f * d;
        float* dfrow = dfeat.data() + i * f * d;
        const float* drow = dtop_in.data() + i * (d + pairs);
        // Bottom-vector passthrough part.
        for (std::int64_t j = 0; j < d; ++j)
            dfrow[j] += drow[j];
        std::int64_t p = 0;
        for (int a = 0; a < f; ++a) {
            for (int b = a + 1; b < f; ++b) {
                float gp = drow[d + p++];
                for (std::int64_t j = 0; j < d; ++j) {
                    dfrow[a * d + j] += gp * feat[b * d + j];
                    dfrow[b * d + j] += gp * feat[a * d + j];
                }
            }
        }
    }

    // Split gradients back to the bottom MLP and the tables.
    Tensor ddense({n, d});
    for (std::int64_t i = 0; i < n; ++i)
        std::copy(dfeat.data() + (i * f) * d, dfeat.data() + (i * f + 1) * d,
                  ddense.data() + i * d);
    bottom_->backward(ddense);
    for (int t = 0; t < cfg_.num_tables; ++t) {
        Tensor demb({n, d});
        for (std::int64_t i = 0; i < n; ++i)
            std::copy(dfeat.data() + (i * f + t + 1) * d,
                      dfeat.data() + (i * f + t + 2) * d,
                      demb.data() + i * d);
        tables_[static_cast<std::size_t>(t)]->backward(demb);
    }
}

double
DlrmMini::train_loss(const data::ClickBatch& batch)
{
    Tensor l = logits(batch, /*train=*/true);
    nn::LossResult res = nn::bce_with_logits(l, batch.labels);
    backward(res.grad);
    return res.loss;
}

std::vector<double>
DlrmMini::predict(const data::ClickBatch& batch)
{
    Tensor l = logits(batch, /*train=*/false);
    std::vector<double> probs(static_cast<std::size_t>(l.numel()));
    for (std::int64_t i = 0; i < l.numel(); ++i)
        probs[static_cast<std::size_t>(i)] =
            1.0 / (1.0 + std::exp(-static_cast<double>(l.data()[i])));
    return probs;
}

std::vector<nn::Param*>
DlrmMini::params()
{
    std::vector<nn::Param*> ps;
    for (auto& t : tables_)
        t->collect_params(ps);
    for (nn::Param* p : bottom_->params())
        ps.push_back(p);
    for (nn::Param* p : top_->params())
        ps.push_back(p);
    return ps;
}

void
DlrmMini::set_spec(const nn::QuantSpec& spec, bool keep_first_last_fp32)
{
    cfg_.spec = spec;
    bottom_->set_spec(spec, keep_first_last_fp32);
    top_->set_spec(spec, keep_first_last_fp32);
}

void
DlrmMini::set_embedding_storage(std::optional<core::BdrFormat> fmt)
{
    cfg_.embedding_storage = fmt;
    for (auto& t : tables_)
        t->set_storage_format(fmt);
}

void
DlrmMini::freeze()
{
    bottom_->freeze();
    top_->freeze();
    for (auto& t : tables_)
        t->freeze();
}

void
DlrmMini::freeze(const nn::QuantSpec& spec, bool keep_first_last_fp32)
{
    set_spec(spec, keep_first_last_fp32);
    freeze();
}

void
DlrmMini::unfreeze()
{
    bottom_->unfreeze();
    top_->unfreeze();
    for (auto& t : tables_)
        t->unfreeze();
}

void
DlrmMini::collect_state(const std::string& prefix,
                        std::vector<nn::FrozenStateRef>& out)
{
    for (std::size_t i = 0; i < tables_.size(); ++i)
        tables_[i]->collect_state(
            prefix + "table" + std::to_string(i) + ".", out);
    bottom_->collect_state(prefix + "bottom.", out);
    top_->collect_state(prefix + "top.", out);
}

void
DlrmMini::save_frozen(const std::string& path)
{
    MX_CHECK_ARG(frozen(), "DlrmMini: save_frozen() needs freeze()");
    artifact::ByteWriter cfg;
    cfg.u32(static_cast<std::uint32_t>(cfg_.num_tables));
    cfg.u32(static_cast<std::uint32_t>(cfg_.vocab_per_table));
    cfg.u32(static_cast<std::uint32_t>(cfg_.embed_dim));
    cfg.u32(static_cast<std::uint32_t>(cfg_.dense_dim));
    cfg.u32(static_cast<std::uint32_t>(cfg_.bottom_hidden.size()));
    for (std::int64_t h : cfg_.bottom_hidden)
        cfg.u64(static_cast<std::uint64_t>(h));
    cfg.u32(static_cast<std::uint32_t>(cfg_.top_hidden.size()));
    for (std::int64_t h : cfg_.top_hidden)
        cfg.u64(static_cast<std::uint64_t>(h));
    cfg.spec(cfg_.spec);
    cfg.opt_format(cfg_.embedding_storage);
    cfg.u64(cfg_.seed);
    artifact::ArtifactWriter w(artifact::ModelFamily::Dlrm, cfg.take());
    std::vector<nn::FrozenStateRef> refs;
    collect_state("", refs);
    w.add_all(refs);
    w.write(path);
}

DlrmMini
DlrmMini::load_frozen(const artifact::ArtifactReader& reader,
                      const artifact::LoadOptions& opts)
{
    if (reader.family() != artifact::ModelFamily::Dlrm)
        throw artifact::SchemaError(
            "artifact: not a DLRM artifact (family tag " +
            std::to_string(static_cast<std::uint32_t>(reader.family())) +
            ")");
    artifact::ByteReader r = reader.config();
    DlrmConfig cfg;
    cfg.num_tables = static_cast<int>(r.u32());
    cfg.vocab_per_table = static_cast<int>(r.u32());
    cfg.embed_dim = static_cast<int>(r.u32());
    cfg.dense_dim = static_cast<int>(r.u32());
    cfg.bottom_hidden.resize(r.u32());
    for (std::int64_t& h : cfg.bottom_hidden)
        h = static_cast<std::int64_t>(r.u64());
    cfg.top_hidden.resize(r.u32());
    for (std::int64_t& h : cfg.top_hidden)
        h = static_cast<std::int64_t>(r.u64());
    cfg.spec = r.spec();
    cfg.embedding_storage = r.opt_format();
    cfg.seed = r.u64();
    DlrmMini m(std::move(cfg));
    std::vector<nn::FrozenStateRef> refs;
    m.collect_state("", refs);
    reader.load_into(refs, opts);
    return m;
}

DlrmMini
DlrmMini::load_frozen(const std::string& path)
{
    return load_frozen(artifact::ArtifactReader(path));
}

} // namespace models
} // namespace mx
