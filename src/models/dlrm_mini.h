#pragma once

/**
 * @file
 * Miniature DLRM (the Table III/VI recommendation stand-in): per-feature
 * embedding tables, a bottom MLP over dense features, pairwise dot
 * interactions, and a top MLP producing a click logit.  Both the compute
 * (MLPs) and the storage (embedding tables) can be MX-quantized, as the
 * paper does for memory-bound recommendation inference (Section V).
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "data/synthetic.h"
#include "models/mlp.h"
#include "nn/embedding.h"
#include "nn/losses.h"

namespace mx {
namespace models {

/** Sizing/precision of the DLRM miniature. */
struct DlrmConfig
{
    int num_tables = 8;
    int vocab_per_table = 64;
    int embed_dim = 16;
    int dense_dim = 8;
    std::vector<std::int64_t> bottom_hidden = {32, 16};
    std::vector<std::int64_t> top_hidden = {64, 32};
    nn::QuantSpec spec;
    /** Quantize embedding-table storage (memory-bound inference). */
    std::optional<core::BdrFormat> embedding_storage;
    std::uint64_t seed = 13;
};

/** DLRM: embeddings + bottom MLP + dot interaction + top MLP. */
class DlrmMini
{
  public:
    explicit DlrmMini(DlrmConfig cfg);

    /** Click logits [n]. */
    tensor::Tensor logits(const data::ClickBatch& batch, bool train);
    /** Backward from the logit gradient [n]. */
    void backward(const tensor::Tensor& grad);

    /** Convenience: loss + backward in one call. */
    double train_loss(const data::ClickBatch& batch);
    /** Predicted click probabilities. */
    std::vector<double> predict(const data::ClickBatch& batch);

    std::vector<nn::Param*> params();
    /** Swap precision; optionally keep first/last MLP layers in FP32
     *  (the paper's mixed-precision production recipe, Table VI). */
    void set_spec(const nn::QuantSpec& spec,
                  bool keep_first_last_fp32 = false);
    /** Change embedding storage format. */
    void set_embedding_storage(std::optional<core::BdrFormat> fmt);

    /** Freeze both MLPs and snapshot every embedding table (the
     *  memory-bound recommendation-serving path). */
    void freeze();
    /** set_spec() then freeze(). */
    void freeze(const nn::QuantSpec& spec,
                bool keep_first_last_fp32 = false);
    void unfreeze();
    bool frozen() const { return top_->frozen(); }

    const DlrmConfig& config() const { return cfg_; }

    /** Serializable state slots in artifact order. */
    void collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out);

    /** Write the frozen model as an MXFROZEN artifact. */
    void save_frozen(const std::string& path);

    /** Rebuild a serve-ready model from an opened artifact. */
    static DlrmMini load_frozen(const artifact::ArtifactReader& reader,
                                const artifact::LoadOptions& opts = {});

    /** Open @p path and load. */
    static DlrmMini load_frozen(const std::string& path);

  private:
    DlrmConfig cfg_;
    stats::Rng rng_;
    std::vector<std::unique_ptr<nn::Embedding>> tables_;
    std::unique_ptr<MlpClassifier> bottom_; // dense -> embed_dim
    std::unique_ptr<MlpClassifier> top_;    // interactions -> 1 logit
    // Caches for the interaction backward.
    tensor::Tensor cached_features_; // [n, F+1, D] stacked feature vectors
    std::int64_t cached_n_ = 0;
};

} // namespace models
} // namespace mx
