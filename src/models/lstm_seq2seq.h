#pragma once

/**
 * @file
 * LSTM encoder-decoder (GNMT stand-in for the Table III translation
 * rows).  The encoder consumes the source sequence; its final (h, c)
 * seeds the decoder, which is trained with teacher forcing and evaluated
 * by greedy decoding + BLEU.
 */

#include <memory>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "data/synthetic.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/losses.h"

namespace mx {
namespace models {

/** Sizing/precision of the seq2seq model. */
struct Seq2SeqConfig
{
    int vocab = 32;
    int embed_dim = 32;
    int hidden_dim = 64;
    int seq_len = 8;
    nn::QuantSpec spec;
    std::uint64_t seed = 11;
};

/** Encoder-decoder LSTM translator. */
class LstmSeq2Seq
{
  public:
    explicit LstmSeq2Seq(Seq2SeqConfig cfg);

    /**
     * Teacher-forced loss on a batch (tokens = source, labels = target)
     * with gradient accumulation.
     */
    double train_loss(const data::SequenceBatch& batch);

    /** Teacher-forced eval loss (no gradients). */
    double eval_loss(const data::SequenceBatch& batch);

    /** Greedy decode of one source row. */
    std::vector<int> decode(const std::vector<int>& source);

    /** Corpus BLEU of greedy decodes against gold targets. */
    double bleu(const data::SequenceBatch& batch,
                const data::TranslationPairs& task);

    std::vector<nn::Param*> params();
    void set_spec(const nn::QuantSpec& spec);

    /** Freeze both LSTMs, the projection and the embeddings under
     *  their current specs (greedy decoding stops re-quantizing the
     *  gate weights every step). */
    void freeze();
    /** set_spec() then freeze(). */
    void freeze(const nn::QuantSpec& spec);
    void unfreeze();
    bool frozen() const { return proj_->frozen(); }

    const Seq2SeqConfig& config() const { return cfg_; }

    /** Serializable state slots in artifact order. */
    void collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out);

    /** Write the frozen model as an MXFROZEN artifact. */
    void save_frozen(const std::string& path);

    /** Rebuild a serve-ready model from an opened artifact. */
    static LstmSeq2Seq
    load_frozen(const artifact::ArtifactReader& reader,
                const artifact::LoadOptions& opts = {});

    /** Open @p path and load. */
    static LstmSeq2Seq load_frozen(const std::string& path);

  private:
    /** Shared forward; returns decoder logits [n*T, vocab]. */
    tensor::Tensor forward(const data::SequenceBatch& batch, bool train);
    void backward(const tensor::Tensor& dlogits);

    Seq2SeqConfig cfg_;
    stats::Rng rng_;
    std::unique_ptr<nn::Embedding> src_emb_, tgt_emb_;
    std::unique_ptr<nn::Lstm> encoder_, decoder_;
    std::unique_ptr<nn::Linear> proj_;
    std::int64_t cached_n_ = 0;
    std::vector<int> cached_dec_inputs_;
};

} // namespace models
} // namespace mx
