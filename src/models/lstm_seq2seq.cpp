#include "models/lstm_seq2seq.h"

#include "artifact/writer.h"
#include "core/check.h"
#include "stats/metrics.h"

namespace mx {
namespace models {

using tensor::Tensor;

namespace {

/** Teacher-forcing input: target shifted right, position 0 = BOS (0). */
std::vector<int>
shift_right(const std::vector<int>& labels, std::int64_t n,
            std::int64_t seq_len)
{
    std::vector<int> in(labels.size());
    for (std::int64_t i = 0; i < n; ++i) {
        in[static_cast<std::size_t>(i * seq_len)] = 0;
        for (std::int64_t t = 1; t < seq_len; ++t)
            in[static_cast<std::size_t>(i * seq_len + t)] =
                labels[static_cast<std::size_t>(i * seq_len + t - 1)];
    }
    return in;
}

} // namespace

LstmSeq2Seq::LstmSeq2Seq(Seq2SeqConfig cfg) : cfg_(cfg), rng_(cfg.seed)
{
    src_emb_ = std::make_unique<nn::Embedding>(cfg_.vocab, cfg_.embed_dim,
                                               rng_);
    tgt_emb_ = std::make_unique<nn::Embedding>(cfg_.vocab, cfg_.embed_dim,
                                               rng_);
    encoder_ = std::make_unique<nn::Lstm>(cfg_.embed_dim, cfg_.hidden_dim,
                                          cfg_.seq_len, cfg_.spec, rng_);
    decoder_ = std::make_unique<nn::Lstm>(cfg_.embed_dim, cfg_.hidden_dim,
                                          cfg_.seq_len, cfg_.spec, rng_);
    proj_ = std::make_unique<nn::Linear>(cfg_.hidden_dim, cfg_.vocab,
                                         cfg_.spec, rng_);
}

Tensor
LstmSeq2Seq::forward(const data::SequenceBatch& batch, bool train)
{
    MX_CHECK_ARG(batch.seq_len == cfg_.seq_len,
                 "LstmSeq2Seq: sequence length mismatch");
    if (train)
        cached_n_ = batch.n; // eval forwards stay mutation-free

    Tensor src = src_emb_->forward(batch.tokens, train);
    nn::LstmState enc_state = encoder_->initial_state(batch.n);
    encoder_->forward_seq(src, enc_state, train);

    std::vector<int> dec_inputs =
        shift_right(batch.labels, batch.n, cfg_.seq_len);
    Tensor tgt = tgt_emb_->forward(dec_inputs, train);
    if (train)
        cached_dec_inputs_ = std::move(dec_inputs);
    nn::LstmState dec_state = enc_state; // decoder starts where enc ended
    Tensor hidden = decoder_->forward_seq(tgt, dec_state, train);
    return proj_->forward(hidden, train);
}

void
LstmSeq2Seq::backward(const Tensor& dlogits)
{
    Tensor dh_seq = proj_->backward(dlogits);
    nn::LstmState dec_initial_grad;
    Tensor dtgt = decoder_->backward_seq(dh_seq, nn::LstmState{},
                                         dec_initial_grad);
    tgt_emb_->backward(dtgt);

    // The decoder's initial state is the encoder's final state.
    Tensor zero_h = Tensor::zeros({cached_n_ * cfg_.seq_len,
                                   cfg_.hidden_dim});
    nn::LstmState enc_initial_grad;
    Tensor dsrc = encoder_->backward_seq(zero_h, dec_initial_grad,
                                         enc_initial_grad);
    src_emb_->backward(dsrc);
}

double
LstmSeq2Seq::train_loss(const data::SequenceBatch& batch)
{
    Tensor logits = forward(batch, /*train=*/true);
    nn::LossResult res = nn::softmax_cross_entropy(logits, batch.labels);
    backward(res.grad);
    return res.loss;
}

double
LstmSeq2Seq::eval_loss(const data::SequenceBatch& batch)
{
    Tensor logits = forward(batch, /*train=*/false);
    return nn::softmax_cross_entropy(logits, batch.labels).loss;
}

std::vector<int>
LstmSeq2Seq::decode(const std::vector<int>& source)
{
    MX_CHECK_ARG(static_cast<std::int64_t>(source.size()) == cfg_.seq_len,
                 "decode: source length mismatch");
    Tensor src = src_emb_->forward(source, /*train=*/false);
    nn::LstmState enc_state = encoder_->initial_state(1);
    encoder_->forward_seq(src, enc_state, /*train=*/false);

    // Greedy, one token at a time.  The LSTM consumes fixed-length
    // sequences, so re-run with the generated prefix each step (state at
    // position t only depends on the prefix, so the padding is inert).
    std::vector<int> out;
    std::vector<int> dec_in(static_cast<std::size_t>(cfg_.seq_len), 0);
    for (std::int64_t t = 0; t < cfg_.seq_len; ++t) {
        for (std::int64_t j = 0; j < static_cast<std::int64_t>(out.size());
             ++j)
            dec_in[static_cast<std::size_t>(j + 1)] =
                out[static_cast<std::size_t>(j)];
        Tensor emb = tgt_emb_->forward(dec_in, /*train=*/false);
        nn::LstmState st = enc_state;
        Tensor hidden = decoder_->forward_seq(emb, st, /*train=*/false);
        Tensor logits = proj_->forward(hidden, /*train=*/false);
        const float* row = logits.data() + t * cfg_.vocab;
        int best = 0;
        for (int v = 1; v < cfg_.vocab; ++v)
            if (row[v] > row[best])
                best = v;
        out.push_back(best);
    }
    return out;
}

double
LstmSeq2Seq::bleu(const data::SequenceBatch& batch,
                  const data::TranslationPairs& task)
{
    std::vector<std::vector<int>> cands, refs;
    for (std::int64_t i = 0; i < batch.n; ++i) {
        std::vector<int> src = batch.row(i);
        cands.push_back(decode(src));
        refs.push_back(task.translate(src));
    }
    return stats::bleu(cands, refs);
}

std::vector<nn::Param*>
LstmSeq2Seq::params()
{
    std::vector<nn::Param*> ps;
    src_emb_->collect_params(ps);
    tgt_emb_->collect_params(ps);
    encoder_->collect_params(ps);
    decoder_->collect_params(ps);
    proj_->collect_params(ps);
    return ps;
}

void
LstmSeq2Seq::set_spec(const nn::QuantSpec& spec)
{
    cfg_.spec = spec;
    encoder_->spec() = spec;
    decoder_->spec() = spec;
    proj_->spec() = spec;
}

void
LstmSeq2Seq::freeze()
{
    src_emb_->freeze();
    tgt_emb_->freeze();
    encoder_->freeze();
    decoder_->freeze();
    proj_->freeze();
}

void
LstmSeq2Seq::freeze(const nn::QuantSpec& spec)
{
    set_spec(spec);
    freeze();
}

void
LstmSeq2Seq::unfreeze()
{
    src_emb_->unfreeze();
    tgt_emb_->unfreeze();
    encoder_->unfreeze();
    decoder_->unfreeze();
    proj_->unfreeze();
}

void
LstmSeq2Seq::collect_state(const std::string& prefix,
                           std::vector<nn::FrozenStateRef>& out)
{
    src_emb_->collect_state(prefix + "src_emb.", out);
    tgt_emb_->collect_state(prefix + "tgt_emb.", out);
    encoder_->collect_state(prefix + "encoder.", out);
    decoder_->collect_state(prefix + "decoder.", out);
    proj_->collect_state(prefix + "proj.", out);
}

void
LstmSeq2Seq::save_frozen(const std::string& path)
{
    MX_CHECK_ARG(frozen(), "LstmSeq2Seq: save_frozen() needs freeze()");
    artifact::ByteWriter cfg;
    cfg.u32(static_cast<std::uint32_t>(cfg_.vocab));
    cfg.u32(static_cast<std::uint32_t>(cfg_.embed_dim));
    cfg.u32(static_cast<std::uint32_t>(cfg_.hidden_dim));
    cfg.u32(static_cast<std::uint32_t>(cfg_.seq_len));
    cfg.spec(cfg_.spec);
    cfg.u64(cfg_.seed);
    artifact::ArtifactWriter w(artifact::ModelFamily::Seq2Seq, cfg.take());
    std::vector<nn::FrozenStateRef> refs;
    collect_state("", refs);
    w.add_all(refs);
    w.write(path);
}

LstmSeq2Seq
LstmSeq2Seq::load_frozen(const artifact::ArtifactReader& reader,
                         const artifact::LoadOptions& opts)
{
    if (reader.family() != artifact::ModelFamily::Seq2Seq)
        throw artifact::SchemaError(
            "artifact: not a seq2seq artifact (family tag " +
            std::to_string(static_cast<std::uint32_t>(reader.family())) +
            ")");
    artifact::ByteReader r = reader.config();
    Seq2SeqConfig cfg;
    cfg.vocab = static_cast<int>(r.u32());
    cfg.embed_dim = static_cast<int>(r.u32());
    cfg.hidden_dim = static_cast<int>(r.u32());
    cfg.seq_len = static_cast<int>(r.u32());
    cfg.spec = r.spec();
    cfg.seed = r.u64();
    LstmSeq2Seq m(std::move(cfg));
    std::vector<nn::FrozenStateRef> refs;
    m.collect_state("", refs);
    reader.load_into(refs, opts);
    return m;
}

LstmSeq2Seq
LstmSeq2Seq::load_frozen(const std::string& path)
{
    return load_frozen(artifact::ArtifactReader(path));
}

} // namespace models
} // namespace mx
