#pragma once

/**
 * @file
 * MLP classifier (the simplest Table III family; also the bottom/top
 * stacks reused by DLRM).
 */

#include <memory>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace mx {
namespace models {

/** Feed-forward classifier: Linear/ReLU stack ending in class logits. */
class MlpClassifier
{
  public:
    /**
     * @param input_dim    input feature width
     * @param hidden_dims  one entry per hidden layer
     * @param num_classes  logit width
     * @param spec         quantization policy for every Linear
     * @param seed         init seed
     */
    MlpClassifier(std::int64_t input_dim,
                  const std::vector<std::int64_t>& hidden_dims,
                  std::int64_t num_classes, nn::QuantSpec spec,
                  std::uint64_t seed);

    /** Class logits [n, classes]. */
    tensor::Tensor logits(const tensor::Tensor& x, bool train);
    /** Backward from logit gradients; returns the input gradient (used
     *  when the MLP is embedded in a larger model, e.g. DLRM). */
    tensor::Tensor backward(const tensor::Tensor& grad);

    std::vector<nn::Param*> params();
    /** Swap the quantization policy everywhere.  When
     *  @p keep_first_last_fp32 is set, the first and last Linear keep
     *  FP32 (the paper's mixed-precision recipe, Table VI). */
    void set_spec(const nn::QuantSpec& spec,
                  bool keep_first_last_fp32 = false);

    /** Freeze every layer under its current spec (direct-cast serving:
     *  weights quantized once, not per request). */
    void freeze();
    /** set_spec() then freeze(). */
    void freeze(const nn::QuantSpec& spec,
                bool keep_first_last_fp32 = false);
    void unfreeze();
    bool frozen() const;

    /** Serializable state slots in artifact order. */
    void collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out);

    /** Write the frozen model as an MXFROZEN artifact (requires
     *  frozen(); per-layer specs — e.g. keep-first/last-FP32 — are
     *  stored per entry and survive the round trip). */
    void save_frozen(const std::string& path);

    /** Rebuild a serve-ready model from an already-opened artifact;
     *  loaded FrozenTensor handles view (and share) its mapping. */
    static MlpClassifier
    load_frozen(const artifact::ArtifactReader& reader,
                const artifact::LoadOptions& opts = {});

    /** Open @p path and load. */
    static MlpClassifier load_frozen(const std::string& path);

  private:
    std::int64_t input_dim_, classes_;
    std::vector<std::int64_t> hidden_dims_;
    std::uint64_t seed_;
    stats::Rng rng_;
    nn::Sequential net_;
    std::vector<nn::Linear*> linears_;
};

} // namespace models
} // namespace mx
