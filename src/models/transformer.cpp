#include "models/transformer.h"

#include "artifact/writer.h"
#include "core/check.h"

namespace mx {
namespace models {

using tensor::Tensor;

TransformerBlock::TransformerBlock(std::int64_t d_model, std::int64_t heads,
                                   std::int64_t seq_len, bool causal,
                                   nn::QuantSpec spec, bool bf16_vector,
                                   stats::Rng& rng)
{
    ln1_ = std::make_unique<nn::LayerNorm>(d_model, bf16_vector);
    ln2_ = std::make_unique<nn::LayerNorm>(d_model, bf16_vector);
    attn_ = std::make_unique<nn::MultiHeadAttention>(d_model, heads, seq_len,
                                                     causal, spec, rng);
    ff1_ = std::make_unique<nn::Linear>(d_model, 4 * d_model, spec, rng);
    ff2_ = std::make_unique<nn::Linear>(4 * d_model, d_model, spec, rng);
    act_ = std::make_unique<nn::ActivationLayer>(nn::Activation::GELU,
                                                 bf16_vector);
}

void
TransformerBlock::set_spec(const nn::QuantSpec& spec)
{
    attn_->set_spec(spec);
    ff1_->spec() = spec;
    ff2_->spec() = spec;
}

void
TransformerBlock::freeze()
{
    ln1_->freeze();
    ln2_->freeze();
    attn_->freeze();
    ff1_->freeze();
    ff2_->freeze();
}

void
TransformerBlock::freeze(const nn::QuantSpec& spec)
{
    set_spec(spec);
    freeze();
}

void
TransformerBlock::unfreeze()
{
    ln1_->unfreeze();
    ln2_->unfreeze();
    attn_->unfreeze();
    ff1_->unfreeze();
    ff2_->unfreeze();
}

Tensor
TransformerBlock::forward(const Tensor& x, bool train)
{
    // PackedOperand handoff boundaries: inside attention the wq/wk/wv
    // projections share one quantized view of the post-LN input (see
    // MultiHeadAttention::project_qkv).  Between the attention
    // out-projection and ff1 no handoff is possible — the residual
    // add, LayerNorm, and (for ff2) GELU rewrite every element, so the
    // downstream layer quantizes a genuinely different matrix; the
    // FP32 activation passed here is the correct (and bit-identical)
    // form.
    Tensor h = x;
    Tensor a = attn_->forward(ln1_->forward(h, train), train);
    tensor::axpy(h, 1.0f, a); // residual

    Tensor f = ff2_->forward(
        act_->forward(ff1_->forward(ln2_->forward(h, train), train), train),
        train);
    tensor::axpy(h, 1.0f, f); // residual
    return h;
}

bool
TransformerBlock::prefix_reusable() const
{
    return attn_->prefix_reusable();
}

Tensor
TransformerBlock::forward_suffix(const Tensor& x_suffix,
                                 nn::AttnPrefixCache& cache)
{
    // Same op sequence as forward(x, false) restricted to the new
    // positions: every non-attention op is position-wise, so
    // restricting to a row subset cannot change any row's bits.
    Tensor h = x_suffix;
    Tensor a = attn_->forward_suffix(ln1_->forward(h, /*train=*/false),
                                     cache);
    tensor::axpy(h, 1.0f, a); // residual

    Tensor f = ff2_->forward(
        act_->forward(
            ff1_->forward(ln2_->forward(h, /*train=*/false),
                          /*train=*/false),
            /*train=*/false),
        /*train=*/false);
    tensor::axpy(h, 1.0f, f); // residual
    return h;
}

Tensor
TransformerBlock::backward(const Tensor& grad_out)
{
    // Second residual: dh = g + dFFN(g).
    Tensor g = grad_out;
    Tensor df = ln2_->backward(
        ff1_->backward(act_->backward(ff2_->backward(g))));
    Tensor dh = g;
    tensor::axpy(dh, 1.0f, df);

    // First residual: dx = dh + dAttn(dh).
    Tensor da = ln1_->backward(attn_->backward(dh));
    Tensor dx = dh;
    tensor::axpy(dx, 1.0f, da);
    return dx;
}

void
TransformerBlock::collect_params(std::vector<nn::Param*>& out)
{
    ln1_->collect_params(out);
    attn_->collect_params(out);
    ln2_->collect_params(out);
    ff1_->collect_params(out);
    ff2_->collect_params(out);
}

namespace {

/** Position index vector [0..T-1] repeated for each row of a batch. */
std::vector<int>
position_ids(std::int64_t n, std::int64_t seq_len)
{
    std::vector<int> ids(static_cast<std::size_t>(n * seq_len));
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t t = 0; t < seq_len; ++t)
            ids[static_cast<std::size_t>(i * seq_len + t)] =
                static_cast<int>(t);
    return ids;
}

} // namespace

BertMini::BertMini(TransformerConfig cfg, int num_classes)
    : cfg_(cfg), rng_(cfg.seed)
{
    tok_emb_ = std::make_unique<nn::Embedding>(cfg_.vocab, cfg_.d_model,
                                               rng_);
    pos_emb_ = std::make_unique<nn::Embedding>(cfg_.seq_len, cfg_.d_model,
                                               rng_);
    for (int l = 0; l < cfg_.layers; ++l)
        blocks_.push_back(std::make_unique<TransformerBlock>(
            cfg_.d_model, cfg_.heads, cfg_.seq_len, /*causal=*/false,
            cfg_.spec, cfg_.bf16_vector, rng_));
    final_ln_ = std::make_unique<nn::LayerNorm>(cfg_.d_model,
                                                cfg_.bf16_vector);
    cls_head_ = std::make_unique<nn::Linear>(cfg_.d_model, num_classes,
                                             cfg_.spec, rng_);
    qa_head_ = std::make_unique<nn::Linear>(cfg_.d_model, 2, cfg_.spec,
                                            rng_);
}

Tensor
BertMini::encode(const data::SequenceBatch& batch, bool train)
{
    MX_CHECK_ARG(batch.seq_len == cfg_.seq_len,
                 "BertMini: sequence length mismatch");
    if (train)
        cached_n_ = batch.n; // eval forwards stay mutation-free
    Tensor h = tok_emb_->forward(batch.tokens, train);
    Tensor p = pos_emb_->forward(position_ids(batch.n, cfg_.seq_len), train);
    tensor::axpy(h, 1.0f, p);
    for (auto& b : blocks_)
        h = b->forward(h, train);
    return final_ln_->forward(h, train);
}

Tensor
BertMini::encode_backward(const Tensor& grad)
{
    Tensor g = final_ln_->backward(grad);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
        g = (*it)->backward(g);
    tok_emb_->backward(g);
    pos_emb_->backward(g);
    return g;
}

Tensor
BertMini::class_logits(const data::SequenceBatch& batch, bool train)
{
    Tensor h = encode(batch, train); // [n*T, d]
    // Pool position 0 of each sequence ([CLS]-style).
    Tensor pooled({batch.n, cfg_.d_model});
    for (std::int64_t i = 0; i < batch.n; ++i) {
        const float* src = h.data() + (i * cfg_.seq_len) * cfg_.d_model;
        std::copy(src, src + cfg_.d_model,
                  pooled.data() + i * cfg_.d_model);
    }
    if (train)
        last_head_ = 1;
    return cls_head_->forward(pooled, train);
}

void
BertMini::class_backward(const Tensor& grad)
{
    MX_CHECK_ARG(last_head_ == 1, "BertMini: class_backward head mismatch");
    Tensor dpooled = cls_head_->backward(grad);
    Tensor dh = Tensor::zeros({cached_n_ * cfg_.seq_len, cfg_.d_model});
    for (std::int64_t i = 0; i < cached_n_; ++i) {
        float* dst = dh.data() + (i * cfg_.seq_len) * cfg_.d_model;
        const float* src = dpooled.data() + i * cfg_.d_model;
        std::copy(src, src + cfg_.d_model, dst);
    }
    encode_backward(dh);
}

Tensor
BertMini::qa_logits(const data::SequenceBatch& batch, bool train)
{
    Tensor h = encode(batch, train);
    if (train)
        last_head_ = 2;
    return qa_head_->forward(h, train); // [n*T, 2]
}

void
BertMini::qa_backward(const Tensor& grad)
{
    MX_CHECK_ARG(last_head_ == 2, "BertMini: qa_backward head mismatch");
    encode_backward(qa_head_->backward(grad));
}

std::vector<std::pair<int, int>>
BertMini::predict_spans(const data::SequenceBatch& batch)
{
    Tensor logits = qa_logits(batch, /*train=*/false);
    std::vector<std::pair<int, int>> spans;
    spans.reserve(static_cast<std::size_t>(batch.n));
    for (std::int64_t i = 0; i < batch.n; ++i) {
        int best_s = 0, best_e = 0;
        float bs = -1e30f, be = -1e30f;
        for (std::int64_t t = 0; t < cfg_.seq_len; ++t) {
            float s = logits.data()[(i * cfg_.seq_len + t) * 2 + 0];
            float e = logits.data()[(i * cfg_.seq_len + t) * 2 + 1];
            if (s > bs) {
                bs = s;
                best_s = static_cast<int>(t);
            }
            if (e > be) {
                be = e;
                best_e = static_cast<int>(t);
            }
        }
        if (best_e < best_s)
            best_e = best_s;
        spans.emplace_back(best_s, best_e);
    }
    return spans;
}

std::vector<nn::Param*>
BertMini::params()
{
    std::vector<nn::Param*> ps;
    tok_emb_->collect_params(ps);
    pos_emb_->collect_params(ps);
    for (auto& b : blocks_)
        b->collect_params(ps);
    final_ln_->collect_params(ps);
    cls_head_->collect_params(ps);
    qa_head_->collect_params(ps);
    return ps;
}

std::int64_t
BertMini::param_count()
{
    std::int64_t n = 0;
    for (nn::Param* p : params())
        n += p->value.numel();
    return n;
}

void
BertMini::set_spec(const nn::QuantSpec& spec)
{
    cfg_.spec = spec;
    for (auto& b : blocks_)
        b->set_spec(spec);
    cls_head_->spec() = spec;
    qa_head_->spec() = spec;
}

void
BertMini::freeze()
{
    tok_emb_->freeze();
    pos_emb_->freeze();
    for (auto& b : blocks_)
        b->freeze();
    final_ln_->freeze();
    cls_head_->freeze();
    qa_head_->freeze();
}

void
BertMini::freeze(const nn::QuantSpec& spec)
{
    set_spec(spec);
    freeze();
}

void
BertMini::unfreeze()
{
    tok_emb_->unfreeze();
    pos_emb_->unfreeze();
    for (auto& b : blocks_)
        b->unfreeze();
    final_ln_->unfreeze();
    cls_head_->unfreeze();
    qa_head_->unfreeze();
}

bool
BertMini::frozen() const
{
    return cls_head_->frozen();
}

GptMini::GptMini(TransformerConfig cfg) : cfg_(cfg), rng_(cfg.seed)
{
    tok_emb_ = std::make_unique<nn::Embedding>(cfg_.vocab, cfg_.d_model,
                                               rng_);
    pos_emb_ = std::make_unique<nn::Embedding>(cfg_.seq_len, cfg_.d_model,
                                               rng_);
    for (int l = 0; l < cfg_.layers; ++l)
        blocks_.push_back(std::make_unique<TransformerBlock>(
            cfg_.d_model, cfg_.heads, cfg_.seq_len, /*causal=*/true,
            cfg_.spec, cfg_.bf16_vector, rng_));
    final_ln_ = std::make_unique<nn::LayerNorm>(cfg_.d_model,
                                                cfg_.bf16_vector);
    lm_head_ = std::make_unique<nn::Linear>(cfg_.d_model, cfg_.vocab,
                                            cfg_.spec, rng_, false);
}

Tensor
GptMini::encode(const data::SequenceBatch& batch, bool train)
{
    MX_CHECK_ARG(batch.seq_len == cfg_.seq_len,
                 "GptMini: sequence length mismatch");
    if (train)
        cached_n_ = batch.n; // eval forwards stay mutation-free
    Tensor h = tok_emb_->forward(batch.tokens, train);
    Tensor p = pos_emb_->forward(position_ids(batch.n, cfg_.seq_len), train);
    tensor::axpy(h, 1.0f, p);
    for (auto& b : blocks_)
        h = b->forward(h, train);
    return final_ln_->forward(h, train);
}

Tensor
GptMini::logits(const data::SequenceBatch& batch, bool train)
{
    return lm_head_->forward(encode(batch, train), train);
}

Tensor
GptMini::window_logits(const Tensor& windows)
{
    MX_CHECK_ARG(windows.ndim() == 2 && windows.dim(1) == cfg_.seq_len,
                 "GptMini: windows " << windows.shape_string()
                                     << " expects [*, " << cfg_.seq_len
                                     << "]");
    data::SequenceBatch b;
    b.n = windows.dim(0);
    b.seq_len = cfg_.seq_len;
    b.tokens.resize(static_cast<std::size_t>(b.n * b.seq_len));
    for (std::size_t i = 0; i < b.tokens.size(); ++i)
        b.tokens[i] = static_cast<int>(windows.data()[i]);
    // Only the last position feeds a next-token decision, so slice it
    // out *before* the LM head: quantize_rows and Linear's eval
    // forward are row-wise, so projecting the kept rows alone is
    // bit-identical to projecting all n*T positions.
    Tensor h = encode(b, /*train=*/false); // [n*T, d_model]
    Tensor last({b.n, static_cast<std::int64_t>(cfg_.d_model)});
    for (std::int64_t r = 0; r < b.n; ++r)
        std::copy(h.data() + ((r + 1) * cfg_.seq_len - 1) * cfg_.d_model,
                  h.data() + (r + 1) * cfg_.seq_len * cfg_.d_model,
                  last.data() + r * cfg_.d_model);
    return lm_head_->forward(last, /*train=*/false); // [n, vocab]
}

std::vector<float>
GptMini::pack_decode_row(const std::vector<int>& tokens,
                         std::int64_t seq_len)
{
    MX_CHECK_ARG(!tokens.empty() &&
                 static_cast<std::int64_t>(tokens.size()) <= seq_len,
                 "GptMini: decode context of " << tokens.size()
                     << " tokens does not fit a " << seq_len
                     << "-position window");
    std::vector<float> row(static_cast<std::size_t>(seq_len), -1.0f);
    for (std::size_t i = 0; i < tokens.size(); ++i)
        row[i] = static_cast<float>(tokens[i]);
    return row;
}

std::vector<int>
GptMini::unpack_decode_row(const float* row, std::int64_t seq_len)
{
    std::vector<int> tokens;
    tokens.reserve(static_cast<std::size_t>(seq_len));
    for (std::int64_t i = 0; i < seq_len && row[i] >= 0.0f; ++i)
        tokens.push_back(static_cast<int>(row[i]));
    return tokens;
}

std::size_t
decode_session_bytes(const GptDecodeSession& session)
{
    std::size_t total = session.tokens.size() * sizeof(int);
    for (const nn::AttnPrefixCache& c : session.layers)
        total += c.memory_bytes();
    return total;
}

Tensor
GptMini::decode_logits(const std::vector<int>& tokens,
                       GptDecodeSession* session)
{
    const std::int64_t T = cfg_.seq_len;
    const std::int64_t n = static_cast<std::int64_t>(tokens.size());
    MX_CHECK_ARG(n >= 1 && n <= T,
                 "GptMini: decode context of " << n
                     << " tokens does not fit a " << T
                     << "-position window");

    // Reusable prefix p: the longest shared token prefix with the
    // session, capped so at least the newest token's row recomputes.
    std::int64_t p = 0;
    const bool reuse = session != nullptr && !blocks_.empty() &&
                       blocks_.front()->prefix_reusable();
    if (reuse && !session->layers.empty()) {
        MX_CHECK_ARG(session->layers.size() == blocks_.size(),
                     "GptMini: session was built for a "
                         << session->layers.size()
                         << "-layer model, this one has "
                         << blocks_.size());
        const std::int64_t cached = static_cast<std::int64_t>(
            session->tokens.size());
        while (p < std::min({cached, n - 1}) &&
               session->tokens[static_cast<std::size_t>(p)] ==
                   tokens[static_cast<std::size_t>(p)])
            ++p;
        // A diverged stream keeps its still-valid prefix: under
        // causal-visibility quantization, K/V row j depends only on
        // tokens [0, j], so rows [0, p) survive.  A native MX cache may
        // retain fewer (it retreats to a V-slab boundary when the cut
        // falls inside a committed block), so clamp p to what every
        // layer actually kept.
        for (nn::AttnPrefixCache& c : session->layers)
            p = std::min(p, c.truncate(p));
    }
    if (session != nullptr && session->layers.empty())
        session->layers.resize(blocks_.size());

    // Scratch caches when prefix reuse is off: same code path with
    // p = 0 and nothing kept — the bit-identical fallback (each
    // position is a pure function of its visible tokens, so computing
    // the stream from scratch reproduces the incremental bits).
    std::vector<nn::AttnPrefixCache> scratch;
    std::vector<nn::AttnPrefixCache>* caches =
        reuse ? &session->layers : &scratch;
    if (!reuse)
        scratch.resize(blocks_.size());

    // Block-0 input rows [p, n): token embedding + position embedding
    // of the newly appended positions only.
    std::vector<int> suffix_tokens(tokens.begin() + p, tokens.end());
    std::vector<int> suffix_pos(static_cast<std::size_t>(n - p));
    for (std::int64_t i = p; i < n; ++i)
        suffix_pos[static_cast<std::size_t>(i - p)] = static_cast<int>(i);
    Tensor h = tok_emb_->forward(suffix_tokens, /*train=*/false);
    Tensor pe = pos_emb_->forward(suffix_pos, /*train=*/false);
    tensor::axpy(h, 1.0f, pe);

    for (std::size_t l = 0; l < blocks_.size(); ++l)
        h = blocks_[l]->forward_suffix(h, (*caches)[l]);

    if (reuse)
        session->tokens = tokens;

    // Only position n-1 (local row n-1-p) feeds the next-token
    // decision; final LN and the LM head are row-wise, so projecting
    // the kept row alone is bit-identical to projecting all T.
    Tensor last({1, static_cast<std::int64_t>(cfg_.d_model)});
    std::copy(h.data() + (n - 1 - p) * cfg_.d_model,
              h.data() + (n - p) * cfg_.d_model, last.data());
    last = final_ln_->forward(last, /*train=*/false);
    return lm_head_->forward(last, /*train=*/false); // [1, vocab]
}

void
GptMini::backward(const Tensor& grad)
{
    Tensor g = final_ln_->backward(lm_head_->backward(grad));
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
        g = (*it)->backward(g);
    tok_emb_->backward(g);
    pos_emb_->backward(g);
}

double
GptMini::eval_loss(const data::SequenceBatch& batch)
{
    Tensor l = logits(batch, /*train=*/false);
    return nn::softmax_cross_entropy(l, batch.labels).loss;
}

double
GptMini::train_loss(const data::SequenceBatch& batch)
{
    Tensor l = logits(batch, /*train=*/true);
    nn::LossResult res = nn::softmax_cross_entropy(l, batch.labels);
    backward(res.grad);
    return res.loss;
}

std::vector<nn::Param*>
GptMini::params()
{
    std::vector<nn::Param*> ps;
    tok_emb_->collect_params(ps);
    pos_emb_->collect_params(ps);
    for (auto& b : blocks_)
        b->collect_params(ps);
    final_ln_->collect_params(ps);
    lm_head_->collect_params(ps);
    return ps;
}

std::int64_t
GptMini::param_count()
{
    std::int64_t n = 0;
    for (nn::Param* p : params())
        n += p->value.numel();
    return n;
}

void
GptMini::set_spec(const nn::QuantSpec& spec)
{
    cfg_.spec = spec;
    for (auto& b : blocks_)
        b->set_spec(spec);
    lm_head_->spec() = spec;
}

void
GptMini::freeze()
{
    tok_emb_->freeze();
    pos_emb_->freeze();
    for (auto& b : blocks_)
        b->freeze();
    final_ln_->freeze();
    lm_head_->freeze();
}

void
GptMini::freeze(const nn::QuantSpec& spec)
{
    set_spec(spec);
    freeze();
}

void
GptMini::unfreeze()
{
    tok_emb_->unfreeze();
    pos_emb_->unfreeze();
    for (auto& b : blocks_)
        b->unfreeze();
    final_ln_->unfreeze();
    lm_head_->unfreeze();
}

bool
GptMini::frozen() const
{
    return lm_head_->frozen();
}

namespace {

/** TransformerConfig <-> config-blob serialization shared by the BERT
 *  and GPT artifacts. */
void
write_transformer_config(artifact::ByteWriter& w,
                         const TransformerConfig& cfg)
{
    w.u32(static_cast<std::uint32_t>(cfg.vocab));
    w.u32(static_cast<std::uint32_t>(cfg.d_model));
    w.u32(static_cast<std::uint32_t>(cfg.heads));
    w.u32(static_cast<std::uint32_t>(cfg.layers));
    w.u32(static_cast<std::uint32_t>(cfg.seq_len));
    w.spec(cfg.spec);
    w.u8(cfg.bf16_vector ? 1 : 0);
    w.u64(cfg.seed);
}

TransformerConfig
read_transformer_config(artifact::ByteReader& r)
{
    TransformerConfig cfg;
    cfg.vocab = static_cast<int>(r.u32());
    cfg.d_model = static_cast<int>(r.u32());
    cfg.heads = static_cast<int>(r.u32());
    cfg.layers = static_cast<int>(r.u32());
    cfg.seq_len = static_cast<int>(r.u32());
    cfg.spec = r.spec();
    cfg.bf16_vector = r.u8() != 0;
    cfg.seed = r.u64();
    return cfg;
}

void
check_family(const artifact::ArtifactReader& reader,
             artifact::ModelFamily expect, const char* what)
{
    if (reader.family() != expect)
        throw artifact::SchemaError(
            "artifact: not a " + std::string(what) +
            " artifact (family tag " +
            std::to_string(static_cast<std::uint32_t>(reader.family())) +
            ")");
}

} // namespace

void
BertMini::collect_state(const std::string& prefix,
                        std::vector<nn::FrozenStateRef>& out)
{
    tok_emb_->collect_state(prefix + "tok_emb.", out);
    pos_emb_->collect_state(prefix + "pos_emb.", out);
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        blocks_[i]->collect_state(
            prefix + "block" + std::to_string(i) + ".", out);
    final_ln_->collect_state(prefix + "final_ln.", out);
    cls_head_->collect_state(prefix + "cls_head.", out);
    qa_head_->collect_state(prefix + "qa_head.", out);
}

void
BertMini::save_frozen(const std::string& path)
{
    MX_CHECK_ARG(frozen(), "BertMini: save_frozen() needs freeze()");
    artifact::ByteWriter cfg;
    write_transformer_config(cfg, cfg_);
    cfg.u32(static_cast<std::uint32_t>(cls_head_->out_features()));
    artifact::ArtifactWriter w(artifact::ModelFamily::Bert, cfg.take());
    std::vector<nn::FrozenStateRef> refs;
    collect_state("", refs);
    w.add_all(refs);
    w.write(path);
}

BertMini
BertMini::load_frozen(const artifact::ArtifactReader& reader,
                      const artifact::LoadOptions& opts)
{
    check_family(reader, artifact::ModelFamily::Bert, "BERT");
    artifact::ByteReader r = reader.config();
    const TransformerConfig cfg = read_transformer_config(r);
    const int num_classes = static_cast<int>(r.u32());
    BertMini m(cfg, num_classes);
    std::vector<nn::FrozenStateRef> refs;
    m.collect_state("", refs);
    reader.load_into(refs, opts);
    return m;
}

BertMini
BertMini::load_frozen(const std::string& path)
{
    return load_frozen(artifact::ArtifactReader(path));
}

void
GptMini::collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out)
{
    tok_emb_->collect_state(prefix + "tok_emb.", out);
    pos_emb_->collect_state(prefix + "pos_emb.", out);
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        blocks_[i]->collect_state(
            prefix + "block" + std::to_string(i) + ".", out);
    final_ln_->collect_state(prefix + "final_ln.", out);
    lm_head_->collect_state(prefix + "lm_head.", out);
}

void
GptMini::save_frozen(const std::string& path)
{
    MX_CHECK_ARG(frozen(), "GptMini: save_frozen() needs freeze()");
    artifact::ByteWriter cfg;
    write_transformer_config(cfg, cfg_);
    artifact::ArtifactWriter w(artifact::ModelFamily::Gpt, cfg.take());
    std::vector<nn::FrozenStateRef> refs;
    collect_state("", refs);
    w.add_all(refs);
    w.write(path);
}

GptMini
GptMini::load_frozen(const artifact::ArtifactReader& reader,
                     const artifact::LoadOptions& opts)
{
    check_family(reader, artifact::ModelFamily::Gpt, "GPT");
    artifact::ByteReader r = reader.config();
    GptMini m(read_transformer_config(r));
    std::vector<nn::FrozenStateRef> refs;
    m.collect_state("", refs);
    reader.load_into(refs, opts);
    return m;
}

GptMini
GptMini::load_frozen(const std::string& path)
{
    return load_frozen(artifact::ArtifactReader(path));
}

} // namespace models
} // namespace mx
