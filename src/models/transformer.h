#pragma once

/**
 * @file
 * Transformer miniatures: a pre-LN block, an encoder-only model with
 * classification and QA heads (BERT stand-ins, Tables III/V), and a
 * decoder-only LM (GPT stand-in, Tables IV/VII, Figure 9).
 */

#include <memory>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/losses.h"

namespace mx {
namespace models {

/** Pre-LN transformer block: x + Attn(LN(x)), then x + FFN(LN(x)). */
class TransformerBlock : public nn::Layer
{
  public:
    TransformerBlock(std::int64_t d_model, std::int64_t heads,
                     std::int64_t seq_len, bool causal, nn::QuantSpec spec,
                     bool bf16_vector, stats::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<nn::Param*>& out) override;

    void
    collect_state(const std::string& prefix,
                  std::vector<nn::FrozenStateRef>& out) override
    {
        ln1_->collect_state(prefix + "ln1.", out);
        ln2_->collect_state(prefix + "ln2.", out);
        attn_->collect_state(prefix + "attn.", out);
        ff1_->collect_state(prefix + "ff1.", out);
        ff2_->collect_state(prefix + "ff2.", out);
    }

    void freeze() override;
    void freeze(const nn::QuantSpec& spec) override;
    void unfreeze() override;
    bool frozen() const override { return ff1_->frozen(); }

    /** Re-point every contraction at a new quantization policy. */
    void set_spec(const nn::QuantSpec& spec);

    /**
     * Eval-only incremental decode forward (batch 1): @p x_suffix
     * holds the block input rows for a stream's newly appended
     * positions; returns the same positions' block outputs and
     * advances @p cache past them.  LayerNorm, FFN, activation and
     * residual are all position-wise; attention reuses the cached K/V
     * prefix under causal-visibility quantization (see
     * nn::MultiHeadAttention::forward_suffix for the numerics
     * contract).
     */
    tensor::Tensor forward_suffix(const tensor::Tensor& x_suffix,
                                  nn::AttnPrefixCache& cache);

    /** True when forward_suffix may reuse a prefix (causal attention +
     *  row-independent activation format). */
    bool prefix_reusable() const;

  private:
    std::unique_ptr<nn::LayerNorm> ln1_, ln2_;
    std::unique_ptr<nn::MultiHeadAttention> attn_;
    std::unique_ptr<nn::Linear> ff1_, ff2_;
    std::unique_ptr<nn::ActivationLayer> act_;
};

/** Shared sizing/precision knobs for the transformer miniatures. */
struct TransformerConfig
{
    int vocab = 64;
    int d_model = 64;
    int heads = 4;
    int layers = 2;
    int seq_len = 16;
    nn::QuantSpec spec;        ///< contraction quantization policy
    bool bf16_vector = true;   ///< BF16-round element-wise ops (Fig 8)
    std::uint64_t seed = 7;
};

/** Encoder-only model with a [CLS]-style classification head and a
 *  span-extraction QA head (both heads always exist; use either). */
class BertMini
{
  public:
    /** @param num_classes classification head width */
    BertMini(TransformerConfig cfg, int num_classes);

    /** Per-sequence class logits [n, num_classes]. */
    tensor::Tensor class_logits(const data::SequenceBatch& batch,
                                bool train);
    /** Backward from class-logit gradients. */
    void class_backward(const tensor::Tensor& grad);

    /** QA span logits: [n*T, 2] (column 0 start, column 1 end). */
    tensor::Tensor qa_logits(const data::SequenceBatch& batch, bool train);
    /** Backward from QA-logit gradients. */
    void qa_backward(const tensor::Tensor& grad);

    /** Greedy span predictions from QA logits. */
    std::vector<std::pair<int, int>>
    predict_spans(const data::SequenceBatch& batch);

    /** All trainable parameters. */
    std::vector<nn::Param*> params();
    /** Total parameter count. */
    std::int64_t param_count();
    /** Swap the quantization policy on every contraction. */
    void set_spec(const nn::QuantSpec& spec);
    /** Freeze every block/head under its current spec. */
    void freeze();
    /** set_spec() then freeze() (direct-cast serving). */
    void freeze(const nn::QuantSpec& spec);
    void unfreeze();
    bool frozen() const;
    /** The configuration. */
    const TransformerConfig& config() const { return cfg_; }

    /** Serializable state slots in artifact order. */
    void collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out);

    /** Write the frozen model as an MXFROZEN artifact. */
    void save_frozen(const std::string& path);

    /** Rebuild a serve-ready model from an opened artifact. */
    static BertMini load_frozen(const artifact::ArtifactReader& reader,
                                const artifact::LoadOptions& opts = {});

    /** Open @p path and load. */
    static BertMini load_frozen(const std::string& path);

  private:
    tensor::Tensor encode(const data::SequenceBatch& batch, bool train);
    tensor::Tensor encode_backward(const tensor::Tensor& grad);

    TransformerConfig cfg_;
    stats::Rng rng_;
    std::unique_ptr<nn::Embedding> tok_emb_, pos_emb_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    std::unique_ptr<nn::LayerNorm> final_ln_;
    std::unique_ptr<nn::Linear> cls_head_; // [d_model -> classes]
    std::unique_ptr<nn::Linear> qa_head_;  // [d_model -> 2]
    std::int64_t cached_n_ = 0;
    int last_head_ = 0; // 1 = cls, 2 = qa
};

/**
 * One decode stream's prefix-reuse state: the token prefix whose
 * per-layer K/V projections are cached (serve/session_cache.h owns the
 * per-stream LRU lifecycle; GptMini::decode_logits consumes and
 * advances it).
 */
struct GptDecodeSession
{
    std::vector<int> tokens; ///< Prefix covered by the layer caches.
    std::vector<nn::AttnPrefixCache> layers; ///< One per block.
};

/** Heap bytes a decode session pins while resident (token prefix plus
 *  every layer's K/V state — packed MX streams in native mode, FP32
 *  rows in legacy mode); serve::SessionCache accounts this per
 *  session. */
std::size_t decode_session_bytes(const GptDecodeSession& session);

/** Decoder-only causal LM. */
class GptMini
{
  public:
    explicit GptMini(TransformerConfig cfg);

    /** Next-token logits [n*T, vocab]. */
    tensor::Tensor logits(const data::SequenceBatch& batch, bool train);
    /** Backward from logit gradients. */
    void backward(const tensor::Tensor& grad);

    /**
     * Serving adapter: each request row is one token window encoded as
     * floats ([B, seq_len]); returns the last position's next-token
     * logits [B, vocab] from an eval-mode forward.  This is the batch
     * function handed to serve::InferenceEngine for decode serving;
     * once frozen, its weight matmuls (projections + FFNs) run in the
     * packed domain via mx_gemm on the SIMD leg.
     */
    tensor::Tensor window_logits(const tensor::Tensor& windows);

    /**
     * Decode-serving adapter with prefix reuse: @p tokens is one
     * stream's context (1..seq_len tokens); returns the [1, vocab]
     * next-token logits at position tokens.size()-1.
     *
     * With @p session, the per-layer K/V rows of the longest shared
     * token prefix are reused and only the newly appended positions
     * recompute — the per-token decode win — and the session advances
     * to cover @p tokens.  With session == nullptr (or an
     * empty/diverged session, or a spec whose activations do not
     * quantize rows independently) every position recomputes.  Both
     * paths are bit-identical: attention runs under causal-visibility
     * quantization (each position's P V contraction spans exactly its
     * visible keys — nn::MultiHeadAttention::forward_suffix), which
     * makes position j's output a pure function of tokens [0, j].
     *
     * Note this deliberately differs from window_logits' numerics:
     * the fixed-window forward lets all seq_len keys share V
     * quantization blocks, coupling each position's output to keys it
     * cannot attend — which is also why no cache could ever be exact
     * there.  decode_logits is the serving path whose numerics an MX
     * KV cache reproduces natively.
     */
    tensor::Tensor decode_logits(const std::vector<int>& tokens,
                                 GptDecodeSession* session = nullptr);

    /** Encode a decode context as a serve request row: tokens, then
     *  -1 padding up to seq_len (serve rows have fixed width). */
    static std::vector<float>
    pack_decode_row(const std::vector<int>& tokens, std::int64_t seq_len);

    /** Inverse of pack_decode_row (stops at the first -1). */
    static std::vector<int> unpack_decode_row(const float* row,
                                              std::int64_t seq_len);

    /** Mean LM loss (natural log) of a batch, no caching. */
    double eval_loss(const data::SequenceBatch& batch);

    /** One training step's loss + gradient accumulation (caller steps
     *  the optimizer). */
    double train_loss(const data::SequenceBatch& batch);

    std::vector<nn::Param*> params();
    std::int64_t param_count();
    void set_spec(const nn::QuantSpec& spec);
    /** Freeze every block and the LM head under the current spec. */
    void freeze();
    /** set_spec() then freeze() (direct-cast serving). */
    void freeze(const nn::QuantSpec& spec);
    void unfreeze();
    bool frozen() const;
    const TransformerConfig& config() const { return cfg_; }

    /** Serializable state slots in artifact order. */
    void collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out);

    /** Write the frozen model as an MXFROZEN artifact. */
    void save_frozen(const std::string& path);

    /** Rebuild a serve-ready model from an opened artifact: every
     *  FrozenTensor handle views the reader's single mapping, so N
     *  models (serve replicas) loaded from one reader share it. */
    static GptMini load_frozen(const artifact::ArtifactReader& reader,
                               const artifact::LoadOptions& opts = {});

    /** Open @p path and load. */
    static GptMini load_frozen(const std::string& path);

  private:
    tensor::Tensor encode(const data::SequenceBatch& batch, bool train);

    TransformerConfig cfg_;
    stats::Rng rng_;
    std::unique_ptr<nn::Embedding> tok_emb_, pos_emb_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    std::unique_ptr<nn::LayerNorm> final_ln_;
    std::unique_ptr<nn::Linear> lm_head_;
    std::int64_t cached_n_ = 0;
};

} // namespace models
} // namespace mx
