#include "models/mlp.h"

#include "artifact/writer.h"
#include "core/check.h"

namespace mx {
namespace models {

using tensor::Tensor;

MlpClassifier::MlpClassifier(std::int64_t input_dim,
                             const std::vector<std::int64_t>& hidden_dims,
                             std::int64_t num_classes, nn::QuantSpec spec,
                             std::uint64_t seed)
    : input_dim_(input_dim), classes_(num_classes),
      hidden_dims_(hidden_dims), seed_(seed), rng_(seed)
{
    std::int64_t prev = input_dim;
    for (std::int64_t h : hidden_dims) {
        linears_.push_back(net_.emplace<nn::Linear>(prev, h, spec, rng_));
        net_.emplace<nn::ActivationLayer>(nn::Activation::ReLU);
        prev = h;
    }
    linears_.push_back(
        net_.emplace<nn::Linear>(prev, num_classes, spec, rng_));
}

Tensor
MlpClassifier::logits(const Tensor& x, bool train)
{
    return net_.forward(x, train);
}

Tensor
MlpClassifier::backward(const Tensor& grad)
{
    return net_.backward(grad);
}

std::vector<nn::Param*>
MlpClassifier::params()
{
    std::vector<nn::Param*> ps;
    net_.collect_params(ps);
    return ps;
}

void
MlpClassifier::freeze()
{
    net_.freeze();
}

void
MlpClassifier::freeze(const nn::QuantSpec& spec, bool keep_first_last_fp32)
{
    set_spec(spec, keep_first_last_fp32);
    freeze();
}

void
MlpClassifier::unfreeze()
{
    net_.unfreeze();
}

bool
MlpClassifier::frozen() const
{
    return net_.frozen();
}

void
MlpClassifier::collect_state(const std::string& prefix,
                             std::vector<nn::FrozenStateRef>& out)
{
    net_.collect_state(prefix + "net.", out);
}

void
MlpClassifier::save_frozen(const std::string& path)
{
    MX_CHECK_ARG(frozen(), "MlpClassifier: save_frozen() needs freeze()");
    artifact::ByteWriter cfg;
    cfg.u64(static_cast<std::uint64_t>(input_dim_));
    cfg.u32(static_cast<std::uint32_t>(hidden_dims_.size()));
    for (std::int64_t h : hidden_dims_)
        cfg.u64(static_cast<std::uint64_t>(h));
    cfg.u64(static_cast<std::uint64_t>(classes_));
    cfg.u64(seed_);
    artifact::ArtifactWriter w(artifact::ModelFamily::Mlp, cfg.take());
    std::vector<nn::FrozenStateRef> refs;
    collect_state("", refs);
    w.add_all(refs);
    w.write(path);
}

MlpClassifier
MlpClassifier::load_frozen(const artifact::ArtifactReader& reader,
                           const artifact::LoadOptions& opts)
{
    if (reader.family() != artifact::ModelFamily::Mlp)
        throw artifact::SchemaError(
            "artifact: not an MLP artifact (family tag " +
            std::to_string(static_cast<std::uint32_t>(reader.family())) +
            ")");
    artifact::ByteReader cfg = reader.config();
    const std::int64_t input_dim =
        static_cast<std::int64_t>(cfg.u64());
    std::vector<std::int64_t> hidden(cfg.u32());
    for (std::int64_t& h : hidden)
        h = static_cast<std::int64_t>(cfg.u64());
    const std::int64_t classes = static_cast<std::int64_t>(cfg.u64());
    const std::uint64_t seed = cfg.u64();
    // Per-layer specs are restored entry-by-entry by load_into.
    MlpClassifier m(input_dim, hidden, classes, nn::QuantSpec::fp32(),
                    seed);
    std::vector<nn::FrozenStateRef> refs;
    m.collect_state("", refs);
    reader.load_into(refs, opts);
    return m;
}

MlpClassifier
MlpClassifier::load_frozen(const std::string& path)
{
    return load_frozen(artifact::ArtifactReader(path));
}

void
MlpClassifier::set_spec(const nn::QuantSpec& spec,
                        bool keep_first_last_fp32)
{
    for (std::size_t i = 0; i < linears_.size(); ++i) {
        bool edge = i == 0 || i + 1 == linears_.size();
        linears_[i]->spec() = (edge && keep_first_last_fp32)
            ? nn::QuantSpec::fp32()
            : spec;
    }
}

} // namespace models
} // namespace mx
