#include "models/mlp.h"

namespace mx {
namespace models {

using tensor::Tensor;

MlpClassifier::MlpClassifier(std::int64_t input_dim,
                             const std::vector<std::int64_t>& hidden_dims,
                             std::int64_t num_classes, nn::QuantSpec spec,
                             std::uint64_t seed)
    : rng_(seed)
{
    std::int64_t prev = input_dim;
    for (std::int64_t h : hidden_dims) {
        linears_.push_back(net_.emplace<nn::Linear>(prev, h, spec, rng_));
        net_.emplace<nn::ActivationLayer>(nn::Activation::ReLU);
        prev = h;
    }
    linears_.push_back(
        net_.emplace<nn::Linear>(prev, num_classes, spec, rng_));
}

Tensor
MlpClassifier::logits(const Tensor& x, bool train)
{
    return net_.forward(x, train);
}

Tensor
MlpClassifier::backward(const Tensor& grad)
{
    return net_.backward(grad);
}

std::vector<nn::Param*>
MlpClassifier::params()
{
    std::vector<nn::Param*> ps;
    net_.collect_params(ps);
    return ps;
}

void
MlpClassifier::freeze()
{
    net_.freeze();
}

void
MlpClassifier::freeze(const nn::QuantSpec& spec, bool keep_first_last_fp32)
{
    set_spec(spec, keep_first_last_fp32);
    freeze();
}

void
MlpClassifier::unfreeze()
{
    net_.unfreeze();
}

bool
MlpClassifier::frozen() const
{
    return net_.frozen();
}

void
MlpClassifier::set_spec(const nn::QuantSpec& spec,
                        bool keep_first_last_fp32)
{
    for (std::size_t i = 0; i < linears_.size(); ++i) {
        bool edge = i == 0 || i + 1 == linears_.size();
        linears_[i]->spec() = (edge && keep_first_last_fp32)
            ? nn::QuantSpec::fp32()
            : spec;
    }
}

} // namespace models
} // namespace mx
