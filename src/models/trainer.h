#pragma once

/**
 * @file
 * Small training-loop helpers shared by the experiment benches: running
 * averages, simple schedules, and the precision recipes of Section V
 * (uniform MX training, direct cast, quantization-aware fine-tuning).
 */

#include <functional>
#include <string>

#include "core/bdr_format.h"
#include "nn/quant.h"

namespace mx {
namespace models {

/** The paper's Section V precision recipes. */
enum class Recipe
{
    Fp32Baseline,     ///< Everything in FP32.
    UniformTraining,  ///< One MX format for forward and backward.
    DirectCast,       ///< Trained high-precision, cast for inference.
    FineTune,         ///< Cast + a few QAT iterations (FP32 backward).
};

/** Human-readable name of a recipe. */
inline const char*
to_string(Recipe r)
{
    switch (r) {
      case Recipe::Fp32Baseline: return "FP32";
      case Recipe::UniformTraining: return "MX training";
      case Recipe::DirectCast: return "direct cast";
      case Recipe::FineTune: return "QA fine-tune";
    }
    return "?";
}

/**
 * QuantSpec for a recipe:
 *  - UniformTraining: fmt in both passes (MX9 training, Table III).
 *  - DirectCast / FineTune: fmt forward, FP32 backward (the paper uses
 *    FP32 for the backward pass in all fine-tuning experiments).
 */
inline nn::QuantSpec
recipe_spec(Recipe r, const core::BdrFormat& fmt)
{
    switch (r) {
      case Recipe::Fp32Baseline:
        return nn::QuantSpec::fp32();
      case Recipe::UniformTraining:
        return nn::QuantSpec::uniform(fmt);
      case Recipe::DirectCast:
      case Recipe::FineTune:
        return nn::QuantSpec::mixed(fmt, std::nullopt);
    }
    return nn::QuantSpec::fp32();
}

/** Exponential running average (for smoothed training-loss reporting). */
class RunningAverage
{
  public:
    explicit RunningAverage(double alpha = 0.05) : alpha_(alpha) {}

    /** Fold in one observation; returns the updated average. */
    double
    update(double x)
    {
        value_ = initialized_ ? (1.0 - alpha_) * value_ + alpha_ * x : x;
        initialized_ = true;
        return value_;
    }

    double value() const { return value_; }
    bool initialized() const { return initialized_; }

  private:
    double alpha_;
    double value_ = 0;
    bool initialized_ = false;
};

} // namespace models
} // namespace mx
