#pragma once

/**
 * @file
 * Miniature residual CNN (ResNet / MobileNet family stand-in for the
 * Table III image-classification rows).  Stem conv, two residual blocks,
 * global average pooling, linear classifier — every convolution lowered
 * to an MX-quantized matmul.
 */

#include <memory>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace mx {
namespace models {

/** Two-conv residual block with ReLU. */
class ResidualBlock : public nn::Layer
{
  public:
    ResidualBlock(std::int64_t channels, nn::QuantSpec spec,
                  stats::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<nn::Param*>& out) override;

    void
    collect_state(const std::string& prefix,
                  std::vector<nn::FrozenStateRef>& out) override
    {
        c1_->collect_state(prefix + "c1.", out);
        c2_->collect_state(prefix + "c2.", out);
    }

    void freeze() override;
    void freeze(const nn::QuantSpec& spec) override;
    void unfreeze() override;
    bool frozen() const override { return c1_->frozen(); }

    /** The two convolutions (for spec rewiring). */
    nn::Conv2d& conv1() { return *c1_; }
    nn::Conv2d& conv2() { return *c2_; }

  private:
    std::unique_ptr<nn::Conv2d> c1_, c2_;
    std::unique_ptr<nn::ActivationLayer> a1_, a2_;
};

/** The full miniature CNN classifier. */
class ResNetMini
{
  public:
    /**
     * @param image_size input is [n, 1, image_size, image_size]
     * @param channels   trunk width
     * @param num_classes logit width
     */
    ResNetMini(std::int64_t image_size, std::int64_t channels,
               std::int64_t num_classes, nn::QuantSpec spec,
               std::uint64_t seed);

    /** Class logits [n, classes] from images [n, 1, S, S]. */
    tensor::Tensor logits(const tensor::Tensor& images, bool train);
    void backward(const tensor::Tensor& grad);

    std::vector<nn::Param*> params();
    void set_spec(const nn::QuantSpec& spec,
                  bool keep_first_last_fp32 = false);

    /** Freeze every conv/linear under its current spec. */
    void freeze();
    /** set_spec() then freeze(). */
    void freeze(const nn::QuantSpec& spec,
                bool keep_first_last_fp32 = false);
    void unfreeze();
    bool frozen() const { return head_->frozen(); }

    /** Serializable state slots in artifact order. */
    void collect_state(const std::string& prefix,
                       std::vector<nn::FrozenStateRef>& out);

    /** Write the frozen model as an MXFROZEN artifact. */
    void save_frozen(const std::string& path);

    /** Rebuild a serve-ready model from an opened artifact. */
    static ResNetMini
    load_frozen(const artifact::ArtifactReader& reader,
                const artifact::LoadOptions& opts = {});

    /** Open @p path and load. */
    static ResNetMini load_frozen(const std::string& path);

  private:
    std::int64_t image_size_, channels_, classes_;
    std::uint64_t seed_;
    stats::Rng rng_;
    std::unique_ptr<nn::Conv2d> stem_;
    std::unique_ptr<nn::ActivationLayer> stem_act_;
    std::vector<std::unique_ptr<ResidualBlock>> blocks_;
    std::unique_ptr<nn::Linear> head_;
    std::int64_t cached_n_ = 0;
};

} // namespace models
} // namespace mx
