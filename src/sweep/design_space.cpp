#include "sweep/design_space.h"

#include <algorithm>
#include <sstream>

namespace mx {
namespace sweep {

std::string
DesignPoint::csv_header()
{
    return "name,m,d1,k1,d2,k2,bits_per_element,qsnr_db,"
           "norm_area,norm_memory,area_memory_product,pareto";
}

std::string
DesignPoint::csv_row() const
{
    std::ostringstream os;
    os << '"' << format.name << "\"," << format.m << ',' << format.d1 << ','
       << format.k1 << ',' << format.d2 << ',' << format.k2 << ','
       << bits_per_element << ',' << qsnr_db << ','
       << cost.normalized_area << ',' << cost.normalized_memory << ','
       << cost.area_memory_product << ',' << (on_pareto_frontier ? 1 : 0);
    return os.str();
}

std::vector<core::BdrFormat>
enumerate_formats(const SweepSpec& spec)
{
    std::vector<core::BdrFormat> out;
    for (int m : spec.mantissa_bits) {
        for (int k1 : spec.k1_values) {
            for (int k2 : spec.k2_values) {
                if (k2 == 0) {
                    // Plain BFP: no second level.
                    out.push_back(core::mx_custom(m, spec.d1, k1, 0, 1));
                    continue;
                }
                if (k2 > k1 || k1 % k2 != 0)
                    continue;
                for (int d2 : spec.d2_values)
                    out.push_back(core::mx_custom(m, spec.d1, k1, d2, k2));
            }
        }
    }
    if (spec.include_named_formats) {
        auto named = core::figure7_formats();
        for (auto& f : named) {
            // The MX/BFP members of figure7_formats() are already covered
            // by the enumeration; keep only the non-pow2 families.
            if (f.s_kind != core::ScaleKind::Pow2Hw)
                out.push_back(f);
        }
    }
    return out;
}

std::vector<DesignPoint>
evaluate(const std::vector<core::BdrFormat>& formats,
         const core::QsnrRunConfig& qsnr_cfg, const hw::CostModel& cost_model,
         core::ThreadPool& pool)
{
    // Each index fills only its own slot and measure_qsnr_db re-seeds
    // from qsnr_cfg.seed per call, so the shard order cannot influence
    // the result: 1 thread and N threads produce identical vectors.
    std::vector<DesignPoint> points(formats.size());
    pool.parallel_for(formats.size(), [&](std::size_t i) {
        DesignPoint& p = points[i];
        p.format = formats[i];
        p.qsnr_db = core::measure_qsnr_db(formats[i], qsnr_cfg);
        p.cost = cost_model.evaluate(formats[i]);
        p.bits_per_element = formats[i].bits_per_element();
    });
    mark_pareto_frontier(points);
    return points;
}

std::vector<DesignPoint>
evaluate(const std::vector<core::BdrFormat>& formats,
         const core::QsnrRunConfig& qsnr_cfg, const hw::CostModel& cost_model)
{
    return evaluate(formats, qsnr_cfg, cost_model,
                    core::ThreadPool::shared());
}

void
mark_pareto_frontier(std::vector<DesignPoint>& points)
{
    // Sort an index by cost ascending, then QSNR descending; walk once
    // keeping the running best QSNR.
    std::vector<std::size_t> idx(points.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        double ca = points[a].cost.area_memory_product;
        double cb = points[b].cost.area_memory_product;
        if (ca != cb)
            return ca < cb;
        return points[a].qsnr_db > points[b].qsnr_db;
    });
    double best = -1e300;
    for (std::size_t i : idx) {
        points[i].on_pareto_frontier = points[i].qsnr_db > best;
        best = std::max(best, points[i].qsnr_db);
    }
}

} // namespace sweep
} // namespace mx
