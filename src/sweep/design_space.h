#pragma once

/**
 * @file
 * Design-space exploration (paper Section IV): enumerate 800+ BDR
 * configurations, evaluate each with the statistical QSNR harness and
 * the hardware cost model, and extract the Pareto frontier of fidelity
 * versus normalized area-memory cost (Figure 7).
 */

#include <string>
#include <vector>

#include "core/bdr_format.h"
#include "core/qsnr_harness.h"
#include "core/thread_pool.h"
#include "hw/cost.h"

namespace mx {
namespace sweep {

/** One evaluated design point. */
struct DesignPoint
{
    core::BdrFormat format;
    double qsnr_db = 0;
    hw::CostPoint cost;
    double bits_per_element = 0;
    bool on_pareto_frontier = false;

    /** CSV row (matches csv_header()). */
    std::string csv_row() const;

    /** CSV header line for sweep dumps. */
    static std::string csv_header();
};

/** Which parts of the space to enumerate. */
struct SweepSpec
{
    /** Mantissa bit-widths (explicit bits). */
    std::vector<int> mantissa_bits = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    /** First-level block granularities. */
    std::vector<int> k1_values = {8, 16, 32, 64, 128};
    /** Second-level granularities (must divide k1; 0 = no second level). */
    std::vector<int> k2_values = {0, 1, 2, 4, 8};
    /** Second-level scale bit-widths (used when k2 > 0). */
    std::vector<int> d2_values = {1, 2, 3, 4};
    /** First-level scale bit-width (the paper fixes d1 = 8 for BDR). */
    int d1 = 8;
    /** Also include the named scalar FP / INT / VSQ comparison formats. */
    bool include_named_formats = true;
};

/**
 * Enumerate the BDR configurations of @p spec.  Invalid combinations
 * (k2 not dividing k1, k2 > k1) are skipped.  The default spec yields
 * 800+ configurations, matching the paper's sweep size.
 */
std::vector<core::BdrFormat> enumerate_formats(const SweepSpec& spec);

/**
 * Evaluate formats with the shared QSNR harness and cost model and mark
 * the Pareto-optimal points (maximal QSNR at no greater cost).
 *
 * Points are sharded across @p pool.  Every point re-seeds its own RNG
 * from qsnr_cfg.seed (see measure_qsnr_db), so the result vector is
 * bit-identical for any thread count — Figure 7 numbers do not depend
 * on MX_THREADS.
 */
std::vector<DesignPoint> evaluate(const std::vector<core::BdrFormat>& formats,
                                  const core::QsnrRunConfig& qsnr_cfg,
                                  const hw::CostModel& cost_model,
                                  core::ThreadPool& pool);

/** Same, on the process-wide pool (core::ThreadPool::shared()). */
std::vector<DesignPoint> evaluate(const std::vector<core::BdrFormat>& formats,
                                  const core::QsnrRunConfig& qsnr_cfg,
                                  const hw::CostModel& cost_model);

/**
 * Mark Pareto-frontier members in-place: a point is on the frontier iff
 * no other point has both lower-or-equal cost and strictly higher QSNR
 * (or equal QSNR at strictly lower cost).
 */
void mark_pareto_frontier(std::vector<DesignPoint>& points);

} // namespace sweep
} // namespace mx
