#include "core/theory.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mx {
namespace core {

double
qsnr_lower_bound_db(int m, int k1, int k2, int d2, std::size_t n)
{
    MX_CHECK_ARG(m >= 0 && k1 >= 1 && k2 >= 1 && d2 >= 0,
                 "qsnr_lower_bound_db: bad parameters");
    const double beta = static_cast<double>((1 << d2) - 1);
    const double two_2b = std::pow(2.0, 2.0 * beta);
    const double eff_k1 =
        static_cast<double>(std::min<std::size_t>(n, k1));
    const double denom = eff_k1 + (two_2b - 1.0) * k2;
    return 6.02 * m + 10.0 * std::log10(two_2b / denom);
}

double
qsnr_lower_bound_db(const BdrFormat& fmt, std::size_t n)
{
    MX_CHECK_ARG(fmt.elem == ElementKind::SignMagnitude &&
                 fmt.s_kind == ScaleKind::Pow2Hw,
                 fmt.name << ": Theorem 1 applies to pow2-scaled BDR");
    return qsnr_lower_bound_db(fmt.m, fmt.k1, fmt.d2 > 0 ? fmt.k2 : 1,
                               fmt.d2, n);
}

} // namespace core
} // namespace mx
