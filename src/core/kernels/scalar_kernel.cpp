/**
 * @file
 * Portable reference QuantKernel: thin dispatch-shaped wrappers around
 * the reference_* block routines in quant_kernel.cpp.  Every other
 * kernel implementation is tested bit-for-bit against this one.
 */

#include <vector>

#include "core/check.h"
#include "core/kernels/dispatch.h"
#include "core/kernels/quant_kernel.h"

namespace mx {
namespace core {
namespace kernels {

namespace {

/** Stack capacity for per-block pack scratch; larger k1 goes to heap. */
constexpr std::size_t kStackBlock = 512;

class ScalarKernel final : public QuantKernel
{
  public:
    const char* name() const override { return "scalar"; }

    void
    quantize(const QuantPlan& plan, std::span<const float> in,
             std::span<float> out, const Rounder& rounder) const override
    {
        MX_CHECK_ARG(in.size() == out.size(), "quantize: size mismatch");
        const std::size_t k1 = static_cast<std::size_t>(plan.k1);
        for (std::size_t off = 0; off < in.size(); off += k1) {
            const std::size_t n = std::min(k1, in.size() - off);
            reference_quantize_block(plan, in.data() + off, n,
                                     out.data() + off, rounder, nullptr,
                                     nullptr);
        }
    }

    void
    quantize_block(const QuantPlan& plan, std::span<const float> in,
                   std::span<float> out, const Rounder& rounder,
                   Pow2BlockEncoding* enc) const override
    {
        MX_CHECK_ARG(in.size() == out.size(),
                     "quantize_block: size mismatch");
        if (!enc) {
            reference_quantize_block(plan, in.data(), in.size(), out.data(),
                                     rounder, nullptr, nullptr);
            return;
        }
        enc->sub_shift.assign(plan.num_sub_blocks(in.size()), 0);
        enc->mantissa.assign(in.size(), 0);
        enc->shared_exp = reference_quantize_block(
            plan, in.data(), in.size(), out.data(), rounder,
            enc->sub_shift.data(), enc->mantissa.data());
    }

    void
    quantize_pack(const QuantPlan& plan, std::span<const float> in,
                  const Rounder& rounder, BitWriter& writer) const override
    {
        const std::size_t k1 = static_cast<std::size_t>(plan.k1);
        float out_stack[kStackBlock];
        std::uint8_t tau_stack[kStackBlock];
        std::int32_t mant_stack[kStackBlock];
        std::vector<float> out_heap;
        std::vector<std::uint8_t> tau_heap;
        std::vector<std::int32_t> mant_heap;
        float* out = out_stack;
        std::uint8_t* taus = tau_stack;
        std::int32_t* mant = mant_stack;
        if (k1 > kStackBlock) {
            out_heap.resize(k1);
            tau_heap.resize(plan.num_sub_blocks(k1));
            mant_heap.resize(k1);
            out = out_heap.data();
            taus = tau_heap.data();
            mant = mant_heap.data();
        }
        for (std::size_t off = 0; off < in.size(); off += k1) {
            const std::size_t n = std::min(k1, in.size() - off);
            const int shared = reference_quantize_block(
                plan, in.data() + off, n, out, rounder, taus, mant);
            detail::write_block_bits(plan, shared, taus,
                                     plan.num_sub_blocks(n), mant, n,
                                     writer);
        }
    }

    void
    dequantize_block(const QuantPlan& plan, const Pow2BlockEncoding& enc,
                     std::span<float> out) const override
    {
        MX_CHECK_ARG(out.size() == enc.mantissa.size(),
                     "dequantize_block: size mismatch");
        MX_CHECK_ARG(enc.sub_shift.size() >= plan.num_sub_blocks(out.size()),
                     "dequantize_block: missing sub-shifts");
        reference_dequantize_block(plan, enc.shared_exp,
                                   enc.sub_shift.data(), enc.mantissa.data(),
                                   out.size(), out.data());
    }
};

} // namespace

const QuantKernel&
scalar_kernel()
{
    static const ScalarKernel kernel;
    return kernel;
}

} // namespace kernels
} // namespace core
} // namespace mx
