/**
 * @file
 * AVX2 QuantKernel.  Bit-identical to the scalar reference by
 * construction: every lane performs the same IEEE double operations the
 * reference performs per element (multiply by an exact power of two,
 * round-to-nearest-even or truncate, saturate, multiply back, narrow to
 * float), and every case the vector path cannot mirror exactly is
 * delegated to the reference:
 *
 *  - NearestAway rounding (libm round() semantics) and Stochastic
 *    rounding (per-element RNG draw order) run the reference loop;
 *  - blocks whose shared exponent is so low that zero/subnormal
 *    sub-blocks would not clamp to the maximum shift take the reference
 *    path (shared_e < beta - 127 — impossible for normal-range data);
 *  - NaN-bearing blocks take the reference path (minps/maxps NaN
 *    semantics differ from std::min/std::max);
 *  - formats with k1 beyond the stack scratch size fall back entirely.
 *
 * tests/test_kernels.cpp asserts the equivalence over randomized
 * formats, sizes, magnitudes, and rounding modes.
 *
 * This translation unit is the only one compiled with -mavx2; callers
 * reach it through kernels/dispatch.h, which probes the CPU at runtime.
 */

#include "core/kernels/dispatch.h"
#include "core/kernels/quant_kernel.h"

#if defined(MX_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"

namespace mx {
namespace core {
namespace kernels {

namespace {

/** Stack capacity for per-block scratch; larger k1 delegates. */
constexpr std::size_t kStackBlock = 512;

/** 2^e as a double (the shared detail::pow2_double). */
inline double
pow2d(int e)
{
    return detail::pow2_double(e);
}

/** Horizontal max of 8 floats. */
inline float
hmax(__m256 v)
{
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    return _mm_cvtss_f32(m);
}

/**
 * The vectorized element loop: q = round(|x| * inv_step) saturated to
 * mant_max, out = sign(x) * q * step.  ROUND is an _MM_FROUND_* policy
 * (nearest-even or toward-zero); the scalar tail applies the identical
 * double-precision operations, so lanes and tail agree bit-for-bit.
 */
template <int ROUND>
void
element_loop(const float* in, const float* absv, std::size_t n,
             const double* step, const double* inv_step, double mant_max_d,
             float* out, std::int32_t* mant_out)
{
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    const __m256d mmax = _mm256_set1_pd(mant_max_d);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(in + i);
        const __m256 sign = _mm256_and_ps(v, sign_mask);
        const __m256 a = _mm256_loadu_ps(absv + i);
        const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(a));
        const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1));
        __m256d q_lo = _mm256_round_pd(
            _mm256_mul_pd(a_lo, _mm256_loadu_pd(inv_step + i)),
            ROUND | _MM_FROUND_NO_EXC);
        __m256d q_hi = _mm256_round_pd(
            _mm256_mul_pd(a_hi, _mm256_loadu_pd(inv_step + i + 4)),
            ROUND | _MM_FROUND_NO_EXC);
        q_lo = _mm256_min_pd(q_lo, mmax);
        q_hi = _mm256_min_pd(q_hi, mmax);
        const __m256d d_lo = _mm256_mul_pd(q_lo, _mm256_loadu_pd(step + i));
        const __m256d d_hi =
            _mm256_mul_pd(q_hi, _mm256_loadu_pd(step + i + 4));
        const __m256 deq = _mm256_set_m128(_mm256_cvtpd_ps(d_hi),
                                           _mm256_cvtpd_ps(d_lo));
        _mm256_storeu_ps(out + i, _mm256_or_ps(deq, sign));
        if (mant_out) {
            // q is integral and <= 2^24 - 1, so the int conversion is
            // exact under any MXCSR rounding mode.
            const __m256i q32 = _mm256_set_m128i(_mm256_cvtpd_epi32(q_hi),
                                                 _mm256_cvtpd_epi32(q_lo));
            const __m256i neg =
                _mm256_srai_epi32(_mm256_castps_si256(sign), 31);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(mant_out + i),
                _mm256_sub_epi32(_mm256_xor_si256(q32, neg), neg));
        }
    }
    for (; i < n; ++i) {
        const double a = static_cast<double>(absv[i]);
        double q = ROUND == _MM_FROUND_TO_ZERO ? std::trunc(a * inv_step[i])
                                               : std::nearbyint(a * inv_step[i]);
        q = std::min(q, mant_max_d);
        const double deq = q * step[i];
        const bool neg = std::signbit(in[i]);
        out[i] = static_cast<float>(neg ? -deq : deq);
        if (mant_out)
            mant_out[i] = static_cast<std::int32_t>(neg ? -q : q);
    }
}

/**
 * Quantize one block (n <= k1 <= kStackBlock).  Returns the shared
 * exponent.  Falls back to the reference for the exactness edge cases
 * documented at the top of the file.
 */
int
avx2_quantize_block(const QuantPlan& plan, const float* in, std::size_t n,
                    float* out, const Rounder& rounder,
                    std::uint8_t* tau_out, std::int32_t* mant_out)
{
    MX_CHECK_ARG(n <= static_cast<std::size_t>(plan.k1) && n <= kStackBlock,
                 "quantize_block: block larger than k1");
    alignas(32) float absv[kStackBlock];
    alignas(32) double step[kStackBlock];
    alignas(32) double inv_step[kStackBlock];
    std::uint8_t tau_local[kStackBlock];

    // |x| pass + block amax.  NaNs are tracked explicitly (maxps does
    // not propagate them stickily) so NaN-bearing blocks can take the
    // reference path — both kernels then agree on such inputs.
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 acc = _mm256_setzero_ps();
    __m256 nan_acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 a = _mm256_and_ps(_mm256_loadu_ps(in + i), abs_mask);
        _mm256_storeu_ps(absv + i, a);
        acc = _mm256_max_ps(acc, a);
        nan_acc = _mm256_or_ps(nan_acc, _mm256_cmp_ps(a, a, _CMP_UNORD_Q));
    }
    bool has_nan = _mm256_movemask_ps(nan_acc) != 0;
    float amax = hmax(acc);
    for (; i < n; ++i) {
        const float a = std::fabs(in[i]);
        absv[i] = a;
        amax = std::max(amax, a);
        has_nan |= a != a;
    }

    if (amax == 0.0f || has_nan)
        return reference_quantize_block(plan, in, n, out, rounder, tau_out,
                                        mant_out);
    int ex;
    std::frexp(amax, &ex);
    const int shared_e = std::clamp(ex - 1, plan.e_min, plan.e_max);
    if (shared_e < plan.beta - 127) {
        // A zero/subnormal sub-block would not clamp to tau = beta; let
        // the reference handle this (requires |amax| below ~2^-112).
        return reference_quantize_block(plan, in, n, out, rounder, tau_out,
                                        mant_out);
    }

    // Sub-block shifts from the float exponent field: for normal
    // sub-maxima the field is exactly floor(log2()); zero or subnormal
    // sub-maxima read as -127, which the guard above proves clamps to
    // beta just like the reference's explicit handling.
    std::uint8_t* taus = tau_out ? tau_out : tau_local;
    const std::size_t k2 = static_cast<std::size_t>(plan.k2);
    const std::size_t n_sub = plan.num_sub_blocks(n);
    for (std::size_t sub = 0; sub < n_sub; ++sub) {
        const std::size_t lo = sub * k2;
        const std::size_t hi = std::min(n, lo + k2);
        float sub_amax = 0.0f;
        for (std::size_t j = lo; j < hi; ++j)
            sub_amax = std::max(sub_amax, absv[j]);
        const int sub_e =
            static_cast<int>(std::bit_cast<std::uint32_t>(sub_amax) >> 23) -
            127;
        const int tau = std::clamp(shared_e - sub_e, 0, plan.beta);
        taus[sub] = static_cast<std::uint8_t>(tau);
        const int shift = shared_e - tau - (plan.m - 1);
        const double s = pow2d(shift);
        const double is = pow2d(-shift);
        for (std::size_t j = lo; j < hi; ++j) {
            step[j] = s;
            inv_step[j] = is;
        }
    }

    if (rounder.mode() == RoundingMode::TowardZero)
        element_loop<_MM_FROUND_TO_ZERO>(in, absv, n, step, inv_step,
                                         plan.mant_max_d, out, mant_out);
    else
        element_loop<_MM_FROUND_TO_NEAREST_INT>(in, absv, n, step, inv_step,
                                                plan.mant_max_d, out,
                                                mant_out);
    return shared_e;
}

/** True when the vector path can honour @p rounder exactly. */
bool
vectorizable(const Rounder& rounder)
{
    return rounder.mode() == RoundingMode::NearestEven ||
           rounder.mode() == RoundingMode::TowardZero;
}

class Avx2Kernel final : public QuantKernel
{
  public:
    const char* name() const override { return "avx2"; }

    void
    quantize(const QuantPlan& plan, std::span<const float> in,
             std::span<float> out, const Rounder& rounder) const override
    {
        MX_CHECK_ARG(in.size() == out.size(), "quantize: size mismatch");
        const std::size_t k1 = static_cast<std::size_t>(plan.k1);
        if (!vectorizable(rounder) || k1 > kStackBlock) {
            scalar_kernel().quantize(plan, in, out, rounder);
            return;
        }
        for (std::size_t off = 0; off < in.size(); off += k1) {
            const std::size_t n = std::min(k1, in.size() - off);
            avx2_quantize_block(plan, in.data() + off, n, out.data() + off,
                                rounder, nullptr, nullptr);
        }
    }

    void
    quantize_block(const QuantPlan& plan, std::span<const float> in,
                   std::span<float> out, const Rounder& rounder,
                   Pow2BlockEncoding* enc) const override
    {
        MX_CHECK_ARG(in.size() == out.size(),
                     "quantize_block: size mismatch");
        if (!vectorizable(rounder) ||
            static_cast<std::size_t>(plan.k1) > kStackBlock) {
            scalar_kernel().quantize_block(plan, in, out, rounder, enc);
            return;
        }
        if (!enc) {
            avx2_quantize_block(plan, in.data(), in.size(), out.data(),
                                rounder, nullptr, nullptr);
            return;
        }
        enc->sub_shift.assign(plan.num_sub_blocks(in.size()), 0);
        enc->mantissa.assign(in.size(), 0);
        enc->shared_exp = avx2_quantize_block(
            plan, in.data(), in.size(), out.data(), rounder,
            enc->sub_shift.data(), enc->mantissa.data());
    }

    void
    quantize_pack(const QuantPlan& plan, std::span<const float> in,
                  const Rounder& rounder, BitWriter& writer) const override
    {
        const std::size_t k1 = static_cast<std::size_t>(plan.k1);
        if (!vectorizable(rounder) || k1 > kStackBlock) {
            scalar_kernel().quantize_pack(plan, in, rounder, writer);
            return;
        }
        alignas(32) float out[kStackBlock];
        std::uint8_t taus[kStackBlock];
        alignas(32) std::int32_t mant[kStackBlock];
        for (std::size_t off = 0; off < in.size(); off += k1) {
            const std::size_t n = std::min(k1, in.size() - off);
            const int shared = avx2_quantize_block(
                plan, in.data() + off, n, out, rounder, taus, mant);
            detail::write_block_bits(plan, shared, taus,
                                     plan.num_sub_blocks(n), mant, n,
                                     writer);
        }
    }

    void
    dequantize_block(const QuantPlan& plan, const Pow2BlockEncoding& enc,
                     std::span<float> out) const override
    {
        const std::size_t n = out.size();
        MX_CHECK_ARG(n == enc.mantissa.size(),
                     "dequantize_block: size mismatch");
        MX_CHECK_ARG(enc.sub_shift.size() >= plan.num_sub_blocks(n),
                     "dequantize_block: missing sub-shifts");
        if (n > kStackBlock) {
            scalar_kernel().dequantize_block(plan, enc, out);
            return;
        }
        alignas(32) double step[kStackBlock];
        const std::size_t k2 = static_cast<std::size_t>(plan.k2);
        const std::size_t n_sub = plan.num_sub_blocks(n);
        for (std::size_t sub = 0; sub < n_sub; ++sub) {
            const std::size_t lo = sub * k2;
            const std::size_t hi = std::min(n, lo + k2);
            const double s =
                pow2d(enc.shared_exp - enc.sub_shift[sub] - (plan.m - 1));
            for (std::size_t j = lo; j < hi; ++j)
                step[j] = s;
        }
        const std::int32_t* mant = enc.mantissa.data();
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m256i m = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(mant + i));
            const __m256d lo =
                _mm256_cvtepi32_pd(_mm256_castsi256_si128(m));
            const __m256d hi =
                _mm256_cvtepi32_pd(_mm256_extracti128_si256(m, 1));
            const __m256d v_lo =
                _mm256_mul_pd(lo, _mm256_loadu_pd(step + i));
            const __m256d v_hi =
                _mm256_mul_pd(hi, _mm256_loadu_pd(step + i + 4));
            _mm256_storeu_ps(out.data() + i,
                             _mm256_set_m128(_mm256_cvtpd_ps(v_hi),
                                             _mm256_cvtpd_ps(v_lo)));
        }
        for (; i < n; ++i)
            out[i] =
                static_cast<float>(static_cast<double>(mant[i]) * step[i]);
    }
};

} // namespace

const QuantKernel*
avx2_kernel()
{
    static const Avx2Kernel kernel;
    return &kernel;
}

} // namespace kernels
} // namespace core
} // namespace mx

#else // !MX_HAVE_AVX2

namespace mx {
namespace core {
namespace kernels {

const QuantKernel*
avx2_kernel()
{
    return nullptr;
}

} // namespace kernels
} // namespace core
} // namespace mx

#endif // MX_HAVE_AVX2
