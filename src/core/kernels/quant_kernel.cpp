#include "core/kernels/quant_kernel.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"

namespace mx {
namespace core {

double
Pow2BlockEncoding::decode(const BdrFormat& fmt, std::size_t i) const
{
    MX_CHECK_ARG(i < mantissa.size(), "decode: index out of range");
    std::size_t sub = i / static_cast<std::size_t>(fmt.k2);
    int tau = sub < sub_shift.size() ? sub_shift[sub] : 0;
    return static_cast<double>(mantissa[i]) *
           std::ldexp(1.0, shared_exp - tau - (fmt.m - 1));
}

namespace kernels {

namespace {

/** Sentinel for an all-zero (sub-)block, mirroring kAllZeroExponent. */
constexpr int kZeroExp = -100000;

/** floor(log2(max|x_i|)) over [p, p+n), or kZeroExp when all zero. */
int
span_exponent(const float* p, std::size_t n)
{
    float amax = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        amax = std::max(amax, std::fabs(p[i]));
    if (amax == 0.0f)
        return kZeroExp;
    int ex;
    std::frexp(amax, &ex);
    return ex - 1; // 2^(ex-1) <= amax < 2^ex
}

/**
 * 2^e as a double: the shared detail::pow2_double (every step/inv_step
 * of a nonzero block lands in the normal range: shared_e is bounded by
 * the float exponent range, so e stays within [-427, 427]; the ldexp
 * fallback covers the decode of all-zero blocks, whose e_min-based
 * exponent can leave the normal range for wide d1).
 */
inline double
pow2d(int e)
{
    return detail::pow2_double(e);
}

} // namespace

QuantPlan
make_quant_plan(const BdrFormat& fmt)
{
    // Exactly the BdrFormat::validate() domain for this family — the
    // plan must accept every format validate() accepts.
    MX_CHECK_ARG(fmt.elem == ElementKind::SignMagnitude &&
                 fmt.s_kind == ScaleKind::Pow2Hw,
                 fmt.name << ": the block kernels need a pow2 HW format");
    MX_CHECK_ARG(fmt.m >= 0 && fmt.m <= 23, fmt.name << ": bad mantissa width");
    MX_CHECK_ARG(fmt.d1 >= 1 && fmt.d1 <= 11, fmt.name << ": bad d1");
    MX_CHECK_ARG(fmt.k1 >= 1 && fmt.k2 >= 1 && fmt.k1 % fmt.k2 == 0,
                 fmt.name << ": bad block granularities");
    MX_CHECK_ARG(fmt.d2 >= 0 && fmt.d2 <= 4, fmt.name << ": bad d2");

    QuantPlan p;
    p.m = fmt.m;
    p.d1 = fmt.d1;
    p.k1 = fmt.k1;
    p.d2 = fmt.d2;
    p.k2 = fmt.k2;
    p.e_max = (1 << (fmt.d1 - 1)) - 1;
    p.e_min = 1 - (1 << (fmt.d1 - 1));
    p.beta = (1 << fmt.d2) - 1;
    p.mant_max = (1 << fmt.m) - 1;
    p.mant_max_d = static_cast<double>(p.mant_max);
    return p;
}

int
reference_quantize_block(const QuantPlan& plan, const float* in,
                         std::size_t n, float* out, const Rounder& rounder,
                         std::uint8_t* tau_out, std::int32_t* mant_out)
{
    MX_CHECK_ARG(n <= static_cast<std::size_t>(plan.k1),
                 "quantize_block: block larger than k1");
    const std::size_t k2 = static_cast<std::size_t>(plan.k2);
    const std::size_t n_sub = plan.num_sub_blocks(n);

    const int raw_e = span_exponent(in, n);
    if (raw_e == kZeroExp) {
        std::fill(out, out + n, 0.0f);
        if (tau_out)
            std::fill(tau_out, tau_out + n_sub,
                      static_cast<std::uint8_t>(plan.beta));
        if (mant_out)
            std::fill(mant_out, mant_out + n, 0);
        return plan.e_min;
    }
    const int shared_e = std::clamp(raw_e, plan.e_min, plan.e_max);

    for (std::size_t sub = 0; sub < n_sub; ++sub) {
        const std::size_t lo = sub * k2;
        const std::size_t hi = std::min(n, lo + k2);
        const int sub_e = span_exponent(in + lo, hi - lo);
        const int tau = sub_e == kZeroExp
            ? plan.beta
            : std::clamp(shared_e - sub_e, 0, plan.beta);
        if (tau_out)
            tau_out[sub] = static_cast<std::uint8_t>(tau);

        // step is a power of two, so multiplying by its inverse is the
        // exact same real value as the division the seed code used.
        const int shift = shared_e - tau - (plan.m - 1);
        const double step = pow2d(shift);
        const double inv_step = pow2d(-shift);
        for (std::size_t i = lo; i < hi; ++i) {
            const double a = std::fabs(static_cast<double>(in[i]));
            double q = rounder.round(a * inv_step);
            q = std::min(q, plan.mant_max_d); // hardware saturation
            const double deq = q * step;
            const bool neg = std::signbit(in[i]);
            out[i] = static_cast<float>(neg ? -deq : deq);
            if (mant_out)
                mant_out[i] = static_cast<std::int32_t>(neg ? -q : q);
        }
    }
    return shared_e;
}

void
reference_dequantize_block(const QuantPlan& plan, int shared_exp,
                           const std::uint8_t* taus, const std::int32_t* mant,
                           std::size_t n, float* out)
{
    const std::size_t k2 = static_cast<std::size_t>(plan.k2);
    const std::size_t n_sub = plan.num_sub_blocks(n);
    for (std::size_t sub = 0; sub < n_sub; ++sub) {
        const std::size_t lo = sub * k2;
        const std::size_t hi = std::min(n, lo + k2);
        const double step = pow2d(shared_exp - taus[sub] - (plan.m - 1));
        for (std::size_t i = lo; i < hi; ++i)
            out[i] = static_cast<float>(static_cast<double>(mant[i]) * step);
    }
}

void
QuantKernel::quantize_rows(const QuantPlan& plan, const float* in,
                           float* out, std::size_t rows, std::size_t cols,
                           const Rounder& rounder) const
{
    const std::size_t k1 = static_cast<std::size_t>(plan.k1);
    if (cols % k1 == 0) {
        // Blocks cannot straddle a row boundary, so the whole matrix is
        // one contiguous span and one kernel call.
        quantize(plan, std::span<const float>(in, rows * cols),
                 std::span<float>(out, rows * cols), rounder);
        return;
    }
    for (std::size_t r = 0; r < rows; ++r)
        quantize(plan, std::span<const float>(in + r * cols, cols),
                 std::span<float>(out + r * cols, cols), rounder);
}

void
QuantKernel::quantize_pack_rows(const QuantPlan& plan, const float* in,
                                std::size_t rows, std::size_t cols,
                                const Rounder& rounder,
                                BitWriter& writer) const
{
    const std::size_t k1 = static_cast<std::size_t>(plan.k1);
    if (cols % k1 == 0) {
        quantize_pack(plan, std::span<const float>(in, rows * cols),
                      rounder, writer);
        return;
    }
    for (std::size_t r = 0; r < rows; ++r)
        quantize_pack(plan, std::span<const float>(in + r * cols, cols),
                      rounder, writer);
}

} // namespace kernels
} // namespace core
} // namespace mx
