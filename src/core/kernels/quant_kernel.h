#pragma once

/**
 * @file
 * The plan/execute split of the BDR pow2-block quantization hot path.
 *
 * A QuantPlan captures every per-format constant of a SignMagnitude /
 * Pow2Hw format (BFP when d2 == 0, MX when d2 > 0) once, so the
 * per-element kernels run without touching the BdrFormat descriptor.
 * QuantKernel is the execute side: an implementation provides contiguous
 * quantize (fake quantization of a whole span), per-block quantize with
 * integer encoding output, fused quantize+pack straight into an LSB-first
 * bit stream, and block dequantize.
 *
 * Implementations:
 *  - scalar_kernel(): the portable reference, numerically identical to
 *    the historical core::quantize_pow2_block loop.
 *  - avx2_kernel():   AVX2 vectorization of the same arithmetic; the
 *    test suite (tests/test_kernels.cpp) asserts its output — floats,
 *    encodings, and packed bit streams — is bit-identical to the scalar
 *    kernel for every format, size, and rounding mode.
 *
 * Selection happens at runtime in kernels/dispatch.h (CPU feature probe,
 * overridable with MX_FORCE_SCALAR=1).
 */

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/bdr_format.h"
#include "core/bitstream.h"
#include "core/rounding.h"

namespace mx {
namespace core {

/**
 * Integer encoding of one k1-block under power-of-two two-level scaling
 * (the in-memory form consumed by the hardware dot-product pipeline).
 */
struct Pow2BlockEncoding
{
    /** Unbiased shared exponent E (clamped to the d1-bit biased range). */
    int shared_exp = 0;
    /** Per-sub-block shift tau_i in [0, 2^d2 - 1]; size = ceil(n/k2). */
    std::vector<std::uint8_t> sub_shift;
    /** Signed mantissas, |M_i| <= 2^m - 1; size = n. */
    std::vector<std::int32_t> mantissa;

    /** Dequantized value of element @p i given the format's m. */
    double decode(const BdrFormat& fmt, std::size_t i) const;
};

namespace kernels {

/**
 * Precomputed per-format constants of the pow2-block quantization
 * function — the "plan" half of the plan/execute split.  Building a plan
 * is cheap (a handful of integer ops), but hoisting it out of the block
 * loop lets front-ends amortize the format checks over whole tensors.
 */
struct QuantPlan
{
    int m = 0;         ///< Explicit mantissa bits.
    int d1 = 0;        ///< Shared-exponent field width.
    int k1 = 0;        ///< Block granularity.
    int d2 = 0;        ///< Sub-shift field width (0 = plain BFP).
    int k2 = 0;        ///< Sub-block granularity.
    int e_min = 0;     ///< Smallest encodable shared exponent.
    int e_max = 0;     ///< Largest encodable shared exponent (= bias).
    int beta = 0;      ///< Maximum sub-block shift, 2^d2 - 1.
    std::int32_t mant_max = 0;  ///< Mantissa saturation value, 2^m - 1.
    double mant_max_d = 0;      ///< mant_max as a double (saturation compare).

    /** Sub-blocks covering @p n elements. */
    std::size_t
    num_sub_blocks(std::size_t n) const
    {
        return (n + static_cast<std::size_t>(k2) - 1) /
               static_cast<std::size_t>(k2);
    }
};

/**
 * Build the plan for @p fmt.  Throws mx::ArgumentError unless the format
 * is a SignMagnitude element with a Pow2Hw first-level scale (the only
 * family the block kernels implement).
 */
QuantPlan make_quant_plan(const BdrFormat& fmt);

/**
 * Reference block quantization (the semantics every kernel must match
 * bit-for-bit).  Quantizes @p n <= k1 elements, writing dequantized
 * values to @p out and, when the pointers are non-null, the raw integer
 * encoding: @p tau_out receives num_sub_blocks(n) sub-shifts and
 * @p mant_out receives n signed mantissas.
 *
 * @return the block's shared exponent (e_min for an all-zero block).
 */
int reference_quantize_block(const QuantPlan& plan, const float* in,
                             std::size_t n, float* out,
                             const Rounder& rounder,
                             std::uint8_t* tau_out, std::int32_t* mant_out);

/**
 * Reference block dequantization: @p mant / @p taus / @p shared_exp as
 * produced by reference_quantize_block, written back as floats.
 */
void reference_dequantize_block(const QuantPlan& plan, int shared_exp,
                                const std::uint8_t* taus,
                                const std::int32_t* mant, std::size_t n,
                                float* out);

/**
 * The execute side: one virtual call per span (or per block for the
 * _block entry points), dispatched once at the tensor level.
 */
class QuantKernel
{
  public:
    virtual ~QuantKernel() = default;

    /** Implementation name for reports and tests ("scalar", "avx2"). */
    virtual const char* name() const = 0;

    /**
     * Fake-quantize a whole contiguous span: split into k1-blocks (the
     * tail block may be short) and quantize each.  in/out may alias.
     */
    virtual void quantize(const QuantPlan& plan, std::span<const float> in,
                          std::span<float> out,
                          const Rounder& rounder) const = 0;

    /**
     * Quantize one block (n <= k1), optionally capturing the integer
     * encoding.
     */
    virtual void quantize_block(const QuantPlan& plan,
                                std::span<const float> in,
                                std::span<float> out, const Rounder& rounder,
                                Pow2BlockEncoding* enc) const = 0;

    /**
     * Fused quantize+pack: quantize a whole span and emit the packed
     * block stream ([biased shared exp][sub-shifts][sign|mantissa codes]
     * per block, LSB-first) without materializing per-block heap
     * encodings.  This is the formats::pack fast path.
     */
    virtual void quantize_pack(const QuantPlan& plan,
                               std::span<const float> in,
                               const Rounder& rounder,
                               BitWriter& writer) const = 0;

    /** Dequantize one encoded block into @p out (size = mantissa count). */
    virtual void dequantize_block(const QuantPlan& plan,
                                  const Pow2BlockEncoding& enc,
                                  std::span<float> out) const = 0;

    /**
     * Fake-quantize a row-major [rows x cols] matrix whose blocks must
     * not straddle row boundaries (the nn::quantize_rows contract).
     * When cols is a whole number of k1 blocks the matrix collapses to
     * one contiguous quantize() call; ragged widths run one call per
     * row, each ending in its own short tail block — the same kernel
     * fast path either way, with the plan hoisted out of the loop.
     * in/out may alias row-for-row.
     */
    void quantize_rows(const QuantPlan& plan, const float* in, float* out,
                       std::size_t rows, std::size_t cols,
                       const Rounder& rounder) const;

    /**
     * Fused quantize+pack of a [rows x cols] matrix under the same
     * no-block-straddles-a-row contract, emitting one bit-contiguous
     * stream (row r's blocks directly follow row r-1's).  For aligned
     * widths this is byte-for-byte the flat quantize_pack stream.
     */
    void quantize_pack_rows(const QuantPlan& plan, const float* in,
                            std::size_t rows, std::size_t cols,
                            const Rounder& rounder, BitWriter& writer) const;
};

namespace detail {

/**
 * 2^e as a double.  Exponent-field assembly for the normal range; ldexp
 * handles the extremes (all-zero-block decode exponents and combined
 * packed-GEMM block exponents can leave the normal range for wide d1).
 * Shared by every kernel implementation — quantize, dequantize, and the
 * packed-GEMM block alignment — so scale arithmetic is bit-identical
 * across the scalar, AVX2, and gemm execution paths by construction.
 */
inline double
pow2_double(int e)
{
    if (e >= -1022 && e <= 1023)
        return std::bit_cast<double>(
            static_cast<std::uint64_t>(e + 1023) << 52);
    return std::ldexp(1.0, e);
}

/**
 * Emit one quantized block's fields into the packed stream — the layout
 * documented in formats/block_codec.h ([d1-bit biased shared exponent]
 * [n_sub x d2-bit sub-shifts][n x (sign | mantissa << 1) codes]).
 * Shared by every kernel's fused quantize+pack path so the bit stream
 * is implementation-invariant by construction.
 */
inline void
write_block_bits(const QuantPlan& plan, int shared_exp,
                 const std::uint8_t* taus, std::size_t n_sub,
                 const std::int32_t* mant, std::size_t n, BitWriter& w)
{
    w.write(static_cast<std::uint64_t>(shared_exp + plan.e_max), plan.d1);
    for (std::size_t s = 0; s < n_sub; ++s)
        w.write(taus[s], plan.d2);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t man = mant[i];
        const std::uint64_t sign = man < 0 ? 1 : 0;
        const std::uint64_t mag =
            static_cast<std::uint64_t>(man < 0 ? -man : man);
        w.write(sign | (mag << 1), 1 + plan.m);
    }
}

} // namespace detail

} // namespace kernels
} // namespace core
} // namespace mx
