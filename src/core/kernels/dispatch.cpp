#include "core/kernels/dispatch.h"

#include <atomic>

#include "core/env.h"
#include "obs/obs.h"

namespace mx {
namespace core {
namespace kernels {

namespace {

bool
env_forces_scalar()
{
    return env::flag_knob("MX_FORCE_SCALAR", false);
}

bool
env_caps_at_avx2()
{
    return env::flag_knob("MX_FORCE_AVX2", false);
}

/** Cached level; -1 = not resolved yet.  Lock-free by design: the
 *  only shared state here is this one atomic (acquire/release pairs
 *  below), so there is nothing for thread-safety analysis to guard. */
std::atomic<int> g_level{-1};

SimdLevel
resolve()
{
    if (env_forces_scalar())
        return SimdLevel::Scalar;
    if (avx512_supported() && !env_caps_at_avx2())
        return SimdLevel::Avx512;
    if (avx2_supported())
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
}

/** Highest level this build + CPU can execute (env ignored). */
SimdLevel
host_ceiling()
{
    if (avx512_supported())
        return SimdLevel::Avx512;
    if (avx2_supported())
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
}

} // namespace

bool
avx2_supported()
{
#if defined(MX_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
    return avx2_kernel() != nullptr && __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
avx512_supported()
{
    // MX_HAVE_AVX512 certifies the toolchain compiled the AVX-512 GEMM
    // leg (src/gemm/avx512_gemm.cpp); the probe certifies the host can
    // run every instruction it uses (foundation + bw int16 madd + vnni
    // dot-product accumulate).
#if defined(MX_HAVE_AVX512) && (defined(__GNUC__) || defined(__clang__))
    return avx2_supported() && __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vnni");
#else
    return false;
#endif
}

SimdLevel
active_simd_level()
{
    int level = g_level.load(std::memory_order_acquire);
    if (level < 0) {
        // Benign race: concurrent first calls resolve identically.
        level = static_cast<int>(resolve());
        g_level.store(level, std::memory_order_release);
    }
    return static_cast<SimdLevel>(level);
}

const QuantKernel&
active_kernel()
{
    // The quantize family only has scalar and AVX2 flavours; the
    // AVX-512 level still quantizes on the AVX2 kernel.
    static obs::Counter& scalar_sel = obs::counter("kernels.select.scalar");
    static obs::Counter& avx2_sel = obs::counter("kernels.select.avx2");
    if (active_simd_level() == SimdLevel::Scalar) {
        scalar_sel.add(1);
        return scalar_kernel();
    }
    avx2_sel.add(1);
    return *avx2_kernel();
}

void
set_simd_level(SimdLevel level)
{
    const SimdLevel ceiling = host_ceiling();
    if (static_cast<int>(level) > static_cast<int>(ceiling))
        level = ceiling;
    g_level.store(static_cast<int>(level), std::memory_order_release);
}

void
reset_simd_level()
{
    g_level.store(-1, std::memory_order_release);
}

void
set_force_scalar(bool force)
{
    if (force)
        set_simd_level(SimdLevel::Scalar);
    else
        reset_simd_level();
}

} // namespace kernels
} // namespace core
} // namespace mx
