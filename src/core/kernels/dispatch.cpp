#include "core/kernels/dispatch.h"

#include <atomic>

#include "core/env.h"

namespace mx {
namespace core {
namespace kernels {

namespace {

bool
env_forces_scalar()
{
    return env::flag_knob("MX_FORCE_SCALAR", false);
}

/** Cached selection; nullptr = not resolved yet. */
std::atomic<const QuantKernel*> g_active{nullptr};

const QuantKernel*
resolve()
{
    if (env_forces_scalar())
        return &scalar_kernel();
    if (avx2_supported())
        return avx2_kernel();
    return &scalar_kernel();
}

} // namespace

bool
avx2_supported()
{
#if defined(MX_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
    return avx2_kernel() != nullptr && __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

const QuantKernel&
active_kernel()
{
    const QuantKernel* k = g_active.load(std::memory_order_acquire);
    if (!k) {
        // Benign race: concurrent first calls resolve to the same kernel.
        k = resolve();
        g_active.store(k, std::memory_order_release);
    }
    return *k;
}

void
set_force_scalar(bool force)
{
    g_active.store(force ? &scalar_kernel() : resolve(),
                   std::memory_order_release);
}

} // namespace kernels
} // namespace core
} // namespace mx
