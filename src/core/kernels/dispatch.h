#pragma once

/**
 * @file
 * Runtime kernel selection for the pow2-block quantization hot path.
 *
 * The active kernel is resolved once, lazily, from:
 *   1. the MX_FORCE_SCALAR environment variable — any value other than
 *      "" or "0" pins the portable scalar kernel (CI runs the whole test
 *      suite this way to keep the fallback path green on hosts without
 *      AVX2);
 *   2. a CPU feature probe — AVX2 when the binary was built with AVX2
 *      support (see MX_HAVE_AVX2 in src/core/CMakeLists.txt) and the
 *      host CPU reports it;
 *   3. the scalar reference otherwise.
 *
 * Tests can flip the selection at runtime with set_force_scalar().
 */

#include "core/kernels/quant_kernel.h"

namespace mx {
namespace core {
namespace kernels {

/** The portable reference implementation (always available). */
const QuantKernel& scalar_kernel();

/**
 * The AVX2 implementation, or nullptr when the build lacks AVX2 support.
 * Callers must check avx2_supported() before executing it.
 */
const QuantKernel* avx2_kernel();

/** True when an AVX2 kernel exists AND the host CPU can run it. */
bool avx2_supported();

/**
 * The kernel every front-end (Quantizer, quantize_pow2, formats::pack)
 * routes through.  First call reads MX_FORCE_SCALAR and probes the CPU;
 * the choice is then cached.
 */
const QuantKernel& active_kernel();

/**
 * Test hook: pin (true) or release (false) the scalar kernel,
 * overriding both the environment and the CPU probe.  Releasing
 * re-resolves from the environment on the next active_kernel() call.
 */
void set_force_scalar(bool force);

} // namespace kernels
} // namespace core
} // namespace mx
