#pragma once

/**
 * @file
 * Runtime kernel selection for the pow2-block quantization hot path and
 * every subsystem slaved to it (the packed GEMM in src/gemm/).
 *
 * Selection is a single SIMD *level*, resolved once, lazily, from:
 *   1. the MX_FORCE_SCALAR environment variable — pins the portable
 *      scalar level (CI runs the whole test suite this way to keep the
 *      fallback path green on hosts without SIMD);
 *   2. the MX_FORCE_AVX2 environment variable — caps the level at AVX2
 *      on AVX-512 hosts (diagnosing downclocking or comparing legs);
 *   3. a CPU feature probe — AVX-512 when the binary was built with the
 *      AVX-512 flags (MX_HAVE_AVX512, src/gemm/CMakeLists.txt) and the
 *      host reports avx512f/avx512bw/avx512vnni; AVX2 when built with
 *      AVX2 support (MX_HAVE_AVX2) and the host reports it;
 *   4. the scalar reference otherwise.
 *
 * The quantize kernels come in scalar and AVX2 flavours — the AVX-512
 * level maps to the AVX2 quantize kernel (quantization is
 * bandwidth-bound; the packed GEMM is where the wider ISA pays).
 * Tests can pin a level at runtime with set_simd_level() /
 * set_force_scalar().
 */

#include "core/kernels/quant_kernel.h"

namespace mx {
namespace core {
namespace kernels {

/** The ISA tiers the dispatch can resolve to, in ascending order. */
enum class SimdLevel
{
    Scalar = 0, ///< Portable reference kernels.
    Avx2 = 1,   ///< AVX2 quantize + packed-GEMM kernels.
    Avx512 = 2, ///< AVX-512/VNNI packed GEMM (quantize stays AVX2).
};

/** The portable reference implementation (always available). */
const QuantKernel& scalar_kernel();

/**
 * The AVX2 implementation, or nullptr when the build lacks AVX2 support.
 * Callers must check avx2_supported() before executing it.
 */
const QuantKernel* avx2_kernel();

/** True when an AVX2 kernel exists AND the host CPU can run it. */
bool avx2_supported();

/** True when the build carries the AVX-512 GEMM leg AND the host CPU
 *  reports avx512f, avx512bw and avx512vnni. */
bool avx512_supported();

/**
 * The resolved ISA tier.  First call reads MX_FORCE_SCALAR /
 * MX_FORCE_AVX2 and probes the CPU; the choice is then cached.  Every
 * dispatched kernel family (quantize here, packed GEMM in src/gemm/)
 * keys off this one level so the legs can never mix.
 */
SimdLevel active_simd_level();

/**
 * The quantize kernel every front-end (Quantizer, quantize_pow2,
 * formats::pack) routes through: scalar at SimdLevel::Scalar, AVX2
 * otherwise (there is no AVX-512 quantize kernel).
 */
const QuantKernel& active_kernel();

/**
 * Test hook: pin a SIMD level, capped at what this build + CPU can
 * actually execute (asking for Avx512 on an AVX2-only host pins Avx2).
 * Pass reset_simd_level() to drop the pin.
 */
void set_simd_level(SimdLevel level);

/** Drop any runtime pin: the next active_simd_level() call re-resolves
 *  from the environment and the CPU probe. */
void reset_simd_level();

/**
 * Test hook kept from the two-level days: pin (true) or release (false)
 * the scalar kernel.  Equivalent to set_simd_level(Scalar) /
 * reset_simd_level().
 */
void set_force_scalar(bool force);

} // namespace kernels
} // namespace core
} // namespace mx
