#pragma once

/**
 * @file
 * Theorem 1 of the paper (Section IX): a distribution-independent lower
 * bound on the QSNR of BDR quantization,
 *
 *   QSNR >= 6.02 m + 10 log10( 2^(2 beta) /
 *                              (min(N, k1) + (2^(2 beta) - 1) k2) ),
 *
 * with beta = 2^d2 - 1.  Setting d2 = 0 recovers the classic BFP bound
 * 6.02 m - 10 log10(k1).  The property-test suite checks the bound
 * empirically for every distribution in stats::all_distributions().
 */

#include <cstddef>

#include "core/bdr_format.h"

namespace mx {
namespace core {

/**
 * Evaluate the Theorem 1 QSNR lower bound in dB.
 *
 * @param fmt  a SignMagnitude pow2-scaled BDR format (BFP or MX)
 * @param n    vector length N (the bound improves when N < k1)
 */
double qsnr_lower_bound_db(const BdrFormat& fmt, std::size_t n);

/**
 * The bound as a function of raw parameters (no format object needed);
 * used by the design-space sweep.
 */
double qsnr_lower_bound_db(int m, int k1, int k2, int d2, std::size_t n);

} // namespace core
} // namespace mx
