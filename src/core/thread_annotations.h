#pragma once

/**
 * @file
 * Clang Thread Safety Analysis annotations + capability-annotated
 * mutex wrappers — the compile-time half of the repo's lock
 * discipline.
 *
 * The serving stack's concurrency (core::ThreadPool lanes,
 * serve::InferenceEngine replicas, serve::SessionCache checkout,
 * mx_obs rings/registry) obeys a small lock graph that PRs 5-9 built
 * up and the TSan CI leg checks dynamically.  This header makes the
 * same discipline checkable *statically*: every mutex-protected field
 * is declared `MX_GUARDED_BY(mu_)`, every lock-holding helper declares
 * `MX_REQUIRES(mu_)`, and a Clang build with `-Wthread-safety`
 * (the static-analysis CI leg adds `-Werror`) rejects any access that
 * cannot prove it holds the right capability.  GCC and MSVC see plain
 * `std::mutex` semantics: every macro expands to nothing, so the
 * annotations cost non-Clang builds exactly zero.
 *
 * Two wrapper types carry the capability attributes (std::mutex itself
 * cannot be annotated):
 *
 *  - core::Mutex      — a std::mutex declared as a Clang "capability".
 *  - core::LockGuard  — std::lock_guard equivalent (scoped capability).
 *  - core::UniqueLock — std::unique_lock equivalent with
 *                       condition-variable interop (wait(cv) releases
 *                       and reacquires the native mutex).
 *
 * Condition-variable idiom under the analysis: Clang analyzes a
 * predicate lambda as a separate unannotated function, so the
 * `cv.wait(lk, pred)` form would warn on every guarded field the
 * predicate reads.  Annotated call sites therefore spell the loop out:
 *
 *     core::UniqueLock lk(mu_);
 *     while (!ready_)        // guarded read, capability held: clean
 *         lk.wait(cv_);
 *
 * which is exactly what the predicate overload expands to.
 */

#include <condition_variable>
#include <mutex>

// Attribute detection: Clang exposes the thread-safety attributes via
// __has_attribute; everything else compiles the macros away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MX_THREAD_ANNOTATION
#define MX_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Declares a type to be a lockable capability ("mutex"). */
#define MX_CAPABILITY(x) MX_THREAD_ANNOTATION(capability(x))

/** Declares an RAII type that acquires in its ctor / releases in its
 *  dtor (std::lock_guard shape). */
#define MX_SCOPED_CAPABILITY MX_THREAD_ANNOTATION(scoped_lockable)

/** Field access requires holding the given mutex. */
#define MX_GUARDED_BY(x) MX_THREAD_ANNOTATION(guarded_by(x))

/** Pointee access requires holding the given mutex. */
#define MX_PT_GUARDED_BY(x) MX_THREAD_ANNOTATION(pt_guarded_by(x))

/** The function must be called with the capabilities held. */
#define MX_REQUIRES(...) \
    MX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function acquires the capabilities (held on return). */
#define MX_ACQUIRE(...) \
    MX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the capabilities (must be held on entry). */
#define MX_RELEASE(...) \
    MX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** The function acquires the capability iff it returns the given
 *  value. */
#define MX_TRY_ACQUIRE(...) \
    MX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** The function must NOT be called with the capabilities held
 *  (deadlock prevention: documents a lock the callee takes itself). */
#define MX_EXCLUDES(...) MX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The function returns a reference to the given capability. */
#define MX_RETURN_CAPABILITY(x) MX_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disables the analysis for one function.  Every use
 *  must carry a comment proving why the unsynchronized access is safe
 *  (e.g. the constructor/destructor exclusivity argument). */
#define MX_NO_THREAD_SAFETY_ANALYSIS \
    MX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mx {
namespace core {

/**
 * std::mutex declared as a Clang capability.  Drop-in for the
 * `std::mutex mu_;` member it replaces; native() exposes the wrapped
 * mutex for std::condition_variable interop (prefer UniqueLock::wait,
 * which keeps the capability bookkeeping at the call site trivial).
 */
class MX_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    // Bodies delegate to the unannotated std::mutex (libstdc++ carries
    // no thread-safety attributes), so the analysis is suppressed
    // inside — the declaration attributes are what callers check
    // against, exactly how libc++ annotates its own lock internals.
    void
    lock() MX_ACQUIRE() MX_NO_THREAD_SAFETY_ANALYSIS
    {
        mu_.lock();
    }

    void
    unlock() MX_RELEASE() MX_NO_THREAD_SAFETY_ANALYSIS
    {
        mu_.unlock();
    }

    bool
    try_lock() MX_TRY_ACQUIRE(true) MX_NO_THREAD_SAFETY_ANALYSIS
    {
        return mu_.try_lock();
    }

    /** The wrapped mutex, for APIs that need the std type. */
    std::mutex&
    native()
    {
        return mu_;
    }

  private:
    std::mutex mu_;
};

/** std::lock_guard over core::Mutex, visible to the analysis. */
class MX_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex& mu) MX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

    ~LockGuard() MX_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    Mutex& mu_;
};

/**
 * std::unique_lock over core::Mutex: the condition-variable lock.
 * Constructed locked; wait(cv) forwards to the std wait (which
 * releases and reacquires the native mutex — the capability is held
 * again when it returns, which is all the analysis needs to know).
 */
class MX_SCOPED_CAPABILITY UniqueLock
{
  public:
    // Acquisition/release happen inside the unannotated
    // std::unique_lock, so the bodies are exempted like Mutex's are.
    explicit UniqueLock(Mutex& mu) MX_ACQUIRE(mu)
        MX_NO_THREAD_SAFETY_ANALYSIS : lk_(mu.native())
    {
    }

    ~UniqueLock() MX_RELEASE() MX_NO_THREAD_SAFETY_ANALYSIS {}

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    /** Block until @p cv is notified (spurious wakeups possible: call
     *  inside a `while (!condition)` loop, never bare). */
    void
    wait(std::condition_variable& cv)
    {
        cv.wait(lk_);
    }

  private:
    std::unique_lock<std::mutex> lk_;
};

} // namespace core
} // namespace mx
