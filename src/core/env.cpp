#include "core/env.h"

#include "core/thread_annotations.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace mx {
namespace core {
namespace env {

namespace {

/** Trimmed, lower-cased copy of the raw value. */
std::string
normalize(const char* raw)
{
    std::string v(raw);
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    while (!v.empty() && is_space(static_cast<unsigned char>(v.front())))
        v.erase(v.begin());
    while (!v.empty() && is_space(static_cast<unsigned char>(v.back())))
        v.pop_back();
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return v;
}

/** Names already warned about (leaked: warn_once can run at exit). */
Mutex g_warned_mu;
std::set<std::string>* g_warned MX_GUARDED_BY(g_warned_mu) = nullptr;

/** Warn once per variable per process (a knob read in a hot loop must
 *  not spam stderr). */
void
warn_once(const char* name, const char* raw, const std::string& expected,
          const char* action = "using the default")
{
    {
        LockGuard lk(g_warned_mu);
        if (g_warned == nullptr)
            g_warned = new std::set<std::string>;
        if (!g_warned->insert(name).second)
            return;
    }
    std::fprintf(stderr,
                 "mx: ignoring malformed %s=\"%s\" (expected %s); %s\n",
                 name, raw, expected.c_str(), action);
}

} // namespace

std::size_t
size_knob(const char* name, std::size_t fallback, std::size_t min_value)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    const std::string v = normalize(raw);
    // Numeric = optional sign + digits.  A signed value is "nonsense
    // but a number": it clamps to the floor below instead of silently
    // configuring the default (MX_GEMM_THREADS=-3 means "as few as
    // possible", not "pool-sized").
    const std::size_t digits0 =
        !v.empty() && (v[0] == '-' || v[0] == '+') ? 1 : 0;
    const bool numeric =
        v.size() > digits0 &&
        std::all_of(v.begin() + static_cast<std::ptrdiff_t>(digits0),
                    v.end(),
                    [](unsigned char c) { return std::isdigit(c); });
    if (!numeric) {
        warn_once(name, raw,
                  "an integer >= " + std::to_string(min_value));
        return fallback;
    }
    unsigned long long parsed = 0;
    bool below_floor = v[0] == '-';
    if (!below_floor) {
        errno = 0;
        parsed = std::strtoull(v.c_str(), nullptr, 10);
        if (errno != 0) {
            // Out of range for the type: not a value to clamp toward.
            warn_once(name, raw,
                      "an integer >= " + std::to_string(min_value));
            return fallback;
        }
        below_floor = parsed < min_value;
    }
    if (below_floor) {
        warn_once(name, raw,
                  "an integer >= " + std::to_string(min_value),
                  "clamping to the minimum");
        return min_value;
    }
    return static_cast<std::size_t>(parsed);
}

bool
flag_knob(const char* name, bool fallback)
{
    return enum_knob(name, fallback ? 1 : 0,
                     {{"1", 1},
                      {"true", 1},
                      {"on", 1},
                      {"yes", 1},
                      {"0", 0},
                      {"false", 0},
                      {"off", 0},
                      {"no", 0}}) != 0;
}

int
enum_knob(const char* name, int fallback,
          std::initializer_list<EnumToken> tokens)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    const std::string v = normalize(raw);
    for (const EnumToken& t : tokens)
        if (v == t.token)
            return t.value;
    std::string expected = "one of:";
    for (const EnumToken& t : tokens) {
        expected += ' ';
        expected += t.token;
    }
    warn_once(name, raw, expected);
    return fallback;
}

} // namespace env
} // namespace core
} // namespace mx
