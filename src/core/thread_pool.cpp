#include "core/thread_pool.h"

#include <algorithm>

#include "core/env.h"
#include "obs/obs.h"

namespace mx {
namespace core {

namespace {

/** True while the current thread is executing pool work. */
thread_local bool tl_in_pool = false;

} // namespace

std::size_t
ThreadPool::default_thread_count()
{
    // 0 (explicit or as the unset fallback) = "no override": fall
    // through to the hardware concurrency.
    const std::size_t from_env =
        env::size_knob("MX_THREADS", 0, /*min_value=*/0);
    if (from_env > 0)
        return from_env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    const std::size_t lanes =
        num_threads > 0 ? num_threads : default_thread_count();
    num_workers_ = lanes - 1;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

ThreadPool&
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::ensure_started()
{
    if (started_)
        return;
    started_ = true;
    workers_.reserve(num_workers_);
    for (std::size_t i = 0; i < num_workers_; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

void
ThreadPool::run_items()
{
    const bool was_in_pool = tl_in_pool;
    tl_in_pool = true;
    const std::function<void(std::size_t)>* body = body_;
    const std::size_t n = n_;
    const std::size_t chunk = chunk_;
    for (;;) {
        const std::size_t begin =
            next_.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n)
            break;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                (*body)(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    if (!error_)
                        error_ = std::current_exception();
                }
                next_.store(n, std::memory_order_relaxed); // drain
                tl_in_pool = was_in_pool;
                return;
            }
        }
    }
    tl_in_pool = was_in_pool;
}

void
ThreadPool::worker_loop()
{
    obs::set_thread_name("pool-worker");
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        if (!body_)
            continue; // woke after the job already finished
        ++active_;
        lk.unlock();
        run_items();
        lk.lock();
        if (--active_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;
    // Inline when the pool adds nothing (single lane, tiny loop) or when
    // called from inside a pool lane (nested parallelism would deadlock
    // on run_mu_; the outer loop already owns the fan-out).
    if (num_workers_ == 0 || n == 1 || tl_in_pool) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    obs::Span span("pool.parallel_for");
    span.arg("n", static_cast<double>(n));

    std::lock_guard<std::mutex> run_lock(run_mu_);
    ensure_started();
    {
        std::lock_guard<std::mutex> lk(mu_);
        body_ = &body;
        n_ = n;
        chunk_ = std::max<std::size_t>(1, n / (thread_count() * 8));
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        ++generation_;
    }
    work_cv_.notify_all();
    run_items(); // the caller is a lane too
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mu_);
        done_cv_.wait(lk, [&] { return active_ == 0; });
        body_ = nullptr;
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace core
} // namespace mx
