#include "core/thread_pool.h"

#include <algorithm>

#include "core/env.h"
#include "obs/obs.h"

namespace mx {
namespace core {

namespace {

/** True while the current thread is executing pool work. */
thread_local bool tl_in_pool = false;

} // namespace

std::size_t
ThreadPool::default_thread_count()
{
    // 0 (explicit or as the unset fallback) = "no override": fall
    // through to the hardware concurrency.
    const std::size_t from_env =
        env::size_knob("MX_THREADS", 0, /*min_value=*/0);
    if (from_env > 0)
        return from_env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    const std::size_t lanes =
        num_threads > 0 ? num_threads : default_thread_count();
    num_workers_ = lanes - 1;
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    // run_mu_ makes the workers_ read provable; it cannot contend —
    // a parallel_for still holding it while the pool dies is already
    // a use-after-free — and the workers never take run_mu_.
    LockGuard run_lock(run_mu_);
    for (std::thread& t : workers_)
        t.join();
}

ThreadPool&
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::ensure_started()
{
    if (started_)
        return;
    started_ = true;
    workers_.reserve(num_workers_);
    for (std::size_t i = 0; i < num_workers_; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

void
ThreadPool::run_items(const std::function<void(std::size_t)>& body,
                      std::size_t n, std::size_t chunk)
{
    const bool was_in_pool = tl_in_pool;
    tl_in_pool = true;
    for (;;) {
        const std::size_t begin =
            next_.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n)
            break;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                body(i);
            } catch (...) {
                {
                    LockGuard lk(mu_);
                    if (!error_)
                        error_ = std::current_exception();
                }
                next_.store(n, std::memory_order_relaxed); // drain
                tl_in_pool = was_in_pool;
                return;
            }
        }
    }
    tl_in_pool = was_in_pool;
}

void
ThreadPool::worker_loop()
{
    obs::set_thread_name("pool-worker");
    std::uint64_t seen = 0;
    for (;;) {
        // Snapshot the job under the lock; the work loop runs on the
        // snapshot so it never touches the guarded fields lock-free.
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t n = 0;
        std::size_t chunk = 1;
        {
            UniqueLock lk(mu_);
            while (!stop_ && generation_ == seen)
                lk.wait(work_cv_);
            if (stop_)
                return;
            seen = generation_;
            if (!body_)
                continue; // woke after the job already finished
            ++active_;
            body = body_;
            n = n_;
            chunk = chunk_;
        }
        run_items(*body, n, chunk);
        {
            LockGuard lk(mu_);
            if (--active_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;
    // Inline when the pool adds nothing (single lane, tiny loop) or when
    // called from inside a pool lane (nested parallelism would deadlock
    // on run_mu_; the outer loop already owns the fan-out).
    if (num_workers_ == 0 || n == 1 || tl_in_pool) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    obs::Span span("pool.parallel_for");
    span.arg("n", static_cast<double>(n));

    LockGuard run_lock(run_mu_);
    ensure_started();
    const std::size_t chunk =
        std::max<std::size_t>(1, n / (thread_count() * 8));
    {
        LockGuard lk(mu_);
        body_ = &body;
        n_ = n;
        chunk_ = chunk;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        ++generation_;
    }
    work_cv_.notify_all();
    run_items(body, n, chunk); // the caller is a lane too
    std::exception_ptr err;
    {
        UniqueLock lk(mu_);
        while (active_ != 0)
            lk.wait(done_cv_);
        body_ = nullptr;
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace core
} // namespace mx
