#include "core/quantize.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/kernels/dispatch.h"
#include "core/scalar_fp.h"

namespace mx {
namespace core {

int
max_abs_exponent(std::span<const float> x)
{
    float amax = 0.0f;
    for (float v : x)
        amax = std::max(amax, std::fabs(v));
    if (amax == 0.0f)
        return kAllZeroExponent;
    int ex;
    std::frexp(amax, &ex);
    return ex - 1; // 2^ex_ <= amax < 2^(ex_+1) with ex_ = ex - 1
}

void
quantize_pow2_block(const BdrFormat& fmt, std::span<const float> in,
                    std::span<float> out, const Rounder& rounder,
                    Pow2BlockEncoding* enc)
{
    const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
    MX_CHECK_ARG(in.size() == out.size(), "quantize_pow2_block: size mismatch");
    MX_CHECK_ARG(in.size() <= static_cast<std::size_t>(fmt.k1),
                 "quantize_pow2_block: block larger than k1");
    kernels::active_kernel().quantize_block(plan, in, out, rounder, enc);
}

void
quantize_pow2(const BdrFormat& fmt, std::span<const float> in,
              std::span<float> out, const Rounder& rounder)
{
    MX_CHECK_ARG(in.size() == out.size(), "quantize_pow2: size mismatch");
    const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
    kernels::active_kernel().quantize(plan, in, out, rounder);
}

Quantizer::Quantizer(BdrFormat fmt, RoundingMode mode, ScalingPolicy policy,
                     std::uint64_t seed)
    : fmt_(std::move(fmt)),
      rng_(seed),
      rounder_(mode, &rng_),
      policy_(policy),
      scaler_()
{
    fmt_.validate();
    if (fmt_.s_kind == ScaleKind::Pow2Hw &&
        fmt_.elem == ElementKind::SignMagnitude)
        plan_ = kernels::make_quant_plan(fmt_);
}

void
Quantizer::operator()(std::span<const float> in, std::span<float> out)
{
    MX_CHECK_ARG(in.size() == out.size(), "Quantizer: size mismatch");
    if (in.empty())
        return;

    if (fmt_.s_kind == ScaleKind::Pow2Hw) {
        MX_CHECK_ARG(plan_.has_value(),
                     fmt_.name << ": pow2 HW scale needs sign-magnitude "
                                  "elements");
        // Plan built once in the constructor; one dispatch per call.
        kernels::active_kernel().quantize(*plan_, in, out, rounder_);
        return;
    }

    // Software-scaled families need the call's amax for the scale factor.
    float amax = 0.0f;
    for (float v : in)
        amax = std::max(amax, std::fabs(v));

    switch (fmt_.elem) {
      case ElementKind::TwosComplement: {
        if (fmt_.ss_kind == ScaleKind::IntHw) {
            // VSQ: the delayed scale targets the per-vector scale factors,
            // which are at most amax / mant_max, encoded in d2-bit ints.
            const double mant_max = static_cast<double>((1 << fmt_.m) - 1);
            double max_sv = amax / mant_max;
            double s = policy_ == ScalingPolicy::Delayed
                ? scaler_.update(max_sv, (1 << fmt_.d2) - 1)
                : max_sv / ((1 << fmt_.d2) - 1);
            if (s <= 0)
                s = 1.0;
            quantize_vsq(in, out, s);
        } else {
            const double mant_max = static_cast<double>((1 << fmt_.m) - 1);
            double s = policy_ == ScalingPolicy::Delayed
                ? scaler_.update(amax, mant_max)
                : (amax > 0 ? amax / mant_max : 1.0);
            if (s <= 0)
                s = 1.0;
            quantize_int(in, out, s);
        }
        return;
      }
      case ElementKind::FloatingPoint: {
        double s = policy_ == ScalingPolicy::Delayed
            ? scaler_.update(amax, fmt_.fp_max_finite())
            : (amax > 0 ? amax / fmt_.fp_max_finite() : 1.0);
        if (s <= 0)
            s = 1.0;
        quantize_fp(in, out, s);
        return;
      }
      case ElementKind::SignMagnitude:
        MX_CHECK(false, fmt_.name << ": sign-magnitude needs Pow2Hw scale");
    }
}

void
Quantizer::quantize_int(std::span<const float> in, std::span<float> out,
                        double scale)
{
    const double mant_max = static_cast<double>((1 << fmt_.m) - 1);
    for (std::size_t i = 0; i < in.size(); ++i) {
        double q = rounder_.round(in[i] / scale);
        q = std::clamp(q, -mant_max, mant_max);
        out[i] = static_cast<float>(q * scale);
    }
}

void
Quantizer::quantize_vsq(std::span<const float> in, std::span<float> out,
                        double scale)
{
    // VS-Quant [23]: per-vector (k2 = 16) scale factor encoded as a d2-bit
    // unsigned integer multiple of the global FP32 scale.
    const double mant_max = static_cast<double>((1 << fmt_.m) - 1);
    const double ss_max = static_cast<double>((1 << fmt_.d2) - 1);
    const std::size_t k2 = static_cast<std::size_t>(fmt_.k2);

    for (std::size_t lo = 0; lo < in.size(); lo += k2) {
        std::size_t hi = std::min(in.size(), lo + k2);
        double sub_amax = 0;
        for (std::size_t i = lo; i < hi; ++i)
            sub_amax = std::max<double>(sub_amax, std::fabs(in[i]));
        double sv = sub_amax / mant_max; // ideal per-vector scale
        double ssi = std::clamp(std::nearbyint(sv / scale), 1.0, ss_max);
        double eff = ssi * scale;
        for (std::size_t i = lo; i < hi; ++i) {
            double q = rounder_.round(in[i] / eff);
            q = std::clamp(q, -mant_max, mant_max);
            out[i] = static_cast<float>(q * eff);
        }
    }
}

void
Quantizer::quantize_fp(std::span<const float> in, std::span<float> out,
                       double scale)
{
    for (std::size_t i = 0; i < in.size(); ++i) {
        double q = fp_cast(fmt_, in[i] / scale, rounder_);
        out[i] = static_cast<float>(q * scale);
    }
}

std::vector<float>
Quantizer::quantize(const std::vector<float>& in)
{
    std::vector<float> out(in.size());
    (*this)(in, out);
    return out;
}

void
Quantizer::quantize_inplace(std::span<float> data)
{
    (*this)(data, data);
}

std::vector<float>
fake_quantize(const BdrFormat& fmt, const std::vector<float>& in,
              RoundingMode mode)
{
    Quantizer q(fmt, mode, ScalingPolicy::JustInTime);
    return q.quantize(in);
}

} // namespace core
} // namespace mx
