#pragma once

/**
 * @file
 * Monte-Carlo QSNR evaluation harness — the paper's statistical
 * methodology (Section IV-A, Figure 7): the reported QSNR of a format is
 * the ensemble QSNR over many thousands of independent vectors drawn
 * from a Gaussian distribution with variable variance, quantized through
 * the exact same stateful path (delayed scaling and all) that training
 * would use.
 */

#include <cstddef>
#include <cstdint>

#include "core/bdr_format.h"
#include "core/quantize.h"
#include "stats/distributions.h"

namespace mx {
namespace core {

/** Configuration of one QSNR measurement run. */
struct QsnrRunConfig
{
    /** Number of independent vectors (paper: "over 10K"). */
    std::size_t num_vectors = 10000;
    /** Elements per vector. */
    std::size_t vector_length = 1024;
    /** Data distribution (paper: GaussianVariableVariance). */
    stats::Distribution distribution =
        stats::Distribution::GaussianVariableVariance;
    /** Distribution family parameter (where applicable). */
    double dist_param = 1.0;
    /** Mantissa rounding. */
    RoundingMode rounding = RoundingMode::NearestEven;
    /** SW-scale policy (paper Fig 7: Delayed for training realism). */
    ScalingPolicy policy = ScalingPolicy::Delayed;
    /** Random seed. */
    std::uint64_t seed = 2023;
};

/**
 * Measure the ensemble QSNR (dB) of @p fmt under @p cfg.
 *
 * The same random vectors are produced for every format given the same
 * seed, so format comparisons are paired.
 */
double measure_qsnr_db(const BdrFormat& fmt, const QsnrRunConfig& cfg);

} // namespace core
} // namespace mx
