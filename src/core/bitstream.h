#pragma once

/**
 * @file
 * Bit-granular serialization shared by the packed format codecs and the
 * fused quantize+pack kernels.
 *
 * BDR formats are not byte-aligned (an MX9 element is 8 bits but its
 * block carries 8 + 8x1 extra scale bits; an MX4 element is 3 bits), so
 * fields are written LSB-first into a byte stream.  The memory model's
 * packing-efficiency numbers (Fig 7 x-axis) come from the exact same
 * field widths.
 *
 * Writes and reads move whole bytes at a time (at most 9 touches for a
 * 64-bit field instead of 64), which is what makes the fused
 * quantize+pack kernel path competitive with plain quantization; see
 * BENCH_perf_quantize.json's pack_* metrics.
 *
 * This header lives in core (not formats) so the kernel layer can emit
 * packed blocks without inverting the core -> formats dependency;
 * formats/packed.h re-exports the two classes under mx::formats for
 * existing call sites.
 */

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"

namespace mx {
namespace core {

/** Appends bit fields (LSB-first within the stream) to a byte vector. */
class BitWriter
{
  public:
    /** Append the low @p bits of @p value (bits in [0, 64]). */
    void
    write(std::uint64_t value, int bits)
    {
        MX_CHECK_ARG(bits >= 0 && bits <= 64, "BitWriter: bad field width");
        while (bits > 0) {
            if (bit_pos_ == 0)
                bytes_.push_back(0);
            const int take = std::min(bits, 8 - bit_pos_);
            const std::uint32_t mask = (1u << take) - 1u;
            bytes_.back() |= static_cast<std::uint8_t>(
                (static_cast<std::uint32_t>(value) & mask) << bit_pos_);
            value >>= take;
            bits -= take;
            bit_pos_ = (bit_pos_ + take) & 7;
        }
    }

    /** Total number of bits written. */
    std::size_t
    bit_count() const
    {
        if (bytes_.empty())
            return 0;
        return bytes_.size() * 8 -
               (bit_pos_ == 0 ? 0 : 8 - static_cast<std::size_t>(bit_pos_));
    }

    /** The accumulated byte stream (final partial byte zero-padded). */
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

    /** Move the stream out. */
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
    int bit_pos_ = 0;
};

/** Reads bit fields written by BitWriter, in the same order.  Holds a
 *  non-owning view: works equally over an owned byte vector or a
 *  read-only mapping (artifact/reader.h) — the caller keeps the bytes
 *  alive for the reader's lifetime. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t>& bytes)
        : data_(bytes.data()), size_(bytes.size())
    {
    }

    explicit BitReader(std::span<const std::uint8_t> bytes)
        : data_(bytes.data()), size_(bytes.size())
    {
    }

    /** Read the next @p bits as an unsigned value. */
    std::uint64_t
    read(int bits)
    {
        MX_CHECK_ARG(bits >= 0 && bits <= 64, "BitReader: bad field width");
        std::uint64_t v = 0;
        int got = 0;
        while (got < bits) {
            const std::size_t byte = pos_ >> 3;
            MX_CHECK_ARG(byte < size_, "BitReader: out of data");
            const int off = static_cast<int>(pos_ & 7);
            const int take = std::min(bits - got, 8 - off);
            const std::uint32_t mask = (1u << take) - 1u;
            const std::uint64_t chunk =
                (static_cast<std::uint32_t>(data_[byte]) >> off) & mask;
            v |= chunk << got;
            got += take;
            pos_ += static_cast<std::size_t>(take);
        }
        return v;
    }

    /** Bits consumed so far. */
    std::size_t bit_position() const { return pos_; }

  private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace core
} // namespace mx
