#include "core/delayed_scaler.h"

#include <algorithm>

#include "core/check.h"

namespace mx {
namespace core {

DelayedScaler::DelayedScaler(std::size_t window, double margin)
    : window_(window), margin_(margin)
{
    MX_CHECK_ARG(window >= 1, "DelayedScaler: window must be >= 1");
    MX_CHECK_ARG(margin > 0, "DelayedScaler: margin must be positive");
}

double
DelayedScaler::peek(double current_amax, double max_representable) const
{
    double amax = history_.empty()
        ? current_amax
        : *std::max_element(history_.begin(), history_.end());
    if (amax <= 0)
        amax = current_amax;
    if (amax <= 0)
        return 1.0; // all-zero history and tensor: any scale works
    return amax * margin_ / max_representable;
}

double
DelayedScaler::update(double current_amax, double max_representable)
{
    double s = peek(current_amax, max_representable);
    history_.push_back(current_amax);
    if (history_.size() > window_)
        history_.pop_front();
    return s;
}

void
DelayedScaler::reset()
{
    history_.clear();
}

} // namespace core
} // namespace mx
