#pragma once

/**
 * @file
 * A small shared worker pool for data-parallel loops — the execution
 * substrate of the multi-threaded Figure 7 design-space sweep and of any
 * future batched serving path.
 *
 * Design points:
 *  - lazily started: no threads exist until the first parallel_for();
 *  - sized by the MX_THREADS environment variable (when constructed
 *    with num_threads == 0), falling back to the hardware concurrency;
 *  - the calling thread participates as a lane, so a pool of size 1
 *    never spawns a thread and runs the loop inline;
 *  - parallel_for(n, body) invokes body(i) exactly once for every
 *    i in [0, n) — each index writes its own output slot, so results
 *    are identical for any thread count (the sweep determinism test in
 *    tests/test_sweep.cpp pins this);
 *  - nested/concurrent parallel_for calls degrade gracefully: a call
 *    from inside a pool lane runs inline on that lane.
 *
 * Exceptions thrown by body are caught, the loop drained, and the first
 * one rethrown on the calling thread.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace mx {
namespace core {

class ThreadPool
{
  public:
    /**
     * @param num_threads total lanes including the caller; 0 resolves
     *        MX_THREADS, then std::thread::hardware_concurrency().
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    /** Joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total lanes (worker threads + the calling thread). */
    std::size_t thread_count() const { return num_workers_ + 1; }

    /**
     * Run body(i) for every i in [0, n), fanning out across the pool.
     * Blocks until every index completed; rethrows the first exception.
     */
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& body);

    /**
     * The process-wide pool (sized from MX_THREADS at first use).  Use
     * a locally constructed pool instead when a specific thread count
     * is required, e.g. for determinism tests.
     */
    static ThreadPool& shared();

    /** The lane count a default-constructed pool resolves to. */
    static std::size_t default_thread_count();

  private:
    void ensure_started() MX_REQUIRES(run_mu_);
    void worker_loop() MX_EXCLUDES(mu_);
    /** One lane's share of the current job: @p body/@p n/@p chunk are
     *  the caller's snapshot of the job fields, taken under mu_ (or
     *  owned outright by parallel_for), so the work loop itself runs
     *  lock-free.  Only the first-exception slot touches mu_. */
    void run_items(const std::function<void(std::size_t)>& body,
                   std::size_t n, std::size_t chunk) MX_EXCLUDES(mu_);

    std::size_t num_workers_ = 0; ///< Lanes - 1 (threads actually spawned).
    Mutex run_mu_; ///< Serializes top-level parallel_for calls.
    std::vector<std::thread> workers_ MX_GUARDED_BY(run_mu_);
    bool started_ MX_GUARDED_BY(run_mu_) = false;

    Mutex mu_; ///< Guards the per-job fields below.
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ MX_GUARDED_BY(mu_) = 0;
    bool stop_ MX_GUARDED_BY(mu_) = false;
    std::size_t active_ MX_GUARDED_BY(mu_) = 0;
    const std::function<void(std::size_t)>* body_ MX_GUARDED_BY(mu_) =
        nullptr;
    std::size_t n_ MX_GUARDED_BY(mu_) = 0;
    std::size_t chunk_ MX_GUARDED_BY(mu_) = 1;
    std::atomic<std::size_t> next_{0}; ///< Work cursor: atomic, unguarded.
    std::exception_ptr error_ MX_GUARDED_BY(mu_);
};

} // namespace core
} // namespace mx
