#pragma once

/**
 * @file
 * The Block Data Representations (BDR) format descriptor — the paper's
 * unifying abstraction (Section III, Figure 5, Table I).
 *
 * A BDR point divides a tensor into blocks of k1 elements carrying a
 * first-level scale factor s (d1 bits when hardware-managed), and each
 * block into sub-blocks of k2 elements carrying a sub-scale factor ss_i
 * (d2 bits).  The per-element payload is a sign bit plus an m-bit explicit
 * mantissa.  Choosing the scale encodings and granularities reproduces
 * every format the paper studies:
 *
 *   - scaled INT:   s = FP32 in software over ~1K elements, no sub-scale.
 *   - MSFP / BFP:   s = power-of-two in hardware over ~16, no sub-scale.
 *   - scalar FP8:   s = FP32 in software over a tensor, per-element
 *                   power-of-two sub-scale (the private exponent, k2 = 1).
 *   - VSQ:          s = FP32 in software, INT sub-scale over 16 elements.
 *   - MX (ours):    s = 8-bit power-of-two over 16 elements, 1-bit
 *                   power-of-two microexponent shared by 2 elements.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mx {
namespace core {

/** How a (sub-)scale factor is encoded and who manages it (Table I). */
enum class ScaleKind
{
    None,    ///< This level of scaling is absent.
    Pow2Hw,  ///< Power-of-two exponent, set by hardware (BFP / MX).
    Fp32Sw,  ///< FP32 scalar managed by software (INT / FP8 / VSQ level 1).
    IntHw,   ///< Unsigned integer scale set in hardware (VSQ level 2).
};

/** How the per-element payload encodes a number. */
enum class ElementKind
{
    SignMagnitude,  ///< Sign bit + m-bit integer mantissa (BFP / MX).
    TwosComplement, ///< Symmetric two's-complement integer (INT / VSQ).
    FloatingPoint,  ///< Scalar float: sign + e-bit exponent + m-bit mantissa
                    ///< with implicit leading one and subnormals.
};

/** Handling of the top exponent code in scalar floating-point elements. */
enum class FpSpecials
{
    None,       ///< All codes are finite (OCP FP4/FP6 style); saturate.
    MaxNan,     ///< Top-exponent all-ones mantissa is NaN (FP8 E4M3): the
                ///< largest finite value is (2 - 2^(1-m)) * 2^emax.
    InfAndNan,  ///< IEEE: the whole top exponent is reserved (E5M2, FP16,
                ///< BF16); the largest finite uses the second-top exponent.
};

/** Names scale-kind values for reports. */
const char* to_string(ScaleKind kind);
/** Names element-kind values for reports. */
const char* to_string(ElementKind kind);

/**
 * A point in the BDR design space.
 *
 * Invariants (validated by validate()): k2 divides k1; d2 == 0 iff
 * ss_kind == None; FloatingPoint elements use k1 == k2 == 1 within the
 * hardware block (their software scale granularity is sw_granularity).
 */
struct BdrFormat
{
    /** Display name, e.g. "MX9" or "FP8 (E4M3)". */
    std::string name;

    /** Per-element payload encoding. */
    ElementKind elem = ElementKind::SignMagnitude;

    /** Explicit mantissa bits (magnitude; excludes sign and, for
     *  FloatingPoint, the implicit leading one — paper footnote 1). */
    int m = 7;

    /** Exponent bits of a FloatingPoint element (0 otherwise). */
    int e = 0;

    /** Special-value policy for FloatingPoint elements. */
    FpSpecials specials = FpSpecials::None;

    /** First-level scale: encoding, bit-width, block granularity. */
    ScaleKind s_kind = ScaleKind::Pow2Hw;
    int d1 = 8;
    int k1 = 16;

    /** Second-level sub-scale: encoding, bit-width, sub-block granularity. */
    ScaleKind ss_kind = ScaleKind::Pow2Hw;
    int d2 = 1;
    int k2 = 2;

    /**
     * Amortization granularity of a software-managed FP32 first-level
     * scale (Table I lists ~1K for INT/VSQ and ~10K for FP8).  Used by
     * the QSNR harness to decide how many elements share one delayed
     * scale factor; 0 means "the whole tensor".
     */
    int sw_granularity = 0;

    /** Throws mx::ArgumentError if the descriptor is inconsistent. */
    void validate() const;

    /**
     * Average storage bits per element:
     * (m + 1) + d1/k1 + d2/k2 for block formats (paper Section III), and
     * 1 + e + m for scalar floating point (the software scale is amortized
     * over sw_granularity elements and counted when it is finite).
     */
    double bits_per_element() const;

    /** True if this is a scalar floating-point element format. */
    bool is_scalar_fp() const { return elem == ElementKind::FloatingPoint; }

    /** True when the first-level scale factor is software-managed FP32. */
    bool has_sw_scale() const { return s_kind == ScaleKind::Fp32Sw; }

    /** Largest finite magnitude a FloatingPoint element can encode. */
    double fp_max_finite() const;

    /** Exponent bias of a FloatingPoint element: 2^(e-1) - 1 (min 0). */
    int fp_bias() const;

    /** beta = 2^d2 - 1: the maximum sub-block shift (Theorem 1). */
    int beta() const { return (1 << d2) - 1; }

    /** One-line summary, e.g. "MX9 {m=7 d1=8 k1=16 d2=1 k2=2}". */
    std::string summary() const;
};

/** @name Format catalog
 * Named instances of every format evaluated in the paper (Figure 7,
 * Tables I and II) plus wide scalar reference formats.
 * @{
 */
BdrFormat mx9();    ///< Table II: m=7, d1=8/k1=16, d2=1/k2=2 (9 bits/elem).
BdrFormat mx6();    ///< Table II: m=4 (6 bits/elem).
BdrFormat mx4();    ///< Table II: m=2 (4 bits/elem).
/** General MX-family point: pow2/pow2 two-level HW scaling. */
BdrFormat mx_custom(int m, int d1, int k1, int d2, int k2);
BdrFormat msfp16(); ///< [24]: sign+7-bit mantissa, shared 8-bit exp, k=16.
BdrFormat msfp12(); ///< [24]: sign+3-bit mantissa, shared 8-bit exp, k=16.
/** General BFP point (d2 = 0). */
BdrFormat bfp_custom(int m, int d1, int k1);
BdrFormat fp8_e4m3();  ///< FP8 with 4-bit exponent, NaN-on-max (max 448).
BdrFormat fp8_e5m2();  ///< FP8 with 5-bit exponent, IEEE inf/NaN.
BdrFormat fp8_e3m4();  ///< FP8 with 3-bit exponent.
BdrFormat fp6_e3m2();  ///< FP6 (max 28).
BdrFormat fp6_e2m3();  ///< FP6 (max 7.5).
BdrFormat fp4_e2m1();  ///< FP4 (max 6).
BdrFormat fp4_e1m2();  ///< FP4 variant.
BdrFormat fp4_e3m0();  ///< FP4 with zero mantissa bits (log-style).
BdrFormat fp16();      ///< IEEE binary16 (reference / elementwise ops).
BdrFormat bf16();      ///< bfloat16 (reference / elementwise ops).
BdrFormat scaled_int(int total_bits); ///< "scaled INT4/8": SW FP32 scale.
BdrFormat vsq(int elem_bits, int d2); ///< VSQ [23]: INT elems + INT sub-scale.
/** @} */

/**
 * The named design points plotted in Figure 7 (excluding the FP8* dual
 * baseline, which is an area-model construct rather than a numeric
 * format).  VSQ entries appear once per d2 in {4, 6, 8, 10}; the Figure 7
 * bench reports the best per element-width as the paper does.
 */
std::vector<BdrFormat> figure7_formats();

} // namespace core
} // namespace mx
