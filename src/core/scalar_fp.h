#pragma once

/**
 * @file
 * Parameterized scalar floating-point codec (EeMm).
 *
 * Implements cast-to-narrow-float with implicit leading one, subnormals,
 * configurable rounding, and the three special-value policies used by the
 * paper's comparison formats (OCP-style all-finite FP4/FP6, E4M3's
 * NaN-on-max-code, and IEEE inf/NaN for E5M2/FP16/BF16).  Out-of-range
 * magnitudes saturate to the largest finite value, matching deep-learning
 * practice for narrow formats.
 */

#include <cstdint>

#include "core/bdr_format.h"
#include "core/rounding.h"

namespace mx {
namespace core {

/**
 * Quantize a single value to the scalar floating-point format @p fmt.
 *
 * @param fmt      a FloatingPoint-element BdrFormat (validated by caller)
 * @param v        the value to cast (finite)
 * @param rounder  rounding policy
 * @return the nearest representable value under the policy, saturated to
 *         the format's largest finite magnitude.
 */
double fp_cast(const BdrFormat& fmt, double v, const Rounder& rounder);

/**
 * Encode @p v into the format's integer code (sign, exponent field,
 * mantissa field packed LSB-first: mantissa | exponent << m | sign << (m+e)).
 * Used by the packed-format library and the bit-exactness tests.
 */
std::uint32_t fp_encode(const BdrFormat& fmt, double v,
                        const Rounder& rounder);

/** Decode an integer code produced by fp_encode back to a double. */
double fp_decode(const BdrFormat& fmt, std::uint32_t code);

/** Number of bits in a packed code: 1 + e + m. */
inline int fp_code_bits(const BdrFormat& fmt) { return 1 + fmt.e + fmt.m; }

} // namespace core
} // namespace mx
