#include "core/bdr_format.h"

#include <cmath>
#include <sstream>

#include "core/check.h"

namespace mx {
namespace core {

const char*
to_string(ScaleKind kind)
{
    switch (kind) {
      case ScaleKind::None: return "-";
      case ScaleKind::Pow2Hw: return "2^z (HW)";
      case ScaleKind::Fp32Sw: return "FP32 (SW)";
      case ScaleKind::IntHw: return "INT (HW)";
    }
    return "?";
}

const char*
to_string(ElementKind kind)
{
    switch (kind) {
      case ElementKind::SignMagnitude: return "sign-magnitude";
      case ElementKind::TwosComplement: return "twos-complement";
      case ElementKind::FloatingPoint: return "floating-point";
    }
    return "?";
}

void
BdrFormat::validate() const
{
    MX_CHECK_ARG(m >= 0 && m <= 23, name << ": mantissa bits out of range");
    if (elem == ElementKind::FloatingPoint) {
        MX_CHECK_ARG(e >= 1 && e <= 8, name << ": FP exponent bits");
        MX_CHECK_ARG(k1 == 1 && k2 == 1,
                     name << ": scalar FP uses k1 == k2 == 1 in hardware");
        MX_CHECK_ARG(ss_kind == ScaleKind::None || d2 == e,
                     name << ": for scalar FP, d2 is the private exponent");
    } else {
        MX_CHECK_ARG(e == 0, name << ": block formats have no private exp");
        MX_CHECK_ARG(k1 >= 1, name << ": k1 must be positive");
        MX_CHECK_ARG(k2 >= 1 && k1 % k2 == 0,
                     name << ": k2 must divide k1 (k1=" << k1 << " k2=" << k2
                          << ")");
        MX_CHECK_ARG((d2 == 0) == (ss_kind == ScaleKind::None),
                     name << ": d2 and ss_kind must agree");
        if (ss_kind == ScaleKind::Pow2Hw)
            MX_CHECK_ARG(d2 >= 1 && d2 <= 4, name << ": pow2 sub-scale bits");
        if (ss_kind == ScaleKind::IntHw)
            MX_CHECK_ARG(d2 >= 1 && d2 <= 12, name << ": int sub-scale bits");
    }
    if (s_kind == ScaleKind::Pow2Hw)
        MX_CHECK_ARG(d1 >= 1 && d1 <= 11, name << ": pow2 scale bits");
    if (s_kind == ScaleKind::Fp32Sw)
        MX_CHECK_ARG(sw_granularity >= 0, name << ": sw_granularity");
}

double
BdrFormat::bits_per_element() const
{
    if (elem == ElementKind::FloatingPoint)
        return 1.0 + e + m;
    double bits = static_cast<double>(m + 1);
    if (s_kind == ScaleKind::Pow2Hw)
        bits += static_cast<double>(d1) / k1;
    else if (s_kind == ScaleKind::Fp32Sw && sw_granularity > 0)
        bits += 32.0 / sw_granularity;
    if (ss_kind == ScaleKind::Pow2Hw || ss_kind == ScaleKind::IntHw)
        bits += static_cast<double>(d2) / k2;
    return bits;
}

int
BdrFormat::fp_bias() const
{
    MX_CHECK_ARG(elem == ElementKind::FloatingPoint,
                 name << ": fp_bias on non-FP format");
    return (1 << (e - 1)) - 1;
}

double
BdrFormat::fp_max_finite() const
{
    MX_CHECK_ARG(elem == ElementKind::FloatingPoint,
                 name << ": fp_max_finite on non-FP format");
    int bias = fp_bias();
    int top = (1 << e) - 1 - bias; // exponent of the all-ones field
    switch (specials) {
      case FpSpecials::None:
        return (2.0 - std::ldexp(1.0, -m)) * std::ldexp(1.0, top);
      case FpSpecials::MaxNan:
        // All-ones mantissa at the top exponent is NaN; the next mantissa
        // down is the max finite.  With m == 0 there is no finite value at
        // the top exponent at all.
        if (m == 0)
            return std::ldexp(1.0, top - 1) * (2.0 - 1.0);
        return (2.0 - std::ldexp(1.0, 1 - m)) * std::ldexp(1.0, top);
      case FpSpecials::InfAndNan:
        return (2.0 - std::ldexp(1.0, -m)) * std::ldexp(1.0, top - 1);
    }
    return 0.0;
}

std::string
BdrFormat::summary() const
{
    std::ostringstream os;
    os << name << " {";
    if (elem == ElementKind::FloatingPoint) {
        os << "E" << e << "M" << m;
    } else {
        os << "m=" << m << " d1=" << d1 << " k1=" << k1;
        if (d2 > 0)
            os << " d2=" << d2 << " k2=" << k2;
    }
    os << " s=" << to_string(s_kind) << "}";
    return os.str();
}

namespace {

BdrFormat
make_mx(std::string name, int m, int d1, int k1, int d2, int k2)
{
    BdrFormat f;
    f.name = std::move(name);
    f.elem = ElementKind::SignMagnitude;
    f.m = m;
    f.s_kind = ScaleKind::Pow2Hw;
    f.d1 = d1;
    f.k1 = k1;
    if (d2 > 0) {
        f.ss_kind = ScaleKind::Pow2Hw;
        f.d2 = d2;
        f.k2 = k2;
    } else {
        f.ss_kind = ScaleKind::None;
        f.d2 = 0;
        f.k2 = 1;
    }
    f.validate();
    return f;
}

BdrFormat
make_fp(std::string name, int e, int m, FpSpecials specials)
{
    BdrFormat f;
    f.name = std::move(name);
    f.elem = ElementKind::FloatingPoint;
    f.e = e;
    f.m = m;
    f.specials = specials;
    f.s_kind = ScaleKind::Fp32Sw;
    f.d1 = 0;
    f.k1 = 1;
    f.ss_kind = ScaleKind::Pow2Hw;
    f.d2 = e;
    f.k2 = 1;
    f.sw_granularity = 0; // whole tensor, like Transformer Engine
    f.validate();
    return f;
}

} // namespace

BdrFormat mx9() { return make_mx("MX9", 7, 8, 16, 1, 2); }
BdrFormat mx6() { return make_mx("MX6", 4, 8, 16, 1, 2); }
BdrFormat mx4() { return make_mx("MX4", 2, 8, 16, 1, 2); }

BdrFormat
mx_custom(int m, int d1, int k1, int d2, int k2)
{
    std::ostringstream os;
    os << "BDR{m=" << m << ",d1=" << d1 << ",k1=" << k1 << ",d2=" << d2
       << ",k2=" << k2 << "}";
    return make_mx(os.str(), m, d1, k1, d2, k2);
}

BdrFormat msfp16() { return make_mx("MSFP16", 7, 8, 16, 0, 1); }
BdrFormat msfp12() { return make_mx("MSFP12", 3, 8, 16, 0, 1); }

BdrFormat
bfp_custom(int m, int d1, int k1)
{
    std::ostringstream os;
    os << "BFP{m=" << m << ",d1=" << d1 << ",k1=" << k1 << "}";
    return make_mx(os.str(), m, d1, k1, 0, 1);
}

BdrFormat fp8_e4m3() { return make_fp("FP8 (E4M3)", 4, 3, FpSpecials::MaxNan); }
BdrFormat fp8_e5m2() { return make_fp("FP8 (E5M2)", 5, 2, FpSpecials::InfAndNan); }
BdrFormat fp8_e3m4() { return make_fp("FP8 (E3M4)", 3, 4, FpSpecials::None); }
BdrFormat fp6_e3m2() { return make_fp("FP6 (E3M2)", 3, 2, FpSpecials::None); }
BdrFormat fp6_e2m3() { return make_fp("FP6 (E2M3)", 2, 3, FpSpecials::None); }
BdrFormat fp4_e2m1() { return make_fp("FP4 (E2M1)", 2, 1, FpSpecials::None); }
BdrFormat fp4_e1m2() { return make_fp("FP4 (E1M2)", 1, 2, FpSpecials::None); }
BdrFormat fp4_e3m0() { return make_fp("FP4 (E3M0)", 3, 0, FpSpecials::None); }
BdrFormat fp16() { return make_fp("FP16", 5, 10, FpSpecials::InfAndNan); }
BdrFormat bf16() { return make_fp("BF16", 8, 7, FpSpecials::InfAndNan); }

BdrFormat
scaled_int(int total_bits)
{
    MX_CHECK_ARG(total_bits >= 2 && total_bits <= 16, "scaled_int bits");
    BdrFormat f;
    f.name = "scaled INT" + std::to_string(total_bits);
    f.elem = ElementKind::TwosComplement;
    f.m = total_bits - 1;
    f.s_kind = ScaleKind::Fp32Sw;
    f.d1 = 0;
    f.k1 = 1;
    f.k2 = 1;
    f.ss_kind = ScaleKind::None;
    f.d2 = 0;
    f.sw_granularity = 1024; // Table I: ~1K elements per SW scale
    f.validate();
    return f;
}

BdrFormat
vsq(int elem_bits, int d2)
{
    MX_CHECK_ARG(elem_bits >= 2 && elem_bits <= 16, "vsq element bits");
    BdrFormat f;
    f.name = "VSQ" + std::to_string(elem_bits) + " (d2=" +
             std::to_string(d2) + ")";
    f.elem = ElementKind::TwosComplement;
    f.m = elem_bits - 1;
    f.s_kind = ScaleKind::Fp32Sw;
    f.d1 = 0;
    f.k1 = 16;   // the VSQ vector size [23]
    f.ss_kind = ScaleKind::IntHw;
    f.d2 = d2;
    f.k2 = 16;
    f.sw_granularity = 1024;
    f.validate();
    return f;
}

std::vector<BdrFormat>
figure7_formats()
{
    std::vector<BdrFormat> v = {
        mx9(), mx6(), mx4(),
        fp8_e5m2(), fp8_e4m3(), fp8_e3m4(),
        fp6_e3m2(), fp6_e2m3(),
        fp4_e2m1(), fp4_e1m2(), fp4_e3m0(),
        msfp16(), msfp12(),
        scaled_int(4), scaled_int(8),
    };
    for (int bits : {4, 6, 8})
        for (int d2 : {4, 6, 8, 10})
            v.push_back(vsq(bits, d2));
    return v;
}

} // namespace core
} // namespace mx
