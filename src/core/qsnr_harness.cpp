#include "core/qsnr_harness.h"

#include <vector>

#include "stats/metrics.h"

namespace mx {
namespace core {

double
measure_qsnr_db(const BdrFormat& fmt, const QsnrRunConfig& cfg)
{
    stats::Rng rng(cfg.seed);
    Quantizer quantizer(fmt, cfg.rounding, cfg.policy, cfg.seed ^ 0xabcdef);
    stats::QsnrAccumulator acc;

    std::vector<float> x, q(cfg.vector_length);
    for (std::size_t t = 0; t < cfg.num_vectors; ++t) {
        stats::make_vector(cfg.distribution, cfg.dist_param,
                           cfg.vector_length, rng, x);
        q.resize(x.size());
        quantizer(x, q);
        acc.add(x, q);
    }
    return acc.qsnr_db();
}

} // namespace core
} // namespace mx
