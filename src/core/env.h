#pragma once

/**
 * @file
 * One parser for every MX_* environment knob.
 *
 * Before this header existed each getenv site re-implemented parsing
 * with its own silent-fallback rules: MX_GEMM mapped any unrecognized
 * value ("ON", "auto ", "2") to Auto without a word, MX_THREADS and the
 * MX_SERVE_* knobs each rolled their own strtoull loop, and
 * MX_FORCE_SCALAR treated every non-"0" string — including "false" —
 * as true.  A typo'd knob silently configuring the opposite of what
 * the operator asked for is the worst kind of serving bug, so these
 * helpers share one rule set:
 *
 *  - unset or empty always means "use the fallback", silently;
 *  - values are trimmed of surrounding whitespace and matched
 *    case-insensitively ("ON", " auto " and "Auto" all parse);
 *  - a malformed value falls back AND warns once per variable on
 *    stderr (once per process, so a knob read in a hot loop cannot
 *    spam the log).
 *
 * Knobs routed through here: MX_THREADS, MX_FORCE_SCALAR, MX_GEMM,
 * MX_GEMM_VERIFY, MX_SERVE_BATCH, MX_SERVE_QUEUE, MX_SERVE_REPLICAS,
 * MX_SERVE_SESSIONS.  The environment is re-read on every call (knob
 * caching, where wanted, is the call site's business — and several
 * tests re-point knobs mid-process).
 */

#include <cstddef>
#include <initializer_list>

namespace mx {
namespace core {
namespace env {

/**
 * Parse @p name as a size knob.  Accepts a plain decimal integer
 * >= @p min_value.  A numeric value *below* the floor (0 or a negative
 * thread count) warns once and clamps to @p min_value — an operator
 * asking for "no threads" means the minimum, and propagating a zero
 * into shard math divides by it.  Anything non-numeric (trailing junk,
 * out of range) warns once and returns @p fallback.
 */
std::size_t size_knob(const char* name, std::size_t fallback,
                      std::size_t min_value = 1);

/**
 * Parse @p name as a boolean knob.  Accepts 1/true/on/yes and
 * 0/false/off/no (any case); anything else warns once and returns
 * @p fallback.
 */
bool flag_knob(const char* name, bool fallback);

/** One accepted spelling of an enum knob value. */
struct EnumToken
{
    const char* token; ///< Accepted spelling (matched case-insensitively).
    int value;         ///< Value the spelling maps to.
};

/**
 * Parse @p name against an accepted-token list.  Returns the matching
 * token's value, or warns once and returns @p fallback when the value
 * matches none of them.
 */
int enum_knob(const char* name, int fallback,
              std::initializer_list<EnumToken> tokens);

} // namespace env
} // namespace core
} // namespace mx
