#pragma once

/**
 * @file
 * Rounding policies used when mapping scaled real values to integer codes.
 *
 * The paper's formats use round-to-nearest (ties to even) throughout; the
 * related FAST work [43] motivates stochastic rounding for training, which
 * is provided as an option and exercised by the ablation benches.
 */

#include <cmath>

#include "stats/rng.h"

namespace mx {
namespace core {

/** Supported rounding modes for RoundToInt in the quantization function. */
enum class RoundingMode
{
    NearestEven,  ///< IEEE round-to-nearest, ties to even (default).
    NearestAway,  ///< Round half away from zero.
    TowardZero,   ///< Truncate.
    Stochastic,   ///< Round up with probability equal to the fraction.
};

/** Human-readable name of a rounding mode. */
inline const char*
to_string(RoundingMode mode)
{
    switch (mode) {
      case RoundingMode::NearestEven: return "nearest-even";
      case RoundingMode::NearestAway: return "nearest-away";
      case RoundingMode::TowardZero: return "toward-zero";
      case RoundingMode::Stochastic: return "stochastic";
    }
    return "?";
}

/**
 * Stateful rounder: binds a RoundingMode to the random stream needed by
 * stochastic rounding.  Cheap to copy; the Rng pointer is non-owning and
 * only required for RoundingMode::Stochastic.
 */
class Rounder
{
  public:
    explicit Rounder(RoundingMode mode = RoundingMode::NearestEven,
                     stats::Rng* rng = nullptr)
        : mode_(mode), rng_(rng)
    {
    }

    /** Round @p v to an integral double under the configured mode. */
    double
    round(double v) const
    {
        switch (mode_) {
          case RoundingMode::NearestEven:
            // nearbyint honours the FP environment; the default mode is
            // round-to-nearest-even, which mxlib never changes.
            return std::nearbyint(v);
          case RoundingMode::NearestAway:
            return std::round(v);
          case RoundingMode::TowardZero:
            return std::trunc(v);
          case RoundingMode::Stochastic: {
            double f = std::floor(v);
            double frac = v - f;
            double u = rng_ ? rng_->uniform() : 0.5;
            return frac > u ? f + 1.0 : f;
          }
        }
        return std::nearbyint(v);
    }

    /** The configured mode. */
    RoundingMode mode() const { return mode_; }

  private:
    RoundingMode mode_;
    stats::Rng* rng_;
};

} // namespace core
} // namespace mx
