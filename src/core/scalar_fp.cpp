#include "core/scalar_fp.h"

#include <cmath>

#include "core/check.h"

namespace mx {
namespace core {

namespace {

/**
 * Shared rounding core: returns |result| for |v|, as a double.
 * The exponent of the rounding step is max(floor(log2|v|), emin) - m,
 * which covers normals, subnormals, and carry-out to the next binade.
 */
double
cast_magnitude(const BdrFormat& fmt, double a, const Rounder& rounder)
{
    if (a == 0.0)
        return 0.0;
    int bias = fmt.fp_bias();
    int emin = 1 - bias; // smallest normal exponent
    int ex;
    std::frexp(a, &ex);
    ex -= 1; // a = f * 2^(ex+1), f in [0.5, 1)  =>  2^ex <= a < 2^(ex+1)
    int q_exp = ex < emin ? emin : ex;
    double step = std::ldexp(1.0, q_exp - fmt.m);
    double q = rounder.round(a / step) * step;
    double max_finite = fmt.fp_max_finite();
    if (q > max_finite)
        q = max_finite; // saturating cast (no inf generation)
    return q;
}

} // namespace

double
fp_cast(const BdrFormat& fmt, double v, const Rounder& rounder)
{
    MX_CHECK_ARG(fmt.elem == ElementKind::FloatingPoint,
                 fmt.name << ": fp_cast on non-FP format");
    if (std::isnan(v))
        return v;
    if (std::isinf(v))
        return std::copysign(fmt.fp_max_finite(), v);
    double q = cast_magnitude(fmt, std::fabs(v), rounder);
    return std::copysign(q, v);
}

std::uint32_t
fp_encode(const BdrFormat& fmt, double v, const Rounder& rounder)
{
    MX_CHECK_ARG(fmt.elem == ElementKind::FloatingPoint,
                 fmt.name << ": fp_encode on non-FP format");
    std::uint32_t sign = std::signbit(v) ? 1u : 0u;
    double a = cast_magnitude(fmt, std::fabs(v), rounder);

    int bias = fmt.fp_bias();
    int emin = 1 - bias;
    std::uint32_t exp_field = 0, man_field = 0;
    if (a != 0.0) {
        int ex;
        std::frexp(a, &ex);
        ex -= 1;
        if (ex < emin) {
            // Subnormal: value = man * 2^(emin - m).
            exp_field = 0;
            man_field = static_cast<std::uint32_t>(
                std::llround(a / std::ldexp(1.0, emin - fmt.m)));
        } else {
            exp_field = static_cast<std::uint32_t>(ex + bias);
            double frac = a / std::ldexp(1.0, ex) - 1.0; // in [0, 1)
            man_field = static_cast<std::uint32_t>(
                std::llround(frac * std::ldexp(1.0, fmt.m)));
            MX_CHECK(man_field < (1u << fmt.m),
                     fmt.name << ": mantissa overflow in encode");
        }
    }
    return man_field | (exp_field << fmt.m) | (sign << (fmt.m + fmt.e));
}

double
fp_decode(const BdrFormat& fmt, std::uint32_t code)
{
    MX_CHECK_ARG(fmt.elem == ElementKind::FloatingPoint,
                 fmt.name << ": fp_decode on non-FP format");
    std::uint32_t man_mask = (1u << fmt.m) - 1;
    std::uint32_t man = code & man_mask;
    std::uint32_t exp_field = (code >> fmt.m) & ((1u << fmt.e) - 1);
    bool negative = ((code >> (fmt.m + fmt.e)) & 1u) != 0;

    int bias = fmt.fp_bias();
    double a;
    if (exp_field == 0) {
        a = man * std::ldexp(1.0, (1 - bias) - fmt.m);
    } else {
        a = (1.0 + man * std::ldexp(1.0, -fmt.m)) *
            std::ldexp(1.0, static_cast<int>(exp_field) - bias);
    }
    return negative ? -a : a;
}

} // namespace core
} // namespace mx
