#pragma once

/**
 * @file
 * Software-managed FP32 scale factors with delayed (history-based) amax.
 *
 * This reproduces the "delayed scaling" recipe of NVIDIA's Transformer
 * Engine [40], which the paper uses as the first-level scale for the INT,
 * VSQ, and scalar floating-point formats in Figure 7: the scale applied
 * to the current tensor is derived from the maximum absolute value
 * observed over a window of *past* tensors, so dynamic distribution shift
 * shows up as clipping or wasted range — exactly the friction MX removes
 * by setting scales in hardware.
 */

#include <cstddef>
#include <deque>

namespace mx {
namespace core {

/** Amax-history scale factor generator. */
class DelayedScaler
{
  public:
    /**
     * @param window  number of past amax observations retained (the
     *                Transformer Engine default history length is 16)
     * @param margin  extra headroom factor applied to the amax (1 = none)
     */
    explicit DelayedScaler(std::size_t window = 16, double margin = 1.0);

    /**
     * Scale factor for the current tensor: max(history) * margin /
     * max_representable.  On the very first call (empty history) the
     * current amax is used just-in-time, mirroring TE initialization.
     * Records @p current_amax into the history afterwards.
     *
     * @param current_amax       amax of the tensor about to be quantized
     * @param max_representable  largest encodable magnitude of the format
     * @return a strictly positive scale s such that x/s targets the format
     */
    double update(double current_amax, double max_representable);

    /** Peek at the scale that would be used, without recording. */
    double peek(double current_amax, double max_representable) const;

    /** Clear history (e.g. when switching tensors). */
    void reset();

    /** Number of recorded observations (capped at the window size). */
    std::size_t history_size() const { return history_.size(); }

  private:
    std::size_t window_;
    double margin_;
    std::deque<double> history_;
};

} // namespace core
} // namespace mx
