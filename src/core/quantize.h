#pragma once

/**
 * @file
 * The BDR two-level quantization function (paper Figure 5):
 *
 *   X = U_i chi_i,   chi_Qi = RoundToInt(chi_i / (s * ss_i), m),
 *   chi_Ri = s * ss_i * chi_Qi
 *
 * This header provides both the stateless hardware-scaled primitives
 * (shared-exponent blocks for BFP and MX) and a stateful Quantizer
 * front-end that also covers the software-scaled formats (scaled INT,
 * scalar FP with delayed scaling, VSQ) so that any BdrFormat can be
 * fake-quantized through one interface.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/bdr_format.h"
#include "core/delayed_scaler.h"
#include "core/kernels/quant_kernel.h"
#include "core/rounding.h"
#include "stats/rng.h"

namespace mx {
namespace core {

/**
 * Exponent of the largest magnitude in @p x: floor(log2(max|x_i|)).
 * Returns kAllZeroExponent when every element is zero.
 */
int max_abs_exponent(std::span<const float> x);

/** Sentinel returned by max_abs_exponent for all-zero input. */
constexpr int kAllZeroExponent = -100000;

// Pow2BlockEncoding (the integer encoding of one k1-block) now lives in
// core/kernels/quant_kernel.h with the plan/execute kernel layer; it is
// re-exported here unchanged for the existing call sites.

/**
 * Quantize one block (n <= k1 elements) of a SignMagnitude pow2-scaled
 * format (BFP when d2 == 0, MX when d2 > 0), through the runtime-
 * dispatched kernel (kernels/dispatch.h).
 *
 * The shared exponent is the max element exponent in the block; each
 * sub-block of k2 elements gets a shift tau = min(E - E_sub, 2^d2 - 1);
 * mantissas are rounded to m bits and saturate at 2^m - 1 (hardware
 * behaviour; see MSFP [24]).
 *
 * @param fmt  SignMagnitude format with s_kind == Pow2Hw
 * @param in   the block (size may be smaller than k1 at a tensor tail)
 * @param out  dequantized values, same size as @p in
 * @param rounder rounding policy for the mantissa
 * @param enc  optional: receives the integer encoding
 */
void quantize_pow2_block(const BdrFormat& fmt, std::span<const float> in,
                         std::span<float> out, const Rounder& rounder,
                         Pow2BlockEncoding* enc = nullptr);

/**
 * Quantize a whole span by splitting it into k1-blocks (tail block may be
 * short); one plan + one kernel dispatch for the whole span.
 */
void quantize_pow2(const BdrFormat& fmt, std::span<const float> in,
                   std::span<float> out, const Rounder& rounder);

/** How software-managed FP32 scale factors are derived. */
enum class ScalingPolicy
{
    /**
     * Transformer-Engine-style delayed scaling [40]: the scale applied to
     * the current tensor comes from an amax history of past tensors.
     * This is what Figure 7 uses for INT/FP/VSQ during training.
     */
    Delayed,
    /**
     * Just-in-time scaling from the current tensor's own amax — the
     * offline/static approach typical for inference (Fig 7 caption).
     */
    JustInTime,
};

/**
 * Stateful fake-quantizer for any BdrFormat.
 *
 * "Fake" quantization maps FP32 input to the exact value grid of the
 * target format and back, which is numerically identical to what native
 * hardware would store/compute (the paper's own evaluations use the same
 * emulation strategy, Section VI).  Software-scaled formats carry a
 * DelayedScaler per Quantizer instance, so one Quantizer should be bound
 * to one tensor role (weights / activations / gradients of one layer),
 * exactly as Transformer Engine binds scaling state per tensor.
 */
class Quantizer
{
  public:
    /**
     * @param fmt    any validated BdrFormat
     * @param mode   mantissa rounding mode
     * @param policy scale-factor derivation for SW-scaled formats
     * @param seed   seed for stochastic rounding (unused otherwise)
     */
    explicit Quantizer(BdrFormat fmt,
                       RoundingMode mode = RoundingMode::NearestEven,
                       ScalingPolicy policy = ScalingPolicy::Delayed,
                       std::uint64_t seed = 0x5eed);

    /** Fake-quantize @p in into @p out (sizes must match). */
    void operator()(std::span<const float> in, std::span<float> out);

    /** Convenience: returns a fake-quantized copy. */
    std::vector<float> quantize(const std::vector<float>& in);

    /** In-place fake quantization. */
    void quantize_inplace(std::span<float> data);

    /** The format this quantizer targets. */
    const BdrFormat& format() const { return fmt_; }

    /** Drop all delayed-scaling history. */
    void reset_state() { scaler_.reset(); }

  private:
    void quantize_int(std::span<const float> in, std::span<float> out,
                      double scale);
    void quantize_vsq(std::span<const float> in, std::span<float> out,
                      double scale);
    void quantize_fp(std::span<const float> in, std::span<float> out,
                     double scale);

    BdrFormat fmt_;
    stats::Rng rng_;
    Rounder rounder_;
    ScalingPolicy policy_;
    DelayedScaler scaler_;
    /** Cached kernel plan (engaged only for Pow2Hw formats). */
    std::optional<kernels::QuantPlan> plan_;
};

/**
 * One-shot fake quantization with just-in-time scaling — the stateless
 * path used for direct-cast inference and most tests.
 */
std::vector<float> fake_quantize(const BdrFormat& fmt,
                                 const std::vector<float>& in,
                                 RoundingMode mode =
                                     RoundingMode::NearestEven);

} // namespace core
} // namespace mx
