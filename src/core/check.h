#pragma once

/**
 * @file
 * Error handling for mxlib.
 *
 * Following the gem5 fatal()/panic() split: MX_CHECK_ARG reports misuse of
 * the public API (caller's fault, throws mx::ArgumentError) while MX_CHECK
 * reports broken library invariants (our fault, throws mx::InternalError).
 * Both are always-on; quantization kernels are cheap enough that the
 * checks never dominate.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace mx {

/** Base class for all mxlib exceptions. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/** The caller passed invalid arguments or used an object incorrectly. */
class ArgumentError : public Error
{
  public:
    explicit ArgumentError(const std::string& what) : Error(what) {}
};

/** An internal invariant was violated (a bug in mxlib itself). */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void
throw_check_failed(const char* kind, const char* cond, const char* file,
                   int line, const std::string& msg)
{
    std::ostringstream os;
    os << kind << " failed: (" << cond << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " — " << msg;
    if (kind[0] == 'M') // MX_CHECK_ARG
        throw ArgumentError(os.str());
    throw InternalError(os.str());
}

} // namespace detail
} // namespace mx

/** Verify a public-API precondition; throws mx::ArgumentError. */
#define MX_CHECK_ARG(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream mx_os_;                                       \
            mx_os_ << msg;                                                   \
            ::mx::detail::throw_check_failed("MX_CHECK_ARG", #cond,          \
                                             __FILE__, __LINE__,             \
                                             mx_os_.str());                  \
        }                                                                    \
    } while (0)

/** Verify an internal invariant; throws mx::InternalError. */
#define MX_CHECK(cond, msg)                                                  \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream mx_os_;                                       \
            mx_os_ << msg;                                                   \
            ::mx::detail::throw_check_failed("IX_CHECK", #cond, __FILE__,    \
                                             __LINE__, mx_os_.str());        \
        }                                                                    \
    } while (0)
