#pragma once

/**
 * @file
 * Packed tensor codecs for every BDR family.
 *
 * These produce the exact bit streams a native implementation would store
 * in memory, and are what the memory model's packing numbers are derived
 * from.  Encoding goes through the same numerical path as
 * core::fake_quantize, so `decode(encode(x)) == fake_quantize(x)`
 * bit-for-bit — a property the test suite asserts for every format.
 *
 * Stream layouts (all fields LSB-first):
 *  - MX / BFP block (n <= k1 elements):
 *      [d1-bit biased shared exponent]
 *      [ceil(n/k2) x d2-bit sub-shifts]
 *      [n x (sign bit + m-bit mantissa)]
 *  - INT span: [32-bit FP32 scale per sw-chunk][chunk x (m+1)-bit codes]
 *  - VSQ span: [32-bit FP32 global scale]
 *              per 16-vector: [d2-bit integer scale][16 x (m+1)-bit codes]
 *  - scalar FP span: [32-bit FP32 tensor scale][n x (1+e+m)-bit codes]
 */

#include <cstdint>
#include <span>
#include <vector>

#include "core/bdr_format.h"
#include "core/quantize.h"
#include "core/rounding.h"

namespace mx {
namespace formats {

/** A packed tensor: byte stream + element count + format. */
struct PackedTensor
{
    core::BdrFormat format;
    std::size_t num_elements = 0;
    std::vector<std::uint8_t> bytes;

    /** Exact payload size in bits (excludes final byte padding). */
    std::size_t bit_size = 0;

    /** Storage bits per element for this concrete tensor. */
    double
    bits_per_element() const
    {
        return num_elements == 0
            ? 0.0
            : static_cast<double>(bit_size) / num_elements;
    }
};

/**
 * Encode @p values into the packed representation of @p fmt.
 *
 * Software-scaled formats (INT/VSQ/FP) use just-in-time scaling here —
 * packed storage is an inference-side concern and the scale travels with
 * the data.
 */
PackedTensor pack(const core::BdrFormat& fmt, std::span<const float> values,
                  core::RoundingMode rounding =
                      core::RoundingMode::NearestEven);

/** Decode a packed tensor back to float values. */
std::vector<float> unpack(const PackedTensor& packed);

/**
 * Bits needed to store @p n elements of @p fmt, from the codec's own
 * field widths (the memory model uses this for tile packing).
 */
std::size_t packed_bits(const core::BdrFormat& fmt, std::size_t n);

} // namespace formats
} // namespace mx
