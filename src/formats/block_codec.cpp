#include "formats/block_codec.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"
#include "core/kernels/dispatch.h"
#include "core/scalar_fp.h"
#include "formats/packed.h"

namespace mx {
namespace formats {

namespace {

using core::BdrFormat;
using core::ElementKind;
using core::Pow2BlockEncoding;
using core::Rounder;
using core::ScaleKind;

std::uint32_t
float_bits(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

float
bits_float(std::uint32_t u)
{
    return std::bit_cast<float>(u);
}

void
pack_pow2(const BdrFormat& fmt, std::span<const float> values,
          const Rounder& rounder, BitWriter& w)
{
    // Fused quantize+pack: one kernel dispatch for the whole span, no
    // per-block heap encodings (see kernels/quant_kernel.h).
    const core::kernels::QuantPlan plan = core::kernels::make_quant_plan(fmt);
    core::kernels::active_kernel().quantize_pack(plan, values, rounder, w);
}

void
unpack_pow2(const BdrFormat& fmt, std::size_t n, BitReader& r,
            std::vector<float>& out)
{
    const core::kernels::QuantPlan plan = core::kernels::make_quant_plan(fmt);
    const core::kernels::QuantKernel& kernel = core::kernels::active_kernel();
    const std::size_t k1 = static_cast<std::size_t>(fmt.k1);
    const int exp_bias = plan.e_max;
    out.resize(n);
    Pow2BlockEncoding enc; // reused across blocks (assign keeps capacity)
    for (std::size_t off = 0; off < n; off += k1) {
        const std::size_t len = std::min(k1, n - off);
        enc.shared_exp = static_cast<int>(r.read(fmt.d1)) - exp_bias;
        const std::size_t n_sub = plan.num_sub_blocks(len);
        enc.sub_shift.assign(n_sub, 0);
        for (std::size_t s = 0; s < n_sub; ++s)
            enc.sub_shift[s] = fmt.d2 > 0
                ? static_cast<std::uint8_t>(r.read(fmt.d2))
                : 0;
        enc.mantissa.assign(len, 0);
        for (std::size_t i = 0; i < len; ++i) {
            const std::uint64_t code = r.read(1 + fmt.m);
            const bool neg = (code & 1) != 0;
            const std::int32_t mag = static_cast<std::int32_t>(code >> 1);
            enc.mantissa[i] = neg ? -mag : mag;
        }
        kernel.dequantize_block(plan, enc,
                                std::span<float>(out.data() + off, len));
    }
}

void
pack_int(const BdrFormat& fmt, std::span<const float> values,
         const Rounder& rounder, BitWriter& w)
{
    const double mant_max = static_cast<double>((1 << fmt.m) - 1);
    float amax = 0;
    for (float v : values)
        amax = std::max(amax, std::fabs(v));
    float scale = amax > 0 ? static_cast<float>(amax / mant_max) : 1.0f;
    w.write(float_bits(scale), 32);
    for (float v : values) {
        double q = std::clamp(rounder.round(v / scale), -mant_max, mant_max);
        std::int64_t code = static_cast<std::int64_t>(q);
        // Two's complement in (m+1) bits.
        std::uint64_t enc = static_cast<std::uint64_t>(code) &
                            ((1ull << (fmt.m + 1)) - 1);
        w.write(enc, fmt.m + 1);
    }
}

void
unpack_int(const BdrFormat& fmt, std::size_t n, BitReader& r,
           std::vector<float>& out)
{
    out.resize(n);
    float scale = bits_float(static_cast<std::uint32_t>(r.read(32)));
    const int bits = fmt.m + 1;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t enc = r.read(bits);
        // Sign-extend.
        std::int64_t code = static_cast<std::int64_t>(enc << (64 - bits)) >>
                            (64 - bits);
        out[i] = static_cast<float>(code) * scale;
    }
}

void
pack_vsq(const BdrFormat& fmt, std::span<const float> values,
         const Rounder& rounder, BitWriter& w)
{
    const double mant_max = static_cast<double>((1 << fmt.m) - 1);
    const double ss_max = static_cast<double>((1 << fmt.d2) - 1);
    const std::size_t k2 = static_cast<std::size_t>(fmt.k2);

    float amax = 0;
    for (float v : values)
        amax = std::max(amax, std::fabs(v));
    float scale = amax > 0
        ? static_cast<float>(amax / mant_max / ss_max)
        : 1.0f;
    w.write(float_bits(scale), 32);

    for (std::size_t lo = 0; lo < values.size(); lo += k2) {
        std::size_t hi = std::min(values.size(), lo + k2);
        double sub_amax = 0;
        for (std::size_t i = lo; i < hi; ++i)
            sub_amax = std::max<double>(sub_amax, std::fabs(values[i]));
        double sv = sub_amax / mant_max;
        double ssi = std::clamp(std::nearbyint(sv / scale), 1.0, ss_max);
        w.write(static_cast<std::uint64_t>(ssi), fmt.d2);
        double eff = ssi * scale;
        for (std::size_t i = lo; i < hi; ++i) {
            double q = std::clamp(rounder.round(values[i] / eff), -mant_max,
                                  mant_max);
            std::uint64_t enc = static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(q)) &
                                ((1ull << (fmt.m + 1)) - 1);
            w.write(enc, fmt.m + 1);
        }
    }
}

void
unpack_vsq(const BdrFormat& fmt, std::size_t n, BitReader& r,
           std::vector<float>& out)
{
    out.resize(n);
    const std::size_t k2 = static_cast<std::size_t>(fmt.k2);
    const int bits = fmt.m + 1;
    float scale = bits_float(static_cast<std::uint32_t>(r.read(32)));
    for (std::size_t lo = 0; lo < n; lo += k2) {
        std::size_t hi = std::min(n, lo + k2);
        double ssi = static_cast<double>(r.read(fmt.d2));
        double eff = ssi * scale;
        for (std::size_t i = lo; i < hi; ++i) {
            std::uint64_t enc = r.read(bits);
            std::int64_t code =
                static_cast<std::int64_t>(enc << (64 - bits)) >> (64 - bits);
            out[i] = static_cast<float>(code * eff);
        }
    }
}

void
pack_fp(const BdrFormat& fmt, std::span<const float> values,
        const Rounder& rounder, BitWriter& w)
{
    float amax = 0;
    for (float v : values)
        amax = std::max(amax, std::fabs(v));
    float scale = amax > 0
        ? static_cast<float>(amax / fmt.fp_max_finite())
        : 1.0f;
    w.write(float_bits(scale), 32);
    for (float v : values)
        w.write(core::fp_encode(fmt, v / scale, rounder),
                core::fp_code_bits(fmt));
}

void
unpack_fp(const BdrFormat& fmt, std::size_t n, BitReader& r,
          std::vector<float>& out)
{
    out.resize(n);
    float scale = bits_float(static_cast<std::uint32_t>(r.read(32)));
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t code =
            static_cast<std::uint32_t>(r.read(core::fp_code_bits(fmt)));
        out[i] = static_cast<float>(core::fp_decode(fmt, code) * scale);
    }
}

} // namespace

PackedTensor
pack(const BdrFormat& fmt, std::span<const float> values,
     core::RoundingMode rounding)
{
    fmt.validate();
    MX_CHECK_ARG(rounding != core::RoundingMode::Stochastic,
                 "pack: stochastic rounding is a training-side policy; "
                 "packed storage uses deterministic rounding");
    Rounder rounder(rounding);
    BitWriter w;
    switch (fmt.elem) {
      case ElementKind::SignMagnitude:
        pack_pow2(fmt, values, rounder, w);
        break;
      case ElementKind::TwosComplement:
        if (fmt.ss_kind == ScaleKind::IntHw)
            pack_vsq(fmt, values, rounder, w);
        else
            pack_int(fmt, values, rounder, w);
        break;
      case ElementKind::FloatingPoint:
        pack_fp(fmt, values, rounder, w);
        break;
    }
    PackedTensor p;
    p.format = fmt;
    p.num_elements = values.size();
    p.bit_size = w.bit_count();
    p.bytes = w.take();
    return p;
}

std::vector<float>
unpack(const PackedTensor& packed)
{
    BitReader r(packed.bytes);
    std::vector<float> out;
    const BdrFormat& fmt = packed.format;
    switch (fmt.elem) {
      case ElementKind::SignMagnitude:
        unpack_pow2(fmt, packed.num_elements, r, out);
        break;
      case ElementKind::TwosComplement:
        if (fmt.ss_kind == ScaleKind::IntHw)
            unpack_vsq(fmt, packed.num_elements, r, out);
        else
            unpack_int(fmt, packed.num_elements, r, out);
        break;
      case ElementKind::FloatingPoint:
        unpack_fp(fmt, packed.num_elements, r, out);
        break;
    }
    return out;
}

std::size_t
packed_bits(const BdrFormat& fmt, std::size_t n)
{
    switch (fmt.elem) {
      case ElementKind::SignMagnitude: {
        std::size_t k1 = static_cast<std::size_t>(fmt.k1);
        std::size_t k2 = static_cast<std::size_t>(fmt.k2);
        std::size_t bits = 0;
        for (std::size_t off = 0; off < n; off += k1) {
            std::size_t len = std::min(k1, n - off);
            bits += fmt.d1 + ((len + k2 - 1) / k2) * fmt.d2 +
                    len * (1 + fmt.m);
        }
        return bits;
      }
      case ElementKind::TwosComplement:
        if (fmt.ss_kind == ScaleKind::IntHw) {
            std::size_t k2 = static_cast<std::size_t>(fmt.k2);
            return 32 + ((n + k2 - 1) / k2) * fmt.d2 + n * (fmt.m + 1);
        }
        return 32 + n * (fmt.m + 1);
      case ElementKind::FloatingPoint:
        return 32 + n * static_cast<std::size_t>(core::fp_code_bits(fmt));
    }
    return 0;
}

} // namespace formats
} // namespace mx
