#pragma once

/**
 * @file
 * Bit-granular serialization used by the packed format codecs.
 *
 * BDR formats are not byte-aligned (an MX9 element is 8 bits but its
 * block carries 8 + 8x1 extra scale bits; an MX4 element is 3 bits), so
 * the codecs write fields LSB-first into a byte stream.  The memory
 * model's packing-efficiency numbers (Fig 7 x-axis) come from the exact
 * same field widths.
 */

#include <cstdint>
#include <vector>

#include "core/check.h"

namespace mx {
namespace formats {

/** Appends bit fields (LSB-first within the stream) to a byte vector. */
class BitWriter
{
  public:
    /** Append the low @p bits of @p value (bits in [0, 64]). */
    void
    write(std::uint64_t value, int bits)
    {
        MX_CHECK_ARG(bits >= 0 && bits <= 64, "BitWriter: bad field width");
        for (int i = 0; i < bits; ++i) {
            if (bit_pos_ == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_.back() |= static_cast<std::uint8_t>(1u << bit_pos_);
            bit_pos_ = (bit_pos_ + 1) & 7;
        }
    }

    /** Total number of bits written. */
    std::size_t
    bit_count() const
    {
        if (bytes_.empty())
            return 0;
        return bytes_.size() * 8 - (bit_pos_ == 0 ? 0 : 8 - bit_pos_);
    }

    /** The accumulated byte stream (final partial byte zero-padded). */
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

    /** Move the stream out. */
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
    int bit_pos_ = 0;
};

/** Reads bit fields written by BitWriter, in the same order. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t>& bytes)
        : bytes_(bytes)
    {
    }

    /** Read the next @p bits as an unsigned value. */
    std::uint64_t
    read(int bits)
    {
        MX_CHECK_ARG(bits >= 0 && bits <= 64, "BitReader: bad field width");
        std::uint64_t v = 0;
        for (int i = 0; i < bits; ++i) {
            std::size_t byte = pos_ >> 3;
            MX_CHECK_ARG(byte < bytes_.size(), "BitReader: out of data");
            if ((bytes_[byte] >> (pos_ & 7)) & 1)
                v |= (1ull << i);
            ++pos_;
        }
        return v;
    }

    /** Bits consumed so far. */
    std::size_t bit_position() const { return pos_; }

  private:
    const std::vector<std::uint8_t>& bytes_;
    std::size_t pos_ = 0;
};

} // namespace formats
} // namespace mx
