#pragma once

/**
 * @file
 * Bit-granular serialization used by the packed format codecs.
 *
 * The implementation moved to core/bitstream.h so the kernel layer
 * (src/core/kernels/) can fuse quantization and packing without a
 * core -> formats dependency inversion; this header keeps the historical
 * mx::formats spelling for codec-side call sites.
 */

#include "core/bitstream.h"

namespace mx {
namespace formats {

using core::BitReader;
using core::BitWriter;

} // namespace formats
} // namespace mx
