#pragma once

/**
 * @file
 * Data distributions used by the paper's statistical QSNR methodology.
 *
 * Figure 7 of the paper evaluates every format on vectors drawn from a
 * "normal Gaussian distribution with a variable variance",
 * X ~ N(0, |N(0,1)|): each vector first draws a standard-deviation-like
 * magnitude sigma = |N(0,1)| and then fills its elements from N(0, sigma^2).
 * This models the range of variances seen across gradient, error, weight
 * and activation tensors in one training cycle.  Additional distributions
 * (fixed-sigma Gaussian, Laplace, uniform, lognormal, outlier-injected)
 * exercise Theorem 1's "arbitrary distribution" claim in tests/benches.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace mx {
namespace stats {

/** Family tags for the distributions supported by make_vector(). */
enum class Distribution
{
    /** Paper Fig 7: per-vector sigma = |N(0,1)|, elements ~ N(0, sigma^2). */
    GaussianVariableVariance,
    /** Elements ~ N(0, 1). */
    GaussianUnit,
    /** Elements ~ N(0, sigma^2) with sigma fixed by `param`. */
    GaussianFixed,
    /** Laplace(0, b) with b fixed by `param` (heavier tails than normal). */
    Laplace,
    /** Uniform in [-param, param]. */
    Uniform,
    /** |x| ~ LogNormal(0, param) with random sign (strongly skewed). */
    LogNormal,
    /**
     * Gaussian N(0,1) with a fraction `param` of elements multiplied by
     * 64x: the "numerical blast radius" outlier stress from Section I.
     */
    GaussianWithOutliers,
};

/** Human-readable name for a distribution tag. */
std::string to_string(Distribution d);

/** All distribution tags, for parameterized test sweeps. */
const std::vector<Distribution>& all_distributions();

/**
 * Fill @p out with @p n samples of distribution @p d.
 *
 * @param d     distribution family
 * @param param family parameter (see enum docs); ignored where unused
 * @param n     number of elements
 * @param rng   random stream
 * @param out   resized to n and filled
 */
void make_vector(Distribution d, double param, std::size_t n, Rng& rng,
                 std::vector<float>& out);

} // namespace stats
} // namespace mx
