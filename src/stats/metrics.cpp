#include "stats/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace mx {
namespace stats {

double
qsnr_db(const std::vector<float>& original, const std::vector<float>& quantized)
{
    QsnrAccumulator acc;
    acc.add(original, quantized);
    return acc.qsnr_db();
}

void
QsnrAccumulator::add(const std::vector<float>& original,
                     const std::vector<float>& quantized)
{
    if (original.size() != quantized.size())
        throw std::invalid_argument("QsnrAccumulator: size mismatch");
    for (std::size_t i = 0; i < original.size(); ++i)
        add_scalar(original[i], quantized[i]);
    // add_scalar bumps count_ per element; we want per vector, so adjust.
    count_ -= original.size();
    ++count_;
}

void
QsnrAccumulator::add_scalar(double original, double quantized)
{
    double e = quantized - original;
    noise_power_ += e * e;
    signal_power_ += original * original;
    ++count_;
}

double
QsnrAccumulator::qsnr_db() const
{
    if (noise_power_ == 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal_power_ == 0.0)
        return -std::numeric_limits<double>::infinity();
    return -10.0 * std::log10(noise_power_ / signal_power_);
}

void
QsnrAccumulator::reset()
{
    noise_power_ = 0.0;
    signal_power_ = 0.0;
    count_ = 0;
}

double
pearson(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument("pearson: size mismatch or empty");
    double ma = mean(a), mb = mean(b);
    double num = 0, da = 0, db = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma) * (a[i] - ma);
        db += (b[i] - mb) * (b[i] - mb);
    }
    if (da == 0 || db == 0)
        return 0.0;
    return num / std::sqrt(da * db);
}

double
auc(const std::vector<int>& labels, const std::vector<double>& scores)
{
    if (labels.size() != scores.size() || labels.empty())
        throw std::invalid_argument("auc: size mismatch or empty");
    std::vector<std::size_t> idx(labels.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::size_t i, std::size_t j) {
        return scores[i] < scores[j];
    });

    // Ranks with tie averaging.
    std::vector<double> rank(labels.size());
    std::size_t i = 0;
    while (i < idx.size()) {
        std::size_t j = i;
        while (j + 1 < idx.size() && scores[idx[j + 1]] == scores[idx[i]])
            ++j;
        double avg_rank = 0.5 * (static_cast<double>(i) +
                                 static_cast<double>(j)) + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            rank[idx[k]] = avg_rank;
        i = j + 1;
    }

    double pos = 0, rank_sum = 0;
    for (std::size_t k = 0; k < labels.size(); ++k) {
        if (labels[k] == 1) {
            pos += 1;
            rank_sum += rank[k];
        }
    }
    double neg = static_cast<double>(labels.size()) - pos;
    if (pos == 0 || neg == 0)
        return 0.5;
    return (rank_sum - pos * (pos + 1) / 2.0) / (pos * neg);
}

namespace {

double
clamped_log(double p)
{
    constexpr double kEps = 1e-12;
    return std::log(std::min(1.0 - kEps, std::max(kEps, p)));
}

} // namespace

double
binary_cross_entropy(const std::vector<int>& labels,
                     const std::vector<double>& probs)
{
    if (labels.size() != probs.size() || labels.empty())
        throw std::invalid_argument("bce: size mismatch or empty");
    double sum = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        sum -= labels[i] == 1 ? clamped_log(probs[i])
                              : clamped_log(1.0 - probs[i]);
    }
    return sum / static_cast<double>(labels.size());
}

double
normalized_entropy(const std::vector<int>& labels,
                   const std::vector<double>& probs)
{
    double ce = binary_cross_entropy(labels, probs);
    double p = 0;
    for (int l : labels)
        p += l == 1 ? 1.0 : 0.0;
    p /= static_cast<double>(labels.size());
    double base = -(p * clamped_log(p) + (1.0 - p) * clamped_log(1.0 - p));
    if (base == 0.0)
        return ce == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    return ce / base;
}

double
top1_accuracy(const std::vector<int>& labels, const std::vector<float>& logits,
              std::size_t num_classes)
{
    if (num_classes == 0 || labels.empty() ||
        logits.size() != labels.size() * num_classes) {
        throw std::invalid_argument("top1_accuracy: shape mismatch");
    }
    std::size_t correct = 0;
    for (std::size_t r = 0; r < labels.size(); ++r) {
        const float* row = logits.data() + r * num_classes;
        std::size_t argmax = 0;
        for (std::size_t c = 1; c < num_classes; ++c) {
            if (row[c] > row[argmax])
                argmax = c;
        }
        if (static_cast<int>(argmax) == labels[r])
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double
perplexity(const std::vector<int>& labels, const std::vector<float>& logits,
           std::size_t num_classes)
{
    if (num_classes == 0 || labels.empty() ||
        logits.size() != labels.size() * num_classes) {
        throw std::invalid_argument("perplexity: shape mismatch");
    }
    double nll = 0;
    for (std::size_t r = 0; r < labels.size(); ++r) {
        const float* row = logits.data() + r * num_classes;
        double mx = row[0];
        for (std::size_t c = 1; c < num_classes; ++c)
            mx = std::max<double>(mx, row[c]);
        double denom = 0;
        for (std::size_t c = 0; c < num_classes; ++c)
            denom += std::exp(row[c] - mx);
        nll -= (row[labels[r]] - mx) - std::log(denom);
    }
    return std::exp(nll / static_cast<double>(labels.size()));
}

double
span_exact_match(const std::vector<std::pair<int, int>>& predicted,
                 const std::vector<std::pair<int, int>>& gold)
{
    if (predicted.size() != gold.size() || predicted.empty())
        throw std::invalid_argument("span_exact_match: size mismatch");
    std::size_t hits = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (predicted[i] == gold[i])
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double
span_f1(const std::vector<std::pair<int, int>>& predicted,
        const std::vector<std::pair<int, int>>& gold)
{
    if (predicted.size() != gold.size() || predicted.empty())
        throw std::invalid_argument("span_f1: size mismatch");
    double total = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        auto [ps, pe] = predicted[i];
        auto [gs, ge] = gold[i];
        int overlap = std::max(0, std::min(pe, ge) - std::max(ps, gs) + 1);
        int plen = std::max(0, pe - ps + 1);
        int glen = std::max(0, ge - gs + 1);
        if (overlap == 0 || plen == 0 || glen == 0)
            continue;
        double prec = static_cast<double>(overlap) / plen;
        double rec = static_cast<double>(overlap) / glen;
        total += 2.0 * prec * rec / (prec + rec);
    }
    return total / static_cast<double>(predicted.size());
}

double
bleu(const std::vector<std::vector<int>>& candidates,
     const std::vector<std::vector<int>>& references, int max_order)
{
    if (candidates.size() != references.size() || candidates.empty())
        throw std::invalid_argument("bleu: size mismatch or empty");

    std::vector<double> matches(max_order, 0.0), totals(max_order, 0.0);
    double cand_len = 0, ref_len = 0;

    auto count_ngrams = [](const std::vector<int>& seq, int order) {
        std::map<std::vector<int>, int> counts;
        if (static_cast<int>(seq.size()) >= order) {
            for (std::size_t i = 0; i + order <= seq.size(); ++i) {
                std::vector<int> g(seq.begin() + i, seq.begin() + i + order);
                ++counts[g];
            }
        }
        return counts;
    };

    for (std::size_t s = 0; s < candidates.size(); ++s) {
        cand_len += static_cast<double>(candidates[s].size());
        ref_len += static_cast<double>(references[s].size());
        for (int order = 1; order <= max_order; ++order) {
            auto cand = count_ngrams(candidates[s], order);
            auto ref = count_ngrams(references[s], order);
            for (auto& [g, c] : cand) {
                auto it = ref.find(g);
                if (it != ref.end())
                    matches[order - 1] += std::min(c, it->second);
                totals[order - 1] += c;
            }
        }
    }

    double log_precision = 0;
    for (int order = 0; order < max_order; ++order) {
        if (totals[order] == 0)
            return 0.0;
        // +1 smoothing keeps short-corpus BLEU finite (standard smoothing-1).
        double p = (matches[order] + (order > 0 ? 1.0 : 0.0)) /
                   (totals[order] + (order > 0 ? 1.0 : 0.0));
        if (p == 0)
            return 0.0;
        log_precision += std::log(p) / max_order;
    }
    double bp = cand_len >= ref_len
        ? 1.0
        : std::exp(1.0 - ref_len / std::max(1.0, cand_len));
    return 100.0 * bp * std::exp(log_precision);
}

double
mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

double
stddev(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double m = mean(v);
    double acc = 0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size()));
}

} // namespace stats
} // namespace mx
