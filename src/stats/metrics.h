#pragma once

/**
 * @file
 * Evaluation metrics used across the paper's benchmark suite.
 *
 * The paper reports: QSNR (dB) for the statistical study (Eq. 3), Pearson
 * correlation (to validate QSNR against end-to-end loss, Sec. IV-A), top-1
 * accuracy and perplexity for discriminative/LM benchmarks (Table III),
 * Exact-Match / F1 for BERT QA (Table V), AUC and normalized cross-entropy
 * (NE) for recommendation (Tables III/VI), and BLEU for translation.  All
 * of those are implemented here, on plain float/double containers so every
 * layer of the library can use them.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mx {
namespace stats {

/**
 * Quantization signal-to-noise ratio in decibels (paper Eq. 3) for a
 * single vector pair: -10*log10(||q - x||^2 / ||x||^2).
 *
 * Returns +inf when the reconstruction is exact and -inf when the signal
 * is all-zero but the noise is not.
 */
double qsnr_db(const std::vector<float>& original,
               const std::vector<float>& quantized);

/**
 * Accumulator matching the paper's definition of QSNR over an *ensemble*:
 * expectations of noise power and signal power are summed over many
 * vectors before the ratio is taken (Eq. 3 takes E[.] of both norms).
 */
class QsnrAccumulator
{
  public:
    /** Add one (original, quantized) pair to the ensemble. */
    void add(const std::vector<float>& original,
             const std::vector<float>& quantized);

    /** Add one scalar pair. */
    void add_scalar(double original, double quantized);

    /** Ensemble QSNR in dB. */
    double qsnr_db() const;

    /** Number of vectors accumulated. */
    std::size_t count() const { return count_; }

    /** Reset to empty. */
    void reset();

  private:
    double noise_power_ = 0.0;
    double signal_power_ = 0.0;
    std::size_t count_ = 0;
};

/** Pearson correlation coefficient of two equal-length series. */
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/**
 * Area under the ROC curve for binary labels (0/1) and scores.
 * Implemented by rank statistics; ties get the average rank.
 */
double auc(const std::vector<int>& labels, const std::vector<double>& scores);

/** Binary cross-entropy (natural log) of probabilities vs 0/1 labels. */
double binary_cross_entropy(const std::vector<int>& labels,
                            const std::vector<double>& probs);

/**
 * Normalized cross-entropy as used for recommendation models (Table VI):
 * the model's binary cross-entropy divided by the entropy of the base
 * positive rate (the best constant predictor).  Lower is better; an NE of
 * 1.0 means no better than predicting the CTR prior.
 */
double normalized_entropy(const std::vector<int>& labels,
                          const std::vector<double>& probs);

/** Fraction of rows whose argmax prediction equals the label. */
double top1_accuracy(const std::vector<int>& labels,
                     const std::vector<float>& logits, std::size_t num_classes);

/** exp(mean negative log-likelihood); logits are row-major [n, c]. */
double perplexity(const std::vector<int>& labels,
                  const std::vector<float>& logits, std::size_t num_classes);

/** Exact-match score for predicted vs gold (start,end) spans, in [0,1]. */
double span_exact_match(const std::vector<std::pair<int, int>>& predicted,
                        const std::vector<std::pair<int, int>>& gold);

/** Token-overlap F1 for predicted vs gold spans (SQuAD-style), in [0,1]. */
double span_f1(const std::vector<std::pair<int, int>>& predicted,
               const std::vector<std::pair<int, int>>& gold);

/**
 * Corpus BLEU with n-gram order up to 4 and brevity penalty, over integer
 * token sequences.  Used by the translation rows of Table III.
 */
double bleu(const std::vector<std::vector<int>>& candidates,
            const std::vector<std::vector<int>>& references, int max_order = 4);

/** Mean of a series; 0 for empty input. */
double mean(const std::vector<double>& v);

/** Population standard deviation of a series. */
double stddev(const std::vector<double>& v);

} // namespace stats
} // namespace mx
