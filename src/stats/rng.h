#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation for mxlib.
 *
 * All stochastic components of the library (synthetic data, weight
 * initialization, stochastic rounding, the QSNR Monte-Carlo harness) draw
 * from this generator so that every experiment in the repository is
 * bit-reproducible from a seed.
 */

#include <cstdint>

namespace mx {
namespace stats {

/**
 * xoshiro256++ pseudo-random generator.
 *
 * Chosen over std::mt19937_64 because its output sequence is specified
 * (libstdc++'s normal_distribution is not), it is fast, and it supports
 * cheap splitting via long-jumps so that parallel workloads can derive
 * independent streams from one seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Next 32-bit value. */
    std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t uniform_u64(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p) { return uniform() < p; }

    /**
     * Derive an independent child stream.
     *
     * Equivalent to a 2^128-step jump of this generator's sequence mixed
     * with @p stream_id, so child streams never overlap in practice.
     */
    Rng split(std::uint64_t stream_id);

  private:
    std::uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace stats
} // namespace mx
