#include "stats/rng.h"

#include <cmath>

namespace mx {
namespace stats {

namespace {

/** splitmix64 seed expander (recommended by the xoshiro authors). */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
    // zeros from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniform_u64(std::uint64_t n)
{
    // Lemire-style rejection-free-ish bounded draw; bias is negligible for
    // the n << 2^64 values used in this library, but reject to be exact.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next_u64();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller. u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

Rng
Rng::split(std::uint64_t stream_id)
{
    Rng child(next_u64() ^ (stream_id * 0xd1342543de82ef95ULL + 1));
    return child;
}

} // namespace stats
} // namespace mx
