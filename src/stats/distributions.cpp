#include "stats/distributions.h"

#include <cmath>

namespace mx {
namespace stats {

std::string
to_string(Distribution d)
{
    switch (d) {
      case Distribution::GaussianVariableVariance: return "gaussian-varvar";
      case Distribution::GaussianUnit: return "gaussian-unit";
      case Distribution::GaussianFixed: return "gaussian-fixed";
      case Distribution::Laplace: return "laplace";
      case Distribution::Uniform: return "uniform";
      case Distribution::LogNormal: return "lognormal";
      case Distribution::GaussianWithOutliers: return "gaussian-outliers";
    }
    return "unknown";
}

const std::vector<Distribution>&
all_distributions()
{
    static const std::vector<Distribution> kAll = {
        Distribution::GaussianVariableVariance,
        Distribution::GaussianUnit,
        Distribution::GaussianFixed,
        Distribution::Laplace,
        Distribution::Uniform,
        Distribution::LogNormal,
        Distribution::GaussianWithOutliers,
    };
    return kAll;
}

void
make_vector(Distribution d, double param, std::size_t n, Rng& rng,
            std::vector<float>& out)
{
    out.resize(n);
    switch (d) {
      case Distribution::GaussianVariableVariance: {
        double sigma = std::fabs(rng.normal());
        for (auto& v : out)
            v = static_cast<float>(rng.normal(0.0, sigma));
        break;
      }
      case Distribution::GaussianUnit:
        for (auto& v : out)
            v = static_cast<float>(rng.normal());
        break;
      case Distribution::GaussianFixed:
        for (auto& v : out)
            v = static_cast<float>(rng.normal(0.0, param));
        break;
      case Distribution::Laplace:
        for (auto& v : out) {
            // Inverse-CDF sampling: u in (-1/2, 1/2).
            double u = rng.uniform() - 0.5;
            double b = param > 0 ? param : 1.0;
            double x = -b * std::copysign(std::log1p(-2.0 * std::fabs(u)), u);
            v = static_cast<float>(x);
        }
        break;
      case Distribution::Uniform: {
        double a = param > 0 ? param : 1.0;
        for (auto& v : out)
            v = static_cast<float>(rng.uniform(-a, a));
        break;
      }
      case Distribution::LogNormal: {
        double s = param > 0 ? param : 1.0;
        for (auto& v : out) {
            double mag = std::exp(rng.normal(0.0, s));
            v = static_cast<float>(rng.bernoulli(0.5) ? mag : -mag);
        }
        break;
      }
      case Distribution::GaussianWithOutliers: {
        double frac = (param > 0 && param < 1) ? param : 0.01;
        for (auto& v : out) {
            double x = rng.normal();
            if (rng.bernoulli(frac))
                x *= 64.0;
            v = static_cast<float>(x);
        }
        break;
      }
    }
}

} // namespace stats
} // namespace mx
