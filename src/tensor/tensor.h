#pragma once

/**
 * @file
 * A small dense float32 tensor for the deep-learning substrate.
 *
 * Row-major, value-semantic, CPU-only.  This is deliberately minimal:
 * the experiments in the paper need matmul-centric models at laptop
 * scale, not a general array library.  Shapes are validated eagerly and
 * all indexing is bounds-checked through MX_CHECK_ARG in debug paths.
 */

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/check.h"
#include "stats/rng.h"

namespace mx {
namespace tensor {

/** Dense row-major float tensor. */
class Tensor
{
  public:
    /** Empty 0-d tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape);

    /** Tensor adopting @p data (size must match the shape product). */
    Tensor(std::vector<std::int64_t> shape, std::vector<float> data);

    /** @name Factories @{ */
    static Tensor zeros(std::vector<std::int64_t> shape);
    static Tensor full(std::vector<std::int64_t> shape, float value);
    /** Gaussian init with the given stddev. */
    static Tensor randn(std::vector<std::int64_t> shape, stats::Rng& rng,
                        float stddev = 1.0f);
    /** Uniform init in [-bound, bound]. */
    static Tensor rand_uniform(std::vector<std::int64_t> shape,
                               stats::Rng& rng, float bound);
    /** @} */

    /** Number of elements. */
    std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
    /** Number of dimensions. */
    int ndim() const { return static_cast<int>(shape_.size()); }
    /** Size of dimension @p i (negative indices count from the end). */
    std::int64_t dim(int i) const;
    /** The full shape. */
    const std::vector<std::int64_t>& shape() const { return shape_; }

    /** @name Raw access @{ */
    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::span<float> span() { return {data_.data(), data_.size()}; }
    std::span<const float> span() const { return {data_.data(), data_.size()}; }
    std::vector<float>& vec() { return data_; }
    const std::vector<float>& vec() const { return data_; }
    /** @} */

    /** @name 1/2/3-d element access (bounds-checked) @{ */
    float& at(std::int64_t i);
    float at(std::int64_t i) const;
    float& at(std::int64_t i, std::int64_t j);
    float at(std::int64_t i, std::int64_t j) const;
    float& at(std::int64_t i, std::int64_t j, std::int64_t k);
    float at(std::int64_t i, std::int64_t j, std::int64_t k) const;
    /** @} */

    /** Reinterpret with a new shape of equal element count. */
    Tensor reshape(std::vector<std::int64_t> new_shape) const;

    /** True when shapes match elementwise. */
    bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

    /** Fill with a constant. */
    void fill(float v);

    /** "[2, 3] (6 elements)" style description. */
    std::string shape_string() const;

  private:
    std::vector<std::int64_t> shape_;
    std::vector<float> data_;
};

/** @name Matrix ops (2-d unless stated) @{ */

/** C = A[M,K] * B[K,N]. */
Tensor matmul(const Tensor& a, const Tensor& b);
/** C = A^T * B with A[K,M], B[K,N] -> C[M,N]. */
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/** C = A * B^T with A[M,K], B[N,K] -> C[M,N]. */
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/** Transpose of a 2-d tensor. */
Tensor transpose2d(const Tensor& a);
/** @} */

/** @name Elementwise / reduction helpers @{ */
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
/** y[i,j] = a[i,j] + bias[j]. */
Tensor add_row_bias(const Tensor& a, const Tensor& bias);
/** In-place a += s * b. */
void axpy(Tensor& a, float s, const Tensor& b);
/** Column-sum of a 2-d tensor -> [N]. */
Tensor sum_rows(const Tensor& a);
/** Row-wise softmax of a 2-d tensor. */
Tensor softmax_rows(const Tensor& a);
/** Frobenius norm. */
double frobenius_norm(const Tensor& a);
/** max |a - b| over all elements. */
double max_abs_diff(const Tensor& a, const Tensor& b);
/** @} */

/** @name Convolution lowering (NCHW) @{ */

/** Shape bundle for 2-d convolution lowering. */
struct Conv2dGeometry
{
    std::int64_t batch, in_channels, in_h, in_w;
    std::int64_t out_channels, kernel, stride, pad;
    std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
    std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/**
 * im2col: input [B, C, H, W] -> patches [B * outH * outW, C * k * k],
 * so convolution becomes a matmul with the [outC, C * k * k] filter.
 */
Tensor im2col(const Tensor& input, const Conv2dGeometry& g);

/** col2im: scatter-add the patch gradient back to input layout. */
Tensor col2im(const Tensor& cols, const Conv2dGeometry& g);
/** @} */

} // namespace tensor
} // namespace mx
