#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace mx {
namespace tensor {

namespace {

std::int64_t
shape_numel(const std::vector<std::int64_t>& shape)
{
    std::int64_t n = 1;
    for (std::int64_t d : shape) {
        MX_CHECK_ARG(d >= 0, "Tensor: negative dimension");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f)
{
}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    MX_CHECK_ARG(static_cast<std::int64_t>(data_.size()) ==
                 shape_numel(shape_),
                 "Tensor: data size does not match shape");
}

Tensor
Tensor::zeros(std::vector<std::int64_t> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<std::int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(std::vector<std::int64_t> shape, stats::Rng& rng, float stddev)
{
    Tensor t(std::move(shape));
    for (float& v : t.data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::rand_uniform(std::vector<std::int64_t> shape, stats::Rng& rng,
                     float bound)
{
    Tensor t(std::move(shape));
    for (float& v : t.data_)
        v = static_cast<float>(rng.uniform(-bound, bound));
    return t;
}

std::int64_t
Tensor::dim(int i) const
{
    int n = ndim();
    if (i < 0)
        i += n;
    MX_CHECK_ARG(i >= 0 && i < n, "Tensor::dim: index out of range");
    return shape_[static_cast<std::size_t>(i)];
}

float&
Tensor::at(std::int64_t i)
{
    MX_CHECK_ARG(ndim() == 1 && i >= 0 && i < dim(0), "Tensor::at(i)");
    return data_[static_cast<std::size_t>(i)];
}

float
Tensor::at(std::int64_t i) const
{
    return const_cast<Tensor*>(this)->at(i);
}

float&
Tensor::at(std::int64_t i, std::int64_t j)
{
    MX_CHECK_ARG(ndim() == 2 && i >= 0 && i < dim(0) && j >= 0 && j < dim(1),
                 "Tensor::at(i,j)");
    return data_[static_cast<std::size_t>(i * dim(1) + j)];
}

float
Tensor::at(std::int64_t i, std::int64_t j) const
{
    return const_cast<Tensor*>(this)->at(i, j);
}

float&
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k)
{
    MX_CHECK_ARG(ndim() == 3 && i >= 0 && i < dim(0) && j >= 0 &&
                 j < dim(1) && k >= 0 && k < dim(2),
                 "Tensor::at(i,j,k)");
    return data_[static_cast<std::size_t>((i * dim(1) + j) * dim(2) + k)];
}

float
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const
{
    return const_cast<Tensor*>(this)->at(i, j, k);
}

Tensor
Tensor::reshape(std::vector<std::int64_t> new_shape) const
{
    MX_CHECK_ARG(shape_numel(new_shape) == numel(),
                 "Tensor::reshape: element count mismatch");
    return Tensor(std::move(new_shape), data_);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

std::string
Tensor::shape_string() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape_.size(); ++i)
        os << (i ? ", " : "") << shape_[i];
    os << "] (" << numel() << " elements)";
    return os.str();
}

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    MX_CHECK_ARG(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0),
                 "matmul: shapes " << a.shape_string() << " x "
                                   << b.shape_string());
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // ikj loop order: streams B rows, accumulates into C rows.
    for (std::int64_t i = 0; i < m; ++i) {
        float* crow = pc + i * n;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            float av = pa[i * k + kk];
            if (av == 0.0f)
                continue;
            const float* brow = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmul_tn(const Tensor& a, const Tensor& b)
{
    MX_CHECK_ARG(a.ndim() == 2 && b.ndim() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn: shapes " << a.shape_string() << " x "
                                      << b.shape_string());
    const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = pa + kk * m;
        const float* brow = pb + kk * n;
        for (std::int64_t i = 0; i < m; ++i) {
            float av = arow[i];
            if (av == 0.0f)
                continue;
            float* crow = pc + i * n;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmul_nt(const Tensor& a, const Tensor& b)
{
    MX_CHECK_ARG(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt: shapes " << a.shape_string() << " x "
                                      << b.shape_string());
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        for (std::int64_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            double acc = 0;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<double>(arow[kk]) * brow[kk];
            pc[i * n + j] = static_cast<float>(acc);
        }
    }
    return c;
}

Tensor
transpose2d(const Tensor& a)
{
    MX_CHECK_ARG(a.ndim() == 2, "transpose2d: needs a 2-d tensor");
    const std::int64_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            t.data()[j * m + i] = a.data()[i * n + j];
    return t;
}

namespace {

Tensor
binary_op(const Tensor& a, const Tensor& b, float (*op)(float, float))
{
    MX_CHECK_ARG(a.same_shape(b), "elementwise op: shape mismatch "
                 << a.shape_string() << " vs " << b.shape_string());
    Tensor c(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        c.data()[i] = op(a.data()[i], b.data()[i]);
    return c;
}

} // namespace

Tensor
add(const Tensor& a, const Tensor& b)
{
    return binary_op(a, b, [](float x, float y) { return x + y; });
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    return binary_op(a, b, [](float x, float y) { return x - y; });
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor
scale(const Tensor& a, float s)
{
    Tensor c(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        c.data()[i] = a.data()[i] * s;
    return c;
}

Tensor
add_row_bias(const Tensor& a, const Tensor& bias)
{
    MX_CHECK_ARG(a.ndim() == 2 && bias.ndim() == 1 && bias.dim(0) == a.dim(1),
                 "add_row_bias: shape mismatch");
    Tensor c(a.shape());
    const std::int64_t m = a.dim(0), n = a.dim(1);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            c.data()[i * n + j] = a.data()[i * n + j] + bias.data()[j];
    return c;
}

void
axpy(Tensor& a, float s, const Tensor& b)
{
    MX_CHECK_ARG(a.same_shape(b), "axpy: shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a.data()[i] += s * b.data()[i];
}

Tensor
sum_rows(const Tensor& a)
{
    MX_CHECK_ARG(a.ndim() == 2, "sum_rows: needs a 2-d tensor");
    Tensor s({a.dim(1)});
    for (std::int64_t i = 0; i < a.dim(0); ++i)
        for (std::int64_t j = 0; j < a.dim(1); ++j)
            s.data()[j] += a.data()[i * a.dim(1) + j];
    return s;
}

Tensor
softmax_rows(const Tensor& a)
{
    MX_CHECK_ARG(a.ndim() == 2, "softmax_rows: needs a 2-d tensor");
    Tensor out(a.shape());
    const std::int64_t m = a.dim(0), n = a.dim(1);
    for (std::int64_t i = 0; i < m; ++i) {
        const float* row = a.data() + i * n;
        float* orow = out.data() + i * n;
        float mx = row[0];
        for (std::int64_t j = 1; j < n; ++j)
            mx = std::max(mx, row[j]);
        double denom = 0;
        for (std::int64_t j = 0; j < n; ++j) {
            orow[j] = std::exp(row[j] - mx);
            denom += orow[j];
        }
        float inv = static_cast<float>(1.0 / denom);
        for (std::int64_t j = 0; j < n; ++j)
            orow[j] *= inv;
    }
    return out;
}

double
frobenius_norm(const Tensor& a)
{
    double acc = 0;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        acc += static_cast<double>(a.data()[i]) * a.data()[i];
    return std::sqrt(acc);
}

double
max_abs_diff(const Tensor& a, const Tensor& b)
{
    MX_CHECK_ARG(a.same_shape(b), "max_abs_diff: shape mismatch");
    double mx = 0;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        mx = std::max(mx, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
    return mx;
}

Tensor
im2col(const Tensor& input, const Conv2dGeometry& g)
{
    MX_CHECK_ARG(input.ndim() == 4 && input.dim(0) == g.batch &&
                 input.dim(1) == g.in_channels && input.dim(2) == g.in_h &&
                 input.dim(3) == g.in_w,
                 "im2col: input shape mismatch");
    const std::int64_t oh = g.out_h(), ow = g.out_w();
    const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
    Tensor cols({g.batch * oh * ow, patch});
    for (std::int64_t b = 0; b < g.batch; ++b) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                float* prow =
                    cols.data() + ((b * oh + oy) * ow + ox) * patch;
                std::int64_t idx = 0;
                for (std::int64_t c = 0; c < g.in_channels; ++c) {
                    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
                        for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                            std::int64_t iy = oy * g.stride + ky - g.pad;
                            std::int64_t ix = ox * g.stride + kx - g.pad;
                            float v = 0;
                            if (iy >= 0 && iy < g.in_h && ix >= 0 &&
                                ix < g.in_w) {
                                v = input.data()[((b * g.in_channels + c) *
                                                  g.in_h + iy) * g.in_w + ix];
                            }
                            prow[idx++] = v;
                        }
                    }
                }
            }
        }
    }
    return cols;
}

Tensor
col2im(const Tensor& cols, const Conv2dGeometry& g)
{
    const std::int64_t oh = g.out_h(), ow = g.out_w();
    const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
    MX_CHECK_ARG(cols.ndim() == 2 && cols.dim(0) == g.batch * oh * ow &&
                 cols.dim(1) == patch,
                 "col2im: cols shape mismatch");
    Tensor img({g.batch, g.in_channels, g.in_h, g.in_w});
    for (std::int64_t b = 0; b < g.batch; ++b) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                const float* prow =
                    cols.data() + ((b * oh + oy) * ow + ox) * patch;
                std::int64_t idx = 0;
                for (std::int64_t c = 0; c < g.in_channels; ++c) {
                    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
                        for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                            std::int64_t iy = oy * g.stride + ky - g.pad;
                            std::int64_t ix = ox * g.stride + kx - g.pad;
                            if (iy >= 0 && iy < g.in_h && ix >= 0 &&
                                ix < g.in_w) {
                                img.data()[((b * g.in_channels + c) *
                                            g.in_h + iy) * g.in_w + ix] +=
                                    prow[idx];
                            }
                            ++idx;
                        }
                    }
                }
            }
        }
    }
    return img;
}

} // namespace tensor
} // namespace mx
