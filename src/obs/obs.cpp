#include "obs/obs.h"

// Macro-only header (no mx_core link dependency): the capability
// annotations keep the obs rings/registry inside the tree-wide
// -Wthread-safety net without inverting the obs -> core layer order.
#include "core/thread_annotations.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

namespace mx {
namespace obs {

namespace {

// ---------------------------------------------------------------------
// Span ring buffers: one per thread, owned by a process-wide registry
// that outlives the threads (and is intentionally leaked so the
// at-exit exporters never race static destruction).
// ---------------------------------------------------------------------

/** One finished span.  Name/keys are static strings held by pointer. */
struct SpanRecord
{
    const char* name = nullptr;
    std::uint64_t t0 = 0, t1 = 0; ///< now_ns() at construct/destruct.
    std::uint16_t depth = 0;      ///< Nesting depth on its thread.
    std::uint8_t nargs = 0;
    const char* keys[Span::kMaxArgs] = {};
    double vals[Span::kMaxArgs] = {};
};

/** Spans a thread's ring can hold before overwriting its oldest. */
constexpr std::size_t kRingCapacity = 1 << 16;

struct ThreadBuffer
{
    explicit ThreadBuffer(std::uint32_t tid_) : tid(tid_)
    {
        ring.reserve(kRingCapacity);
    }

    /** Push under the buffer mutex (uncontended except vs an exporter:
     *  the owning thread is the only writer). */
    void
    push(const SpanRecord& rec)
    {
        bool overwrote = false;
        {
            core::LockGuard lk(mu);
            if (ring.size() < kRingCapacity) {
                ring.push_back(rec);
            } else {
                ring[next_slot] = rec; // wrap: overwrite the oldest
                next_slot = (next_slot + 1) % kRingCapacity;
                ++dropped;
                overwrote = true;
            }
        }
        if (overwrote) {
            // Make a truncated trace detectable from the metrics dump.
            static Counter& c = counter("obs.spans_dropped");
            c.add(1);
        }
    }

    const std::uint32_t tid;
    core::Mutex mu;
    std::vector<SpanRecord> ring MX_GUARDED_BY(mu);
    /// Oldest record once wrapped.
    std::size_t next_slot MX_GUARDED_BY(mu) = 0;
    /// Overwritten span count.
    std::uint64_t dropped MX_GUARDED_BY(mu) = 0;
    /// set_thread_name label.
    std::string name MX_GUARDED_BY(mu);
};

struct TraceState
{
    core::Mutex mu;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers MX_GUARDED_BY(mu);
    std::uint32_t next_tid MX_GUARDED_BY(mu) = 1;
};

TraceState&
trace_state()
{
    static TraceState* s = new TraceState; // leaked: see file comment
    return *s;
}

thread_local ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint16_t tl_depth = 0;

ThreadBuffer&
this_thread_buffer()
{
    if (tl_buffer == nullptr) {
        TraceState& s = trace_state();
        core::LockGuard lk(s.mu);
        s.buffers.push_back(std::make_unique<ThreadBuffer>(s.next_tid++));
        tl_buffer = s.buffers.back().get();
    }
    return *tl_buffer;
}

// ---------------------------------------------------------------------
// Metric registry: name -> counter/gauge/histogram, addresses stable
// for the life of the process (call sites cache references in
// function-local statics).  Also intentionally leaked.
// ---------------------------------------------------------------------

struct Registry
{
    core::Mutex mu;
    // std::map: exporters walk names in deterministic sorted order.
    // The maps are guarded; the pointed-to metrics are relaxed-atomic
    // and deliberately touched lock-free once a call site holds a
    // reference (the registry promises address stability, not
    // exclusion).
    std::map<std::string, std::unique_ptr<Counter>>
        counters MX_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Gauge>> gauges MX_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Histogram>>
        histograms MX_GUARDED_BY(mu);
};

Registry&
registry()
{
    static Registry* r = new Registry;
    return *r;
}

/** "session.hits" -> "mx_session_hits" (Prometheus metric charset). */
std::string
slug(const std::string& name)
{
    std::string out = "mx_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Env paths captured at flag resolution (empty = unset). */
std::string&
env_trace_path()
{
    static std::string* p = new std::string;
    return *p;
}

std::string&
env_metrics_path()
{
    static std::string* p = new std::string;
    return *p;
}

void
at_exit_export()
{
    if (!env_trace_path().empty())
        write_trace(env_trace_path());
    if (!env_metrics_path().empty())
        write_metrics(env_metrics_path());
}

/** JSON string escaping for names that are not under our control
 *  (thread names, arg keys are static literals but cheap to be safe). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** Doubles in trace args: plain decimal, finite (Chrome's JSON parser
 *  rejects NaN/Inf literals). */
std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

namespace detail {

std::atomic<int> g_flags{-1};

int
resolve_flags()
{
    // Benign race: concurrent first calls resolve identically from the
    // same environment; atexit registration is guarded separately.
    int f = 0;
    const char* trace = std::getenv("MX_TRACE");
    const char* metrics = std::getenv("MX_METRICS");
    if (trace != nullptr && trace[0] != '\0')
        f |= 1;
    if (metrics != nullptr && metrics[0] != '\0')
        f |= 2;
    if (f != 0) {
        static std::once_flag once;
        std::call_once(once, [&] {
            if (f & 1)
                env_trace_path() = trace;
            if (f & 2)
                env_metrics_path() = metrics;
            std::atexit(at_exit_export);
        });
    }
    int expected = -1;
    g_flags.compare_exchange_strong(expected, f,
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
    return g_flags.load(std::memory_order_relaxed);
}

} // namespace detail

void
set_trace_enabled(bool on)
{
    const int f = detail::flags();
    detail::g_flags.store(on ? (f | 1) : (f & ~1),
                          std::memory_order_relaxed);
}

void
set_metrics_enabled(bool on)
{
    const int f = detail::flags();
    detail::g_flags.store(on ? (f | 2) : (f & ~2),
                          std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram()
    : buckets_(new std::atomic<std::uint64_t>[kBuckets])
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

Histogram::~Histogram()
{
    delete[] buckets_;
}

std::size_t
Histogram::bucket_index(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value); // >= kSubBits
    const int shift = msb - static_cast<int>(kSubBits);
    const std::size_t major =
        static_cast<std::size_t>(msb) - kSubBits + 1;
    const std::size_t sub =
        static_cast<std::size_t>(value >> shift) - kSubBuckets;
    return major * kSubBuckets + sub;
}

Histogram::Bounds
Histogram::bucket_bounds(std::size_t index)
{
    if (index < kSubBuckets)
        return {index, index};
    const std::size_t major = index / kSubBuckets; // >= 1
    const std::size_t sub = index % kSubBuckets;
    const int shift = static_cast<int>(major) - 1;
    const std::uint64_t lo =
        static_cast<std::uint64_t>(kSubBuckets + sub) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return {lo, lo + width - 1};
}

void
Histogram::record(std::uint64_t value)
{
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
}

Histogram::Bounds
Histogram::percentile_bounds(double p) const
{
    // Snapshot the buckets first: a concurrent record() between reading
    // count_ and walking the array cannot push the target rank past the
    // snapshot's total.
    std::uint64_t total = 0;
    std::uint64_t counts[kBuckets];
    for (std::size_t i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0)
        return {0, 0};
    p = std::clamp(p, 0.0, 1.0);
    // Nearest-rank: the k-th smallest with k = ceil(p * n), k >= 1.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    rank = std::clamp<std::uint64_t>(rank, 1, total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen >= rank)
            return bucket_bounds(i);
    }
    return bucket_bounds(kBuckets - 1); // unreachable
}

std::uint64_t
Histogram::percentile(double p) const
{
    return percentile_bounds(p).hi;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Registry accessors
// ---------------------------------------------------------------------

Counter&
counter(const std::string& name)
{
    Registry& r = registry();
    core::LockGuard lk(r.mu);
    std::unique_ptr<Counter>& slot = r.counters[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
gauge(const std::string& name)
{
    Registry& r = registry();
    core::LockGuard lk(r.mu);
    std::unique_ptr<Gauge>& slot = r.gauges[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
histogram(const std::string& name)
{
    Registry& r = registry();
    core::LockGuard lk(r.mu);
    std::unique_ptr<Histogram>& slot = r.histograms[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>();
    return *slot;
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
Span::begin(const char* name)
{
    live_ = true;
    name_ = name;
    depth_ = tl_depth++;
    t0_ = now_ns();
}

void
Span::end()
{
    SpanRecord rec;
    rec.t1 = now_ns();
    rec.t0 = t0_;
    rec.name = name_;
    rec.depth = depth_;
    rec.nargs = nargs_;
    for (std::size_t i = 0; i < nargs_; ++i) {
        rec.keys[i] = keys_[i];
        rec.vals[i] = vals_[i];
    }
    --tl_depth;
    this_thread_buffer().push(rec);
}

void
set_thread_name(const char* name)
{
    if (!trace_enabled())
        return;
    ThreadBuffer& buf = this_thread_buffer();
    core::LockGuard lk(buf.mu);
    buf.name = name;
}

std::size_t
trace_span_count()
{
    TraceState& s = trace_state();
    core::LockGuard lk(s.mu);
    std::size_t total = 0;
    for (const std::unique_ptr<ThreadBuffer>& buf : s.buffers) {
        core::LockGuard blk(buf->mu);
        total += buf->ring.size();
    }
    return total;
}

void
clear_trace()
{
    TraceState& s = trace_state();
    core::LockGuard lk(s.mu);
    for (const std::unique_ptr<ThreadBuffer>& buf : s.buffers) {
        core::LockGuard blk(buf->mu);
        buf->ring.clear();
        buf->next_slot = 0;
        buf->dropped = 0;
    }
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

void
write_trace(std::ostream& os)
{
    // Copy every buffer under its lock, then emit without any lock
    // held: live threads keep recording while the exporter formats.
    struct ThreadDump
    {
        std::uint32_t tid;
        std::string name;
        std::vector<SpanRecord> spans;
    };
    std::vector<ThreadDump> dumps;
    {
        TraceState& s = trace_state();
        core::LockGuard lk(s.mu);
        dumps.reserve(s.buffers.size());
        for (const std::unique_ptr<ThreadBuffer>& buf : s.buffers) {
            core::LockGuard blk(buf->mu);
            ThreadDump d;
            d.tid = buf->tid;
            d.name = buf->name;
            // Unwrap the ring into chronological push order.
            d.spans.assign(buf->ring.begin() +
                               static_cast<std::ptrdiff_t>(buf->next_slot),
                           buf->ring.end());
            d.spans.insert(d.spans.end(), buf->ring.begin(),
                           buf->ring.begin() +
                               static_cast<std::ptrdiff_t>(buf->next_slot));
            dumps.push_back(std::move(d));
        }
    }

    // Spans are pushed at END time (children before parents); sort each
    // thread by (start, depth) so a parent precedes its children even
    // when a coarse clock gives them equal timestamps.
    for (ThreadDump& d : dumps)
        std::stable_sort(d.spans.begin(), d.spans.end(),
                         [](const SpanRecord& a, const SpanRecord& b) {
                             return a.t0 != b.t0 ? a.t0 < b.t0
                                                 : a.depth < b.depth;
                         });

    std::uint64_t t_base = UINT64_MAX;
    for (const ThreadDump& d : dumps)
        for (const SpanRecord& r : d.spans)
            t_base = std::min(t_base, r.t0);
    if (t_base == UINT64_MAX)
        t_base = now_ns();

    const auto us = [&](std::uint64_t ns) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(ns - t_base) * 1e-3);
        return std::string(buf);
    };

    // One event per line: greppable, and scripts/trace_summary.py plus
    // tests/test_obs.cpp parse it line-wise.
    os << "[\n";
    bool first = true;
    const auto emit = [&](const std::string& line) {
        if (!first)
            os << ",\n";
        first = false;
        os << line;
    };

    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"mx\"}}");
    for (const ThreadDump& d : dumps) {
        if (d.name.empty())
            continue;
        std::ostringstream line;
        line << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
             << "\"tid\":" << d.tid << ",\"args\":{\"name\":\""
             << json_escape(d.name) << "\"}}";
        emit(line.str());
    }

    for (const ThreadDump& d : dumps) {
        for (const SpanRecord& r : d.spans) {
            std::ostringstream line;
            line << "{\"name\":\"" << json_escape(r.name)
                 << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << d.tid
                 << ",\"ts\":" << us(r.t0) << ",\"dur\":"
                 << json_number(static_cast<double>(r.t1 - r.t0) * 1e-3);
            line << ",\"args\":{";
            for (std::size_t i = 0; i < r.nargs; ++i) {
                if (i > 0)
                    line << ",";
                line << "\"" << json_escape(r.keys[i])
                     << "\":" << json_number(r.vals[i]);
            }
            line << "}}";
            emit(line.str());
        }
    }

    // Final counter/gauge values as counter events, so every
    // instrumented subsystem is visible in the trace even when it only
    // counts (session cache, kernel dispatch, K/V cache bookkeeping).
    {
        const std::string ts = us(now_ns());
        Registry& r = registry();
        core::LockGuard lk(r.mu);
        const auto emit_counter = [&](const std::string& name, double v) {
            std::ostringstream line;
            line << "{\"name\":\"" << json_escape(name)
                 << "\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << ts
                 << ",\"args\":{\"value\":" << json_number(v) << "}}";
            emit(line.str());
        };
        for (const auto& [name, c] : r.counters)
            emit_counter(name, static_cast<double>(c->value()));
        for (const auto& [name, g] : r.gauges)
            emit_counter(name, static_cast<double>(g->value()));
    }
    os << "\n]\n";
}

bool
write_trace(const std::string& path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr,
                     "mx_obs: cannot open trace output '%s'\n",
                     path.c_str());
        return false;
    }
    write_trace(os);
    os.flush();
    return os.good();
}

std::string
metrics_text()
{
    std::ostringstream os;
    Registry& r = registry();
    core::LockGuard lk(r.mu);
    for (const auto& [name, c] : r.counters) {
        const std::string s = slug(name);
        os << "# TYPE " << s << " counter\n"
           << s << " " << c->value() << "\n";
    }
    for (const auto& [name, g] : r.gauges) {
        const std::string s = slug(name);
        os << "# TYPE " << s << " gauge\n"
           << s << " " << g->value() << "\n";
    }
    for (const auto& [name, h] : r.histograms) {
        const std::string s = slug(name);
        os << "# TYPE " << s << " summary\n";
        for (const double q : {0.5, 0.99, 0.999}) {
            os << s << "{quantile=\"" << q << "\"} " << h->percentile(q)
               << "\n";
        }
        os << s << "_sum " << h->sum() << "\n"
           << s << "_count " << h->count() << "\n";
    }
    return os.str();
}

bool
write_metrics(const std::string& path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr,
                     "mx_obs: cannot open metrics output '%s'\n",
                     path.c_str());
        return false;
    }
    os << metrics_text();
    os.flush();
    return os.good();
}

} // namespace obs
} // namespace mx
