#pragma once

/**
 * @file
 * mx_obs: low-overhead instrumentation for the serving stack — spans,
 * counters, latency histograms, and two exporters.
 *
 * The paper's Figure 6 pipeline is a staged dataflow (queue -> batch
 * assembly -> quantize -> GEMM tiles -> K/V append); this subsystem
 * makes each stage measurable instead of inferred from end-to-end
 * bench deltas.  Three primitives:
 *
 *  - Span: a monotonic-clock RAII scope written to a per-thread ring
 *    buffer.  Spans may carry a few numeric args (tile counts, bytes,
 *    SIMD level) with static-string keys.  Per-thread buffers mean a
 *    span never contends with another thread's spans, and the RAII
 *    stack discipline makes every thread's spans well-nested by
 *    construction — including spans opened inside core::ThreadPool
 *    worker lanes, which land in the worker's own buffer under its own
 *    thread id.
 *  - Counter / Gauge: relaxed-atomic event counts and level samples,
 *    registered once by name (dotted taxonomy: "session.hits",
 *    "gemm.calls") and cached by reference at the call site.
 *  - Histogram: log-bucketed value distribution (HDR-style: 32
 *    sub-buckets per power of two, <= 1/32 relative bucket width) with
 *    p50/p99/p999 extraction.  Values below 32 land in width-1 buckets,
 *    so small-count distributions report percentiles exactly;
 *    tests/test_obs.cpp pins both regimes against a sorted-vector
 *    oracle.
 *
 * Enablement and overhead: counters, gauges, and histograms are always
 * live (a relaxed fetch_add — this is what lets
 * serve::InferenceEngine::stats() report latency percentiles without
 * any knob).  Spans are gated on tracing: when MX_TRACE is unset and no
 * runtime override is installed, a Span construct/destruct is ONE
 * relaxed atomic load and a branch — no clock read, no allocation, no
 * buffer.  bench/serve_latency.cpp measures the disabled-path cost and
 * claim-checks the implied serve-throughput overhead at < 2%, so the
 * instrumentation stays compiled in everywhere.
 *
 * Exporters:
 *  - Chrome/Perfetto trace-event JSON (write_trace / $MX_TRACE=<path>):
 *    one complete ("ph":"X") event per span with thread attribution,
 *    plus one counter ("ph":"C") event per registered counter/gauge at
 *    export time.  Load the file in chrome://tracing or ui.perfetto.dev;
 *    scripts/trace_summary.py validates and summarizes it.
 *  - Prometheus-style text (metrics_text / $MX_METRICS=<path>): every
 *    registered counter as a monotonic counter, every gauge as a gauge,
 *    every histogram as a summary (quantile rows + _sum + _count).
 *    Dotted registry names are slugified ("session.hits" ->
 *    "mx_session_hits").
 *
 * When either environment variable is set, the matching file is written
 * at process exit (atexit) — a bench or test binary needs no code to
 * participate.  Both paths are read with std::getenv, not core/env.h:
 * mx_obs sits BELOW mx_core in the layer DAG (core's thread pool and
 * kernel dispatch are themselves instrumented), and the values are
 * opaque paths with no parse rules to share.
 *
 * Knobs:
 *   MX_TRACE=<path>    enable span recording; write trace JSON at exit
 *   MX_METRICS=<path>  write the Prometheus text dump at exit
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace mx {
namespace obs {

namespace detail {

/** Bit 0 = tracing, bit 1 = metrics dump; -1 = not resolved yet. */
extern std::atomic<int> g_flags;

/** Cold path: resolve MX_TRACE/MX_METRICS once and register the
 *  at-exit exporters.  Returns the resolved flag word. */
int resolve_flags();

/** The branch-on-cold-atomic gate every fast path shares. */
inline int
flags()
{
    const int f = g_flags.load(std::memory_order_relaxed);
    return f >= 0 ? f : resolve_flags();
}

} // namespace detail

/** True when spans are being recorded (MX_TRACE set, or
 *  set_trace_enabled(true) installed at runtime). */
inline bool
trace_enabled()
{
    return (detail::flags() & 1) != 0;
}

/** True when the process writes a metrics dump at exit (MX_METRICS
 *  set, or set_metrics_enabled(true) installed at runtime). */
inline bool
metrics_enabled()
{
    return (detail::flags() & 2) != 0;
}

/** Runtime overrides (test hooks + embedder API): flip span recording /
 *  the metrics flag without touching the environment.  Enabling tracing
 *  at runtime does NOT install the at-exit file writer — call
 *  write_trace explicitly (the env-driven path installs it). */
void set_trace_enabled(bool on);
void set_metrics_enabled(bool on);

/**
 * A monotonically increasing event count.  add() is a relaxed atomic
 * fetch_add — safe from any thread, never a synchronization point.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** A level sample (resident bytes, queue depth): set/add, may go down. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Log-bucketed distribution of non-negative integer values (latencies
 * in nanoseconds, byte counts).  HDR-style bucketing: values below
 * kSubBuckets get width-1 buckets (exact); above, each power of two
 * splits into kSubBuckets linear sub-buckets, so a bucket's width is at
 * most value/kSubBuckets (<= 3.125% relative error at 32).
 *
 * record() is two relaxed fetch_adds; percentile extraction walks the
 * bucket array (a snapshot — concurrent records may or may not be
 * seen, each atomically).
 */
class Histogram
{
  public:
    /** Sub-buckets per power of two (and the exact-bucket threshold). */
    static constexpr std::size_t kSubBuckets = 32;
    static constexpr std::size_t kSubBits = 5; ///< log2(kSubBuckets)
    /** Bucket count: 32 exact + 59 octaves x 32 sub-buckets. */
    static constexpr std::size_t kBuckets =
        kSubBuckets + (64 - kSubBits) * kSubBuckets;

    Histogram();
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;
    ~Histogram();

    void record(std::uint64_t value);

    std::uint64_t count() const;
    /** Sum of every recorded value (exact, not bucket-quantized). */
    std::uint64_t sum() const;
    double mean() const;

    /** Inclusive value range of one bucket. */
    struct Bounds
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    /**
     * The bucket holding the nearest-rank @p p percentile (rank
     * ceil(p * count), clamped to [1, count]) — i.e. the sorted-vector
     * oracle's value v at that rank satisfies lo <= v <= hi.  Zeros
     * when the histogram is empty.
     */
    Bounds percentile_bounds(double p) const;

    /** Upper bound of the percentile bucket: the smallest recorded
     *  bucket boundary v such that at least ceil(p * count) recorded
     *  values are <= v.  Exact for values below kSubBuckets; at most
     *  1/kSubBuckets above the oracle elsewhere. */
    std::uint64_t percentile(double p) const;

    /** percentile() of a nanosecond histogram, in milliseconds. */
    double
    percentile_ms(double p) const
    {
        return static_cast<double>(percentile(p)) * 1e-6;
    }

    /** Drop every recorded value (test hook; racy vs live record()). */
    void reset();

    /** Bucket index of @p value (exposed for the exactness tests). */
    static std::size_t bucket_index(std::uint64_t value);
    /** Inclusive value range of bucket @p index. */
    static Bounds bucket_bounds(std::size_t index);

  private:
    std::atomic<std::uint64_t>* buckets_; ///< [kBuckets], heap-allocated.
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * Registry lookup-or-create by dotted name ("session.hits").  The
 * returned reference is process-lifetime stable — cache it in a
 * function-local static so the mutex-guarded lookup runs once per call
 * site, not per event.  Names must be stable literals; the first
 * segment is the subsystem (the taxonomy trace_summary.py groups by).
 */
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/**
 * RAII trace span.  When tracing is disabled, construction is one
 * relaxed atomic load + branch and destruction one branch — no clock
 * read, no allocation.  When enabled, the span records
 * [construct, destruct) on the calling thread's ring buffer.
 *
 * @p name must be a static string (stored by pointer).  Args likewise:
 * static-string keys, numeric values, at most kMaxArgs (extras are
 * dropped).
 */
class Span
{
  public:
    static constexpr std::size_t kMaxArgs = 8;

    explicit Span(const char* name)
    {
        if (trace_enabled())
            begin(name);
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    ~Span()
    {
        if (live_)
            end();
    }

    /** Attach a numeric arg (no-op when the span is not recording). */
    void
    arg(const char* key, double value)
    {
        if (live_ && nargs_ < kMaxArgs) {
            keys_[nargs_] = key;
            vals_[nargs_] = value;
            ++nargs_;
        }
    }

  private:
    void begin(const char* name);
    void end();

    bool live_ = false;
    std::uint8_t nargs_ = 0;
    std::uint16_t depth_ = 0;
    const char* name_ = nullptr;
    std::uint64_t t0_ = 0;
    const char* keys_[kMaxArgs] = {};
    double vals_[kMaxArgs] = {};
};

/**
 * Name the calling thread in trace exports ("serve-replica-0",
 * "pool-worker").  No-op while tracing is disabled (buffers only exist
 * when spans record).
 */
void set_thread_name(const char* name);

/** Monotonic clock, nanoseconds since an arbitrary process epoch. */
std::uint64_t now_ns();

/** Spans currently resident across every thread's ring buffer (test
 *  and sizing hook; spans dropped by full rings are counted in the
 *  "obs.spans_dropped" counter). */
std::size_t trace_span_count();

/** Drop every buffered span (test hook; thread names survive). */
void clear_trace();

/** Write the Chrome trace-event JSON of everything buffered (plus one
 *  counter event per registered counter/gauge) to @p os.  One event
 *  object per line — greppable, and trivially parseable line-wise. */
void write_trace(std::ostream& os);

/** write_trace to @p path; returns false (and warns on stderr) when
 *  the file cannot be written. */
bool write_trace(const std::string& path);

/** The Prometheus-style text dump of every registered counter, gauge,
 *  and histogram. */
std::string metrics_text();

/** metrics_text() to @p path; returns false (and warns on stderr) when
 *  the file cannot be written. */
bool write_metrics(const std::string& path);

} // namespace obs
} // namespace mx
