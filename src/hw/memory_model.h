#pragma once

/**
 * @file
 * Memory-footprint model (paper Section IV-B, "Memory Footprint").
 *
 * DRAM/HBM interfaces are fixed-width; if a tile of tensor data does not
 * pack into whole interface beats, effective capacity and bandwidth are
 * lost.  Following the paper, the model packs a typical 256-element tile
 * into a 64-byte (512-bit) memory interface and reports the number of
 * beats and the packing efficiency.  The Figure 7 x-axis uses the
 * resulting footprint normalized to FP8's (256 x 8 bits = exactly 4
 * beats).
 */

#include <cstddef>

#include "core/bdr_format.h"

namespace mx {
namespace hw {

/** Result of packing one tile into the memory interface. */
struct TilePacking
{
    std::size_t payload_bits = 0;   ///< Exact encoded bits for the tile.
    std::size_t interface_bits = 0; ///< Bits actually transferred.
    std::size_t beats = 0;          ///< Interface transactions.
    double packing_efficiency = 0;  ///< payload / transferred.
};

/** Parameters of the memory interface model. */
struct MemoryModelConfig
{
    std::size_t tile_elements = 256; ///< Paper: typical tile size.
    std::size_t interface_bits = 512; ///< Paper: 64B interface.
};

/** Computes tile packing and normalized memory cost for BDR formats. */
class MemoryModel
{
  public:
    explicit MemoryModel(MemoryModelConfig cfg = MemoryModelConfig{})
        : cfg_(cfg)
    {
    }

    /** Pack one tile of @p fmt and report the transfer breakdown. */
    TilePacking pack_tile(const core::BdrFormat& fmt) const;

    /**
     * Memory cost normalized to FP8 (Fig 7): beats needed by @p fmt over
     * the beats needed by an 8-bit/element format for the same tile.
     */
    double normalized_cost(const core::BdrFormat& fmt) const;

    /** The model configuration. */
    const MemoryModelConfig& config() const { return cfg_; }

  private:
    MemoryModelConfig cfg_;
};

} // namespace hw
} // namespace mx
