#pragma once

/**
 * @file
 * Analytical standard-cell area model of the Figure 6 dot-product pipeline.
 *
 * The paper synthesizes each configuration with Synopsys Design Compiler
 * on a leading process node, with a relaxed 10ns constraint and only I/O
 * registered, and reports standard-cell area *normalized to a dual-mode
 * FP8 (E4M3 + E5M2) dot product*.  We cannot run DC here, so this model
 * prices every block of the Figure 6 pipeline in NAND2-equivalent gate
 * units from its datapath bit-widths:
 *
 *   signs -> XOR               mantissas -> multipliers -> TC convert
 *   sub-block scale exponents -> add -> conditional right shift
 *   -> intra-block vector sum  (k1 -> 1, width 2m + 2*beta + log2 k1)
 *   block scale exponents -> add -> vector max -> subtract -> >> align
 *   -> f-bit fixed-point vector sum (r/k1 -> 1) -> FP32 convert/accum
 *
 * Because both the numerator and the denominator (the FP8 baseline) come
 * from the same gate table, the *relative* areas — which is all the paper
 * reports — are insensitive to the absolute per-gate constants.  The
 * constants themselves are standard textbook values (Weste & Harris).
 */

#include <string>

#include "core/bdr_format.h"

namespace mx {
namespace hw {

/** Per-stage area contributions in NAND2-equivalents (for reports). */
struct AreaBreakdown
{
    double sign_xor = 0;       ///< Sign combination.
    double multipliers = 0;    ///< Mantissa multiplier array.
    double tc_convert = 0;     ///< Two's-complement conversion of products.
    double sub_scale = 0;      ///< Sub-scale exponent adds + cond. shifts.
    double intra_tree = 0;     ///< k1-element vector-sum tree.
    double exponent_path = 0;  ///< Block exponent add/max/subtract.
    double lzc = 0;            ///< Leading-zero counters.
    double align_shift = 0;    ///< f-bit alignment barrel shifters.
    double inter_tree = 0;     ///< Cross-block fixed-point vector sum.
    double int_rescale = 0;    ///< VSQ-style integer rescale stage.
    double fp32_accum = 0;     ///< FP32 convert + accumulate.
    double io_regs = 0;        ///< Input/output registers.

    /** Sum of all stages. */
    double total() const;

    /** Multi-line human-readable table. */
    std::string to_string() const;
};

/** Model parameters (defaults follow the paper's evaluation setup). */
struct AreaModelConfig
{
    /** Dot-product reduction length r (Fig 7 normalizes to a 64-element
     *  FP8 unit). */
    int r = 64;
    /** Cap on the fixed-point accumulation width f (Fig 6 caption:
     *  f = min(25, max dynamic range)). */
    int f_cap = 25;
    /** Multiplier applied to the dual-mode FP8 baseline to account for
     *  sub-circuit sharing overhead between E4M3 and E5M2. */
    double dual_mode_overhead = 1.10;
};

/** Area estimator for any BdrFormat's dot-product engine. */
class AreaModel
{
  public:
    explicit AreaModel(AreaModelConfig cfg = AreaModelConfig{});

    /** Fixed-point accumulator width for @p fmt: min(f_cap, dynamic range). */
    int accumulator_width(const core::BdrFormat& fmt) const;

    /** Stage-by-stage area of a length-r dot product for @p fmt. */
    AreaBreakdown breakdown(const core::BdrFormat& fmt) const;

    /** Total area in NAND2-equivalents. */
    double area_nand2(const core::BdrFormat& fmt) const;

    /** Area of the dual-mode FP8 (E4M3 + E5M2) baseline unit. */
    double fp8_dual_baseline_nand2() const;

    /** area(fmt) / area(dual-mode FP8) — the paper's normalization. */
    double normalized_area(const core::BdrFormat& fmt) const;

    /** The model configuration. */
    const AreaModelConfig& config() const { return cfg_; }

  private:
    AreaModelConfig cfg_;
};

} // namespace hw
} // namespace mx
