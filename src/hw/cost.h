#pragma once

/**
 * @file
 * Combined hardware cost metric for Figure 7's x-axis: the normalized
 * area–memory efficiency product.  The paper gives equal weight to dot
 * product area and memory footprint because both matter for training and
 * inference; both factors are normalized to the dual-mode FP8 baseline,
 * so FP8 sits at 1.0 by construction.
 */

#include "core/bdr_format.h"
#include "hw/area_model.h"
#include "hw/memory_model.h"

namespace mx {
namespace hw {

/** One format's position in the Figure 7 cost/fidelity plane. */
struct CostPoint
{
    double normalized_area = 0;   ///< dot-product area / FP8 dual.
    double normalized_memory = 0; ///< tile beats / FP8 tile beats.
    double area_memory_product = 0; ///< the Fig 7 x-axis value.
};

/** Evaluates the combined cost for formats under shared model configs. */
class CostModel
{
  public:
    CostModel(AreaModelConfig area_cfg = AreaModelConfig{},
              MemoryModelConfig mem_cfg = MemoryModelConfig{})
        : area_(area_cfg), memory_(mem_cfg)
    {
    }

    /** Compute the cost point of @p fmt. */
    CostPoint
    evaluate(const core::BdrFormat& fmt) const
    {
        CostPoint p;
        p.normalized_area = area_.normalized_area(fmt);
        p.normalized_memory = memory_.normalized_cost(fmt);
        p.area_memory_product = p.normalized_area * p.normalized_memory;
        return p;
    }

    /** The underlying area model. */
    const AreaModel& area_model() const { return area_; }
    /** The underlying memory model. */
    const MemoryModel& memory_model() const { return memory_; }

  private:
    AreaModel area_;
    MemoryModel memory_;
};

} // namespace hw
} // namespace mx
