#include "hw/pipeline.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/scalar_fp.h"

namespace mx {
namespace hw {

namespace {

using core::BdrFormat;
using core::ElementKind;
using core::Pow2BlockEncoding;
using core::Rounder;
using core::ScaleKind;

int
bit_length(std::int64_t v)
{
    std::uint64_t a = static_cast<std::uint64_t>(v < 0 ? -v : v);
    int b = 0;
    while (a) {
        ++b;
        a >>= 1;
    }
    return b;
}

/**
 * Decompose a scalar-FP quantized value into (integer mantissa, grid
 * exponent) such that v == mant * 2^grid.
 */
void
decompose_fp(const BdrFormat& fmt, double v, std::int64_t& mant, int& grid)
{
    if (v == 0.0) {
        mant = 0;
        grid = 0;
        return;
    }
    int bias = fmt.fp_bias();
    int emin = 1 - bias;
    int ex;
    std::frexp(std::fabs(v), &ex);
    ex -= 1;
    int q_exp = std::max(ex, emin);
    grid = q_exp - fmt.m;
    double scaled = v / std::ldexp(1.0, grid);
    mant = static_cast<std::int64_t>(std::llround(scaled));
    MX_CHECK(std::fabs(scaled - static_cast<double>(mant)) < 1e-9,
             fmt.name << ": FP value not on its quantization grid");
}

} // namespace

DotProductPipeline::DotProductPipeline(PipelineConfig cfg)
    : cfg_(std::move(cfg))
{
    const BdrFormat& fmt = cfg_.format;
    fmt.validate();
    MX_CHECK_ARG(fmt.elem == ElementKind::SignMagnitude ||
                 fmt.elem == ElementKind::FloatingPoint,
                 fmt.name << ": pipeline supports pow2-scaled and scalar FP "
                          << "formats (VSQ uses a separate pipeline)");
    if (fmt.elem == ElementKind::SignMagnitude)
        MX_CHECK_ARG(fmt.s_kind == ScaleKind::Pow2Hw,
                     fmt.name << ": block path needs a HW pow2 scale");
    MX_CHECK_ARG(cfg_.r >= 1 && cfg_.r % std::max(1, fmt.k1) == 0,
                 "pipeline: r must be a positive multiple of k1");
    MX_CHECK_ARG(cfg_.f >= 2 && cfg_.f <= 56,
                 "pipeline: f out of simulatable range");
}

DotProductPipeline::BlockProduct
DotProductPipeline::reduce_block(const Pow2BlockEncoding& ea,
                                 const Pow2BlockEncoding& eb,
                                 std::size_t n) const
{
    const BdrFormat& fmt = cfg_.format;
    const int beta = fmt.beta();
    const std::size_t k2 = static_cast<std::size_t>(fmt.k2);

    // All products live on the grid 2^(Ea + Eb - 2(m-1) - 2*beta); a
    // product with sub-shifts (ta, tb) contributes
    // Ma*Mb << (2*beta - ta - tb), which is exactly the conditional
    // right-shift-while-summing of the hardware, done losslessly on the
    // expanded grid.
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::int64_t p = static_cast<std::int64_t>(ea.mantissa[i]) *
                         static_cast<std::int64_t>(eb.mantissa[i]);
        int ta = ea.sub_shift.empty() ? 0 : ea.sub_shift[i / k2];
        int tb = eb.sub_shift.empty() ? 0 : eb.sub_shift[i / k2];
        int up = 2 * beta - ta - tb;
        MX_CHECK(up >= 0 && up <= 2 * beta, "pipeline: bad sub-shift");
        acc += p << up;
    }

    BlockProduct bp;
    bp.mant = acc;
    bp.grid_exp = ea.shared_exp + eb.shared_exp - 2 * (fmt.m - 1) -
                  2 * beta;
    bp.zero = acc == 0;
    return bp;
}

PipelineResult
DotProductPipeline::run(std::span<const float> a,
                        std::span<const float> b) const
{
    const BdrFormat& fmt = cfg_.format;
    MX_CHECK_ARG(a.size() == static_cast<std::size_t>(cfg_.r) &&
                 b.size() == a.size(),
                 "pipeline: input length must equal r");

    Rounder rounder(core::RoundingMode::NearestEven);
    std::vector<BlockProduct> blocks;

    if (fmt.elem == ElementKind::FloatingPoint) {
        blocks.reserve(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            double qa = core::fp_cast(fmt, a[i], rounder);
            double qb = core::fp_cast(fmt, b[i], rounder);
            std::int64_t ma, mb;
            int ga, gb;
            decompose_fp(fmt, qa, ma, ga);
            decompose_fp(fmt, qb, mb, gb);
            BlockProduct bp;
            bp.mant = ma * mb;
            bp.grid_exp = ga + gb;
            bp.zero = bp.mant == 0;
            blocks.push_back(bp);
        }
    } else {
        const std::size_t k1 = static_cast<std::size_t>(fmt.k1);
        std::vector<float> scratch(k1);
        for (std::size_t off = 0; off < a.size(); off += k1) {
            std::size_t n = std::min(k1, a.size() - off);
            Pow2BlockEncoding ea, eb;
            scratch.resize(n);
            core::quantize_pow2_block(fmt, a.subspan(off, n),
                                      std::span<float>(scratch), rounder,
                                      &ea);
            core::quantize_pow2_block(fmt, b.subspan(off, n),
                                      std::span<float>(scratch), rounder,
                                      &eb);
            blocks.push_back(reduce_block(ea, eb, n));
        }
    }

    PipelineResult res;
    for (const BlockProduct& bp : blocks) {
        if (!bp.zero)
            res.exact_quantized_dot +=
                static_cast<double>(bp.mant) * std::ldexp(1.0, bp.grid_exp);
    }

    // Normalize to the largest block result and reduce in f-bit
    // fixed point (vector max -> subtract -> right shift -> vector sum).
    int ref_pos = 0;
    bool any = false;
    for (const BlockProduct& bp : blocks) {
        if (bp.zero)
            continue;
        int pos = bp.grid_exp + bit_length(bp.mant);
        if (!any || pos > ref_pos)
            ref_pos = pos;
        any = true;
    }
    if (!any) {
        res.value = 0;
        return res;
    }

    const int grid = ref_pos - cfg_.f;
    std::int64_t sum = 0;
    for (const BlockProduct& bp : blocks) {
        if (bp.zero)
            continue;
        int s = grid - bp.grid_exp;
        if (s <= 0) {
            MX_CHECK(bit_length(bp.mant) - s < 62,
                     "pipeline: fixed-point overflow");
            sum += bp.mant << (-s);
        } else if (s >= 63) {
            if (bp.mant != 0)
                res.truncated_bits = std::max(res.truncated_bits,
                                              bit_length(bp.mant));
        } else {
            std::int64_t kept = bp.mant >> s; // arithmetic: truncation
            std::int64_t lost = bp.mant - (kept << s);
            if (lost != 0)
                res.truncated_bits = std::max(res.truncated_bits,
                                              bit_length(lost));
            sum += kept;
        }
    }
    res.value = static_cast<double>(sum) * std::ldexp(1.0, grid);
    return res;
}

double
DotProductPipeline::dot(std::span<const float> a,
                        std::span<const float> b) const
{
    return run(a, b).value;
}

} // namespace hw
} // namespace mx
