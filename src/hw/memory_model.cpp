#include "hw/memory_model.h"

#include "core/check.h"
#include "formats/block_codec.h"

namespace mx {
namespace hw {

TilePacking
MemoryModel::pack_tile(const core::BdrFormat& fmt) const
{
    TilePacking t;
    // For storage purposes the software FP32 scale of INT/VSQ/FP formats
    // is amortized over sw_granularity (>= a tile) elements, so it does
    // not consume tile bits; the codec's 32-bit header is dropped here.
    std::size_t bits = formats::packed_bits(fmt, cfg_.tile_elements);
    if (fmt.has_sw_scale())
        bits -= 32;
    t.payload_bits = bits;
    t.beats = (bits + cfg_.interface_bits - 1) / cfg_.interface_bits;
    t.interface_bits = t.beats * cfg_.interface_bits;
    t.packing_efficiency = t.interface_bits == 0
        ? 0.0
        : static_cast<double>(t.payload_bits) / t.interface_bits;
    return t;
}

double
MemoryModel::normalized_cost(const core::BdrFormat& fmt) const
{
    TilePacking t = pack_tile(fmt);
    std::size_t fp8_bits = cfg_.tile_elements * 8;
    std::size_t fp8_beats =
        (fp8_bits + cfg_.interface_bits - 1) / cfg_.interface_bits;
    MX_CHECK(fp8_beats > 0, "memory model: degenerate FP8 baseline");
    return static_cast<double>(t.beats) / static_cast<double>(fp8_beats);
}

} // namespace hw
} // namespace mx
