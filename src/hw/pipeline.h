#pragma once

/**
 * @file
 * Bit-exact functional simulation of the Figure 6 dot-product pipeline.
 *
 * The pipeline consumes two quantized input vectors of length r and
 * produces one scalar:
 *
 *   1. per element: sign XOR, m x m mantissa multiply, two's-complement;
 *   2. (k2 > 1) sub-scale exponents added, products conditionally
 *      right-shifted by the combined microexponent shift while the k1
 *      elements of each block are summed (done here by exact arithmetic
 *      on a 2*beta-expanded grid — identical results, simpler code);
 *   3. per block: the two shared exponents are added;
 *   4. blocks are normalized to the largest block result and reduced in
 *      f-bit fixed point — bits shifted below the f-bit window are
 *      truncated, which is the pipeline's only inexactness;
 *   5. FP32 convert / accumulate.
 *
 * Setting k1 = k2 = 1 degenerates to a scalar floating-point unit and
 * d2 = 0 to classic block floating point, as in the paper.  The test
 * suite checks the simulator against an exact reference dot product of
 * the dequantized inputs: equal when f is wide enough, and within the
 * f-bit truncation bound otherwise.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "core/bdr_format.h"
#include "core/quantize.h"

namespace mx {
namespace hw {

/** Static configuration of one pipeline instance. */
struct PipelineConfig
{
    /** The element format (SignMagnitude/Pow2Hw or FloatingPoint). */
    core::BdrFormat format;
    /** Reduction length r; must be a positive multiple of format.k1. */
    int r = 64;
    /** Fixed-point accumulation width f. */
    int f = 25;
};

/** Result of one pipeline evaluation, with observability for tests. */
struct PipelineResult
{
    /** The pipeline's FP32 output. */
    double value = 0;
    /** Exact dot product of the dequantized (quantized-grid) inputs. */
    double exact_quantized_dot = 0;
    /** Number of mantissa bits truncated by the f-bit alignment (max
     *  over blocks; 0 means the evaluation was exact). */
    int truncated_bits = 0;
};

/**
 * Functional model of one dot-product unit.
 *
 * The unit quantizes its FP32 inputs on ingest (as a hardware unit's
 * load path would) and then performs all arithmetic on integer codes.
 */
class DotProductPipeline
{
  public:
    explicit DotProductPipeline(PipelineConfig cfg);

    /**
     * Run the pipeline on two length-r input vectors.
     * @throws mx::ArgumentError if sizes differ from r.
     */
    PipelineResult run(std::span<const float> a,
                       std::span<const float> b) const;

    /** Convenience: just the FP32 output. */
    double dot(std::span<const float> a, std::span<const float> b) const;

    /** The configuration. */
    const PipelineConfig& config() const { return cfg_; }

  private:
    struct BlockProduct
    {
        /** Integer block sum on the 2*(m-1)+2*beta fractional grid. */
        std::int64_t mant = 0;
        /** Grid exponent: value = mant * 2^grid_exp. */
        int grid_exp = 0;
        bool zero = true;
    };

    BlockProduct reduce_block(const core::Pow2BlockEncoding& ea,
                              const core::Pow2BlockEncoding& eb,
                              std::size_t n) const;

    PipelineConfig cfg_;
};

} // namespace hw
} // namespace mx
