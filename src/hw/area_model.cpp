#include "hw/area_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/check.h"

namespace mx {
namespace hw {

namespace {

using core::BdrFormat;
using core::ElementKind;
using core::ScaleKind;

// NAND2-equivalent unit costs (Weste & Harris, 4th ed., ch. 11 ballpark
// figures).  Only ratios matter: both the format under evaluation and the
// FP8 baseline are priced from this same table.
constexpr double kFullAdder = 4.5;
constexpr double kXor = 2.25;
constexpr double kMux2 = 2.5;
constexpr double kCmpBit = 3.0;  // subtract + carry chain per bit
constexpr double kLzcBit = 1.5;
constexpr double kRegBit = 4.0;
constexpr double kFp32Accumulate = 1200.0; // FP32 add + convert macro

int
ceil_log2(int n)
{
    int b = 0;
    while ((1 << b) < n)
        ++b;
    return b;
}

/** Area of an n-input adder tree whose leaves are w bits wide. */
double
adder_tree(int n, int w)
{
    double area = 0;
    int count = n;
    int width = w;
    while (count > 1) {
        area += (count / 2) * width * kFullAdder;
        count = (count + 1) / 2;
        width += 1;
    }
    return area;
}

/** Area of a barrel shifter: w-bit word, shift range [0, max_shift]. */
double
barrel_shifter(int w, int max_shift)
{
    if (max_shift <= 0)
        return 0;
    int stages = ceil_log2(max_shift + 1);
    return static_cast<double>(w) * stages * kMux2;
}

} // namespace

double
AreaBreakdown::total() const
{
    return sign_xor + multipliers + tc_convert + sub_scale + intra_tree +
           exponent_path + lzc + align_shift + inter_tree + int_rescale +
           fp32_accum + io_regs;
}

std::string
AreaBreakdown::to_string() const
{
    std::ostringstream os;
    auto row = [&](const char* name, double v) {
        os << "  " << name << ": " << v << "\n";
    };
    os << "AreaBreakdown (NAND2-equivalents):\n";
    row("sign_xor", sign_xor);
    row("multipliers", multipliers);
    row("tc_convert", tc_convert);
    row("sub_scale", sub_scale);
    row("intra_tree", intra_tree);
    row("exponent_path", exponent_path);
    row("lzc", lzc);
    row("align_shift", align_shift);
    row("inter_tree", inter_tree);
    row("int_rescale", int_rescale);
    row("fp32_accum", fp32_accum);
    row("io_regs", io_regs);
    row("TOTAL", total());
    return os.str();
}

AreaModel::AreaModel(AreaModelConfig cfg) : cfg_(cfg)
{
    MX_CHECK_ARG(cfg_.r >= 1, "AreaModel: r must be positive");
    MX_CHECK_ARG(cfg_.f_cap >= 4, "AreaModel: f cap too small");
}

int
AreaModel::accumulator_width(const BdrFormat& fmt) const
{
    // "f = min(25, the maximum possible dynamic range for each format)".
    // The dynamic range of a single product, in bits: exponent span of a
    // product plus the product mantissa width.
    int dyn;
    if (fmt.elem == ElementKind::FloatingPoint) {
        int bias = fmt.fp_bias();
        int emax = (1 << fmt.e) - 1 - bias;
        int emin_sub = (1 - bias) - fmt.m; // smallest subnormal exponent
        int mant_w = fmt.m + 1;
        dyn = 2 * (emax - emin_sub) + 2 * mant_w;
    } else if (fmt.s_kind == ScaleKind::Pow2Hw) {
        // Blocks are aligned by their (wide-range) shared exponents; the
        // per-block result itself carries 2m + 2*beta + log2(k1) bits.
        dyn = 2 * fmt.m + 2 * fmt.beta() + ceil_log2(fmt.k1) + 2 +
              (1 << fmt.d1) / 8; // d1-driven exponent span, heavily capped
    } else {
        // Pure integer datapaths: products are 2m+1 bits, the tree adds
        // log2(r): exact accumulation fits well under the cap.
        dyn = 2 * fmt.m + 1 + ceil_log2(std::max(2, cfg_.r));
        if (fmt.ss_kind == ScaleKind::IntHw)
            dyn += 2 * fmt.d2;
    }
    return std::min(cfg_.f_cap, dyn);
}

AreaBreakdown
AreaModel::breakdown(const BdrFormat& fmt) const
{
    fmt.validate();
    AreaBreakdown a;
    const int r = cfg_.r;
    const int f = accumulator_width(fmt);

    const bool is_fp = fmt.elem == ElementKind::FloatingPoint;
    const bool is_pow2 = fmt.s_kind == ScaleKind::Pow2Hw;
    const bool is_vsq = fmt.ss_kind == ScaleKind::IntHw;

    // Element mantissa width at the multiplier inputs.
    const int mw = fmt.m + (is_fp ? 1 : 0); // implicit leading one
    const int pw = 2 * mw + 1;              // signed product width

    // --- Element stage: signs, multipliers, product sign application.
    a.sign_xor = r * kXor;
    a.multipliers = r * static_cast<double>(mw) * mw * kFullAdder;
    a.tc_convert = r * pw * (kXor + 0.5 * kFullAdder);

    if (is_fp) {
        // Scalar floating point (k1 = k2 = 1): every product carries a
        // private exponent; all r products are max-aligned into f bits.
        const int ew = fmt.e + 1;
        a.exponent_path = r * ew * kFullAdder           // exponent adds
                        + (r - 1) * ew * kCmpBit        // vector max
                        + r * ew * kFullAdder;          // subtract
        a.lzc = r * pw * kLzcBit;
        a.align_shift = r * barrel_shifter(f, f);
        a.inter_tree = adder_tree(r, f);
    } else if (is_pow2) {
        // BFP / MX: k1-element blocks with a shared exponent; optional
        // k2-element microexponents handled by conditional right shifts
        // inside the block reduction.
        const int k1 = fmt.k1;
        const int k2 = fmt.k2;
        const int n1 = std::max(1, r / k1);
        const int beta = fmt.beta();

        if (fmt.d2 > 0) {
            // Sub-scale adds: one (d2+1)-bit add per element pair's
            // sub-block (two input tensors' taus combine).
            a.sub_scale += (static_cast<double>(r) / k2) * (fmt.d2 + 1) *
                           kFullAdder;
            // Conditional right shift of each product by up to 2*beta.
            a.sub_scale += r * barrel_shifter(pw + 2 * beta, 2 * beta);
        }

        const int wblock = pw + 2 * beta; // product grid inside a block
        a.intra_tree = n1 * adder_tree(k1, wblock);

        const int ew = fmt.d1 + 1;
        a.exponent_path = n1 * ew * kFullAdder
                        + std::max(0, n1 - 1) * ew * kCmpBit
                        + n1 * ew * kFullAdder;
        a.lzc = n1 * (wblock + ceil_log2(k1)) * kLzcBit;
        a.align_shift = n1 * barrel_shifter(f, f);
        a.inter_tree = adder_tree(n1, f);
        (void)k2;
    } else {
        // Integer datapaths (scaled INT, VSQ): no exponent logic; exact
        // integer accumulation, optionally with VSQ's integer rescale.
        const int k = is_vsq ? fmt.k2 : cfg_.r;
        const int nblk = std::max(1, r / k);
        a.intra_tree = nblk * adder_tree(k, pw);
        if (is_vsq) {
            // Separate pipeline (Fig 6 caption): per block, the two d2-bit
            // vector scales multiply, and the block sum is rescaled by the
            // 2*d2-bit product before the final accumulation.
            const int block_w = pw + ceil_log2(k);
            a.int_rescale = nblk * (static_cast<double>(fmt.d2) * fmt.d2 *
                                    kFullAdder +
                                    static_cast<double>(block_w) * 2 *
                                        fmt.d2 * kFullAdder);
            a.inter_tree = adder_tree(nblk, std::min(f + 2 * fmt.d2,
                                                     block_w + 2 * fmt.d2));
        } else {
            a.inter_tree = 0; // single full-width tree already counted
        }
    }

    a.fp32_accum = kFp32Accumulate;

    // I/O registers: the two input vectors (element payload incl. the
    // amortized per-element share of hardware scale bits) and the 32-bit
    // output.  The paper registers only inputs and outputs.
    double in_bits = 2.0 * r * fmt.bits_per_element();
    a.io_regs = (in_bits + 32.0) * kRegBit;

    return a;
}

double
AreaModel::area_nand2(const BdrFormat& fmt) const
{
    return breakdown(fmt).total();
}

double
AreaModel::fp8_dual_baseline_nand2() const
{
    // A dual-mode unit shares one datapath sized for the worse of E4M3
    // and E5M2 per stage: mantissa path from E4M3 (m = 3), exponent path
    // from E5M2 (e = 5).  Priced by evaluating a synthetic E5M3 format
    // (the per-stage max) plus a sharing/mode-mux overhead.
    core::BdrFormat worst = core::fp8_e4m3();
    worst.name = "FP8* (dual E4M3/E5M2)";
    worst.e = 5;      // E5M2's exponent path
    worst.m = 3;      // E4M3's mantissa path
    worst.d2 = 5;
    worst.specials = core::FpSpecials::InfAndNan;
    return breakdown(worst).total() * cfg_.dual_mode_overhead;
}

double
AreaModel::normalized_area(const BdrFormat& fmt) const
{
    return area_nand2(fmt) / fp8_dual_baseline_nand2();
}

} // namespace hw
} // namespace mx
