#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/env.h"

namespace mx {
namespace serve {

using tensor::Tensor;

namespace {

double
ms_between(std::chrono::steady_clock::time_point a,
           std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t
ns_between(std::chrono::steady_clock::time_point a,
           std::chrono::steady_clock::time_point b)
{
    const auto d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
            .count();
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

/** EngineStats percentile summary from an engine-owned histogram. */
LatencySummary
summarize(const obs::Histogram& h)
{
    LatencySummary s;
    s.count = h.count();
    s.p50_ms = h.percentile_ms(0.5);
    s.p99_ms = h.percentile_ms(0.99);
    s.p999_ms = h.percentile_ms(0.999);
    s.mean_ms = h.mean() * 1e-6;
    return s;
}

} // namespace

std::size_t
EngineConfig::default_max_batch()
{
    return core::env::size_knob("MX_SERVE_BATCH", 16);
}

std::size_t
EngineConfig::default_queue_capacity()
{
    return core::env::size_knob("MX_SERVE_QUEUE", 256);
}

std::size_t
EngineConfig::default_replicas()
{
    return core::env::size_knob("MX_SERVE_REPLICAS", 1);
}

double
EngineStats::mean_batch_rows() const
{
    if (batches == 0)
        return 0.0;
    // From the histogram, not `requests`: rows still queued have been
    // accepted but not batched yet.
    std::uint64_t rows = 0;
    for (std::size_t b = 0; b < batch_size_hist.size(); ++b)
        rows += batch_size_hist[b] * b;
    return static_cast<double>(rows) / static_cast<double>(batches);
}

namespace {

/** Adapt a sessionless batch function to the session-aware signature
 *  every worker executes. */
InferenceEngine::SessionBatchFn
ignore_sessions(InferenceEngine::BatchFn fn)
{
    return [fn = std::move(fn)](const Tensor& in,
                                const std::vector<std::uint64_t>&) {
        return fn(in);
    };
}

} // namespace

InferenceEngine::InferenceEngine(BatchFn fn, std::int64_t in_dim,
                                 EngineConfig cfg)
    : in_dim_(in_dim)
{
    MX_CHECK_ARG(fn != nullptr, "InferenceEngine: null batch function");
    // One function, every replica: callers declare concurrent safety
    // implicitly by configuring replicas > 1 (frozen mx eval forwards
    // are mutation-free, so this is the common case).
    const SessionBatchFn wrapped = ignore_sessions(std::move(fn));
    start([&wrapped](std::size_t) { return wrapped; }, cfg);
}

InferenceEngine::InferenceEngine(SessionBatchFn fn, std::int64_t in_dim,
                                 EngineConfig cfg)
    : in_dim_(in_dim)
{
    MX_CHECK_ARG(fn != nullptr, "InferenceEngine: null batch function");
    start([&fn](std::size_t) { return fn; }, cfg);
}

InferenceEngine::InferenceEngine(ReplicaFactory make, std::int64_t in_dim,
                                 EngineConfig cfg)
    : in_dim_(in_dim)
{
    MX_CHECK_ARG(make != nullptr, "InferenceEngine: null replica factory");
    start(
        [&make](std::size_t r) {
            BatchFn fn = make(r);
            MX_CHECK_ARG(fn != nullptr,
                         "InferenceEngine: replica factory returned a "
                         "null batch function for replica " << r);
            return ignore_sessions(std::move(fn));
        },
        cfg);
}

void
InferenceEngine::start(
    const std::function<SessionBatchFn(std::size_t)>& make,
    EngineConfig cfg)
{
    MX_CHECK_ARG(in_dim_ >= 1, "InferenceEngine: bad input width");
    cfg_ = cfg;
    if (cfg_.max_batch == 0)
        cfg_.max_batch = EngineConfig::default_max_batch();
    if (cfg_.queue_capacity == 0)
        cfg_.queue_capacity = EngineConfig::default_queue_capacity();
    if (cfg_.replicas == 0)
        cfg_.replicas = EngineConfig::default_replicas();
    if (cfg_.pool == nullptr)
        cfg_.pool = &core::ThreadPool::shared();
    stats_.batch_size_hist.assign(cfg_.max_batch + 1, 0);
    stats_.replicas = cfg_.replicas;

    // Fully populate the per-replica functions BEFORE any worker
    // spawns: worker_loop reads replica_fns_ unsynchronized.
    replica_fns_.reserve(cfg_.replicas);
    for (std::size_t r = 0; r < cfg_.replicas; ++r)
        replica_fns_.push_back(make(r));

    workers_.reserve(cfg_.replicas);
    for (std::size_t r = 0; r < cfg_.replicas; ++r)
        workers_.emplace_back([this, r] { worker_loop(r); });
}

InferenceEngine::~InferenceEngine()
{
    {
        core::UniqueLock lk(mu_);
        stop_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
        // Submitters blocked on back-pressure wake, observe stop_, and
        // throw EngineShutdownError; wait them out so none still
        // touches the engine when the members are torn down.
        while (active_submits_ != 0)
            lk.wait(submitters_done_);
    }
    // Workers drain every accepted request before exiting.
    for (std::thread& t : workers_)
        t.join();
}

std::future<Reply>
InferenceEngine::submit(std::vector<float> row, std::uint64_t session)
{
    MX_CHECK_ARG(static_cast<std::int64_t>(row.size()) == in_dim_,
                 "InferenceEngine: request row has " << row.size()
                     << " features, engine expects " << in_dim_);
    core::UniqueLock lk(mu_);
    if (stop_)
        throw EngineShutdownError(
            "InferenceEngine: submit() after shutdown — the engine's "
            "destructor already ran; no new requests are accepted");
    ++active_submits_;
    while (queue_.size() >= cfg_.queue_capacity && !stop_)
        lk.wait(not_full_);
    if (stop_) {
        if (--active_submits_ == 0)
            submitters_done_.notify_all();
        throw EngineShutdownError(
            "InferenceEngine: engine shut down while this request "
            "waited for queue space; it was never accepted (requests "
            "accepted before shutdown still drain)");
    }
    Pending p;
    p.row = std::move(row);
    p.session = session;
    p.enqueued = std::chrono::steady_clock::now();
    std::future<Reply> fut = p.promise.get_future();
    queue_.push_back(std::move(p));
    ++stats_.requests;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    if (--active_submits_ == 0)
        submitters_done_.notify_all();
    not_empty_.notify_one();
    return fut;
}

void
InferenceEngine::drain()
{
    // `busy_workers_` counts replicas that popped a batch and have not
    // finished executing it: with N workers, an empty queue alone does
    // not mean every accepted request completed.
    core::UniqueLock lk(mu_);
    while (!queue_.empty() || busy_workers_ != 0)
        lk.wait(idle_);
}

EngineStats
InferenceEngine::stats() const
{
    EngineStats s;
    {
        core::LockGuard lk(mu_);
        s = stats_;
    }
    // Histogram reads are relaxed-atomic snapshots; taking them outside
    // the mutex keeps stats() off the submit/worker hot path.
    s.queue_wait = summarize(hist_queue_wait_);
    s.request_total = summarize(hist_request_total_);
    s.batch_assemble = summarize(hist_batch_assemble_);
    s.batch_execute = summarize(hist_batch_execute_);
    return s;
}

void
InferenceEngine::worker_loop(std::size_t replica)
{
    char name[32];
    std::snprintf(name, sizeof name, "serve-replica-%zu", replica);
    obs::set_thread_name(name);
    const SessionBatchFn& fn = replica_fns_[replica];
    for (;;) {
        std::vector<Pending> batch;
        {
            core::UniqueLock lk(mu_);
            while (queue_.empty() && !stop_)
                lk.wait(not_empty_);
            if (queue_.empty()) // stop_ set and nothing left to serve
                return;
            ++busy_workers_;
            while (!queue_.empty() && batch.size() < cfg_.max_batch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            ++stats_.batches;
            ++stats_.batch_size_hist[batch.size()];
        }
        not_full_.notify_all();

        execute(fn, batch);

        {
            core::LockGuard lk(mu_);
            --busy_workers_;
        }
        idle_.notify_all();
    }
}

void
InferenceEngine::execute(const SessionBatchFn& fn,
                         std::vector<Pending>& batch)
{
    // Registry mirrors of the per-engine histograms, so MX_METRICS
    // dumps serve latencies without anyone calling stats().
    static obs::Histogram& g_queue =
        obs::histogram("serve.queue_wait_ns");
    static obs::Histogram& g_total =
        obs::histogram("serve.request_total_ns");
    static obs::Histogram& g_assemble =
        obs::histogram("serve.batch_assemble_ns");
    static obs::Histogram& g_execute =
        obs::histogram("serve.batch_execute_ns");

    const std::int64_t rows = static_cast<std::int64_t>(batch.size());
    const auto picked_up = std::chrono::steady_clock::now();

    obs::Span batch_span("serve.batch");
    batch_span.arg("rows", static_cast<double>(rows));

    // Gather request rows [lo, hi) into one contiguous input tensor
    // plus the row-aligned session tags.
    auto gather = [&](std::int64_t lo, std::int64_t hi) {
        Tensor in({hi - lo, in_dim_});
        for (std::int64_t r = lo; r < hi; ++r)
            std::copy(batch[static_cast<std::size_t>(r)].row.begin(),
                      batch[static_cast<std::size_t>(r)].row.end(),
                      in.data() + (r - lo) * in_dim_);
        return in;
    };
    auto gather_sessions = [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::uint64_t> s(static_cast<std::size_t>(hi - lo));
        for (std::int64_t r = lo; r < hi; ++r)
            s[static_cast<std::size_t>(r - lo)] =
                batch[static_cast<std::size_t>(r)].session;
        return s;
    };

    // Shard row-independent batches into contiguous chunks across the
    // pool; chunking cannot change any output row (each row's result
    // depends only on that row), so the reply stream is bit-identical
    // to the single-call execution.  With replicas > 1 the replica is
    // the parallelism unit and sharding needs the explicit opt-in:
    // concurrent parallel_for calls serialize on the pool's run mutex.
    // cfg_.replicas, not workers_.size(): a worker can reach here
    // while the constructor is still emplacing its siblings, and
    // cfg_.replicas is immutable once start() resolved it.
    const bool may_shard =
        cfg_.rows_independent &&
        (cfg_.replicas <= 1 || cfg_.shard_within_replica);
    const std::size_t lanes = cfg_.pool->thread_count();
    const std::size_t n_chunks =
        may_shard && rows > 1 && lanes > 1
            ? std::min<std::size_t>(static_cast<std::size_t>(rows), lanes)
            : 1;

    std::vector<Tensor> outs(n_chunks);
    try {
        // Assemble every chunk's input up front: the copy is cheap
        // relative to the batch function, and splitting the stages
        // gives each its own span + histogram (queue -> assemble ->
        // execute is the taxonomy EngineStats and the trace report).
        std::vector<std::int64_t> starts(n_chunks + 1, 0);
        std::vector<Tensor> ins(n_chunks);
        std::vector<std::vector<std::uint64_t>> sessions(n_chunks);
        {
            obs::Span assemble_span("serve.assemble");
            assemble_span.arg("rows", static_cast<double>(rows));
            const std::int64_t base =
                rows / static_cast<std::int64_t>(n_chunks);
            const std::int64_t rem =
                rows % static_cast<std::int64_t>(n_chunks);
            for (std::size_t c = 0; c < n_chunks; ++c)
                starts[c + 1] = starts[c] + base +
                                (static_cast<std::int64_t>(c) < rem ? 1 : 0);
            for (std::size_t c = 0; c < n_chunks; ++c) {
                ins[c] = gather(starts[c], starts[c + 1]);
                sessions[c] = gather_sessions(starts[c], starts[c + 1]);
            }
        }
        const auto assembled = std::chrono::steady_clock::now();
        const std::uint64_t assemble_ns = ns_between(picked_up, assembled);
        hist_batch_assemble_.record(assemble_ns);
        g_assemble.record(assemble_ns);

        {
            obs::Span exec_span("serve.execute");
            exec_span.arg("rows", static_cast<double>(rows));
            exec_span.arg("chunks", static_cast<double>(n_chunks));
            if (n_chunks == 1) {
                outs[0] = fn(ins[0], sessions[0]);
            } else {
                cfg_.pool->parallel_for(n_chunks, [&](std::size_t c) {
                    outs[c] = fn(ins[c], sessions[c]);
                });
            }
        }
        const std::uint64_t execute_ns =
            ns_between(assembled, std::chrono::steady_clock::now());
        hist_batch_execute_.record(execute_ns);
        g_execute.record(execute_ns);
        std::int64_t out_dim = -1;
        std::int64_t covered = 0;
        for (const Tensor& o : outs) {
            MX_CHECK_ARG(o.ndim() == 2,
                         "InferenceEngine: batch function must return a "
                         "2-d [rows, out] tensor");
            MX_CHECK_ARG(out_dim < 0 || o.dim(1) == out_dim,
                         "InferenceEngine: batch function changed its "
                         "output width mid-batch");
            out_dim = o.dim(1);
            covered += o.dim(0);
        }
        MX_CHECK_ARG(covered == rows,
                     "InferenceEngine: batch function returned "
                         << covered << " rows for a " << rows
                         << "-row batch");

        const auto done = std::chrono::steady_clock::now();
        std::size_t idx = 0;
        for (const Tensor& o : outs) {
            for (std::int64_t r = 0; r < o.dim(0); ++r, ++idx) {
                Pending& p = batch[idx];
                Reply reply;
                reply.output.assign(o.data() + r * out_dim,
                                    o.data() + (r + 1) * out_dim);
                reply.queue_ms = ms_between(p.enqueued, picked_up);
                reply.latency_ms = ms_between(p.enqueued, done);
                reply.batch_rows = batch.size();
                const std::uint64_t queue_ns =
                    ns_between(p.enqueued, picked_up);
                const std::uint64_t total_ns = ns_between(p.enqueued, done);
                hist_queue_wait_.record(queue_ns);
                hist_request_total_.record(total_ns);
                g_queue.record(queue_ns);
                g_total.record(total_ns);
                p.promise.set_value(std::move(reply));
            }
        }
    } catch (...) {
        // Fail the whole batch with the thrown error; the engine keeps
        // serving subsequent batches.
        const std::exception_ptr err = std::current_exception();
        for (Pending& p : batch) {
            try {
                p.promise.set_exception(err);
            } catch (const std::future_error&) {
                // Already completed before the throw; leave it.
            }
        }
    }
}

} // namespace serve
} // namespace mx
