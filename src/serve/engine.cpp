#include "serve/engine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "core/check.h"

namespace mx {
namespace serve {

using tensor::Tensor;

namespace {

std::size_t
env_size(const char* name, std::size_t fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr || v[0] == '\0')
        return fallback;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || parsed == 0)
        return fallback;
    return static_cast<std::size_t>(parsed);
}

double
ms_between(std::chrono::steady_clock::time_point a,
           std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace

std::size_t
EngineConfig::default_max_batch()
{
    return env_size("MX_SERVE_BATCH", 16);
}

std::size_t
EngineConfig::default_queue_capacity()
{
    return env_size("MX_SERVE_QUEUE", 256);
}

double
EngineStats::mean_batch_rows() const
{
    if (batches == 0)
        return 0.0;
    // From the histogram, not `requests`: rows still queued have been
    // accepted but not batched yet.
    std::uint64_t rows = 0;
    for (std::size_t b = 0; b < batch_size_hist.size(); ++b)
        rows += batch_size_hist[b] * b;
    return static_cast<double>(rows) / static_cast<double>(batches);
}

InferenceEngine::InferenceEngine(BatchFn fn, std::int64_t in_dim,
                                 EngineConfig cfg)
    : fn_(std::move(fn)), in_dim_(in_dim), cfg_(cfg)
{
    MX_CHECK_ARG(fn_ != nullptr, "InferenceEngine: null batch function");
    MX_CHECK_ARG(in_dim_ >= 1, "InferenceEngine: bad input width");
    if (cfg_.max_batch == 0)
        cfg_.max_batch = EngineConfig::default_max_batch();
    if (cfg_.queue_capacity == 0)
        cfg_.queue_capacity = EngineConfig::default_queue_capacity();
    if (cfg_.pool == nullptr)
        cfg_.pool = &core::ThreadPool::shared();
    stats_.batch_size_hist.assign(cfg_.max_batch + 1, 0);
    worker_ = std::thread([this] { worker_loop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    worker_.join();
}

std::future<Reply>
InferenceEngine::submit(std::vector<float> row)
{
    MX_CHECK_ARG(static_cast<std::int64_t>(row.size()) == in_dim_,
                 "InferenceEngine: request row has " << row.size()
                     << " features, engine expects " << in_dim_);
    std::unique_lock<std::mutex> lk(mu_);
    MX_CHECK_ARG(!stop_, "InferenceEngine: submit after shutdown");
    not_full_.wait(lk, [this] {
        return queue_.size() < cfg_.queue_capacity || stop_;
    });
    MX_CHECK_ARG(!stop_, "InferenceEngine: shut down while waiting for "
                         "queue space");
    Pending p;
    p.row = std::move(row);
    p.enqueued = std::chrono::steady_clock::now();
    std::future<Reply> fut = p.promise.get_future();
    queue_.push_back(std::move(p));
    ++stats_.requests;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    not_empty_.notify_one();
    return fut;
}

void
InferenceEngine::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

EngineStats
InferenceEngine::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
InferenceEngine::worker_loop()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lk(mu_);
            not_empty_.wait(lk, [this] { return !queue_.empty() || stop_; });
            if (queue_.empty()) // stop_ set and nothing left to serve
                return;
            busy_ = true;
            while (!queue_.empty() && batch.size() < cfg_.max_batch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            ++stats_.batches;
            ++stats_.batch_size_hist[batch.size()];
        }
        not_full_.notify_all();

        execute(batch);

        {
            std::lock_guard<std::mutex> lk(mu_);
            busy_ = false;
        }
        idle_.notify_all();
    }
}

void
InferenceEngine::execute(std::vector<Pending>& batch)
{
    const std::int64_t rows = static_cast<std::int64_t>(batch.size());
    const auto picked_up = std::chrono::steady_clock::now();

    // Gather request rows [lo, hi) into one contiguous input tensor.
    auto gather = [&](std::int64_t lo, std::int64_t hi) {
        Tensor in({hi - lo, in_dim_});
        for (std::int64_t r = lo; r < hi; ++r)
            std::copy(batch[static_cast<std::size_t>(r)].row.begin(),
                      batch[static_cast<std::size_t>(r)].row.end(),
                      in.data() + (r - lo) * in_dim_);
        return in;
    };

    // Shard row-independent batches into contiguous chunks across the
    // pool; chunking cannot change any output row (each row's result
    // depends only on that row), so the reply stream is bit-identical
    // to the single-call execution.
    const std::size_t lanes = cfg_.pool->thread_count();
    const std::size_t n_chunks =
        cfg_.rows_independent && rows > 1 && lanes > 1
            ? std::min<std::size_t>(static_cast<std::size_t>(rows), lanes)
            : 1;

    std::vector<Tensor> outs(n_chunks);
    try {
        if (n_chunks == 1) {
            outs[0] = fn_(gather(0, rows));
        } else {
            const std::int64_t base = rows / static_cast<std::int64_t>(
                                                 n_chunks);
            const std::int64_t rem = rows % static_cast<std::int64_t>(
                                                n_chunks);
            std::vector<std::int64_t> starts(n_chunks + 1, 0);
            for (std::size_t c = 0; c < n_chunks; ++c)
                starts[c + 1] = starts[c] + base +
                                (static_cast<std::int64_t>(c) < rem ? 1 : 0);
            cfg_.pool->parallel_for(n_chunks, [&](std::size_t c) {
                outs[c] = fn_(gather(starts[c], starts[c + 1]));
            });
        }
        std::int64_t out_dim = -1;
        std::int64_t covered = 0;
        for (const Tensor& o : outs) {
            MX_CHECK_ARG(o.ndim() == 2,
                         "InferenceEngine: batch function must return a "
                         "2-d [rows, out] tensor");
            MX_CHECK_ARG(out_dim < 0 || o.dim(1) == out_dim,
                         "InferenceEngine: batch function changed its "
                         "output width mid-batch");
            out_dim = o.dim(1);
            covered += o.dim(0);
        }
        MX_CHECK_ARG(covered == rows,
                     "InferenceEngine: batch function returned "
                         << covered << " rows for a " << rows
                         << "-row batch");

        const auto done = std::chrono::steady_clock::now();
        std::size_t idx = 0;
        for (const Tensor& o : outs) {
            for (std::int64_t r = 0; r < o.dim(0); ++r, ++idx) {
                Pending& p = batch[idx];
                Reply reply;
                reply.output.assign(o.data() + r * out_dim,
                                    o.data() + (r + 1) * out_dim);
                reply.queue_ms = ms_between(p.enqueued, picked_up);
                reply.latency_ms = ms_between(p.enqueued, done);
                reply.batch_rows = batch.size();
                p.promise.set_value(std::move(reply));
            }
        }
    } catch (...) {
        // Fail the whole batch with the thrown error; the engine keeps
        // serving subsequent batches.
        const std::exception_ptr err = std::current_exception();
        for (Pending& p : batch) {
            try {
                p.promise.set_exception(err);
            } catch (const std::future_error&) {
                // Already completed before the throw; leave it.
            }
        }
    }
}

} // namespace serve
} // namespace mx
