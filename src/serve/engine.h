#pragma once

/**
 * @file
 * mx_serve: a batched quantized-inference engine.
 *
 * The deployment half of the freeze-and-serve split (nn/frozen.h): a
 * model is frozen once — weights quantized, snapshotted, and packed —
 * and an InferenceEngine then serves single-row requests against it.
 * Frozen weight matmuls inside the batch function execute in the
 * packed domain (gemm/packed_gemm.h) when the routing policy engages
 * it, so engine batches never touch a dequantized FP32 weight copy on
 * the SIMD leg.  The
 * engine owns a bounded request queue and a micro-batcher: a worker
 * drains up to `max_batch` queued requests at a time, coalesces their
 * rows into one [B, in] tensor, executes the batch (sharded across
 * core::ThreadPool when the model declares its rows independent), and
 * completes each request's future with its output row plus queue/total
 * latency and the batch size it rode in.
 *
 * Determinism contract: because every layer's eval forward is
 * row-independent and deterministic, a request's output is bit-identical
 * no matter how the batcher coalesces it — alone, with 7 strangers, or
 * sharded across lanes.  tests/test_serve.cpp pins this.
 *
 * Knobs (also per-engine via EngineConfig):
 *   MX_SERVE_BATCH  max rows coalesced per batch      (default 16)
 *   MX_SERVE_QUEUE  bounded queue capacity in rows    (default 256)
 */

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "tensor/tensor.h"

namespace mx {
namespace serve {

/** Engine sizing; zeros resolve from the environment at construction. */
struct EngineConfig
{
    /** Max rows coalesced into one batch (0 = $MX_SERVE_BATCH / 16). */
    std::size_t max_batch = 0;
    /** Bounded queue capacity; submit() blocks when full
     *  (0 = $MX_SERVE_QUEUE / 256). */
    std::size_t queue_capacity = 0;
    /**
     * Declare that the batch function maps each input row to its output
     * row independently and its eval path is thread-safe (true for all
     * frozen mx models: eval forwards are mutation-free).  The engine
     * then shards large batches across the thread pool.
     */
    bool rows_independent = false;
    /** Pool for sharded execution (nullptr = ThreadPool::shared()). */
    core::ThreadPool* pool = nullptr;

    /** $MX_SERVE_BATCH, or 16. */
    static std::size_t default_max_batch();
    /** $MX_SERVE_QUEUE, or 256. */
    static std::size_t default_queue_capacity();
};

/** One completed request. */
struct Reply
{
    std::vector<float> output; ///< The request's output row.
    double queue_ms = 0;       ///< Enqueue -> batch pickup.
    double latency_ms = 0;     ///< Enqueue -> completion.
    std::size_t batch_rows = 0; ///< Size of the coalesced batch.
};

/** Aggregate counters (snapshot via InferenceEngine::stats()). */
struct EngineStats
{
    std::uint64_t requests = 0; ///< Rows accepted by submit().
    std::uint64_t batches = 0;  ///< Batches executed.
    std::size_t max_queue_depth = 0; ///< High-water mark of the queue.
    /** batch_size_hist[b] = batches that coalesced exactly b rows
     *  (index 0 unused; size = max_batch + 1). */
    std::vector<std::uint64_t> batch_size_hist;

    /** Mean coalesced batch size. */
    double mean_batch_rows() const;
};

/**
 * Serves single-row requests against one frozen model, coalescing them
 * into batches.  One worker thread owns the model (models are not
 * re-entrant across batches); within a batch, execution shards across
 * the thread pool when the config declares rows independent.
 */
class InferenceEngine
{
  public:
    /** Batch executor: [B, in] -> [B, out] (rows aligned). */
    using BatchFn = std::function<tensor::Tensor(const tensor::Tensor&)>;

    /**
     * @param fn     the frozen model's batched eval forward
     * @param in_dim request row width
     * @param cfg    sizing knobs (zeros resolve from the environment)
     */
    InferenceEngine(BatchFn fn, std::int64_t in_dim, EngineConfig cfg = {});

    /** Drains already-accepted requests, then joins the worker. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine&) = delete;
    InferenceEngine& operator=(const InferenceEngine&) = delete;

    /**
     * Enqueue one request row; blocks while the queue is at capacity
     * (back-pressure).  The future completes when its batch executes;
     * it carries the batch function's exception if one was thrown.
     */
    std::future<Reply> submit(std::vector<float> row);

    /** Block until every accepted request has completed. */
    void drain();

    /** Counter snapshot. */
    EngineStats stats() const;

    std::int64_t in_dim() const { return in_dim_; }
    std::size_t max_batch() const { return cfg_.max_batch; }
    std::size_t queue_capacity() const { return cfg_.queue_capacity; }

  private:
    struct Pending
    {
        std::vector<float> row;
        std::promise<Reply> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void worker_loop();
    void execute(std::vector<Pending>& batch);

    BatchFn fn_;
    std::int64_t in_dim_;
    EngineConfig cfg_;

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::condition_variable idle_;
    std::deque<Pending> queue_;
    bool stop_ = false;
    bool busy_ = false;
    EngineStats stats_;

    std::thread worker_;
};

} // namespace serve
} // namespace mx
