#pragma once

/**
 * @file
 * mx_serve: a replicated, batched quantized-inference engine.
 *
 * The deployment half of the freeze-and-serve split (nn/frozen.h): a
 * model is frozen once — weights quantized, snapshotted, and packed —
 * and an InferenceEngine then serves single-row requests against it.
 * Frozen weight matmuls inside the batch function execute in the
 * packed domain (gemm/packed_gemm.h) when the routing policy engages
 * it, so engine batches never touch a dequantized FP32 weight copy on
 * the SIMD leg.
 *
 * The engine owns a bounded request queue, a micro-batcher, and N
 * replica workers: each worker drains up to `max_batch` queued
 * requests at a time, coalesces their rows into one [B, in] tensor,
 * executes the batch against its replica's batch function, and
 * completes each request's future with its output row plus queue/total
 * latency and the batch size it rode in.  Replicas are the scaling
 * unit past one core: freezing is cheap and FrozenTensor snapshots are
 * immutable shared handles (nn/frozen.h), so a per-replica model clone
 * shares the packed weight artifacts and owns only its eval scratch —
 * and since every frozen mx model's eval forward is mutation-free, the
 * common case is all replicas sharing one model outright (the
 * single-BatchFn constructor).  Use the ReplicaFactory constructor
 * when the batch function is NOT safe to call concurrently.
 *
 * Sharding policy: with one replica, a `rows_independent` batch is
 * sharded across core::ThreadPool as before.  With replicas > 1 the
 * replica is the parallelism unit and per-batch pool sharding defaults
 * OFF — concurrent workers would only serialize on the pool's run
 * mutex — unless `shard_within_replica` explicitly opts back in.
 *
 * Determinism contract: because every layer's eval forward is
 * row-independent and deterministic, a request's output is bit-identical
 * no matter how the batcher coalesces it or which replica executes it —
 * alone, with 7 strangers, sharded across lanes, or on worker 3 of 4.
 * tests/test_serve.cpp pins this.
 *
 * Shutdown contract: the destructor stops accepting work, wakes every
 * submitter blocked on back-pressure (they observe EngineShutdownError,
 * a distinct type so callers can tell "engine shut down" from "bad
 * request"), drains every already-accepted request, then joins the
 * workers.
 *
 * Decode sessions: submit(row, session) tags a request with a stream
 * id; a session-aware batch function receives the tags row-aligned and
 * can reuse per-stream state across requests (serve/session_cache.h —
 * the decode prefix cache).
 *
 * Knobs (also per-engine via EngineConfig):
 *   MX_SERVE_BATCH     max rows coalesced per batch      (default 16)
 *   MX_SERVE_QUEUE     bounded queue capacity in rows    (default 256)
 *   MX_SERVE_REPLICAS  replica worker count              (default 1)
 */

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/tensor.h"

namespace mx {
namespace serve {

/**
 * Thrown by submit() when the engine is shutting down: either the call
 * arrived after the destructor started, or the caller was blocked on
 * back-pressure when the destructor ran.  Distinct from ArgumentError
 * so callers can tell a lifecycle race from a malformed request.
 * Requests accepted *before* shutdown still drain and complete.
 */
class EngineShutdownError : public Error
{
  public:
    explicit EngineShutdownError(const std::string& what) : Error(what) {}
};

/** Engine sizing; zeros resolve from the environment at construction. */
struct EngineConfig
{
    /** Max rows coalesced into one batch (0 = $MX_SERVE_BATCH / 16). */
    std::size_t max_batch = 0;
    /** Bounded queue capacity; submit() blocks when full
     *  (0 = $MX_SERVE_QUEUE / 256). */
    std::size_t queue_capacity = 0;
    /** Replica worker count (0 = $MX_SERVE_REPLICAS / 1).  Every
     *  replica pulls batches from the one bounded queue. */
    std::size_t replicas = 0;
    /**
     * Declare that the batch function maps each input row to its output
     * row independently and its eval path is thread-safe (true for all
     * frozen mx models: eval forwards are mutation-free).  A
     * single-replica engine then shards large batches across the
     * thread pool.
     */
    bool rows_independent = false;
    /**
     * Opt-in: keep per-batch pool sharding even with replicas > 1.
     * Off by default because N workers calling
     * ThreadPool::parallel_for concurrently serialize on the pool's
     * run mutex — the replica is the parallelism unit.
     */
    bool shard_within_replica = false;
    /** Pool for sharded execution (nullptr = ThreadPool::shared()). */
    core::ThreadPool* pool = nullptr;

    /** $MX_SERVE_BATCH, or 16. */
    static std::size_t default_max_batch();
    /** $MX_SERVE_QUEUE, or 256. */
    static std::size_t default_queue_capacity();
    /** $MX_SERVE_REPLICAS, or 1. */
    static std::size_t default_replicas();
};

/** One completed request. */
struct Reply
{
    std::vector<float> output; ///< The request's output row.
    double queue_ms = 0;       ///< Enqueue -> batch pickup.
    double latency_ms = 0;     ///< Enqueue -> completion.
    std::size_t batch_rows = 0; ///< Size of the coalesced batch.
};

/** Percentile snapshot of one latency distribution, extracted from an
 *  obs::Histogram (log-bucketed: <= 1/32 relative bucket width). */
struct LatencySummary
{
    std::uint64_t count = 0; ///< Samples recorded so far.
    double p50_ms = 0;
    double p99_ms = 0;
    double p999_ms = 0;
    double mean_ms = 0;
};

/** Aggregate counters (snapshot via InferenceEngine::stats()).  The
 *  scalar counters are maintained under the one queue mutex, so they
 *  stay race-free and mutually consistent with any replica count:
 *  after drain(), the histogram's row total equals `requests` exactly.
 *  The latency summaries come from always-on obs::Histograms recorded
 *  outside the mutex; after drain() their counts match too. */
struct EngineStats
{
    std::uint64_t requests = 0; ///< Rows accepted by submit().
    std::uint64_t batches = 0;  ///< Batches executed (all replicas).
    std::size_t max_queue_depth = 0; ///< High-water mark of the queue.
    std::size_t replicas = 0;   ///< Replica worker count serving them.
    /** batch_size_hist[b] = batches that coalesced exactly b rows
     *  (index 0 unused; size = max_batch + 1). */
    std::vector<std::uint64_t> batch_size_hist;

    /** Per request: enqueue -> batch pickup. */
    LatencySummary queue_wait;
    /** Per request: enqueue -> reply completion. */
    LatencySummary request_total;
    /** Per batch: gathering rows + session tags into the input tensor. */
    LatencySummary batch_assemble;
    /** Per batch: the replica's batch-function execution. */
    LatencySummary batch_execute;

    /** Mean coalesced batch size. */
    double mean_batch_rows() const;
};

/**
 * Serves single-row requests against a frozen model, coalescing them
 * into batches across N replica workers.  Each worker owns one batch
 * function; within a batch, execution shards across the thread pool
 * when the sharding policy (see file header) allows it.
 */
class InferenceEngine
{
  public:
    /** Batch executor: [B, in] -> [B, out] (rows aligned). */
    using BatchFn = std::function<tensor::Tensor(const tensor::Tensor&)>;
    /** Session-aware batch executor: the second argument carries one
     *  session id per input row (0 = sessionless), row-aligned. */
    using SessionBatchFn = std::function<tensor::Tensor(
        const tensor::Tensor&, const std::vector<std::uint64_t>&)>;
    /** Builds replica @p r's batch function (a model clone's forward;
     *  FrozenTensor handles make the clone share packed weights). */
    using ReplicaFactory = std::function<BatchFn(std::size_t r)>;

    /**
     * Every replica serves @p fn.  With replicas > 1 the function must
     * be safe to call concurrently (true for frozen mx model eval
     * forwards); otherwise use the ReplicaFactory constructor.
     *
     * @param fn     the frozen model's batched eval forward
     * @param in_dim request row width
     * @param cfg    sizing knobs (zeros resolve from the environment)
     */
    InferenceEngine(BatchFn fn, std::int64_t in_dim, EngineConfig cfg = {});

    /** Session-aware variant of the shared-function constructor. */
    InferenceEngine(SessionBatchFn fn, std::int64_t in_dim,
                    EngineConfig cfg = {});

    /** Per-replica batch functions: @p make(r) is called once per
     *  replica at construction, so each worker can own an independent
     *  clone of the model's mutable eval state. */
    InferenceEngine(ReplicaFactory make, std::int64_t in_dim,
                    EngineConfig cfg = {});

    /**
     * Rejects blocked/late submitters with EngineShutdownError, drains
     * already-accepted requests, then joins the workers.
     */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine&) = delete;
    InferenceEngine& operator=(const InferenceEngine&) = delete;

    /**
     * Enqueue one request row; blocks while the queue is at capacity
     * (back-pressure).  The future completes when its batch executes;
     * it carries the batch function's exception if one was thrown.
     * Throws EngineShutdownError if the engine is destroyed while the
     * call waits for queue space (accepted requests still drain).
     *
     * @param session optional decode-stream id forwarded row-aligned
     *        to a session-aware batch function (0 = sessionless)
     */
    std::future<Reply> submit(std::vector<float> row,
                              std::uint64_t session = 0);

    /** Block until every accepted request has completed — the queue is
     *  empty AND no replica still holds an unexecuted batch. */
    void drain();

    /** Counter snapshot, including histogram-backed queue-wait /
     *  total-latency / per-stage percentiles (see EngineStats). */
    EngineStats stats() const;

    std::int64_t in_dim() const { return in_dim_; }
    std::size_t max_batch() const { return cfg_.max_batch; }
    std::size_t queue_capacity() const { return cfg_.queue_capacity; }
    std::size_t replicas() const { return workers_.size(); }

  private:
    struct Pending
    {
        std::vector<float> row;
        std::uint64_t session = 0;
        std::promise<Reply> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void start(const std::function<SessionBatchFn(std::size_t)>& make,
               EngineConfig cfg);
    void worker_loop(std::size_t replica);
    void execute(const SessionBatchFn& fn, std::vector<Pending>& batch);

    std::int64_t in_dim_;
    EngineConfig cfg_;
    std::vector<SessionBatchFn> replica_fns_;

    mutable core::Mutex mu_; ///< The one queue mutex (see EngineStats).
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::condition_variable idle_;
    std::condition_variable submitters_done_;
    std::deque<Pending> queue_ MX_GUARDED_BY(mu_);
    bool stop_ MX_GUARDED_BY(mu_) = false;
    /// Replicas holding a popped batch.
    std::size_t busy_workers_ MX_GUARDED_BY(mu_) = 0;
    /// submit() calls in flight.
    std::size_t active_submits_ MX_GUARDED_BY(mu_) = 0;
    EngineStats stats_ MX_GUARDED_BY(mu_);

    // Per-engine latency histograms (nanoseconds), recorded in
    // execute() OUTSIDE the queue mutex — obs histograms are
    // relaxed-atomic, so replicas never serialize on telemetry.
    obs::Histogram hist_queue_wait_;
    obs::Histogram hist_request_total_;
    obs::Histogram hist_batch_assemble_;
    obs::Histogram hist_batch_execute_;

    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace mx
