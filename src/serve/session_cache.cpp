#include "serve/session_cache.h"

#include "core/env.h"
#include "obs/obs.h"

namespace mx {
namespace serve {

namespace {

// Registry mirrors of the per-cache Stats: process-wide totals so the
// MX_METRICS dump (and the trace's counter events) show session-cache
// behaviour without anyone calling stats().
obs::Counter&
hits_counter()
{
    static obs::Counter& c = obs::counter("session.hits");
    return c;
}

obs::Counter&
misses_counter()
{
    static obs::Counter& c = obs::counter("session.misses");
    return c;
}

obs::Counter&
evictions_counter()
{
    static obs::Counter& c = obs::counter("session.evictions");
    return c;
}

obs::Counter&
evicted_bytes_counter()
{
    static obs::Counter& c = obs::counter("session.evicted_bytes");
    return c;
}

obs::Gauge&
resident_gauge()
{
    static obs::Gauge& g = obs::gauge("session.resident_bytes");
    return g;
}

} // namespace

SessionCache::SessionCache(std::size_t capacity)
    : capacity_(capacity == kFromEnvironment ? default_capacity()
                                             : capacity)
{
}

std::size_t
SessionCache::default_capacity()
{
    // min_value 0: MX_SERVE_SESSIONS=0 is the documented off switch.
    return core::env::size_knob("MX_SERVE_SESSIONS", 64, /*min_value=*/0);
}

std::size_t
SessionCache::size() const
{
    core::LockGuard lk(mu_);
    return lru_.size();
}

std::shared_ptr<void>
SessionCache::take_erased(std::uint64_t id)
{
    core::LockGuard lk(mu_);
    auto it = index_.find(id);
    if (it == index_.end()) {
        ++stats_.misses;
        misses_counter().add(1);
        return nullptr;
    }
    std::shared_ptr<void> state = std::move(it->second->state);
    stats_.resident_bytes -= it->second->bytes;
    resident_gauge().add(-static_cast<std::int64_t>(it->second->bytes));
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.hits;
    hits_counter().add(1);
    return state;
}

void
SessionCache::put(std::uint64_t id, std::shared_ptr<void> state,
                  std::size_t bytes)
{
    if (state == nullptr)
        return;
    core::LockGuard lk(mu_);
    if (capacity_ == 0)
        return; // disabled: the bit-identical full-recompute fallback
    auto it = index_.find(id);
    if (it != index_.end()) {
        // Same id checked in twice (e.g. a sessionless duplicate):
        // keep the newer state, refresh recency.
        stats_.resident_bytes -= it->second->bytes;
        resident_gauge().add(-static_cast<std::int64_t>(it->second->bytes));
        lru_.erase(it->second);
        index_.erase(it);
    }
    lru_.push_front(LruEntry{id, std::move(state), bytes});
    index_[id] = lru_.begin();
    stats_.resident_bytes += bytes;
    resident_gauge().add(static_cast<std::int64_t>(bytes));
    while (lru_.size() > capacity_) {
        const std::size_t victim_bytes = lru_.back().bytes;
        stats_.resident_bytes -= victim_bytes;
        stats_.evicted_bytes += victim_bytes;
        resident_gauge().add(-static_cast<std::int64_t>(victim_bytes));
        evicted_bytes_counter().add(victim_bytes);
        index_.erase(lru_.back().id);
        lru_.pop_back();
        ++stats_.evictions;
        evictions_counter().add(1);
    }
}

void
SessionCache::erase(std::uint64_t id)
{
    core::LockGuard lk(mu_);
    auto it = index_.find(id);
    if (it == index_.end())
        return;
    stats_.resident_bytes -= it->second->bytes;
    resident_gauge().add(-static_cast<std::int64_t>(it->second->bytes));
    lru_.erase(it->second);
    index_.erase(it);
}

SessionCache::Stats
SessionCache::stats() const
{
    core::LockGuard lk(mu_);
    return stats_;
}

} // namespace serve
} // namespace mx
