#pragma once

/**
 * @file
 * serve::SessionCache — per-stream decode state with an LRU bound.
 *
 * The packed-domain analog of a KV cache's bookkeeping: greedy decode
 * resubmits nearly the same token window every step, so a
 * `GptMini::decode_logits`-style adapter can cache the per-layer
 * attention projections of the unchanged window prefix (the session
 * state) and recompute only the new token's column.  This class owns
 * the "per stream" part: a thread-safe map from the caller's session
 * id to an opaque state blob, bounded by an LRU policy so a serving
 * process never accumulates one state per stream it has ever seen.
 *
 * Checkout semantics: take() *removes* the state from the cache and
 * put() re-inserts it after the step.  A second request for the same
 * session arriving while the first is in flight (abnormal for decode,
 * possible under replicas) simply misses and recomputes from scratch —
 * session state is never mutated concurrently, and a miss is always
 * correct because prefix reuse is bit-identical to full recompute.
 *
 * Disabled (capacity 0, e.g. MX_SERVE_SESSIONS=0): take() always
 * misses and put() drops the state, so every request takes the full
 * recompute path — the bit-identical fallback.
 *
 * Knobs:
 *   MX_SERVE_SESSIONS  LRU capacity in sessions (default 64; 0 = off)
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/thread_annotations.h"

namespace mx {
namespace serve {

/** Bounded, thread-safe session-state store (LRU eviction). */
class SessionCache
{
  public:
    /** @param capacity max resident sessions; 0 disables the cache
     *        (the std::size_t max default resolves the environment) */
    explicit SessionCache(std::size_t capacity = kFromEnvironment);

    /** $MX_SERVE_SESSIONS, or 64 (0 disables). */
    static std::size_t default_capacity();

    /** False when constructed with capacity 0: every take() misses. */
    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }

    /** Resident session count. */
    std::size_t size() const;

    /**
     * Check the state for @p id out of the cache (removes it); null on
     * a miss.  The caller mutates it privately, then put()s it back.
     */
    template <typename State>
    std::shared_ptr<State>
    take(std::uint64_t id)
    {
        return std::static_pointer_cast<State>(take_erased(id));
    }

    /** Check @p state in as the freshest session; evicts the
     *  least-recently-used session past capacity.  No-op when
     *  disabled.  @p bytes is the state's heap footprint as reported
     *  by the caller (e.g. models::decode_session_bytes) — it feeds
     *  the resident/evicted byte counters, the capacity-planning
     *  numbers the serve bench reports. */
    void put(std::uint64_t id, std::shared_ptr<void> state,
             std::size_t bytes = 0);

    /** Drop one session (e.g. the stream ended). */
    void erase(std::uint64_t id);

    /** Observability counters (snapshot). */
    struct Stats
    {
        std::uint64_t hits = 0;      ///< take() found a state.
        std::uint64_t misses = 0;    ///< take() came back empty.
        std::uint64_t evictions = 0; ///< States dropped by the LRU bound.
        /// Caller-reported bytes of the currently resident sessions.
        std::uint64_t resident_bytes = 0;
        /// Cumulative caller-reported bytes dropped by the LRU bound.
        std::uint64_t evicted_bytes = 0;
    };
    Stats stats() const;

  private:
    /** Sentinel: resolve default_capacity() at construction. */
    static constexpr std::size_t kFromEnvironment =
        static_cast<std::size_t>(-1);

    std::shared_ptr<void> take_erased(std::uint64_t id);

    struct LruEntry
    {
        std::uint64_t id = 0;
        std::shared_ptr<void> state;
        std::size_t bytes = 0;
    };

    mutable core::Mutex mu_;
    std::size_t capacity_; ///< Immutable after construction.
    /// Front = most recently used.
    std::list<LruEntry> lru_ MX_GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, std::list<LruEntry>::iterator>
        index_ MX_GUARDED_BY(mu_);
    Stats stats_ MX_GUARDED_BY(mu_);
};

} // namespace serve
} // namespace mx
