#include "nn/linear.h"

#include <cmath>

#include "core/check.h"
#include "gemm/packed_gemm.h"

namespace mx {
namespace nn {

using tensor::Tensor;

Linear::Linear(std::int64_t in, std::int64_t out, QuantSpec spec,
               stats::Rng& rng, bool with_bias)
    : in_(in), out_(out), spec_(std::move(spec)), with_bias_(with_bias)
{
    MX_CHECK_ARG(in >= 1 && out >= 1, "Linear: bad dimensions");
    float bound = 1.0f / std::sqrt(static_cast<float>(in));
    weight_ = Param("linear.weight",
                    Tensor::rand_uniform({out, in}, rng, bound));
    if (with_bias_)
        bias_ = Param("linear.bias",
                      Tensor::rand_uniform({out}, rng, bound));
}

Tensor
Linear::forward(const Tensor& x, bool train)
{
    MX_CHECK_ARG(x.ndim() == 2 && x.dim(1) == in_,
                 "Linear: input " << x.shape_string() << " expects [*, "
                                  << in_ << "]");
    if (frozen()) {
        MX_CHECK_ARG(!train, "Linear: frozen layers serve eval-mode "
                             "forwards only; unfreeze() to train");
        Tensor y = frozen_matmul(x);
        if (with_bias_)
            y = tensor::add_row_bias(y, bias_.value);
        return y;
    }
    if (train)
        cached_input_ = x;
    // Y = Q(X along K) Q(W along K)^T: both row dims are the reduction.
    Tensor y = qmatmul_nt2(x, spec_.forward, weight_.value,
                           spec_.weight_format(), spec_.rounding);
    if (with_bias_)
        y = tensor::add_row_bias(y, bias_.value);
    return y;
}

bool
Linear::packed_pairable() const
{
    // The packed path needs a gemm-ready weight view and an activation
    // format from the pow2 block family that pairs with it.
    if (!frozen_weight_.gemm_operand().has_value() ||
        !spec_.forward.has_value() ||
        spec_.forward->s_kind != core::ScaleKind::Pow2Hw ||
        spec_.forward->elem != core::ElementKind::SignMagnitude)
        return false;
    return gemm::gemm_compatible(
        core::kernels::make_quant_plan(*spec_.forward),
        frozen_weight_.gemm_operand()->plan());
}

Tensor
Linear::frozen_matmul(const Tensor& x) const
{
    // Packed-domain path (Figure 6): when the activation format pairs
    // with the snapshot's gemm-ready view and the routing policy picks
    // it (MX_GEMM — packed when a SIMD kernel is active or the FP32
    // values were dropped), the weight matmul runs on the MX bit
    // stream's integer mantissas — no dequantized FP32 weight copy is
    // touched or allocated.
    const bool packed_only = frozen_weight_.values().numel() == 0;
    if (packed_pairable() && gemm::route_packed(packed_only))
        return gemm::matmul_nt_packed(
            x, core::kernels::make_quant_plan(*spec_.forward),
            *frozen_weight_.gemm_operand(), spec_.rounding);
    // Dequantized-values fallback: Q(W) from the freeze-time grid
    // tensor; only the activations are quantized per call —
    // bit-identical to the fake-quant path because quantize_rows is
    // deterministic.
    MX_CHECK_ARG(frozen_weight_.values().numel() > 0,
                 "Linear: frozen values were dropped and the packed "
                 "GEMM path is unavailable (MX_GEMM=0, or the spec "
                 "changed to an activation format that cannot pair "
                 "with the packed weight)");
    return spec_.forward
        ? tensor::matmul_nt(quantize_rows(x, *spec_.forward,
                                          spec_.rounding),
                            frozen_weight_.values())
        : tensor::matmul_nt(x, frozen_weight_.values());
}

bool
Linear::packed_activation_ready() const
{
    return frozen() && packed_pairable() &&
           gemm::route_packed(frozen_weight_.values().numel() == 0);
}

Tensor
Linear::forward_packed_activation(const gemm::PackedOperand& xq)
{
    MX_CHECK_ARG(frozen() && packed_pairable(),
                 "Linear: forward_packed_activation needs a frozen "
                 "layer whose weight pairs with the activation format");
    MX_CHECK_ARG(xq.cols() == static_cast<std::size_t>(in_),
                 "Linear: packed activation is " << xq.cols()
                     << " wide, layer expects " << in_);
    const gemm::GemmPlan plan = gemm::make_gemm_plan(
        xq.plan(), frozen_weight_.gemm_operand()->plan());
    Tensor y = gemm::matmul_nt_prequant(plan, xq,
                                        *frozen_weight_.gemm_operand());
    if (with_bias_)
        y = tensor::add_row_bias(y, bias_.value);
    return y;
}

void
Linear::drop_frozen_values()
{
    MX_CHECK_ARG(frozen(), "Linear: drop_frozen_values() needs freeze()");
    // Without a pairable activation format the packed path could never
    // engage and dropping the grid tensor would brick every future
    // forward — reject up front instead.
    MX_CHECK_ARG(packed_pairable(),
                 "Linear: drop_frozen_values() needs a spec the packed "
                 "GEMM can serve (pow2-block activation format pairing "
                 "with the packed weight)");
    frozen_weight_.drop_values();
}

void
Linear::freeze()
{
    frozen_weight_ = FrozenTensor::build(weight_.value,
                                         spec_.weight_format(),
                                         spec_.rounding);
}

void
Linear::freeze(const QuantSpec& spec)
{
    spec_ = spec;
    freeze();
}

void
Linear::unfreeze()
{
    frozen_weight_ = FrozenTensor();
}

Tensor
Linear::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(cached_input_.numel() > 0,
                 "Linear: backward before forward(train=true)");
    MX_CHECK_ARG(grad_out.ndim() == 2 && grad_out.dim(1) == out_,
                 "Linear: grad shape mismatch");

    // dX[B, in] = E[B, out] * W[out, in]: reduce over `out`.
    // Per Figure 8 the weight is transposed *before* quantization.
    Tensor w_t = tensor::transpose2d(weight_.value); // [in, out]
    Tensor dx = qmatmul_nt(grad_out, w_t, spec_.backward, spec_.rounding);

    // dW[out, in] = E^T[out, B] * X[B, in]: reduce over the batch.
    Tensor e_t = tensor::transpose2d(grad_out);          // [out, B]
    Tensor x_t = tensor::transpose2d(cached_input_);     // [in, B]
    Tensor dw = qmatmul_nt(e_t, x_t, spec_.backward, spec_.rounding);
    tensor::axpy(weight_.grad, 1.0f, dw);

    if (with_bias_) {
        Tensor db = tensor::sum_rows(grad_out);
        tensor::axpy(bias_.grad, 1.0f, db);
    }
    return dx;
}

void
Linear::collect_params(std::vector<Param*>& out)
{
    out.push_back(&weight_);
    if (with_bias_)
        out.push_back(&bias_);
}

void
Linear::collect_state(const std::string& prefix,
                      std::vector<FrozenStateRef>& out)
{
    FrozenStateRef w;
    w.name = prefix + weight_.name;
    w.param = &weight_;
    w.frozen = &frozen_weight_;
    w.spec = &spec_;
    out.push_back(w);
    if (with_bias_) {
        FrozenStateRef b;
        b.name = prefix + bias_.name;
        b.param = &bias_;
        out.push_back(b);
    }
}

} // namespace nn
} // namespace mx
