#include "nn/quant.h"

#include <bit>

#include "core/check.h"
#include "core/kernels/dispatch.h"

namespace mx {
namespace nn {

using tensor::Tensor;

Tensor
quantize_rows(const Tensor& t, const core::BdrFormat& fmt,
              core::RoundingMode rounding)
{
    MX_CHECK_ARG(t.ndim() == 2, "quantize_rows: needs a 2-d tensor");
    Tensor out(t.shape());
    if (fmt.s_kind == core::ScaleKind::Pow2Hw &&
        fmt.elem == core::ElementKind::SignMagnitude) {
        // Plan once per tensor, then execute through the dispatched
        // kernel's row-aware entry point: aligned widths collapse to a
        // single contiguous call, ragged widths run one kernel call per
        // row so each row ends in its own short tail block — both are
        // the kernel fast path (no per-block fallback).
        const core::kernels::QuantPlan plan =
            core::kernels::make_quant_plan(fmt);
        core::Rounder rounder(rounding);
        core::kernels::active_kernel().quantize_rows(
            plan, t.data(), out.data(),
            static_cast<std::size_t>(t.dim(0)),
            static_cast<std::size_t>(t.dim(1)), rounder);
    } else {
        // Per-tensor software scale (INT / FP / VSQ): one JIT scale for
        // the whole tensor, matching per-tensor scaling practice.
        core::Quantizer q(fmt, rounding, core::ScalingPolicy::JustInTime);
        q(t.span(), out.span());
    }
    return out;
}

Tensor
qmatmul_nt(const Tensor& a, const Tensor& b,
           const std::optional<core::BdrFormat>& fmt,
           core::RoundingMode rounding)
{
    return qmatmul_nt2(a, fmt, b, fmt, rounding);
}

Tensor
qmatmul_nt2(const Tensor& a, const std::optional<core::BdrFormat>& fmt_a,
            const Tensor& b, const std::optional<core::BdrFormat>& fmt_b,
            core::RoundingMode rounding)
{
    if (!fmt_a.has_value() && !fmt_b.has_value())
        return tensor::matmul_nt(a, b);
    Tensor qa = fmt_a ? quantize_rows(a, *fmt_a, rounding) : a;
    Tensor qb = fmt_b ? quantize_rows(b, *fmt_b, rounding) : b;
    return tensor::matmul_nt(qa, qb);
}

void
round_bf16_inplace(Tensor& t)
{
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        float& f = t.data()[i];
        std::uint32_t u = std::bit_cast<std::uint32_t>(f);
        // Round-to-nearest-even on the low 16 bits.
        std::uint32_t rounded = u + 0x7fffu + ((u >> 16) & 1u);
        f = std::bit_cast<float>(rounded & 0xffff0000u);
    }
}

Tensor
round_bf16(const Tensor& t)
{
    Tensor out = t;
    round_bf16_inplace(out);
    return out;
}

} // namespace nn
} // namespace mx
