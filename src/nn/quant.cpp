#include "nn/quant.h"

#include <bit>

#include "core/check.h"
#include "core/kernels/dispatch.h"

namespace mx {
namespace nn {

using tensor::Tensor;

Tensor
quantize_rows(const Tensor& t, const core::BdrFormat& fmt,
              core::RoundingMode rounding)
{
    MX_CHECK_ARG(t.ndim() == 2, "quantize_rows: needs a 2-d tensor");
    Tensor out(t.shape());
    if (fmt.s_kind == core::ScaleKind::Pow2Hw &&
        fmt.elem == core::ElementKind::SignMagnitude) {
        // Plan once per tensor, then execute through the dispatched
        // kernel.  When rows are a whole number of k1-blocks, the whole
        // tensor is one contiguous kernel call: blocks cannot straddle
        // a row boundary, so this is exactly the per-row result.
        const core::kernels::QuantPlan plan =
            core::kernels::make_quant_plan(fmt);
        const core::kernels::QuantKernel& kernel =
            core::kernels::active_kernel();
        core::Rounder rounder(rounding);
        const std::int64_t rows = t.dim(0), cols = t.dim(1);
        if (cols % fmt.k1 == 0) {
            kernel.quantize(plan, t.span(), out.span(), rounder);
            return out;
        }
        for (std::int64_t r = 0; r < rows; ++r) {
            std::span<const float> in(t.data() + r * cols,
                                      static_cast<std::size_t>(cols));
            std::span<float> dst(out.data() + r * cols,
                                 static_cast<std::size_t>(cols));
            kernel.quantize(plan, in, dst, rounder);
        }
    } else {
        // Per-tensor software scale (INT / FP / VSQ): one JIT scale for
        // the whole tensor, matching per-tensor scaling practice.
        core::Quantizer q(fmt, rounding, core::ScalingPolicy::JustInTime);
        q(t.span(), out.span());
    }
    return out;
}

Tensor
qmatmul_nt(const Tensor& a, const Tensor& b,
           const std::optional<core::BdrFormat>& fmt,
           core::RoundingMode rounding)
{
    return qmatmul_nt2(a, fmt, b, fmt, rounding);
}

Tensor
qmatmul_nt2(const Tensor& a, const std::optional<core::BdrFormat>& fmt_a,
            const Tensor& b, const std::optional<core::BdrFormat>& fmt_b,
            core::RoundingMode rounding)
{
    if (!fmt_a.has_value() && !fmt_b.has_value())
        return tensor::matmul_nt(a, b);
    Tensor qa = fmt_a ? quantize_rows(a, *fmt_a, rounding) : a;
    Tensor qb = fmt_b ? quantize_rows(b, *fmt_b, rounding) : b;
    return tensor::matmul_nt(qa, qb);
}

void
round_bf16_inplace(Tensor& t)
{
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        float& f = t.data()[i];
        std::uint32_t u = std::bit_cast<std::uint32_t>(f);
        // Round-to-nearest-even on the low 16 bits.
        std::uint32_t rounded = u + 0x7fffu + ((u >> 16) & 1u);
        f = std::bit_cast<float>(rounded & 0xffff0000u);
    }
}

Tensor
round_bf16(const Tensor& t)
{
    Tensor out = t;
    round_bf16_inplace(out);
    return out;
}

} // namespace nn
} // namespace mx
