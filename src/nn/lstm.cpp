#include "nn/lstm.h"

#include <cmath>

#include "core/check.h"

namespace mx {
namespace nn {

using tensor::Tensor;

namespace {

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/** Extract timestep t ([B, D]) from packed [B*T, D]. */
Tensor
slice_step(const Tensor& packed, std::int64_t batch, std::int64_t seq_len,
           std::int64_t t, std::int64_t dim)
{
    Tensor out({batch, dim});
    for (std::int64_t b = 0; b < batch; ++b) {
        const float* src = packed.data() + (b * seq_len + t) * dim;
        std::copy(src, src + dim, out.data() + b * dim);
    }
    return out;
}

/** Add a [B, D] step into packed [B*T, D] at timestep t. */
void
scatter_step(Tensor& packed, const Tensor& step, std::int64_t batch,
             std::int64_t seq_len, std::int64_t t, std::int64_t dim)
{
    for (std::int64_t b = 0; b < batch; ++b) {
        float* dst = packed.data() + (b * seq_len + t) * dim;
        const float* src = step.data() + b * dim;
        for (std::int64_t j = 0; j < dim; ++j)
            dst[j] += src[j];
    }
}

} // namespace

Lstm::Lstm(std::int64_t input_dim, std::int64_t hidden_dim,
           std::int64_t seq_len, QuantSpec spec, stats::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      seq_len_(seq_len),
      spec_(std::move(spec))
{
    float bound = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
    w_ih_ = Param("lstm.w_ih",
                  Tensor::rand_uniform({4 * hidden_dim, input_dim}, rng,
                                       bound));
    w_hh_ = Param("lstm.w_hh",
                  Tensor::rand_uniform({4 * hidden_dim, hidden_dim}, rng,
                                       bound));
    bias_ = Param("lstm.bias", Tensor::zeros({4 * hidden_dim}));
    // Forget-gate bias init at 1 (standard practice for stable training).
    for (std::int64_t j = hidden_dim; j < 2 * hidden_dim; ++j)
        bias_.value.data()[j] = 1.0f;
}

Tensor
Lstm::gate_matmul(const Tensor& a, const Param& w,
                  const FrozenTensor& fz) const
{
    if (frozen())
        return tensor::matmul_nt(
            spec_.forward ? quantize_rows(a, *spec_.forward, spec_.rounding)
                          : a,
            fz.values());
    // The weight operand honours the Table IV (w, a) split, falling
    // back to the shared forward format when none is set.
    return qmatmul_nt2(a, spec_.forward, w.value, spec_.weight_format(),
                       spec_.rounding);
}

void
Lstm::freeze()
{
    frozen_w_ih_ = FrozenTensor::build(w_ih_.value, spec_.weight_format(),
                                       spec_.rounding);
    frozen_w_hh_ = FrozenTensor::build(w_hh_.value, spec_.weight_format(),
                                       spec_.rounding);
}

void
Lstm::freeze(const QuantSpec& spec)
{
    spec_ = spec;
    freeze();
}

void
Lstm::unfreeze()
{
    frozen_w_ih_ = FrozenTensor();
    frozen_w_hh_ = FrozenTensor();
}

LstmState
Lstm::initial_state(std::int64_t batch) const
{
    return {Tensor::zeros({batch, hidden_dim_}),
            Tensor::zeros({batch, hidden_dim_})};
}

Tensor
Lstm::forward_seq(const Tensor& x, LstmState& state, bool train)
{
    MX_CHECK_ARG(x.ndim() == 2 && x.dim(1) == input_dim_ &&
                 x.dim(0) % seq_len_ == 0,
                 "Lstm: input " << x.shape_string());
    const std::int64_t batch = x.dim(0) / seq_len_;
    MX_CHECK_ARG(state.h.dim(0) == batch && state.c.dim(0) == batch,
                 "Lstm: state batch mismatch");
    MX_CHECK_ARG(!(frozen() && train),
                 "Lstm: frozen layers serve eval-mode forwards only; "
                 "unfreeze() to train");
    if (train) {
        cached_batch_ = batch; // eval forwards stay mutation-free
        cache_.assign(static_cast<std::size_t>(seq_len_), StepCache{});
    }

    Tensor out = Tensor::zeros({batch * seq_len_, hidden_dim_});
    const std::int64_t H = hidden_dim_;

    for (std::int64_t t = 0; t < seq_len_; ++t) {
        Tensor xt = slice_step(x, batch, seq_len_, t, input_dim_);
        // Pre-activations: x W_ih^T + h W_hh^T + b, both MX-quantized
        // (weights from the frozen snapshot when one is active).
        Tensor pre = gate_matmul(xt, w_ih_, frozen_w_ih_);
        Tensor hpre = gate_matmul(state.h, w_hh_, frozen_w_hh_);
        tensor::axpy(pre, 1.0f, hpre);
        pre = tensor::add_row_bias(pre, bias_.value);

        Tensor gates({batch, 4 * H});
        Tensor c_new({batch, H});
        Tensor h_new({batch, H});
        for (std::int64_t b = 0; b < batch; ++b) {
            const float* p = pre.data() + b * 4 * H;
            float* g = gates.data() + b * 4 * H;
            for (std::int64_t j = 0; j < H; ++j) {
                float ig = sigmoidf(p[j]);
                float fg = sigmoidf(p[H + j]);
                float gg = std::tanh(p[2 * H + j]);
                float og = sigmoidf(p[3 * H + j]);
                g[j] = ig;
                g[H + j] = fg;
                g[2 * H + j] = gg;
                g[3 * H + j] = og;
                float c = fg * state.c.data()[b * H + j] + ig * gg;
                c_new.data()[b * H + j] = c;
                h_new.data()[b * H + j] = og * std::tanh(c);
            }
        }
        if (train) {
            StepCache& sc = cache_[static_cast<std::size_t>(t)];
            sc.x = xt;
            sc.h_prev = state.h;
            sc.c_prev = state.c;
            sc.gates = gates;
            sc.c = c_new;
        }
        state.c = std::move(c_new);
        state.h = h_new;
        scatter_step(out, h_new, batch, seq_len_, t, H);
    }
    return out;
}

Tensor
Lstm::backward_seq(const Tensor& grad_h_seq, const LstmState& grad_final,
                   LstmState& grad_initial)
{
    MX_CHECK_ARG(!cache_.empty(), "Lstm: backward before forward(train)");
    const std::int64_t batch = cached_batch_;
    const std::int64_t H = hidden_dim_;

    Tensor dx_seq = Tensor::zeros({batch * seq_len_, input_dim_});
    Tensor dh = grad_final.h.numel() ? grad_final.h
                                     : Tensor::zeros({batch, H});
    Tensor dc = grad_final.c.numel() ? grad_final.c
                                     : Tensor::zeros({batch, H});

    for (std::int64_t t = seq_len_ - 1; t >= 0; --t) {
        const StepCache& sc = cache_[static_cast<std::size_t>(t)];
        // Add the per-step output gradient.
        Tensor dht = slice_step(grad_h_seq, batch, seq_len_, t, H);
        tensor::axpy(dh, 1.0f, dht);

        Tensor dpre({batch, 4 * H});
        Tensor dc_prev({batch, H});
        for (std::int64_t b = 0; b < batch; ++b) {
            const float* g = sc.gates.data() + b * 4 * H;
            for (std::int64_t j = 0; j < H; ++j) {
                float ig = g[j], fg = g[H + j], gg = g[2 * H + j],
                      og = g[3 * H + j];
                float c = sc.c.data()[b * H + j];
                float tc = std::tanh(c);
                float dh_ = dh.data()[b * H + j];
                float dc_ = dc.data()[b * H + j] +
                            dh_ * og * (1.0f - tc * tc);
                float dig = dc_ * gg * ig * (1.0f - ig);
                float dfg = dc_ * sc.c_prev.data()[b * H + j] * fg *
                            (1.0f - fg);
                float dgg = dc_ * ig * (1.0f - gg * gg);
                float dog = dh_ * tc * og * (1.0f - og);
                dpre.data()[b * 4 * H + j] = dig;
                dpre.data()[b * 4 * H + H + j] = dfg;
                dpre.data()[b * 4 * H + 2 * H + j] = dgg;
                dpre.data()[b * 4 * H + 3 * H + j] = dog;
                dc_prev.data()[b * H + j] = dc_ * fg;
            }
        }

        // dX = dPre W_ih (reduce 4H); dH_prev = dPre W_hh.
        Tensor wih_t = tensor::transpose2d(w_ih_.value);
        Tensor dxt = qmatmul_nt(dpre, wih_t, spec_.backward,
                                spec_.rounding);
        Tensor whh_t = tensor::transpose2d(w_hh_.value);
        Tensor dh_prev = qmatmul_nt(dpre, whh_t, spec_.backward,
                                    spec_.rounding);

        // dW_ih += dPre^T X; dW_hh += dPre^T H_prev (reduce batch).
        Tensor dpre_t = tensor::transpose2d(dpre);
        Tensor x_t = tensor::transpose2d(sc.x);
        tensor::axpy(w_ih_.grad, 1.0f,
                     qmatmul_nt(dpre_t, x_t, spec_.backward,
                                spec_.rounding));
        Tensor h_t = tensor::transpose2d(sc.h_prev);
        tensor::axpy(w_hh_.grad, 1.0f,
                     qmatmul_nt(dpre_t, h_t, spec_.backward,
                                spec_.rounding));
        tensor::axpy(bias_.grad, 1.0f, tensor::sum_rows(dpre));

        scatter_step(dx_seq, dxt, batch, seq_len_, t, input_dim_);
        dh = std::move(dh_prev);
        dc = std::move(dc_prev);
    }
    grad_initial.h = std::move(dh);
    grad_initial.c = std::move(dc);
    return dx_seq;
}

void
Lstm::collect_params(std::vector<Param*>& out)
{
    out.push_back(&w_ih_);
    out.push_back(&w_hh_);
    out.push_back(&bias_);
}

} // namespace nn
} // namespace mx
