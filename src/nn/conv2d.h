#pragma once

/**
 * @file
 * 2-d convolution lowered to an MX-quantized matmul via im2col.
 *
 * The paper performs convolutions in MX during both passes (Section V:
 * "tensor reduction operations, such as matrix multiplications and
 * convolutions, are performed in MX"); lowering to im2col makes the
 * reduction dimension (C * k * k) contiguous so quantize-along-reduction
 * is the same row quantization used by Linear.
 */

#include "nn/frozen.h"
#include "nn/linear.h"
#include "tensor/tensor.h"

namespace mx {
namespace nn {

/** Convolution on NCHW inputs packed as 4-d tensors. */
class Conv2d : public Layer
{
  public:
    /**
     * @param in_channels / out_channels channel counts
     * @param kernel  square kernel size
     * @param stride / pad  geometry
     * @param spec  quantization policy
     * @param rng   init stream
     */
    Conv2d(std::int64_t in_channels, std::int64_t out_channels,
           std::int64_t kernel, std::int64_t stride, std::int64_t pad,
           QuantSpec spec, stats::Rng& rng);

    /** Input [B, C, H, W] -> output [B, outC, outH, outW]. */
    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;

    void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out) override
    {
        FrozenStateRef w;
        w.name = prefix + weight_.name;
        w.param = &weight_;
        w.frozen = &frozen_weight_;
        w.spec = &spec_;
        out.push_back(w);
        FrozenStateRef b;
        b.name = prefix + bias_.name;
        b.param = &bias_;
        out.push_back(b);
    }

    /** Snapshot the [outC, C*k*k] filter under the weight format. */
    void freeze() override;
    void freeze(const QuantSpec& spec) override;
    void unfreeze() override;
    bool frozen() const override { return frozen_weight_.valid(); }

    /** The quantization policy. */
    QuantSpec& spec() { return spec_; }

  private:
    std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
    QuantSpec spec_;
    Param weight_; // [outC, C * k * k]
    Param bias_;   // [outC]
    FrozenTensor frozen_weight_;
    tensor::Conv2dGeometry geom_{};
    tensor::Tensor cached_cols_;
};

} // namespace nn
} // namespace mx
