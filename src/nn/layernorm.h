#pragma once

/**
 * @file
 * Layer normalization over the last dimension, with learnable gain/bias.
 * An element-wise op in the paper's taxonomy — runs in scalar float
 * (optionally BF16-rounded), never in MX.
 */

#include "nn/layer.h"
#include "nn/quant.h"

namespace mx {
namespace nn {

/** y = gamma * (x - mean) / sqrt(var + eps) + beta, per row. */
class LayerNorm : public Layer
{
  public:
    /**
     * @param dim normalized feature width (last dimension)
     * @param bf16_output round outputs to BF16
     * @param eps variance floor
     */
    explicit LayerNorm(std::int64_t dim, bool bf16_output = false,
                       float eps = 1e-5f);

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;

    /** The gamma entry carries the freeze flag (no snapshot to save). */
    void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out) override
    {
        FrozenStateRef g;
        g.name = prefix + gamma_.name;
        g.param = &gamma_;
        g.frozen_flag = &frozen_;
        out.push_back(g);
        FrozenStateRef b;
        b.name = prefix + beta_.name;
        b.param = &beta_;
        out.push_back(b);
    }

    /** LayerNorm is element-wise (never MX-quantized), so freezing
     *  only marks the layer inference-only: no snapshot to build, but
     *  train-mode forwards are rejected like every frozen layer. */
    using Layer::freeze; // keep the freeze(QuantSpec) overload visible
    void freeze() override { frozen_ = true; }
    void unfreeze() override { frozen_ = false; }
    bool frozen() const override { return frozen_; }

  private:
    std::int64_t dim_;
    bool bf16_output_;
    bool frozen_ = false;
    float eps_;
    Param gamma_, beta_;
    tensor::Tensor cached_norm_;   // (x - mean) / std
    tensor::Tensor cached_invstd_; // [rows]
};

} // namespace nn
} // namespace mx
