#include "nn/layernorm.h"

#include <cmath>

#include "core/check.h"

namespace mx {
namespace nn {

using tensor::Tensor;

LayerNorm::LayerNorm(std::int64_t dim, bool bf16_output, float eps)
    : dim_(dim), bf16_output_(bf16_output), eps_(eps)
{
    MX_CHECK_ARG(dim >= 1, "LayerNorm: bad dim");
    gamma_ = Param("ln.gamma", Tensor::full({dim}, 1.0f));
    beta_ = Param("ln.beta", Tensor::zeros({dim}));
}

Tensor
LayerNorm::forward(const Tensor& x, bool train)
{
    MX_CHECK_ARG(x.ndim() == 2 && x.dim(1) == dim_,
                 "LayerNorm: input " << x.shape_string());
    MX_CHECK_ARG(!(frozen_ && train),
                 "LayerNorm: frozen layers serve eval-mode forwards "
                 "only; unfreeze() to train");
    const std::int64_t rows = x.dim(0);
    Tensor norm(x.shape());
    Tensor invstd({rows});
    Tensor y(x.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* row = x.data() + r * dim_;
        double mean = 0;
        for (std::int64_t j = 0; j < dim_; ++j)
            mean += row[j];
        mean /= static_cast<double>(dim_);
        double var = 0;
        for (std::int64_t j = 0; j < dim_; ++j)
            var += (row[j] - mean) * (row[j] - mean);
        var /= static_cast<double>(dim_);
        double is = 1.0 / std::sqrt(var + eps_);
        invstd.data()[r] = static_cast<float>(is);
        for (std::int64_t j = 0; j < dim_; ++j) {
            float n = static_cast<float>((row[j] - mean) * is);
            norm.data()[r * dim_ + j] = n;
            y.data()[r * dim_ + j] =
                gamma_.value.data()[j] * n + beta_.value.data()[j];
        }
    }
    if (train) {
        cached_norm_ = norm;
        cached_invstd_ = invstd;
    }
    if (bf16_output_)
        round_bf16_inplace(y);
    return y;
}

Tensor
LayerNorm::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(cached_norm_.same_shape(grad_out),
                 "LayerNorm backward: shape mismatch");
    const std::int64_t rows = grad_out.dim(0);
    Tensor dx(grad_out.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* g = grad_out.data() + r * dim_;
        const float* n = cached_norm_.data() + r * dim_;
        double is = cached_invstd_.data()[r];
        // dnorm = g * gamma; dx = (dnorm - mean(dnorm) - n * mean(dnorm*n)) * invstd
        double mean_dn = 0, mean_dnn = 0;
        for (std::int64_t j = 0; j < dim_; ++j) {
            double dn = static_cast<double>(g[j]) * gamma_.value.data()[j];
            mean_dn += dn;
            mean_dnn += dn * n[j];
        }
        mean_dn /= static_cast<double>(dim_);
        mean_dnn /= static_cast<double>(dim_);
        for (std::int64_t j = 0; j < dim_; ++j) {
            double dn = static_cast<double>(g[j]) * gamma_.value.data()[j];
            dx.data()[r * dim_ + j] =
                static_cast<float>((dn - mean_dn - n[j] * mean_dnn) * is);
            gamma_.grad.data()[j] += g[j] * n[j];
            beta_.grad.data()[j] += g[j];
        }
    }
    return dx;
}

void
LayerNorm::collect_params(std::vector<Param*>& out)
{
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

} // namespace nn
} // namespace mx
