#pragma once

/**
 * @file
 * Losses with fused gradient computation.
 */

#include <vector>

#include "tensor/tensor.h"

namespace mx {
namespace nn {

/** Loss value plus the gradient w.r.t. the logits/predictions. */
struct LossResult
{
    double loss = 0;          ///< mean loss over the batch
    tensor::Tensor grad;      ///< d(loss)/d(input), already batch-averaged
};

/**
 * Mean softmax cross-entropy over rows of @p logits [N, C] against
 * integer labels.  Labels equal to @p ignore_index contribute nothing
 * (used to mask padding in sequence models).
 */
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels,
                                 int ignore_index = -1);

/** Mean binary cross-entropy on logits [N] (or [N,1]) vs 0/1 labels. */
LossResult bce_with_logits(const tensor::Tensor& logits,
                           const std::vector<int>& labels);

/** Mean squared error against a target tensor of the same shape. */
LossResult mse(const tensor::Tensor& pred, const tensor::Tensor& target);

} // namespace nn
} // namespace mx
