#include "nn/conv2d.h"

#include <cmath>

#include "core/check.h"

namespace mx {
namespace nn {

using tensor::Tensor;

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               QuantSpec spec, stats::Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      spec_(std::move(spec))
{
    const std::int64_t fan_in = in_channels * kernel * kernel;
    float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
    weight_ = Param("conv.weight",
                    Tensor::rand_uniform({out_channels, fan_in}, rng, bound));
    bias_ = Param("conv.bias", Tensor::rand_uniform({out_channels}, rng,
                                                    bound));
}

Tensor
Conv2d::forward(const Tensor& x, bool train)
{
    MX_CHECK_ARG(x.ndim() == 4 && x.dim(1) == in_c_,
                 "Conv2d: input " << x.shape_string());
    MX_CHECK_ARG(!(frozen() && train),
                 "Conv2d: frozen layers serve eval-mode forwards only; "
                 "unfreeze() to train");
    const tensor::Conv2dGeometry geom{x.dim(0), in_c_, x.dim(2), x.dim(3),
                                      out_c_, kernel_, stride_, pad_};
    Tensor cols = tensor::im2col(x, geom); // [B*oh*ow, C*k*k]
    if (train) {
        // Eval forwards stay mutation-free (concurrent serving);
        // backward needs the geometry of the last training forward.
        geom_ = geom;
        cached_cols_ = cols;
    }

    // out_rows = Q(cols) Q(W)^T: reduction over the patch dim.  The
    // weight operand honours the Table IV (w, a) split; frozen mode
    // reads the freeze-time snapshot instead of re-quantizing.
    Tensor rows = frozen()
        ? (spec_.forward
               ? tensor::matmul_nt(quantize_rows(cols, *spec_.forward,
                                                 spec_.rounding),
                                   frozen_weight_.values())
               : tensor::matmul_nt(cols, frozen_weight_.values()))
        : qmatmul_nt2(cols, spec_.forward, weight_.value,
                      spec_.weight_format(),
                      spec_.rounding); // [B*oh*ow, outC]
    const std::int64_t oh = geom.out_h(), ow = geom.out_w();
    Tensor out({geom.batch, out_c_, oh, ow});
    for (std::int64_t b = 0; b < geom.batch; ++b)
        for (std::int64_t y = 0; y < oh; ++y)
            for (std::int64_t xx = 0; xx < ow; ++xx)
                for (std::int64_t c = 0; c < out_c_; ++c)
                    out.data()[((b * out_c_ + c) * oh + y) * ow + xx] =
                        rows.data()[((b * oh + y) * ow + xx) * out_c_ + c] +
                        bias_.value.data()[c];
    return out;
}

Tensor
Conv2d::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(cached_cols_.numel() > 0,
                 "Conv2d: backward before forward(train)");
    const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
    MX_CHECK_ARG(grad_out.ndim() == 4 && grad_out.dim(1) == out_c_ &&
                 grad_out.dim(2) == oh && grad_out.dim(3) == ow,
                 "Conv2d backward: grad shape " << grad_out.shape_string());

    // Repack grad to row layout [B*oh*ow, outC].
    Tensor grows({geom_.batch * oh * ow, out_c_});
    for (std::int64_t b = 0; b < geom_.batch; ++b)
        for (std::int64_t y = 0; y < oh; ++y)
            for (std::int64_t xx = 0; xx < ow; ++xx)
                for (std::int64_t c = 0; c < out_c_; ++c)
                    grows.data()[((b * oh + y) * ow + xx) * out_c_ + c] =
                        grad_out.data()[((b * out_c_ + c) * oh + y) * ow +
                                        xx];

    // dCols = E W (reduce outC): transpose W before quantization.
    Tensor w_t = tensor::transpose2d(weight_.value);
    Tensor dcols = qmatmul_nt(grows, w_t, spec_.backward, spec_.rounding);

    // dW = E^T cols (reduce batch*positions).
    Tensor e_t = tensor::transpose2d(grows);
    Tensor cols_t = tensor::transpose2d(cached_cols_);
    Tensor dw = qmatmul_nt(e_t, cols_t, spec_.backward, spec_.rounding);
    tensor::axpy(weight_.grad, 1.0f, dw);

    Tensor db = tensor::sum_rows(grows);
    tensor::axpy(bias_.grad, 1.0f, db);

    return tensor::col2im(dcols, geom_);
}

void
Conv2d::freeze()
{
    frozen_weight_ = FrozenTensor::build(weight_.value,
                                         spec_.weight_format(),
                                         spec_.rounding);
}

void
Conv2d::freeze(const QuantSpec& spec)
{
    spec_ = spec;
    freeze();
}

void
Conv2d::unfreeze()
{
    frozen_weight_ = FrozenTensor();
}

void
Conv2d::collect_params(std::vector<Param*>& out)
{
    out.push_back(&weight_);
    out.push_back(&bias_);
}

} // namespace nn
} // namespace mx
