#include "nn/attention.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "gemm/packed_gemm.h"
#include "obs/obs.h"

namespace mx {
namespace nn {

using tensor::Tensor;

std::int64_t
AttnPrefixCache::truncate(std::int64_t rows)
{
    if (rows < 0)
        rows = 0;
    if (rows >= prefix)
        return prefix;
    static obs::Counter& truncates = obs::counter("attn.truncates");
    truncates.add(1);
    if (!native) {
        if (rows == 0) {
            k = Tensor();
            v = Tensor();
            prefix = 0;
            return 0;
        }
        const std::int64_t d = k.dim(1);
        Tensor nk({rows, d});
        Tensor nv({rows, d});
        std::copy(k.data(), k.data() + rows * d, nk.data());
        std::copy(v.data(), v.data() + rows * d, nv.data());
        k = std::move(nk);
        v = std::move(nv);
        prefix = rows;
        return rows;
    }
    // Native streams: the K rows and the open V tail shed keys freely,
    // but a cut inside a COMMITTED V slab must retreat to the k1 block
    // boundary below it — the slab's raw floats are gone, and the
    // native cache never re-quantizes (that is its whole contract).
    const std::int64_t k1 = plan.k1;
    const std::int64_t committed =
        k1 * static_cast<std::int64_t>(v_slabs.size());
    std::int64_t keep = rows;
    if (keep < committed)
        keep = k1 * (keep / k1);
    const std::int64_t new_slabs = std::min(
        static_cast<std::int64_t>(v_slabs.size()), keep / k1);
    v_slabs.resize(static_cast<std::size_t>(new_slabs));
    v_tail.resize(
        static_cast<std::size_t>((keep - k1 * new_slabs) * d_model));
    const std::size_t stride = gemm::row_stream_bytes(
        plan, static_cast<std::size_t>(head_dim));
    for (std::vector<std::uint8_t>& stream : k_heads)
        stream.resize(static_cast<std::size_t>(keep) * stride);
    prefix = keep;
    return keep;
}

std::size_t
AttnPrefixCache::memory_bytes() const
{
    std::size_t total = static_cast<std::size_t>(k.numel() + v.numel()) *
                        sizeof(float);
    for (const std::vector<std::uint8_t>& stream : k_heads)
        total += stream.size();
    for (const std::vector<std::uint8_t>& slab : v_slabs)
        total += slab.size();
    total += v_tail.size() * sizeof(float);
    return total;
}

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t heads,
                                       std::int64_t seq_len, bool causal,
                                       QuantSpec spec, stats::Rng& rng)
    : d_model_(d_model),
      heads_(heads),
      head_dim_(d_model / heads),
      seq_len_(seq_len),
      causal_(causal),
      spec_(std::move(spec))
{
    MX_CHECK_ARG(d_model % heads == 0,
                 "MultiHeadAttention: d_model must be divisible by heads");
    wq_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
    wk_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
    wv_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
    wo_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
}

void
MultiHeadAttention::freeze()
{
    wq_->freeze();
    wk_->freeze();
    wv_->freeze();
    wo_->freeze();
}

void
MultiHeadAttention::freeze(const QuantSpec& spec)
{
    set_spec(spec);
    freeze();
}

void
MultiHeadAttention::unfreeze()
{
    wq_->unfreeze();
    wk_->unfreeze();
    wv_->unfreeze();
    wo_->unfreeze();
}

bool
MultiHeadAttention::frozen() const
{
    return wq_->frozen();
}

void
MultiHeadAttention::set_spec(const QuantSpec& spec)
{
    spec_ = spec;
    wq_->spec() = spec;
    wk_->spec() = spec;
    wv_->spec() = spec;
    wo_->spec() = spec;
}

bool
MultiHeadAttention::native_cache_format() const
{
    if (!causal_ || !spec_.forward.has_value() ||
        spec_.forward->s_kind != core::ScaleKind::Pow2Hw ||
        spec_.forward->elem != core::ElementKind::SignMagnitude)
        return false;
    const core::kernels::QuantPlan plan =
        core::kernels::make_quant_plan(*spec_.forward);
    return gemm::operand_eligible(plan) &&
           gemm::gemm_compatible(plan, plan);
}

bool
MultiHeadAttention::packed_act_act() const
{
    if (!frozen() || !spec_.forward.has_value() ||
        spec_.forward->s_kind != core::ScaleKind::Pow2Hw ||
        spec_.forward->elem != core::ElementKind::SignMagnitude)
        return false;
    const core::kernels::QuantPlan plan =
        core::kernels::make_quant_plan(*spec_.forward);
    return gemm::operand_eligible(plan) &&
           gemm::gemm_compatible(plan, plan) && gemm::route_packed(false);
}

void
MultiHeadAttention::project_qkv(const Tensor& x, Tensor& q, Tensor& k,
                                Tensor& v)
{
    // Quantize-once handoff: the three projections consume the SAME
    // input rows, so when all three would run packed anyway, build the
    // activation view once and hand it to each — bit-identical to three
    // independent forwards because quantization is a pure per-row
    // function of the input.
    if (wq_->packed_activation_ready() &&
        wk_->packed_activation_ready() &&
        wv_->packed_activation_ready()) {
        const core::kernels::QuantPlan aplan =
            core::kernels::make_quant_plan(*spec_.forward);
        const core::Rounder rounder(spec_.rounding);
        const gemm::PackedOperand xq = gemm::PackedOperand::quantize(
            aplan, x.data(), static_cast<std::size_t>(x.dim(0)),
            static_cast<std::size_t>(x.dim(1)), rounder);
        q = wq_->forward_packed_activation(xq);
        k = wk_->forward_packed_activation(xq);
        v = wv_->forward_packed_activation(xq);
        return;
    }
    q = wq_->forward(x, /*train=*/false);
    k = wk_->forward(x, /*train=*/false);
    v = wv_->forward(x, /*train=*/false);
}

Tensor
MultiHeadAttention::slice_head(const Tensor& packed, std::int64_t b,
                               std::int64_t h) const
{
    Tensor out({seq_len_, head_dim_});
    for (std::int64_t t = 0; t < seq_len_; ++t) {
        const float* row = packed.data() + (b * seq_len_ + t) * d_model_ +
                           h * head_dim_;
        std::copy(row, row + head_dim_, out.data() + t * head_dim_);
    }
    return out;
}

void
MultiHeadAttention::scatter_head(Tensor& packed, const Tensor& head,
                                 std::int64_t b, std::int64_t h) const
{
    for (std::int64_t t = 0; t < seq_len_; ++t) {
        float* row = packed.data() + (b * seq_len_ + t) * d_model_ +
                     h * head_dim_;
        const float* src = head.data() + t * head_dim_;
        for (std::int64_t j = 0; j < head_dim_; ++j)
            row[j] += src[j];
    }
}

Tensor
MultiHeadAttention::forward(const Tensor& x, bool train)
{
    MX_CHECK_ARG(x.ndim() == 2 && x.dim(1) == d_model_ &&
                 x.dim(0) % seq_len_ == 0,
                 "MultiHeadAttention: input " << x.shape_string());
    const std::int64_t batch = x.dim(0) / seq_len_;
    if (train)
        cached_batch_ = batch; // eval forwards stay mutation-free so
                               // frozen models can serve concurrently

    Tensor q, k, v;
    if (!train && frozen()) {
        project_qkv(x, q, k, v);
    } else {
        q = wq_->forward(x, train);
        k = wk_->forward(x, train);
        v = wv_->forward(x, train);
    }

    if (train)
        cache_.assign(static_cast<std::size_t>(batch * heads_), HeadCache{});

    // Frozen eval forwards run the activation-activation contractions
    // (Q K^T, P V) on the packed kernels when the routing policy
    // engages them; both engines quantize the operands identically.
    const bool packed_aa = !train && packed_act_act();
    const core::kernels::QuantPlan aplan =
        packed_aa ? core::kernels::make_quant_plan(*spec_.forward)
                  : core::kernels::QuantPlan{};

    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Tensor concat = Tensor::zeros({batch * seq_len_, d_model_});

    for (std::int64_t b = 0; b < batch; ++b) {
        for (std::int64_t h = 0; h < heads_; ++h) {
            Tensor qh = slice_head(q, b, h);
            Tensor kh = slice_head(k, b, h);
            Tensor vh = slice_head(v, b, h);

            // scores = (Q K^T) * scale: reduction over head_dim (rows of
            // both operands), so qmatmul_nt quantizes along the right dim.
            Tensor scores =
                packed_aa
                    ? gemm::matmul_nt_packed2(qh, aplan, kh, aplan,
                                              spec_.rounding)
                    : qmatmul_nt(qh, kh, spec_.forward, spec_.rounding);
            for (std::int64_t i = 0; i < seq_len_; ++i) {
                for (std::int64_t j = 0; j < seq_len_; ++j) {
                    float& s = scores.data()[i * seq_len_ + j];
                    s *= scale;
                    if (causal_ && j > i)
                        s = -std::numeric_limits<float>::infinity();
                }
            }
            Tensor probs = tensor::softmax_rows(scores);

            // ctx = P V: reduction over keys; V is transposed before
            // quantization so its rows run along the reduction dim.
            Tensor vt = tensor::transpose2d(vh);
            Tensor ctx =
                packed_aa
                    ? gemm::matmul_nt_packed2(probs, aplan, vt, aplan,
                                              spec_.rounding)
                    : qmatmul_nt(probs, vt, spec_.forward, spec_.rounding);
            scatter_head(concat, ctx, b, h);

            if (train) {
                HeadCache& c = cache_[static_cast<std::size_t>(
                    b * heads_ + h)];
                c.q = std::move(qh);
                c.k = std::move(kh);
                c.v = std::move(vh);
                c.probs = std::move(probs);
            }
        }
    }
    return wo_->forward(concat, train);
}

bool
MultiHeadAttention::prefix_reusable() const
{
    // Non-causal attention lets every position see the whole window, so
    // no prefix row is ever stable.  Per-tensor-scaled activation
    // formats couple rows through one JIT scale, so only the pow2
    // block family (and FP32) quantizes suffix rows independently.
    if (!causal_)
        return false;
    if (!spec_.forward.has_value())
        return true;
    return spec_.forward->s_kind == core::ScaleKind::Pow2Hw &&
           spec_.forward->elem == core::ElementKind::SignMagnitude;
}

Tensor
MultiHeadAttention::forward_suffix(const Tensor& x_suffix,
                                   AttnPrefixCache& cache)
{
    const std::int64_t p = cache.prefix;
    const std::int64_t s = x_suffix.ndim() == 2 ? x_suffix.dim(0) : 0;
    const std::int64_t n = p + s; // visible positions after this call
    obs::Span span("attn.forward_suffix");
    span.arg("prefix", static_cast<double>(p));
    span.arg("suffix", static_cast<double>(s));
    static obs::Counter& appended = obs::counter("attn.append.tokens");
    if (s > 0)
        appended.add(static_cast<std::uint64_t>(s));
    MX_CHECK_ARG(causal_, "MultiHeadAttention: forward_suffix is a "
                          "causal decode path");
    // From-scratch calls (p == 0) are legal under any format — they
    // quantize the same tensors every time, so the result is a pure
    // function of the inputs.  Actually *reusing* cached rows needs
    // row-independent quantization; callers gate caching on
    // prefix_reusable(), and this backstops them.
    MX_CHECK_ARG(p == 0 || prefix_reusable(),
                 "MultiHeadAttention: a cached prefix needs a "
                 "row-independent activation format");
    MX_CHECK_ARG(x_suffix.ndim() == 2 && s >= 1 &&
                 x_suffix.dim(1) == d_model_,
                 "MultiHeadAttention: suffix " << x_suffix.shape_string()
                     << " expects [*, " << d_model_ << "]");
    MX_CHECK_ARG(p >= 0 && n <= seq_len_,
                 "MultiHeadAttention: prefix " << p << " + suffix " << s
                     << " overflows a " << seq_len_
                     << "-position window");

    // Storage mode: a fresh stream adopts native packed streams when
    // the format permits; a live stream continues in the mode its
    // prefix was stored under (it cannot be converted — the raw floats
    // behind committed native blocks are gone).
    if (p == 0) {
        cache = AttnPrefixCache{};
        cache.native = native_cache_format();
        if (cache.native) {
            cache.plan = core::kernels::make_quant_plan(*spec_.forward);
            cache.d_model = d_model_;
            cache.head_dim = head_dim_;
            cache.k_heads.assign(static_cast<std::size_t>(heads_), {});
        }
    } else if (cache.native) {
        MX_CHECK_ARG(cache.d_model == d_model_ &&
                     cache.head_dim == head_dim_ &&
                     cache.k_heads.size() ==
                         static_cast<std::size_t>(heads_),
                     "MultiHeadAttention: prefix cache shape drifted");
        const core::kernels::QuantPlan now =
            native_cache_format()
                ? core::kernels::make_quant_plan(*spec_.forward)
                : core::kernels::QuantPlan{};
        MX_CHECK_ARG(now.m == cache.plan.m && now.d1 == cache.plan.d1 &&
                     now.k1 == cache.plan.k1 &&
                     now.d2 == cache.plan.d2 && now.k2 == cache.plan.k2,
                     "MultiHeadAttention: activation format changed "
                     "under a native cached prefix");
    } else {
        MX_CHECK_ARG(cache.k.ndim() == 2 && cache.k.dim(0) == p &&
                     cache.k.dim(1) == d_model_ &&
                     cache.v.same_shape(cache.k),
                     "MultiHeadAttention: prefix cache shape drifted");
    }

    // Project only the suffix rows; Linear eval forwards are row-wise,
    // so these rows never depend on which rows ride along.  The three
    // projections share one quantized view of x_suffix when the packed
    // path serves them (quantize-once handoff).
    Tensor q_suf, k_suf, v_suf;
    project_qkv(x_suffix, q_suf, k_suf, v_suf);

    // [rows, d_model] -> one head's [rows, head_dim] slice.
    auto take_head = [this](const Tensor& packed, std::int64_t rows,
                            std::int64_t h) {
        Tensor out({rows, head_dim_});
        for (std::int64_t t = 0; t < rows; ++t)
            std::copy(packed.data() + t * d_model_ + h * head_dim_,
                      packed.data() + t * d_model_ + (h + 1) * head_dim_,
                      out.data() + t * head_dim_);
        return out;
    };

    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Tensor concat = Tensor::zeros({s, d_model_});

    if (!cache.native) {
        // Legacy FP32 storage: append raw post-projection rows and
        // re-quantize on use — the path formats outside the packed
        // family (and FP32 specs) serve on.
        Tensor k_all({n, d_model_});
        Tensor v_all({n, d_model_});
        if (p > 0) {
            std::copy(cache.k.data(), cache.k.data() + p * d_model_,
                      k_all.data());
            std::copy(cache.v.data(), cache.v.data() + p * d_model_,
                      v_all.data());
        }
        std::copy(k_suf.data(), k_suf.data() + s * d_model_,
                  k_all.data() + p * d_model_);
        std::copy(v_suf.data(), v_suf.data() + s * d_model_,
                  v_all.data() + p * d_model_);

        for (std::int64_t h = 0; h < heads_; ++h) {
            Tensor qh = take_head(q_suf, s, h);
            Tensor kh = take_head(k_all, n, h);
            Tensor vh = take_head(v_all, n, h);

            // Suffix query rows against every visible key.  Q K^T
            // quantizes per row (queries along head_dim, keys along
            // head_dim), so key row t's quantization is independent of
            // how many keys exist — scores for masked keys are computed
            // and discarded, never leaked.
            Tensor scores =
                qmatmul_nt(qh, kh, spec_.forward, spec_.rounding);
            for (std::int64_t i = 0; i < s; ++i) {
                for (std::int64_t j = 0; j < n; ++j) {
                    float& sc = scores.data()[i * n + j];
                    sc *= scale;
                    if (j > p + i)
                        sc = -std::numeric_limits<float>::infinity();
                }
            }
            Tensor probs = tensor::softmax_rows(scores);

            // ctx row i = P V over EXACTLY the row's visible keys
            // [0, p+i]: the reduction runs along keys, so the
            // transposed-V quantization blocks must span only keys the
            // position may see.  This is the causal-visibility
            // discipline a native MX KV cache implements for free (key
            // blocks are appended, never re-quantized when later tokens
            // arrive) — and it is what makes position p+i's output a
            // pure function of tokens [0, p+i], i.e. what makes prefix
            // reuse exact.
            for (std::int64_t i = 0; i < s; ++i) {
                const std::int64_t vis = p + i + 1;
                Tensor prow({1, vis});
                std::copy(probs.data() + i * n,
                          probs.data() + i * n + vis, prow.data());
                Tensor vt({head_dim_, vis}); // V^T sliced to visible keys
                for (std::int64_t d = 0; d < head_dim_; ++d)
                    for (std::int64_t t = 0; t < vis; ++t)
                        vt.data()[d * vis + t] =
                            vh.data()[t * head_dim_ + d];
                Tensor crow = qmatmul_nt(prow, vt, spec_.forward,
                                         spec_.rounding); // [1, head_dim]
                float* row = concat.data() + i * d_model_ + h * head_dim_;
                for (std::int64_t j = 0; j < head_dim_; ++j)
                    row[j] += crow.data()[j];
            }
        }

        // The appended keys become the new prefix.
        cache.k = std::move(k_all);
        cache.v = std::move(v_all);
        cache.prefix = n;
        return wo_->forward(concat, /*train=*/false);
    }

    // ---- Native MX storage ----------------------------------------
    // The prefix lives as the quantization blocks themselves.  Each
    // new token is quantized ONCE right here; every later step only
    // moves bytes.  The causal-visibility discipline maps exactly onto
    // this storage: K rows quantize along head_dim (per key, stable
    // forever), and transposed-V blocks quantize along keys at k1
    // boundaries — a completed [d_model, k1] slab is identical for
    // every later position, so it is committed once; only the open
    // tail block still depends on the position and stays raw.
    const core::kernels::QuantPlan& aplan = cache.plan;
    const core::Rounder rounder(spec_.rounding);
    const std::int64_t k1 = aplan.k1;

    // Append the new keys: one packed row per (head, key).
    {
        std::vector<float> head_rows(
            static_cast<std::size_t>(s * head_dim_));
        for (std::int64_t h = 0; h < heads_; ++h) {
            for (std::int64_t t = 0; t < s; ++t)
                std::copy(
                    k_suf.data() + t * d_model_ + h * head_dim_,
                    k_suf.data() + t * d_model_ + (h + 1) * head_dim_,
                    head_rows.data() + t * head_dim_);
            gemm::pack_rows_aligned(aplan, head_rows.data(),
                                    static_cast<std::size_t>(s),
                                    static_cast<std::size_t>(head_dim_),
                                    rounder,
                                    cache.k_heads[static_cast<
                                        std::size_t>(h)]);
        }
    }

    // Raw V rows for every key past the last committed slab: the old
    // tail plus this call's suffix, covering keys [raw_base, n).
    const std::int64_t slabs_old =
        static_cast<std::int64_t>(cache.v_slabs.size());
    const std::int64_t raw_base = k1 * slabs_old;
    std::vector<float> raw_all = std::move(cache.v_tail);
    raw_all.resize(static_cast<std::size_t>((n - raw_base) * d_model_));
    std::copy(v_suf.data(), v_suf.data() + s * d_model_,
              raw_all.data() + (p - raw_base) * d_model_);

    // Commit every k1-key block this call completes as a packed
    // [d_model, k1] slab of transposed V, quantized along keys.
    const std::int64_t slabs_new = n / k1;
    if (slabs_new > slabs_old) {
        static obs::Counter& commits = obs::counter("attn.slab_commits");
        commits.add(static_cast<std::uint64_t>(slabs_new - slabs_old));
        std::vector<float> vt_chunk(
            static_cast<std::size_t>(d_model_ * k1));
        for (std::int64_t b = slabs_old; b < slabs_new; ++b) {
            for (std::int64_t d = 0; d < d_model_; ++d)
                for (std::int64_t t = 0; t < k1; ++t)
                    vt_chunk[static_cast<std::size_t>(d * k1 + t)] =
                        raw_all[static_cast<std::size_t>(
                            (k1 * b + t - raw_base) * d_model_ + d)];
            std::vector<std::uint8_t> slab;
            gemm::pack_rows_aligned(aplan, vt_chunk.data(),
                                    static_cast<std::size_t>(d_model_),
                                    static_cast<std::size_t>(k1),
                                    rounder, slab);
            cache.v_slabs.push_back(std::move(slab));
        }
    }

    // Execution views, decoded once per call straight from the byte
    // streams — the integer domain; no dequantized prefix exists.
    std::vector<gemm::PackedOperand> k_ops;
    k_ops.reserve(static_cast<std::size_t>(heads_));
    for (std::int64_t h = 0; h < heads_; ++h)
        k_ops.push_back(gemm::PackedOperand::decode_rows(
            aplan, cache.k_heads[static_cast<std::size_t>(h)],
            static_cast<std::size_t>(n),
            static_cast<std::size_t>(head_dim_)));
    std::vector<gemm::PackedOperand> slab_ops;
    slab_ops.reserve(cache.v_slabs.size());
    for (const std::vector<std::uint8_t>& slab : cache.v_slabs)
        slab_ops.push_back(gemm::PackedOperand::decode_rows(
            aplan, slab, static_cast<std::size_t>(d_model_),
            static_cast<std::size_t>(k1)));

    const bool packed_exec = packed_act_act();
    const gemm::GemmPlan gp = gemm::make_gemm_plan(aplan, aplan);
    // Grid fallback (packed routing off): dequantize the SAME stored
    // encodings — never re-quantize — so it cannot drift from the
    // legacy fake-quant path even where re-quantization would not be
    // idempotent.
    std::vector<Tensor> k_grids, slab_grids;
    if (!packed_exec) {
        for (const gemm::PackedOperand& op : k_ops)
            k_grids.push_back(gemm::dequantize(op));
        for (const gemm::PackedOperand& op : slab_ops)
            slab_grids.push_back(gemm::dequantize(op));
    }

    for (std::int64_t h = 0; h < heads_; ++h) {
        Tensor qh = take_head(q_suf, s, h);

        // Q K^T straight off the packed key rows.
        Tensor scores =
            packed_exec
                ? gemm::matmul_nt_packed(qh, aplan, k_ops[static_cast<
                                             std::size_t>(h)],
                                         spec_.rounding)
                : tensor::matmul_nt(
                      quantize_rows(qh, *spec_.forward, spec_.rounding),
                      k_grids[static_cast<std::size_t>(h)]);
        for (std::int64_t i = 0; i < s; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
                float& sc = scores.data()[i * n + j];
                sc *= scale;
                if (j > p + i)
                    sc = -std::numeric_limits<float>::infinity();
            }
        }
        Tensor probs = tensor::softmax_rows(scores);

        // P V per position: committed slabs feed the NN kernel leg as
        // chunks (this head's rows via row_off); only the open tail
        // block [nb * k1, vis) is quantized here, from raw floats —
        // exactly the blocks the causal-visibility discipline defines.
        for (std::int64_t i = 0; i < s; ++i) {
            const std::int64_t vis = p + i + 1;
            const std::int64_t nb = vis / k1;   // full slabs visible
            const std::int64_t tlen = vis - nb * k1;
            Tensor prow({1, vis});
            std::copy(probs.data() + i * n, probs.data() + i * n + vis,
                      prow.data());
            // Transposed raw tail [head_dim, tlen] for this head.
            Tensor vt_tail({head_dim_, std::max<std::int64_t>(tlen, 1)});
            for (std::int64_t d = 0; d < head_dim_; ++d)
                for (std::int64_t t = 0; t < tlen; ++t)
                    vt_tail.data()[d * tlen + t] =
                        raw_all[static_cast<std::size_t>(
                            (nb * k1 + t - raw_base) * d_model_ +
                            h * head_dim_ + d)];

            Tensor crow; // [1, head_dim]
            if (packed_exec) {
                const gemm::PackedOperand prow_op =
                    gemm::PackedOperand::quantize(
                        aplan, prow.data(), 1,
                        static_cast<std::size_t>(vis), rounder);
                gemm::PackedOperand tail_op;
                std::vector<gemm::NnBlockRef> refs;
                refs.reserve(static_cast<std::size_t>(nb) + 1);
                for (std::int64_t b = 0; b < nb; ++b)
                    refs.push_back(
                        {&slab_ops[static_cast<std::size_t>(b)],
                         static_cast<std::size_t>(h * head_dim_)});
                if (tlen > 0) {
                    tail_op = gemm::PackedOperand::quantize(
                        aplan, vt_tail.data(),
                        static_cast<std::size_t>(head_dim_),
                        static_cast<std::size_t>(tlen), rounder);
                    refs.push_back({&tail_op, 0});
                }
                crow = gemm::matmul_nn_packed(
                    gp, prow_op, refs,
                    static_cast<std::size_t>(head_dim_));
            } else {
                // Assemble the visible V^T grid from slab grids plus
                // the quantized tail, then contract in FP32.
                Tensor vt_grid({head_dim_, vis});
                for (std::int64_t b = 0; b < nb; ++b) {
                    const Tensor& g =
                        slab_grids[static_cast<std::size_t>(b)];
                    for (std::int64_t d = 0; d < head_dim_; ++d)
                        std::copy(
                            g.data() + (h * head_dim_ + d) * k1,
                            g.data() + (h * head_dim_ + d) * k1 + k1,
                            vt_grid.data() + d * vis + b * k1);
                }
                if (tlen > 0) {
                    Tensor tg = quantize_rows(vt_tail, *spec_.forward,
                                              spec_.rounding);
                    for (std::int64_t d = 0; d < head_dim_; ++d)
                        std::copy(tg.data() + d * tlen,
                                  tg.data() + d * tlen + tlen,
                                  vt_grid.data() + d * vis + nb * k1);
                }
                crow = tensor::matmul_nt(
                    quantize_rows(prow, *spec_.forward, spec_.rounding),
                    vt_grid);
            }
            float* row = concat.data() + i * d_model_ + h * head_dim_;
            for (std::int64_t j = 0; j < head_dim_; ++j)
                row[j] += crow.data()[j];
        }
    }

    // Keys past the last committed slab stay raw until their block
    // completes.
    const std::int64_t tail_base = slabs_new * k1;
    cache.v_tail.assign(
        raw_all.begin() +
            static_cast<std::ptrdiff_t>((tail_base - raw_base) *
                                        d_model_),
        raw_all.end());
    cache.prefix = n;
    return wo_->forward(concat, /*train=*/false);
}

Tensor
MultiHeadAttention::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(!cache_.empty(),
                 "MultiHeadAttention: backward before forward(train)");
    const std::int64_t batch = cached_batch_;
    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    Tensor d_concat = wo_->backward(grad_out);
    Tensor dq = Tensor::zeros({batch * seq_len_, d_model_});
    Tensor dk = Tensor::zeros({batch * seq_len_, d_model_});
    Tensor dv = Tensor::zeros({batch * seq_len_, d_model_});

    for (std::int64_t b = 0; b < batch; ++b) {
        for (std::int64_t h = 0; h < heads_; ++h) {
            const HeadCache& c =
                cache_[static_cast<std::size_t>(b * heads_ + h)];
            Tensor dctx = slice_head(d_concat, b, h); // [T, dh]

            // dP = dctx V^T: reduction over head_dim.
            Tensor dp = qmatmul_nt(dctx, c.v, spec_.backward,
                                   spec_.rounding);
            // dV = P^T dctx: reduction over queries; transpose first.
            Tensor pt = tensor::transpose2d(c.probs);
            Tensor dctx_t = tensor::transpose2d(dctx);
            Tensor dvh = qmatmul_nt(pt, dctx_t, spec_.backward,
                                    spec_.rounding);

            // Softmax backward: dS = P * (dP - rowsum(dP * P)).
            Tensor ds({seq_len_, seq_len_});
            for (std::int64_t i = 0; i < seq_len_; ++i) {
                double dot = 0;
                for (std::int64_t j = 0; j < seq_len_; ++j)
                    dot += static_cast<double>(
                               dp.data()[i * seq_len_ + j]) *
                           c.probs.data()[i * seq_len_ + j];
                for (std::int64_t j = 0; j < seq_len_; ++j) {
                    double g = (dp.data()[i * seq_len_ + j] - dot) *
                               c.probs.data()[i * seq_len_ + j];
                    ds.data()[i * seq_len_ + j] =
                        static_cast<float>(g * scale);
                }
            }

            // dQ = dS K (reduce over keys); dK = dS^T Q (reduce queries).
            Tensor kt = tensor::transpose2d(c.k);
            Tensor dqh = qmatmul_nt(ds, kt, spec_.backward, spec_.rounding);
            Tensor dst = tensor::transpose2d(ds);
            Tensor qt = tensor::transpose2d(c.q);
            Tensor dkh = qmatmul_nt(dst, qt, spec_.backward,
                                    spec_.rounding);

            scatter_head(dq, dqh, b, h);
            scatter_head(dk, dkh, b, h);
            scatter_head(dv, dvh, b, h);
        }
    }

    Tensor dx = wq_->backward(dq);
    tensor::axpy(dx, 1.0f, wk_->backward(dk));
    tensor::axpy(dx, 1.0f, wv_->backward(dv));
    return dx;
}

void
MultiHeadAttention::collect_params(std::vector<Param*>& out)
{
    wq_->collect_params(out);
    wk_->collect_params(out);
    wv_->collect_params(out);
    wo_->collect_params(out);
}

} // namespace nn
} // namespace mx
