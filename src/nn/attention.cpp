#include "nn/attention.h"

#include <cmath>
#include <limits>

#include "core/check.h"

namespace mx {
namespace nn {

using tensor::Tensor;

void
AttnPrefixCache::truncate(std::int64_t rows)
{
    if (rows >= prefix)
        return;
    if (rows <= 0) {
        k = Tensor();
        v = Tensor();
        prefix = 0;
        return;
    }
    const std::int64_t d = k.dim(1);
    Tensor nk({rows, d});
    Tensor nv({rows, d});
    std::copy(k.data(), k.data() + rows * d, nk.data());
    std::copy(v.data(), v.data() + rows * d, nv.data());
    k = std::move(nk);
    v = std::move(nv);
    prefix = rows;
}

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t heads,
                                       std::int64_t seq_len, bool causal,
                                       QuantSpec spec, stats::Rng& rng)
    : d_model_(d_model),
      heads_(heads),
      head_dim_(d_model / heads),
      seq_len_(seq_len),
      causal_(causal),
      spec_(std::move(spec))
{
    MX_CHECK_ARG(d_model % heads == 0,
                 "MultiHeadAttention: d_model must be divisible by heads");
    wq_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
    wk_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
    wv_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
    wo_ = std::make_unique<Linear>(d_model, d_model, spec_, rng, false);
}

void
MultiHeadAttention::freeze()
{
    wq_->freeze();
    wk_->freeze();
    wv_->freeze();
    wo_->freeze();
}

void
MultiHeadAttention::freeze(const QuantSpec& spec)
{
    set_spec(spec);
    freeze();
}

void
MultiHeadAttention::unfreeze()
{
    wq_->unfreeze();
    wk_->unfreeze();
    wv_->unfreeze();
    wo_->unfreeze();
}

bool
MultiHeadAttention::frozen() const
{
    return wq_->frozen();
}

void
MultiHeadAttention::set_spec(const QuantSpec& spec)
{
    spec_ = spec;
    wq_->spec() = spec;
    wk_->spec() = spec;
    wv_->spec() = spec;
    wo_->spec() = spec;
}

Tensor
MultiHeadAttention::slice_head(const Tensor& packed, std::int64_t b,
                               std::int64_t h) const
{
    Tensor out({seq_len_, head_dim_});
    for (std::int64_t t = 0; t < seq_len_; ++t) {
        const float* row = packed.data() + (b * seq_len_ + t) * d_model_ +
                           h * head_dim_;
        std::copy(row, row + head_dim_, out.data() + t * head_dim_);
    }
    return out;
}

void
MultiHeadAttention::scatter_head(Tensor& packed, const Tensor& head,
                                 std::int64_t b, std::int64_t h) const
{
    for (std::int64_t t = 0; t < seq_len_; ++t) {
        float* row = packed.data() + (b * seq_len_ + t) * d_model_ +
                     h * head_dim_;
        const float* src = head.data() + t * head_dim_;
        for (std::int64_t j = 0; j < head_dim_; ++j)
            row[j] += src[j];
    }
}

Tensor
MultiHeadAttention::forward(const Tensor& x, bool train)
{
    MX_CHECK_ARG(x.ndim() == 2 && x.dim(1) == d_model_ &&
                 x.dim(0) % seq_len_ == 0,
                 "MultiHeadAttention: input " << x.shape_string());
    const std::int64_t batch = x.dim(0) / seq_len_;
    if (train)
        cached_batch_ = batch; // eval forwards stay mutation-free so
                               // frozen models can serve concurrently

    Tensor q = wq_->forward(x, train);
    Tensor k = wk_->forward(x, train);
    Tensor v = wv_->forward(x, train);

    if (train)
        cache_.assign(static_cast<std::size_t>(batch * heads_), HeadCache{});

    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Tensor concat = Tensor::zeros({batch * seq_len_, d_model_});

    for (std::int64_t b = 0; b < batch; ++b) {
        for (std::int64_t h = 0; h < heads_; ++h) {
            Tensor qh = slice_head(q, b, h);
            Tensor kh = slice_head(k, b, h);
            Tensor vh = slice_head(v, b, h);

            // scores = (Q K^T) * scale: reduction over head_dim (rows of
            // both operands), so qmatmul_nt quantizes along the right dim.
            Tensor scores =
                qmatmul_nt(qh, kh, spec_.forward, spec_.rounding);
            for (std::int64_t i = 0; i < seq_len_; ++i) {
                for (std::int64_t j = 0; j < seq_len_; ++j) {
                    float& s = scores.data()[i * seq_len_ + j];
                    s *= scale;
                    if (causal_ && j > i)
                        s = -std::numeric_limits<float>::infinity();
                }
            }
            Tensor probs = tensor::softmax_rows(scores);

            // ctx = P V: reduction over keys; V is transposed before
            // quantization so its rows run along the reduction dim.
            Tensor vt = tensor::transpose2d(vh);
            Tensor ctx = qmatmul_nt(probs, vt, spec_.forward,
                                    spec_.rounding);
            scatter_head(concat, ctx, b, h);

            if (train) {
                HeadCache& c = cache_[static_cast<std::size_t>(
                    b * heads_ + h)];
                c.q = std::move(qh);
                c.k = std::move(kh);
                c.v = std::move(vh);
                c.probs = std::move(probs);
            }
        }
    }
    return wo_->forward(concat, train);
}

bool
MultiHeadAttention::prefix_reusable() const
{
    // Non-causal attention lets every position see the whole window, so
    // no prefix row is ever stable.  Per-tensor-scaled activation
    // formats couple rows through one JIT scale, so only the pow2
    // block family (and FP32) quantizes suffix rows independently.
    if (!causal_)
        return false;
    if (!spec_.forward.has_value())
        return true;
    return spec_.forward->s_kind == core::ScaleKind::Pow2Hw &&
           spec_.forward->elem == core::ElementKind::SignMagnitude;
}

Tensor
MultiHeadAttention::forward_suffix(const Tensor& x_suffix,
                                   AttnPrefixCache& cache)
{
    const std::int64_t p = cache.prefix;
    const std::int64_t s = x_suffix.ndim() == 2 ? x_suffix.dim(0) : 0;
    const std::int64_t n = p + s; // visible positions after this call
    MX_CHECK_ARG(causal_, "MultiHeadAttention: forward_suffix is a "
                          "causal decode path");
    // From-scratch calls (p == 0) are legal under any format — they
    // quantize the same tensors every time, so the result is a pure
    // function of the inputs.  Actually *reusing* cached rows needs
    // row-independent quantization; callers gate caching on
    // prefix_reusable(), and this backstops them.
    MX_CHECK_ARG(p == 0 || prefix_reusable(),
                 "MultiHeadAttention: a cached prefix needs a "
                 "row-independent activation format");
    MX_CHECK_ARG(x_suffix.ndim() == 2 && s >= 1 &&
                 x_suffix.dim(1) == d_model_,
                 "MultiHeadAttention: suffix " << x_suffix.shape_string()
                     << " expects [*, " << d_model_ << "]");
    MX_CHECK_ARG(p >= 0 && n <= seq_len_,
                 "MultiHeadAttention: prefix " << p << " + suffix " << s
                     << " overflows a " << seq_len_
                     << "-position window");
    if (p > 0)
        MX_CHECK_ARG(cache.k.ndim() == 2 && cache.k.dim(0) == p &&
                     cache.k.dim(1) == d_model_ &&
                     cache.v.same_shape(cache.k),
                     "MultiHeadAttention: prefix cache shape drifted");

    // Project only the suffix rows; Linear eval forwards are row-wise,
    // so these rows never depend on which rows ride along.
    Tensor q_suf = wq_->forward(x_suffix, /*train=*/false);
    Tensor k_suf = wk_->forward(x_suffix, /*train=*/false);
    Tensor v_suf = wv_->forward(x_suffix, /*train=*/false);

    // K/V over every visible position: cached prefix rows + fresh
    // suffix rows — exactly a KV cache append; prefix rows are reused
    // bit-for-bit, never recomputed or re-quantized.
    Tensor k_all({n, d_model_});
    Tensor v_all({n, d_model_});
    if (p > 0) {
        std::copy(cache.k.data(), cache.k.data() + p * d_model_,
                  k_all.data());
        std::copy(cache.v.data(), cache.v.data() + p * d_model_,
                  v_all.data());
    }
    std::copy(k_suf.data(), k_suf.data() + s * d_model_,
              k_all.data() + p * d_model_);
    std::copy(v_suf.data(), v_suf.data() + s * d_model_,
              v_all.data() + p * d_model_);

    // [rows, d_model] -> one head's [rows, head_dim] slice.
    auto take_head = [this](const Tensor& packed, std::int64_t rows,
                            std::int64_t h) {
        Tensor out({rows, head_dim_});
        for (std::int64_t t = 0; t < rows; ++t)
            std::copy(packed.data() + t * d_model_ + h * head_dim_,
                      packed.data() + t * d_model_ + (h + 1) * head_dim_,
                      out.data() + t * head_dim_);
        return out;
    };

    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Tensor concat = Tensor::zeros({s, d_model_});
    for (std::int64_t h = 0; h < heads_; ++h) {
        Tensor qh = take_head(q_suf, s, h);
        Tensor kh = take_head(k_all, n, h);
        Tensor vh = take_head(v_all, n, h);

        // Suffix query rows against every visible key.  Q K^T
        // quantizes per row (queries along head_dim, keys along
        // head_dim), so key row t's quantization is independent of how
        // many keys exist — scores for masked keys are computed and
        // discarded, never leaked.
        Tensor scores = qmatmul_nt(qh, kh, spec_.forward, spec_.rounding);
        for (std::int64_t i = 0; i < s; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
                float& sc = scores.data()[i * n + j];
                sc *= scale;
                if (j > p + i)
                    sc = -std::numeric_limits<float>::infinity();
            }
        }
        Tensor probs = tensor::softmax_rows(scores);

        // ctx row i = P V over EXACTLY the row's visible keys
        // [0, p+i]: the reduction runs along keys, so the transposed-V
        // quantization blocks must span only keys the position may
        // see.  This is the causal-visibility discipline a native MX
        // KV cache implements for free (key blocks are appended,
        // never re-quantized when later tokens arrive) — and it is
        // what makes position p+i's output a pure function of tokens
        // [0, p+i], i.e. what makes prefix reuse exact.
        for (std::int64_t i = 0; i < s; ++i) {
            const std::int64_t vis = p + i + 1;
            Tensor prow({1, vis});
            std::copy(probs.data() + i * n, probs.data() + i * n + vis,
                      prow.data());
            Tensor vt({head_dim_, vis}); // V^T sliced to visible keys
            for (std::int64_t d = 0; d < head_dim_; ++d)
                for (std::int64_t t = 0; t < vis; ++t)
                    vt.data()[d * vis + t] =
                        vh.data()[t * head_dim_ + d];
            Tensor crow = qmatmul_nt(prow, vt, spec_.forward,
                                     spec_.rounding); // [1, head_dim]
            float* row = concat.data() + i * d_model_ + h * head_dim_;
            for (std::int64_t j = 0; j < head_dim_; ++j)
                row[j] += crow.data()[j];
        }
    }

    // The appended keys become the new prefix.
    cache.k = std::move(k_all);
    cache.v = std::move(v_all);
    cache.prefix = n;

    return wo_->forward(concat, /*train=*/false);
}

Tensor
MultiHeadAttention::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(!cache_.empty(),
                 "MultiHeadAttention: backward before forward(train)");
    const std::int64_t batch = cached_batch_;
    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    Tensor d_concat = wo_->backward(grad_out);
    Tensor dq = Tensor::zeros({batch * seq_len_, d_model_});
    Tensor dk = Tensor::zeros({batch * seq_len_, d_model_});
    Tensor dv = Tensor::zeros({batch * seq_len_, d_model_});

    for (std::int64_t b = 0; b < batch; ++b) {
        for (std::int64_t h = 0; h < heads_; ++h) {
            const HeadCache& c =
                cache_[static_cast<std::size_t>(b * heads_ + h)];
            Tensor dctx = slice_head(d_concat, b, h); // [T, dh]

            // dP = dctx V^T: reduction over head_dim.
            Tensor dp = qmatmul_nt(dctx, c.v, spec_.backward,
                                   spec_.rounding);
            // dV = P^T dctx: reduction over queries; transpose first.
            Tensor pt = tensor::transpose2d(c.probs);
            Tensor dctx_t = tensor::transpose2d(dctx);
            Tensor dvh = qmatmul_nt(pt, dctx_t, spec_.backward,
                                    spec_.rounding);

            // Softmax backward: dS = P * (dP - rowsum(dP * P)).
            Tensor ds({seq_len_, seq_len_});
            for (std::int64_t i = 0; i < seq_len_; ++i) {
                double dot = 0;
                for (std::int64_t j = 0; j < seq_len_; ++j)
                    dot += static_cast<double>(
                               dp.data()[i * seq_len_ + j]) *
                           c.probs.data()[i * seq_len_ + j];
                for (std::int64_t j = 0; j < seq_len_; ++j) {
                    double g = (dp.data()[i * seq_len_ + j] - dot) *
                               c.probs.data()[i * seq_len_ + j];
                    ds.data()[i * seq_len_ + j] =
                        static_cast<float>(g * scale);
                }
            }

            // dQ = dS K (reduce over keys); dK = dS^T Q (reduce queries).
            Tensor kt = tensor::transpose2d(c.k);
            Tensor dqh = qmatmul_nt(ds, kt, spec_.backward, spec_.rounding);
            Tensor dst = tensor::transpose2d(ds);
            Tensor qt = tensor::transpose2d(c.q);
            Tensor dkh = qmatmul_nt(dst, qt, spec_.backward,
                                    spec_.rounding);

            scatter_head(dq, dqh, b, h);
            scatter_head(dk, dkh, b, h);
            scatter_head(dv, dvh, b, h);
        }
    }

    Tensor dx = wq_->backward(dq);
    tensor::axpy(dx, 1.0f, wk_->backward(dk));
    tensor::axpy(dx, 1.0f, wv_->backward(dv));
    return dx;
}

void
MultiHeadAttention::collect_params(std::vector<Param*>& out)
{
    wq_->collect_params(out);
    wk_->collect_params(out);
    wv_->collect_params(out);
    wo_->collect_params(out);
}

} // namespace nn
} // namespace mx
