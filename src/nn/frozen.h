#pragma once

/**
 * @file
 * Prequantized weight snapshots for direct-cast inference.
 *
 * The paper's deployment story (Section V, Table IV) quantizes weights
 * **once** and then serves them, but the fake-quant compute flow in
 * nn/quant.h re-quantizes `weight_.value` on every forward call.  A
 * FrozenTensor is the freeze half of that split: it captures the exact
 * value-grid tensor `quantize_rows(w, fmt)` would produce — so a frozen
 * forward on the dequantized-values path is bit-identical to the
 * fake-quant forward by construction — plus, for the pow2 block family
 * (BFP/MX), the packed bit stream and QuantPlan a native serving stack
 * would hold in memory, and the gemm-ready integer execution view
 * (gemm::PackedOperand) the packed-domain GEMM consumes directly.
 *
 * A FrozenTensor is a *shareable handle*: the snapshot artifacts live
 * in one immutable payload behind a shared_ptr, so copying a
 * FrozenTensor is O(1) and copies alias the same packed weight bytes.
 * This is what makes replica serving cheap (serve/engine.h): N model
 * clones share every frozen artifact and own only their mutable eval
 * scratch.  The single mutating operation, drop_values(), releases the
 * FP32 grid tensor through *every* handle (it is the same snapshot);
 * do it while freezing, before replicas start serving.
 *
 * When the packed GEMM serves a layer, the FP32 grid tensor is only a
 * fallback; drop_values() releases it so a frozen model's weight memory
 * is the packed artifact alone — no dequantized FP32 copy anywhere.
 *
 * Freezing requires deterministic rounding: a stochastic-rounding
 * snapshot could never reproduce the per-call result.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "core/bdr_format.h"
#include "core/kernels/quant_kernel.h"
#include "core/rounding.h"
#include "formats/block_codec.h"
#include "gemm/packed_operand.h"
#include "tensor/tensor.h"

namespace mx {
namespace nn {

/** A shareable handle onto an immutable quantized snapshot of one 2-d
 *  weight tensor (copies alias one payload; see the file header). */
class FrozenTensor
{
  public:
    /** Invalid (unfrozen) snapshot. */
    FrozenTensor() : p_(std::make_shared<Payload>()) {}

    /**
     * Snapshot @p w under @p fmt.
     *
     * @param w        2-d weight, rows along the contraction layout the
     *                 layer feeds to its matmuls
     * @param fmt      target format; nullopt freezes the FP32 values
     *                 as-is (no packed artifact)
     * @param rounding mantissa rounding; must be deterministic
     */
    static FrozenTensor build(const tensor::Tensor& w,
                              const std::optional<core::BdrFormat>& fmt,
                              core::RoundingMode rounding =
                                  core::RoundingMode::NearestEven);

    /**
     * Rehydrate a snapshot from an existing packed bit stream — the
     * artifact-load half of the freeze/serve split (artifact/reader.h).
     *
     * For the pow2 block family (MX/BFP) the payload keeps @p bytes as
     * a *non-owning view*: no copy of the stream is made, so handles
     * materialized from a read-only mmap point straight into the
     * mapping, and N models loaded from one artifact share that single
     * mapping.  @p keepalive pins the backing storage (the mapping) for
     * the payload's lifetime.  Software-scaled formats fall back to an
     * owned copy (their only execution form is decoded values).
     *
     * @param fmt        the stream's format (must round-trip the layout
     *                   the stream was packed under)
     * @param bytes      the packed stream, rows * row_bits each row
     * @param bit_size   exact payload bits (trailing pad bits excluded)
     * @param rows,cols  snapshot shape
     * @param keepalive  shared handle keeping @p bytes alive
     * @param materialize_values  decode the FP32 grid tensor eagerly;
     *                   pass false for packed-GEMM-only serving (the
     *                   drop_values() memory shape from the start).
     *                   Forced on when the format has no gemm view.
     */
    static FrozenTensor from_packed(const core::BdrFormat& fmt,
                                    std::span<const std::uint8_t> bytes,
                                    std::size_t bit_size,
                                    std::int64_t rows, std::int64_t cols,
                                    std::shared_ptr<const void> keepalive,
                                    bool materialize_values = true);

    /** True once build() has run. */
    bool valid() const { return p_->built; }

    /** True when the snapshot went through a quantization format. */
    bool quantized() const { return p_->format.has_value(); }

    /** The cached serving tensor: bit-identical to
     *  quantize_rows(w, fmt) (or w itself for nullopt).  Empty after
     *  drop_values(); use unpacked() to rebuild it on demand. */
    const tensor::Tensor& values() const { return p_->values; }

    /** The freeze format (nullopt = FP32 passthrough). */
    const std::optional<core::BdrFormat>& format() const
    {
        return p_->format;
    }

    /** The packed bit stream a native stack would store (engaged for
     *  every quantized snapshot *owned* by this payload; a
     *  from_packed() view payload leaves it empty — use packed_bytes()
     *  for the mode-agnostic stream). */
    const std::optional<formats::PackedTensor>& packed() const
    {
        return p_->packed;
    }

    /** The packed stream bytes regardless of payload mode: the owned
     *  vector (build()) or the non-owning view into the artifact
     *  mapping (from_packed()).  Empty when not quantized. */
    std::span<const std::uint8_t> packed_bytes() const
    {
        if (!p_->view.empty())
            return p_->view;
        if (p_->packed.has_value())
            return std::span<const std::uint8_t>(p_->packed->bytes);
        return {};
    }

    /** Exact stream bits behind packed_bytes() (0 when not quantized). */
    std::size_t packed_bit_size() const
    {
        if (!p_->view.empty())
            return p_->view_bits;
        return p_->packed.has_value() ? p_->packed->bit_size : 0;
    }

    /** True when the payload is a non-owning view into external
     *  storage (an mmap'd artifact) rather than an owned stream. */
    bool zero_copy() const { return !p_->view.empty(); }

    /** The kernel plan (engaged for the pow2 block family only). */
    const std::optional<core::kernels::QuantPlan>& plan() const
    {
        return p_->plan;
    }

    /**
     * The gemm-ready execution view of the packed stream: int16
     * mantissas + sub-shifts + shared exponents with per-row block
     * offsets (ragged widths need no re-plan).  Engaged for pow2 block
     * formats whose mantissas fit the view (every MX/MSFP format);
     * nullopt otherwise — the layer then serves on the values() path.
     */
    const std::optional<gemm::PackedOperand>& gemm_operand() const
    {
        return p_->operand;
    }

    /** Snapshot shape (valid even after drop_values()). */
    std::int64_t rows() const { return p_->rows; }
    std::int64_t cols() const { return p_->cols; }

    /** True when this handle and @p other alias one payload (replica
     *  clones sharing the packed artifacts). */
    bool shares_payload_with(const FrozenTensor& other) const
    {
        return p_ == other.p_;
    }

    /**
     * Release the FP32 grid tensor, keeping the packed artifact and the
     * gemm view — the serving-memory configuration in which no
     * dequantized FP32 weight copy exists.  Requires an engaged gemm
     * view (otherwise the snapshot would lose its only execution form).
     * Visible through every handle sharing this snapshot; not safe
     * concurrently with forwards — drop before serving starts.
     */
    void drop_values();

    /** Storage bits per element of the packed artifact (32 when not
     *  quantized). */
    double bits_per_element() const;

    /**
     * Decode the packed stream back to a tensor.  The codec property
     * `decode(encode(x)) == fake_quantize(x)` makes this bit-identical
     * to the grid values — the test suite asserts it, proving the
     * snapshot is a real container, not just cached rounding.
     */
    tensor::Tensor unpacked() const;

  private:
    /** The snapshot itself; immutable after build() except for
     *  drop_values(). */
    struct Payload
    {
        tensor::Tensor values;
        std::optional<core::BdrFormat> format;
        std::optional<formats::PackedTensor> packed;
        std::optional<core::kernels::QuantPlan> plan;
        std::optional<gemm::PackedOperand> operand;
        /** from_packed() mode: the stream lives in external storage
         *  (artifact mmap) pinned by `backing`; `packed` stays empty. */
        std::span<const std::uint8_t> view;
        std::size_t view_bits = 0;
        std::shared_ptr<const void> backing;
        std::int64_t rows = 0, cols = 0;
        bool built = false;
    };

    std::shared_ptr<Payload> p_;
};

} // namespace nn
} // namespace mx
