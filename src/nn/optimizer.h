#pragma once

/**
 * @file
 * Optimizers.  Per Figure 8 the optimizer state and weight master copies
 * stay in FP32 regardless of the compute format — quantization happens on
 * the way *into* each contraction, never in the update rule.
 */

#include <vector>

#include "nn/layer.h"

namespace mx {
namespace nn {

/** Abstract optimizer over a fixed parameter set. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Param*> params)
        : params_(std::move(params))
    {
    }
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Zero all gradients. */
    void
    zero_grad()
    {
        for (Param* p : params_)
            p->zero_grad();
    }

    /** Change the learning rate (schedules, fine-tune restarts). */
    void set_lr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

    /** Clip gradients to a global L2 norm; returns the pre-clip norm. */
    double clip_grad_norm(double max_norm);

  protected:
    std::vector<Param*> params_;
    double lr_ = 1e-3;
};

/** SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
    void step() override;

  private:
    double momentum_;
    std::vector<tensor::Tensor> velocity_;
};

/** Adam / AdamW (decoupled weight decay when weight_decay > 0). */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
    void step() override;

    /** Reset moments and step count (the paper's fine-tuning recipe
     *  "resets the optimizer"). */
    void reset_state();

  private:
    double beta1_, beta2_, eps_, weight_decay_;
    std::int64_t t_ = 0;
    std::vector<tensor::Tensor> m_, v_;
};

} // namespace nn
} // namespace mx
