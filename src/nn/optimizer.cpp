#include "nn/optimizer.h"

#include <cmath>

namespace mx {
namespace nn {

double
Optimizer::clip_grad_norm(double max_norm)
{
    double sq = 0;
    for (Param* p : params_)
        for (std::int64_t i = 0; i < p->grad.numel(); ++i)
            sq += static_cast<double>(p->grad.data()[i]) * p->grad.data()[i];
    double norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0) {
        float s = static_cast<float>(max_norm / norm);
        for (Param* p : params_)
            for (std::int64_t i = 0; i < p->grad.numel(); ++i)
                p->grad.data()[i] *= s;
    }
    return norm;
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum)
{
    lr_ = lr;
    velocity_.reserve(params_.size());
    for (Param* p : params_)
        velocity_.emplace_back(p->value.shape());
}

void
Sgd::step()
{
    for (std::size_t k = 0; k < params_.size(); ++k) {
        Param* p = params_[k];
        tensor::Tensor& v = velocity_[k];
        for (std::int64_t i = 0; i < p->value.numel(); ++i) {
            float g = p->grad.data()[i];
            if (momentum_ > 0) {
                v.data()[i] = static_cast<float>(momentum_ * v.data()[i] + g);
                g = v.data()[i];
            }
            p->value.data()[i] -= static_cast<float>(lr_ * g);
        }
    }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay)
{
    lr_ = lr;
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Param* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void
Adam::step()
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t k = 0; k < params_.size(); ++k) {
        Param* p = params_[k];
        for (std::int64_t i = 0; i < p->value.numel(); ++i) {
            double g = p->grad.data()[i];
            double m = beta1_ * m_[k].data()[i] + (1.0 - beta1_) * g;
            double v = beta2_ * v_[k].data()[i] + (1.0 - beta2_) * g * g;
            m_[k].data()[i] = static_cast<float>(m);
            v_[k].data()[i] = static_cast<float>(v);
            double update = (m / bc1) / (std::sqrt(v / bc2) + eps_);
            if (weight_decay_ > 0)
                update += weight_decay_ * p->value.data()[i];
            p->value.data()[i] -= static_cast<float>(lr_ * update);
        }
    }
}

void
Adam::reset_state()
{
    t_ = 0;
    for (auto& t : m_)
        t.fill(0.0f);
    for (auto& t : v_)
        t.fill(0.0f);
}

} // namespace nn
} // namespace mx
