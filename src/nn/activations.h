#pragma once

/**
 * @file
 * Element-wise activation layers.
 *
 * Per the paper's compute flow, element-wise operations run in scalar
 * floating point, BF16 by default (Section V); each activation can
 * optionally round its output to the BF16 grid to emulate that.
 */

#include "nn/layer.h"
#include "nn/quant.h"

namespace mx {
namespace nn {

/** Supported pointwise nonlinearities. */
enum class Activation
{
    ReLU,
    GELU,    ///< tanh approximation, as used by transformer stacks.
    Sigmoid,
    Tanh,
};

/** Stateless activation layer with analytic backward. */
class ActivationLayer : public Layer
{
  public:
    /**
     * @param kind the nonlinearity
     * @param bf16_output round outputs to BF16 (paper's vector-op format)
     */
    explicit ActivationLayer(Activation kind, bool bf16_output = false)
        : kind_(kind), bf16_output_(bf16_output)
    {
    }

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;

  private:
    Activation kind_;
    bool bf16_output_;
    tensor::Tensor cached_input_;
};

/** Inverted dropout. Identity when p == 0 or in eval mode. */
class Dropout : public Layer
{
  public:
    Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {}

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;

    /** Change the drop probability (fine-tuning recipes disable dropout). */
    void set_p(double p) { p_ = p; }

  private:
    double p_;
    stats::Rng rng_;
    tensor::Tensor mask_;
};

} // namespace nn
} // namespace mx
