#pragma once

/**
 * @file
 * Token/categorical embedding table.
 *
 * Embeddings are lookups, not contractions, so MX quantization applies to
 * their *storage*: Section V's DLRM evaluation quantizes the embedding
 * tables themselves.  With storage_format set, lookups read values that
 * round-trip through the format's value grid (rows are re-quantized on
 * read, emulating MX-resident tables).
 */

#include <optional>

#include "core/bdr_format.h"
#include "nn/layer.h"
#include "nn/quant.h"
#include "stats/rng.h"

namespace mx {
namespace nn {

/** Embedding lookup layer; input is an index list, not a float tensor. */
class Embedding
{
  public:
    /**
     * @param vocab rows in the table
     * @param dim   embedding width
     * @param rng   init stream (N(0, 0.02), transformer-style)
     */
    Embedding(std::int64_t vocab, std::int64_t dim, stats::Rng& rng);

    /** Gather rows for @p ids -> [ids.size(), dim]. */
    tensor::Tensor forward(const std::vector<int>& ids, bool train);

    /** Scatter-add gradients for the last forward's ids. */
    void backward(const tensor::Tensor& grad_out);

    /** Quantize table storage (MX-resident tables, e.g. for DLRM). */
    void set_storage_format(std::optional<core::BdrFormat> fmt);

    /** The table parameter. */
    Param& table() { return table_; }

    void collect_params(std::vector<Param*>& out) { out.push_back(&table_); }

  private:
    std::int64_t vocab_, dim_;
    Param table_;
    std::optional<core::BdrFormat> storage_format_;
    std::vector<int> cached_ids_;
};

} // namespace nn
} // namespace mx
