#pragma once

/**
 * @file
 * Token/categorical embedding table.
 *
 * Embeddings are lookups, not contractions, so MX quantization applies to
 * their *storage*: Section V's DLRM evaluation quantizes the embedding
 * tables themselves.  With storage_format set, lookups read values that
 * round-trip through the format's value grid (rows are re-quantized on
 * read, emulating MX-resident tables).
 */

#include <optional>

#include "core/bdr_format.h"
#include "nn/frozen.h"
#include "nn/layer.h"
#include "nn/quant.h"
#include "stats/rng.h"

namespace mx {
namespace nn {

/** Embedding lookup layer; input is an index list, not a float tensor. */
class Embedding
{
  public:
    /**
     * @param vocab rows in the table
     * @param dim   embedding width
     * @param rng   init stream (N(0, 0.02), transformer-style)
     */
    Embedding(std::int64_t vocab, std::int64_t dim, stats::Rng& rng);

    /** Gather rows for @p ids -> [ids.size(), dim]. */
    tensor::Tensor forward(const std::vector<int>& ids, bool train);

    /** Scatter-add gradients for the last forward's ids. */
    void backward(const tensor::Tensor& grad_out);

    /** Quantize table storage (MX-resident tables, e.g. for DLRM).
     *  A frozen table is re-snapshotted under the new format. */
    void set_storage_format(std::optional<core::BdrFormat> fmt);

    /**
     * Snapshot the quantized table once (nn/frozen.h) so frozen lookups
     * stop re-quantizing the whole table per batch — the memory-bound
     * recommendation-serving case.  No-op storage-wise when no storage
     * format is set (lookups already read raw FP32 rows).
     */
    void freeze();
    void unfreeze();
    bool frozen() const { return frozen_; }

    /** The frozen table snapshot (valid while frozen and quantized). */
    const FrozenTensor& frozen_table() const { return frozen_table_; }

    /** The table parameter. */
    Param& table() { return table_; }

    void collect_params(std::vector<Param*>& out) { out.push_back(&table_); }

    /** Serializable state in artifact order (Embedding is not a Layer,
     *  so this mirrors Layer::collect_state by convention).  The one
     *  entry carries the snapshot, the storage format, and the freeze
     *  flag — an embedding can be frozen with no quantized snapshot
     *  (no storage format), which the flag alone records. */
    void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out)
    {
        FrozenStateRef t;
        t.name = prefix + table_.name;
        t.param = &table_;
        t.frozen = &frozen_table_;
        t.storage_format = &storage_format_;
        t.frozen_flag = &frozen_;
        out.push_back(t);
    }

  private:
    std::int64_t vocab_, dim_;
    Param table_;
    std::optional<core::BdrFormat> storage_format_;
    FrozenTensor frozen_table_;
    bool frozen_ = false;
    std::vector<int> cached_ids_;
};

} // namespace nn
} // namespace mx
