#pragma once

/**
 * @file
 * Fully-connected layer with MX-quantized contractions (Figure 8).
 */

#include "nn/frozen.h"
#include "nn/layer.h"
#include "nn/quant.h"
#include "stats/rng.h"

namespace mx {
namespace gemm {
class PackedOperand;
}
namespace nn {

/**
 * y = x W^T + b with x[B, in], W[out, in].
 *
 * All three contractions (forward, dX, dW) follow the paper's compute
 * flow: each operand is quantized along the contraction's reduction
 * dimension, with transposes applied *before* quantization.
 */
class Linear : public Layer
{
  public:
    /**
     * @param in        input features
     * @param out       output features
     * @param spec      quantization policy for this layer's matmuls
     * @param rng       weight init stream (Kaiming-uniform)
     * @param with_bias include the additive bias
     */
    Linear(std::int64_t in, std::int64_t out, QuantSpec spec,
           stats::Rng& rng, bool with_bias = true);

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;
    void collect_state(const std::string& prefix,
                       std::vector<FrozenStateRef>& out) override;

    /** Snapshot Q(W) under the current spec's weight format. */
    void freeze() override;
    /** Adopt @p spec, then freeze. */
    void freeze(const QuantSpec& spec) override;
    void unfreeze() override;
    bool frozen() const override { return frozen_weight_.valid(); }

    /** The frozen weight snapshot (valid only while frozen). */
    const FrozenTensor& frozen_weight() const { return frozen_weight_; }

    /**
     * Release the snapshot's FP32 grid tensor, serving exclusively from
     * the packed artifact through the mx_gemm packed-domain path (the
     * snapshot must carry a gemm view).  After this, no dequantized
     * FP32 copy of the weight exists anywhere in the layer.
     */
    void drop_frozen_values();

    /**
     * True when forward_packed_activation may be called right now:
     * frozen, the activation format pairs with the packed weight, and
     * the MX_GEMM routing policy would take the packed path for this
     * layer's own forward anyway.  Callers that feed one activation
     * matrix to several layers (attention's wq/wk/wv share the post-LN
     * input) check this on each, quantize once, and hand the packed
     * view to all of them — the PackedOperand handoff.
     */
    bool packed_activation_ready() const;

    /**
     * The frozen forward on a pre-quantized activation view: y = xq W^T
     * (+ bias) in the packed domain.  Bit-identical to forward() on the
     * floats @p xq was quantized from, because quantization is a pure
     * per-row function of the input — the only difference is that the
     * quantization ran once in the caller instead of once per layer.
     */
    tensor::Tensor forward_packed_activation(const gemm::PackedOperand& xq);

    /** The layer's quantization policy (mutable for cast experiments). */
    QuantSpec& spec() { return spec_; }

    /** Weight parameter [out, in]. */
    Param& weight() { return weight_; }
    /** Bias parameter [out] (valid only when constructed with bias). */
    Param& bias() { return bias_; }

    /** Feature dimensions (artifact config round-trips need them). */
    std::int64_t in_features() const { return in_; }
    std::int64_t out_features() const { return out_; }

  private:
    /** True when the frozen snapshot and the current activation format
     *  can pair into a packed-domain GEMM. */
    bool packed_pairable() const;

    /** The frozen weight matmul: packed-domain mx_gemm when the
     *  snapshot and activation format allow it, dequantized grid
     *  values otherwise. */
    tensor::Tensor frozen_matmul(const tensor::Tensor& x) const;

    std::int64_t in_, out_;
    QuantSpec spec_;
    bool with_bias_;
    Param weight_;
    Param bias_;
    FrozenTensor frozen_weight_;
    tensor::Tensor cached_input_;
};

} // namespace nn
} // namespace mx
