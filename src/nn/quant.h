#pragma once

/**
 * @file
 * The Figure 8 compute flow: MX-quantized tensor contractions.
 *
 * MX is a *directional* format — tensors must be quantized along the
 * reduction dimension of the contraction to get hardware benefit, so
 * quantization and transposition do not commute (Section V).  These
 * helpers implement exactly the paper's placement of Q blocks:
 *
 *   forward:   Y = Q(A, along K) * Q(W, along K)^T
 *   backward:  dA = Q(E, along N) * Q(W^T, along N)^T   (transpose first!)
 *              dW = Q(E^T, along M) * Q(A^T, along M)^T
 *
 * Both inputs of every tensor op are quantized; element-wise ops stay in
 * scalar float (optionally rounded to BF16, the paper's vector-op format).
 */

#include <optional>

#include "core/bdr_format.h"
#include "core/quantize.h"
#include "tensor/tensor.h"

namespace mx {
namespace nn {

/** Quantization policy of one tensor contraction. */
struct QuantSpec
{
    /** Format for the forward matmul operands (nullopt = FP32). */
    std::optional<core::BdrFormat> forward;
    /**
     * Optional override for the *weight* operand of the forward pass;
     * Table IV evaluates (w, a) pairs like (MX4, MX9) where weights and
     * activations use different formats.  nullopt = same as `forward`.
     */
    std::optional<core::BdrFormat> weight_forward;
    /** Format for the backward matmul operands (nullopt = FP32).
     *  Quantization-aware fine-tuning keeps this wider than forward
     *  (Section V: "the backward pass might use ... MX9, or FP32"). */
    std::optional<core::BdrFormat> backward;
    /** Mantissa rounding for both directions. */
    core::RoundingMode rounding = core::RoundingMode::NearestEven;

    /** No quantization anywhere (the FP32 baseline). */
    static QuantSpec fp32() { return {}; }

    /** Same format in forward and backward (uniform MX training). */
    static QuantSpec
    uniform(core::BdrFormat fmt)
    {
        QuantSpec s;
        s.forward = fmt;
        s.backward = std::move(fmt);
        return s;
    }

    /** Different forward/backward formats (fine-tuning recipes). */
    static QuantSpec
    mixed(core::BdrFormat fwd, std::optional<core::BdrFormat> bwd)
    {
        QuantSpec s;
        s.forward = std::move(fwd);
        s.backward = std::move(bwd);
        return s;
    }

    /** Forward-only quantization (direct-cast inference). */
    static QuantSpec
    forward_only(core::BdrFormat fwd)
    {
        QuantSpec s;
        s.forward = std::move(fwd);
        return s;
    }

    /** Direct cast with distinct weight/activation formats (Table IV). */
    static QuantSpec
    weights_activations(core::BdrFormat weights, core::BdrFormat acts)
    {
        QuantSpec s;
        s.forward = std::move(acts);
        s.weight_forward = std::move(weights);
        return s;
    }

    /** Effective forward format of the weight operand. */
    const std::optional<core::BdrFormat>&
    weight_format() const
    {
        return weight_forward.has_value() ? weight_forward : forward;
    }

    bool any() const { return forward.has_value() || backward.has_value(); }
};

/**
 * Fake-quantize a 2-d tensor along its rows (the contiguous last
 * dimension).  Block formats quantize each row independently so blocks
 * never straddle the reduction boundary; software-scaled formats use one
 * just-in-time FP32 scale for the whole tensor (per-tensor scaling).
 */
tensor::Tensor quantize_rows(const tensor::Tensor& t,
                             const core::BdrFormat& fmt,
                             core::RoundingMode rounding =
                                 core::RoundingMode::NearestEven);

/**
 * Quantized contraction C = A * B^T with A[M,K], B[N,K]; both operands
 * quantized along K (their rows) when @p fmt is set.
 */
tensor::Tensor qmatmul_nt(const tensor::Tensor& a, const tensor::Tensor& b,
                          const std::optional<core::BdrFormat>& fmt,
                          core::RoundingMode rounding =
                              core::RoundingMode::NearestEven);

/**
 * Asymmetric variant: operand A (activations) quantized with @p fmt_a,
 * operand B (weights) with @p fmt_b.
 */
tensor::Tensor qmatmul_nt2(const tensor::Tensor& a,
                           const std::optional<core::BdrFormat>& fmt_a,
                           const tensor::Tensor& b,
                           const std::optional<core::BdrFormat>& fmt_b,
                           core::RoundingMode rounding =
                               core::RoundingMode::NearestEven);

/** Round every element to BF16 (the paper's element-wise op format). */
void round_bf16_inplace(tensor::Tensor& t);

/** BF16 rounding of a copy. */
tensor::Tensor round_bf16(const tensor::Tensor& t);

} // namespace nn
} // namespace mx
