#include "nn/activations.h"

#include <cmath>

#include "core/check.h"

namespace mx {
namespace nn {

using tensor::Tensor;

namespace {

constexpr double kGeluC = 0.7978845608028654; // sqrt(2/pi)

double
gelu(double x)
{
    return 0.5 * x * (1.0 + std::tanh(kGeluC * (x + 0.044715 * x * x * x)));
}

double
gelu_grad(double x)
{
    double u = kGeluC * (x + 0.044715 * x * x * x);
    double t = std::tanh(u);
    double du = kGeluC * (1.0 + 3.0 * 0.044715 * x * x);
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du;
}

} // namespace

Tensor
ActivationLayer::forward(const Tensor& x, bool train)
{
    if (train)
        cached_input_ = x;
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        double v = x.data()[i];
        double r = 0;
        switch (kind_) {
          case Activation::ReLU: r = v > 0 ? v : 0; break;
          case Activation::GELU: r = gelu(v); break;
          case Activation::Sigmoid: r = 1.0 / (1.0 + std::exp(-v)); break;
          case Activation::Tanh: r = std::tanh(v); break;
        }
        y.data()[i] = static_cast<float>(r);
    }
    if (bf16_output_)
        round_bf16_inplace(y);
    return y;
}

Tensor
ActivationLayer::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(cached_input_.same_shape(grad_out),
                 "activation backward: shape mismatch");
    Tensor dx(grad_out.shape());
    for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
        double v = cached_input_.data()[i];
        double g = 0;
        switch (kind_) {
          case Activation::ReLU: g = v > 0 ? 1.0 : 0.0; break;
          case Activation::GELU: g = gelu_grad(v); break;
          case Activation::Sigmoid: {
            double s = 1.0 / (1.0 + std::exp(-v));
            g = s * (1.0 - s);
            break;
          }
          case Activation::Tanh: {
            double t = std::tanh(v);
            g = 1.0 - t * t;
            break;
          }
        }
        dx.data()[i] = static_cast<float>(g * grad_out.data()[i]);
    }
    return dx;
}

Tensor
Dropout::forward(const Tensor& x, bool train)
{
    if (!train || p_ <= 0.0) {
        // Only a *training* forward may touch the mask (p == 0 clears
        // it so backward is the identity); eval forwards stay
        // mutation-free for concurrent frozen serving.
        if (train)
            mask_ = Tensor();
        return x;
    }
    mask_ = Tensor(x.shape());
    Tensor y(x.shape());
    float keep = static_cast<float>(1.0 - p_);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        float m = rng_.bernoulli(p_) ? 0.0f : 1.0f / keep;
        mask_.data()[i] = m;
        y.data()[i] = x.data()[i] * m;
    }
    return y;
}

Tensor
Dropout::backward(const Tensor& grad_out)
{
    if (mask_.numel() == 0)
        return grad_out;
    MX_CHECK_ARG(mask_.same_shape(grad_out),
                 "dropout backward: shape mismatch");
    return tensor::mul(grad_out, mask_);
}

} // namespace nn
} // namespace mx
