#pragma once

/**
 * @file
 * LSTM layer with full back-propagation through time.
 *
 * Covers the paper's recurrent benchmark family (GNMT, Table III).  The
 * input/hidden contractions are MX-quantized like every other tensor op;
 * the gate nonlinearities are element-wise and stay in scalar float.
 */

#include "nn/frozen.h"
#include "nn/layer.h"
#include "nn/quant.h"
#include "stats/rng.h"

namespace mx {
namespace nn {

/** (h, c) recurrent state for one batch. */
struct LstmState
{
    tensor::Tensor h; ///< [B, H]
    tensor::Tensor c; ///< [B, H]
};

/**
 * Single-layer LSTM over fixed-length sequences packed [B*T, D].
 *
 * forward_seq returns all hidden states packed [B*T, H] and the final
 * state; backward_seq consumes gradients for both and returns the input
 * gradient plus the gradient w.r.t. the initial state (so encoder/decoder
 * stacks can chain states, as the seq2seq translation benchmark does).
 */
class Lstm
{
  public:
    /**
     * @param input_dim / hidden_dim layer widths
     * @param seq_len fixed sequence length
     * @param spec quantization policy for the gate contractions
     * @param rng init stream
     */
    Lstm(std::int64_t input_dim, std::int64_t hidden_dim,
         std::int64_t seq_len, QuantSpec spec, stats::Rng& rng);

    /** Zero state for a batch. */
    LstmState initial_state(std::int64_t batch) const;

    /**
     * Run the sequence.
     * @param x [B*T, D] inputs
     * @param state initial (h, c); modified to the final state
     * @param train cache for backward
     * @return all hidden states [B*T, H]
     */
    tensor::Tensor forward_seq(const tensor::Tensor& x, LstmState& state,
                               bool train);

    /**
     * BPTT.
     * @param grad_h_seq  gradient w.r.t. every hidden output [B*T, H]
     * @param grad_final  gradient w.r.t. the final (h, c) (may be empty)
     * @param grad_initial out: gradient w.r.t. the initial (h, c)
     * @return gradient w.r.t. the inputs [B*T, D]
     */
    tensor::Tensor backward_seq(const tensor::Tensor& grad_h_seq,
                                const LstmState& grad_final,
                                LstmState& grad_initial);

    void collect_params(std::vector<Param*>& out);

    /** Serializable state in artifact order (Lstm is not a Layer, so
     *  this mirrors Layer::collect_state by convention). */
    void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out)
    {
        FrozenStateRef ih;
        ih.name = prefix + w_ih_.name;
        ih.param = &w_ih_;
        ih.frozen = &frozen_w_ih_;
        ih.spec = &spec_;
        out.push_back(ih);
        FrozenStateRef hh;
        hh.name = prefix + w_hh_.name;
        hh.param = &w_hh_;
        hh.frozen = &frozen_w_hh_;
        hh.spec = &spec_;
        out.push_back(hh);
        FrozenStateRef b;
        b.name = prefix + bias_.name;
        b.param = &bias_;
        out.push_back(b);
    }

    /** Snapshot Q(W_ih) and Q(W_hh) under the weight format so every
     *  timestep of every frozen forward reuses them. */
    void freeze();
    /** Adopt @p spec, then freeze. */
    void freeze(const QuantSpec& spec);
    void unfreeze();
    bool frozen() const { return frozen_w_ih_.valid(); }

    /** The quantization policy. */
    QuantSpec& spec() { return spec_; }

  private:
    /** One gate contraction a W^T, weight side frozen when available. */
    tensor::Tensor gate_matmul(const tensor::Tensor& a, const Param& w,
                               const FrozenTensor& fz) const;

    struct StepCache
    {
        tensor::Tensor x;       // [B, D]
        tensor::Tensor h_prev;  // [B, H]
        tensor::Tensor c_prev;  // [B, H]
        tensor::Tensor gates;   // [B, 4H] post-activation (i, f, g, o)
        tensor::Tensor c;       // [B, H]
    };

    std::int64_t input_dim_, hidden_dim_, seq_len_;
    QuantSpec spec_;
    Param w_ih_; // [4H, D]
    Param w_hh_; // [4H, H]
    Param bias_; // [4H]
    FrozenTensor frozen_w_ih_, frozen_w_hh_;
    std::vector<StepCache> cache_;
    std::int64_t cached_batch_ = 0;
};

} // namespace nn
} // namespace mx
