#include "nn/frozen.h"

#include <algorithm>

#include "core/bitstream.h"
#include "core/check.h"
#include "core/kernels/dispatch.h"
#include "gemm/gemm_plan.h"
#include "nn/quant.h"

namespace mx {
namespace nn {

using tensor::Tensor;

namespace {

/** True for the pow2 hardware-scaled block family (BFP/MX). */
bool
is_pow2_block(const core::BdrFormat& fmt)
{
    return fmt.s_kind == core::ScaleKind::Pow2Hw &&
           fmt.elem == core::ElementKind::SignMagnitude;
}

/**
 * Row-aware pow2 pack: one bit-contiguous stream whose blocks never
 * straddle a row boundary — exactly the block layout quantize_rows
 * produces.  For aligned widths this is byte-identical to
 * formats::pack on the flat span.
 */
formats::PackedTensor
pack_rows_pow2(const core::BdrFormat& fmt,
               const core::kernels::QuantPlan& plan, const Tensor& w,
               core::RoundingMode rounding)
{
    core::Rounder rounder(rounding);
    core::BitWriter writer;
    core::kernels::active_kernel().quantize_pack_rows(
        plan, w.data(), static_cast<std::size_t>(w.dim(0)),
        static_cast<std::size_t>(w.dim(1)), rounder, writer);
    formats::PackedTensor p;
    p.format = fmt;
    p.num_elements = static_cast<std::size_t>(w.numel());
    p.bit_size = writer.bit_count();
    p.bytes = writer.take();
    return p;
}

/** Row-aware pow2 decode, mirroring pack_rows_pow2's block layout. */
void
unpack_rows_pow2(std::span<const std::uint8_t> bytes,
                 const core::kernels::QuantPlan& plan, std::int64_t rows,
                 std::int64_t cols, Tensor& out)
{
    const core::kernels::QuantKernel& kernel =
        core::kernels::active_kernel();
    const std::size_t k1 = static_cast<std::size_t>(plan.k1);
    core::BitReader reader(bytes);
    core::Pow2BlockEncoding enc; // reused; assign keeps capacity
    for (std::int64_t r = 0; r < rows; ++r) {
        float* row = out.data() + r * cols;
        const std::size_t n = static_cast<std::size_t>(cols);
        for (std::size_t off = 0; off < n; off += k1) {
            const std::size_t len = std::min(k1, n - off);
            enc.shared_exp =
                static_cast<int>(reader.read(plan.d1)) - plan.e_max;
            const std::size_t n_sub = plan.num_sub_blocks(len);
            enc.sub_shift.assign(n_sub, 0);
            for (std::size_t s = 0; s < n_sub; ++s)
                enc.sub_shift[s] = plan.d2 > 0
                    ? static_cast<std::uint8_t>(reader.read(plan.d2))
                    : 0;
            enc.mantissa.assign(len, 0);
            for (std::size_t i = 0; i < len; ++i) {
                const std::uint64_t code = reader.read(1 + plan.m);
                const std::int32_t mag =
                    static_cast<std::int32_t>(code >> 1);
                enc.mantissa[i] = (code & 1) != 0 ? -mag : mag;
            }
            kernel.dequantize_block(plan, enc,
                                    std::span<float>(row + off, len));
        }
    }
}

} // namespace

FrozenTensor
FrozenTensor::build(const Tensor& w,
                    const std::optional<core::BdrFormat>& fmt,
                    core::RoundingMode rounding)
{
    MX_CHECK_ARG(w.ndim() == 2, "FrozenTensor: needs a 2-d weight, got "
                                    << w.shape_string());
    FrozenTensor f;
    Payload& p = *f.p_;
    p.built = true;
    p.rows = w.dim(0);
    p.cols = w.dim(1);
    if (!fmt.has_value()) {
        p.values = w;
        return f;
    }
    MX_CHECK_ARG(rounding != core::RoundingMode::Stochastic,
                 "FrozenTensor: freezing needs deterministic rounding — "
                 "a stochastic snapshot cannot reproduce per-call "
                 "fake quantization");
    p.format = *fmt;
    p.values = quantize_rows(w, *fmt, rounding);
    if (is_pow2_block(*fmt)) {
        p.plan = core::kernels::make_quant_plan(*fmt);
        p.packed = pack_rows_pow2(*fmt, *p.plan, w, rounding);
        // The gemm-ready execution view, decoded straight from the bit
        // stream (the stream, not the grid tensor, is the source of
        // truth a native serving stack would hold).
        if (gemm::operand_eligible(*p.plan))
            p.operand = gemm::PackedOperand::decode(
                *p.plan, p.packed->bytes,
                static_cast<std::size_t>(p.rows),
                static_cast<std::size_t>(p.cols));
    } else {
        // Software-scaled families use one per-tensor JIT scale in both
        // quantize_rows and the codec, so the flat pack matches.
        p.packed = formats::pack(*fmt, w.span(), rounding);
    }
    return f;
}

FrozenTensor
FrozenTensor::from_packed(const core::BdrFormat& fmt,
                          std::span<const std::uint8_t> bytes,
                          std::size_t bit_size, std::int64_t rows,
                          std::int64_t cols,
                          std::shared_ptr<const void> keepalive,
                          bool materialize_values)
{
    MX_CHECK_ARG(rows > 0 && cols > 0,
                 "FrozenTensor: from_packed needs a non-empty shape, got "
                     << rows << " x " << cols);
    MX_CHECK_ARG(bytes.size() * 8 >= bit_size,
                 "FrozenTensor: from_packed stream shorter than its "
                 "declared bit size");
    FrozenTensor f;
    Payload& p = *f.p_;
    p.built = true;
    p.rows = rows;
    p.cols = cols;
    p.format = fmt;
    if (is_pow2_block(fmt)) {
        p.plan = core::kernels::make_quant_plan(fmt);
        const std::size_t expect =
            static_cast<std::size_t>(rows) *
            gemm::row_bits(*p.plan, static_cast<std::size_t>(cols));
        MX_CHECK_ARG(bit_size == expect,
                     "FrozenTensor: packed stream carries "
                         << bit_size << " bits but [" << rows << " x "
                         << cols << "] under " << fmt.name << " needs "
                         << expect);
        // Zero-copy: the payload views the caller's stream (an mmap'd
        // artifact) and pins it via `backing`; no stream copy exists.
        p.view = bytes;
        p.view_bits = bit_size;
        p.backing = std::move(keepalive);
        if (gemm::operand_eligible(*p.plan))
            p.operand = gemm::PackedOperand::decode(
                *p.plan, bytes, static_cast<std::size_t>(rows),
                static_cast<std::size_t>(cols));
        // Without a gemm view the grid tensor is the only execution
        // form, so materialization is not optional.
        if (materialize_values || !p.operand.has_value()) {
            p.values = Tensor({rows, cols});
            unpack_rows_pow2(bytes, *p.plan, rows, cols, p.values);
        }
        return f;
    }
    // Software-scaled families: the layer serves on decoded values, so
    // own a copy of the stream and always materialize.
    formats::PackedTensor packed;
    packed.format = fmt;
    packed.num_elements = static_cast<std::size_t>(rows * cols);
    packed.bit_size = bit_size;
    packed.bytes.assign(bytes.begin(), bytes.end());
    p.packed = std::move(packed);
    std::vector<float> flat = formats::unpack(*p.packed);
    MX_CHECK_ARG(static_cast<std::int64_t>(flat.size()) == rows * cols,
                 "FrozenTensor: packed stream decodes "
                     << flat.size() << " elements, expected "
                     << rows * cols);
    p.values = Tensor({rows, cols});
    std::copy(flat.begin(), flat.end(), p.values.data());
    return f;
}

void
FrozenTensor::drop_values()
{
    MX_CHECK_ARG(valid(), "FrozenTensor: drop_values() before build()");
    MX_CHECK_ARG(p_->operand.has_value(),
                 "FrozenTensor: drop_values() needs an engaged gemm "
                 "view — without it the grid tensor is the only "
                 "execution form");
    p_->values = tensor::Tensor();
}

double
FrozenTensor::bits_per_element() const
{
    const std::size_t bits = packed_bit_size();
    if (bits == 0)
        return 32.0;
    return static_cast<double>(bits) /
           static_cast<double>(p_->rows * p_->cols);
}

Tensor
FrozenTensor::unpacked() const
{
    MX_CHECK_ARG(valid(), "FrozenTensor: unpacked() before build()");
    const Payload& p = *p_;
    if (!p.packed.has_value() && p.view.empty())
        return p.values;
    Tensor out({p.rows, p.cols});
    if (p.plan.has_value()) {
        unpack_rows_pow2(packed_bytes(), *p.plan, p.rows, p.cols, out);
        return out;
    }
    std::vector<float> flat = formats::unpack(*p.packed);
    MX_CHECK(static_cast<std::int64_t>(flat.size()) == out.numel(),
             "FrozenTensor: packed element count drifted");
    std::copy(flat.begin(), flat.end(), out.data());
    return out;
}

} // namespace nn
} // namespace mx
