#pragma once

/**
 * @file
 * Multi-head self-attention with MX-quantized contractions.
 *
 * All four projections and both attention matmuls (Q K^T and P V) go
 * through the Figure 8 quantization discipline; softmax itself is an
 * element-wise op and stays in scalar float, matching the paper's
 * compute flow.
 */

#include <memory>
#include <vector>

#include "gemm/packed_operand.h"
#include "nn/linear.h"

namespace mx {
namespace nn {

/**
 * Cached K/V state for the visible prefix of one decode stream — the
 * state MultiHeadAttention::forward_suffix reuses instead of
 * recomputing every position each step (serve/session_cache.h owns the
 * per-stream lifecycle).
 *
 * Two storage modes:
 *
 *  - Native MX (`native == true`, engaged whenever the forward
 *    activation format is a pow2-block family the packed GEMM can
 *    execute): the prefix is held as packed MX bit streams — the exact
 *    quantization blocks the causal-visibility discipline defines, so
 *    appending a token quantizes it ONCE and nothing is ever
 *    re-quantized.  K keeps one byte-aligned packed row per (head,
 *    key), quantized along head_dim; V keeps one packed [d_model, k1]
 *    slab per COMPLETED k1-key block of transposed V (quantized along
 *    keys — the reduction dim of P V), plus the raw FP32 rows of the
 *    still-open tail block.  At ~(1 + m + overhead) bits per element
 *    this is ~4x smaller than FP32 rows, and the packed kernels
 *    consume the streams directly — warm decode never dequantizes the
 *    prefix.
 *
 *  - Legacy FP32 (`native == false`): [prefix, d_model] rows of the
 *    post-projection activations, re-quantized on use (FP32 specs and
 *    formats outside the packed family).
 */
struct AttnPrefixCache
{
    tensor::Tensor k; ///< [prefix, d_model] rows of Wk x (legacy mode).
    tensor::Tensor v; ///< [prefix, d_model] rows of Wv x (legacy mode).
    std::int64_t prefix = 0; ///< Cached key count (both modes).

    bool native = false; ///< Packed-stream storage engaged.
    core::kernels::QuantPlan plan; ///< Activation plan (valid if native).
    std::int64_t d_model = 0, head_dim = 0; ///< Shape (valid if native).
    /// Per head: prefix byte-aligned packed rows of head_dim elements.
    std::vector<std::vector<std::uint8_t>> k_heads;
    /// Per completed k1-key block: a packed [d_model, k1] slab of
    /// transposed V (one slab serves every head via row offsets).
    std::vector<std::vector<std::uint8_t>> v_slabs;
    /// Raw FP32 V rows [prefix - k1 * v_slabs.size(), d_model] of the
    /// still-open tail block (completed slabs drop their raw floats).
    std::vector<float> v_tail;

    /**
     * Keep at most the first @p rows keys (stream diverged
     * mid-window); returns the count actually retained.  Native V
     * retreats to a k1 block boundary when the cut falls inside a
     * completed slab — the slab's raw floats are gone, and a shorter
     * tail would need re-quantization, which the native cache never
     * does.
     */
    std::int64_t truncate(std::int64_t rows);

    /** Heap bytes held by the cached prefix (the capacity-planning
     *  number serve::SessionCache accounts per session). */
    std::size_t memory_bytes() const;
};

/**
 * Self-attention over fixed-length sequences.
 *
 * Inputs are packed [B*T, D]; the batch/sequence factorization is given
 * at construction (fixed-shape training, as all our benchmarks use).
 */
class MultiHeadAttention : public Layer
{
  public:
    /**
     * @param d_model model width (divisible by heads)
     * @param heads   number of attention heads
     * @param seq_len fixed sequence length T
     * @param causal  apply a causal (autoregressive) mask
     * @param spec    quantization policy for every contraction
     * @param rng     weight init stream
     */
    MultiHeadAttention(std::int64_t d_model, std::int64_t heads,
                       std::int64_t seq_len, bool causal, QuantSpec spec,
                       stats::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;

    /** The four projections' state under "wq."/"wk."/"wv."/"wo."
     *  prefixes; the attention-internal spec (Q K^T, P V) is model
     *  config state, not per-entry state. */
    void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out) override
    {
        wq_->collect_state(prefix + "wq.", out);
        wk_->collect_state(prefix + "wk.", out);
        wv_->collect_state(prefix + "wv.", out);
        wo_->collect_state(prefix + "wo.", out);
    }

    /**
     * Eval-only incremental decode forward for one stream (batch 1) —
     * the KV-cache compute discipline, carried into the quantized
     * domain.  @p x_suffix holds the block input rows for the stream's
     * newly appended positions [cache.prefix, n); the cached K/V rows
     * stand in for positions [0, cache.prefix) and only the suffix is
     * projected.  Returns the attention output rows [cache.prefix, n)
     * and advances the cache to cover all n visible positions.
     *
     * Numerics: each position's P V contraction quantizes transposed V
     * over EXACTLY that position's visible keys (causal-visibility
     * quantization) — the blocks a native MX KV cache would hold,
     * appended as tokens arrive and never re-quantized.  The
     * fixed-window forward() instead lets every key in the window
     * share quantization blocks, which couples a position's output to
     * keys it cannot attend; under that discipline no cached row is
     * ever stable.  Causal visibility makes position j's output a pure
     * function of the stream's first j+1 tokens, so incremental and
     * from-scratch decode agree bit for bit — the property
     * tests/test_serve.cpp pins warm against cold.
     *
     * Requires a causal mask and a spec whose forward format quantizes
     * rows independently (pow2 block family or FP32 — see
     * prefix_reusable()).
     */
    tensor::Tensor forward_suffix(const tensor::Tensor& x_suffix,
                                  AttnPrefixCache& cache);

    /** True when forward_suffix may reuse a prefix under the current
     *  spec: causal, and the forward activation format (if any)
     *  quantizes rows independently. */
    bool prefix_reusable() const;

    /** Freeze all four projections; the activation-activation
     *  contractions (Q K^T, P V) keep their per-call quantization.
     *  Frozen projection matmuls ride the packed-domain mx_gemm path
     *  through Linear when the routing policy engages it. */
    void freeze() override;
    void freeze(const QuantSpec& spec) override;
    void unfreeze() override;
    bool frozen() const override;

    /** Mutable access to the shared quantization policy. */
    void set_spec(const QuantSpec& spec);

  private:
    /** Per-(batch, head) cached activations for backward. */
    struct HeadCache
    {
        tensor::Tensor q, k, v; // [T, dh]
        tensor::Tensor probs;   // [T, T] post-softmax
    };

    tensor::Tensor slice_head(const tensor::Tensor& packed, std::int64_t b,
                              std::int64_t h) const;
    void scatter_head(tensor::Tensor& packed, const tensor::Tensor& head,
                      std::int64_t b, std::int64_t h) const;

    /** True when a prefix cache for this layer stores packed MX streams
     *  (causal + pow2-block forward format the packed GEMM can pair
     *  with itself).  Mode-independent: storage is native whenever the
     *  format permits; MX_GEMM only picks the execution engine. */
    bool native_cache_format() const;

    /** True when this eval forward's activation-activation contractions
     *  (Q K^T, P V) run on the packed kernels: frozen layer, native
     *  format, and the MX_GEMM policy routes packed. */
    bool packed_act_act() const;

    /** The three input projections, through the quantize-once
     *  PackedOperand handoff when every projection can take it. */
    void project_qkv(const tensor::Tensor& x, tensor::Tensor& q,
                     tensor::Tensor& k, tensor::Tensor& v);

    std::int64_t d_model_, heads_, head_dim_, seq_len_;
    bool causal_;
    QuantSpec spec_;
    std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
    std::vector<HeadCache> cache_;
    std::int64_t cached_batch_ = 0;
};

} // namespace nn
} // namespace mx
