#pragma once

/**
 * @file
 * Multi-head self-attention with MX-quantized contractions.
 *
 * All four projections and both attention matmuls (Q K^T and P V) go
 * through the Figure 8 quantization discipline; softmax itself is an
 * element-wise op and stays in scalar float, matching the paper's
 * compute flow.
 */

#include <memory>

#include "nn/linear.h"

namespace mx {
namespace nn {

/**
 * Self-attention over fixed-length sequences.
 *
 * Inputs are packed [B*T, D]; the batch/sequence factorization is given
 * at construction (fixed-shape training, as all our benchmarks use).
 */
class MultiHeadAttention : public Layer
{
  public:
    /**
     * @param d_model model width (divisible by heads)
     * @param heads   number of attention heads
     * @param seq_len fixed sequence length T
     * @param causal  apply a causal (autoregressive) mask
     * @param spec    quantization policy for every contraction
     * @param rng     weight init stream
     */
    MultiHeadAttention(std::int64_t d_model, std::int64_t heads,
                       std::int64_t seq_len, bool causal, QuantSpec spec,
                       stats::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;

    /** Freeze all four projections; the activation-activation
     *  contractions (Q K^T, P V) keep their per-call quantization.
     *  Frozen projection matmuls ride the packed-domain mx_gemm path
     *  through Linear when the routing policy engages it. */
    void freeze() override;
    void freeze(const QuantSpec& spec) override;
    void unfreeze() override;
    bool frozen() const override;

    /** Mutable access to the shared quantization policy. */
    void set_spec(const QuantSpec& spec);

  private:
    /** Per-(batch, head) cached activations for backward. */
    struct HeadCache
    {
        tensor::Tensor q, k, v; // [T, dh]
        tensor::Tensor probs;   // [T, T] post-softmax
    };

    tensor::Tensor slice_head(const tensor::Tensor& packed, std::int64_t b,
                              std::int64_t h) const;
    void scatter_head(tensor::Tensor& packed, const tensor::Tensor& head,
                      std::int64_t b, std::int64_t h) const;

    std::int64_t d_model_, heads_, head_dim_, seq_len_;
    bool causal_;
    QuantSpec spec_;
    std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
    std::vector<HeadCache> cache_;
    std::int64_t cached_batch_ = 0;
};

} // namespace nn
} // namespace mx
