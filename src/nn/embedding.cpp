#include "nn/embedding.h"

#include "core/check.h"
#include "core/quantize.h"

namespace mx {
namespace nn {

using tensor::Tensor;

Embedding::Embedding(std::int64_t vocab, std::int64_t dim, stats::Rng& rng)
    : vocab_(vocab), dim_(dim)
{
    MX_CHECK_ARG(vocab >= 1 && dim >= 1, "Embedding: bad shape");
    table_ = Param("embedding.table",
                   Tensor::randn({vocab, dim}, rng, 0.02f));
}

Tensor
Embedding::forward(const std::vector<int>& ids, bool train)
{
    MX_CHECK_ARG(!(frozen_ && train),
                 "Embedding: frozen tables serve eval-mode lookups only; "
                 "unfreeze() to train");
    if (train)
        cached_ids_ = ids;
    Tensor out({static_cast<std::int64_t>(ids.size()), dim_});

    const Tensor* src = &table_.value;
    Tensor quantized;
    if (frozen_ && frozen_table_.valid()) {
        // Frozen: the MX-resident table was snapshotted once at
        // freeze() — same grid values, no per-batch re-quantization.
        src = &frozen_table_.values();
    } else if (storage_format_) {
        // Emulate an MX-resident table: reads see format-grid values.
        quantized = quantize_rows(table_.value, *storage_format_);
        src = &quantized;
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
        MX_CHECK_ARG(ids[i] >= 0 && ids[i] < vocab_,
                     "Embedding: id " << ids[i] << " out of range");
        const float* row = src->data() +
                           static_cast<std::int64_t>(ids[i]) * dim_;
        std::copy(row, row + dim_,
                  out.data() + static_cast<std::int64_t>(i) * dim_);
    }
    return out;
}

void
Embedding::backward(const Tensor& grad_out)
{
    MX_CHECK_ARG(grad_out.ndim() == 2 &&
                 grad_out.dim(0) ==
                     static_cast<std::int64_t>(cached_ids_.size()) &&
                 grad_out.dim(1) == dim_,
                 "Embedding backward: shape mismatch");
    for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
        float* g = table_.grad.data() +
                   static_cast<std::int64_t>(cached_ids_[i]) * dim_;
        const float* src = grad_out.data() +
                           static_cast<std::int64_t>(i) * dim_;
        for (std::int64_t j = 0; j < dim_; ++j)
            g[j] += src[j];
    }
}

void
Embedding::set_storage_format(std::optional<core::BdrFormat> fmt)
{
    storage_format_ = std::move(fmt);
    if (frozen_)
        freeze(); // re-snapshot under the new format
}

void
Embedding::freeze()
{
    frozen_table_ = storage_format_
        ? FrozenTensor::build(table_.value, storage_format_)
        : FrozenTensor();
    frozen_ = true;
}

void
Embedding::unfreeze()
{
    frozen_table_ = FrozenTensor();
    frozen_ = false;
}

} // namespace nn
} // namespace mx
