#pragma once

/**
 * @file
 * Layer abstraction for the training substrate.
 *
 * Layers own their parameters and implement explicit forward/backward
 * passes (no tape autograd): forward caches whatever backward needs,
 * backward consumes the output gradient, accumulates parameter gradients
 * and returns the input gradient.  This mirrors how a quantization-aware
 * training framework like the paper's CUDA emulation library slots Q ops
 * into individual tensor contractions.
 */

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mx {
namespace nn {

struct QuantSpec; // nn/quant.h

/** A trainable parameter: value plus accumulated gradient. */
struct Param
{
    std::string name;
    tensor::Tensor value;
    tensor::Tensor grad;

    Param() = default;
    Param(std::string n, tensor::Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape())
    {
    }

    /** Clear the accumulated gradient. */
    void zero_grad() { grad.fill(0.0f); }
};

/** Base class of all layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Compute the layer output.
     * @param x     input activations
     * @param train when true, caches for backward and enables dropout
     */
    virtual tensor::Tensor forward(const tensor::Tensor& x, bool train) = 0;

    /**
     * Back-propagate.  Must be called after a forward(x, true).
     * @param grad_out gradient w.r.t. the forward output
     * @return gradient w.r.t. the forward input
     */
    virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

    /** Append non-owning pointers to this layer's parameters. */
    virtual void collect_params(std::vector<Param*>& out) { (void)out; }

    /**
     * Freeze for inference under the layer's *current* quantization
     * policy: parameter-owning layers snapshot their quantized weights
     * once (nn/frozen.h) so eval-mode forwards stop re-quantizing them
     * per call — the direct-cast serving split.  Stateless layers need
     * no snapshot, so the default is a no-op.  A frozen layer rejects
     * forward(x, train=true) until unfreeze().
     */
    virtual void freeze() {}

    /** Re-point the layer's quantization policy at @p spec, then
     *  freeze.  The default ignores the spec (stateless layers). */
    virtual void
    freeze(const QuantSpec& spec)
    {
        (void)spec;
        freeze();
    }

    /** Drop the frozen snapshot and return to the trainable
     *  fake-quant path (weights re-quantized per forward). */
    virtual void unfreeze() {}

    /** True while a frozen snapshot is active. */
    virtual bool frozen() const { return false; }

    /** Zero all parameter gradients. */
    void
    zero_grad()
    {
        std::vector<Param*> ps;
        collect_params(ps);
        for (Param* p : ps)
            p->zero_grad();
    }
};

} // namespace nn
} // namespace mx
