#pragma once

/**
 * @file
 * Layer abstraction for the training substrate.
 *
 * Layers own their parameters and implement explicit forward/backward
 * passes (no tape autograd): forward caches whatever backward needs,
 * backward consumes the output gradient, accumulates parameter gradients
 * and returns the input gradient.  This mirrors how a quantization-aware
 * training framework like the paper's CUDA emulation library slots Q ops
 * into individual tensor contractions.
 */

#include <optional>
#include <string>
#include <vector>

#include "core/bdr_format.h"
#include "tensor/tensor.h"

namespace mx {
namespace nn {

struct QuantSpec;   // nn/quant.h
class FrozenTensor; // nn/frozen.h

/** A trainable parameter: value plus accumulated gradient. */
struct Param
{
    std::string name;
    tensor::Tensor value;
    tensor::Tensor grad;

    Param() = default;
    Param(std::string n, tensor::Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape())
    {
    }

    /** Clear the accumulated gradient. */
    void zero_grad() { grad.fill(0.0f); }
};

/**
 * A non-owning reference to one serializable state slot of a layer: the
 * parameter plus (when the layer freezes that parameter) the frozen
 * snapshot, quantization-policy, and freeze-flag slots that restoring
 * the layer from an artifact must fill.  Collected by
 * Layer::collect_state in a stable, position-significant order — the
 * artifact writer (artifact/writer.h) emits entries in this order and
 * the reader loads them back positionally.
 *
 * Slot semantics (null = the layer has no such slot):
 *  - param          always set; the FP32 parameter tensor
 *  - frozen         the layer's FrozenTensor for this parameter; the
 *                   reader installs a rehydrated handle here
 *  - spec           the layer's QuantSpec; saved per entry so
 *                   mixed-precision recipes (keep-first/last-FP32)
 *                   survive the round trip
 *  - storage_format independent storage format slot (Embedding)
 *  - frozen_flag    layers whose frozen() is a bare flag with no
 *                   snapshot (LayerNorm, Embedding)
 */
struct FrozenStateRef
{
    std::string name;
    Param* param = nullptr;
    FrozenTensor* frozen = nullptr;
    QuantSpec* spec = nullptr;
    std::optional<core::BdrFormat>* storage_format = nullptr;
    bool* frozen_flag = nullptr;
};

/** Base class of all layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Compute the layer output.
     * @param x     input activations
     * @param train when true, caches for backward and enables dropout
     */
    virtual tensor::Tensor forward(const tensor::Tensor& x, bool train) = 0;

    /**
     * Back-propagate.  Must be called after a forward(x, true).
     * @param grad_out gradient w.r.t. the forward output
     * @return gradient w.r.t. the forward input
     */
    virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

    /** Append non-owning pointers to this layer's parameters. */
    virtual void collect_params(std::vector<Param*>& out) { (void)out; }

    /**
     * Append this layer's serializable state slots, names prefixed with
     * @p prefix, in a stable order (the artifact save/load contract —
     * see FrozenStateRef).  The default wraps collect_params: every
     * parameter becomes a raw slot with no frozen/spec attachments,
     * which is exactly right for layers whose freeze() snapshots
     * nothing.  Parameter-freezing layers override to attach their
     * FrozenTensor/QuantSpec slots.
     */
    virtual void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out)
    {
        std::vector<Param*> ps;
        collect_params(ps);
        for (Param* p : ps) {
            FrozenStateRef r;
            r.name = prefix + p->name;
            r.param = p;
            out.push_back(r);
        }
    }

    /**
     * Freeze for inference under the layer's *current* quantization
     * policy: parameter-owning layers snapshot their quantized weights
     * once (nn/frozen.h) so eval-mode forwards stop re-quantizing them
     * per call — the direct-cast serving split.  Stateless layers need
     * no snapshot, so the default is a no-op.  A frozen layer rejects
     * forward(x, train=true) until unfreeze().
     */
    virtual void freeze() {}

    /** Re-point the layer's quantization policy at @p spec, then
     *  freeze.  The default ignores the spec (stateless layers). */
    virtual void
    freeze(const QuantSpec& spec)
    {
        (void)spec;
        freeze();
    }

    /** Drop the frozen snapshot and return to the trainable
     *  fake-quant path (weights re-quantized per forward). */
    virtual void unfreeze() {}

    /** True while a frozen snapshot is active. */
    virtual bool frozen() const { return false; }

    /** Zero all parameter gradients. */
    void
    zero_grad()
    {
        std::vector<Param*> ps;
        collect_params(ps);
        for (Param* p : ps)
            p->zero_grad();
    }
};

} // namespace nn
} // namespace mx
