#include "nn/losses.h"

#include <cmath>

#include "core/check.h"

namespace mx {
namespace nn {

using tensor::Tensor;

LossResult
softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                      int ignore_index)
{
    MX_CHECK_ARG(logits.ndim() == 2 &&
                 logits.dim(0) == static_cast<std::int64_t>(labels.size()),
                 "softmax_cross_entropy: shape mismatch");
    const std::int64_t n = logits.dim(0), c = logits.dim(1);
    LossResult res;
    res.grad = Tensor::zeros(logits.shape());
    std::int64_t counted = 0;
    double total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        if (labels[static_cast<std::size_t>(i)] == ignore_index)
            continue;
        ++counted;
    }
    MX_CHECK_ARG(counted > 0, "softmax_cross_entropy: all labels ignored");
    const double inv = 1.0 / static_cast<double>(counted);

    for (std::int64_t i = 0; i < n; ++i) {
        int label = labels[static_cast<std::size_t>(i)];
        if (label == ignore_index)
            continue;
        MX_CHECK_ARG(label >= 0 && label < c,
                     "softmax_cross_entropy: label out of range");
        const float* row = logits.data() + i * c;
        float* grow = res.grad.data() + i * c;
        double mx = row[0];
        for (std::int64_t j = 1; j < c; ++j)
            mx = std::max<double>(mx, row[j]);
        double denom = 0;
        for (std::int64_t j = 0; j < c; ++j)
            denom += std::exp(row[j] - mx);
        double logz = mx + std::log(denom);
        total += (logz - row[label]) * inv;
        for (std::int64_t j = 0; j < c; ++j) {
            double p = std::exp(row[j] - logz);
            grow[j] = static_cast<float>((p - (j == label ? 1.0 : 0.0)) *
                                         inv);
        }
    }
    res.loss = total;
    return res;
}

LossResult
bce_with_logits(const Tensor& logits, const std::vector<int>& labels)
{
    MX_CHECK_ARG(logits.numel() ==
                 static_cast<std::int64_t>(labels.size()),
                 "bce_with_logits: shape mismatch");
    LossResult res;
    res.grad = Tensor::zeros(logits.shape());
    const std::int64_t n = logits.numel();
    const double inv = 1.0 / static_cast<double>(n);
    double total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        double z = logits.data()[i];
        double y = labels[static_cast<std::size_t>(i)] == 1 ? 1.0 : 0.0;
        // Numerically stable: log(1 + e^-|z|) + max(z, 0) - y*z.
        total += (std::log1p(std::exp(-std::fabs(z))) + std::max(z, 0.0) -
                  y * z) * inv;
        double p = 1.0 / (1.0 + std::exp(-z));
        res.grad.data()[i] = static_cast<float>((p - y) * inv);
    }
    res.loss = total;
    return res;
}

LossResult
mse(const Tensor& pred, const Tensor& target)
{
    MX_CHECK_ARG(pred.same_shape(target), "mse: shape mismatch");
    LossResult res;
    res.grad = Tensor::zeros(pred.shape());
    const std::int64_t n = pred.numel();
    const double inv = 1.0 / static_cast<double>(n);
    double total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        double d = static_cast<double>(pred.data()[i]) - target.data()[i];
        total += d * d * inv;
        res.grad.data()[i] = static_cast<float>(2.0 * d * inv);
    }
    res.loss = total;
    return res;
}

} // namespace nn
} // namespace mx
