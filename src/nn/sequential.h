#pragma once

/**
 * @file
 * Ordered layer container with pass-through forward/backward.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/quant.h"

namespace mx {
namespace nn {

/** Runs layers in order; backward in reverse order. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer; returns a non-owning typed pointer for config. */
    template <typename L, typename... Args>
    L*
    emplace(Args&&... args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L* raw = layer.get();
        layers_.push_back(std::move(layer));
        return raw;
    }

    /** Append an already-built layer. */
    void add(std::unique_ptr<Layer> layer)
    {
        layers_.push_back(std::move(layer));
    }

    tensor::Tensor
    forward(const tensor::Tensor& x, bool train) override
    {
        tensor::Tensor h = x;
        for (auto& l : layers_)
            h = l->forward(h, train);
        return h;
    }

    tensor::Tensor
    backward(const tensor::Tensor& grad_out) override
    {
        tensor::Tensor g = grad_out;
        for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
            g = (*it)->backward(g);
        return g;
    }

    void
    collect_params(std::vector<Param*>& out) override
    {
        for (auto& l : layers_)
            l->collect_params(out);
    }

    /** Recurse with positional "<i>." prefixes so two models built from
     *  the same recipe collect identically-named state. */
    void
    collect_state(const std::string& prefix,
                  std::vector<FrozenStateRef>& out) override
    {
        for (std::size_t i = 0; i < layers_.size(); ++i)
            layers_[i]->collect_state(
                prefix + std::to_string(i) + ".", out);
    }

    /** Freeze every layer under its own current spec (preserves
     *  mixed-precision recipes like keep-first/last-FP32). */
    void
    freeze() override
    {
        for (auto& l : layers_)
            l->freeze();
    }

    /** Re-point every layer at @p spec, then freeze. */
    void
    freeze(const QuantSpec& spec) override
    {
        for (auto& l : layers_)
            l->freeze(spec);
    }

    void
    unfreeze() override
    {
        for (auto& l : layers_)
            l->unfreeze();
    }

    /** True when any layer holds a frozen snapshot. */
    bool
    frozen() const override
    {
        return std::any_of(layers_.begin(), layers_.end(),
                           [](const auto& l) { return l->frozen(); });
    }

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    /** Access layer @p i. */
    Layer& operator[](std::size_t i) { return *layers_[i]; }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace nn
} // namespace mx
