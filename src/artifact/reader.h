#pragma once

/**
 * @file
 * ArtifactReader: validate an MXFROZEN file, map it read-only, and
 * materialize zero-copy FrozenTensor handles (format.h documents the
 * layout and integrity model).
 *
 * Validation is EAGER: the constructor checks magic, version, header
 * CRC, section ranges, section CRCs, the manifest schema, and every
 * entry's payload range, CRC, size consistency, and rounding plan
 * before returning — a constructed reader is a proof the file is
 * well-formed, and no partially-validated FrozenTensor ever escapes.
 *
 * Zero-copy contract: PackedPow2 payloads are NOT copied out of the
 * mapping.  frozen(i) builds a FrozenTensor whose payload views the
 * mapped bytes and pins the mapping alive (nn::FrozenTensor::
 * from_packed), and the handle is cached — so every model loaded from
 * one reader shares the SAME payload (shares_payload_with() holds
 * across models), and N serve replicas share the single mapping.
 *
 * Rounding invariant (the load half — the freeze half lives in
 * nn::FrozenTensor::build): entry validation rejects any stochastic
 * rounding plan with UnsupportedPlanError, so a hand-crafted file
 * cannot smuggle an unreproducible plan past the freeze-time check.
 */

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "artifact/format.h"
#include "nn/frozen.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace mx {
namespace artifact {

/** load_into() knobs. */
struct LoadOptions
{
    /**
     * Decode the FP32 grid tensor of every packed entry eagerly so the
     * dequantized-values fallback path works (the post-freeze memory
     * shape).  false = packed-GEMM-only serving: loaded layers hold
     * only the mapped stream + execution view, the drop_values()
     * memory shape from the start.  Forced on per entry when the
     * format has no gemm view.
     */
    bool materialize_values = true;
};

/** Read-only view of one artifact; see the file header for contracts. */
class ArtifactReader
{
  public:
    /** Open, map, and fully validate @p path (throws the format.h
     *  error taxonomy). */
    explicit ArtifactReader(const std::string& path);

    ModelFamily family() const { return header_.family; }
    std::uint32_t version() const { return header_.version; }
    std::size_t entry_count() const { return entries_.size(); }
    const std::vector<Entry>& entries() const { return entries_; }

    /** The config blob (points into the mapping; valid while the
     *  reader or any loaded handle lives). */
    std::span<const std::uint8_t> config_blob() const;

    /** A ByteReader positioned at the config blob's start. */
    ByteReader config() const;

    /** Entry @p i's payload bytes inside the mapping. */
    std::span<const std::uint8_t> payload(std::size_t i) const;

    /**
     * Entry @p i's FrozenTensor handle (packed kinds only).  Built on
     * first use and cached: repeated calls — and therefore every model
     * loaded from this reader — share one payload viewing the mapping.
     * @p materialize_values applies only to the first call for an
     * entry (the cached handle is reused as-is; unpacked() serves any
     * later need for values).
     */
    const nn::FrozenTensor& frozen(std::size_t i,
                                   bool materialize_values = true) const;

    /** Entry @p i's FP32 tensor (RawF32 kinds only; copies out of the
     *  mapping — parameters stay mutable after load). */
    tensor::Tensor raw_tensor(std::size_t i) const;

    /**
     * Restore a model's state: @p refs must be the model's
     * collect_state slots in save order (count and shapes are
     * checked).  Parameter values are filled (zero for packed entries
     * when materialization is off — loaded models are serve-only),
     * FrozenTensor slots get the shared zero-copy handles, and
     * spec/storage-format/freeze-flag slots are restored.
     */
    void load_into(const std::vector<nn::FrozenStateRef>& refs,
                   const LoadOptions& opts = {}) const;

    /** Mapped file size in bytes (the memory N replicas share). */
    std::size_t file_size() const;

    /** True when the file is served by mmap (false on the non-POSIX
     *  read-into-memory fallback). */
    bool mmapped() const;

  private:
    /** The mapped (or fallback-loaded) file; FrozenTensor payloads pin
     *  it via shared_ptr. */
    struct Mapping;

    std::span<const std::uint8_t> file() const;
    void validate_entry(std::size_t i) const;

    std::string path_;
    std::shared_ptr<Mapping> map_;
    Header header_;
    std::vector<Entry> entries_;
    /** Lazily built, cached zero-copy handles (invalid = not built). */
    mutable std::vector<nn::FrozenTensor> handles_;
};

} // namespace artifact
} // namespace mx
