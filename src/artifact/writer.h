#pragma once

/**
 * @file
 * ArtifactWriter: serialize a frozen model's state into an MXFROZEN
 * file (format.h documents the layout).
 *
 * The writer consumes the model's Layer::collect_state slots in order:
 * quantized FrozenTensor snapshots become packed-stream entries (the
 * exact freeze-time bit stream, no re-quantization), everything else —
 * biases, norms, raw embedding tables, FP32-passthrough snapshots —
 * becomes a RawF32 entry.  save_frozen on each model family builds the
 * config blob, collects state, and calls write().
 */

#include <string>
#include <vector>

#include "artifact/format.h"
#include "nn/layer.h"

namespace mx {
namespace artifact {

/** Accumulates entries, then lays out and writes the file. */
class ArtifactWriter
{
  public:
    /**
     * @param family model family tag for the header
     * @param config the family-specific config blob (ByteWriter bytes)
     */
    ArtifactWriter(ModelFamily family, std::vector<std::uint8_t> config);

    /**
     * Append one state slot.  A valid quantized snapshot is stored as
     * its packed stream (PackedPow2 for the MX/BFP family, PackedFlat
     * for software-scaled formats); otherwise the parameter's FP32
     * bytes are stored with the freeze state recorded so load can
     * rebuild a passthrough snapshot or re-set a bare flag.
     */
    void add(const nn::FrozenStateRef& ref);

    /** add() every slot in order. */
    void add_all(const std::vector<nn::FrozenStateRef>& refs);

    /** Number of entries added so far. */
    std::size_t entry_count() const { return entries_.size(); }

    /** Lay out and write the artifact (ArtifactIoError on failure). */
    void write(const std::string& path) const;

  private:
    ModelFamily family_;
    std::vector<std::uint8_t> config_;
    std::vector<Entry> entries_;
    std::vector<std::vector<std::uint8_t>> payloads_;
};

} // namespace artifact
} // namespace mx
