#include "artifact/format.h"

#include <array>
#include <cstring>

namespace mx {
namespace artifact {

namespace {

std::array<std::uint32_t, 256>
make_crc_table()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const void* data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// --------------------------------------------------------------- writer

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::raw(const void* data, std::size_t n)
{
    const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
}

void
ByteWriter::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void
ByteWriter::format(const core::BdrFormat& f)
{
    str(f.name);
    u8(static_cast<std::uint8_t>(f.elem));
    u32(static_cast<std::uint32_t>(f.m));
    u32(static_cast<std::uint32_t>(f.e));
    u8(static_cast<std::uint8_t>(f.specials));
    u8(static_cast<std::uint8_t>(f.s_kind));
    u32(static_cast<std::uint32_t>(f.d1));
    u32(static_cast<std::uint32_t>(f.k1));
    u8(static_cast<std::uint8_t>(f.ss_kind));
    u32(static_cast<std::uint32_t>(f.d2));
    u32(static_cast<std::uint32_t>(f.k2));
    u32(static_cast<std::uint32_t>(f.sw_granularity));
}

void
ByteWriter::opt_format(const std::optional<core::BdrFormat>& f)
{
    u8(f.has_value() ? 1 : 0);
    if (f.has_value())
        format(*f);
}

void
ByteWriter::spec(const nn::QuantSpec& s)
{
    opt_format(s.forward);
    opt_format(s.weight_forward);
    opt_format(s.backward);
    u8(static_cast<std::uint8_t>(s.rounding));
}

// --------------------------------------------------------------- reader

void
ByteReader::need(std::size_t n) const
{
    if (bytes_.size() - pos_ < n)
        throw SchemaError("artifact " + section_ + ": field at offset " +
                          std::to_string(pos_) +
                          " runs past the section end");
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return bytes_[pos_++];
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
}

void
ByteReader::raw(void* out, std::size_t n)
{
    need(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
}

std::string
ByteReader::str()
{
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
}

core::BdrFormat
ByteReader::format()
{
    core::BdrFormat f;
    f.name = str();
    const std::uint8_t elem = u8();
    if (elem > 2)
        throw SchemaError("artifact " + section_ +
                          ": bad element-kind code " +
                          std::to_string(elem));
    f.elem = static_cast<core::ElementKind>(elem);
    f.m = static_cast<int>(u32());
    f.e = static_cast<int>(u32());
    const std::uint8_t specials = u8();
    if (specials > 2)
        throw SchemaError("artifact " + section_ +
                          ": bad fp-specials code " +
                          std::to_string(specials));
    f.specials = static_cast<core::FpSpecials>(specials);
    const std::uint8_t s_kind = u8();
    if (s_kind > 3)
        throw SchemaError("artifact " + section_ +
                          ": bad scale-kind code " +
                          std::to_string(s_kind));
    f.s_kind = static_cast<core::ScaleKind>(s_kind);
    f.d1 = static_cast<int>(u32());
    f.k1 = static_cast<int>(u32());
    const std::uint8_t ss_kind = u8();
    if (ss_kind > 3)
        throw SchemaError("artifact " + section_ +
                          ": bad sub-scale-kind code " +
                          std::to_string(ss_kind));
    f.ss_kind = static_cast<core::ScaleKind>(ss_kind);
    f.d2 = static_cast<int>(u32());
    f.k2 = static_cast<int>(u32());
    f.sw_granularity = static_cast<int>(u32());
    try {
        f.validate();
    } catch (const ArgumentError& e) {
        throw SchemaError("artifact " + section_ +
                          ": inconsistent format descriptor — " +
                          e.what());
    }
    return f;
}

std::optional<core::BdrFormat>
ByteReader::opt_format()
{
    const std::uint8_t present = u8();
    if (present > 1)
        throw SchemaError("artifact " + section_ +
                          ": bad optional-format presence byte");
    if (present == 0)
        return std::nullopt;
    return format();
}

core::RoundingMode
ByteReader::rounding()
{
    const std::uint8_t code = u8();
    if (code > static_cast<std::uint8_t>(core::RoundingMode::Stochastic))
        throw SchemaError("artifact " + section_ +
                          ": bad rounding-mode code " +
                          std::to_string(code));
    return static_cast<core::RoundingMode>(code);
}

nn::QuantSpec
ByteReader::spec()
{
    nn::QuantSpec s;
    s.forward = opt_format();
    s.weight_forward = opt_format();
    s.backward = opt_format();
    s.rounding = rounding();
    return s;
}

// -------------------------------------------------------------- entries

std::int64_t
Entry::numel() const
{
    std::int64_t n = 1;
    for (std::int64_t d : dims)
        n *= d;
    return dims.empty() ? 0 : n;
}

void
write_entry(ByteWriter& w, const Entry& e)
{
    w.str(e.name);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u8(static_cast<std::uint8_t>(e.frozen));
    w.u8(e.spec.has_value() ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(e.rounding));
    w.u32(static_cast<std::uint32_t>(e.dims.size()));
    for (std::int64_t d : e.dims)
        w.u64(static_cast<std::uint64_t>(d));
    w.opt_format(e.format);
    if (e.spec.has_value())
        w.spec(*e.spec);
    w.u64(e.payload_offset);
    w.u64(e.payload_size);
    w.u64(e.payload_bits);
    w.u32(e.payload_crc);
}

Entry
read_entry(ByteReader& r)
{
    Entry e;
    e.name = r.str();
    const std::uint8_t kind = r.u8();
    if (kind > 2)
        throw SchemaError("artifact " + r.section() + ": entry \"" +
                          e.name + "\" has bad kind code " +
                          std::to_string(kind));
    e.kind = static_cast<EntryKind>(kind);
    const std::uint8_t frozen = r.u8();
    if (frozen > 2)
        throw SchemaError("artifact " + r.section() + ": entry \"" +
                          e.name + "\" has bad frozen-state code " +
                          std::to_string(frozen));
    e.frozen = static_cast<FrozenState>(frozen);
    const std::uint8_t has_spec = r.u8();
    if (has_spec > 1)
        throw SchemaError("artifact " + r.section() + ": entry \"" +
                          e.name + "\" has bad spec presence byte");
    e.rounding = r.rounding();
    const std::uint32_t ndim = r.u32();
    if (ndim > 8)
        throw SchemaError("artifact " + r.section() + ": entry \"" +
                          e.name + "\" claims " + std::to_string(ndim) +
                          " dimensions");
    e.dims.resize(ndim);
    for (std::uint32_t i = 0; i < ndim; ++i)
        e.dims[i] = static_cast<std::int64_t>(r.u64());
    e.format = r.opt_format();
    if (has_spec != 0)
        e.spec = r.spec();
    e.payload_offset = r.u64();
    e.payload_size = r.u64();
    e.payload_bits = r.u64();
    e.payload_crc = r.u32();
    return e;
}

// --------------------------------------------------------------- header

std::vector<std::uint8_t>
Header::serialize() const
{
    ByteWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u32(version);
    w.u32(kHeaderSize);
    w.u32(static_cast<std::uint32_t>(family));
    w.u32(entry_count);
    w.u64(config_offset);
    w.u64(config_size);
    w.u64(manifest_offset);
    w.u64(manifest_size);
    w.u64(file_size);
    w.u32(config_crc);
    w.u32(manifest_crc);
    w.u32(0); // header_crc placeholder
    w.u32(0); // reserved
    std::vector<std::uint8_t> bytes = w.take();
    MX_CHECK(bytes.size() == kHeaderSize, "artifact header size drifted");
    const std::uint32_t crc = crc32(bytes.data(), bytes.size());
    for (int i = 0; i < 4; ++i)
        bytes[72 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    return bytes;
}

Header
Header::parse(std::span<const std::uint8_t> file)
{
    if (file.size() < kHeaderSize)
        throw TruncatedError(
            "artifact: file holds " + std::to_string(file.size()) +
            " bytes, shorter than the " + std::to_string(kHeaderSize) +
            "-byte header");
    if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
        throw BadMagicError(
            "artifact: bad magic — not an MXFROZEN artifact");

    ByteReader r(file.subspan(sizeof(kMagic), kHeaderSize - sizeof(kMagic)),
                 "header");
    Header h;
    h.version = r.u32();
    if (h.version != kVersion)
        throw UnsupportedVersionError(
            "artifact: format version " + std::to_string(h.version) +
            " is not supported (this build reads version " +
            std::to_string(kVersion) + ")");
    const std::uint32_t header_size = r.u32();
    h.family = static_cast<ModelFamily>(r.u32());
    h.entry_count = r.u32();
    h.config_offset = r.u64();
    h.config_size = r.u64();
    h.manifest_offset = r.u64();
    h.manifest_size = r.u64();
    h.file_size = r.u64();
    h.config_crc = r.u32();
    h.manifest_crc = r.u32();
    const std::uint32_t stored_crc = r.u32();

    // CRC over the header bytes with the crc field zeroed.
    std::uint8_t copy[kHeaderSize];
    std::memcpy(copy, file.data(), kHeaderSize);
    std::memset(copy + 72, 0, 4);
    if (crc32(copy, kHeaderSize) != stored_crc)
        throw ChecksumError("artifact: header CRC mismatch");

    if (header_size != kHeaderSize)
        throw SchemaError("artifact: header declares size " +
                          std::to_string(header_size));
    if (file.size() < h.file_size)
        throw TruncatedError(
            "artifact: header declares " + std::to_string(h.file_size) +
            " bytes but the file holds " + std::to_string(file.size()));
    if (file.size() > h.file_size)
        throw SchemaError(
            "artifact: file holds " + std::to_string(file.size()) +
            " bytes past the declared size " +
            std::to_string(h.file_size));

    auto in_range = [&](std::uint64_t off, std::uint64_t size,
                        const char* what) {
        if (off < kHeaderSize || off > h.file_size ||
            size > h.file_size - off)
            throw RangeError("artifact: " + std::string(what) +
                             " section [" + std::to_string(off) + ", +" +
                             std::to_string(size) +
                             ") reaches outside the file");
    };
    in_range(h.config_offset, h.config_size, "config");
    in_range(h.manifest_offset, h.manifest_size, "manifest");
    return h;
}

} // namespace artifact
} // namespace mx
