#include "artifact/writer.h"

#include <cstring>
#include <fstream>

#include "core/check.h"
#include "nn/frozen.h"

namespace mx {
namespace artifact {

namespace {

std::uint64_t
align8(std::uint64_t off)
{
    return (off + 7) & ~std::uint64_t{7};
}

} // namespace

ArtifactWriter::ArtifactWriter(ModelFamily family,
                               std::vector<std::uint8_t> config)
    : family_(family), config_(std::move(config))
{
}

void
ArtifactWriter::add(const nn::FrozenStateRef& ref)
{
    MX_CHECK_ARG(ref.param != nullptr,
                 "ArtifactWriter: state slot without a parameter");
    Entry e;
    e.name = ref.name;
    if (ref.spec != nullptr) {
        e.spec = *ref.spec;
        e.rounding = ref.spec->rounding;
    }

    const bool has_snapshot = ref.frozen != nullptr && ref.frozen->valid();
    if (has_snapshot && ref.frozen->quantized()) {
        // The freeze-time bit stream, verbatim.
        const nn::FrozenTensor& fz = *ref.frozen;
        e.kind = fz.plan().has_value() ? EntryKind::PackedPow2
                                       : EntryKind::PackedFlat;
        e.frozen = FrozenState::Snapshot;
        e.format = fz.format();
        e.dims = {fz.rows(), fz.cols()};
        const std::span<const std::uint8_t> bytes = fz.packed_bytes();
        e.payload_bits = fz.packed_bit_size();
        payloads_.emplace_back(bytes.begin(), bytes.end());
    } else {
        // FP32 bytes: plain parameters, FP32-passthrough snapshots,
        // and flag-only freezes.
        e.kind = EntryKind::RawF32;
        e.frozen = has_snapshot ? FrozenState::Snapshot
                   : (ref.frozen_flag != nullptr && *ref.frozen_flag)
                       ? FrozenState::FlagOnly
                       : FrozenState::None;
        if (ref.storage_format != nullptr)
            e.format = *ref.storage_format;
        const tensor::Tensor& v = ref.param->value;
        e.dims.assign(v.shape().begin(), v.shape().end());
        std::vector<std::uint8_t> bytes(
            static_cast<std::size_t>(v.numel()) * sizeof(float));
        std::memcpy(bytes.data(), v.data(), bytes.size());
        e.payload_bits = bytes.size() * 8;
        payloads_.push_back(std::move(bytes));
    }
    e.payload_size = payloads_.back().size();
    e.payload_crc =
        crc32(payloads_.back().data(), payloads_.back().size());
    entries_.push_back(std::move(e));
}

void
ArtifactWriter::add_all(const std::vector<nn::FrozenStateRef>& refs)
{
    for (const nn::FrozenStateRef& r : refs)
        add(r);
}

void
ArtifactWriter::write(const std::string& path) const
{
    // Lay out: header | config | manifest | 8-aligned payloads.  The
    // manifest's serialized size is offset-independent (fixed-width
    // fields), so serialize once to size it, then again with real
    // offsets.
    Header h;
    h.family = family_;
    h.entry_count = static_cast<std::uint32_t>(entries_.size());
    h.config_offset = kHeaderSize;
    h.config_size = config_.size();
    h.manifest_offset = h.config_offset + h.config_size;

    std::vector<Entry> placed = entries_;
    ByteWriter sizing;
    for (const Entry& e : placed)
        write_entry(sizing, e);
    h.manifest_size = sizing.data().size();

    std::uint64_t off = align8(h.manifest_offset + h.manifest_size);
    for (std::size_t i = 0; i < placed.size(); ++i) {
        placed[i].payload_offset = off;
        off = align8(off + placed[i].payload_size);
    }
    // The trailing pad of the last payload is not part of the file.
    h.file_size = placed.empty()
                      ? align8(h.manifest_offset + h.manifest_size)
                      : placed.back().payload_offset +
                            placed.back().payload_size;

    ByteWriter manifest;
    for (const Entry& e : placed)
        write_entry(manifest, e);
    MX_CHECK(manifest.data().size() == h.manifest_size,
             "artifact manifest size drifted between layout passes");
    h.config_crc = crc32(config_.data(), config_.size());
    h.manifest_crc =
        crc32(manifest.data().data(), manifest.data().size());

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw ArtifactIoError("artifact: cannot open \"" + path +
                              "\" for writing");
    auto put = [&](const void* data, std::size_t n) {
        out.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(n));
    };
    const std::vector<std::uint8_t> header = h.serialize();
    put(header.data(), header.size());
    put(config_.data(), config_.size());
    put(manifest.data().data(), manifest.data().size());
    std::uint64_t pos = h.manifest_offset + h.manifest_size;
    static const char zeros[8] = {};
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const std::uint64_t target = placed[i].payload_offset;
        MX_CHECK(target >= pos && target - pos < 8,
                 "artifact payload layout drifted");
        put(zeros, target - pos);
        put(payloads_[i].data(), payloads_[i].size());
        pos = target + payloads_[i].size();
    }
    out.flush();
    if (!out)
        throw ArtifactIoError("artifact: write to \"" + path +
                              "\" failed");
}

} // namespace artifact
} // namespace mx
