#include "artifact/reader.h"

#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define MX_ARTIFACT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MX_ARTIFACT_HAS_MMAP 0
#endif

#include "core/kernels/quant_kernel.h"
#include "gemm/packed_operand.h"

namespace mx {
namespace artifact {

// -------------------------------------------------------------- mapping

struct ArtifactReader::Mapping
{
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    bool mmapped = false;
    std::vector<std::uint8_t> fallback; ///< Owns bytes when !mmapped.

    explicit Mapping(const std::string& path)
    {
#if MX_ARTIFACT_HAS_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            throw ArtifactIoError("artifact: cannot open \"" + path +
                                  "\" for reading");
        struct stat st;
        if (::fstat(fd, &st) != 0) {
            ::close(fd);
            throw ArtifactIoError("artifact: cannot stat \"" + path +
                                  "\"");
        }
        size = static_cast<std::size_t>(st.st_size);
        if (size > 0) {
            void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd);
            if (p == MAP_FAILED)
                throw ArtifactIoError("artifact: mmap of \"" + path +
                                      "\" failed");
            data = static_cast<const std::uint8_t*>(p);
            mmapped = true;
        } else {
            ::close(fd);
        }
#else
        std::ifstream in(path, std::ios::binary);
        if (!in)
            throw ArtifactIoError("artifact: cannot open \"" + path +
                                  "\" for reading");
        fallback.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
        data = fallback.data();
        size = fallback.size();
#endif
    }

    ~Mapping()
    {
#if MX_ARTIFACT_HAS_MMAP
        if (mmapped && data != nullptr)
            ::munmap(const_cast<std::uint8_t*>(data), size);
#endif
    }

    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
};

// --------------------------------------------------------------- reader

ArtifactReader::ArtifactReader(const std::string& path)
    : path_(path), map_(std::make_shared<Mapping>(path))
{
    const std::span<const std::uint8_t> bytes = file();
    header_ = Header::parse(bytes);

    // Section CRCs before any parsing of their contents.
    const std::span<const std::uint8_t> config =
        bytes.subspan(header_.config_offset, header_.config_size);
    if (crc32(config.data(), config.size()) != header_.config_crc)
        throw ChecksumError("artifact \"" + path_ +
                            "\": config CRC mismatch");
    const std::span<const std::uint8_t> manifest =
        bytes.subspan(header_.manifest_offset, header_.manifest_size);
    if (crc32(manifest.data(), manifest.size()) != header_.manifest_crc)
        throw ChecksumError("artifact \"" + path_ +
                            "\": manifest CRC mismatch");

    ByteReader r(manifest, "manifest");
    entries_.reserve(header_.entry_count);
    for (std::uint32_t i = 0; i < header_.entry_count; ++i)
        entries_.push_back(read_entry(r));
    if (!r.exhausted())
        throw SchemaError("artifact \"" + path_ + "\": manifest holds " +
                          std::to_string(r.remaining()) +
                          " bytes past the last entry");

    for (std::size_t i = 0; i < entries_.size(); ++i)
        validate_entry(i);
    handles_.resize(entries_.size());
}

std::span<const std::uint8_t>
ArtifactReader::file() const
{
    return {map_->data, map_->size};
}

std::span<const std::uint8_t>
ArtifactReader::config_blob() const
{
    return file().subspan(header_.config_offset, header_.config_size);
}

ByteReader
ArtifactReader::config() const
{
    return ByteReader(config_blob(), "config");
}

std::span<const std::uint8_t>
ArtifactReader::payload(std::size_t i) const
{
    MX_CHECK_ARG(i < entries_.size(),
                 "ArtifactReader: entry index out of range");
    const Entry& e = entries_[i];
    return file().subspan(e.payload_offset, e.payload_size);
}

void
ArtifactReader::validate_entry(std::size_t i) const
{
    const Entry& e = entries_[i];
    const std::string where =
        "artifact \"" + path_ + "\" entry \"" + e.name + "\"";

    // Payload range inside the file, then its CRC.
    if (e.payload_offset < kHeaderSize ||
        e.payload_offset > header_.file_size ||
        e.payload_size > header_.file_size - e.payload_offset)
        throw RangeError(where + ": payload [" +
                         std::to_string(e.payload_offset) + ", +" +
                         std::to_string(e.payload_size) +
                         ") reaches outside the file");
    const std::span<const std::uint8_t> bytes = payload(i);
    if (crc32(bytes.data(), bytes.size()) != e.payload_crc)
        throw ChecksumError(where + ": payload CRC mismatch");

    // The load half of the stochastic-rounding rejection (the freeze
    // half lives in nn::FrozenTensor::build).
    if (e.rounding == core::RoundingMode::Stochastic ||
        (e.spec.has_value() &&
         e.spec->rounding == core::RoundingMode::Stochastic))
        throw UnsupportedPlanError(
            where + ": stochastic rounding plans cannot be served — a "
                    "stochastic snapshot is unreproducible (mirrors the "
                    "freeze-time rejection in nn::FrozenTensor::build)");

    for (std::int64_t d : e.dims)
        if (d <= 0)
            throw SchemaError(where + ": non-positive dimension");

    if (e.payload_bits > e.payload_size * 8)
        throw SchemaError(where + ": declares " +
                          std::to_string(e.payload_bits) +
                          " payload bits in " +
                          std::to_string(e.payload_size) + " bytes");

    switch (e.kind) {
    case EntryKind::RawF32:
        if (e.payload_size !=
            static_cast<std::uint64_t>(e.numel()) * sizeof(float))
            throw SchemaError(
                where + ": FP32 payload of " +
                std::to_string(e.payload_size) + " bytes for " +
                std::to_string(e.numel()) + " elements");
        break;
    case EntryKind::PackedPow2: {
        if (!e.format.has_value())
            throw SchemaError(where + ": packed entry with no format");
        if (e.dims.size() != 2)
            throw SchemaError(where + ": packed entries are 2-d");
        core::kernels::QuantPlan plan;
        try {
            plan = core::kernels::make_quant_plan(*e.format);
        } catch (const Error& err) {
            throw SchemaError(where +
                              ": format is not a pow2 block format — " +
                              err.what());
        }
        const std::uint64_t expect =
            static_cast<std::uint64_t>(e.dims[0]) *
            gemm::row_bits(plan, static_cast<std::size_t>(e.dims[1]));
        if (e.payload_bits != expect)
            throw SchemaError(where + ": stream carries " +
                              std::to_string(e.payload_bits) +
                              " bits, shape needs " +
                              std::to_string(expect));
        if (e.payload_size != (e.payload_bits + 7) / 8)
            throw SchemaError(where + ": payload byte size does not "
                                      "match its bit size");
        break;
    }
    case EntryKind::PackedFlat:
        if (!e.format.has_value())
            throw SchemaError(where + ": packed entry with no format");
        if (e.dims.size() != 2)
            throw SchemaError(where + ": packed entries are 2-d");
        if (e.payload_size != (e.payload_bits + 7) / 8)
            throw SchemaError(where + ": payload byte size does not "
                                      "match its bit size");
        break;
    }
}

const nn::FrozenTensor&
ArtifactReader::frozen(std::size_t i, bool materialize_values) const
{
    MX_CHECK_ARG(i < entries_.size(),
                 "ArtifactReader: entry index out of range");
    const Entry& e = entries_[i];
    MX_CHECK_ARG(e.kind != EntryKind::RawF32,
                 "ArtifactReader: entry \""
                     << e.name
                     << "\" is a raw tensor, not a packed snapshot");
    if (!handles_[i].valid()) {
        // Pin the mapping through the payload: the handle (and every
        // copy of it) keeps the file mapped.
        handles_[i] = nn::FrozenTensor::from_packed(
            *e.format, payload(i), e.payload_bits, e.dims[0], e.dims[1],
            std::shared_ptr<const void>(map_, map_->data),
            materialize_values);
    }
    return handles_[i];
}

tensor::Tensor
ArtifactReader::raw_tensor(std::size_t i) const
{
    MX_CHECK_ARG(i < entries_.size(),
                 "ArtifactReader: entry index out of range");
    const Entry& e = entries_[i];
    MX_CHECK_ARG(e.kind == EntryKind::RawF32,
                 "ArtifactReader: entry \""
                     << e.name << "\" is packed, not a raw tensor");
    tensor::Tensor t(e.dims);
    std::memcpy(t.data(), payload(i).data(),
                static_cast<std::size_t>(t.numel()) * sizeof(float));
    return t;
}

void
ArtifactReader::load_into(const std::vector<nn::FrozenStateRef>& refs,
                          const LoadOptions& opts) const
{
    if (refs.size() != entries_.size())
        throw SchemaError(
            "artifact \"" + path_ + "\": model collects " +
            std::to_string(refs.size()) + " state slots but the file "
            "holds " + std::to_string(entries_.size()) +
            " entries — wrong architecture for this artifact");
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const Entry& e = entries_[i];
        const nn::FrozenStateRef& ref = refs[i];
        const std::string where =
            "artifact \"" + path_ + "\" entry \"" + e.name + "\"";

        if (e.kind == EntryKind::RawF32) {
            if (ref.param->value.shape() != e.dims)
                throw SchemaError(where + ": shape mismatch against "
                                          "slot \"" + ref.name + "\"");
            ref.param->value = raw_tensor(i);
            if (e.frozen == FrozenState::Snapshot && ref.frozen != nullptr)
                *ref.frozen = nn::FrozenTensor::build(ref.param->value,
                                                      std::nullopt);
        } else {
            if (ref.frozen == nullptr)
                throw SchemaError(where + ": packed entry but slot \"" +
                                  ref.name + "\" cannot hold a frozen "
                                             "snapshot");
            if (ref.param->value.ndim() != 2 ||
                ref.param->value.dim(0) != e.dims[0] ||
                ref.param->value.dim(1) != e.dims[1])
                throw SchemaError(where + ": shape mismatch against "
                                          "slot \"" + ref.name + "\"");
            const nn::FrozenTensor& fz =
                frozen(i, opts.materialize_values);
            *ref.frozen = fz; // O(1): shares the cached payload.
            // The FP32 parameter mirrors the grid values when they
            // were materialized; otherwise it stays zeroed — the
            // loaded model is serve-only either way.
            if (fz.values().numel() > 0)
                ref.param->value = fz.values();
            else
                ref.param->value.fill(0.0f);
        }

        if (ref.spec != nullptr && e.spec.has_value())
            *ref.spec = *e.spec;
        if (ref.storage_format != nullptr)
            *ref.storage_format = e.format;
        if (ref.frozen_flag != nullptr)
            *ref.frozen_flag = e.frozen != FrozenState::None;
    }
}

std::size_t
ArtifactReader::file_size() const
{
    return map_->size;
}

bool
ArtifactReader::mmapped() const
{
    return map_->mmapped;
}

} // namespace artifact
} // namespace mx
