#pragma once

/**
 * @file
 * The MXFROZEN on-disk format: serialized frozen-model artifacts.
 *
 * The paper's deployment story quantizes weights ONCE and serves the
 * resulting bit streams; an artifact is that split made durable.  A
 * frozen model (nn/frozen.h) is written to disk as its packed MX/BFP
 * streams plus the manifest needed to rebuild every FrozenTensor
 * handle, and a serving process mmaps the file read-only and
 * materializes handles whose payloads point straight into the mapping
 * — N replicas (serve/engine.h) share the one mapping, and cold start
 * skips quantize+pack entirely.
 *
 * ## Layout (version 1, all integers little-endian)
 *
 *   [ header  | 80 bytes, fixed ]
 *   [ config  | model-family-specific blob           ]
 *   [ manifest| entry_count records                  ]
 *   [ payloads| 8-byte-aligned packed streams / FP32 ]
 *
 * Header (offsets in bytes):
 *    0  magic            "MXFROZEN" (8 bytes)
 *    8  version          u32 (this writer emits 1)
 *   12  header_size      u32 (80)
 *   16  model_family     u32 (ModelFamily)
 *   20  entry_count      u32
 *   24  config_offset    u64     40 manifest_offset  u64
 *   32  config_size      u64     48 manifest_size    u64
 *   56  file_size        u64 (must equal the on-disk size)
 *   64  config_crc       u32     68 manifest_crc     u32
 *   72  header_crc       u32 (CRC32 of the 80 header bytes with this
 *                             field zeroed)
 *   76  reserved         u32 (0)
 *
 * Manifest record, per entry (Layer::collect_state order — load is
 * positional; names are for diagnostics):
 *   str name | u8 kind | u8 frozen | u8 has_spec | u8 rounding |
 *   u32 ndim + ndim x u64 dims | opt<BdrFormat> | [QuantSpec] |
 *   u64 payload_offset | u64 payload_size | u64 payload_bits |
 *   u32 payload_crc
 *
 * ## Integrity model
 * Three CRC32 checksums (poly 0xEDB88320) cover header, config, and
 * manifest; each payload carries its own.  The reader validates
 * eagerly at open — magic, version, header CRC, section ranges,
 * section CRCs, manifest schema, per-entry payload ranges and CRCs —
 * so no FrozenTensor handle ever escapes a corrupt file, and every
 * failure is a distinct typed error (below).
 *
 * ## Versioning rules
 * `version` is the format generation: any change to the byte layout of
 * header, manifest, config, or payloads bumps it, and a reader opens
 * only versions it knows (no silent forward-compat).  The golden
 * artifact under tests/data/ pins version 1's exact bytes.
 *
 * ## Rounding invariant
 * Stochastic rounding can never reproduce a frozen snapshot, so it is
 * rejected in BOTH places it could enter: at freeze time
 * (nn::FrozenTensor::build) and at load time (ArtifactReader's entry
 * validation throws UnsupportedPlanError) — a file hand-crafted to
 * claim a stochastic plan is rejected even though no writer emits one.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/bdr_format.h"
#include "core/check.h"
#include "core/rounding.h"
#include "nn/quant.h"

namespace mx {
namespace artifact {

/** Format magic ("MXFROZEN") and the generation this code speaks. */
inline constexpr char kMagic[8] = {'M', 'X', 'F', 'R', 'O', 'Z', 'E', 'N'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kHeaderSize = 80;

/** Which model family's config blob the artifact carries. */
enum class ModelFamily : std::uint32_t
{
    Mlp = 1,
    ResNet = 2,
    Bert = 3,
    Gpt = 4,
    Seq2Seq = 5,
    Dlrm = 6,
};

/** How one entry's payload is encoded. */
enum class EntryKind : std::uint8_t
{
    RawF32 = 0,     ///< FP32 tensor bytes (biases, norms, raw tables).
    PackedPow2 = 1, ///< Row-aware pow2 block stream (MX/BFP) — loads
                    ///< zero-copy into the mapping.
    PackedFlat = 2, ///< Software-scaled flat stream (scaled INT, VSQ).
};

/** The entry's freeze state at save time. */
enum class FrozenState : std::uint8_t
{
    None = 0,     ///< Plain parameter, no snapshot.
    Snapshot = 1, ///< A FrozenTensor snapshot existed (quantized or
                  ///< FP32-passthrough) and is rebuilt at load.
    FlagOnly = 2, ///< frozen() was a bare flag with no snapshot
                  ///< (LayerNorm, format-less Embedding).
};

/** @name Typed failure modes
 * Every way an artifact can be unusable gets its own type, so callers
 * (and the corruption-matrix test) can tell them apart.  All derive
 * from ArtifactError -> mx::Error.
 * @{
 */
class ArtifactError : public Error
{
  public:
    explicit ArtifactError(const std::string& what) : Error(what) {}
};

/** open/read/write/mmap syscall failure. */
class ArtifactIoError : public ArtifactError
{
  public:
    explicit ArtifactIoError(const std::string& what) : ArtifactError(what)
    {
    }
};

/** The first 8 bytes are not "MXFROZEN" — not an artifact at all. */
class BadMagicError : public ArtifactError
{
  public:
    explicit BadMagicError(const std::string& what) : ArtifactError(what) {}
};

/** A format generation this reader does not speak. */
class UnsupportedVersionError : public ArtifactError
{
  public:
    explicit UnsupportedVersionError(const std::string& what)
        : ArtifactError(what)
    {
    }
};

/** The file ends before the bytes its header declares. */
class TruncatedError : public ArtifactError
{
  public:
    explicit TruncatedError(const std::string& what) : ArtifactError(what)
    {
    }
};

/** A CRC32 mismatch; the message names the failing section. */
class ChecksumError : public ArtifactError
{
  public:
    explicit ChecksumError(const std::string& what) : ArtifactError(what) {}
};

/** A section or payload offset/size reaches outside the file. */
class RangeError : public ArtifactError
{
  public:
    explicit RangeError(const std::string& what) : ArtifactError(what) {}
};

/** Checksums pass but the decoded contents are malformed (bad enum
 *  code, inconsistent sizes, config/model mismatch). */
class SchemaError : public ArtifactError
{
  public:
    explicit SchemaError(const std::string& what) : ArtifactError(what) {}
};

/** The file declares a quantization plan this build refuses to serve —
 *  today, stochastic rounding (see the file-header invariant). */
class UnsupportedPlanError : public ArtifactError
{
  public:
    explicit UnsupportedPlanError(const std::string& what)
        : ArtifactError(what)
    {
    }
};
/** @} */

/** CRC32 (IEEE 802.3, poly 0xEDB88320, init/final xor 0xFFFFFFFF) of
 *  @p n bytes; chain sections by passing the previous result as
 *  @p seed. */
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0);

/** Little-endian field serializer for config blobs and the manifest. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void raw(const void* data, std::size_t n);
    /** u32 length + bytes. */
    void str(const std::string& s);
    /** All BdrFormat fields (the catalog name is stored but the
     *  numeric fields are authoritative at load). */
    void format(const core::BdrFormat& f);
    /** u8 present + format. */
    void opt_format(const std::optional<core::BdrFormat>& f);
    /** forward / weight_forward / backward / rounding. */
    void spec(const nn::QuantSpec& s);

    const std::vector<std::uint8_t>& data() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian field reader over a byte span (e.g. a
 *  slice of the mapping).  Overruns and bad enum codes throw
 *  SchemaError naming @p section — by the time parsing runs, the
 *  section's CRC has already passed, so a malformed field is a schema
 *  problem, not corruption. */
class ByteReader
{
  public:
    ByteReader(std::span<const std::uint8_t> bytes, std::string section)
        : bytes_(bytes), section_(std::move(section))
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    void raw(void* out, std::size_t n);
    std::string str();
    core::BdrFormat format();
    std::optional<core::BdrFormat> opt_format();
    nn::QuantSpec spec();
    /** Rounding code -> enum; rejects unknown codes (SchemaError). */
    core::RoundingMode rounding();

    std::size_t position() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool exhausted() const { return pos_ == bytes_.size(); }

    /** The section name (for error messages raised by callers). */
    const std::string& section() const { return section_; }

  private:
    void need(std::size_t n) const;

    std::span<const std::uint8_t> bytes_;
    std::string section_;
    std::size_t pos_ = 0;
};

/** One manifest record (metadata only; payload bytes stay in the
 *  file/mapping). */
struct Entry
{
    std::string name;                       ///< Diagnostic state name.
    EntryKind kind = EntryKind::RawF32;
    FrozenState frozen = FrozenState::None;
    std::vector<std::int64_t> dims;
    /** Packed kinds: the stream's format.  RawF32: an Embedding's
     *  storage format slot (normally nullopt). */
    std::optional<core::BdrFormat> format;
    /** Rounding the stream was packed under (deterministic only). */
    core::RoundingMode rounding = core::RoundingMode::NearestEven;
    /** The owning layer's QuantSpec, when the layer has one. */
    std::optional<nn::QuantSpec> spec;

    std::uint64_t payload_offset = 0; ///< Absolute file offset (8-aligned).
    std::uint64_t payload_size = 0;   ///< Payload bytes.
    std::uint64_t payload_bits = 0;   ///< Exact stream bits (RawF32: size*8).
    std::uint32_t payload_crc = 0;

    std::int64_t numel() const;
};

/** Serialize one manifest record. */
void write_entry(ByteWriter& w, const Entry& e);
/** Parse one manifest record (SchemaError on malformed fields). */
Entry read_entry(ByteReader& r);

/** The fixed header, parsed.  serialize() computes header_crc. */
struct Header
{
    std::uint32_t version = kVersion;
    ModelFamily family = ModelFamily::Mlp;
    std::uint32_t entry_count = 0;
    std::uint64_t config_offset = 0, config_size = 0;
    std::uint64_t manifest_offset = 0, manifest_size = 0;
    std::uint64_t file_size = 0;
    std::uint32_t config_crc = 0, manifest_crc = 0;

    /** The 80 header bytes with header_crc filled in. */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Parse and validate @p file's first bytes in the documented order:
     * size >= 80 (TruncatedError) -> magic (BadMagicError) -> version
     * (UnsupportedVersionError) -> header CRC (ChecksumError) ->
     * declared vs actual size (TruncatedError / SchemaError) ->
     * section ranges (RangeError).
     */
    static Header parse(std::span<const std::uint8_t> file);
};

} // namespace artifact
} // namespace mx
