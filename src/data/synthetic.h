#pragma once

/**
 * @file
 * Seeded synthetic datasets standing in for the paper's proprietary /
 * large-scale corpora (see DESIGN.md, substitution table).  Every
 * generator plants learnable structure so that FP32-vs-MX quality deltas
 * are measurable, and is deterministic given its seed so paired
 * comparisons across formats see identical data.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "stats/rng.h"
#include "tensor/tensor.h"

namespace mx {
namespace data {

/** Dense-feature classification batch. */
struct ClassificationBatch
{
    tensor::Tensor x;        ///< [n, dim]
    std::vector<int> labels; ///< size n
};

/** Integer-sequence batch (LM / encoder tasks). */
struct SequenceBatch
{
    std::vector<int> tokens; ///< [n * seq_len], row-major
    std::vector<int> labels; ///< task-dependent
    std::int64_t n = 0;
    std::int64_t seq_len = 0;

    /** Row @p i as a span into tokens. */
    std::vector<int>
    row(std::int64_t i) const
    {
        auto b = tokens.begin() + i * seq_len;
        return std::vector<int>(b, b + seq_len);
    }
};

/**
 * Gaussian clusters (ImageNet-classification stand-in for MLPs):
 * `classes` anisotropic Gaussians with unit-order separation.
 */
class GaussianClusters
{
  public:
    GaussianClusters(int classes, int dim, std::uint64_t seed);
    ClassificationBatch sample(std::int64_t n, stats::Rng& rng) const;
    int classes() const { return classes_; }
    int dim() const { return dim_; }

  private:
    int classes_, dim_;
    tensor::Tensor centers_; // [classes, dim]
};

/**
 * Cluster images for the CNN benchmarks: 1x`size`x`size` images whose
 * class determines the location/orientation of a bright blob, plus
 * Gaussian pixel noise.
 */
class ClusterImages
{
  public:
    ClusterImages(int classes, int size, std::uint64_t seed);
    /** Returns x with shape [n, 1, size, size]. */
    ClassificationBatch sample(std::int64_t n, stats::Rng& rng) const;
    int classes() const { return classes_; }
    int size() const { return size_; }

  private:
    int classes_, size_;
    std::uint64_t seed_;
};

/**
 * Pattern sequences for encoder-style classification (BERT stand-in):
 * each sequence carries one of `classes` planted bigram patterns at a
 * random position in a background of uniform tokens.
 */
class PatternSequences
{
  public:
    PatternSequences(int classes, int vocab, int seq_len,
                     std::uint64_t seed);
    SequenceBatch sample(std::int64_t n, stats::Rng& rng) const;
    int classes() const { return classes_; }
    int vocab() const { return vocab_; }

  private:
    int classes_, vocab_, seq_len_;
    std::vector<std::pair<int, int>> patterns_;
};

/**
 * Span-extraction QA (SQuAD stand-in, Table V): the first token names a
 * "question id"; the answer is the contiguous run of tokens from that
 * id's alphabet planted somewhere in the sequence.  Labels are
 * (start, end) pairs encoded as labels[2i], labels[2i+1].
 */
class SpanQa
{
  public:
    SpanQa(int num_questions, int vocab, int seq_len, std::uint64_t seed);
    SequenceBatch sample(std::int64_t n, stats::Rng& rng) const;
    int vocab() const { return vocab_; }
    int seq_len() const { return seq_len_; }

  private:
    int num_questions_, vocab_, seq_len_;
};

/**
 * Order-2 Markov character stream (generative LM stand-in for the GPT
 * and Fig 9 experiments): a random but fixed sparse transition table
 * gives the stream ~2.5-3 bits/char of learnable structure.
 */
class MarkovText
{
  public:
    MarkovText(int vocab, std::uint64_t seed);
    /** Contiguous token stream of length n. */
    std::vector<int> stream(std::int64_t n, stats::Rng& rng) const;
    /** Windows of seq_len+1 tokens (input + next-token targets). */
    SequenceBatch windows(std::int64_t n, std::int64_t seq_len,
                          stats::Rng& rng) const;
    int vocab() const { return vocab_; }

  private:
    int vocab_;
    std::vector<std::vector<std::pair<int, double>>> table_; // cdf rows
};

/**
 * Deterministic token-mapped reversal "translation" (WMT stand-in for
 * the seq2seq benchmark): target = reverse(pi(source)) for a fixed
 * random permutation pi.  labels holds the target sequence.
 */
class TranslationPairs
{
  public:
    TranslationPairs(int vocab, int seq_len, std::uint64_t seed);
    SequenceBatch sample(std::int64_t n, stats::Rng& rng) const;
    /** The gold target for one source row (for BLEU scoring). */
    std::vector<int> translate(const std::vector<int>& source) const;
    int vocab() const { return vocab_; }

  private:
    int vocab_, seq_len_;
    std::vector<int> mapping_;
};

/** One click-through sample: categorical ids + dense features + label. */
struct ClickBatch
{
    std::vector<int> categorical; ///< [n * num_tables]
    tensor::Tensor dense;         ///< [n, dense_dim]
    std::vector<int> labels;      ///< size n
    std::int64_t n = 0;
};

/**
 * Power-law click logs (Criteo stand-in, Tables III/VI): categorical
 * features drawn Zipf-style; the label follows a logistic model over
 * planted per-id weights and the dense features — so embedding-table and
 * MLP quantization both matter, as in production DLRM.
 */
class ClickLogs
{
  public:
    ClickLogs(int num_tables, int vocab_per_table, int dense_dim,
              std::uint64_t seed);
    ClickBatch sample(std::int64_t n, stats::Rng& rng) const;
    int num_tables() const { return num_tables_; }
    int vocab_per_table() const { return vocab_; }
    int dense_dim() const { return dense_dim_; }

  private:
    int num_tables_, vocab_, dense_dim_;
    std::vector<float> id_weights_;    // [num_tables * vocab]
    std::vector<float> dense_weights_; // [dense_dim]
};

} // namespace data
} // namespace mx
