#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mx {
namespace data {

using tensor::Tensor;

GaussianClusters::GaussianClusters(int classes, int dim, std::uint64_t seed)
    : classes_(classes), dim_(dim)
{
    MX_CHECK_ARG(classes >= 2 && dim >= 1, "GaussianClusters: bad config");
    stats::Rng rng(seed);
    centers_ = Tensor::randn({classes, dim}, rng, 1.6f);
}

ClassificationBatch
GaussianClusters::sample(std::int64_t n, stats::Rng& rng) const
{
    ClassificationBatch b;
    b.x = Tensor({n, dim_});
    b.labels.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        int c = static_cast<int>(rng.uniform_u64(classes_));
        b.labels[static_cast<std::size_t>(i)] = c;
        for (int j = 0; j < dim_; ++j)
            b.x.data()[i * dim_ + j] =
                centers_.data()[c * dim_ + j] +
                static_cast<float>(rng.normal(0.0, 1.0));
    }
    return b;
}

ClusterImages::ClusterImages(int classes, int size, std::uint64_t seed)
    : classes_(classes), size_(size), seed_(seed)
{
    MX_CHECK_ARG(classes >= 2 && size >= 4, "ClusterImages: bad config");
}

ClassificationBatch
ClusterImages::sample(std::int64_t n, stats::Rng& rng) const
{
    ClassificationBatch b;
    b.x = Tensor({n, 1, size_, size_});
    b.labels.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        int c = static_cast<int>(rng.uniform_u64(classes_));
        b.labels[static_cast<std::size_t>(i)] = c;
        // Blob center and orientation derive deterministically from the
        // class; pixel noise makes the task non-trivial.
        double cx = (0.25 + 0.5 * ((c % 3) / 2.0)) * size_;
        double cy = (0.25 + 0.5 * (((c / 3) % 3) / 2.0)) * size_;
        double angle = (c * 2.399963) + 0.3; // golden-angle spread
        double ex = std::cos(angle), ey = std::sin(angle);
        for (int y = 0; y < size_; ++y) {
            for (int x = 0; x < size_; ++x) {
                double dx = x - cx, dy = y - cy;
                double along = dx * ex + dy * ey;
                double across = -dx * ey + dy * ex;
                double v = 2.0 * std::exp(-(along * along / 6.0 +
                                            across * across / 1.5));
                v += rng.normal(0.0, 0.35);
                b.x.data()[(i * size_ + y) * size_ + x] =
                    static_cast<float>(v);
            }
        }
    }
    return b;
}

PatternSequences::PatternSequences(int classes, int vocab, int seq_len,
                                   std::uint64_t seed)
    : classes_(classes), vocab_(vocab), seq_len_(seq_len)
{
    MX_CHECK_ARG(classes >= 2 && vocab >= classes + 4 && seq_len >= 4,
                 "PatternSequences: bad config");
    stats::Rng rng(seed);
    patterns_.reserve(static_cast<std::size_t>(classes));
    for (int c = 0; c < classes; ++c) {
        int a = static_cast<int>(rng.uniform_u64(vocab_));
        int b = static_cast<int>(rng.uniform_u64(vocab_));
        patterns_.emplace_back(a, b);
    }
}

SequenceBatch
PatternSequences::sample(std::int64_t n, stats::Rng& rng) const
{
    SequenceBatch s;
    s.n = n;
    s.seq_len = seq_len_;
    s.tokens.resize(static_cast<std::size_t>(n * seq_len_));
    s.labels.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        int c = static_cast<int>(rng.uniform_u64(classes_));
        s.labels[static_cast<std::size_t>(i)] = c;
        int* row = s.tokens.data() + i * seq_len_;
        for (int t = 0; t < seq_len_; ++t)
            row[t] = static_cast<int>(rng.uniform_u64(vocab_));
        int pos = static_cast<int>(rng.uniform_u64(seq_len_ - 1));
        row[pos] = patterns_[static_cast<std::size_t>(c)].first;
        row[pos + 1] = patterns_[static_cast<std::size_t>(c)].second;
    }
    return s;
}

SpanQa::SpanQa(int num_questions, int vocab, int seq_len,
               std::uint64_t seed)
    : num_questions_(num_questions), vocab_(vocab), seq_len_(seq_len)
{
    MX_CHECK_ARG(num_questions >= 1 &&
                 vocab >= num_questions * 2 + 4 && seq_len >= 8,
                 "SpanQa: bad config");
    (void)seed;
}

SequenceBatch
SpanQa::sample(std::int64_t n, stats::Rng& rng) const
{
    // Token space: [0, num_questions) question ids;
    // [num_questions, 2*num_questions) answer-alphabet tokens (one per
    // question); the rest is background.
    SequenceBatch s;
    s.n = n;
    s.seq_len = seq_len_;
    s.tokens.resize(static_cast<std::size_t>(n * seq_len_));
    s.labels.resize(static_cast<std::size_t>(2 * n));
    const int background_lo = 2 * num_questions_;
    for (std::int64_t i = 0; i < n; ++i) {
        int* row = s.tokens.data() + i * seq_len_;
        int q = static_cast<int>(rng.uniform_u64(num_questions_));
        row[0] = q;
        for (int t = 1; t < seq_len_; ++t)
            row[t] = background_lo +
                     static_cast<int>(
                         rng.uniform_u64(vocab_ - background_lo));
        int span_len = 1 + static_cast<int>(rng.uniform_u64(3));
        int start = 1 + static_cast<int>(
            rng.uniform_u64(seq_len_ - 1 - span_len));
        for (int t = 0; t < span_len; ++t)
            row[start + t] = num_questions_ + q;
        s.labels[static_cast<std::size_t>(2 * i)] = start;
        s.labels[static_cast<std::size_t>(2 * i + 1)] =
            start + span_len - 1;
    }
    return s;
}

MarkovText::MarkovText(int vocab, std::uint64_t seed) : vocab_(vocab)
{
    MX_CHECK_ARG(vocab >= 4, "MarkovText: vocab too small");
    stats::Rng rng(seed);
    table_.resize(static_cast<std::size_t>(vocab * vocab));
    for (auto& row : table_) {
        // Sparse transitions: ~3 likely successors per context, with a
        // thin uniform floor so every continuation stays possible.  The
        // per-token entropy lands well below log(vocab), giving the LM
        // benchmarks a clear learnable signal.
        std::vector<double> w(static_cast<std::size_t>(vocab_), 0.004);
        for (int k = 0; k < 3; ++k)
            w[rng.uniform_u64(static_cast<std::uint64_t>(vocab_))] +=
                1.0 + 2.0 * rng.uniform();
        double total = 0;
        for (double x : w)
            total += x;
        double acc = 0;
        row.reserve(w.size());
        for (int t = 0; t < vocab_; ++t) {
            acc += w[static_cast<std::size_t>(t)] / total;
            row.emplace_back(t, acc);
        }
    }
}

std::vector<int>
MarkovText::stream(std::int64_t n, stats::Rng& rng) const
{
    std::vector<int> out(static_cast<std::size_t>(n));
    int prev2 = 0, prev1 = 1;
    for (std::int64_t i = 0; i < n; ++i) {
        const auto& row =
            table_[static_cast<std::size_t>(prev2 * vocab_ + prev1)];
        double u = rng.uniform();
        int next = vocab_ - 1;
        for (const auto& [tok, cdf] : row) {
            if (u <= cdf) {
                next = tok;
                break;
            }
        }
        out[static_cast<std::size_t>(i)] = next;
        prev2 = prev1;
        prev1 = next;
    }
    return out;
}

SequenceBatch
MarkovText::windows(std::int64_t n, std::int64_t seq_len,
                    stats::Rng& rng) const
{
    // One long stream cut into windows; labels are next-token targets.
    std::vector<int> s = stream(n * (seq_len + 1) + 1, rng);
    SequenceBatch b;
    b.n = n;
    b.seq_len = seq_len;
    b.tokens.resize(static_cast<std::size_t>(n * seq_len));
    b.labels.resize(static_cast<std::size_t>(n * seq_len));
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t base = i * (seq_len + 1);
        for (std::int64_t t = 0; t < seq_len; ++t) {
            b.tokens[static_cast<std::size_t>(i * seq_len + t)] =
                s[static_cast<std::size_t>(base + t)];
            b.labels[static_cast<std::size_t>(i * seq_len + t)] =
                s[static_cast<std::size_t>(base + t + 1)];
        }
    }
    return b;
}

TranslationPairs::TranslationPairs(int vocab, int seq_len,
                                   std::uint64_t seed)
    : vocab_(vocab), seq_len_(seq_len)
{
    MX_CHECK_ARG(vocab >= 4 && seq_len >= 2, "TranslationPairs: bad config");
    stats::Rng rng(seed);
    mapping_.resize(static_cast<std::size_t>(vocab));
    for (int i = 0; i < vocab; ++i)
        mapping_[static_cast<std::size_t>(i)] = i;
    // Fisher-Yates with our RNG for a fixed permutation.
    for (int i = vocab - 1; i > 0; --i) {
        int j = static_cast<int>(rng.uniform_u64(
            static_cast<std::uint64_t>(i + 1)));
        std::swap(mapping_[static_cast<std::size_t>(i)],
                  mapping_[static_cast<std::size_t>(j)]);
    }
}

std::vector<int>
TranslationPairs::translate(const std::vector<int>& source) const
{
    std::vector<int> tgt(source.size());
    for (std::size_t i = 0; i < source.size(); ++i)
        tgt[source.size() - 1 - i] =
            mapping_[static_cast<std::size_t>(source[i])];
    return tgt;
}

SequenceBatch
TranslationPairs::sample(std::int64_t n, stats::Rng& rng) const
{
    SequenceBatch b;
    b.n = n;
    b.seq_len = seq_len_;
    b.tokens.resize(static_cast<std::size_t>(n * seq_len_));
    b.labels.resize(static_cast<std::size_t>(n * seq_len_));
    for (std::int64_t i = 0; i < n; ++i) {
        std::vector<int> src(static_cast<std::size_t>(seq_len_));
        for (auto& t : src)
            t = static_cast<int>(rng.uniform_u64(vocab_));
        std::vector<int> tgt = translate(src);
        for (std::int64_t t = 0; t < seq_len_; ++t) {
            b.tokens[static_cast<std::size_t>(i * seq_len_ + t)] =
                src[static_cast<std::size_t>(t)];
            b.labels[static_cast<std::size_t>(i * seq_len_ + t)] =
                tgt[static_cast<std::size_t>(t)];
        }
    }
    return b;
}

ClickLogs::ClickLogs(int num_tables, int vocab_per_table, int dense_dim,
                     std::uint64_t seed)
    : num_tables_(num_tables), vocab_(vocab_per_table), dense_dim_(dense_dim)
{
    MX_CHECK_ARG(num_tables >= 1 && vocab_per_table >= 2 && dense_dim >= 1,
                 "ClickLogs: bad config");
    stats::Rng rng(seed);
    id_weights_.resize(static_cast<std::size_t>(num_tables * vocab_));
    for (auto& w : id_weights_)
        w = static_cast<float>(rng.normal(0.0, 0.8));
    dense_weights_.resize(static_cast<std::size_t>(dense_dim));
    for (auto& w : dense_weights_)
        w = static_cast<float>(rng.normal(0.0, 0.6));
}

ClickBatch
ClickLogs::sample(std::int64_t n, stats::Rng& rng) const
{
    ClickBatch b;
    b.n = n;
    b.categorical.resize(static_cast<std::size_t>(n * num_tables_));
    b.dense = Tensor({n, dense_dim_});
    b.labels.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        double logit = -0.4; // base CTR below 50%
        for (int t = 0; t < num_tables_; ++t) {
            // Zipf-ish draw: squash a uniform through a power law.
            double u = rng.uniform();
            int id = static_cast<int>(std::pow(u, 2.2) * vocab_);
            id = std::min(id, vocab_ - 1);
            b.categorical[static_cast<std::size_t>(i * num_tables_ + t)] =
                id;
            logit += id_weights_[static_cast<std::size_t>(t * vocab_ + id)];
        }
        for (int j = 0; j < dense_dim_; ++j) {
            float v = static_cast<float>(rng.normal(0.0, 1.0));
            b.dense.data()[i * dense_dim_ + j] = v;
            logit += dense_weights_[static_cast<std::size_t>(j)] * v;
        }
        double p = 1.0 / (1.0 + std::exp(-logit * 0.55));
        b.labels[static_cast<std::size_t>(i)] = rng.bernoulli(p) ? 1 : 0;
    }
    return b;
}

} // namespace data
} // namespace mx
