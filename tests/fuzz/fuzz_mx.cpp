/**
 * @file
 * Fuzz harness for the two untrusted-bytes decoders:
 *
 *   leg 0: artifact::ArtifactReader — the open path.  The contract
 *          under test is reader.h's eager validation: ANY byte string
 *          either opens fully validated or throws the format.h error
 *          taxonomy (ArtifactError).  Crashes, sanitizer reports, and
 *          non-taxonomy exceptions are findings.
 *   leg 1: core::BitReader — LSB-first field extraction.  Contract:
 *          any read schedule either yields values or throws
 *          ArgumentError ("out of data"/"bad field width"); no OOB.
 *
 * The first input byte selects the leg; the rest is the payload, so
 * one corpus (seeded from tests/data/) drives both.
 *
 * Built two ways by tests/fuzz/CMakeLists.txt:
 *   * Clang: -fsanitize=fuzzer, libFuzzer provides main() — the real
 *     coverage-guided run (CI: 60s smoke in the sanitize job).
 *   * otherwise: a standalone main() below replays files/dirs passed
 *     as arguments, so the harness itself stays buildable and the
 *     corpus replayable under GCC ASan locally.
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "artifact/format.h"
#include "artifact/reader.h"
#include "core/bitstream.h"
#include "core/check.h"

namespace {

/** Temp file holding the fuzz payload (the reader API is path-based). */
std::string
spill(const std::uint8_t* data, std::size_t size)
{
    static const std::string path = [] {
        const char* tmp = std::getenv("TMPDIR"); // NOLINT: harness tier
        std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
        return dir + "/mx_fuzz_artifact.bin";
    }();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return {};
    if (size != 0)
        std::fwrite(data, 1, size, f);
    std::fclose(f);
    return path;
}

void
fuzz_artifact_open(const std::uint8_t* data, std::size_t size)
{
    const std::string path = spill(data, size);
    if (path.empty())
        return;
    try {
        mx::artifact::ArtifactReader reader(path);
        // Well-formed input (e.g. the golden seed): walk the frozen
        // handles so the zero-copy path executes under the sanitizer.
        for (std::size_t i = 0; i < reader.entry_count(); ++i)
            (void)reader.frozen(i);
    } catch (const mx::artifact::ArtifactError&) {
        // The documented rejection taxonomy: expected.
    } catch (const mx::ArgumentError&) {
        // Validator-level MX_CHECK_ARG rejections: expected.
    }
}

void
fuzz_bit_reader(const std::uint8_t* data, std::size_t size)
{
    if (size == 0)
        return;
    // First half schedules the reads, second half is the bitstream, so
    // the fuzzer can mutate widths and payload independently.
    const std::size_t split = size / 2;
    std::vector<std::uint8_t> stream(data + split, data + size);
    mx::core::BitReader reader(stream);
    std::uint64_t sink = 0;
    try {
        for (std::size_t i = 0; i < split; ++i) {
            // 0..66: out-of-range widths must throw, not misread.
            sink ^= reader.read(static_cast<int>(data[i] % 67));
        }
    } catch (const mx::ArgumentError&) {
        // "bad field width" / "out of data": the documented contract.
    }
    (void)sink;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    if (size == 0)
        return 0;
    if ((data[0] & 1) == 0)
        fuzz_artifact_open(data + 1, size - 1);
    else
        fuzz_bit_reader(data + 1, size - 1);
    return 0;
}

#ifndef MX_FUZZ_LIBFUZZER
// Standalone replay driver (non-Clang builds): run every file named on
// the command line through the fuzz entry point once.
#include <filesystem>
#include <fstream>

namespace {

int
replay_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "fuzz_mx: cannot read %s\n", path.c_str());
        return 1;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    // Replay under both legs regardless of the selector byte so a
    // seed corpus of real artifacts exercises the BitReader too.
    for (std::uint8_t selector : {std::uint8_t{0}, std::uint8_t{1}}) {
        std::vector<std::uint8_t> input;
        input.reserve(bytes.size() + 1);
        input.push_back(selector);
        input.insert(input.end(), bytes.begin(), bytes.end());
        LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    int failures = 0;
    int replayed = 0;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg(argv[i]);
        if (std::filesystem::is_directory(arg)) {
            for (const auto& entry :
                 std::filesystem::recursive_directory_iterator(arg)) {
                if (!entry.is_regular_file())
                    continue;
                failures += replay_file(entry.path().string());
                ++replayed;
            }
        } else {
            failures += replay_file(arg.string());
            ++replayed;
        }
    }
    std::printf("fuzz_mx: replayed %d input(s), %d failure(s)\n",
                replayed, failures);
    return failures == 0 ? 0 : 1;
}
#endif // !MX_FUZZ_LIBFUZZER
