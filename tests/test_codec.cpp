/**
 * @file
 * Tests for the packed format codecs: bit-level roundtrip, agreement with
 * fake quantization, and exact storage accounting.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/check.h"

#include <cmath>

#include "formats/block_codec.h"
#include "formats/packed.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::core;
using namespace mx::formats;

TEST(BitStream, WriteReadRoundTrip)
{
    BitWriter w;
    w.write(0b101, 3);
    w.write(0xabcd, 16);
    w.write(1, 1);
    w.write(0x123456789abcdef0ull, 64);
    EXPECT_EQ(w.bit_count(), 84u);

    auto bytes = w.bytes();
    BitReader r(bytes);
    EXPECT_EQ(r.read(3), 0b101u);
    EXPECT_EQ(r.read(16), 0xabcdu);
    EXPECT_EQ(r.read(1), 1u);
    EXPECT_EQ(r.read(64), 0x123456789abcdef0ull);
}

TEST(BitStream, ReaderThrowsPastEnd)
{
    BitWriter w;
    w.write(0xff, 8);
    auto bytes = w.bytes();
    BitReader r(bytes);
    r.read(8);
    EXPECT_THROW(r.read(1), ArgumentError);
}

namespace {

std::vector<float>
random_values(std::size_t n, std::uint64_t seed)
{
    stats::Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal(0.0, std::exp(rng.normal())));
    return v;
}

} // namespace

class CodecRoundTrip : public ::testing::TestWithParam<BdrFormat>
{
};

TEST_P(CodecRoundTrip, UnpackMatchesFakeQuantize)
{
    const BdrFormat fmt = GetParam();
    auto x = random_values(333, 2024); // deliberately not a k1 multiple
    PackedTensor p = pack(fmt, x);
    auto decoded = unpack(p);
    auto reference = fake_quantize(fmt, x);
    ASSERT_EQ(decoded.size(), reference.size());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        if (fmt.s_kind == ScaleKind::Pow2Hw) {
            EXPECT_EQ(decoded[i], reference[i])
                << fmt.name << " index " << i;
        } else {
            // SW-scaled paths store the FP32 scale; tiny rounding of the
            // stored scale vs the double-precision reference is allowed.
            EXPECT_NEAR(decoded[i], reference[i],
                        2e-5f * (std::fabs(reference[i]) + 1e-4f))
                << fmt.name << " index " << i;
        }
    }
}

TEST_P(CodecRoundTrip, BitSizeMatchesAccounting)
{
    const BdrFormat fmt = GetParam();
    auto x = random_values(512, 99);
    PackedTensor p = pack(fmt, x);
    EXPECT_EQ(p.bit_size, packed_bits(fmt, x.size())) << fmt.name;
    EXPECT_EQ(p.bytes.size(), (p.bit_size + 7) / 8) << fmt.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, CodecRoundTrip,
    ::testing::Values(mx9(), mx6(), mx4(), msfp16(), msfp12(),
                      mx_custom(5, 8, 32, 2, 4), fp8_e4m3(), fp8_e5m2(),
                      fp4_e2m1(), fp6_e2m3(), scaled_int(4), scaled_int(8),
                      vsq(4, 4), vsq(8, 8)),
    [](const ::testing::TestParamInfo<BdrFormat>& info) {
        std::string n = info.param.name;
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Codec, Mx9TileIs2304Bits)
{
    // 256 elements: 16 blocks x (8-bit exp + 8 x 1-bit micro-exp +
    // 16 x 8-bit elements) = 2304 bits — the Section IV-B packing input.
    EXPECT_EQ(packed_bits(mx9(), 256), 2304u);
    EXPECT_EQ(packed_bits(mx6(), 256), 1536u);
    EXPECT_EQ(packed_bits(mx4(), 256), 1024u);
    EXPECT_EQ(packed_bits(msfp16(), 256), 2176u);
}

TEST(Codec, EmptyTensor)
{
    PackedTensor p = pack(mx9(), std::vector<float>{});
    EXPECT_EQ(p.bit_size, 0u);
    EXPECT_TRUE(unpack(p).empty());
}

TEST(Codec, RejectsStochasticRounding)
{
    auto x = random_values(16, 1);
    EXPECT_THROW(pack(mx9(), x, RoundingMode::Stochastic), ArgumentError);
}
