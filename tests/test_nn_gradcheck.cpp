/**
 * @file
 * Finite-difference gradient checks for every layer's hand-written
 * backward pass (run in FP32 — quantization is deliberately off so the
 * analytic gradient is exact up to float rounding).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv2d.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/lstm.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::nn;
using tensor::Tensor;

namespace {

/**
 * Generic layer gradient check: loss = <forward(x), R> for fixed random
 * R; compares backward() input gradients and parameter gradients against
 * central differences.
 */
void
check_layer(Layer& layer, const Tensor& x0, double eps = 1e-3,
            double tol = 2e-2)
{
    stats::Rng rng(1234);
    Tensor x = x0;
    Tensor y0 = layer.forward(x, /*train=*/true);
    Tensor r = Tensor::randn(y0.shape(), rng);

    auto loss_at = [&](const Tensor& xin) {
        Tensor y = layer.forward(xin, /*train=*/true);
        double l = 0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            l += static_cast<double>(y.data()[i]) * r.data()[i];
        return l;
    };

    // Analytic gradients.
    layer.zero_grad();
    (void)layer.forward(x, true);
    Tensor dx = layer.backward(r);

    // Input gradient check (subsample for speed).
    for (std::int64_t i = 0; i < x.numel();
         i += std::max<std::int64_t>(1, x.numel() / 24)) {
        Tensor xp = x, xm = x;
        xp.data()[i] += static_cast<float>(eps);
        xm.data()[i] -= static_cast<float>(eps);
        double num = (loss_at(xp) - loss_at(xm)) / (2 * eps);
        EXPECT_NEAR(dx.data()[i], num,
                    tol * (std::fabs(num) + std::fabs(dx.data()[i]) + 0.1))
            << "input grad index " << i;
    }

    // Parameter gradient check.
    std::vector<Param*> params;
    layer.collect_params(params);
    for (Param* p : params) {
        for (std::int64_t i = 0; i < p->value.numel();
             i += std::max<std::int64_t>(1, p->value.numel() / 12)) {
            float saved = p->value.data()[i];
            p->value.data()[i] = saved + static_cast<float>(eps);
            double lp = loss_at(x);
            p->value.data()[i] = saved - static_cast<float>(eps);
            double lm = loss_at(x);
            p->value.data()[i] = saved;
            double num = (lp - lm) / (2 * eps);
            EXPECT_NEAR(p->grad.data()[i], num,
                        tol * (std::fabs(num) +
                               std::fabs(p->grad.data()[i]) + 0.1))
                << p->name << " index " << i;
        }
    }
}

} // namespace

TEST(GradCheck, Linear)
{
    stats::Rng rng(1);
    Linear layer(6, 4, QuantSpec::fp32(), rng);
    check_layer(layer, Tensor::randn({5, 6}, rng));
}

TEST(GradCheck, LinearNoBias)
{
    stats::Rng rng(2);
    Linear layer(5, 3, QuantSpec::fp32(), rng, false);
    check_layer(layer, Tensor::randn({4, 5}, rng));
}

TEST(GradCheck, Activations)
{
    stats::Rng rng(3);
    for (auto kind : {Activation::ReLU, Activation::GELU,
                      Activation::Sigmoid, Activation::Tanh}) {
        ActivationLayer layer(kind);
        Tensor x = Tensor::randn({4, 6}, rng);
        // Nudge values away from ReLU's kink.
        for (std::int64_t i = 0; i < x.numel(); ++i)
            if (std::fabs(x.data()[i]) < 0.05f)
                x.data()[i] = 0.2f;
        check_layer(layer, x);
    }
}

TEST(GradCheck, LayerNorm)
{
    stats::Rng rng(4);
    LayerNorm layer(8);
    check_layer(layer, Tensor::randn({5, 8}, rng));
}

TEST(GradCheck, MultiHeadAttentionCausal)
{
    stats::Rng rng(5);
    MultiHeadAttention layer(8, 2, 4, /*causal=*/true, QuantSpec::fp32(),
                             rng);
    check_layer(layer, Tensor::randn({2 * 4, 8}, rng)); // batch 2, T 4
}

TEST(GradCheck, MultiHeadAttentionBidirectional)
{
    stats::Rng rng(6);
    MultiHeadAttention layer(8, 4, 3, /*causal=*/false, QuantSpec::fp32(),
                             rng);
    check_layer(layer, Tensor::randn({3, 8}, rng)); // batch 1, T 3
}

TEST(GradCheck, Conv2d)
{
    stats::Rng rng(7);
    Conv2d layer(2, 3, 3, 1, 1, QuantSpec::fp32(), rng);
    check_layer(layer, Tensor::randn({2, 2, 5, 5}, rng));
}

TEST(GradCheck, Conv2dStride2)
{
    stats::Rng rng(8);
    Conv2d layer(1, 2, 3, 2, 1, QuantSpec::fp32(), rng);
    check_layer(layer, Tensor::randn({1, 1, 6, 6}, rng));
}

TEST(GradCheck, LstmSequence)
{
    stats::Rng rng(9);
    const std::int64_t B = 2, T = 3, D = 4, H = 5;
    Lstm lstm(D, H, T, QuantSpec::fp32(), rng);
    Tensor x = Tensor::randn({B * T, D}, rng);
    Tensor r = Tensor::randn({B * T, H}, rng);

    auto loss_at = [&](const Tensor& xin) {
        LstmState st = lstm.initial_state(B);
        Tensor y = lstm.forward_seq(xin, st, true);
        double l = 0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            l += static_cast<double>(y.data()[i]) * r.data()[i];
        return l;
    };

    std::vector<Param*> params;
    lstm.collect_params(params);
    for (Param* p : params)
        p->zero_grad();
    LstmState st = lstm.initial_state(B);
    (void)lstm.forward_seq(x, st, true);
    LstmState dinit;
    Tensor dx = lstm.backward_seq(r, LstmState{}, dinit);

    const double eps = 1e-3, tol = 3e-2;
    for (std::int64_t i = 0; i < x.numel(); i += 3) {
        Tensor xp = x, xm = x;
        xp.data()[i] += static_cast<float>(eps);
        xm.data()[i] -= static_cast<float>(eps);
        double num = (loss_at(xp) - loss_at(xm)) / (2 * eps);
        EXPECT_NEAR(dx.data()[i], num,
                    tol * (std::fabs(num) + std::fabs(dx.data()[i]) + 0.1))
            << "lstm input grad " << i;
    }
    for (Param* p : params) {
        for (std::int64_t i = 0; i < p->value.numel();
             i += std::max<std::int64_t>(1, p->value.numel() / 10)) {
            float saved = p->value.data()[i];
            p->value.data()[i] = saved + static_cast<float>(eps);
            double lp = loss_at(x);
            p->value.data()[i] = saved - static_cast<float>(eps);
            double lm = loss_at(x);
            p->value.data()[i] = saved;
            double num = (lp - lm) / (2 * eps);
            EXPECT_NEAR(p->grad.data()[i], num,
                        tol * (std::fabs(num) +
                               std::fabs(p->grad.data()[i]) + 0.1))
                << p->name << " index " << i;
        }
    }
}

TEST(GradCheck, SoftmaxCrossEntropyGradient)
{
    stats::Rng rng(10);
    Tensor logits = Tensor::randn({4, 5}, rng);
    std::vector<int> labels = {0, 2, 4, 1};
    LossResult res = nn::softmax_cross_entropy(logits, labels);
    const double eps = 1e-3;
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        Tensor lp = logits, lm = logits;
        lp.data()[i] += static_cast<float>(eps);
        lm.data()[i] -= static_cast<float>(eps);
        double num = (nn::softmax_cross_entropy(lp, labels).loss -
                      nn::softmax_cross_entropy(lm, labels).loss) /
                     (2 * eps);
        EXPECT_NEAR(res.grad.data()[i], num, 1e-3);
    }
}

TEST(GradCheck, BceWithLogitsGradient)
{
    stats::Rng rng(11);
    Tensor logits = Tensor::randn({6}, rng);
    std::vector<int> labels = {1, 0, 1, 1, 0, 0};
    LossResult res = nn::bce_with_logits(logits, labels);
    const double eps = 1e-3;
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        Tensor lp = logits, lm = logits;
        lp.data()[i] += static_cast<float>(eps);
        lm.data()[i] -= static_cast<float>(eps);
        double num = (nn::bce_with_logits(lp, labels).loss -
                      nn::bce_with_logits(lm, labels).loss) /
                     (2 * eps);
        EXPECT_NEAR(res.grad.data()[i], num, 1e-3);
    }
}

TEST(GradCheck, CrossEntropyIgnoreIndexMasks)
{
    stats::Rng rng(12);
    Tensor logits = Tensor::randn({3, 4}, rng);
    std::vector<int> labels = {1, -1, 2};
    LossResult res = nn::softmax_cross_entropy(logits, labels, -1);
    for (std::int64_t j = 0; j < 4; ++j)
        EXPECT_EQ(res.grad.at(1, j), 0.0f); // ignored row has no grad
}
