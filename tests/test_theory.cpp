/**
 * @file
 * Property tests for Theorem 1: the QSNR lower bound must hold
 * empirically for every pow2-scaled BDR format under every distribution
 * in the library — including skewed and outlier-injected ones, since the
 * theorem claims distribution independence.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/check.h"

#include <cmath>

#include "core/qsnr_harness.h"
#include "core/theory.h"
#include "stats/distributions.h"

using namespace mx;
using namespace mx::core;

namespace {

struct BoundCase
{
    BdrFormat format;
    stats::Distribution dist;
};

std::string
case_name(const ::testing::TestParamInfo<BoundCase>& info)
{
    std::string n =
        info.param.format.name + "_" + stats::to_string(info.param.dist);
    for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

std::vector<BoundCase>
all_cases()
{
    std::vector<BdrFormat> formats = {
        mx9(), mx6(), mx4(), msfp16(), msfp12(),
        mx_custom(3, 8, 32, 2, 4), mx_custom(5, 8, 64, 1, 2),
        mx_custom(1, 8, 8, 1, 1), bfp_custom(5, 8, 128),
    };
    std::vector<BoundCase> cases;
    for (const auto& f : formats)
        for (auto d : stats::all_distributions())
            cases.push_back({f, d});
    return cases;
}

} // namespace

class TheoremBound : public ::testing::TestWithParam<BoundCase>
{
};

TEST_P(TheoremBound, EmpiricalQsnrAboveLowerBound)
{
    const BoundCase& c = GetParam();
    QsnrRunConfig cfg;
    cfg.num_vectors = 400;
    cfg.vector_length = 256;
    cfg.distribution = c.dist;
    cfg.dist_param = 1.0;
    double measured = measure_qsnr_db(c.format, cfg);
    double bound = qsnr_lower_bound_db(c.format, cfg.vector_length);
    EXPECT_GE(measured, bound)
        << c.format.summary() << " under " << stats::to_string(c.dist);
}

INSTANTIATE_TEST_SUITE_P(AllFormatsAllDistributions, TheoremBound,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(TheoremBound, ClosedFormValues)
{
    // beta = 1 for d2 = 1: bound = 6.02 m + 10 log10(4 / (k1 + 3 k2)).
    double b = qsnr_lower_bound_db(7, 16, 2, 1, 1024);
    EXPECT_NEAR(b, 6.02 * 7 + 10.0 * std::log10(4.0 / 22.0), 1e-9);
    // d2 = 0 degenerates to the classic BFP bound 6.02 m - 10 log10(k1).
    double bfp = qsnr_lower_bound_db(7, 16, 1, 0, 1024);
    EXPECT_NEAR(bfp, 6.02 * 7 - 10.0 * std::log10(16.0), 1e-9);
    // Short vectors (N < k1) improve the bound.
    EXPECT_GT(qsnr_lower_bound_db(7, 64, 2, 1, 8),
              qsnr_lower_bound_db(7, 64, 2, 1, 1024));
}

TEST(TheoremBound, MonotonicInMantissa)
{
    for (int m = 1; m < 8; ++m) {
        EXPECT_LT(qsnr_lower_bound_db(m, 16, 2, 1, 1024),
                  qsnr_lower_bound_db(m + 1, 16, 2, 1, 1024));
    }
}

TEST(TheoremBound, MicroexponentsImproveTheBound)
{
    // Adding a 1-bit shared microexponent (d2 = 1, k2 = 2) must beat the
    // plain BFP bound at the same mantissa width and block size.
    for (int m : {2, 4, 7}) {
        EXPECT_GT(qsnr_lower_bound_db(m, 16, 2, 1, 1024),
                  qsnr_lower_bound_db(m, 16, 1, 0, 1024));
    }
}

TEST(TheoremBound, RejectsNonPow2Formats)
{
    EXPECT_THROW(qsnr_lower_bound_db(fp8_e4m3(), 1024), ArgumentError);
    EXPECT_THROW(qsnr_lower_bound_db(scaled_int(8), 1024), ArgumentError);
}

TEST(QsnrHarness, PairedSeedsGiveIdenticalData)
{
    // Identical formats and seeds must produce bit-identical QSNR.
    QsnrRunConfig cfg;
    cfg.num_vectors = 100;
    cfg.vector_length = 128;
    EXPECT_DOUBLE_EQ(measure_qsnr_db(mx6(), cfg),
                     measure_qsnr_db(mx6(), cfg));
}

TEST(QsnrHarness, MantissaOrderingHolds)
{
    QsnrRunConfig cfg;
    cfg.num_vectors = 300;
    cfg.vector_length = 256;
    double q4 = measure_qsnr_db(mx4(), cfg);
    double q6 = measure_qsnr_db(mx6(), cfg);
    double q9 = measure_qsnr_db(mx9(), cfg);
    EXPECT_LT(q4, q6);
    EXPECT_LT(q6, q9);
}
