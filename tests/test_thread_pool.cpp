/**
 * @file
 * Unit tests for core::ThreadPool — the fan-out substrate of the
 * threaded design-space sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.h"

using mx::core::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(lanes);
        EXPECT_EQ(pool.thread_count(), lanes);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallel_for(hits.size(),
                          [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(round * 7 + 1,
                          [&](std::size_t i) { sum.fetch_add(i + 1); });
        const std::size_t n = static_cast<std::size_t>(round * 7 + 1);
        EXPECT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

TEST(ThreadPool, EmptyLoopIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       if (i == 13)
                                           throw std::runtime_error("boom");
                                       completed.fetch_add(1);
                                   }),
                 std::runtime_error);
    EXPECT_LT(completed.load(), 100);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for(8, [&](std::size_t outer) {
        pool.parallel_for(8, [&](std::size_t inner) {
            hits[outer * 8 + inner].fetch_add(1);
        });
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SharedPoolIsUsable)
{
    std::atomic<std::size_t> sum{0};
    ThreadPool::shared().parallel_for(256,
                                      [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 256u * 255u / 2u);
    EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
    EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}
