/**
 * @file
 * Focused component tests not covered elsewhere: the delayed scaler's
 * window semantics, MX-resident embedding storage, dropout statistics,
 * the synthetic data generators' planted structure, and failure paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/delayed_scaler.h"
#include "core/env.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/embedding.h"
#include "nn/quant.h"
#include "stats/metrics.h"

using namespace mx;
using tensor::Tensor;

TEST(DelayedScaler, FirstCallUsesCurrentAmax)
{
    core::DelayedScaler s(4);
    EXPECT_DOUBLE_EQ(s.update(10.0, 5.0), 2.0); // 10 / 5, just-in-time
}

TEST(DelayedScaler, SubsequentCallsUseHistoryMax)
{
    core::DelayedScaler s(4);
    s.update(10.0, 5.0);
    // Current amax 100 is ignored; history max is 10.
    EXPECT_DOUBLE_EQ(s.update(100.0, 5.0), 2.0);
    // Now 100 is in the window.
    EXPECT_DOUBLE_EQ(s.update(1.0, 5.0), 20.0);
}

TEST(DelayedScaler, WindowEvictsOldObservations)
{
    core::DelayedScaler s(2);
    s.update(100.0, 1.0); // history: {100}
    s.update(1.0, 1.0);   // history: {100, 1}
    s.update(1.0, 1.0);   // history: {1, 1} — 100 evicted
    EXPECT_DOUBLE_EQ(s.peek(5.0, 1.0), 1.0);
}

TEST(DelayedScaler, MarginAndResetAndValidation)
{
    core::DelayedScaler s(4, 2.0);
    EXPECT_DOUBLE_EQ(s.update(8.0, 4.0), 4.0); // 8 * 2 / 4
    s.reset();
    EXPECT_EQ(s.history_size(), 0u);
    EXPECT_THROW(core::DelayedScaler(0), ArgumentError);
    EXPECT_THROW(core::DelayedScaler(4, 0.0), ArgumentError);
}

TEST(DelayedScaler, AllZeroHistoryFallsBackToOne)
{
    core::DelayedScaler s(4);
    EXPECT_DOUBLE_EQ(s.update(0.0, 4.0), 1.0);
}

TEST(Embedding, StorageFormatQuantizesLookups)
{
    stats::Rng rng(1);
    nn::Embedding emb(8, 16, rng);
    std::vector<int> ids = {3};
    Tensor fp = emb.forward(ids, false);
    emb.set_storage_format(core::mx4());
    Tensor q = emb.forward(ids, false);
    // Same row but on the MX4 grid: different values, bounded error.
    EXPECT_GT(tensor::max_abs_diff(fp, q), 0.0);
    EXPECT_GT(stats::qsnr_db(fp.vec(), q.vec()), 10.0);
    emb.set_storage_format(std::nullopt);
    Tensor back = emb.forward(ids, false);
    EXPECT_EQ(tensor::max_abs_diff(fp, back), 0.0);
    EXPECT_THROW(emb.forward({9}, false), ArgumentError);
}

TEST(Embedding, BackwardScattersIntoRows)
{
    stats::Rng rng(2);
    nn::Embedding emb(4, 3, rng);
    std::vector<int> ids = {1, 1, 3};
    emb.forward(ids, true);
    Tensor g({3, 3});
    g.fill(1.0f);
    emb.backward(g);
    // Row 1 hit twice, row 3 once, rows 0/2 never.
    EXPECT_FLOAT_EQ(emb.table().grad.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(emb.table().grad.at(3, 2), 1.0f);
    EXPECT_FLOAT_EQ(emb.table().grad.at(0, 0), 0.0f);
}

TEST(Dropout, KeepsExpectationAndMasksBackward)
{
    nn::Dropout drop(0.5, 7);
    Tensor x = Tensor::full({64, 64}, 1.0f);
    Tensor y = drop.forward(x, true);
    double mean = 0;
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        mean += y.data()[i];
        zeros += y.data()[i] == 0.0f;
    }
    mean /= static_cast<double>(y.numel());
    EXPECT_NEAR(mean, 1.0, 0.05);           // inverted scaling
    EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
    // Backward uses the identical mask.
    Tensor g = drop.backward(x);
    for (std::int64_t i = 0; i < y.numel(); ++i)
        EXPECT_EQ(g.data()[i], y.data()[i]);
    // Eval mode is the identity.
    Tensor e = drop.forward(x, false);
    EXPECT_EQ(tensor::max_abs_diff(e, x), 0.0);
}

TEST(SyntheticData, MarkovStreamIsCompressible)
{
    // The planted order-2 structure must make bigram prediction beat the
    // uniform baseline by a wide margin (that is what the LM learns).
    data::MarkovText corpus(16, 99);
    stats::Rng rng(1);
    auto s = corpus.stream(60000, rng);
    std::vector<std::vector<int>> counts(
        16 * 16, std::vector<int>(16, 0));
    for (std::size_t i = 2; i < s.size(); ++i)
        ++counts[static_cast<std::size_t>(s[i - 2] * 16 + s[i - 1])]
                [static_cast<std::size_t>(s[i])];
    double nll = 0;
    std::int64_t n = 0;
    for (const auto& row : counts) {
        int total = 0;
        for (int c : row)
            total += c;
        if (total == 0)
            continue;
        for (int c : row) {
            if (c == 0)
                continue;
            nll -= c * std::log(static_cast<double>(c) / total);
            n += c;
        }
    }
    double entropy = nll / static_cast<double>(n);
    EXPECT_LT(entropy, 1.8);               // far below log(16) = 2.77
}

TEST(SyntheticData, TranslationIsDeterministicBijection)
{
    data::TranslationPairs task(12, 5, 3);
    std::vector<int> src = {1, 5, 9, 0, 3};
    auto t1 = task.translate(src);
    auto t2 = task.translate(src);
    EXPECT_EQ(t1, t2);
    // Reversal structure: translating the first token lands at the end.
    data::TranslationPairs id_check(12, 5, 3);
    EXPECT_EQ(id_check.translate(src).size(), src.size());
}

TEST(SyntheticData, ClickLogsHaveLearnableSignal)
{
    data::ClickLogs task(4, 32, 4, 11);
    stats::Rng rng(2);
    auto b = task.sample(4000, rng);
    // The planted logistic model itself must beat random AUC by a lot;
    // approximate with a single dense feature's correlation direction.
    double pos = 0;
    for (int l : b.labels)
        pos += l;
    EXPECT_GT(pos, 400);             // not degenerate
    EXPECT_LT(pos, 3600);
}

TEST(SyntheticData, SpanQaLabelsInsideSequence)
{
    data::SpanQa task(4, 24, 16, 5);
    stats::Rng rng(3);
    auto b = task.sample(200, rng);
    for (std::int64_t i = 0; i < b.n; ++i) {
        int s = b.labels[static_cast<std::size_t>(2 * i)];
        int e = b.labels[static_cast<std::size_t>(2 * i + 1)];
        ASSERT_GE(s, 1);
        ASSERT_LE(e, 15);
        ASSERT_LE(s, e);
        // The answer tokens really are the question's alphabet.
        int q = b.tokens[static_cast<std::size_t>(i * 16)];
        for (int p = s; p <= e; ++p)
            ASSERT_EQ(b.tokens[static_cast<std::size_t>(i * 16 + p)],
                      4 + q);
    }
}

TEST(QuantizeRows, RejectsNon2d)
{
    Tensor t({2, 2, 2});
    EXPECT_THROW(nn::quantize_rows(t, core::mx9()), ArgumentError);
}

TEST(EnvKnobs, SizeFlagAndEnumShareOneRuleSet)
{
    // Unset/empty -> fallback, silently.
    ::unsetenv("MX_TEST_KNOB");
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7), 7u);
    EXPECT_TRUE(core::env::flag_knob("MX_TEST_KNOB", true));
    ::setenv("MX_TEST_KNOB", "", 1);
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7), 7u);

    // Sizes: plain decimals, trimmed; non-numeric junk falls back (with
    // one stderr warning per variable, not asserted here), but a
    // NUMERIC value below the floor clamps to min_value — an operator
    // asking for "0 threads" means the minimum, not the pool-sized
    // default (MX_GEMM_THREADS=0 silently configuring full fan-out
    // would be the exact inversion of the request).
    ::setenv("MX_TEST_KNOB", " 42 ", 1);
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7), 42u);
    ::setenv("MX_TEST_KNOB", "42x", 1);
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7), 7u);
    ::setenv("MX_TEST_KNOB", "-3", 1);
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7), 1u)
        << "negative clamps to the default min_value of 1";
    ::setenv("MX_TEST_KNOB", "0", 1);
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7), 1u)
        << "0 clamps to the default min_value of 1";
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7, /*min_value=*/0),
              0u);
    ::setenv("MX_TEST_KNOB", "2", 1);
    EXPECT_EQ(core::env::size_knob("MX_TEST_KNOB", 7, /*min_value=*/4),
              4u)
        << "the floor applies to any numeric value, not just signs";

    // Flags: 1/true/on/yes and 0/false/off/no, any case; the old
    // MX_FORCE_SCALAR parser treated "false" as true — pinned fixed.
    ::setenv("MX_TEST_KNOB", "TRUE", 1);
    EXPECT_TRUE(core::env::flag_knob("MX_TEST_KNOB", false));
    ::setenv("MX_TEST_KNOB", "off", 1);
    EXPECT_FALSE(core::env::flag_knob("MX_TEST_KNOB", true));
    ::setenv("MX_TEST_KNOB", "false", 1);
    EXPECT_FALSE(core::env::flag_knob("MX_TEST_KNOB", true));
    ::setenv("MX_TEST_KNOB", "maybe", 1);
    EXPECT_TRUE(core::env::flag_knob("MX_TEST_KNOB", true));
    EXPECT_FALSE(core::env::flag_knob("MX_TEST_KNOB", false));

    // Enums: case-insensitive token match; unknown -> fallback.  The
    // old MX_GEMM parser mapped "ON" and "2" to Auto in silence.
    const auto gemm_mode = [](const char* v) {
        ::setenv("MX_TEST_KNOB", v, 1);
        return core::env::enum_knob("MX_TEST_KNOB", /*Auto=*/0,
                                    {{"auto", 0},
                                     {"1", 1},
                                     {"on", 1},
                                     {"0", 2},
                                     {"off", 2}});
    };
    EXPECT_EQ(gemm_mode("ON"), 1);
    EXPECT_EQ(gemm_mode(" auto "), 0);
    EXPECT_EQ(gemm_mode("OFF"), 2);
    EXPECT_EQ(gemm_mode("2"), 0) << "unknown token falls back";
    ::unsetenv("MX_TEST_KNOB");
}
