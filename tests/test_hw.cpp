/**
 * @file
 * Hardware-model tests: the bit-exact Figure 6 pipeline against the
 * reference quantized dot product, the area model's orderings, and the
 * memory-packing numbers.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/check.h"

#include <cmath>

#include "hw/area_model.h"
#include "hw/cost.h"
#include "hw/memory_model.h"
#include "hw/pipeline.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::core;
using namespace mx::hw;

namespace {

std::vector<float>
random_vec(std::size_t n, stats::Rng& rng, double sigma = 1.0)
{
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal(0.0, sigma));
    return v;
}

} // namespace

class PipelineExactness : public ::testing::TestWithParam<BdrFormat>
{
};

TEST_P(PipelineExactness, WideAccumulatorMatchesReferenceExactly)
{
    // With f wide enough to hold every aligned product, the pipeline must
    // equal the exact dot product of the quantized inputs bit-for-bit.
    PipelineConfig cfg{GetParam(), 64, 52};
    DotProductPipeline pipe(cfg);
    stats::Rng rng(31);
    for (int trial = 0; trial < 25; ++trial) {
        auto a = random_vec(64, rng, std::exp(rng.normal()));
        auto b = random_vec(64, rng, std::exp(rng.normal()));
        PipelineResult res = pipe.run(a, b);
        EXPECT_DOUBLE_EQ(res.value, res.exact_quantized_dot)
            << cfg.format.name << " trial " << trial;
        EXPECT_EQ(res.truncated_bits, 0);
    }
}

TEST_P(PipelineExactness, F25TruncationErrorIsBounded)
{
    // At f = 25 the only inexactness is truncation below the f-bit
    // window: |pipe - exact| <= n1 * 2^(ref_pos - f) <= |exact-ish
    // magnitude| * n1 * 2^(1-f).  Verify a conservative relative bound.
    PipelineConfig cfg{GetParam(), 64, 25};
    DotProductPipeline pipe(cfg);
    stats::Rng rng(37);
    for (int trial = 0; trial < 25; ++trial) {
        auto a = random_vec(64, rng);
        auto b = random_vec(64, rng);
        PipelineResult res = pipe.run(a, b);
        // Scale of the largest block result bounds the grid step.
        double mag = std::fabs(res.exact_quantized_dot);
        double tol = std::max(mag, 1e-6) * 64.0 * std::ldexp(1.0, -20);
        EXPECT_NEAR(res.value, res.exact_quantized_dot, tol)
            << cfg.format.name << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PipelineExactness,
    ::testing::Values(mx9(), mx6(), mx4(), msfp16(), msfp12(), fp8_e4m3(),
                      fp8_e5m2(), fp4_e2m1(), mx_custom(5, 8, 16, 2, 4)),
    [](const ::testing::TestParamInfo<BdrFormat>& info) {
        std::string n = info.param.name;
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Pipeline, ExactDotMatchesDequantizedReference)
{
    // The pipeline's internal "exact" value must equal the FP64 dot of
    // the fake-quantized vectors (the paper's emulation equivalence).
    PipelineConfig cfg{mx9(), 64, 52};
    DotProductPipeline pipe(cfg);
    stats::Rng rng(11);
    auto a = random_vec(64, rng);
    auto b = random_vec(64, rng);
    auto qa = fake_quantize(mx9(), a);
    auto qb = fake_quantize(mx9(), b);
    double ref = 0;
    for (int i = 0; i < 64; ++i)
        ref += static_cast<double>(qa[static_cast<std::size_t>(i)]) *
               qb[static_cast<std::size_t>(i)];
    PipelineResult res = pipe.run(a, b);
    EXPECT_NEAR(res.exact_quantized_dot, ref,
                1e-12 * std::max(1.0, std::fabs(ref)));
}

TEST(Pipeline, ZeroInputsGiveZero)
{
    PipelineConfig cfg{mx6(), 32, 25};
    DotProductPipeline pipe(cfg);
    std::vector<float> z(32, 0.0f);
    EXPECT_EQ(pipe.dot(z, z), 0.0);
}

TEST(Pipeline, RejectsBadConfig)
{
    EXPECT_THROW(DotProductPipeline({mx9(), 20, 25}), ArgumentError);
    EXPECT_THROW(DotProductPipeline({scaled_int(8), 64, 25}),
                 ArgumentError);
    EXPECT_THROW(DotProductPipeline({mx9(), 64, 60}), ArgumentError);
}

TEST(AreaModel, MantissaWidthOrdersMxFamily)
{
    AreaModel am;
    EXPECT_LT(am.area_nand2(mx4()), am.area_nand2(mx6()));
    EXPECT_LT(am.area_nand2(mx6()), am.area_nand2(mx9()));
}

TEST(AreaModel, BlockScalingIsCheaperThanScalarFp)
{
    // At the same element payload, hardware-shared exponents amortize
    // alignment logic: MX9 (8-bit payload) must be cheaper than the
    // 8-bit scalar FP8 baseline.
    AreaModel am;
    EXPECT_LT(am.normalized_area(mx9()), 1.0);
    EXPECT_LT(am.normalized_area(mx6()), am.normalized_area(mx9()));
}

TEST(AreaModel, MicroexponentsCostLittle)
{
    // Section IV-C: with d2 = 1, shrinking k2 from 8 to 2 adds only ~3%
    // normalized cost.  Verify the model keeps that marginal.
    AreaModel am;
    double k2_8 = am.area_nand2(mx_custom(7, 8, 16, 1, 8));
    double k2_2 = am.area_nand2(mx_custom(7, 8, 16, 1, 2));
    EXPECT_LT((k2_2 - k2_8) / k2_8, 0.10);
    // Whereas k2 = 1 (a microexponent per element) is markedly pricier.
    double k2_1 = am.area_nand2(mx_custom(7, 8, 16, 1, 1));
    EXPECT_GT(k2_1, k2_2);
}

TEST(AreaModel, BreakdownSumsToTotal)
{
    AreaModel am;
    for (const auto& f : {mx9(), fp8_e4m3(), scaled_int(8), vsq(8, 8)}) {
        AreaBreakdown b = am.breakdown(f);
        EXPECT_NEAR(b.total(), am.area_nand2(f), 1e-9) << f.name;
        EXPECT_GT(b.total(), 0.0) << f.name;
    }
}

TEST(AreaModel, AccumulatorWidthCapsAt25)
{
    AreaModel am;
    EXPECT_EQ(am.accumulator_width(fp8_e4m3()), 25);
    EXPECT_EQ(am.accumulator_width(mx9()), 25);
    // Narrow-range FP4 has less dynamic range than the cap.
    EXPECT_LT(am.accumulator_width(fp4_e2m1()), 25);
}

TEST(MemoryModel, PaperTilePackings)
{
    MemoryModel mm;
    // FP8: 2048 bits = exactly 4 beats -> cost 1.0.
    EXPECT_DOUBLE_EQ(mm.normalized_cost(fp8_e4m3()), 1.0);
    // MX9: 2304 bits -> 5 beats -> 1.25.
    EXPECT_DOUBLE_EQ(mm.normalized_cost(mx9()), 1.25);
    // MX6: 1536 bits -> 3 beats -> 0.75.
    EXPECT_DOUBLE_EQ(mm.normalized_cost(mx6()), 0.75);
    // MX4: 1024 bits -> 2 beats -> 0.5.
    EXPECT_DOUBLE_EQ(mm.normalized_cost(mx4()), 0.5);
    TilePacking t = mm.pack_tile(mx9());
    EXPECT_EQ(t.beats, 5u);
    EXPECT_DOUBLE_EQ(t.packing_efficiency, 2304.0 / 2560.0);
}

TEST(CostModel, PaperHeadlineRatios)
{
    // Table II / Section IV-C: MX6 ~2x and MX4 ~4x cheaper than FP8 on
    // the area-memory product; MX9 comparable to FP8.
    CostModel cm;
    // Our analytical gate model reproduces the orderings and approximate
    // magnitudes; it rewards narrow mantissas a little more than the
    // paper's synthesis flow did (see EXPERIMENTS.md), so the ratio
    // bounds here are deliberately generous.
    double fp8 = 1.0; // by normalization
    double m9 = cm.evaluate(mx9()).area_memory_product;
    double m6 = cm.evaluate(mx6()).area_memory_product;
    double m4 = cm.evaluate(mx4()).area_memory_product;
    EXPECT_NEAR(m9, fp8, 0.35);           // MX9 comparable to FP8
    EXPECT_GE(fp8 / m6, 1.8);             // MX6 >= ~2x cheaper
    EXPECT_LE(fp8 / m6, 4.0);
    EXPECT_GE(fp8 / m4, 3.5);             // MX4 >= ~4x cheaper
    EXPECT_LE(fp8 / m4, 9.0);
    EXPECT_LT(m4, m6);
    EXPECT_LT(m6, m9);
}
