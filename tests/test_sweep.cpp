/**
 * @file
 * Tests for the design-space sweep and Pareto-frontier extraction.
 */

#include <gtest/gtest.h>

#include "sweep/design_space.h"

using namespace mx;
using namespace mx::sweep;

TEST(Enumeration, DefaultSpecCoversPaperScale)
{
    SweepSpec spec;
    auto formats = enumerate_formats(spec);
    // The paper sweeps 800+ configurations.
    EXPECT_GE(formats.size(), 800u);
    for (const auto& f : formats)
        EXPECT_NO_THROW(f.validate());
}

TEST(Enumeration, SkipsInvalidK2Combos)
{
    SweepSpec spec;
    spec.mantissa_bits = {3};
    spec.k1_values = {8};
    spec.k2_values = {0, 16}; // 16 > 8 must be skipped
    spec.d2_values = {1};
    spec.include_named_formats = false;
    auto formats = enumerate_formats(spec);
    ASSERT_EQ(formats.size(), 1u); // only the BFP (k2 = 0) point
    EXPECT_EQ(formats[0].d2, 0);
}

TEST(Pareto, FrontierIsNonDominated)
{
    std::vector<DesignPoint> pts(4);
    auto set = [&](int i, double cost, double qsnr) {
        pts[static_cast<std::size_t>(i)].cost.area_memory_product = cost;
        pts[static_cast<std::size_t>(i)].qsnr_db = qsnr;
    };
    set(0, 1.0, 30); // dominated by 3
    set(1, 0.5, 20); // frontier
    set(2, 0.7, 25); // frontier
    set(3, 0.9, 35); // frontier
    mark_pareto_frontier(pts);
    EXPECT_FALSE(pts[0].on_pareto_frontier);
    EXPECT_TRUE(pts[1].on_pareto_frontier);
    EXPECT_TRUE(pts[2].on_pareto_frontier);
    EXPECT_TRUE(pts[3].on_pareto_frontier);
}

TEST(Pareto, EqualCostKeepsOnlyBest)
{
    std::vector<DesignPoint> pts(2);
    pts[0].cost.area_memory_product = 1.0;
    pts[0].qsnr_db = 10;
    pts[1].cost.area_memory_product = 1.0;
    pts[1].qsnr_db = 20;
    mark_pareto_frontier(pts);
    EXPECT_FALSE(pts[0].on_pareto_frontier);
    EXPECT_TRUE(pts[1].on_pareto_frontier);
}

TEST(Evaluate, ThreadCountInvariant)
{
    // The Figure 7 guarantee: sharding the sweep across a pool must not
    // change a single bit of any DesignPoint (per-point RNG re-seeding
    // makes each point independent of shard order).
    SweepSpec spec;
    spec.mantissa_bits = {2, 4, 7};
    spec.k1_values = {16, 32};
    spec.k2_values = {0, 2, 4};
    spec.d2_values = {1, 2};
    auto formats = enumerate_formats(spec);
    ASSERT_GT(formats.size(), 10u);

    core::QsnrRunConfig qcfg;
    qcfg.num_vectors = 20;
    qcfg.vector_length = 64;
    hw::CostModel cost;

    core::ThreadPool serial(1);
    core::ThreadPool wide(4);
    auto a = evaluate(formats, qcfg, cost, serial);
    auto b = evaluate(formats, qcfg, cost, wide);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].format.name, b[i].format.name) << i;
        EXPECT_EQ(a[i].qsnr_db, b[i].qsnr_db) << i; // exact, not near
        EXPECT_EQ(a[i].cost.area_memory_product,
                  b[i].cost.area_memory_product)
            << i;
        EXPECT_EQ(a[i].bits_per_element, b[i].bits_per_element) << i;
        EXPECT_EQ(a[i].on_pareto_frontier, b[i].on_pareto_frontier) << i;
    }
}

TEST(Evaluate, SmallSweepProducesConsistentRecords)
{
    SweepSpec spec;
    spec.mantissa_bits = {2, 7};
    spec.k1_values = {16};
    spec.k2_values = {0, 2};
    spec.d2_values = {1};
    spec.include_named_formats = false;
    auto formats = enumerate_formats(spec);

    core::QsnrRunConfig qcfg;
    qcfg.num_vectors = 50;
    qcfg.vector_length = 128;
    hw::CostModel cost;
    auto points = evaluate(formats, qcfg, cost);
    ASSERT_EQ(points.size(), formats.size());
    bool any_frontier = false;
    for (const auto& p : points) {
        EXPECT_GT(p.cost.area_memory_product, 0.0);
        EXPECT_GT(p.bits_per_element, 0.0);
        EXPECT_TRUE(std::isfinite(p.qsnr_db));
        any_frontier |= p.on_pareto_frontier;
        EXPECT_FALSE(p.csv_row().empty());
    }
    EXPECT_TRUE(any_frontier);
    EXPECT_FALSE(DesignPoint::csv_header().empty());
}
