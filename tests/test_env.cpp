/**
 * @file
 * Corner cases for core/env.h, the one parser behind every MX_* knob.
 *
 * The contracts under test (see env.h's header doc):
 *   - unset/empty -> fallback, silently;
 *   - trim + case-insensitive matching;
 *   - malformed -> fallback AND a once-per-variable stderr warning
 *     (never once per call: knobs are read in hot loops);
 *   - numeric-but-below-floor -> warn + clamp to the floor, NOT the
 *     fallback (MX_GEMM_THREADS=-3 means "as few as possible");
 *   - out-of-range numerals -> fallback (nothing to clamp toward).
 *
 * Each case uses its own variable name: the warn-once set is
 * process-global, so reusing a name would hide later warnings.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/env.h"

namespace {

using mx::core::env::enum_knob;
using mx::core::env::flag_knob;
using mx::core::env::size_knob;

/** RAII setenv: the environment is process state, leave none behind. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv() { ::unsetenv(name_.c_str()); }

  private:
    std::string name_;
};

/** Run @p fn with @p name set to @p value, capturing stderr. */
template <typename Fn>
std::string
warned(const char* name, const char* value, Fn fn)
{
    ScopedEnv env(name, value);
    testing::internal::CaptureStderr();
    fn();
    return testing::internal::GetCapturedStderr();
}

TEST(SizeKnob, UnsetAndEmptyFallBackSilently)
{
    ScopedEnv unset("MX_TEST_SK_UNSET", nullptr);
    testing::internal::CaptureStderr();
    EXPECT_EQ(size_knob("MX_TEST_SK_UNSET", 7, 1), 7u);
    {
        ScopedEnv empty("MX_TEST_SK_EMPTY", "");
        EXPECT_EQ(size_knob("MX_TEST_SK_EMPTY", 9, 1), 9u);
    }
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(SizeKnob, ParsesTrimmedDecimals)
{
    ScopedEnv env("MX_TEST_SK_TRIM", "  42\t");
    EXPECT_EQ(size_knob("MX_TEST_SK_TRIM", 1, 1), 42u);
}

TEST(SizeKnob, ExplicitPlusSignParses)
{
    ScopedEnv env("MX_TEST_SK_PLUS", "+8");
    EXPECT_EQ(size_knob("MX_TEST_SK_PLUS", 1, 1), 8u);
}

TEST(SizeKnob, BelowFloorClampsToFloorNotFallback)
{
    const std::string err = warned("MX_TEST_SK_ZERO", "0", [] {
        EXPECT_EQ(size_knob("MX_TEST_SK_ZERO", 16, 2), 2u);
    });
    EXPECT_NE(err.find("MX_TEST_SK_ZERO"), std::string::npos);
    EXPECT_NE(err.find("clamping"), std::string::npos);
}

TEST(SizeKnob, NegativeClampsToFloor)
{
    const std::string err = warned("MX_TEST_SK_NEG", "-3", [] {
        EXPECT_EQ(size_knob("MX_TEST_SK_NEG", 16, 1), 1u);
    });
    EXPECT_NE(err.find("clamping"), std::string::npos);
}

TEST(SizeKnob, MalformedFallsBackWithWarning)
{
    const std::string err = warned("MX_TEST_SK_WORDS", "lots", [] {
        EXPECT_EQ(size_knob("MX_TEST_SK_WORDS", 5, 1), 5u);
    });
    EXPECT_NE(err.find("MX_TEST_SK_WORDS"), std::string::npos);
    EXPECT_NE(err.find("lots"), std::string::npos);
}

TEST(SizeKnob, TrailingGarbageIsMalformedNotPrefixParsed)
{
    ScopedEnv env("MX_TEST_SK_MIXED", "12abc");
    EXPECT_EQ(size_knob("MX_TEST_SK_MIXED", 5, 1), 5u);
}

TEST(SizeKnob, OutOfRangeFallsBackInsteadOfSaturating)
{
    ScopedEnv env("MX_TEST_SK_HUGE", "99999999999999999999999999");
    EXPECT_EQ(size_knob("MX_TEST_SK_HUGE", 4, 1), 4u);
}

TEST(SizeKnob, WarnsOncePerVariablePerProcess)
{
    ScopedEnv env("MX_TEST_SK_ONCE", "nope");
    testing::internal::CaptureStderr();
    EXPECT_EQ(size_knob("MX_TEST_SK_ONCE", 3, 1), 3u);
    const std::string first = testing::internal::GetCapturedStderr();
    EXPECT_NE(first.find("MX_TEST_SK_ONCE"), std::string::npos);

    testing::internal::CaptureStderr();
    EXPECT_EQ(size_knob("MX_TEST_SK_ONCE", 3, 1), 3u);
    EXPECT_EQ(size_knob("MX_TEST_SK_ONCE", 3, 1), 3u);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(FlagKnob, AcceptsTheDocumentedTokensCaseInsensitively)
{
    const char* on[] = {"1", "true", "ON", " Yes "};
    const char* off[] = {"0", "False", "off", "NO"};
    for (const char* v : on) {
        ScopedEnv env("MX_TEST_FLAG_TOK", v);
        EXPECT_TRUE(flag_knob("MX_TEST_FLAG_TOK", false)) << v;
    }
    for (const char* v : off) {
        ScopedEnv env("MX_TEST_FLAG_TOK", v);
        EXPECT_FALSE(flag_knob("MX_TEST_FLAG_TOK", true)) << v;
    }
}

TEST(FlagKnob, MalformedKeepsFallbackEitherWay)
{
    const std::string err = warned("MX_TEST_FLAG_BAD", "maybe", [] {
        EXPECT_TRUE(flag_knob("MX_TEST_FLAG_BAD", true));
        EXPECT_TRUE(flag_knob("MX_TEST_FLAG_BAD", true));
    });
    // The warning lists the whole token vocabulary, once.
    EXPECT_NE(err.find("maybe"), std::string::npos);
    EXPECT_NE(err.find("true"), std::string::npos);
    EXPECT_EQ(err.find("expected"),
              err.rfind("expected")); // one warning, not two
}

TEST(EnumKnob, MatchesTrimmedLoweredTokens)
{
    ScopedEnv env("MX_TEST_ENUM_OK", "  Packed ");
    EXPECT_EQ(enum_knob("MX_TEST_ENUM_OK", 0,
                        {{"auto", 0}, {"packed", 1}, {"scalar", 2}}),
              1);
}

TEST(EnumKnob, UnknownTokenFallsBackWithVocabulary)
{
    const std::string err = warned("MX_TEST_ENUM_BAD", "turbo", [] {
        EXPECT_EQ(enum_knob("MX_TEST_ENUM_BAD", 2,
                            {{"auto", 0}, {"packed", 1}}),
                  2);
    });
    EXPECT_NE(err.find("turbo"), std::string::npos);
    EXPECT_NE(err.find("auto"), std::string::npos);
    EXPECT_NE(err.find("packed"), std::string::npos);
}

} // namespace
