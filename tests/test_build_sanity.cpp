/**
 * @file
 * Build-sanity smoke test.  Two halves:
 *
 *  1. At build time, tests/CMakeLists.txt generates one translation
 *     unit per public header (each including ONLY that header) and
 *     compiles them into the mx_header_sanity object library — so a
 *     header that is not self-contained fails the build, not this
 *     binary.
 *
 *  2. This TU includes EVERY public header at once (catching macro or
 *     ODR collisions between subsystems) and smoke-checks one
 *     representative invariant per subsystem, proving each library
 *     actually linked.
 */

#include <gtest/gtest.h>

#include "bench_report.h"
#include "bench_util.h"
#include "core/bdr_format.h"
#include "core/check.h"
#include "core/delayed_scaler.h"
#include "core/qsnr_harness.h"
#include "core/quantize.h"
#include "core/rounding.h"
#include "core/scalar_fp.h"
#include "core/theory.h"
#include "data/synthetic.h"
#include "formats/block_codec.h"
#include "formats/packed.h"
#include "gemm/gemm_plan.h"
#include "gemm/packed_gemm.h"
#include "gemm/packed_operand.h"
#include "hw/area_model.h"
#include "hw/cost.h"
#include "hw/memory_model.h"
#include "hw/pipeline.h"
#include "models/dlrm_mini.h"
#include "models/lstm_seq2seq.h"
#include "models/mlp.h"
#include "models/resnet_mini.h"
#include "models/trainer.h"
#include "models/transformer.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv2d.h"
#include "nn/embedding.h"
#include "nn/layer.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/quant.h"
#include "nn/sequential.h"
#include "stats/distributions.h"
#include "stats/metrics.h"
#include "stats/rng.h"
#include "sweep/design_space.h"
#include "tensor/tensor.h"

using namespace mx;

TEST(BuildSanity, CoreFormatsValidate)
{
    core::BdrFormat f9 = core::mx9();
    EXPECT_NO_THROW(f9.validate());
    EXPECT_DOUBLE_EQ(f9.bits_per_element(), 9.0);
    EXPECT_DOUBLE_EQ(core::mx6().bits_per_element(), 6.0);
    EXPECT_DOUBLE_EQ(core::mx4().bits_per_element(), 4.0);
}

TEST(BuildSanity, StatsRngIsDeterministic)
{
    stats::Rng a(7), b(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.normal(), b.normal());
}

TEST(BuildSanity, FormatsCodecRoundTrips)
{
    stats::Rng rng(3);
    std::vector<float> x(32);
    for (auto& v : x)
        v = static_cast<float>(rng.normal());
    auto packed = formats::pack(core::mx9(), x);
    auto back = formats::unpack(packed);
    ASSERT_EQ(back.size(), x.size());
}

TEST(BuildSanity, TensorAndNnLink)
{
    stats::Rng rng(5);
    tensor::Tensor a = tensor::Tensor::randn({4, 8}, rng);
    tensor::Tensor b = tensor::Tensor::randn({4, 8}, rng);
    auto c = nn::qmatmul_nt(a, b, core::mx9());
    EXPECT_EQ(c.numel(), 16);
}

TEST(BuildSanity, GemmPlansLink)
{
    auto plan = core::kernels::make_quant_plan(core::mx9());
    EXPECT_TRUE(gemm::gemm_compatible(plan, plan));
    EXPECT_EQ(gemm::make_gemm_plan(plan, plan).g, 2);
}

TEST(BuildSanity, HwCostModelLinks)
{
    hw::CostModel cm;
    auto p = cm.evaluate(core::mx9());
    EXPECT_GT(p.area_memory_product, 0.0);
}

TEST(BuildSanity, DataAndModelsLink)
{
    data::GaussianClusters task(3, 4, 11);
    stats::Rng rng(12);
    auto batch = task.sample(8, rng);
    models::MlpClassifier m(4, {8}, 3, nn::QuantSpec::fp32(), 1);
    tensor::Tensor logits = m.logits(batch.x, false);
    EXPECT_EQ(logits.numel(), 8 * 3);
}

TEST(BuildSanity, SweepEnumerates)
{
    sweep::SweepSpec spec;
    auto formats = sweep::enumerate_formats(spec);
    EXPECT_GT(formats.size(), 100u);
}

TEST(BuildSanity, BenchReportHelpersWork)
{
    auto r = bench::run_bench([] {
        volatile int x = 0;
        for (int i = 0; i < 100; ++i)
            x = x + i;
    }, 100, 0.001);
    EXPECT_GT(r.iterations, 0u);
    EXPECT_GT(r.items_per_sec, 0.0);
}
