/**
 * @file
 * Integration tests: every model family trains on its synthetic task and
 * the headline MX behaviours hold in miniature (MX9 direct cast tracks
 * FP32; models still learn under uniform MX9 training).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/dlrm_mini.h"
#include "models/lstm_seq2seq.h"
#include "models/mlp.h"
#include "models/resnet_mini.h"
#include "models/trainer.h"
#include "models/transformer.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "stats/metrics.h"

using namespace mx;
using namespace mx::models;
using tensor::Tensor;

TEST(MlpIntegration, LearnsGaussianClusters)
{
    data::GaussianClusters task(4, 8, 100);
    MlpClassifier model(8, {32, 32}, 4, nn::QuantSpec::fp32(), 200);
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(300);
    for (int step = 0; step < 150; ++step) {
        auto batch = task.sample(64, rng);
        opt.zero_grad();
        Tensor logits = model.logits(batch.x, true);
        auto res = nn::softmax_cross_entropy(logits, batch.labels);
        model.backward(res.grad);
        opt.step();
    }
    auto eval = task.sample(512, rng);
    Tensor logits = model.logits(eval.x, false);
    double acc = stats::top1_accuracy(eval.labels, logits.vec(), 4);
    EXPECT_GT(acc, 0.85);
}

TEST(MlpIntegration, Mx9DirectCastTracksFp32)
{
    data::GaussianClusters task(4, 8, 100);
    MlpClassifier model(8, {32, 32}, 4, nn::QuantSpec::fp32(), 200);
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(301);
    for (int step = 0; step < 150; ++step) {
        auto batch = task.sample(64, rng);
        opt.zero_grad();
        Tensor logits = model.logits(batch.x, true);
        auto res = nn::softmax_cross_entropy(logits, batch.labels);
        model.backward(res.grad);
        opt.step();
    }
    auto eval = task.sample(512, rng);
    Tensor fp_logits = model.logits(eval.x, false);
    double fp_acc = stats::top1_accuracy(eval.labels, fp_logits.vec(), 4);

    model.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    Tensor mx_logits = model.logits(eval.x, false);
    double mx_acc = stats::top1_accuracy(eval.labels, mx_logits.vec(), 4);
    EXPECT_NEAR(mx_acc, fp_acc, 0.02); // drop-in replacement

    model.set_spec(nn::QuantSpec::forward_only(core::mx4()));
    Tensor mx4_logits = model.logits(eval.x, false);
    double mx4_acc =
        stats::top1_accuracy(eval.labels, mx4_logits.vec(), 4);
    EXPECT_LE(mx4_acc, fp_acc + 0.02); // narrower format cannot be better
}

TEST(ResNetIntegration, LearnsClusterImages)
{
    data::ClusterImages task(4, 8, 500);
    ResNetMini model(8, 8, 4, nn::QuantSpec::fp32(), 600);
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(700);
    for (int step = 0; step < 60; ++step) {
        auto batch = task.sample(32, rng);
        opt.zero_grad();
        Tensor logits = model.logits(batch.x, true);
        auto res = nn::softmax_cross_entropy(logits, batch.labels);
        model.backward(res.grad);
        opt.step();
    }
    auto eval = task.sample(256, rng);
    Tensor logits = model.logits(eval.x, false);
    double acc = stats::top1_accuracy(eval.labels, logits.vec(), 4);
    EXPECT_GT(acc, 0.7);
}

TEST(GptIntegration, LossDropsAndMx9Matches)
{
    data::MarkovText corpus(16, 900);
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seq_len = 8;
    cfg.seed = 1000;
    GptMini model(cfg);
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(1100);

    double first = 0;
    RunningAverage avg(0.1);
    for (int step = 0; step < 200; ++step) {
        auto batch = corpus.windows(16, cfg.seq_len, rng);
        opt.zero_grad();
        double loss = model.train_loss(batch);
        opt.step();
        if (step == 0)
            first = loss;
        avg.update(loss);
    }
    // Clear learning signal: visibly below both the starting loss and
    // the uniform-prediction entropy log(vocab).  (Full convergence to
    // the source entropy takes thousands of steps; the Table VII bench
    // trains longer.)
    EXPECT_LT(avg.value(), first - 0.15);
    EXPECT_LT(avg.value(), std::log(16.0) - 0.1);

    // Direct cast to MX9 barely changes the eval loss.
    auto eval = corpus.windows(64, cfg.seq_len, rng);
    double fp_loss = model.eval_loss(eval);
    model.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    double mx_loss = model.eval_loss(eval);
    EXPECT_NEAR(mx_loss, fp_loss, 0.03);
}

TEST(BertIntegration, ClassifiesPlantedPatterns)
{
    data::PatternSequences task(2, 32, 12, 1200);
    TransformerConfig cfg;
    cfg.vocab = 32;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seq_len = 12;
    cfg.seed = 1300;
    BertMini model(cfg, 2);
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(1400);
    for (int step = 0; step < 120; ++step) {
        auto batch = task.sample(16, rng);
        opt.zero_grad();
        Tensor logits = model.class_logits(batch, true);
        auto res = nn::softmax_cross_entropy(logits, batch.labels);
        model.class_backward(res.grad);
        opt.step();
    }
    auto eval = task.sample(128, rng);
    Tensor logits = model.class_logits(eval, false);
    double acc = stats::top1_accuracy(eval.labels, logits.vec(), 2);
    EXPECT_GT(acc, 0.8);
}

TEST(Seq2SeqIntegration, LearnsTokenMappedReversal)
{
    Seq2SeqConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 24;
    cfg.hidden_dim = 48;
    cfg.seq_len = 5;
    cfg.seed = 1500;
    data::TranslationPairs task(cfg.vocab, cfg.seq_len, 1600);
    LstmSeq2Seq model(cfg);
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(1700);
    double first = 0, last = 0;
    for (int step = 0; step < 220; ++step) {
        auto batch = task.sample(24, rng);
        opt.zero_grad();
        double loss = model.train_loss(batch);
        opt.clip_grad_norm(5.0);
        opt.step();
        if (step == 0)
            first = loss;
        last = loss;
    }
    EXPECT_LT(last, first * 0.5);
    auto eval = task.sample(16, rng);
    EXPECT_GT(model.bleu(eval, task), 15.0);
}

TEST(DlrmIntegration, BeatsPriorAuc)
{
    DlrmConfig cfg;
    cfg.seed = 1800;
    data::ClickLogs task(cfg.num_tables, cfg.vocab_per_table,
                         cfg.dense_dim, 1900);
    DlrmMini model(cfg);
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(2000);
    for (int step = 0; step < 150; ++step) {
        auto batch = task.sample(64, rng);
        opt.zero_grad();
        model.train_loss(batch);
        opt.step();
    }
    auto eval = task.sample(2048, rng);
    auto probs = model.predict(eval);
    double a = stats::auc(eval.labels, probs);
    EXPECT_GT(a, 0.65);

    // MX9-quantized embedding storage + compute barely moves AUC.
    model.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    model.set_embedding_storage(core::mx9());
    auto probs_q = model.predict(eval);
    double aq = stats::auc(eval.labels, probs_q);
    EXPECT_NEAR(aq, a, 0.01);
}

TEST(ModelPlumbing, ParamCountsArePositiveAndStable)
{
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 4;
    GptMini gpt(cfg);
    EXPECT_GT(gpt.param_count(), 0);
    BertMini bert(cfg, 3);
    EXPECT_GT(bert.param_count(), gpt.param_count() / 4);
}
