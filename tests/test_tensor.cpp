/**
 * @file
 * Tests for the tensor substrate: matmul variants against a reference
 * triple loop, transpose, im2col/col2im adjointness.
 */

#include <gtest/gtest.h>

#include "stats/rng.h"
#include "tensor/tensor.h"

using namespace mx;
using namespace mx::tensor;

namespace {

Tensor
reference_matmul(const Tensor& a, const Tensor& b)
{
    Tensor c({a.dim(0), b.dim(1)});
    for (std::int64_t i = 0; i < a.dim(0); ++i)
        for (std::int64_t j = 0; j < b.dim(1); ++j) {
            double acc = 0;
            for (std::int64_t k = 0; k < a.dim(1); ++k)
                acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
            c.at(i, j) = static_cast<float>(acc);
        }
    return c;
}

} // namespace

TEST(Tensor, ShapeAndAccess)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.ndim(), 2);
    EXPECT_EQ(t.dim(-1), 3);
    t.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
    EXPECT_THROW(t.at(2, 0), ArgumentError);
    EXPECT_THROW(Tensor({2, 2}, std::vector<float>(3)), ArgumentError);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = t.reshape({3, 2});
    EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
    EXPECT_THROW(t.reshape({4, 2}), ArgumentError);
}

TEST(Matmul, MatchesReference)
{
    stats::Rng rng(1);
    Tensor a = Tensor::randn({7, 13}, rng);
    Tensor b = Tensor::randn({13, 5}, rng);
    Tensor c = matmul(a, b);
    Tensor ref = reference_matmul(a, b);
    EXPECT_LT(max_abs_diff(c, ref), 1e-4);
}

TEST(Matmul, VariantsAgree)
{
    stats::Rng rng(2);
    Tensor a = Tensor::randn({6, 9}, rng);
    Tensor b = Tensor::randn({9, 4}, rng);
    Tensor c = matmul(a, b);
    EXPECT_LT(max_abs_diff(matmul_tn(transpose2d(a), b), c), 1e-4);
    EXPECT_LT(max_abs_diff(matmul_nt(a, transpose2d(b)), c), 1e-4);
}

TEST(Matmul, ShapeChecks)
{
    Tensor a({2, 3}), b({4, 5});
    EXPECT_THROW(matmul(a, b), ArgumentError);
    EXPECT_THROW(matmul_nt(a, b), ArgumentError);
}

TEST(Matmul, NtOracleBitExactAcrossShapes)
{
    // matmul_nt is the FP32 oracle the packed-domain GEMM's QSNR is
    // measured against (tests/test_gemm.cpp): pin it bit-for-bit to
    // sequential double accumulation across shapes whose contraction
    // widths include ragged k1=16 tails (19, 35) and magnitude spreads
    // large enough that accumulation order would show.
    stats::Rng rng(3);
    const std::int64_t shapes[][3] = {
        {1, 1, 1}, {2, 16, 3}, {5, 19, 4}, {3, 35, 8}, {9, 64, 7}};
    for (const auto& s : shapes) {
        Tensor a = Tensor::randn({s[0], s[1]}, rng);
        Tensor b = Tensor::randn({s[2], s[1]}, rng);
        for (std::int64_t i = 0; i < s[0]; ++i)
            a.at(i, (i * 7) % s[1]) *= 1e4f;
        Tensor c = matmul_nt(a, b);
        for (std::int64_t i = 0; i < s[0]; ++i)
            for (std::int64_t j = 0; j < s[2]; ++j) {
                double acc = 0;
                for (std::int64_t k = 0; k < s[1]; ++k)
                    acc += static_cast<double>(a.at(i, k)) * b.at(j, k);
                EXPECT_EQ(c.at(i, j), static_cast<float>(acc))
                    << "[" << s[0] << "," << s[1] << "," << s[2]
                    << "] at (" << i << "," << j << ")";
            }
    }
}

TEST(Transpose, Involution)
{
    stats::Rng rng(3);
    Tensor a = Tensor::randn({5, 8}, rng);
    EXPECT_EQ(max_abs_diff(transpose2d(transpose2d(a)), a), 0.0);
}

TEST(Elementwise, AddSubMulScaleBias)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {5, 6, 7, 8});
    EXPECT_FLOAT_EQ(add(a, b).at(1, 1), 12.0f);
    EXPECT_FLOAT_EQ(sub(b, a).at(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(mul(a, b).at(1, 0), 21.0f);
    EXPECT_FLOAT_EQ(scale(a, 2.0f).at(0, 1), 4.0f);
    Tensor bias({2}, {10, 20});
    EXPECT_FLOAT_EQ(add_row_bias(a, bias).at(1, 1), 24.0f);
    Tensor acc = a;
    axpy(acc, 0.5f, b);
    EXPECT_FLOAT_EQ(acc.at(0, 0), 3.5f);
}

TEST(Reductions, SumRowsAndSoftmax)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor s = sum_rows(a);
    EXPECT_FLOAT_EQ(s.at(0), 5.0f);
    EXPECT_FLOAT_EQ(s.at(2), 9.0f);
    Tensor sm = softmax_rows(a);
    for (std::int64_t i = 0; i < 2; ++i) {
        float total = 0;
        for (std::int64_t j = 0; j < 3; ++j)
            total += sm.at(i, j);
        EXPECT_NEAR(total, 1.0f, 1e-6f);
    }
    EXPECT_GT(sm.at(0, 2), sm.at(0, 0));
}

TEST(Conv, Im2ColShapesAndValues)
{
    Conv2dGeometry g{1, 1, 4, 4, 1, 3, 1, 1};
    Tensor img({1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i)
        img.data()[i] = static_cast<float>(i);
    Tensor cols = im2col(img, g);
    EXPECT_EQ(cols.dim(0), 16);
    EXPECT_EQ(cols.dim(1), 9);
    // Center patch at output (1,1) sees pixels 0..10 around index 5.
    EXPECT_FLOAT_EQ(cols.at(5, 4), 5.0f); // center of the patch
    // Padding shows as zeros on the border patch.
    EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
}

TEST(Conv, Col2ImIsAdjointOfIm2Col)
{
    // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
    // property that makes the conv backward correct.
    stats::Rng rng(4);
    Conv2dGeometry g{2, 3, 5, 5, 4, 3, 2, 1};
    Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
    Tensor y = Tensor::randn({2 * g.out_h() * g.out_w(), 3 * 3 * 3}, rng);
    Tensor cx = im2col(x, g);
    double lhs = 0;
    for (std::int64_t i = 0; i < cx.numel(); ++i)
        lhs += static_cast<double>(cx.data()[i]) * y.data()[i];
    Tensor ay = col2im(y, g);
    double rhs = 0;
    for (std::int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x.data()[i]) * ay.data()[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}
