/**
 * @file
 * Property tests for the plan/execute quantization kernel layer:
 * the SIMD kernel must be bit-identical to the scalar reference for
 * every format, block size (including short tails), magnitude regime,
 * and rounding mode — across dequantized floats, integer encodings,
 * and fused-packed bit streams.  Also covers the word-level BitWriter/
 * BitReader and the runtime dispatch override.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/kernels/dispatch.h"
#include "core/quantize.h"
#include "formats/block_codec.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::core;

namespace {

std::vector<float>
random_vec(std::size_t n, stats::Rng& rng, double sigma)
{
    std::vector<float> v(n);
    for (auto& x : v) {
        x = static_cast<float>(rng.normal(0.0, sigma));
        if (rng.bernoulli(0.05))
            x = 0.0f; // exercise zero sub-blocks
        if (rng.bernoulli(0.02))
            x = -x;
    }
    return v;
}

void
expect_bits_equal(std::span<const float> a, std::span<const float> b,
                  const std::string& what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
                  std::bit_cast<std::uint32_t>(b[i]))
            << what << " index " << i << ": " << a[i] << " vs " << b[i];
}

/** The format grid the parity suite sweeps (m, k1, d2, k2 variety). */
std::vector<BdrFormat>
parity_formats()
{
    std::vector<BdrFormat> fmts = {mx9(), mx6(), mx4(), msfp16(), msfp12()};
    for (int m : {1, 3, 7, 10}) {
        fmts.push_back(bfp_custom(m, 8, 16));
        fmts.push_back(mx_custom(m, 8, 8, 1, 2));
        fmts.push_back(mx_custom(m, 8, 32, 2, 4));
        fmts.push_back(mx_custom(m, 8, 128, 3, 8));
        fmts.push_back(mx_custom(m, 8, 16, 4, 16));
        fmts.push_back(mx_custom(m, 8, 64, 1, 1));
    }
    return fmts;
}

const std::size_t kSizes[] = {1, 5, 15, 16, 17, 37, 128, 333, 1024};
const double kSigmas[] = {1.0, 1e-20, 1e20, 0x1p-120, 0x1p+60};
const RoundingMode kModes[] = {RoundingMode::NearestEven,
                               RoundingMode::NearestAway,
                               RoundingMode::TowardZero,
                               RoundingMode::Stochastic};

class KernelParity : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!kernels::avx2_supported())
            GTEST_SKIP() << "AVX2 kernel not available on this host";
    }

    const kernels::QuantKernel& scalar_ = kernels::scalar_kernel();
    const kernels::QuantKernel& simd_ = *kernels::avx2_kernel();
};

TEST_F(KernelParity, QuantizeSpansBitIdentical)
{
    stats::Rng data_rng(2024);
    for (const auto& fmt : parity_formats()) {
        const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
        for (std::size_t n : kSizes) {
            for (double sigma : kSigmas) {
                for (RoundingMode mode : kModes) {
                    SCOPED_TRACE(fmt.summary() + " n=" + std::to_string(n) +
                                 " sigma=" + std::to_string(sigma) + " " +
                                 to_string(mode));
                    auto x = random_vec(n, data_rng, sigma);
                    std::vector<float> a(n), b(n);
                    stats::Rng r1(7), r2(7);
                    Rounder ra(mode, &r1), rb(mode, &r2);
                    scalar_.quantize(plan, x, a, ra);
                    simd_.quantize(plan, x, b, rb);
                    expect_bits_equal(a, b, "quantize");
                }
            }
        }
    }
}

TEST_F(KernelParity, BlockEncodingsIdentical)
{
    stats::Rng data_rng(77);
    for (const auto& fmt : parity_formats()) {
        const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
        const std::size_t k1 = static_cast<std::size_t>(fmt.k1);
        for (std::size_t n : {k1, k1 / 2 + 1, std::size_t{1}}) {
            for (double sigma : kSigmas) {
                SCOPED_TRACE(fmt.summary() + " n=" + std::to_string(n) +
                             " sigma=" + std::to_string(sigma));
                auto x = random_vec(n, data_rng, sigma);
                std::vector<float> a(n), b(n);
                Pow2BlockEncoding ea, eb;
                Rounder r;
                scalar_.quantize_block(plan, x, a, r, &ea);
                simd_.quantize_block(plan, x, b, r, &eb);
                expect_bits_equal(a, b, "quantize_block");
                EXPECT_EQ(ea.shared_exp, eb.shared_exp);
                ASSERT_EQ(ea.sub_shift, eb.sub_shift);
                ASSERT_EQ(ea.mantissa, eb.mantissa);

                // Dequantize through both kernels as well.
                std::vector<float> da(n), db(n);
                scalar_.dequantize_block(plan, ea, da);
                simd_.dequantize_block(plan, ea, db);
                expect_bits_equal(da, db, "dequantize_block");
            }
        }
    }
}

TEST_F(KernelParity, FusedPackStreamsIdentical)
{
    stats::Rng data_rng(4242);
    for (const auto& fmt : parity_formats()) {
        const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
        for (std::size_t n : {std::size_t{37}, std::size_t{1024}}) {
            for (double sigma : {1.0, 0x1p-120}) {
                SCOPED_TRACE(fmt.summary() + " n=" + std::to_string(n));
                auto x = random_vec(n, data_rng, sigma);
                BitWriter wa, wb;
                Rounder r;
                scalar_.quantize_pack(plan, x, r, wa);
                simd_.quantize_pack(plan, x, r, wb);
                EXPECT_EQ(wa.bit_count(), wb.bit_count());
                EXPECT_EQ(wa.bytes(), wb.bytes());
            }
        }
    }
}

TEST_F(KernelParity, ExactTiesRoundIdentically)
{
    // Craft values that land exactly between two mantissa codes so the
    // ties-to-even policy itself is compared, not just generic data.
    // Every k2=2 sub-block carries a 64.0 anchor, pinning tau = 0 and
    // the quantization step to exactly 1.
    const BdrFormat fmt = mx9(); // m = 7: step 1 when the sub-max is 2^6
    const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
    std::vector<float> x = {64.0f, 2.5f,  -3.5f, 64.0f, 4.5f,  64.0f,
                            64.0f, -0.5f, 1.5f,  64.0f, 64.0f, 126.5f,
                            -6.5f, 64.0f, 0.0f,  -0.0f};
    std::vector<float> a(x.size()), b(x.size());
    Rounder r;
    scalar_.quantize(plan, x, a, r);
    simd_.quantize(plan, x, b, r);
    expect_bits_equal(a, b, "ties");
    // And the ties really did go to even.
    EXPECT_EQ(a[1], 2.0f);    // 2.5 -> 2
    EXPECT_EQ(a[2], -4.0f);   // -3.5 -> -4
    EXPECT_EQ(a[4], 4.0f);    // 4.5 -> 4
    EXPECT_EQ(a[7], -0.0f);   // -0.5 -> -0
    EXPECT_EQ(a[8], 2.0f);    // 1.5 -> 2
    EXPECT_EQ(a[11], 126.0f); // 126.5 -> 126
    EXPECT_EQ(a[12], -6.0f);  // -6.5 -> -6
}

TEST_F(KernelParity, NanBlocksMatchReference)
{
    // Garbage in must at least be the SAME garbage out under either
    // kernel: a NaN-bearing block delegates to the reference, keeping
    // dispatch invariance on malformed training data.
    const kernels::QuantPlan plan = kernels::make_quant_plan(mx9());
    std::vector<float> x(32, 1.0f);
    x[3] = std::numeric_limits<float>::quiet_NaN();
    x[20] = -std::numeric_limits<float>::quiet_NaN();
    std::vector<float> a(x.size()), b(x.size());
    Rounder r;
    scalar_.quantize(plan, x, a, r);
    simd_.quantize(plan, x, b, r);
    expect_bits_equal(a, b, "nan block");
    // The NaN-free second half of block 0 still quantizes sanely.
    EXPECT_EQ(a[0], 1.0f);
}

TEST_F(KernelParity, DegenerateValidFormatsStillWork)
{
    // validate() admits m == 0 (sign-only elements) and d1 == 1; the
    // plan and both kernels must accept everything validate() accepts.
    stats::Rng rng(5150);
    for (BdrFormat fmt : {bfp_custom(0, 8, 16), bfp_custom(3, 1, 16),
                          mx_custom(0, 1, 16, 1, 2)}) {
        ASSERT_NO_THROW(fmt.validate()) << fmt.summary();
        const kernels::QuantPlan plan = kernels::make_quant_plan(fmt);
        auto x = random_vec(100, rng, 1.0);
        std::vector<float> a(x.size()), b(x.size());
        Rounder r;
        scalar_.quantize(plan, x, a, r);
        simd_.quantize(plan, x, b, r);
        expect_bits_equal(a, b, fmt.summary());
    }
}

TEST(KernelDispatch, ForceScalarPinsReference)
{
    kernels::set_force_scalar(true);
    EXPECT_STREQ(kernels::active_kernel().name(), "scalar");
    kernels::set_force_scalar(false);
    // Releasing the override re-resolves from the environment, so the
    // expectation depends on MX_FORCE_SCALAR (the CI matrix exercises
    // both values of the knob).
    // Same parser dispatch itself uses, so the expectation cannot
    // drift from resolve()'s reading of the knob.
    const bool env_scalar = core::env::flag_knob("MX_FORCE_SCALAR", false);
    if (kernels::avx2_supported() && !env_scalar)
        EXPECT_STREQ(kernels::active_kernel().name(), "avx2");
    else
        EXPECT_STREQ(kernels::active_kernel().name(), "scalar");
}

TEST(KernelDispatch, PackedBytesInvariantUnderDispatch)
{
    // The packed stream is part of the storage format: it must not
    // depend on which kernel produced it.
    stats::Rng rng(9);
    std::vector<float> x(1000);
    for (auto& v : x)
        v = static_cast<float>(rng.normal());
    kernels::set_force_scalar(true);
    auto p_scalar = formats::pack(mx9(), x);
    kernels::set_force_scalar(false);
    auto p_active = formats::pack(mx9(), x);
    EXPECT_EQ(p_scalar.bytes, p_active.bytes);
    EXPECT_EQ(p_scalar.bit_size, p_active.bit_size);
}

TEST(BitStream, RandomFieldsRoundTrip)
{
    stats::Rng rng(31337);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::pair<std::uint64_t, int>> fields;
        BitWriter w;
        std::size_t bits = 0;
        for (int i = 0; i < 50; ++i) {
            int width = static_cast<int>(rng.uniform_int(0, 64));
            std::uint64_t value = rng.next_u64();
            if (width < 64)
                value &= (1ull << width) - 1;
            fields.emplace_back(value, width);
            w.write(value, width);
            bits += static_cast<std::size_t>(width);
        }
        ASSERT_EQ(w.bit_count(), bits);
        BitReader r(w.bytes());
        for (const auto& [value, width] : fields)
            ASSERT_EQ(r.read(width), value) << "width " << width;
        ASSERT_EQ(r.bit_position(), bits);
    }
}

TEST(BitStream, ReadPastEndThrows)
{
    BitWriter w;
    w.write(0x2a, 6);
    BitReader r(w.bytes());
    EXPECT_EQ(r.read(6), 0x2au);
    // The final partial byte zero-pads to 8 bits; past that is an error.
    EXPECT_EQ(r.read(2), 0u);
    EXPECT_THROW(r.read(1), ArgumentError);
}

TEST(QuantPlan, RejectsNonPow2Formats)
{
    EXPECT_THROW(kernels::make_quant_plan(fp8_e4m3()), ArgumentError);
    EXPECT_THROW(kernels::make_quant_plan(scaled_int(8)), ArgumentError);
    const kernels::QuantPlan p = kernels::make_quant_plan(mx9());
    EXPECT_EQ(p.m, 7);
    EXPECT_EQ(p.k1, 16);
    EXPECT_EQ(p.k2, 2);
    EXPECT_EQ(p.beta, 1);
    EXPECT_EQ(p.mant_max, 127);
    EXPECT_EQ(p.e_max, 127);
    EXPECT_EQ(p.e_min, -127);
}

} // namespace
