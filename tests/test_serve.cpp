/**
 * @file
 * InferenceEngine tests: replies match the direct forward bit-for-bit,
 * the batcher's coalescing choices cannot change any output (the serve
 * determinism contract), the bounded queue applies back-pressure, and
 * batch-function errors propagate through the request futures.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "models/mlp.h"
#include "models/transformer.h"
#include "nn/quant.h"
#include "serve/engine.h"
#include "stats/rng.h"

using namespace mx;
using tensor::Tensor;

namespace {

/** A frozen MX9 MLP and its engine batch function. */
struct FrozenMlp
{
    models::MlpClassifier model;

    FrozenMlp()
        : model(16, {24}, 4, nn::QuantSpec::forward_only(core::mx9()), 91)
    {
        model.freeze();
    }

    serve::InferenceEngine::BatchFn
    fn()
    {
        return [this](const Tensor& batch) {
            return model.logits(batch, /*train=*/false);
        };
    }
};

std::vector<std::vector<float>>
random_rows(std::size_t n, std::int64_t dim, std::uint64_t seed)
{
    stats::Rng rng(seed);
    std::vector<std::vector<float>> rows(n);
    for (auto& r : rows) {
        r.resize(static_cast<std::size_t>(dim));
        for (float& v : r)
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    return rows;
}

} // namespace

TEST(InferenceEngine, RepliesMatchDirectForwardBitForBit)
{
    FrozenMlp m;
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 32;
    cfg.rows_independent = true;
    serve::InferenceEngine engine(m.fn(), 16, cfg);

    auto rows = random_rows(10, 16, 7);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));

    for (std::size_t i = 0; i < rows.size(); ++i) {
        serve::Reply reply = futures[i].get();
        Tensor x({1, 16});
        std::copy(rows[i].begin(), rows[i].end(), x.data());
        Tensor direct = m.model.logits(x, false);
        ASSERT_EQ(reply.output.size(), static_cast<std::size_t>(4));
        for (std::int64_t j = 0; j < 4; ++j)
            EXPECT_EQ(reply.output[static_cast<std::size_t>(j)],
                      direct.data()[j])
                << "request " << i << " logit " << j;
        EXPECT_GE(reply.batch_rows, 1u);
        EXPECT_LE(reply.batch_rows, 4u);
        EXPECT_GE(reply.latency_ms, reply.queue_ms);
        EXPECT_GE(reply.queue_ms, 0.0);
    }

    serve::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 10u);
    std::uint64_t hist_rows = 0, hist_batches = 0;
    for (std::size_t b = 0; b < stats.batch_size_hist.size(); ++b) {
        hist_rows += stats.batch_size_hist[b] * b;
        hist_batches += stats.batch_size_hist[b];
    }
    EXPECT_EQ(hist_rows, stats.requests);
    EXPECT_EQ(hist_batches, stats.batches);
}

TEST(InferenceEngine, CoalescingOrderCannotChangeOutputs)
{
    // The same request stream through a no-batching engine, a heavily
    // coalescing engine, and a sharded engine must produce identical
    // bits: batching is an execution detail, never a numeric one.
    FrozenMlp m;
    auto rows = random_rows(16, 16, 11);

    auto run = [&](std::size_t max_batch, bool rows_independent,
                   core::ThreadPool* pool) {
        serve::EngineConfig cfg;
        cfg.max_batch = max_batch;
        cfg.queue_capacity = 64;
        cfg.rows_independent = rows_independent;
        cfg.pool = pool;
        serve::InferenceEngine engine(m.fn(), 16, cfg);
        std::vector<std::future<serve::Reply>> futures;
        for (const auto& r : rows)
            futures.push_back(engine.submit(r));
        std::vector<std::vector<float>> outs;
        for (auto& f : futures)
            outs.push_back(f.get().output);
        return outs;
    };

    core::ThreadPool pool(4);
    auto singles = run(1, false, nullptr);
    auto batched = run(8, false, nullptr);
    auto sharded = run(16, true, &pool);
    ASSERT_EQ(singles.size(), batched.size());
    for (std::size_t i = 0; i < singles.size(); ++i) {
        EXPECT_EQ(singles[i], batched[i]) << "request " << i;
        EXPECT_EQ(singles[i], sharded[i]) << "request " << i;
    }
}

TEST(InferenceEngine, TransformerSequencesAreCoalescingInvariant)
{
    // Sequence models serve one whole token window per request row; the
    // batcher coalesces windows, never tokens, so outputs stay exact.
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 8;
    cfg.spec = nn::QuantSpec::forward_only(core::mx9());
    models::GptMini model(cfg);
    model.freeze();

    // One output row per request window: the last position's logits.
    auto batch_fn = [&](const Tensor& in) {
        return model.window_logits(in);
    };

    stats::Rng rng(13);
    std::vector<std::vector<float>> windows(6);
    for (auto& w : windows) {
        w.resize(static_cast<std::size_t>(cfg.seq_len));
        for (float& t : w)
            t = static_cast<float>(rng.next_u64() % cfg.vocab);
    }

    auto run = [&](std::size_t max_batch, bool shard) {
        serve::EngineConfig ec;
        ec.max_batch = max_batch;
        ec.queue_capacity = 16;
        ec.rows_independent = shard;
        serve::InferenceEngine engine(batch_fn, cfg.seq_len, ec);
        std::vector<std::future<serve::Reply>> futures;
        for (const auto& w : windows)
            futures.push_back(engine.submit(w));
        std::vector<std::vector<float>> outs;
        for (auto& f : futures)
            outs.push_back(f.get().output);
        return outs;
    };

    auto singles = run(1, false);
    auto coalesced = run(6, true);
    for (std::size_t i = 0; i < windows.size(); ++i)
        EXPECT_EQ(singles[i], coalesced[i]) << "window " << i;
}

TEST(InferenceEngine, BoundedQueueAppliesBackpressure)
{
    serve::EngineConfig cfg;
    cfg.max_batch = 1;
    cfg.queue_capacity = 2;
    serve::InferenceEngine engine(
        [](const Tensor& in) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            return in; // echo
        },
        4, cfg);

    auto rows = random_rows(12, 4, 17);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r)); // blocks while queue full
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(futures[i].get().output, rows[i]);

    serve::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 12u);
    EXPECT_LE(stats.max_queue_depth, 2u);
}

TEST(InferenceEngine, DrainWaitsForAllAcceptedWork)
{
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 16;
    serve::InferenceEngine engine(
        [](const Tensor& in) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return in;
        },
        4, cfg);
    auto rows = random_rows(8, 4, 19);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));
    engine.drain();
    for (auto& f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}

TEST(InferenceEngine, BatchFunctionErrorsPropagateToFutures)
{
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 8;
    serve::InferenceEngine engine(
        [](const Tensor&) -> Tensor {
            throw std::runtime_error("model exploded");
        },
        4, cfg);
    auto fut = engine.submit(std::vector<float>(4, 0.5f));
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The engine keeps serving after a failed batch.
    auto fut2 = engine.submit(std::vector<float>(4, 0.25f));
    EXPECT_THROW(fut2.get(), std::runtime_error);
}

TEST(InferenceEngine, RejectsMalformedRequestsAndBatchFns)
{
    FrozenMlp m;
    serve::InferenceEngine engine(m.fn(), 16);
    EXPECT_THROW(engine.submit(std::vector<float>(3, 0.0f)),
                 ArgumentError);
    EXPECT_THROW(serve::InferenceEngine(nullptr, 4), ArgumentError);
    EXPECT_THROW(serve::InferenceEngine(m.fn(), 0), ArgumentError);
}

TEST(InferenceEngine, EnvironmentKnobsResolveDefaults)
{
    ::setenv("MX_SERVE_BATCH", "3", 1);
    ::setenv("MX_SERVE_QUEUE", "5", 1);
    EXPECT_EQ(serve::EngineConfig::default_max_batch(), 3u);
    EXPECT_EQ(serve::EngineConfig::default_queue_capacity(), 5u);
    {
        FrozenMlp m;
        serve::InferenceEngine engine(m.fn(), 16);
        EXPECT_EQ(engine.max_batch(), 3u);
        EXPECT_EQ(engine.queue_capacity(), 5u);
    }
    ::setenv("MX_SERVE_BATCH", "not-a-number", 1);
    EXPECT_EQ(serve::EngineConfig::default_max_batch(), 16u);
    ::unsetenv("MX_SERVE_BATCH");
    ::unsetenv("MX_SERVE_QUEUE");
    EXPECT_EQ(serve::EngineConfig::default_max_batch(), 16u);
    EXPECT_EQ(serve::EngineConfig::default_queue_capacity(), 256u);
}
