/**
 * @file
 * InferenceEngine tests: replies match the direct forward bit-for-bit,
 * the batcher's coalescing choices cannot change any output (the serve
 * determinism contract), the bounded queue applies back-pressure, and
 * batch-function errors propagate through the request futures.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <atomic>
#include <memory>

#include "core/kernels/dispatch.h"
#include "core/thread_pool.h"
#include "gemm/packed_gemm.h"
#include "models/mlp.h"
#include "models/serve_adapters.h"
#include "models/transformer.h"
#include "nn/quant.h"
#include "serve/engine.h"
#include "serve/session_cache.h"
#include "stats/rng.h"

using namespace mx;
using tensor::Tensor;

namespace {

/** A frozen MX9 MLP and its engine batch function. */
struct FrozenMlp
{
    models::MlpClassifier model;

    FrozenMlp()
        : model(16, {24}, 4, nn::QuantSpec::forward_only(core::mx9()), 91)
    {
        model.freeze();
    }

    serve::InferenceEngine::BatchFn
    fn()
    {
        return [this](const Tensor& batch) {
            return model.logits(batch, /*train=*/false);
        };
    }
};

std::vector<std::vector<float>>
random_rows(std::size_t n, std::int64_t dim, std::uint64_t seed)
{
    stats::Rng rng(seed);
    std::vector<std::vector<float>> rows(n);
    for (auto& r : rows) {
        r.resize(static_cast<std::size_t>(dim));
        for (float& v : r)
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    return rows;
}

} // namespace

TEST(InferenceEngine, RepliesMatchDirectForwardBitForBit)
{
    FrozenMlp m;
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 32;
    cfg.rows_independent = true;
    serve::InferenceEngine engine(m.fn(), 16, cfg);

    auto rows = random_rows(10, 16, 7);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));

    for (std::size_t i = 0; i < rows.size(); ++i) {
        serve::Reply reply = futures[i].get();
        Tensor x({1, 16});
        std::copy(rows[i].begin(), rows[i].end(), x.data());
        Tensor direct = m.model.logits(x, false);
        ASSERT_EQ(reply.output.size(), static_cast<std::size_t>(4));
        for (std::int64_t j = 0; j < 4; ++j)
            EXPECT_EQ(reply.output[static_cast<std::size_t>(j)],
                      direct.data()[j])
                << "request " << i << " logit " << j;
        EXPECT_GE(reply.batch_rows, 1u);
        EXPECT_LE(reply.batch_rows, 4u);
        EXPECT_GE(reply.latency_ms, reply.queue_ms);
        EXPECT_GE(reply.queue_ms, 0.0);
    }

    serve::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 10u);
    std::uint64_t hist_rows = 0, hist_batches = 0;
    for (std::size_t b = 0; b < stats.batch_size_hist.size(); ++b) {
        hist_rows += stats.batch_size_hist[b] * b;
        hist_batches += stats.batch_size_hist[b];
    }
    EXPECT_EQ(hist_rows, stats.requests);
    EXPECT_EQ(hist_batches, stats.batches);
}

TEST(InferenceEngine, CoalescingOrderCannotChangeOutputs)
{
    // The same request stream through a no-batching engine, a heavily
    // coalescing engine, and a sharded engine must produce identical
    // bits: batching is an execution detail, never a numeric one.
    FrozenMlp m;
    auto rows = random_rows(16, 16, 11);

    auto run = [&](std::size_t max_batch, bool rows_independent,
                   core::ThreadPool* pool) {
        serve::EngineConfig cfg;
        cfg.max_batch = max_batch;
        cfg.queue_capacity = 64;
        cfg.rows_independent = rows_independent;
        cfg.pool = pool;
        serve::InferenceEngine engine(m.fn(), 16, cfg);
        std::vector<std::future<serve::Reply>> futures;
        for (const auto& r : rows)
            futures.push_back(engine.submit(r));
        std::vector<std::vector<float>> outs;
        for (auto& f : futures)
            outs.push_back(f.get().output);
        return outs;
    };

    core::ThreadPool pool(4);
    auto singles = run(1, false, nullptr);
    auto batched = run(8, false, nullptr);
    auto sharded = run(16, true, &pool);
    ASSERT_EQ(singles.size(), batched.size());
    for (std::size_t i = 0; i < singles.size(); ++i) {
        EXPECT_EQ(singles[i], batched[i]) << "request " << i;
        EXPECT_EQ(singles[i], sharded[i]) << "request " << i;
    }
}

TEST(InferenceEngine, TransformerSequencesAreCoalescingInvariant)
{
    // Sequence models serve one whole token window per request row; the
    // batcher coalesces windows, never tokens, so outputs stay exact.
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 8;
    cfg.spec = nn::QuantSpec::forward_only(core::mx9());
    models::GptMini model(cfg);
    model.freeze();

    // One output row per request window: the last position's logits.
    auto batch_fn = [&](const Tensor& in) {
        return model.window_logits(in);
    };

    stats::Rng rng(13);
    std::vector<std::vector<float>> windows(6);
    for (auto& w : windows) {
        w.resize(static_cast<std::size_t>(cfg.seq_len));
        for (float& t : w)
            t = static_cast<float>(rng.next_u64() % cfg.vocab);
    }

    auto run = [&](std::size_t max_batch, bool shard) {
        serve::EngineConfig ec;
        ec.max_batch = max_batch;
        ec.queue_capacity = 16;
        ec.rows_independent = shard;
        serve::InferenceEngine engine(batch_fn, cfg.seq_len, ec);
        std::vector<std::future<serve::Reply>> futures;
        for (const auto& w : windows)
            futures.push_back(engine.submit(w));
        std::vector<std::vector<float>> outs;
        for (auto& f : futures)
            outs.push_back(f.get().output);
        return outs;
    };

    auto singles = run(1, false);
    auto coalesced = run(6, true);
    for (std::size_t i = 0; i < windows.size(); ++i)
        EXPECT_EQ(singles[i], coalesced[i]) << "window " << i;
}

TEST(InferenceEngine, BoundedQueueAppliesBackpressure)
{
    serve::EngineConfig cfg;
    cfg.max_batch = 1;
    cfg.queue_capacity = 2;
    serve::InferenceEngine engine(
        [](const Tensor& in) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            return in; // echo
        },
        4, cfg);

    auto rows = random_rows(12, 4, 17);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r)); // blocks while queue full
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(futures[i].get().output, rows[i]);

    serve::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 12u);
    EXPECT_LE(stats.max_queue_depth, 2u);
}

TEST(InferenceEngine, DrainWaitsForAllAcceptedWork)
{
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 16;
    serve::InferenceEngine engine(
        [](const Tensor& in) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return in;
        },
        4, cfg);
    auto rows = random_rows(8, 4, 19);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));
    engine.drain();
    for (auto& f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}

TEST(InferenceEngine, BatchFunctionErrorsPropagateToFutures)
{
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 8;
    serve::InferenceEngine engine(
        [](const Tensor&) -> Tensor {
            throw std::runtime_error("model exploded");
        },
        4, cfg);
    auto fut = engine.submit(std::vector<float>(4, 0.5f));
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The engine keeps serving after a failed batch.
    auto fut2 = engine.submit(std::vector<float>(4, 0.25f));
    EXPECT_THROW(fut2.get(), std::runtime_error);
}

TEST(InferenceEngine, RejectsMalformedRequestsAndBatchFns)
{
    FrozenMlp m;
    serve::InferenceEngine engine(m.fn(), 16);
    EXPECT_THROW(engine.submit(std::vector<float>(3, 0.0f)),
                 ArgumentError);
    EXPECT_THROW(
        serve::InferenceEngine(serve::InferenceEngine::BatchFn{}, 4),
        ArgumentError);
    EXPECT_THROW(serve::InferenceEngine(m.fn(), 0), ArgumentError);
    EXPECT_THROW(
        serve::InferenceEngine(serve::InferenceEngine::ReplicaFactory{},
                               4),
        ArgumentError);
}

TEST(InferenceEngine, EnvironmentKnobsResolveDefaults)
{
    ::setenv("MX_SERVE_BATCH", "3", 1);
    ::setenv("MX_SERVE_QUEUE", "5", 1);
    ::setenv("MX_SERVE_REPLICAS", "2", 1);
    EXPECT_EQ(serve::EngineConfig::default_max_batch(), 3u);
    EXPECT_EQ(serve::EngineConfig::default_queue_capacity(), 5u);
    EXPECT_EQ(serve::EngineConfig::default_replicas(), 2u);
    {
        FrozenMlp m;
        serve::InferenceEngine engine(m.fn(), 16);
        EXPECT_EQ(engine.max_batch(), 3u);
        EXPECT_EQ(engine.queue_capacity(), 5u);
        EXPECT_EQ(engine.replicas(), 2u);
        EXPECT_EQ(engine.stats().replicas, 2u);
    }
    // Malformed values fall back (with a once-per-variable warning).
    ::setenv("MX_SERVE_BATCH", "not-a-number", 1);
    ::setenv("MX_SERVE_REPLICAS", "0", 1);
    EXPECT_EQ(serve::EngineConfig::default_max_batch(), 16u);
    EXPECT_EQ(serve::EngineConfig::default_replicas(), 1u);
    ::unsetenv("MX_SERVE_BATCH");
    ::unsetenv("MX_SERVE_QUEUE");
    ::unsetenv("MX_SERVE_REPLICAS");
    EXPECT_EQ(serve::EngineConfig::default_max_batch(), 16u);
    EXPECT_EQ(serve::EngineConfig::default_queue_capacity(), 256u);
    EXPECT_EQ(serve::EngineConfig::default_replicas(), 1u);

    ::setenv("MX_SERVE_SESSIONS", "7", 1);
    EXPECT_EQ(serve::SessionCache::default_capacity(), 7u);
    ::setenv("MX_SERVE_SESSIONS", "0", 1); // documented off switch
    EXPECT_EQ(serve::SessionCache::default_capacity(), 0u);
    EXPECT_FALSE(serve::SessionCache().enabled());
    ::unsetenv("MX_SERVE_SESSIONS");
    EXPECT_EQ(serve::SessionCache::default_capacity(), 64u);
}

TEST(InferenceEngine, ReplicasMatchSingleWorkerBitForBit)
{
    // The replica count is an execution detail, never a numeric one:
    // the same request stream through 1 and 4 replica workers must
    // produce identical bits, and the stats must stay consistent
    // (every accepted row lands in exactly one batch's histogram).
    FrozenMlp m;
    auto rows = random_rows(24, 16, 23);

    auto run = [&](std::size_t replicas) {
        serve::EngineConfig cfg;
        cfg.max_batch = 4;
        cfg.queue_capacity = 64;
        cfg.replicas = replicas;
        serve::InferenceEngine engine(m.fn(), 16, cfg);
        EXPECT_EQ(engine.replicas(), replicas);
        std::vector<std::future<serve::Reply>> futures;
        for (const auto& r : rows)
            futures.push_back(engine.submit(r));
        std::vector<std::vector<float>> outs;
        for (auto& f : futures)
            outs.push_back(f.get().output);
        engine.drain();

        serve::EngineStats stats = engine.stats();
        EXPECT_EQ(stats.requests, rows.size());
        EXPECT_EQ(stats.replicas, replicas);
        std::uint64_t hist_rows = 0, hist_batches = 0;
        for (std::size_t b = 0; b < stats.batch_size_hist.size(); ++b) {
            hist_rows += stats.batch_size_hist[b] * b;
            hist_batches += stats.batch_size_hist[b];
        }
        EXPECT_EQ(hist_rows, stats.requests)
            << "with " << replicas << " replicas";
        EXPECT_EQ(hist_batches, stats.batches);
        return outs;
    };

    auto single = run(1);
    auto replicated = run(4);
    ASSERT_EQ(single.size(), replicated.size());
    for (std::size_t i = 0; i < single.size(); ++i)
        EXPECT_EQ(single[i], replicated[i]) << "request " << i;
}

TEST(InferenceEngine, ReplicaFactoryClonesServeIdentically)
{
    // Per-replica model clones: the factory builds one frozen MLP per
    // worker (deterministic init -> identical weights; FrozenTensor
    // handles would let a real clone share the packed artifacts).
    // Outputs must match the single shared-model engine bit for bit.
    FrozenMlp reference;
    auto rows = random_rows(12, 16, 29);

    std::vector<std::unique_ptr<FrozenMlp>> clones;
    serve::EngineConfig cfg;
    cfg.max_batch = 2;
    cfg.queue_capacity = 32;
    cfg.replicas = 3;
    serve::InferenceEngine engine(
        serve::InferenceEngine::ReplicaFactory(
            [&clones](std::size_t) -> serve::InferenceEngine::BatchFn {
                clones.push_back(std::make_unique<FrozenMlp>());
                return clones.back()->fn();
            }),
        16, cfg);
    EXPECT_EQ(clones.size(), 3u);

    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        Tensor x({1, 16});
        std::copy(rows[i].begin(), rows[i].end(), x.data());
        Tensor direct = reference.model.logits(x, false);
        serve::Reply reply = futures[i].get();
        for (std::int64_t j = 0; j < 4; ++j)
            EXPECT_EQ(reply.output[static_cast<std::size_t>(j)],
                      direct.data()[j])
                << "request " << i << " logit " << j;
    }
}

TEST(InferenceEngine, ShutdownRejectsBlockedSubmitterDistinctly)
{
    // A submitter blocked on back-pressure when the engine dies must
    // observe EngineShutdownError — a distinct type, so callers can
    // tell "engine shut down" from "bad request" — while every
    // request accepted before shutdown still drains and completes.
    std::atomic<bool> release{false};
    auto engine = std::make_unique<serve::InferenceEngine>(
        [&release](const Tensor& in) {
            while (!release.load())
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return in;
        },
        4,
        [] {
            serve::EngineConfig cfg;
            cfg.max_batch = 1;
            cfg.queue_capacity = 1;
            cfg.replicas = 1;
            return cfg;
        }());

    // First request: picked up by the worker, parked in the batch fn.
    auto accepted1 = engine->submit(std::vector<float>(4, 1.0f));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Second request: fills the queue (capacity 1).
    auto accepted2 = engine->submit(std::vector<float>(4, 2.0f));

    // Third submitter: blocks on back-pressure.  It must hold a raw
    // pointer, not read the unique_ptr: main resets the unique_ptr
    // while this thread is still inside submit(), and the engine's
    // in-flight-submitter guarantee covers the object, not the handle.
    serve::InferenceEngine* raw = engine.get();
    std::promise<void> blocked_entered;
    std::future<void> entered = blocked_entered.get_future();
    bool saw_shutdown_error = false;
    bool saw_other_error = false;
    std::thread blocked([&] {
        blocked_entered.set_value();
        try {
            raw->submit(std::vector<float>(4, 3.0f));
        } catch (const serve::EngineShutdownError&) {
            saw_shutdown_error = true;
        } catch (...) {
            saw_other_error = true;
        }
        // Only now let the parked worker finish: the queue stays full
        // until the submitter has been rejected, so the rejection can
        // only come from shutdown — never from a freed slot winning
        // the race.  (The destructor waits out in-flight submitters
        // before joining, so this ordering is deadlock-free.)
        release.store(true);
    });
    entered.wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    engine.reset(); // destructor: reject the blocked submitter, drain
    blocked.join();

    EXPECT_TRUE(saw_shutdown_error)
        << "blocked submitter escaped without EngineShutdownError";
    EXPECT_FALSE(saw_other_error);
    // The accepted-requests-drain guarantee.
    ASSERT_EQ(accepted1.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    ASSERT_EQ(accepted2.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(accepted1.get().output, std::vector<float>(4, 1.0f));
    EXPECT_EQ(accepted2.get().output, std::vector<float>(4, 2.0f));
}

TEST(InferenceEngine, DrainCannotReturnWhileAnyReplicaHoldsABatch)
{
    // With N workers, "queue empty" alone is not "all work done": a
    // popped batch lives in its replica, not the queue.  drain() must
    // also wait out the per-worker busy count.
    std::atomic<int> in_flight{0};
    std::atomic<bool> saw_busy_violation{false};
    serve::EngineConfig cfg;
    cfg.max_batch = 1;
    cfg.queue_capacity = 32;
    cfg.replicas = 4;
    serve::InferenceEngine engine(
        [&](const Tensor& in) {
            ++in_flight;
            std::this_thread::sleep_for(std::chrono::milliseconds(3));
            --in_flight;
            return in;
        },
        4, cfg);

    auto rows = random_rows(16, 4, 31);
    std::vector<std::future<serve::Reply>> futures;
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));
    engine.drain();
    // At the moment drain() returned, no replica may still be
    // executing and every accepted future must be ready.
    EXPECT_EQ(in_flight.load(), 0) << "drain returned mid-batch";
    for (auto& f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    (void)saw_busy_violation;
}

TEST(SessionCache, CheckoutLruAndDisabledSemantics)
{
    serve::SessionCache cache(2);
    ASSERT_TRUE(cache.enabled());
    auto s1 = std::make_shared<int>(1);
    auto s2 = std::make_shared<int>(2);
    auto s3 = std::make_shared<int>(3);

    cache.put(1, s1);
    cache.put(2, s2);
    EXPECT_EQ(cache.size(), 2u);

    // take() checks out: a second take of the same id misses.
    auto got = cache.take<int>(1);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, 1);
    EXPECT_EQ(cache.take<int>(1), nullptr);
    cache.put(1, got); // check back in (1 is now the freshest)

    // Capacity 2: inserting id 3 evicts the least recently used (2).
    cache.put(3, s3);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.take<int>(2), nullptr);
    EXPECT_NE(cache.take<int>(3), nullptr);

    serve::SessionCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_GE(stats.hits, 2u);
    EXPECT_GE(stats.misses, 2u);

    // Disabled cache: every take misses, puts are dropped.
    serve::SessionCache off(0);
    EXPECT_FALSE(off.enabled());
    off.put(7, std::make_shared<int>(7));
    EXPECT_EQ(off.size(), 0u);
    EXPECT_EQ(off.take<int>(7), nullptr);
}

namespace {

/** A small frozen causal LM for the decode-session tests. */
models::GptMini
make_decode_gpt()
{
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seq_len = 8;
    cfg.spec = nn::QuantSpec::forward_only(core::mx9());
    cfg.seed = 37;
    models::GptMini model(cfg);
    model.freeze();
    return model;
}

/** Greedy argmax over one logits row. */
int
argmax_row(const float* logits, int vocab)
{
    int best = 0;
    for (int v = 1; v < vocab; ++v)
        if (logits[v] > logits[best])
            best = v;
    return best;
}

} // namespace

TEST(DecodeSession, PrefixReuseIsBitIdenticalAcrossLegsAndModes)
{
    // The decode contract: a warm session (prefix reuse) produces the
    // same bits as a cold full recompute, for every dispatch leg and
    // every MX_GEMM routing mode — and the full-window cold path
    // matches window_logits exactly.
    const gemm::Mode ambient_mode = gemm::mode();
    for (bool force_scalar : {false, true}) {
        core::kernels::set_force_scalar(force_scalar);
        for (gemm::Mode mode : {gemm::Mode::Off, gemm::Mode::On}) {
            gemm::set_mode(mode);
            models::GptMini model = make_decode_gpt();
            const auto& cfg = model.config();

            models::GptDecodeSession session;
            std::vector<int> ctx = {3, 1};
            while (static_cast<std::int64_t>(ctx.size()) < cfg.seq_len) {
                Tensor warm = model.decode_logits(ctx, &session);
                Tensor cold = model.decode_logits(ctx, nullptr);
                ASSERT_EQ(warm.numel(), cold.numel());
                for (std::int64_t j = 0; j < warm.numel(); ++j)
                    ASSERT_EQ(warm.data()[j], cold.data()[j])
                        << "scalar=" << force_scalar << " mode="
                        << static_cast<int>(mode) << " step "
                        << ctx.size() << " logit " << j;
                ctx.push_back(argmax_row(warm.data(), cfg.vocab));
            }

            // A fresh session fed the full context in one shot must
            // also land on the same bits (the incremental result is a
            // pure function of the tokens, not of the step history).
            models::GptDecodeSession oneshot;
            Tensor via_oneshot = model.decode_logits(ctx, &oneshot);
            Tensor via_cold = model.decode_logits(ctx, nullptr);
            for (std::int64_t j = 0; j < via_cold.numel(); ++j)
                ASSERT_EQ(via_oneshot.data()[j], via_cold.data()[j])
                    << "one-shot logit " << j;
        }
    }
    gemm::set_mode(ambient_mode);
    core::kernels::set_force_scalar(false); // re-resolve (honours env)
}

TEST(DecodeSession, PerTensorScaledSpecsFallBackInsteadOfThrowing)
{
    // FP8 activations use one per-tensor JIT scale, so prefix reuse is
    // off the table — but decode_logits documents a full-recompute
    // fallback there, not an error.  A session may be passed; it just
    // never engages, and results stay deterministic.
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 8;
    cfg.spec = nn::QuantSpec::forward_only(core::fp8_e4m3());
    cfg.seed = 43;
    models::GptMini model(cfg);
    model.freeze();

    models::GptDecodeSession session;
    std::vector<int> ctx = {5, 2, 7};
    Tensor with_session = model.decode_logits(ctx, &session);
    Tensor without = model.decode_logits(ctx, nullptr);
    ASSERT_EQ(with_session.numel(), without.numel());
    for (std::int64_t j = 0; j < without.numel(); ++j)
        EXPECT_EQ(with_session.data()[j], without.data()[j])
            << "logit " << j;
}

TEST(DecodeSession, DivergedStreamKeepsOnlyTheSharedPrefix)
{
    models::GptMini model = make_decode_gpt();
    models::GptDecodeSession session;

    std::vector<int> a = {3, 1, 4, 1, 5};
    Tensor warm_a = model.decode_logits(a, &session);

    // Re-decode a stream that shares only the first two tokens; the
    // session must truncate to the shared prefix, not poison the
    // result with stale rows.
    std::vector<int> b = {3, 1, 9, 2, 6, 5};
    Tensor warm_b = model.decode_logits(b, &session);
    Tensor cold_b = model.decode_logits(b, nullptr);
    for (std::int64_t j = 0; j < warm_b.numel(); ++j)
        ASSERT_EQ(warm_b.data()[j], cold_b.data()[j]) << "logit " << j;

    // Same window twice (client retry): still bit-identical.
    Tensor warm_b2 = model.decode_logits(b, &session);
    for (std::int64_t j = 0; j < warm_b2.numel(); ++j)
        ASSERT_EQ(warm_b2.data()[j], cold_b.data()[j]) << "logit " << j;
}

TEST(DecodeSession, ReplicatedSessionServingMatchesDirectDecode)
{
    // End to end: replicated engine + session-aware batch fn + LRU
    // session cache; every stream's greedy decode must reproduce the
    // cold direct path token for token and bit for bit — warm or
    // cold, coalesced or not, whichever replica served it.
    models::GptMini model = make_decode_gpt();
    const auto& cfg = model.config();
    serve::SessionCache cache(8);

    const int streams = 5;
    std::vector<std::vector<int>> prompts(streams);
    for (int s = 0; s < streams; ++s)
        prompts[static_cast<std::size_t>(s)] = {s % cfg.vocab,
                                                (2 * s + 1) % cfg.vocab};

    // Reference: cold decode, no engine, no sessions.
    auto reference = prompts;
    for (auto& ctx : reference)
        while (static_cast<std::int64_t>(ctx.size()) < cfg.seq_len) {
            Tensor logits = model.decode_logits(ctx, nullptr);
            ctx.push_back(argmax_row(logits.data(), cfg.vocab));
        }

    serve::EngineConfig ec;
    ec.max_batch = 4;
    ec.queue_capacity = 16;
    ec.replicas = 3;
    serve::InferenceEngine engine(
        models::gpt_decode_batch_fn(model, cache), cfg.seq_len, ec);

    auto decoded = prompts;
    for (std::int64_t step = 2; step < cfg.seq_len; ++step) {
        std::vector<std::future<serve::Reply>> futures;
        for (int s = 0; s < streams; ++s) {
            auto& ctx = decoded[static_cast<std::size_t>(s)];
            if (static_cast<std::int64_t>(ctx.size()) >= cfg.seq_len)
                continue;
            futures.push_back(engine.submit(
                models::GptMini::pack_decode_row(ctx, cfg.seq_len),
                static_cast<std::uint64_t>(s + 1)));
        }
        std::size_t fi = 0;
        for (int s = 0; s < streams; ++s) {
            auto& ctx = decoded[static_cast<std::size_t>(s)];
            if (static_cast<std::int64_t>(ctx.size()) >= cfg.seq_len)
                continue;
            serve::Reply r = futures[fi++].get();
            ctx.push_back(argmax_row(r.output.data(), cfg.vocab));
        }
    }
    engine.drain();

    EXPECT_EQ(decoded, reference);
    EXPECT_GT(cache.stats().hits, 0u) << "prefix cache never engaged";
}

namespace {

/** A frozen causal LM with a chosen activation format and window. */
models::GptMini
make_decode_gpt_fmt(const core::BdrFormat& fmt, std::int64_t seq_len,
                    std::int64_t layers)
{
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = layers;
    cfg.seq_len = seq_len;
    cfg.spec = nn::QuantSpec::forward_only(fmt);
    cfg.seed = 41;
    models::GptMini model(cfg);
    model.freeze();
    return model;
}

} // namespace

TEST(DecodeSession, NativeCachePinsEveryMxFormatAcrossLegsAndModes)
{
    // The native MX K/V cache engages for every pow2-block format —
    // not just MX9 — and in EVERY routing mode (storage is
    // mode-independent; only execution routes).  Warm decode must
    // equal cold recompute bit-for-bit throughout.
    const gemm::Mode ambient_mode = gemm::mode();
    for (const auto& fmt : {core::mx9(), core::mx6(), core::mx4()}) {
        for (bool force_scalar : {false, true}) {
            core::kernels::set_force_scalar(force_scalar);
            for (gemm::Mode mode : {gemm::Mode::Off, gemm::Mode::On}) {
                gemm::set_mode(mode);
                models::GptMini model = make_decode_gpt_fmt(fmt, 8, 1);
                const auto& cfg = model.config();
                models::GptDecodeSession session;
                std::vector<int> ctx = {3, 1};
                while (static_cast<std::int64_t>(ctx.size()) <
                       cfg.seq_len) {
                    Tensor warm = model.decode_logits(ctx, &session);
                    Tensor cold = model.decode_logits(ctx, nullptr);
                    for (std::int64_t j = 0; j < warm.numel(); ++j)
                        ASSERT_EQ(warm.data()[j], cold.data()[j])
                            << fmt.name << " scalar=" << force_scalar
                            << " mode=" << static_cast<int>(mode)
                            << " step " << ctx.size() << " logit " << j;
                    ctx.push_back(argmax_row(warm.data(), cfg.vocab));
                }
                ASSERT_FALSE(session.layers.empty());
                EXPECT_TRUE(session.layers[0].native)
                    << fmt.name << ": pow2-block format did not engage "
                                   "native packed storage";
            }
        }
    }
    gemm::set_mode(ambient_mode);
    core::kernels::set_force_scalar(false); // re-resolve (honours env)
}

TEST(DecodeSession, SlabCommitTruncateRetreatAndNativeFootprint)
{
    // A 32-key window crosses the k1 = 16 block boundary: completed V
    // slabs commit mid-stream, a divergence whose cut lands inside a
    // committed slab retreats to the boundary (its raw floats are
    // gone), and the full-window native footprint is >= 3x under the
    // FP32 rows it replaces.
    models::GptMini model = make_decode_gpt_fmt(core::mx9(), 32, 2);
    const auto& cfg = model.config();

    models::GptDecodeSession session;
    std::vector<int> a = {3, 1};
    while (a.size() < 28) {
        Tensor warm = model.decode_logits(a, &session);
        Tensor cold = model.decode_logits(a, nullptr);
        for (std::int64_t j = 0; j < warm.numel(); ++j)
            ASSERT_EQ(warm.data()[j], cold.data()[j])
                << "step " << a.size() << " logit " << j;
        a.push_back(argmax_row(warm.data(), cfg.vocab));
    }
    ASSERT_FALSE(session.layers.empty());
    EXPECT_TRUE(session.layers[0].native);
    EXPECT_GE(session.layers[0].v_slabs.size(), 1u)
        << "no V slab committed by key 27";

    // Diverge at key 18 — inside the committed slab, so the native
    // cache retreats to key 16 and recomputes the rest.  Bits must
    // still match a cold decode.
    std::vector<int> b(a.begin(), a.begin() + 18);
    b.push_back((a[18] + 1) % static_cast<int>(cfg.vocab));
    Tensor warm_b = model.decode_logits(b, &session);
    Tensor cold_b = model.decode_logits(b, nullptr);
    for (std::int64_t j = 0; j < warm_b.numel(); ++j)
        ASSERT_EQ(warm_b.data()[j], cold_b.data()[j])
            << "slab-interior divergence, logit " << j;

    // Diverge again at key 10 — inside the raw FP32 tail (no committed
    // blocks survive the cut on the V side beyond slab 0).
    std::vector<int> c(b.begin(), b.begin() + 10);
    c.push_back((b[10] + 2) % static_cast<int>(cfg.vocab));
    Tensor warm_c = model.decode_logits(c, &session);
    Tensor cold_c = model.decode_logits(c, nullptr);
    for (std::int64_t j = 0; j < warm_c.numel(); ++j)
        ASSERT_EQ(warm_c.data()[j], cold_c.data()[j])
            << "tail divergence, logit " << j;

    // Footprint at the full window (tail empty: 32 = 2 slabs): packed
    // streams vs the legacy FP32 K/V rows for the same prefix.
    models::GptDecodeSession full;
    std::vector<int> w;
    for (int i = 0; i < 32; ++i)
        w.push_back((5 * i + 3) % static_cast<int>(cfg.vocab));
    Tensor warm_w = model.decode_logits(w, &full);
    Tensor cold_w = model.decode_logits(w, nullptr);
    for (std::int64_t j = 0; j < warm_w.numel(); ++j)
        ASSERT_EQ(warm_w.data()[j], cold_w.data()[j]);
    const std::size_t packed = models::decode_session_bytes(full);
    const std::size_t fp32 =
        w.size() * sizeof(int) +
        static_cast<std::size_t>(cfg.layers) * 2 * w.size() *
            static_cast<std::size_t>(cfg.d_model) * sizeof(float);
    EXPECT_GT(packed, 0u);
    EXPECT_LE(packed * 3, fp32)
        << "native cache " << packed << " B not >=3x under FP32 "
        << fp32 << " B";
}

TEST(SessionCache, ByteAccountingTracksResidencyAndEviction)
{
    serve::SessionCache cache(2);
    cache.put(1, std::make_shared<int>(1), 100);
    cache.put(2, std::make_shared<int>(2), 50);
    EXPECT_EQ(cache.stats().resident_bytes, 150u);

    // A checkout transfers the bytes out with the state.
    auto one = cache.take<int>(1);
    ASSERT_NE(one, nullptr);
    EXPECT_EQ(cache.stats().resident_bytes, 50u);

    // Check-in with a new size (a session grows as its prefix does).
    cache.put(1, std::move(one), 120);
    EXPECT_EQ(cache.stats().resident_bytes, 170u);

    // Capacity overflow evicts the LRU entry and moves its bytes to
    // the cumulative eviction counter.
    cache.put(3, std::make_shared<int>(3), 30);
    serve::SessionCache::Stats st = cache.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.resident_bytes, 150u);
    EXPECT_EQ(st.evicted_bytes, 50u);

    cache.erase(1);
    EXPECT_EQ(cache.stats().resident_bytes, 30u);

    // Same-id re-put replaces the accounted size, never double-counts.
    cache.put(3, std::make_shared<int>(4), 40);
    EXPECT_EQ(cache.stats().resident_bytes, 40u);
}

TEST(DecodeSession, EvictionAndReCheckoutStayBitIdentical)
{
    // Capacity-1 cache, two interleaved streams: every step evicts the
    // other stream's session, so each decode restarts from a miss.
    // The contract is that eviction costs time, never bits — and the
    // byte counters see both residency and the eviction churn.
    models::GptMini model = make_decode_gpt_fmt(core::mx9(), 8, 2);
    const auto& cfg = model.config();
    serve::SessionCache cache(1);

    std::vector<std::vector<int>> ctx = {{3, 1}, {9, 2}};
    while (static_cast<std::int64_t>(ctx[0].size()) < cfg.seq_len ||
           static_cast<std::int64_t>(ctx[1].size()) < cfg.seq_len) {
        for (std::size_t s = 0; s < 2; ++s) {
            if (static_cast<std::int64_t>(ctx[s].size()) >= cfg.seq_len)
                continue;
            auto st = cache.take<models::GptDecodeSession>(s + 1);
            if (st == nullptr)
                st = std::make_shared<models::GptDecodeSession>();
            Tensor warm = model.decode_logits(ctx[s], st.get());
            const std::size_t bytes = models::decode_session_bytes(*st);
            cache.put(s + 1, std::move(st), bytes);
            Tensor cold = model.decode_logits(ctx[s], nullptr);
            for (std::int64_t j = 0; j < warm.numel(); ++j)
                ASSERT_EQ(warm.data()[j], cold.data()[j])
                    << "stream " << s << " step " << ctx[s].size()
                    << " logit " << j;
            ctx[s].push_back(argmax_row(warm.data(), cfg.vocab));
        }
    }

    serve::SessionCache::Stats st = cache.stats();
    EXPECT_GT(st.evictions, 0u);
    EXPECT_GT(st.evicted_bytes, 0u);
    EXPECT_GT(st.resident_bytes, 0u);
}
