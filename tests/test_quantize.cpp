/**
 * @file
 * Unit and property tests for the core BDR quantization engine.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "core/bdr_format.h"
#include "core/check.h"
#include "core/quantize.h"
#include "core/scalar_fp.h"
#include "stats/distributions.h"
#include "stats/metrics.h"

using namespace mx;
using namespace mx::core;

namespace {

std::vector<float>
random_vec(std::size_t n, stats::Rng& rng, double sigma = 1.0)
{
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal(0.0, sigma));
    return v;
}

} // namespace

TEST(MaxAbsExponent, Basics)
{
    std::vector<float> v = {0.0f, -3.0f, 0.5f};
    EXPECT_EQ(max_abs_exponent(v), 1); // |−3| in [2, 4)
    v = {0.75f};
    EXPECT_EQ(max_abs_exponent(v), -1); // 0.75 in [0.5, 1)
    v = {0.0f, 0.0f};
    EXPECT_EQ(max_abs_exponent(v), kAllZeroExponent);
    v = {1.0f};
    EXPECT_EQ(max_abs_exponent(v), 0);
}

TEST(Pow2Block, SharedExponentTracksMax)
{
    BdrFormat fmt = mx9();
    std::vector<float> in(16, 0.1f);
    in[5] = 12.0f; // exponent 3
    std::vector<float> out(16);
    Pow2BlockEncoding enc;
    Rounder r;
    quantize_pow2_block(fmt, in, out, r, &enc);
    EXPECT_EQ(enc.shared_exp, 3);
}

TEST(Pow2Block, AllZeroBlock)
{
    BdrFormat fmt = mx9();
    std::vector<float> in(16, 0.0f), out(16, 1.0f);
    Pow2BlockEncoding enc;
    Rounder r;
    quantize_pow2_block(fmt, in, out, r, &enc);
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
    for (auto m : enc.mantissa)
        EXPECT_EQ(m, 0);
}

TEST(Pow2Block, MicroexponentShiftsFollowSubBlocks)
{
    // Block of 16, k2 = 2, d2 = 1: a sub-block 8x smaller than the max
    // should get the max shift tau = 1.
    BdrFormat fmt = mx9();
    std::vector<float> in(16, 8.0f);
    in[14] = 0.25f;
    in[15] = 0.25f; // sub-block 7 is far below the shared exponent
    std::vector<float> out(16);
    Pow2BlockEncoding enc;
    Rounder r;
    quantize_pow2_block(fmt, in, out, r, &enc);
    EXPECT_EQ(enc.shared_exp, 3);
    EXPECT_EQ(enc.sub_shift[0], 0);
    EXPECT_EQ(enc.sub_shift[7], 1); // clamped at beta = 1
}

TEST(Pow2Block, MantissaSaturatesNotWraps)
{
    BdrFormat fmt = mx4(); // m = 2: mantissa max 3
    std::vector<float> in(16, 0.0f);
    in[0] = 1.0f;
    in[1] = 1.999f; // just below 2^1: rounds above 2^m - 1 -> saturate
    std::vector<float> out(16);
    Pow2BlockEncoding enc;
    Rounder r;
    quantize_pow2_block(fmt, in, out, r, &enc);
    for (auto m : enc.mantissa)
        EXPECT_LE(std::abs(m), 3);
    EXPECT_GT(out[1], 0.0f);
}

TEST(Pow2Block, DecodeMatchesOutput)
{
    stats::Rng rng(99);
    BdrFormat fmt = mx6();
    auto in = random_vec(16, rng);
    std::vector<float> out(16);
    Pow2BlockEncoding enc;
    Rounder r;
    quantize_pow2_block(fmt, in, out, r, &enc);
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], static_cast<float>(enc.decode(fmt, i)));
}

TEST(Pow2Block, TailBlockSmallerThanK1)
{
    BdrFormat fmt = mx9();
    stats::Rng rng(7);
    auto in = random_vec(21, rng); // 16 + 5 tail
    std::vector<float> out(21);
    Rounder r;
    quantize_pow2(fmt, in, out, r);
    // The tail's shared exponent must come from the tail only.
    std::vector<float> tail(in.begin() + 16, in.end());
    std::vector<float> tail_out(5);
    quantize_pow2_block(fmt, tail, tail_out, r);
    for (int i = 0; i < 5; ++i)
        EXPECT_FLOAT_EQ(out[16 + i], tail_out[i]);
}

class FormatIdempotence : public ::testing::TestWithParam<BdrFormat>
{
};

TEST_P(FormatIdempotence, QuantizeTwiceEqualsOnce)
{
    const BdrFormat fmt = GetParam();
    stats::Rng rng(123);
    auto x = random_vec(256, rng, 2.0);
    auto q1 = fake_quantize(fmt, x);
    auto q2 = fake_quantize(fmt, q1);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(q1[i], q2[i], 1e-6f * (std::fabs(q1[i]) + 1e-3f))
            << fmt.name << " index " << i;
}

TEST_P(FormatIdempotence, SignsAndZerosPreserved)
{
    const BdrFormat fmt = GetParam();
    stats::Rng rng(321);
    auto x = random_vec(256, rng);
    x[0] = 0.0f;
    x[1] = -0.0f;
    auto q = fake_quantize(fmt, x);
    EXPECT_EQ(q[0], 0.0f);
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (q[i] != 0.0f) {
            EXPECT_EQ(std::signbit(q[i]), std::signbit(x[i]))
                << fmt.name << " index " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatIdempotence,
    ::testing::Values(core::mx9(), core::mx6(), core::mx4(), core::msfp16(),
                      core::msfp12(), core::fp8_e4m3(), core::fp8_e5m2(),
                      core::fp8_e3m4(), core::fp6_e3m2(), core::fp6_e2m3(),
                      core::fp4_e2m1(), core::fp4_e1m2(), core::fp4_e3m0(),
                      core::scaled_int(4), core::scaled_int(8),
                      core::vsq(4, 4), core::vsq(6, 6), core::vsq(8, 8)),
    [](const ::testing::TestParamInfo<BdrFormat>& info) {
        std::string n = info.param.name;
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(QuantizeExactness, Mx9RepresentsSmallIntegersExactly)
{
    // With a 7-bit mantissa, integers up to 127 within one block scale
    // are representable exactly.
    BdrFormat fmt = mx9();
    std::vector<float> x = {1, 2, 3, 5, 8, 13, 21, 34,
                            55, 89, 127, 4, 6, 7, 9, 10};
    auto q = fake_quantize(fmt, x);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(q[i], x[i]) << "index " << i;
}

TEST(QuantizeError, BoundedByBlockStep)
{
    // Per the Theorem 1 machinery, |q - x| <= 2^(E - tau - m + 1) for
    // every element (saturation can at most double 2^(E-tau-m)).
    BdrFormat fmt = mx6();
    stats::Rng rng(55);
    for (int trial = 0; trial < 50; ++trial) {
        auto x = random_vec(16, rng, std::exp(rng.normal()));
        std::vector<float> out(16);
        Pow2BlockEncoding enc;
        Rounder r;
        quantize_pow2_block(fmt, x, out, r, &enc);
        for (std::size_t i = 0; i < x.size(); ++i) {
            int tau = enc.sub_shift[i / 2];
            double step =
                std::ldexp(1.0, enc.shared_exp - tau - (fmt.m - 1));
            EXPECT_LE(std::fabs(out[i] - x[i]), step + 1e-12)
                << "trial " << trial << " index " << i;
        }
    }
}

TEST(IntQuantizer, MaxMapsToMaxCode)
{
    BdrFormat fmt = scaled_int(8); // m = 7 -> codes in [-127, 127]
    Quantizer q(fmt, RoundingMode::NearestEven, ScalingPolicy::JustInTime);
    std::vector<float> x = {-1.0f, 0.5f, 127.0f};
    auto out = q.quantize(x);
    EXPECT_FLOAT_EQ(out[2], 127.0f);
    EXPECT_NEAR(out[0], -1.0f, 0.51f);
}

TEST(VsqQuantizer, SubVectorScalesAdapt)
{
    // Two 16-element vectors with very different magnitudes should both
    // be represented well thanks to the per-vector integer scale.
    BdrFormat fmt = vsq(8, 8);
    Quantizer q(fmt, RoundingMode::NearestEven, ScalingPolicy::JustInTime);
    std::vector<float> x(32);
    stats::Rng rng(77);
    for (int i = 0; i < 16; ++i)
        x[static_cast<std::size_t>(i)] =
            static_cast<float>(rng.normal(0, 100.0));
    for (int i = 16; i < 32; ++i)
        x[static_cast<std::size_t>(i)] =
            static_cast<float>(rng.normal(0, 1.0));
    auto out = q.quantize(x);
    double qsnr = stats::qsnr_db(x, out);
    EXPECT_GT(qsnr, 25.0); // plain INT8 with one scale would crush the
                           // small half to far lower fidelity
}

TEST(DelayedScaling, UsesHistoryNotCurrent)
{
    BdrFormat fmt = fp8_e4m3();
    Quantizer q(fmt, RoundingMode::NearestEven, ScalingPolicy::Delayed);
    // First call establishes history with amax 1.
    std::vector<float> small(64, 1.0f);
    (void)q.quantize(small);
    // Second call has much larger values: with the stale scale they clip
    // against the format max instead of rescaling.
    std::vector<float> big(64, 448.0f * 4.0f);
    auto out = q.quantize(big);
    EXPECT_LT(out[0], big[0]); // clipped
    // Just-in-time scaling has no such problem.
    Quantizer jit(fmt, RoundingMode::NearestEven, ScalingPolicy::JustInTime);
    auto out2 = jit.quantize(big);
    EXPECT_NEAR(out2[0], big[0], 1e-3f * big[0]);
}

TEST(Rounding, StochasticIsUnbiasedNearestIsNot)
{
    stats::Rng rng(42);
    Rounder sr(RoundingMode::Stochastic, &rng);
    double acc = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += sr.round(2.25);
    EXPECT_NEAR(acc / n, 2.25, 0.02); // unbiased in expectation
    Rounder rne(RoundingMode::NearestEven);
    EXPECT_EQ(rne.round(2.5), 2.0); // ties to even
    EXPECT_EQ(rne.round(3.5), 4.0);
    Rounder away(RoundingMode::NearestAway);
    EXPECT_EQ(away.round(2.5), 3.0);
    Rounder trunc(RoundingMode::TowardZero);
    EXPECT_EQ(trunc.round(2.9), 2.0);
    EXPECT_EQ(trunc.round(-2.9), -2.0);
}

TEST(QuantizerErrors, RejectsSizeMismatch)
{
    Quantizer q(mx9());
    std::vector<float> in(16), out(8);
    EXPECT_THROW(q(std::span<const float>(in), std::span<float>(out)),
                 ArgumentError);
}

TEST(BdrFormatValidation, RejectsInconsistentDescriptors)
{
    BdrFormat f = mx9();
    f.k2 = 3; // does not divide k1 = 16
    EXPECT_THROW(f.validate(), ArgumentError);
    f = mx9();
    f.d2 = 0; // d2 == 0 but ss_kind says Pow2Hw
    EXPECT_THROW(f.validate(), ArgumentError);
    f = fp8_e4m3();
    f.k1 = 16; // scalar FP must have k1 == 1
    EXPECT_THROW(f.validate(), ArgumentError);
}

TEST(BitsPerElement, MatchesPaperTableII)
{
    EXPECT_DOUBLE_EQ(mx9().bits_per_element(), 9.0);
    EXPECT_DOUBLE_EQ(mx6().bits_per_element(), 6.0);
    EXPECT_DOUBLE_EQ(mx4().bits_per_element(), 4.0);
    EXPECT_DOUBLE_EQ(msfp16().bits_per_element(), 8.5);
    EXPECT_DOUBLE_EQ(msfp12().bits_per_element(), 4.5);
    EXPECT_DOUBLE_EQ(fp8_e4m3().bits_per_element(), 8.0);
    EXPECT_DOUBLE_EQ(fp4_e2m1().bits_per_element(), 4.0);
}
