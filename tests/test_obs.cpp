/**
 * @file
 * mx_obs: histogram percentile exactness against a sorted-vector
 * oracle, counter exactness under pool-wide concurrency, span nesting
 * and thread attribution in the exported Chrome trace JSON, and the
 * disabled-path contract (no allocations, no span recording).
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "obs/obs.h"

using namespace mx;

// ---------------------------------------------------------------------
// Global allocation counter for the disabled-path test: every operator
// new in this binary (gtest included) ticks it, so a delta of zero
// across a region proves the region allocated nothing.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** Nearest-rank percentile of a sorted vector: the oracle the
 *  histogram's percentile contract is pinned against. */
std::uint64_t
oracle_percentile(std::vector<std::uint64_t> v, double p)
{
    std::sort(v.begin(), v.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(v.size())));
    rank = std::clamp<std::size_t>(rank, 1, v.size());
    return v[rank - 1];
}

void
check_against_oracle(const std::vector<std::uint64_t>& values)
{
    obs::Histogram h;
    for (std::uint64_t v : values)
        h.record(v);
    ASSERT_EQ(h.count(), values.size());
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const std::uint64_t want = oracle_percentile(values, p);
        const obs::Histogram::Bounds b = h.percentile_bounds(p);
        // Containment: the oracle's value lies inside the bucket the
        // histogram picked for this percentile.
        EXPECT_LE(b.lo, want) << "p=" << p;
        EXPECT_GE(b.hi, want) << "p=" << p;
        // Resolution: the bucket is exact below kSubBuckets and at
        // most 1/kSubBuckets wide (relative) above.
        if (want < obs::Histogram::kSubBuckets)
            EXPECT_EQ(h.percentile(p), want) << "p=" << p;
        else
            EXPECT_LE(b.hi - b.lo + 1,
                      (b.lo + obs::Histogram::kSubBuckets - 1) /
                          obs::Histogram::kSubBuckets)
                << "p=" << p;
    }
}

// ---------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------

TEST(ObsHistogram, BucketRoundTripAcrossBoundaries)
{
    // Every value below kSubBuckets gets its own width-1 bucket.
    for (std::uint64_t v = 0; v < obs::Histogram::kSubBuckets; ++v) {
        const std::size_t idx = obs::Histogram::bucket_index(v);
        EXPECT_EQ(idx, v);
        const obs::Histogram::Bounds b = obs::Histogram::bucket_bounds(idx);
        EXPECT_EQ(b.lo, v);
        EXPECT_EQ(b.hi, v);
    }
    // Power-of-two boundaries, their neighbours, and the extremes all
    // land in a bucket whose bounds contain them.
    std::vector<std::uint64_t> probes = {31, 32, 33, 63, 64, 65};
    for (int k = 7; k < 64; ++k) {
        const std::uint64_t p2 = std::uint64_t{1} << k;
        probes.push_back(p2 - 1);
        probes.push_back(p2);
        if (k < 63)
            probes.push_back(p2 + 1);
    }
    probes.push_back(UINT64_MAX);
    std::size_t last_idx = 0;
    for (std::uint64_t v : probes) {
        const std::size_t idx = obs::Histogram::bucket_index(v);
        ASSERT_LT(idx, obs::Histogram::kBuckets) << "v=" << v;
        const obs::Histogram::Bounds b = obs::Histogram::bucket_bounds(idx);
        EXPECT_LE(b.lo, v) << "v=" << v;
        EXPECT_GE(b.hi, v) << "v=" << v;
        EXPECT_GE(idx, last_idx) << "v=" << v; // probes ascend
        last_idx = idx;
    }
    // The top bucket is the last one: no index can overflow the array.
    EXPECT_EQ(obs::Histogram::bucket_index(UINT64_MAX),
              obs::Histogram::kBuckets - 1);
}

TEST(ObsHistogram, ExactPercentilesBelowSubBucketThreshold)
{
    // All values < 32: every bucket has width 1, so percentile() must
    // equal the oracle exactly at every rank.
    std::vector<std::uint64_t> v;
    for (std::uint64_t i = 0; i < 31; ++i)
        for (std::uint64_t r = 0; r < i + 1; ++r)
            v.push_back(i); // skewed multiset, all below 32
    check_against_oracle(v);
}

TEST(ObsHistogram, OracleContainmentAcrossBucketBoundaries)
{
    // Values straddling the exact/log boundary and several octaves.
    std::vector<std::uint64_t> v;
    for (std::uint64_t i = 1; i <= 4096; ++i)
        v.push_back(i);
    check_against_oracle(v);

    // A latency-shaped distribution: tight body, long tail.
    std::vector<std::uint64_t> lat;
    for (std::uint64_t i = 0; i < 1000; ++i)
        lat.push_back(20000 + (i * 7919) % 5000); // ~20-25 us body
    for (std::uint64_t i = 0; i < 10; ++i)
        lat.push_back(1000000 + i * 100000); // 1 ms+ tail
    check_against_oracle(lat);
}

TEST(ObsHistogram, SumMeanAndReset)
{
    obs::Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

// ---------------------------------------------------------------------
// Counter / histogram concurrency
// ---------------------------------------------------------------------

TEST(ObsCounter, PoolWideIncrementsSumExactly)
{
    core::ThreadPool pool(4);
    obs::Counter& c = obs::counter("test.obs.pool_counter");
    obs::Histogram& h = obs::histogram("test.obs.pool_hist");
    const std::uint64_t before_c = c.value();
    const std::uint64_t before_h = h.count();
    const std::size_t n = 100000;
    pool.parallel_for(n, [&](std::size_t i) {
        c.add(1);
        h.record(i);
    });
    EXPECT_EQ(c.value() - before_c, n);
    EXPECT_EQ(h.count() - before_h, n);
}

TEST(ObsRegistry, ReturnsStableReferences)
{
    obs::Counter& a = obs::counter("test.obs.stable");
    obs::Counter& b = obs::counter("test.obs.stable");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    obs::Gauge& g = obs::gauge("test.obs.gauge");
    g.set(42);
    g.add(-2);
    EXPECT_EQ(obs::gauge("test.obs.gauge").value(), 40);
}

// ---------------------------------------------------------------------
// Trace export: nesting + thread attribution
// ---------------------------------------------------------------------

struct TraceEvent
{
    std::string name;
    std::string ph;
    long tid = -1;
    double ts = 0;
    double dur = 0;
};

/** Minimal line-wise parse of the exporter's one-event-per-line JSON. */
std::vector<TraceEvent>
parse_trace(const std::string& json)
{
    std::vector<TraceEvent> events;
    std::istringstream is(json);
    std::string line;
    const auto str_field = [](const std::string& s, const char* key) {
        const std::string pat = std::string("\"") + key + "\":\"";
        const std::size_t at = s.find(pat);
        if (at == std::string::npos)
            return std::string();
        const std::size_t begin = at + pat.size();
        return s.substr(begin, s.find('"', begin) - begin);
    };
    const auto num_field = [](const std::string& s, const char* key) {
        const std::string pat = std::string("\"") + key + "\":";
        const std::size_t at = s.find(pat);
        if (at == std::string::npos)
            return -1.0;
        return std::atof(s.c_str() + at + pat.size());
    };
    while (std::getline(is, line)) {
        if (line.find("\"ph\"") == std::string::npos)
            continue;
        TraceEvent e;
        e.name = str_field(line, "name");
        e.ph = str_field(line, "ph");
        e.tid = static_cast<long>(num_field(line, "tid"));
        e.ts = num_field(line, "ts");
        e.dur = num_field(line, "dur");
        events.push_back(e);
    }
    return events;
}

TEST(ObsTrace, SpansNestAndCarryThreadAttribution)
{
    obs::set_trace_enabled(true);
    obs::clear_trace();
    {
        obs::Span parent("test.parent");
        parent.arg("x", 7);
        {
            obs::Span child("test.child_a");
        }
        {
            obs::Span child("test.child_b");
        }
    }
    std::thread peer([] {
        obs::set_thread_name("test-peer");
        obs::Span s("test.peer_span");
    });
    peer.join();
    obs::set_trace_enabled(false);

    std::ostringstream os;
    obs::write_trace(os);
    const std::vector<TraceEvent> events = parse_trace(os.str());

    const auto find = [&](const char* name) {
        for (const TraceEvent& e : events)
            if (e.ph == "X" && e.name == name)
                return e;
        ADD_FAILURE() << "span '" << name << "' missing from trace";
        return TraceEvent{};
    };
    const TraceEvent parent = find("test.parent");
    const TraceEvent child_a = find("test.child_a");
    const TraceEvent child_b = find("test.child_b");
    const TraceEvent peer_span = find("test.peer_span");

    // Same thread, properly nested, children disjoint and in order.
    EXPECT_EQ(child_a.tid, parent.tid);
    EXPECT_EQ(child_b.tid, parent.tid);
    EXPECT_GE(child_a.ts, parent.ts);
    EXPECT_LE(child_a.ts + child_a.dur, parent.ts + parent.dur + 1e-3);
    EXPECT_LE(child_b.ts + child_b.dur, parent.ts + parent.dur + 1e-3);
    EXPECT_LE(child_a.ts + child_a.dur, child_b.ts + 1e-3);

    // The peer thread's span carries a different tid, and its
    // set_thread_name call produced thread-name metadata.
    EXPECT_NE(peer_span.tid, parent.tid);
    bool named = false;
    for (const TraceEvent& e : events)
        named = named || (e.ph == "M" && e.tid == peer_span.tid);
    EXPECT_TRUE(named) << "no thread_name metadata for the peer thread";
}

TEST(ObsTrace, PoolWorkerSpansLandOnWorkerThreads)
{
    core::ThreadPool pool(4);
    obs::set_trace_enabled(true);
    obs::clear_trace();
    // Rendezvous: early lanes park until a second thread has joined
    // in, so "spans land on >= 2 threads" is guaranteed rather than a
    // race the submitting thread can win outright (under TSan's slow
    // thread start it regularly drained all 64 chunks alone).  Safe
    // from deadlock: parallel_for's caller and all four workers pull
    // chunks concurrently, so a second thread always arrives.
    std::mutex seen_mu;
    std::vector<std::thread::id> seen;
    std::atomic<bool> go{false};
    pool.parallel_for(64, [&](std::size_t) {
        obs::Span s("test.lane");
        {
            std::lock_guard<std::mutex> lk(seen_mu);
            if (std::find(seen.begin(), seen.end(),
                          std::this_thread::get_id()) == seen.end())
                seen.push_back(std::this_thread::get_id());
            if (seen.size() >= 2)
                go.store(true);
        }
        while (!go.load())
            std::this_thread::yield();
    });
    obs::set_trace_enabled(false);

    std::ostringstream os;
    obs::write_trace(os);
    std::vector<long> tids;
    std::size_t lanes = 0;
    for (const TraceEvent& e : parse_trace(os.str()))
        if (e.ph == "X" && e.name == "test.lane") {
            ++lanes;
            if (std::find(tids.begin(), tids.end(), e.tid) == tids.end())
                tids.push_back(e.tid);
        }
    EXPECT_EQ(lanes, 64u); // every iteration's span was recorded
    EXPECT_GE(tids.size(), 2u)
        << "pool-lane spans all landed on one thread";
}

// ---------------------------------------------------------------------
// Disabled path: no allocations, no recording
// ---------------------------------------------------------------------

TEST(ObsDisabled, SpanIsAllocationFreeAndRecordsNothing)
{
    obs::set_trace_enabled(false);
    // Resolve flags / registry entries up front so the measured region
    // is the steady state, then snapshot the buffered-span count.
    obs::Counter& c = obs::counter("test.obs.disabled_counter");
    static obs::Histogram probe; // static: construction not measured
    (void)obs::trace_enabled();
    const std::size_t spans_before = obs::trace_span_count();

    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        obs::Span s("test.disabled");
        s.arg("i", i);
        c.add(1);
        probe.record(static_cast<std::uint64_t>(i));
        obs::set_thread_name("never-applied");
    }
    const std::uint64_t allocs_after =
        g_allocations.load(std::memory_order_relaxed);

    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "disabled-path instrumentation allocated";
    EXPECT_EQ(obs::trace_span_count(), spans_before)
        << "disabled spans were recorded";
}

TEST(ObsMetrics, TextDumpCoversRegisteredInstruments)
{
    obs::counter("test.obs.metric_counter").add(5);
    obs::gauge("test.obs.metric_gauge").set(-3);
    obs::histogram("test.obs.metric_hist").record(100);
    const std::string text = obs::metrics_text();
    EXPECT_NE(text.find("mx_test_obs_metric_counter"), std::string::npos);
    EXPECT_NE(text.find("mx_test_obs_metric_gauge -3"), std::string::npos);
    EXPECT_NE(text.find("mx_test_obs_metric_hist_count"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

} // namespace
