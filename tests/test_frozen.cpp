/**
 * @file
 * Freeze-and-serve property tests: a frozen layer/model's eval forward
 * on the dequantized-values path must be bit-identical to the
 * fake-quant forward for every layer type, across MX9/MX6/MX4 and both
 * kernel dispatch legs; the FrozenTensor packed artifact must decode
 * back to exactly the cached grid values (including ragged row widths
 * whose blocks end in short tails).
 *
 * The packed-domain mx_gemm serving path is pinned separately in
 * tests/test_gemm.cpp (it accumulates across blocks in FP32, so its
 * contract is FP32-accumulation agreement plus QSNR floors, not bit
 * identity); a suite-wide environment disables it here so these tests
 * always exercise the values fallback they were written for.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/kernels/dispatch.h"
#include "core/quantize.h"
#include "formats/block_codec.h"
#include "gemm/packed_gemm.h"
#include "models/dlrm_mini.h"
#include "models/lstm_seq2seq.h"
#include "models/mlp.h"
#include "models/resnet_mini.h"
#include "models/transformer.h"
#include "nn/frozen.h"
#include "nn/layernorm.h"
#include "nn/quant.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::nn;
using tensor::Tensor;

namespace {

/** Pin the dequantized-values serving path for the whole suite. */
class LegacyPathEnvironment : public ::testing::Environment
{
  public:
    void SetUp() override { gemm::set_mode(gemm::Mode::Off); }
    void TearDown() override { gemm::set_mode(gemm::Mode::Auto); }
};

[[maybe_unused]] const ::testing::Environment* const kLegacyPath =
    ::testing::AddGlobalTestEnvironment(new LegacyPathEnvironment);

/** Run @p body once per kernel dispatch leg, restoring the default. */
template <typename Fn>
void
for_each_dispatch(Fn&& body)
{
    for (int leg = 0; leg < 2; ++leg) {
        core::kernels::set_force_scalar(leg == 1);
        body(leg == 1 ? "scalar" : "default");
    }
    core::kernels::set_force_scalar(false);
}

std::vector<core::BdrFormat>
mx_formats()
{
    return {core::mx9(), core::mx6(), core::mx4()};
}

} // namespace

TEST(FrozenTensor, SnapshotMatchesQuantizeRowsAndPackedRoundTrips)
{
    stats::Rng rng(11);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            // 48 is a whole number of k1=16 blocks; 19 forces a ragged
            // 3-element tail block on every row.
            for (std::int64_t cols : {48, 19}) {
                Tensor w = Tensor::randn({5, cols}, rng, 2.0f);
                FrozenTensor f = FrozenTensor::build(w, fmt);
                ASSERT_TRUE(f.valid());
                EXPECT_TRUE(f.quantized());
                ASSERT_TRUE(f.packed().has_value());
                ASSERT_TRUE(f.plan().has_value());

                Tensor q = quantize_rows(w, fmt);
                EXPECT_EQ(tensor::max_abs_diff(f.values(), q), 0.0)
                    << fmt.name << " cols=" << cols << " leg=" << leg;

                // The packed stream is a real container: decode gives
                // back exactly the cached grid values, and its size is
                // the per-row codec size (blocks never straddle rows).
                EXPECT_EQ(tensor::max_abs_diff(f.unpacked(), f.values()),
                          0.0)
                    << fmt.name << " cols=" << cols << " leg=" << leg;
                EXPECT_EQ(f.packed()->bit_size,
                          5 * formats::packed_bits(
                                  fmt, static_cast<std::size_t>(cols)));
                EXPECT_LT(f.bits_per_element(), 32.0);
            }
        }
    });
}

TEST(FrozenTensor, Fp32PassthroughAndStochasticRejected)
{
    stats::Rng rng(12);
    Tensor w = Tensor::randn({3, 8}, rng);
    FrozenTensor f = FrozenTensor::build(w, std::nullopt);
    ASSERT_TRUE(f.valid());
    EXPECT_FALSE(f.quantized());
    EXPECT_FALSE(f.packed().has_value());
    EXPECT_EQ(tensor::max_abs_diff(f.values(), w), 0.0);
    EXPECT_EQ(f.bits_per_element(), 32.0);
    EXPECT_EQ(tensor::max_abs_diff(f.unpacked(), w), 0.0);

    EXPECT_THROW(FrozenTensor::build(w, core::mx9(),
                                     core::RoundingMode::Stochastic),
                 ArgumentError);
}

TEST(RaggedQuantizeRows, KernelPathMatchesPerRowReferenceAndIsRowLocal)
{
    stats::Rng rng(13);
    const std::int64_t rows = 4, cols = 19; // 16 + 3-element tail
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            Tensor t = Tensor::randn({rows, cols}, rng, 3.0f);
            t.at(0, 0) = 1e4f; // must not disturb other rows' scaling
            Tensor q = quantize_rows(t, fmt);
            core::Rounder rounder;
            for (std::int64_t r = 0; r < rows; ++r) {
                std::vector<float> row(t.data() + r * cols,
                                       t.data() + (r + 1) * cols);
                std::vector<float> expect(static_cast<std::size_t>(cols));
                core::quantize_pow2(fmt, row, expect, rounder);
                for (std::int64_t j = 0; j < cols; ++j)
                    EXPECT_EQ(q.at(r, j),
                              expect[static_cast<std::size_t>(j)])
                        << fmt.name << " row " << r << " col " << j
                        << " leg=" << leg;
            }
        }
    });
}

TEST(FrozenLinear, BitIdenticalEvalForward)
{
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            // 19 inputs exercise the ragged row-tail end to end.
            for (std::int64_t in : {32, 19}) {
                stats::Rng rng(21);
                Linear layer(in, 8, QuantSpec::forward_only(fmt), rng);
                Tensor x = Tensor::randn({4, in}, rng, 2.0f);
                Tensor fake = layer.forward(x, false);
                layer.freeze();
                ASSERT_TRUE(layer.frozen());
                Tensor frozen = layer.forward(x, false);
                EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0)
                    << fmt.name << " in=" << in << " leg=" << leg;
            }
        }
    });
}

TEST(FrozenLinear, WeightActivationSplitBitIdentical)
{
    // Table IV (w, a) pairs: weights MX4, activations MX9.
    for_each_dispatch([&](const char*) {
        stats::Rng rng(22);
        Linear layer(32, 8,
                     QuantSpec::weights_activations(core::mx4(),
                                                    core::mx9()),
                     rng);
        Tensor x = Tensor::randn({4, 32}, rng);
        Tensor fake = layer.forward(x, false);
        layer.freeze();
        EXPECT_EQ(layer.frozen_weight().format()->name, "MX4");
        Tensor frozen = layer.forward(x, false);
        EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0);
    });
}

TEST(FrozenConv2d, BitIdenticalEvalForward)
{
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            stats::Rng rng(23);
            Conv2d conv(3, 5, 3, 1, 1, QuantSpec::forward_only(fmt), rng);
            Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
            Tensor fake = conv.forward(x, false);
            conv.freeze();
            Tensor frozen = conv.forward(x, false);
            EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0)
                << fmt.name << " leg=" << leg;
        }
    });
}

TEST(FrozenAttention, BitIdenticalEvalForward)
{
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            stats::Rng rng(24);
            MultiHeadAttention attn(32, 2, 8, /*causal=*/true,
                                    QuantSpec::forward_only(fmt), rng);
            Tensor x = Tensor::randn({2 * 8, 32}, rng);
            Tensor fake = attn.forward(x, false);
            attn.freeze();
            ASSERT_TRUE(attn.frozen());
            Tensor frozen = attn.forward(x, false);
            EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0)
                << fmt.name << " leg=" << leg;
        }
    });
}

TEST(FrozenAttention, PackedActActRouteBitMatchesValuesFallback)
{
    // At single-block shapes (d_model = head_dim = 16, seq_len <= 16)
    // every contraction in the layer — all four projections, Q K^T,
    // and P V — spans one k1 block, where the packed kernels are exact
    // (one shared scale, one double->float rounding on either path).
    // So the packed activation-activation route (MX_GEMM=1) must match
    // the values fallback this suite pins (MX_GEMM=0) bit-for-bit,
    // not merely to accumulation tolerance.
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            stats::Rng rng(41);
            MultiHeadAttention attn(16, 1, 8, /*causal=*/true,
                                    QuantSpec::forward_only(fmt), rng);
            Tensor x = Tensor::randn({2 * 8, 16}, rng);
            attn.freeze();
            ASSERT_TRUE(attn.frozen());
            gemm::set_mode(gemm::Mode::Off);
            Tensor values = attn.forward(x, false);
            gemm::set_mode(gemm::Mode::On);
            const std::uint64_t before = gemm::call_count();
            Tensor packed = attn.forward(x, false);
            EXPECT_GT(gemm::call_count(), before)
                << "packed route did not engage (" << fmt.name << ")";
            gemm::set_mode(gemm::Mode::Off); // restore the suite pin
            EXPECT_EQ(tensor::max_abs_diff(values, packed), 0.0)
                << fmt.name << " leg=" << leg;
        }
    });
}

TEST(FrozenLstm, BitIdenticalEvalForward)
{
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            stats::Rng rng(25);
            Lstm lstm(12, 16, 6, QuantSpec::forward_only(fmt), rng);
            Tensor x = Tensor::randn({2 * 6, 12}, rng);
            LstmState s1 = lstm.initial_state(2);
            Tensor fake = lstm.forward_seq(x, s1, false);
            lstm.freeze();
            ASSERT_TRUE(lstm.frozen());
            LstmState s2 = lstm.initial_state(2);
            Tensor frozen = lstm.forward_seq(x, s2, false);
            EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0)
                << fmt.name << " leg=" << leg;
            EXPECT_EQ(tensor::max_abs_diff(s1.h, s2.h), 0.0);
            EXPECT_EQ(tensor::max_abs_diff(s1.c, s2.c), 0.0);
        }
    });
}

TEST(FrozenEmbedding, BitIdenticalLookupsAndTrainGuard)
{
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            stats::Rng rng(26);
            Embedding emb(16, 19, rng); // ragged width on purpose
            emb.set_storage_format(fmt);
            std::vector<int> ids = {0, 3, 15, 3};
            Tensor fake = emb.forward(ids, false);
            emb.freeze();
            ASSERT_TRUE(emb.frozen());
            ASSERT_TRUE(emb.frozen_table().valid());
            Tensor frozen = emb.forward(ids, false);
            EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0)
                << fmt.name << " leg=" << leg;
            EXPECT_THROW(emb.forward(ids, true), ArgumentError);
            emb.unfreeze();
            emb.forward(ids, true); // trainable again
        }
    });
}

TEST(FrozenLayerNorm, MarkerOnlyButTrainRejected)
{
    stats::Rng rng(27);
    LayerNorm ln(8);
    Tensor x = Tensor::randn({3, 8}, rng);
    Tensor before = ln.forward(x, false);
    ln.freeze();
    EXPECT_TRUE(ln.frozen());
    Tensor after = ln.forward(x, false);
    EXPECT_EQ(tensor::max_abs_diff(before, after), 0.0);
    EXPECT_THROW(ln.forward(x, true), ArgumentError);
    ln.unfreeze();
    ln.forward(x, true);
}

TEST(FrozenGuard, TrainForwardRejectedUntilUnfreeze)
{
    stats::Rng rng(28);
    Linear layer(8, 4, QuantSpec::uniform(core::mx9()), rng);
    Tensor x = Tensor::randn({2, 8}, rng);
    layer.freeze();
    EXPECT_THROW(layer.forward(x, true), ArgumentError);
    layer.unfreeze();
    EXPECT_FALSE(layer.frozen());
    Tensor y = layer.forward(x, true);
    layer.backward(Tensor::full(y.shape(), 1.0f)); // trains again
}

TEST(FrozenGuard, RefreezeAfterWeightUpdateResnapshots)
{
    stats::Rng rng(29);
    Linear layer(16, 4, QuantSpec::forward_only(core::mx6()), rng);
    layer.freeze();
    Tensor x = Tensor::randn({2, 16}, rng);
    Tensor before = layer.forward(x, false);
    // Mutate the weights (as an optimizer step would after unfreeze).
    layer.unfreeze();
    for (std::int64_t i = 0; i < layer.weight().value.numel(); ++i)
        layer.weight().value.data()[i] += 0.25f;
    layer.freeze();
    Tensor after = layer.forward(x, false);
    EXPECT_GT(tensor::max_abs_diff(before, after), 0.0);
    // And the refreshed snapshot matches the fake-quant path exactly.
    layer.unfreeze();
    Tensor fake = layer.forward(x, false);
    EXPECT_EQ(tensor::max_abs_diff(fake, after), 0.0);
}

TEST(FrozenModels, MlpBitIdenticalEval)
{
    for_each_dispatch([&](const char* leg) {
        models::MlpClassifier mlp(19, {24, 16}, 4,
                                  QuantSpec::forward_only(core::mx6()),
                                  31);
        stats::Rng rng(32);
        Tensor x = Tensor::randn({5, 19}, rng);
        Tensor fake = mlp.logits(x, false);
        mlp.freeze();
        ASSERT_TRUE(mlp.frozen());
        Tensor frozen = mlp.logits(x, false);
        EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0) << leg;
        EXPECT_THROW(mlp.logits(x, true), ArgumentError);
        mlp.unfreeze();
        EXPECT_FALSE(mlp.frozen());
    });
}

TEST(FrozenModels, MlpMixedPrecisionRecipeSurvivesFreeze)
{
    // keep_first_last_fp32 freezes edge layers as FP32 passthroughs.
    models::MlpClassifier mlp(16, {24}, 4, QuantSpec::fp32(), 33);
    stats::Rng rng(34);
    Tensor x = Tensor::randn({3, 16}, rng);
    mlp.set_spec(QuantSpec::forward_only(core::mx4()),
                 /*keep_first_last_fp32=*/true);
    Tensor fake = mlp.logits(x, false);
    mlp.freeze(); // freeze under the current (mixed) specs
    Tensor frozen = mlp.logits(x, false);
    EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0);
}

TEST(FrozenModels, ResNetBitIdenticalEval)
{
    for_each_dispatch([&](const char* leg) {
        models::ResNetMini net(8, 4, 3,
                               QuantSpec::forward_only(core::mx6()), 35);
        stats::Rng rng(36);
        Tensor imgs = Tensor::randn({2, 1, 8, 8}, rng);
        Tensor fake = net.logits(imgs, false);
        net.freeze();
        ASSERT_TRUE(net.frozen());
        Tensor frozen = net.logits(imgs, false);
        EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0) << leg;
    });
}

TEST(FrozenModels, GptBitIdenticalEval)
{
    for_each_dispatch([&](const char* leg) {
        models::TransformerConfig cfg;
        cfg.vocab = 16;
        cfg.d_model = 32;
        cfg.heads = 2;
        cfg.layers = 1;
        cfg.seq_len = 8;
        cfg.spec = QuantSpec::forward_only(core::mx9());
        models::GptMini model(cfg);
        data::SequenceBatch batch;
        batch.n = 2;
        batch.seq_len = cfg.seq_len;
        stats::Rng rng(37);
        for (int i = 0; i < batch.n * cfg.seq_len; ++i) {
            batch.tokens.push_back(
                static_cast<int>(rng.next_u64() % cfg.vocab));
            batch.labels.push_back(
                static_cast<int>(rng.next_u64() % cfg.vocab));
        }
        Tensor fake = model.logits(batch, false);
        model.freeze();
        ASSERT_TRUE(model.frozen());
        Tensor frozen = model.logits(batch, false);
        EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0) << leg;
        EXPECT_EQ(model.eval_loss(batch), model.eval_loss(batch));
        model.unfreeze();
        model.train_loss(batch); // trainable again
    });
}

TEST(FrozenModels, BertBitIdenticalEvalBothHeads)
{
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 8;
    cfg.spec = QuantSpec::forward_only(core::mx6());
    models::BertMini model(cfg, 3);
    data::SequenceBatch batch;
    batch.n = 2;
    batch.seq_len = cfg.seq_len;
    stats::Rng rng(38);
    for (int i = 0; i < batch.n * cfg.seq_len; ++i) {
        batch.tokens.push_back(
            static_cast<int>(rng.next_u64() % cfg.vocab));
        batch.labels.push_back(0);
    }
    Tensor cls_fake = model.class_logits(batch, false);
    Tensor qa_fake = model.qa_logits(batch, false);
    model.freeze();
    ASSERT_TRUE(model.frozen());
    EXPECT_EQ(tensor::max_abs_diff(cls_fake,
                                   model.class_logits(batch, false)),
              0.0);
    EXPECT_EQ(tensor::max_abs_diff(qa_fake, model.qa_logits(batch, false)),
              0.0);
}

TEST(FrozenModels, DlrmBitIdenticalPredictions)
{
    models::DlrmConfig cfg;
    cfg.num_tables = 3;
    cfg.vocab_per_table = 8;
    cfg.embed_dim = 8;
    cfg.dense_dim = 4;
    cfg.bottom_hidden = {8};
    cfg.top_hidden = {8};
    cfg.spec = QuantSpec::forward_only(core::mx6());
    cfg.embedding_storage = core::mx6();
    models::DlrmMini model(cfg);
    data::ClickBatch batch;
    batch.n = 4;
    stats::Rng rng(39);
    batch.dense = Tensor::randn({batch.n, cfg.dense_dim}, rng);
    for (int i = 0; i < batch.n * cfg.num_tables; ++i)
        batch.categorical.push_back(
            static_cast<int>(rng.next_u64() % cfg.vocab_per_table));
    batch.labels = {0, 1, 1, 0};
    std::vector<double> fake = model.predict(batch);
    model.freeze();
    ASSERT_TRUE(model.frozen());
    std::vector<double> frozen = model.predict(batch);
    ASSERT_EQ(fake.size(), frozen.size());
    for (std::size_t i = 0; i < fake.size(); ++i)
        EXPECT_EQ(fake[i], frozen[i]);
}

TEST(FrozenModels, Seq2SeqBitIdenticalEvalAndDecode)
{
    models::Seq2SeqConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 12;
    cfg.seq_len = 6;
    cfg.spec = QuantSpec::forward_only(core::mx9());
    models::LstmSeq2Seq model(cfg);
    data::SequenceBatch batch;
    batch.n = 2;
    batch.seq_len = cfg.seq_len;
    stats::Rng rng(40);
    for (int i = 0; i < batch.n * cfg.seq_len; ++i) {
        batch.tokens.push_back(
            static_cast<int>(rng.next_u64() % cfg.vocab));
        batch.labels.push_back(
            static_cast<int>(rng.next_u64() % cfg.vocab));
    }
    double fake_loss = model.eval_loss(batch);
    std::vector<int> fake_decode = model.decode(batch.row(0));
    model.freeze();
    ASSERT_TRUE(model.frozen());
    EXPECT_EQ(model.eval_loss(batch), fake_loss);
    EXPECT_EQ(model.decode(batch.row(0)), fake_decode);
}

TEST(FrozenTensor, CopiesAreSharedHandlesOntoOnePayload)
{
    // Replica serving leans on this: copying a FrozenTensor is O(1)
    // and shares the packed weight artifacts instead of duplicating
    // them, so N model clones cost N sets of eval scratch, not N
    // copies of every frozen weight.
    stats::Rng rng(151);
    Tensor w = Tensor::randn({12, 24}, rng);
    FrozenTensor a = FrozenTensor::build(w, core::mx9());
    FrozenTensor b = a; // a handle, not a deep copy

    EXPECT_TRUE(b.shares_payload_with(a));
    EXPECT_EQ(a.values().data(), b.values().data());
    ASSERT_TRUE(a.packed().has_value() && b.packed().has_value());
    EXPECT_EQ(a.packed()->bytes.data(), b.packed()->bytes.data());

    // Fresh snapshots of the same weight do NOT share.
    FrozenTensor c = FrozenTensor::build(w, core::mx9());
    EXPECT_FALSE(c.shares_payload_with(a));

    // drop_values() acts on the one shared snapshot: visible through
    // every handle (documented: drop before serving starts).
    if (a.gemm_operand().has_value()) {
        b.drop_values();
        EXPECT_EQ(a.values().numel(), 0);
        EXPECT_EQ(b.values().numel(), 0);
        // The packed artifact (and thus unpacked()) survives.
        EXPECT_EQ(b.unpacked().numel(), w.numel());
    }
}
