/**
 * @file
 * Tests for the Figure 8 quantized compute flow: row-wise quantization,
 * asymmetric weight/activation formats, BF16 vector rounding, and the
 * non-commutativity of quantize and transpose that motivates the paper's
 * transpose-before-quantize rule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/quantize.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/sequential.h"
#include "nn/optimizer.h"
#include "nn/quant.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::nn;
using tensor::Tensor;

TEST(QuantizeRows, RowsAreIndependentBlocks)
{
    // A huge value in row 0 must not disturb row 1's scaling.
    stats::Rng rng(1);
    Tensor t = Tensor::randn({2, 16}, rng);
    t.at(0, 0) = 1e4f;
    Tensor q = quantize_rows(t, core::mx9());

    Tensor row1({1, 16});
    std::copy(t.data() + 16, t.data() + 32, row1.data());
    Tensor qrow1 = quantize_rows(row1, core::mx9());
    for (int j = 0; j < 16; ++j)
        EXPECT_EQ(q.at(1, j), qrow1.at(0, j));
}

TEST(QuantizeRows, MatchesCoreQuantizePerRow)
{
    stats::Rng rng(2);
    Tensor t = Tensor::randn({3, 48}, rng);
    Tensor q = quantize_rows(t, core::mx6());
    core::Rounder r;
    for (std::int64_t i = 0; i < 3; ++i) {
        std::vector<float> row(t.data() + i * 48, t.data() + (i + 1) * 48);
        std::vector<float> expect(48);
        core::quantize_pow2(core::mx6(), row, expect, r);
        for (int j = 0; j < 48; ++j)
            EXPECT_EQ(q.at(i, j), expect[static_cast<std::size_t>(j)]);
    }
}

TEST(QuantizeDirectionality, QuantizeAndTransposeDoNotCommute)
{
    // Section V: MX is directional.  Q(X)^T != Q(X^T) in general because
    // blocks run along different axes.
    stats::Rng rng(3);
    Tensor t = Tensor::randn({16, 16}, rng, 4.0f);
    Tensor a = tensor::transpose2d(quantize_rows(t, core::mx4()));
    Tensor b = quantize_rows(tensor::transpose2d(t), core::mx4());
    EXPECT_GT(tensor::max_abs_diff(a, b), 0.0);
}

TEST(QMatmul, Fp32PassthroughExact)
{
    stats::Rng rng(4);
    Tensor a = Tensor::randn({4, 8}, rng);
    Tensor b = Tensor::randn({3, 8}, rng);
    Tensor q = qmatmul_nt(a, b, std::nullopt);
    EXPECT_EQ(tensor::max_abs_diff(q, tensor::matmul_nt(a, b)), 0.0);
}

TEST(QMatmul, EqualsManualQuantizeThenMatmul)
{
    stats::Rng rng(5);
    Tensor a = Tensor::randn({4, 32}, rng);
    Tensor b = Tensor::randn({3, 32}, rng);
    Tensor q = qmatmul_nt(a, b, core::mx6());
    Tensor manual = tensor::matmul_nt(quantize_rows(a, core::mx6()),
                                      quantize_rows(b, core::mx6()));
    EXPECT_EQ(tensor::max_abs_diff(q, manual), 0.0);
}

TEST(QMatmul, AsymmetricFormats)
{
    stats::Rng rng(6);
    Tensor a = Tensor::randn({4, 32}, rng);
    Tensor b = Tensor::randn({3, 32}, rng);
    Tensor q = qmatmul_nt2(a, core::mx9(), b, core::mx4());
    Tensor manual = tensor::matmul_nt(quantize_rows(a, core::mx9()),
                                      quantize_rows(b, core::mx4()));
    EXPECT_EQ(tensor::max_abs_diff(q, manual), 0.0);
}

TEST(QuantSpecHelpers, WeightFormatFallback)
{
    QuantSpec s = QuantSpec::uniform(core::mx9());
    EXPECT_EQ(s.weight_format()->name, "MX9");
    QuantSpec wa = QuantSpec::weights_activations(core::mx4(), core::mx9());
    EXPECT_EQ(wa.weight_format()->name, "MX4");
    EXPECT_EQ(wa.forward->name, "MX9");
    EXPECT_FALSE(QuantSpec::fp32().any());
}

TEST(Bf16Rounding, GridAndIdempotence)
{
    Tensor t({4}, {1.0f, 1.0000001f, 3.14159265f, -2.718281828f});
    Tensor r = round_bf16(t);
    EXPECT_FLOAT_EQ(r.at(0), 1.0f);
    EXPECT_FLOAT_EQ(r.at(1), 1.0f); // collapses to the BF16 grid
    Tensor r2 = round_bf16(r);
    EXPECT_EQ(tensor::max_abs_diff(r, r2), 0.0);
    // BF16 keeps ~3 significant decimal digits.
    EXPECT_NEAR(r.at(2), 3.14159265f, 0.02f);
}

TEST(QuantizedLinear, Mx9ForwardIsCloseToFp32)
{
    stats::Rng rng(7);
    Linear fp(32, 16, QuantSpec::fp32(), rng);
    Linear q(32, 16, QuantSpec::uniform(core::mx9()), rng);
    // Same weights for a paired comparison.
    q.weight().value = fp.weight().value;
    q.bias().value = fp.bias().value;
    Tensor x = Tensor::randn({8, 32}, rng);
    Tensor yf = fp.forward(x, false);
    Tensor yq = q.forward(x, false);
    double rel = tensor::max_abs_diff(yf, yq) /
                 (tensor::frobenius_norm(yf) /
                  std::sqrt(static_cast<double>(yf.numel())));
    EXPECT_LT(rel, 0.1); // MX9 is a drop-in: sub-10% of RMS magnitude
    EXPECT_GT(tensor::max_abs_diff(yf, yq), 0.0); // but not bit-identical
}

TEST(QuantizedLinear, TrainingStepReducesLossUnderMx9)
{
    // A single-layer regression must still optimize when both passes are
    // MX9-quantized (the Table III "MX9 training" path in miniature).
    stats::Rng rng(8);
    Linear layer(16, 1, QuantSpec::uniform(core::mx9()), rng);
    Tensor w_true = Tensor::randn({16, 1}, rng);
    std::vector<Param*> params;
    layer.collect_params(params);
    Sgd opt(params, 0.05);

    auto make_batch = [&](Tensor& x, Tensor& y) {
        x = Tensor::randn({32, 16}, rng);
        y = tensor::matmul(x, w_true);
    };
    double first = 0, last = 0;
    for (int step = 0; step < 200; ++step) {
        Tensor x, y;
        make_batch(x, y);
        opt.zero_grad();
        Tensor pred = layer.forward(x, true);
        auto res = nn::mse(pred, y);
        layer.backward(res.grad);
        opt.step();
        if (step == 0)
            first = res.loss;
        last = res.loss;
    }
    EXPECT_LT(last, first * 0.05);
}

TEST(Optimizers, AdamAndSgdConvergeOnQuadratic)
{
    // min ||w - target||^2 from the gradient 2(w - target).
    stats::Rng rng(9);
    for (int which = 0; which < 2; ++which) {
        Param w("w", Tensor::randn({8}, rng));
        Tensor target = Tensor::randn({8}, rng);
        std::vector<Param*> ps = {&w};
        std::unique_ptr<Optimizer> opt;
        if (which == 0)
            opt = std::make_unique<Sgd>(ps, 0.1, 0.9);
        else
            opt = std::make_unique<Adam>(ps, 0.05);
        for (int it = 0; it < 300; ++it) {
            opt->zero_grad();
            for (int i = 0; i < 8; ++i)
                w.grad.data()[i] =
                    2.0f * (w.value.data()[i] - target.data()[i]);
            opt->step();
        }
        for (int i = 0; i < 8; ++i)
            EXPECT_NEAR(w.value.data()[i], target.data()[i], 1e-2)
                << "optimizer " << which;
    }
}

TEST(Optimizers, ClipGradNorm)
{
    Param w("w", Tensor::zeros({4}));
    w.grad = Tensor({4}, {3, 4, 0, 0}); // norm 5
    std::vector<Param*> ps = {&w};
    Sgd opt(ps, 0.1);
    double norm = opt.clip_grad_norm(1.0);
    EXPECT_NEAR(norm, 5.0, 1e-6);
    EXPECT_NEAR(w.grad.at(0), 0.6f, 1e-6);
    EXPECT_NEAR(w.grad.at(1), 0.8f, 1e-6);
}
