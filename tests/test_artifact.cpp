/**
 * @file
 * MXFROZEN artifact format battery.
 *
 * Three layers of defense for the freeze-once / mmap-serve-anywhere
 * split (src/artifact/):
 *
 *  1. Round-trip property: every model family (and through them every
 *     layer type), across MX9/MX6/MX4, both kernel dispatch legs and
 *     both serving paths, forwards bit-identically after
 *     freeze -> save -> mmap-load — including ragged row widths, the
 *     Table IV weight/activation split specs, the mixed-precision
 *     keep-edges-FP32 recipe, and values-dropped (packed-GEMM-only)
 *     loads.
 *
 *  2. Corruption matrix: every distinct way a file can be bad —
 *     truncation, bad magic, unknown version, a flipped bit in each
 *     checksummed section, out-of-range offsets, malformed manifest
 *     fields, a smuggled stochastic plan — raises its own typed error
 *     from the format.h taxonomy, before any payload is interpreted.
 *
 *  3. Golden artifact: a version-1 file committed under tests/data/
 *     must keep decoding bit-exactly, and today's writer must keep
 *     producing those exact bytes — the format-stability pin.  Any
 *     intentional layout change bumps kVersion, regenerates the golden
 *     (MX_REGEN_GOLDEN=1), and keeps the old reader rejecting the new
 *     generation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "artifact/format.h"
#include "artifact/reader.h"
#include "artifact/writer.h"
#include "core/env.h"
#include "core/kernels/dispatch.h"
#include "gemm/packed_gemm.h"
#include "models/dlrm_mini.h"
#include "models/lstm_seq2seq.h"
#include "models/mlp.h"
#include "models/resnet_mini.h"
#include "models/serve_adapters.h"
#include "models/transformer.h"
#include "nn/frozen.h"
#include "nn/linear.h"
#include "serve/engine.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::artifact;
using tensor::Tensor;

namespace {

/** Run @p body once per kernel dispatch leg, restoring the default. */
template <typename Fn>
void
for_each_dispatch(Fn&& body)
{
    for (int leg = 0; leg < 2; ++leg) {
        core::kernels::set_force_scalar(leg == 1);
        body(leg == 1 ? "scalar" : "default");
    }
    core::kernels::set_force_scalar(false);
}

std::vector<core::BdrFormat>
mx_formats()
{
    return {core::mx9(), core::mx6(), core::mx4()};
}

std::string
tmp_path(const std::string& name)
{
    return ::testing::TempDir() + "mx_artifact_" + name;
}

std::vector<std::uint8_t>
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string& path, const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::uint64_t
get_u64(const std::vector<std::uint8_t>& b, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[off + static_cast<std::size_t>(i)];
    return v;
}

void
put_u32(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

void
put_u64(std::vector<std::uint8_t>& b, std::size_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

/** Recompute header_crc (bytes 72..75, computed with the field zeroed)
 *  after a deliberate header patch. */
void
refix_header_crc(std::vector<std::uint8_t>& b)
{
    put_u32(b, 72, 0);
    put_u32(b, 72, crc32(b.data(), kHeaderSize));
}

/** Recompute the config/manifest section CRCs from the (patched) bytes
 *  and then the header CRC — used to push a corruption PAST the
 *  checksum layer so the deeper typed checks are reachable. */
void
refix_all_crcs(std::vector<std::uint8_t>& b)
{
    const std::uint64_t coff = get_u64(b, 24), csz = get_u64(b, 32);
    const std::uint64_t moff = get_u64(b, 40), msz = get_u64(b, 48);
    put_u32(b, 64, crc32(b.data() + coff, csz));
    put_u32(b, 68, crc32(b.data() + moff, msz));
    refix_header_crc(b);
}

/** A small frozen-MX6 MLP with a ragged (19-wide) input, saved to
 *  @p name; returns the artifact path. */
std::string
write_mlp_artifact(const std::string& name)
{
    models::MlpClassifier mlp(19, {16}, 4,
                              nn::QuantSpec::forward_only(core::mx6()),
                              51);
    mlp.freeze();
    const std::string path = tmp_path(name);
    mlp.save_frozen(path);
    return path;
}

Tensor
fixed_input(std::int64_t n, std::int64_t dim)
{
    Tensor x({n, dim});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.data()[i] =
            0.25f * static_cast<float>((i * 7) % 13) - 1.5f;
    return x;
}

data::SequenceBatch
token_batch(int n, int seq_len, int vocab, std::uint64_t seed)
{
    data::SequenceBatch batch;
    batch.n = n;
    batch.seq_len = seq_len;
    stats::Rng rng(seed);
    for (int i = 0; i < n * seq_len; ++i) {
        batch.tokens.push_back(
            static_cast<int>(rng.next_u64() % vocab));
        batch.labels.push_back(
            static_cast<int>(rng.next_u64() % vocab));
    }
    return batch;
}

} // namespace

// =====================================================================
// 1. Round-trip property: freeze -> save -> mmap-load -> bit-identical.
// =====================================================================

TEST(ArtifactRoundTrip, MlpAllFormatsBothLegsBothServePaths)
{
    // The serving-path axis (packed GEMM vs dequantized values) and the
    // kernel dispatch axis are both covered: whatever path executes,
    // the original frozen model and its loaded twin hold the same bit
    // streams, so they must agree exactly.
    for (gemm::Mode mode : {gemm::Mode::Off, gemm::Mode::Auto}) {
        gemm::set_mode(mode);
        for_each_dispatch([&](const char* leg) {
            for (const auto& fmt : mx_formats()) {
                models::MlpClassifier mlp(
                    19, {24, 16}, 4, nn::QuantSpec::forward_only(fmt),
                    61);
                mlp.freeze();
                const std::string path = tmp_path("rt_mlp");
                mlp.save_frozen(path);

                models::MlpClassifier loaded =
                    models::MlpClassifier::load_frozen(path);
                ASSERT_TRUE(loaded.frozen());
                Tensor x = fixed_input(5, 19);
                EXPECT_EQ(tensor::max_abs_diff(mlp.logits(x, false),
                                               loaded.logits(x, false)),
                          0.0)
                    << fmt.name << " leg=" << leg
                    << " mode=" << static_cast<int>(mode);
                // Loaded models are serve-only.
                EXPECT_THROW(loaded.logits(x, true), ArgumentError);
            }
        });
    }
    gemm::set_mode(gemm::Mode::Auto);
}

TEST(ArtifactRoundTrip, SplitSpecAndMixedPrecisionSurviveTheFile)
{
    for_each_dispatch([&](const char* leg) {
        // Table IV (w, a) split: weights MX4, activations MX9.
        {
            models::MlpClassifier mlp(
                32, {16}, 4,
                nn::QuantSpec::weights_activations(core::mx4(),
                                                   core::mx9()),
                62);
            mlp.freeze();
            const std::string path = tmp_path("rt_split");
            mlp.save_frozen(path);
            ArtifactReader reader(path);
            EXPECT_EQ(reader.entries()[0].format->name, "MX4");
            models::MlpClassifier loaded =
                models::MlpClassifier::load_frozen(reader);
            Tensor x = fixed_input(4, 32);
            EXPECT_EQ(tensor::max_abs_diff(mlp.logits(x, false),
                                           loaded.logits(x, false)),
                      0.0)
                << leg;
        }
        // Mixed-precision recipe: edge layers frozen as FP32
        // passthrough snapshots, stored RawF32 + Snapshot and rebuilt
        // at load.
        {
            models::MlpClassifier mlp(16, {24}, 4,
                                      nn::QuantSpec::fp32(), 63);
            mlp.set_spec(nn::QuantSpec::forward_only(core::mx4()),
                         /*keep_first_last_fp32=*/true);
            mlp.freeze();
            const std::string path = tmp_path("rt_mixed");
            mlp.save_frozen(path);
            ArtifactReader reader(path);
            EXPECT_EQ(reader.entries()[0].kind, EntryKind::RawF32);
            EXPECT_EQ(reader.entries()[0].frozen, FrozenState::Snapshot);
            models::MlpClassifier loaded =
                models::MlpClassifier::load_frozen(reader);
            Tensor x = fixed_input(3, 16);
            EXPECT_EQ(tensor::max_abs_diff(mlp.logits(x, false),
                                           loaded.logits(x, false)),
                      0.0)
                << leg;
        }
    });
}

TEST(ArtifactRoundTrip, LinearDropValuesServesFromTheStreamAlone)
{
    // materialize_values = false: the loaded layer holds only the
    // mapped stream + execution view (the drop_values() memory shape),
    // and MX_GEMM=auto routes its matmul through the packed domain
    // because the grid values are gone.  Both sides then execute the
    // identical packed kernel contract -> bit-identical on every leg.
    gemm::set_mode(gemm::Mode::Auto);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            stats::Rng rng(64);
            nn::Linear layer(19, 8, nn::QuantSpec::forward_only(fmt),
                             rng);
            layer.freeze();

            ArtifactWriter w(ModelFamily::Mlp, {});
            std::vector<nn::FrozenStateRef> refs;
            layer.collect_state("", refs);
            w.add_all(refs);
            const std::string path = tmp_path("rt_drop");
            w.write(path);

            // Original drops its FP32 grid -> packed-GEMM-only.
            layer.drop_frozen_values();

            stats::Rng rng2(99);
            nn::Linear loaded(19, 8, nn::QuantSpec::fp32(), rng2);
            std::vector<nn::FrozenStateRef> slots;
            loaded.collect_state("", slots);
            ArtifactReader reader(path);
            reader.load_into(slots, LoadOptions{false});
            ASSERT_TRUE(loaded.frozen());
            EXPECT_EQ(loaded.frozen_weight().values().numel(), 0);

            Tensor x = fixed_input(4, 19);
            EXPECT_EQ(tensor::max_abs_diff(layer.forward(x, false),
                                           loaded.forward(x, false)),
                      0.0)
                << fmt.name << " leg=" << leg;
        }
    });
}

TEST(ArtifactRoundTrip, ResNetConvStackBothLegs)
{
    for_each_dispatch([&](const char* leg) {
        models::ResNetMini net(
            8, 4, 3, nn::QuantSpec::forward_only(core::mx6()), 65);
        net.freeze();
        const std::string path = tmp_path("rt_resnet");
        net.save_frozen(path);
        models::ResNetMini loaded = models::ResNetMini::load_frozen(path);
        ASSERT_TRUE(loaded.frozen());
        stats::Rng rng(66);
        Tensor imgs = Tensor::randn({2, 1, 8, 8}, rng);
        EXPECT_EQ(tensor::max_abs_diff(net.logits(imgs, false),
                                       loaded.logits(imgs, false)),
                  0.0)
            << leg;
    });
}

TEST(ArtifactRoundTrip, GptZeroCopyReplicasShareOneMapping)
{
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 8;
    cfg.spec = nn::QuantSpec::forward_only(core::mx9());
    models::GptMini model(cfg);
    model.freeze();
    const std::string path = tmp_path("rt_gpt");
    model.save_frozen(path);

    ArtifactReader reader(path);
    EXPECT_EQ(reader.family(), ModelFamily::Gpt);
    EXPECT_EQ(reader.version(), kVersion);

    // Pow2 packed entries view the mapping directly — no copies.
    std::size_t packed = 0;
    for (std::size_t i = 0; i < reader.entry_count(); ++i)
        if (reader.entries()[i].kind == EntryKind::PackedPow2) {
            ++packed;
            EXPECT_EQ(reader.frozen(i).zero_copy(), reader.mmapped())
                << reader.entries()[i].name;
        }
    EXPECT_GT(packed, 0u);

    // Two replicas from ONE reader share the cached handles (and so
    // the single mapping): shares_payload_with holds slot for slot.
    models::GptMini a = models::GptMini::load_frozen(reader);
    models::GptMini b = models::GptMini::load_frozen(reader);
    std::vector<nn::FrozenStateRef> ra, rb;
    a.collect_state("", ra);
    b.collect_state("", rb);
    ASSERT_EQ(ra.size(), rb.size());
    std::size_t shared = 0;
    for (std::size_t i = 0; i < ra.size(); ++i)
        if (ra[i].frozen != nullptr && ra[i].frozen->valid() &&
            ra[i].frozen->quantized()) {
            EXPECT_TRUE(ra[i].frozen->shares_payload_with(*rb[i].frozen))
                << ra[i].name;
            ++shared;
        }
    EXPECT_EQ(shared, packed);

    // And both serve bit-identically to the original frozen model
    // through a replicated engine (one replica per loaded model).
    for_each_dispatch([&](const char* leg) {
        data::SequenceBatch batch = token_batch(2, cfg.seq_len,
                                                cfg.vocab, 67);
        Tensor expect = model.logits(batch, false);
        EXPECT_EQ(tensor::max_abs_diff(expect, a.logits(batch, false)),
                  0.0)
            << leg;
        EXPECT_EQ(tensor::max_abs_diff(expect, b.logits(batch, false)),
                  0.0)
            << leg;
    });

    std::vector<models::GptMini*> replicas = {&a, &b};
    serve::EngineConfig ecfg;
    ecfg.replicas = 2;
    ecfg.max_batch = 2;
    serve::InferenceEngine engine(
        [&replicas](std::size_t r) -> serve::InferenceEngine::BatchFn {
            models::GptMini* m = replicas[r % replicas.size()];
            return [m](const Tensor& rows) {
                return m->window_logits(rows);
            };
        },
        cfg.seq_len, ecfg);

    std::vector<int> tokens(static_cast<std::size_t>(cfg.seq_len));
    for (std::size_t i = 0; i < tokens.size(); ++i)
        tokens[i] = static_cast<int>(i) % cfg.vocab;
    const std::vector<float> row =
        models::GptMini::pack_decode_row(tokens, cfg.seq_len);
    Tensor window({1, cfg.seq_len});
    std::copy(row.begin(), row.end(), window.data());
    Tensor direct = model.window_logits(window);
    std::vector<std::future<serve::Reply>> futures;
    for (int r = 0; r < 6; ++r)
        futures.push_back(engine.submit(row));
    for (auto& f : futures) {
        serve::Reply reply = f.get();
        ASSERT_EQ(reply.output.size(),
                  static_cast<std::size_t>(cfg.vocab));
        for (std::int64_t j = 0; j < cfg.vocab; ++j)
            EXPECT_EQ(reply.output[static_cast<std::size_t>(j)],
                      direct.data()[j]);
    }
}

TEST(ArtifactRoundTrip, BertBothHeads)
{
    models::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.seq_len = 8;
    cfg.spec = nn::QuantSpec::forward_only(core::mx6());
    models::BertMini model(cfg, 3);
    model.freeze();
    const std::string path = tmp_path("rt_bert");
    model.save_frozen(path);
    models::BertMini loaded = models::BertMini::load_frozen(path);
    ASSERT_TRUE(loaded.frozen());
    data::SequenceBatch batch = token_batch(2, cfg.seq_len, cfg.vocab, 68);
    EXPECT_EQ(tensor::max_abs_diff(model.class_logits(batch, false),
                                   loaded.class_logits(batch, false)),
              0.0);
    EXPECT_EQ(tensor::max_abs_diff(model.qa_logits(batch, false),
                                   loaded.qa_logits(batch, false)),
              0.0);
}

TEST(ArtifactRoundTrip, DlrmPackedEmbeddingTables)
{
    models::DlrmConfig cfg;
    cfg.num_tables = 3;
    cfg.vocab_per_table = 8;
    cfg.embed_dim = 8;
    cfg.dense_dim = 4;
    cfg.bottom_hidden = {8};
    cfg.top_hidden = {8};
    cfg.spec = nn::QuantSpec::forward_only(core::mx6());
    cfg.embedding_storage = core::mx6();
    models::DlrmMini model(cfg);
    model.freeze();
    const std::string path = tmp_path("rt_dlrm");
    model.save_frozen(path);

    ArtifactReader reader(path);
    // The quantized tables travel as packed streams, not FP32 copies.
    EXPECT_EQ(reader.entries()[0].kind, EntryKind::PackedPow2);
    models::DlrmMini loaded = models::DlrmMini::load_frozen(reader);
    ASSERT_TRUE(loaded.frozen());
    EXPECT_TRUE(loaded.config().embedding_storage.has_value());

    data::ClickBatch batch;
    batch.n = 4;
    stats::Rng rng(69);
    batch.dense = Tensor::randn({batch.n, cfg.dense_dim}, rng);
    for (int i = 0; i < batch.n * cfg.num_tables; ++i)
        batch.categorical.push_back(
            static_cast<int>(rng.next_u64() % cfg.vocab_per_table));
    batch.labels = {0, 1, 1, 0};
    std::vector<double> expect = model.predict(batch);
    std::vector<double> got = loaded.predict(batch);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(expect[i], got[i]);
}

TEST(ArtifactRoundTrip, Seq2SeqEvalLossAndGreedyDecode)
{
    models::Seq2SeqConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 12;
    cfg.seq_len = 6;
    cfg.spec = nn::QuantSpec::forward_only(core::mx9());
    models::LstmSeq2Seq model(cfg);
    model.freeze();
    const std::string path = tmp_path("rt_s2s");
    model.save_frozen(path);
    models::LstmSeq2Seq loaded = models::LstmSeq2Seq::load_frozen(path);
    ASSERT_TRUE(loaded.frozen());
    data::SequenceBatch batch = token_batch(2, cfg.seq_len, cfg.vocab, 70);
    EXPECT_EQ(model.eval_loss(batch), loaded.eval_loss(batch));
    EXPECT_EQ(model.decode(batch.row(0)), loaded.decode(batch.row(0)));
}

// =====================================================================
// 2. Corruption matrix: each failure mode -> its own typed error.
// =====================================================================

TEST(ArtifactCorruption, TruncatedBeforeAndAfterTheHeader)
{
    const std::string path = write_mlp_artifact("c_trunc");
    std::vector<std::uint8_t> good = slurp(path);

    std::vector<std::uint8_t> shorter(good.begin(), good.begin() + 40);
    spit(path, shorter);
    EXPECT_THROW(ArtifactReader r(path), TruncatedError);

    std::vector<std::uint8_t> clipped(good.begin(), good.end() - 1);
    spit(path, clipped);
    EXPECT_THROW(ArtifactReader r(path), TruncatedError);
}

TEST(ArtifactCorruption, WrongMagicIsNotAnArtifact)
{
    const std::string path = write_mlp_artifact("c_magic");
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[0] ^= 0xFF;
    spit(path, bytes);
    EXPECT_THROW(ArtifactReader r(path), BadMagicError);
}

TEST(ArtifactCorruption, UnknownVersionRejectedBeforeChecksums)
{
    const std::string path = write_mlp_artifact("c_ver");
    std::vector<std::uint8_t> bytes = slurp(path);
    // Deliberately do NOT refix the header CRC: the version gate must
    // fire first, so a future generation reads as "unsupported
    // version", never as "corrupt".
    put_u32(bytes, 8, kVersion + 7);
    spit(path, bytes);
    EXPECT_THROW(ArtifactReader r(path), UnsupportedVersionError);
}

TEST(ArtifactCorruption, FlippedBitInEachChecksummedSection)
{
    const std::string path = write_mlp_artifact("c_flip");
    const std::vector<std::uint8_t> good = slurp(path);
    const std::uint64_t coff = get_u64(good, 24);
    const std::uint64_t moff = get_u64(good, 40);

    // Header field (entry_count), config byte, manifest byte, payload
    // byte (the file's last byte lies inside the last payload).
    const std::size_t spots[] = {20, static_cast<std::size_t>(coff),
                                 static_cast<std::size_t>(moff),
                                 good.size() - 1};
    for (std::size_t spot : spots) {
        std::vector<std::uint8_t> bytes = good;
        bytes[spot] ^= 0x40;
        spit(path, bytes);
        EXPECT_THROW(ArtifactReader r(path), ChecksumError)
            << "flipped byte " << spot;
    }
}

TEST(ArtifactCorruption, SectionOffsetOutOfRange)
{
    const std::string path = write_mlp_artifact("c_range");
    std::vector<std::uint8_t> bytes = slurp(path);
    put_u64(bytes, 40, bytes.size() + 64); // manifest offset past EOF
    refix_header_crc(bytes);               // checksum layer passes
    spit(path, bytes);
    EXPECT_THROW(ArtifactReader r(path), RangeError);
}

TEST(ArtifactCorruption, PayloadOffsetOutOfRange)
{
    const std::string path = write_mlp_artifact("c_prange");
    std::vector<std::uint8_t> bytes = slurp(path);

    // Entry 0's fixed-width tail is offset|size|bits (u64 each) + crc
    // (u32); locate it by re-serializing the parsed entry.
    ArtifactReader good(path);
    ByteWriter entry0;
    write_entry(entry0, good.entries()[0]);
    const std::uint64_t moff = get_u64(bytes, 40);
    const std::size_t field =
        static_cast<std::size_t>(moff) + entry0.data().size() - 28;
    ASSERT_EQ(get_u64(bytes, field), good.entries()[0].payload_offset);

    put_u64(bytes, field, bytes.size()); // offset+size reaches past EOF
    refix_all_crcs(bytes);               // corruption survives checksums
    spit(path, bytes);
    EXPECT_THROW(ArtifactReader r(path), RangeError);
}

TEST(ArtifactCorruption, ManifestEnumAndPlanGates)
{
    const std::string path = write_mlp_artifact("c_schema");
    const std::vector<std::uint8_t> good = slurp(path);
    const std::uint64_t moff = get_u64(good, 40);
    // Entry record: u32 name_len | name | u8 kind | u8 frozen |
    // u8 has_spec | u8 rounding | ...
    const std::uint64_t name_len = get_u64(good, moff) & 0xFFFFFFFFu;
    const std::size_t kind_at =
        static_cast<std::size_t>(moff + 4 + name_len);

    // Unknown EntryKind code -> SchemaError (CRCs all pass).
    {
        std::vector<std::uint8_t> bytes = good;
        bytes[kind_at] = 9;
        refix_all_crcs(bytes);
        spit(path, bytes);
        EXPECT_THROW(ArtifactReader r(path), SchemaError);
    }

    // A hand-crafted stochastic rounding plan -> UnsupportedPlanError:
    // the load half of the freeze-time rejection (format.h invariant).
    {
        std::vector<std::uint8_t> bytes = good;
        bytes[kind_at + 3] =
            static_cast<std::uint8_t>(core::RoundingMode::Stochastic);
        refix_all_crcs(bytes);
        spit(path, bytes);
        EXPECT_THROW(ArtifactReader r(path), UnsupportedPlanError);
    }
}

TEST(ArtifactCorruption, WrongFamilyAndWrongArchitecture)
{
    const std::string path = write_mlp_artifact("c_family");
    // An MLP artifact is not a GPT artifact...
    EXPECT_THROW(models::GptMini::load_frozen(path), SchemaError);

    // ...and an MLP with a different layer stack collects a different
    // slot count than the file holds.
    ArtifactReader reader(path);
    models::MlpClassifier other(19, {16, 8}, 4, nn::QuantSpec::fp32(),
                                51);
    std::vector<nn::FrozenStateRef> refs;
    other.collect_state("", refs);
    EXPECT_THROW(reader.load_into(refs), SchemaError);
}

TEST(ArtifactCorruption, MissingFileIsAnIoError)
{
    EXPECT_THROW(ArtifactReader r(tmp_path("does_not_exist")),
                 ArtifactIoError);
}

// =====================================================================
// 3. Golden artifact: the version-1 bytes are pinned forever.
// =====================================================================

namespace {

/** The exact model the committed golden artifact froze. */
models::MlpClassifier
golden_model()
{
    models::MlpClassifier mlp(12, {8}, 3,
                              nn::QuantSpec::forward_only(core::mx6()),
                              77);
    mlp.freeze();
    return mlp;
}

std::string
golden_path()
{
    return std::string(MX_TEST_DATA_DIR) + "/golden_mlp_mx6.mxfrozen";
}

} // namespace

TEST(GoldenArtifact, DecodesBitExactly)
{
    // Regeneration escape hatch for INTENTIONAL format changes:
    //   MX_REGEN_GOLDEN=1 ./test_artifact
    //       --gtest_filter=GoldenArtifact.DecodesBitExactly
    if (core::env::flag_knob("MX_REGEN_GOLDEN", false))
        golden_model().save_frozen(golden_path());

    models::MlpClassifier loaded =
        models::MlpClassifier::load_frozen(golden_path());
    ASSERT_TRUE(loaded.frozen());
    models::MlpClassifier expect = golden_model();
    Tensor x = fixed_input(4, 12);
    EXPECT_EQ(tensor::max_abs_diff(expect.logits(x, false),
                                   loaded.logits(x, false)),
              0.0);
}

TEST(GoldenArtifact, WriterStillProducesTheExactBytes)
{
    // Byte-for-byte writer stability: any layout drift fails here and
    // must come with a kVersion bump + golden regeneration.
    models::MlpClassifier mlp = golden_model();
    const std::string path = tmp_path("golden_rewrite");
    mlp.save_frozen(path);
    EXPECT_EQ(slurp(path), slurp(golden_path()));
}
