/**
 * @file
 * Tests for the parameterized scalar floating-point codec.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/bdr_format.h"
#include "core/scalar_fp.h"

using namespace mx::core;

TEST(ScalarFp, MaxFiniteMatchesIndustryValues)
{
    EXPECT_DOUBLE_EQ(fp8_e4m3().fp_max_finite(), 448.0);   // NVIDIA E4M3
    EXPECT_DOUBLE_EQ(fp8_e5m2().fp_max_finite(), 57344.0); // IEEE-style
    EXPECT_DOUBLE_EQ(fp4_e2m1().fp_max_finite(), 6.0);     // OCP FP4
    EXPECT_DOUBLE_EQ(fp6_e3m2().fp_max_finite(), 28.0);    // OCP FP6
    EXPECT_DOUBLE_EQ(fp6_e2m3().fp_max_finite(), 7.5);     // OCP FP6
    EXPECT_DOUBLE_EQ(bf16().fp_max_finite(),
                     (2.0 - std::ldexp(1.0, -7)) * std::ldexp(1.0, 127));
}

TEST(ScalarFp, ExactValuesRoundTrip)
{
    Rounder r;
    BdrFormat f = fp8_e4m3();
    for (double v : {0.0, 1.0, -1.0, 0.5, 448.0, -448.0, 0.015625}) {
        EXPECT_DOUBLE_EQ(fp_cast(f, v, r), v) << v;
    }
}

TEST(ScalarFp, SaturatesInsteadOfOverflowing)
{
    Rounder r;
    EXPECT_DOUBLE_EQ(fp_cast(fp8_e4m3(), 1e6, r), 448.0);
    EXPECT_DOUBLE_EQ(fp_cast(fp8_e4m3(), -1e6, r), -448.0);
    EXPECT_DOUBLE_EQ(fp_cast(fp4_e2m1(), 100.0, r), 6.0);
    EXPECT_DOUBLE_EQ(
        fp_cast(fp8_e5m2(), std::numeric_limits<double>::infinity(), r),
        57344.0);
}

TEST(ScalarFp, SubnormalsRepresented)
{
    Rounder r;
    BdrFormat f = fp8_e4m3(); // emin = -6, subnormal step 2^-9
    double tiny = std::ldexp(1.0, -9);
    EXPECT_DOUBLE_EQ(fp_cast(f, tiny, r), tiny);
    EXPECT_DOUBLE_EQ(fp_cast(f, tiny / 4.0, r), 0.0);      // rounds to 0
    EXPECT_DOUBLE_EQ(fp_cast(f, 3.0 * tiny / 4.0, r), tiny);
}

TEST(ScalarFp, RoundToNearestEvenTies)
{
    Rounder r;
    BdrFormat f = fp4_e2m1(); // values: 0, .5, 1, 1.5, 2, 3, 4, 6
    EXPECT_DOUBLE_EQ(fp_cast(f, 1.25, r), 1.0);  // tie -> even mantissa
    EXPECT_DOUBLE_EQ(fp_cast(f, 1.75, r), 2.0);
    EXPECT_DOUBLE_EQ(fp_cast(f, 2.5, r), 2.0);   // tie between 2 and 3
    EXPECT_DOUBLE_EQ(fp_cast(f, 3.5, r), 4.0);
    EXPECT_DOUBLE_EQ(fp_cast(f, 5.0, r), 4.0);   // tie between 4 and 6
}

TEST(ScalarFp, ZeroMantissaFormatIsPowerOfTwoGrid)
{
    Rounder r;
    BdrFormat f = fp4_e3m0(); // representable: 0 and 2^k
    std::set<double> seen;
    for (double v = 0.1; v < 20.0; v *= 1.07) {
        double q = fp_cast(f, v, r);
        if (q != 0.0) {
            double l = std::log2(q);
            EXPECT_DOUBLE_EQ(l, std::round(l)) << "v=" << v << " q=" << q;
        }
        seen.insert(q);
    }
    EXPECT_GE(seen.size(), 4u);
}

class FpRoundTrip : public ::testing::TestWithParam<BdrFormat>
{
};

TEST_P(FpRoundTrip, EncodeDecodeIsIdentityOnCodes)
{
    // Every decodable value must encode back to itself (codec is a
    // bijection on the value set, modulo -0).
    const BdrFormat f = GetParam();
    Rounder r;
    const int bits = fp_code_bits(f);
    for (std::uint32_t code = 0; code < (1u << bits); ++code) {
        double v = fp_decode(f, code);
        if (v > f.fp_max_finite() || -v > f.fp_max_finite())
            continue; // reserved top codes (inf/NaN space)
        std::uint32_t re = fp_encode(f, v, r);
        EXPECT_DOUBLE_EQ(fp_decode(f, re), v)
            << f.name << " code " << code;
    }
}

TEST_P(FpRoundTrip, CastedValuesAreOnTheGrid)
{
    const BdrFormat f = GetParam();
    Rounder r;
    mx::stats::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        double v = rng.normal(0.0, std::exp(rng.normal()));
        double q = fp_cast(f, v, r);
        std::uint32_t code = fp_encode(f, q, r);
        EXPECT_DOUBLE_EQ(fp_decode(f, code), q) << f.name << " v=" << v;
        // And casting is idempotent.
        EXPECT_DOUBLE_EQ(fp_cast(f, q, r), q);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllScalarFormats, FpRoundTrip,
    ::testing::Values(fp8_e4m3(), fp8_e5m2(), fp8_e3m4(), fp6_e3m2(),
                      fp6_e2m3(), fp4_e2m1(), fp4_e1m2(), fp4_e3m0(),
                      fp16(), bf16()),
    [](const ::testing::TestParamInfo<BdrFormat>& info) {
        std::string n = info.param.name;
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });
