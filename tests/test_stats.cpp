/**
 * @file
 * Tests for the stats substrate: RNG, distributions, metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"
#include "stats/metrics.h"
#include "stats/rng.h"

using namespace mx::stats;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformMoments)
{
    Rng rng(7);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sq += u * u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_NEAR(sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    double sum = 0, sq = 0, quad = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
        quad += x * x * x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
    EXPECT_NEAR(quad / n, 3.0, 0.15); // kurtosis of a Gaussian
}

TEST(Rng, SplitStreamsAreIndependentish)
{
    Rng root(5);
    Rng a = root.split(1), b = root.split(2);
    double corr_acc = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        corr_acc += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    EXPECT_NEAR(corr_acc / n, 0.0, 0.01);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(3);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7000; ++i)
        ++counts[static_cast<std::size_t>(rng.uniform_int(0, 6))];
    for (int c : counts)
        EXPECT_GT(c, 700);
}

TEST(Distributions, VariableVarianceHasHeavyTailsVsUnit)
{
    // Mixing variances inflates kurtosis above the Gaussian's 3.
    Rng rng(13);
    std::vector<float> v;
    double sq = 0, quad = 0;
    std::size_t n = 0;
    for (int trial = 0; trial < 300; ++trial) {
        make_vector(Distribution::GaussianVariableVariance, 1.0, 512, rng,
                    v);
        for (float x : v) {
            sq += static_cast<double>(x) * x;
            quad += static_cast<double>(x) * x * x * x;
            ++n;
        }
    }
    double var = sq / static_cast<double>(n);
    double kurt = quad / static_cast<double>(n) / (var * var);
    EXPECT_GT(kurt, 4.0);
}

TEST(Distributions, EveryFamilyProducesFiniteValues)
{
    Rng rng(17);
    std::vector<float> v;
    for (auto d : all_distributions()) {
        make_vector(d, 0.7, 1024, rng, v);
        ASSERT_EQ(v.size(), 1024u);
        for (float x : v)
            ASSERT_TRUE(std::isfinite(x)) << to_string(d);
    }
}

TEST(Metrics, QsnrKnownValues)
{
    std::vector<float> x = {1, 2, 3, 4};
    EXPECT_TRUE(std::isinf(qsnr_db(x, x)));
    std::vector<float> q = {1.1f, 2, 3, 4};
    // noise = 0.01, signal = 30 -> 10*log10(3000) ~= 34.77 dB
    EXPECT_NEAR(qsnr_db(x, q), 34.77, 0.05);
}

TEST(Metrics, QsnrAccumulatorPoolsPowerNotDb)
{
    // Eq. 3 takes expectations before the ratio: a perfect vector and a
    // noisy vector pool their powers (not their dB values).
    QsnrAccumulator acc;
    std::vector<float> x = {10.0f, 10.0f};
    acc.add(x, x);
    std::vector<float> y = {1.0f, 1.0f}, yq = {2.0f, 2.0f};
    acc.add(y, yq);
    // noise 2, signal 202 -> -10 log10(2/202).
    EXPECT_NEAR(acc.qsnr_db(), -10.0 * std::log10(2.0 / 202.0), 1e-9);
}

TEST(Metrics, PearsonPerfectAndInverse)
{
    std::vector<double> a = {1, 2, 3, 4, 5};
    std::vector<double> b = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    std::vector<double> c = {5, 4, 3, 2, 1};
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Metrics, AucPerfectRandomInverted)
{
    std::vector<int> labels = {0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(auc(labels, {0.1, 0.2, 0.8, 0.9}), 1.0);
    EXPECT_DOUBLE_EQ(auc(labels, {0.9, 0.8, 0.2, 0.1}), 0.0);
    EXPECT_DOUBLE_EQ(auc(labels, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(Metrics, NormalizedEntropyOfPriorPredictorIsOne)
{
    std::vector<int> labels;
    std::vector<double> probs;
    Rng rng(23);
    for (int i = 0; i < 5000; ++i) {
        labels.push_back(rng.bernoulli(0.25) ? 1 : 0);
        probs.push_back(0.25);
    }
    EXPECT_NEAR(normalized_entropy(labels, probs), 1.0, 0.02);
}

TEST(Metrics, Top1AndPerplexity)
{
    std::vector<int> labels = {0, 1};
    std::vector<float> logits = {5, 0, 0, 5}; // both correct
    EXPECT_DOUBLE_EQ(top1_accuracy(labels, logits, 2), 1.0);
    // Uniform logits -> perplexity = #classes.
    std::vector<float> uniform = {0, 0, 0, 0};
    EXPECT_NEAR(perplexity(labels, uniform, 2), 2.0, 1e-9);
}

TEST(Metrics, SpanScores)
{
    std::vector<std::pair<int, int>> gold = {{2, 4}, {0, 0}};
    std::vector<std::pair<int, int>> pred = {{2, 4}, {1, 1}};
    EXPECT_DOUBLE_EQ(span_exact_match(pred, gold), 0.5);
    std::vector<std::pair<int, int>> part = {{3, 5}, {0, 0}};
    // Overlap 2 of 3 on the first span, exact on the second.
    EXPECT_NEAR(span_f1(part, gold), (2.0 / 3.0 + 1.0) / 2.0, 1e-9);
}

TEST(Metrics, BleuIdentityAndDisjoint)
{
    std::vector<std::vector<int>> refs = {{1, 2, 3, 4, 5, 6}};
    EXPECT_NEAR(bleu(refs, refs), 100.0, 1e-6);
    std::vector<std::vector<int>> wrong = {{7, 8, 9, 10, 11, 12}};
    EXPECT_DOUBLE_EQ(bleu(wrong, refs), 0.0);
}
