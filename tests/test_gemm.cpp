/**
 * @file
 * Packed-domain GEMM property tests (the Figure 6 execution pipeline):
 *
 *  - the FP32 matmul oracle the packed GEMM's QSNR is measured against
 *    (tensor::matmul_nt / nn::qmatmul_nt pinned to a naive
 *    double-accumulation reference across random shapes, ragged k1
 *    tails included, on both kernel dispatch legs);
 *  - scalar, AVX2 and AVX-512/VNNI packed kernels bit-identical for
 *    every MX format pair across shapes, ragged widths, and magnitude
 *    spreads (the AVX-512 suite auto-skips where the host lacks the
 *    ISA), and every entry point bit-identical across MX_GEMM_THREADS
 *    lane counts on tile-crossing shapes;
 *  - packed execution agrees with the dequantized reference matmul to
 *    FP32-accumulation tolerance, and QSNR vs the FP32 oracle clears
 *    the pinned per-format floor;
 *  - the frozen nn::Linear / nn::MultiHeadAttention serving path
 *    actually routes through mx_gemm and keeps working after the FP32
 *    grid tensor is dropped — no dequantized weight copy anywhere.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/kernels/dispatch.h"
#include "core/thread_pool.h"
#include "gemm/gemm_plan.h"
#include "gemm/packed_gemm.h"
#include "gemm/packed_operand.h"
#include "nn/attention.h"
#include "nn/frozen.h"
#include "nn/linear.h"
#include "nn/quant.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

using namespace mx;
using core::kernels::QuantPlan;
using core::kernels::make_quant_plan;
using tensor::Tensor;

namespace {

/** Run @p body once per kernel dispatch leg, restoring the default. */
template <typename Fn>
void
for_each_dispatch(Fn&& body)
{
    for (int leg = 0; leg < 2; ++leg) {
        core::kernels::set_force_scalar(leg == 1);
        body(leg == 1 ? "scalar" : "default");
    }
    core::kernels::set_force_scalar(false);
}

std::vector<core::BdrFormat>
mx_formats()
{
    return {core::mx9(), core::mx6(), core::mx4()};
}

/** Random [rows x cols] with per-row magnitude spread: some rows pick
 *  up a large scale so block exponents differ across the row walk. */
Tensor
spread_randn(std::int64_t rows, std::int64_t cols, stats::Rng& rng)
{
    Tensor t = Tensor::randn({rows, cols}, rng, 1.0f);
    for (std::int64_t r = 0; r < rows; ++r) {
        const double s = std::pow(10.0, rng.uniform(-3.0, 3.0));
        for (std::int64_t c = 0; c < cols; ++c)
            t.data()[r * cols + c] *= static_cast<float>(s);
    }
    // An all-zero row exercises the e_min / tau=beta encoding.
    if (rows > 2)
        for (std::int64_t c = 0; c < cols; ++c)
            t.data()[2 * cols + c] = 0.0f;
    return t;
}

/** Naive triple-loop double-accumulation reference for C = A * B^T. */
Tensor
matmul_nt_reference(const Tensor& a, const Tensor& b)
{
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor c({m, n});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<double>(a.data()[i * k + kk]) *
                       b.data()[j * k + kk];
            c.data()[i * n + j] = static_cast<float>(acc);
        }
    return c;
}

double
max_abs(const Tensor& t)
{
    double m = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(t.data()[i])));
    return m;
}

} // namespace

// ---------------------------------------------------------------------------
// The FP32 matmul oracle (satellite): pin tensor::matmul_nt and
// nn::qmatmul_nt to the naive double-accumulation reference.
// ---------------------------------------------------------------------------

TEST(MatmulOracle, MatmulNtMatchesNaiveDoubleReference)
{
    stats::Rng rng(101);
    const std::int64_t shapes[][3] = {
        {1, 1, 1}, {3, 19, 5}, {8, 16, 8}, {7, 35, 11}, {16, 64, 16}};
    for (const auto& s : shapes) {
        Tensor a = spread_randn(s[0], s[1], rng);
        Tensor b = spread_randn(s[2], s[1], rng);
        Tensor got = tensor::matmul_nt(a, b);
        Tensor want = matmul_nt_reference(a, b);
        EXPECT_EQ(tensor::max_abs_diff(got, want), 0.0)
            << "[" << s[0] << "," << s[1] << "," << s[2] << "]";
    }
}

TEST(MatmulOracle, QmatmulNtMatchesQuantizeThenOracleBothLegs)
{
    stats::Rng rng(102);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            // 19 and 35 end every row in a ragged k1 tail block.
            for (std::int64_t k : {16, 19, 35, 64}) {
                Tensor a = spread_randn(4, k, rng);
                Tensor b = spread_randn(6, k, rng);
                Tensor got = nn::qmatmul_nt(a, b, fmt);
                Tensor want = matmul_nt_reference(
                    nn::quantize_rows(a, fmt), nn::quantize_rows(b, fmt));
                EXPECT_EQ(tensor::max_abs_diff(got, want), 0.0)
                    << fmt.name << " k=" << k << " leg=" << leg;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// GemmPlan pairing rules.
// ---------------------------------------------------------------------------

TEST(GemmPlan, MxPairsAreCompatibleAndPlanned)
{
    for (const auto& fa : mx_formats()) {
        for (const auto& fb : mx_formats()) {
            const QuantPlan a = make_quant_plan(fa), b = make_quant_plan(fb);
            ASSERT_TRUE(gemm::gemm_compatible(a, b))
                << fa.name << " x " << fb.name;
            const gemm::GemmPlan p = gemm::make_gemm_plan(a, b);
            EXPECT_EQ(p.g, 2);
            EXPECT_EQ(p.budget, 2);
            EXPECT_EQ(p.exp_bias, (a.m - 1) + (b.m - 1) + 2);
        }
    }
}

TEST(GemmPlan, BfpSideUsesBlockConstantShift)
{
    const QuantPlan mx = make_quant_plan(core::mx9());
    const QuantPlan bfp = make_quant_plan(core::msfp16());
    ASSERT_TRUE(gemm::gemm_compatible(mx, bfp));
    const gemm::GemmPlan p = gemm::make_gemm_plan(mx, bfp);
    EXPECT_EQ(p.g, 2);       // governed by the MX side's k2
    EXPECT_EQ(p.budget, 1);  // only the MX side shifts
}

TEST(GemmPlan, MismatchedK1AndWideMantissaRejected)
{
    const QuantPlan a = make_quant_plan(core::mx9());
    const QuantPlan b32 = make_quant_plan(core::mx_custom(7, 8, 32, 1, 2));
    EXPECT_FALSE(gemm::gemm_compatible(a, b32));
    EXPECT_THROW(gemm::make_gemm_plan(a, b32), ArgumentError);

    const QuantPlan wide = make_quant_plan(core::bfp_custom(23, 8, 16));
    EXPECT_FALSE(gemm::operand_eligible(wide));
    EXPECT_FALSE(gemm::gemm_compatible(a, wide));
}

// ---------------------------------------------------------------------------
// PackedOperand: the decoded view equals the quantize-time encodings
// and exposes per-row stream offsets.
// ---------------------------------------------------------------------------

TEST(PackedOperand, DecodeEqualsQuantizeAndRowOffsetsAreUniform)
{
    stats::Rng rng(103);
    for (const auto& fmt : mx_formats()) {
        for (std::int64_t cols : {48, 19}) {
            Tensor w = spread_randn(5, cols, rng);
            nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);
            ASSERT_TRUE(f.gemm_operand().has_value()) << fmt.name;
            const gemm::PackedOperand& dec = *f.gemm_operand();

            const QuantPlan plan = make_quant_plan(fmt);
            core::Rounder rounder;
            const gemm::PackedOperand enc = gemm::PackedOperand::quantize(
                plan, w.data(), 5, static_cast<std::size_t>(cols),
                rounder);

            ASSERT_EQ(dec.rows(), enc.rows());
            ASSERT_EQ(dec.cols(), enc.cols());
            for (std::size_t r = 0; r < dec.rows(); ++r) {
                for (std::size_t c = 0; c < dec.cols(); ++c)
                    EXPECT_EQ(dec.row_mantissa(r)[c], enc.row_mantissa(r)[c])
                        << fmt.name << " [" << r << "," << c << "]";
                for (std::size_t s = 0; s < dec.subs_per_row(); ++s)
                    EXPECT_EQ(dec.row_tau(r)[s], enc.row_tau(r)[s]);
                for (std::size_t b = 0; b < dec.blocks_per_row(); ++b)
                    EXPECT_EQ(dec.row_exp(r)[b], enc.row_exp(r)[b]);
                EXPECT_EQ(dec.row_bit_offset(r),
                          r * gemm::row_bits(plan,
                                             static_cast<std::size_t>(
                                                 cols)));
            }
            // The view is an integer artifact: smaller than the FP32
            // tensor it replaces.
            EXPECT_LT(dec.memory_bytes(),
                      static_cast<std::size_t>(w.numel()) * sizeof(float));
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel semantics: dequantized-reference agreement, QSNR floors, and
// scalar/AVX2 bit-identity.
// ---------------------------------------------------------------------------

namespace {

struct GemmCase
{
    std::int64_t m, k, n;
};

const GemmCase kCases[] = {{1, 16, 1},  {4, 19, 6},   {8, 64, 16},
                           {5, 35, 9},  {16, 128, 24}, {3, 256, 7}};

/** Per-format QSNR floor of a packed GEMM against the FP32 oracle on
 *  Gaussian operands — dominated by the quantization error of the two
 *  operands (measured ~43/~25/~13 dB), pinned with generous margin so
 *  only a real execution bug can trip it. */
double
qsnr_floor(const core::BdrFormat& fmt)
{
    if (fmt.name == "MX9")
        return 35.0;
    if (fmt.name == "MX6")
        return 18.0;
    return 8.0; // MX4
}

} // namespace

TEST(PackedGemm, MatchesDequantizedReference)
{
    stats::Rng rng(104);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            for (const GemmCase& cs : kCases) {
                Tensor x = spread_randn(cs.m, cs.k, rng);
                Tensor w = spread_randn(cs.n, cs.k, rng);
                const QuantPlan plan = make_quant_plan(fmt);
                nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);
                Tensor got =
                    gemm::matmul_nt_packed(x, plan, *f.gemm_operand());

                // Dequantized reference: the same operands through the
                // fake-quant FP32 path.  The packed path accumulates
                // across blocks in FP32 where the reference uses FP64,
                // so agreement is to float-accumulation tolerance.
                Tensor ref = tensor::matmul_nt(nn::quantize_rows(x, fmt),
                                               f.values());
                EXPECT_LE(tensor::max_abs_diff(got, ref),
                          1e-5 * std::max(max_abs(ref), 1e-20))
                    << fmt.name << " [" << cs.m << "," << cs.k << ","
                    << cs.n << "] leg=" << leg;
            }
        }
    });
}

TEST(PackedGemm, QsnrAgainstFp32OracleClearsPinnedFloor)
{
    stats::Rng rng(113);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            const QuantPlan plan = make_quant_plan(fmt);
            double sig = 0.0, noise = 0.0;
            for (std::int64_t k : {16, 64, 256}) {
                Tensor x = Tensor::randn({8, k}, rng, 1.0f);
                Tensor w = Tensor::randn({16, k}, rng, 0.3f);
                nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);
                Tensor got =
                    gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
                Tensor oracle = matmul_nt_reference(x, w);
                for (std::int64_t i = 0; i < oracle.numel(); ++i) {
                    const double r = oracle.data()[i];
                    const double d =
                        r - static_cast<double>(got.data()[i]);
                    sig += r * r;
                    noise += d * d;
                }
            }
            const double db = 10.0 * std::log10(sig / noise);
            EXPECT_GE(db, qsnr_floor(fmt))
                << fmt.name << " leg=" << leg;
        }
    });
}

TEST(PackedGemm, ScalarAndAvx2BitIdentical)
{
    if (gemm::avx2_gemm_kernel() == nullptr ||
        !core::kernels::avx2_supported())
        GTEST_SKIP() << "no AVX2 on this host/build";
    stats::Rng rng(105);
    for (const auto& fa : mx_formats()) {
        for (const auto& fb : mx_formats()) {
            for (const GemmCase& cs : kCases) {
                Tensor x = spread_randn(cs.m, cs.k, rng);
                Tensor w = spread_randn(cs.n, cs.k, rng);
                const QuantPlan pa = make_quant_plan(fa);
                const QuantPlan pb = make_quant_plan(fb);
                core::Rounder rounder;
                const auto a = gemm::PackedOperand::quantize(
                    pa, x.data(), static_cast<std::size_t>(cs.m),
                    static_cast<std::size_t>(cs.k), rounder);
                const auto b = gemm::PackedOperand::quantize(
                    pb, w.data(), static_cast<std::size_t>(cs.n),
                    static_cast<std::size_t>(cs.k), rounder);
                const gemm::GemmPlan plan = gemm::make_gemm_plan(pa, pb);
                Tensor cs_out({cs.m, cs.n}), cv_out({cs.m, cs.n});
                gemm::scalar_gemm_kernel().gemm(plan, a, b, cs_out.data());
                gemm::avx2_gemm_kernel()->gemm(plan, a, b, cv_out.data());
                EXPECT_EQ(tensor::max_abs_diff(cs_out, cv_out), 0.0)
                    << fa.name << " x " << fb.name << " [" << cs.m << ","
                    << cs.k << "," << cs.n << "]";
            }
        }
    }
}

TEST(PackedGemm, DispatchLegsProduceIdenticalResults)
{
    stats::Rng rng(106);
    for (const auto& fmt : mx_formats()) {
        Tensor x = spread_randn(6, 67, rng); // ragged tail
        Tensor w = spread_randn(9, 67, rng);
        const QuantPlan plan = make_quant_plan(fmt);
        nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);
        core::kernels::set_force_scalar(false);
        Tensor deflt = gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
        core::kernels::set_force_scalar(true);
        Tensor scalar = gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
        core::kernels::set_force_scalar(false);
        EXPECT_EQ(tensor::max_abs_diff(deflt, scalar), 0.0) << fmt.name;
    }
}

TEST(PackedGemm, MixedWeightActivationFormats)
{
    // Table IV (w, a) splits: weights MX4, activations MX9.
    stats::Rng rng(107);
    Tensor x = spread_randn(5, 48, rng);
    Tensor w = spread_randn(7, 48, rng);
    const QuantPlan pa = make_quant_plan(core::mx9());
    nn::FrozenTensor f = nn::FrozenTensor::build(w, core::mx4());
    Tensor got = gemm::matmul_nt_packed(x, pa, *f.gemm_operand());
    Tensor ref = tensor::matmul_nt(nn::quantize_rows(x, core::mx9()),
                                   f.values());
    EXPECT_LE(tensor::max_abs_diff(got, ref),
              1e-5 * std::max(max_abs(ref), 1e-20));
}

TEST(PackedGemm, DeterministicAcrossRepeatedCalls)
{
    stats::Rng rng(108);
    Tensor x = spread_randn(4, 35, rng);
    Tensor w = spread_randn(6, 35, rng);
    const QuantPlan plan = make_quant_plan(core::mx9());
    nn::FrozenTensor f = nn::FrozenTensor::build(w, core::mx9());
    Tensor first = gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
    for (int i = 0; i < 3; ++i) {
        Tensor again = gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
        EXPECT_EQ(tensor::max_abs_diff(first, again), 0.0);
    }
}

// ---------------------------------------------------------------------------
// The serving path: frozen layers route through mx_gemm and need no
// dequantized FP32 weight copy.
// ---------------------------------------------------------------------------

namespace {

/** Pin a routing mode for one test body, restoring Auto. */
class ScopedMode
{
  public:
    explicit ScopedMode(gemm::Mode m) { gemm::set_mode(m); }
    ~ScopedMode() { gemm::set_mode(gemm::Mode::Auto); }
};

} // namespace

TEST(FrozenGemmRouting, AutoRoutesByProfitabilityAndNecessity)
{
    // Auto policy: packed exactly when the AVX2 gemm kernel is active
    // (profitable) or the layer has no FP32 values left (required).
    ScopedMode mode(gemm::Mode::Auto);
    stats::Rng rng(114);
    nn::Linear layer(32, 8, nn::QuantSpec::forward_only(core::mx9()),
                     rng);
    Tensor x = Tensor::randn({4, 32}, rng);
    layer.freeze();

    core::kernels::set_force_scalar(true);
    EXPECT_FALSE(gemm::packed_profitable());
    std::uint64_t before = gemm::call_count();
    layer.forward(x, false);
    EXPECT_EQ(gemm::call_count(), before)
        << "Auto must serve on the values path when only the scalar "
           "gemm kernel is available";
    layer.drop_frozen_values();
    before = gemm::call_count();
    layer.forward(x, false);
    EXPECT_GT(gemm::call_count(), before)
        << "Auto must take the packed path once the values are gone";
    core::kernels::set_force_scalar(false);

    // With the pin released the dispatch re-resolves from the
    // environment; when that lands on AVX2 the packed path engages on
    // profitability alone (values are already gone here, so re-freeze
    // to get the FP32 fallback back first).
    layer.freeze();
    if (gemm::packed_profitable()) {
        before = gemm::call_count();
        layer.forward(x, false);
        EXPECT_GT(gemm::call_count(), before);
    }
}

TEST(FrozenGemmRouting, LinearTakesPackedPathAndSurvivesDropValues)
{
    ScopedMode mode(gemm::Mode::On);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            for (std::int64_t in : {32, 19}) {
                stats::Rng rng(109);
                nn::Linear layer(in, 8, nn::QuantSpec::forward_only(fmt),
                                 rng);
                Tensor x = Tensor::randn({4, in}, rng, 2.0f);
                Tensor fake = layer.forward(x, false);
                layer.freeze();

                const std::uint64_t before = gemm::call_count();
                Tensor frozen = layer.forward(x, false);
                EXPECT_GT(gemm::call_count(), before)
                    << "frozen forward did not route through mx_gemm ("
                    << fmt.name << " leg=" << leg << ")";
                EXPECT_LE(tensor::max_abs_diff(fake, frozen),
                          1e-5 * std::max(max_abs(fake), 1e-20))
                    << fmt.name << " in=" << in << " leg=" << leg;

                // Drop the FP32 grid tensor: the packed artifact is now
                // the only weight container, and serving still works,
                // bit-identically to the pre-drop packed forward.
                layer.drop_frozen_values();
                EXPECT_EQ(layer.frozen_weight().values().numel(), 0);
                ASSERT_TRUE(layer.frozen());
                Tensor after = layer.forward(x, false);
                EXPECT_EQ(tensor::max_abs_diff(frozen, after), 0.0);

                // Disabling the packed path with no values left must
                // fail loudly, not silently dequantize.
                gemm::set_mode(gemm::Mode::Off);
                EXPECT_THROW(layer.forward(x, false), ArgumentError);
                gemm::set_mode(gemm::Mode::On);
            }
        }
    });
}

TEST(FrozenGemmRouting, LegacyPathStillBitIdenticalWhenDisabled)
{
    ScopedMode mode(gemm::Mode::Off);
    for (const auto& fmt : mx_formats()) {
        stats::Rng rng(110);
        nn::Linear layer(48, 8, nn::QuantSpec::forward_only(fmt), rng);
        Tensor x = Tensor::randn({4, 48}, rng, 2.0f);
        Tensor fake = layer.forward(x, false);
        layer.freeze();
        const std::uint64_t before = gemm::call_count();
        Tensor frozen = layer.forward(x, false);
        EXPECT_EQ(gemm::call_count(), before) << "MX_GEMM=0 not honoured";
        EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0) << fmt.name;
    }
}

TEST(FrozenGemmRouting, AttentionProjectionsRideThePackedPath)
{
    ScopedMode mode(gemm::Mode::On);
    for_each_dispatch([&](const char* leg) {
        stats::Rng rng(111);
        nn::MultiHeadAttention attn(32, 2, 8, /*causal=*/true,
                                    nn::QuantSpec::forward_only(
                                        core::mx9()),
                                    rng);
        Tensor x = Tensor::randn({2 * 8, 32}, rng);
        Tensor fake = attn.forward(x, false);
        attn.freeze();
        const std::uint64_t before = gemm::call_count();
        Tensor frozen = attn.forward(x, false);
        // All four projections (Q, K, V, O) run packed.
        EXPECT_GE(gemm::call_count(), before + 4) << "leg=" << leg;
        EXPECT_LE(tensor::max_abs_diff(fake, frozen),
                  1e-5 * std::max(max_abs(fake), 1e-20))
            << "leg=" << leg;
    });
}

TEST(FrozenGemmRouting, NonPackableFormatsFallBackToValues)
{
    // FP8 weights have no pow2-block packed artifact: the frozen path
    // must serve on the grid values, not through mx_gemm.
    stats::Rng rng(112);
    nn::Linear layer(32, 8,
                     nn::QuantSpec::forward_only(core::fp8_e4m3()), rng);
    Tensor x = Tensor::randn({4, 32}, rng);
    Tensor fake = layer.forward(x, false);
    layer.freeze();
    EXPECT_FALSE(layer.frozen_weight().gemm_operand().has_value());
    const std::uint64_t before = gemm::call_count();
    Tensor frozen = layer.forward(x, false);
    EXPECT_EQ(gemm::call_count(), before);
    EXPECT_EQ(tensor::max_abs_diff(fake, frozen), 0.0);
    EXPECT_THROW(layer.drop_frozen_values(), ArgumentError);
}

TEST(FrozenGemmRouting, DropValuesRejectedWhenActivationsCannotPair)
{
    // A weights-only quantization spec (FP32 activations over packed
    // MX9 weights) produces a gemm view, but the packed path can never
    // engage without a pow2-block activation format — dropping the
    // grid tensor would brick the layer, so it must be rejected.
    stats::Rng rng(115);
    nn::QuantSpec spec;
    spec.weight_forward = core::mx9();
    nn::Linear layer(32, 8, spec, rng);
    Tensor x = Tensor::randn({4, 32}, rng);
    layer.freeze();
    ASSERT_TRUE(layer.frozen_weight().gemm_operand().has_value());
    EXPECT_THROW(layer.drop_frozen_values(), ArgumentError);
    // And the layer still serves on the values path afterwards.
    layer.forward(x, false);
}

// ---------------------------------------------------------------------------
// Activation-activation GEMM (the Q K^T / P V legs) and the byte-aligned
// row streams behind the native MX K/V cache.
// ---------------------------------------------------------------------------

TEST(PackedActAct, SingleBlockNtLegBitMatchesFakeQuant)
{
    // K <= k1 means one block pair per output element: the block's
    // grid products share one scale, so both paths hold the exact sum
    // in double and round to float exactly once.  The packed act-act
    // contraction must therefore equal the fake-quant reference
    // bit-for-bit — this is the exactness the native K/V cache's
    // warm==cold pins stand on (head_dim and decode windows are
    // single-block in every miniature).
    stats::Rng rng(120);
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            for (std::int64_t k : {16, 11}) {
                Tensor x = spread_randn(3, k, rng);
                Tensor y = spread_randn(5, k, rng);
                const QuantPlan plan = make_quant_plan(fmt);
                Tensor got = gemm::matmul_nt_packed2(x, plan, y, plan);
                Tensor ref = nn::qmatmul_nt(x, y, fmt);
                EXPECT_EQ(tensor::max_abs_diff(got, ref), 0.0)
                    << fmt.name << " k=" << k << " leg=" << leg;
            }
        }
    });
}

TEST(PackedActAct, MultiBlockNtLegMatchesDequantizedReference)
{
    // Across blocks the packed path accumulates in FP32 where the
    // reference uses FP64, so the contract widens to float-accumulation
    // tolerance — but the two dispatch legs must still agree exactly.
    stats::Rng rng(121);
    for (const auto& fmt : mx_formats()) {
        for (std::int64_t k : {48, 35}) {
            Tensor x = spread_randn(5, k, rng);
            Tensor y = spread_randn(7, k, rng);
            const QuantPlan plan = make_quant_plan(fmt);
            core::kernels::set_force_scalar(false);
            Tensor deflt = gemm::matmul_nt_packed2(x, plan, y, plan);
            core::kernels::set_force_scalar(true);
            Tensor scalar = gemm::matmul_nt_packed2(x, plan, y, plan);
            core::kernels::set_force_scalar(false);
            EXPECT_EQ(tensor::max_abs_diff(deflt, scalar), 0.0)
                << fmt.name << " k=" << k;
            Tensor ref = tensor::matmul_nt(nn::quantize_rows(x, fmt),
                                           nn::quantize_rows(y, fmt));
            EXPECT_LE(tensor::max_abs_diff(deflt, ref),
                      1e-5 * std::max(max_abs(ref), 1e-20))
                << fmt.name << " k=" << k;
        }
    }
}

TEST(PackedActAct, NnLegBitMatchesNtOnEquivalentOperands)
{
    // The NN kernel leg consumes B as one packed chunk per k1-block
    // (how P V reads the native V cache).  Block quantization is
    // self-contained per k1 block, so quantizing each contraction
    // slice separately yields the same encodings as slicing a full
    // quantization — the NN result must equal the NT result
    // bit-for-bit, ragged tail chunks and nonzero row_off included.
    stats::Rng rng(122);
    constexpr std::size_t k1 = 16;
    for_each_dispatch([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            for (std::int64_t k : {16, 48, 40}) {
                const std::int64_t m = 4, n = 6, pad = 3;
                Tensor x = spread_randn(m, k, rng);
                Tensor b = spread_randn(n, k, rng);
                const QuantPlan plan = make_quant_plan(fmt);
                core::Rounder rounder;
                const auto aop = gemm::PackedOperand::quantize(
                    plan, x.data(), static_cast<std::size_t>(m),
                    static_cast<std::size_t>(k), rounder);
                const auto bop = gemm::PackedOperand::quantize(
                    plan, b.data(), static_cast<std::size_t>(n),
                    static_cast<std::size_t>(k), rounder);
                const gemm::GemmPlan gp =
                    gemm::make_gemm_plan(plan, plan);
                Tensor nt = gemm::matmul_nt_prequant(gp, aop, bop);

                // One chunk per k1-block: rows run along output
                // columns, cols are the contraction slice.  Chunks are
                // embedded at row_off = pad inside taller operands to
                // pin the offset plumbing (a V slab serves every head
                // through its row_off).
                const std::size_t nblocks =
                    (static_cast<std::size_t>(k) + k1 - 1) / k1;
                std::vector<gemm::PackedOperand> chunks(nblocks);
                for (std::size_t kb = 0; kb < nblocks; ++kb) {
                    const std::size_t w = std::min(
                        k1, static_cast<std::size_t>(k) - kb * k1);
                    Tensor slab({pad + n, static_cast<std::int64_t>(w)});
                    for (std::int64_t r = 0; r < pad + n; ++r)
                        for (std::size_t c = 0; c < w; ++c)
                            slab.data()[r * static_cast<std::int64_t>(w) +
                                        static_cast<std::int64_t>(c)] =
                                r < pad ? static_cast<float>(r + 1)
                                        : b.data()[(r - pad) * k +
                                                   static_cast<
                                                       std::int64_t>(
                                                       kb * k1 + c)];
                    chunks[kb] = gemm::PackedOperand::quantize(
                        plan, slab.data(),
                        static_cast<std::size_t>(pad + n), w, rounder);
                }
                std::vector<gemm::NnBlockRef> refs;
                for (const auto& c : chunks)
                    refs.push_back({&c, static_cast<std::size_t>(pad)});
                Tensor nn_out = gemm::matmul_nn_packed(
                    gp, aop, refs, static_cast<std::size_t>(n));
                EXPECT_EQ(tensor::max_abs_diff(nn_out, nt), 0.0)
                    << fmt.name << " k=" << k << " leg=" << leg;
            }
        }
    });
}

TEST(PackedOperand, AlignedRowStreamAppendsAndDecodesExactly)
{
    // The native K/V cache's storage form: appending rows in two calls
    // must produce the same byte stream as one call (append is a pure
    // memcpy at byte-aligned offsets), and decode_rows must recover
    // the exact execution view PackedOperand::quantize builds.
    stats::Rng rng(123);
    for (const auto& fmt : mx_formats()) {
        for (std::int64_t cols : {16, 19, 48}) {
            const std::size_t rows = 5, ucols =
                static_cast<std::size_t>(cols);
            Tensor x = spread_randn(static_cast<std::int64_t>(rows),
                                    cols, rng);
            const QuantPlan plan = make_quant_plan(fmt);
            core::Rounder rounder;
            std::vector<std::uint8_t> one, two;
            gemm::pack_rows_aligned(plan, x.data(), rows, ucols, rounder,
                                    one);
            gemm::pack_rows_aligned(plan, x.data(), 3, ucols, rounder,
                                    two);
            gemm::pack_rows_aligned(plan, x.data() + 3 * cols, rows - 3,
                                    ucols, rounder, two);
            EXPECT_EQ(one, two) << fmt.name << " cols=" << cols;
            EXPECT_EQ(one.size(),
                      rows * gemm::row_stream_bytes(plan, ucols));

            const gemm::PackedOperand dec =
                gemm::PackedOperand::decode_rows(plan, one, rows, ucols);
            const gemm::PackedOperand enc = gemm::PackedOperand::quantize(
                plan, x.data(), rows, ucols, rounder);
            ASSERT_EQ(dec.rows(), enc.rows());
            ASSERT_EQ(dec.cols(), enc.cols());
            for (std::size_t r = 0; r < rows; ++r) {
                for (std::size_t c = 0; c < ucols; ++c)
                    EXPECT_EQ(dec.row_mantissa(r)[c],
                              enc.row_mantissa(r)[c])
                        << fmt.name << " [" << r << "," << c << "]";
                for (std::size_t s = 0; s < dec.subs_per_row(); ++s)
                    EXPECT_EQ(dec.row_tau(r)[s], enc.row_tau(r)[s]);
                for (std::size_t b = 0; b < dec.blocks_per_row(); ++b)
                    EXPECT_EQ(dec.row_exp(r)[b], enc.row_exp(r)[b]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked + threaded execution: the output-tile grid is fixed by shape
// alone, so every entry point is bit-identical for any MX_GEMM_THREADS
// and any SIMD leg — and the serial tile walk equals the old streaming
// order by the exact-roundtrip argument in packed_gemm.h.
// ---------------------------------------------------------------------------

namespace {

/** Pin a GEMM lane count for one scope; re-resolve from env after. */
class ScopedGemmThreads
{
  public:
    explicit ScopedGemmThreads(std::size_t t)
    {
        gemm::set_gemm_threads(t);
    }
    ~ScopedGemmThreads() { gemm::set_gemm_threads(0); }
};

/** Run @p body once per SIMD level this host/build can execute,
 *  pinned via the dispatch test hook; restores the env resolution. */
template <typename Fn>
void
for_each_simd_level(Fn&& body)
{
    namespace ck = core::kernels;
    ck::set_simd_level(ck::SimdLevel::Scalar);
    body("scalar");
    if (ck::avx2_supported()) {
        ck::set_simd_level(ck::SimdLevel::Avx2);
        body("avx2");
    }
    if (ck::avx512_supported()) {
        ck::set_simd_level(ck::SimdLevel::Avx512);
        body("avx512");
    }
    ck::reset_simd_level();
}

/** Shapes that cross the tile grid: rows past kTileRowsA = 64, cols
 *  past kTileRowsB = 32, ragged contraction tails, exact boundaries. */
const GemmCase kTiledCases[] = {{70, 67, 70},
                                {64, 48, 32},
                                {9, 256, 33},
                                {65, 80, 4}};

} // namespace

TEST(PackedGemmThreading, NtEntryPointsBitIdenticalAcrossThreadCounts)
{
    stats::Rng rng(130);
    for_each_simd_level([&](const char* leg) {
        for (const auto& fmt : {core::mx9(), core::mx4()}) {
            for (const GemmCase& cs : kTiledCases) {
                Tensor x = spread_randn(cs.m, cs.k, rng);
                Tensor w = spread_randn(cs.n, cs.k, rng);
                const QuantPlan plan = make_quant_plan(fmt);
                nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);
                Tensor base_nt, base_aa;
                {
                    ScopedGemmThreads serial(1);
                    base_nt = gemm::matmul_nt_packed(x, plan,
                                                     *f.gemm_operand());
                    base_aa = gemm::matmul_nt_packed2(x, plan, w, plan);
                }
                for (std::size_t t : {std::size_t{2}, std::size_t{7}}) {
                    ScopedGemmThreads threads(t);
                    Tensor nt = gemm::matmul_nt_packed(x, plan,
                                                       *f.gemm_operand());
                    Tensor aa = gemm::matmul_nt_packed2(x, plan, w, plan);
                    EXPECT_EQ(tensor::max_abs_diff(nt, base_nt), 0.0)
                        << fmt.name << " [" << cs.m << "," << cs.k << ","
                        << cs.n << "] t=" << t << " leg=" << leg;
                    EXPECT_EQ(tensor::max_abs_diff(aa, base_aa), 0.0)
                        << fmt.name << " [" << cs.m << "," << cs.k << ","
                        << cs.n << "] t=" << t << " leg=" << leg;
                }
                // The kernel's own serial tile walk (the direct-call
                // convenience wrapper) agrees with the threaded driver.
                core::Rounder rounder;
                const auto a = gemm::PackedOperand::quantize(
                    plan, x.data(), static_cast<std::size_t>(cs.m),
                    static_cast<std::size_t>(cs.k), rounder);
                const auto b = gemm::PackedOperand::quantize(
                    plan, w.data(), static_cast<std::size_t>(cs.n),
                    static_cast<std::size_t>(cs.k), rounder);
                const gemm::GemmPlan gp = gemm::make_gemm_plan(plan, plan);
                Tensor direct({cs.m, cs.n});
                gemm::active_gemm_kernel().gemm(gp, a, b, direct.data());
                EXPECT_EQ(tensor::max_abs_diff(direct, base_aa), 0.0)
                    << fmt.name << " [" << cs.m << "," << cs.k << ","
                    << cs.n << "] leg=" << leg;
            }
        }
    });
}

TEST(PackedGemmThreading, NnLegBitIdenticalAcrossThreadCounts)
{
    // One chunk per k1-block with a nonzero row_off, n past the tile
    // width so the j grid really shards (the decode P V shape).
    stats::Rng rng(131);
    constexpr std::size_t k1 = 16;
    const std::int64_t m = 5, n = 70, k = 48, pad = 2;
    for_each_simd_level([&](const char* leg) {
        for (const auto& fmt : mx_formats()) {
            Tensor x = spread_randn(m, k, rng);
            Tensor b = spread_randn(n, k, rng);
            const QuantPlan plan = make_quant_plan(fmt);
            core::Rounder rounder;
            const auto aop = gemm::PackedOperand::quantize(
                plan, x.data(), static_cast<std::size_t>(m),
                static_cast<std::size_t>(k), rounder);
            const gemm::GemmPlan gp = gemm::make_gemm_plan(plan, plan);
            const std::size_t nblocks =
                (static_cast<std::size_t>(k) + k1 - 1) / k1;
            std::vector<gemm::PackedOperand> chunks(nblocks);
            for (std::size_t kb = 0; kb < nblocks; ++kb) {
                const std::size_t w =
                    std::min(k1, static_cast<std::size_t>(k) - kb * k1);
                Tensor slab({pad + n, static_cast<std::int64_t>(w)});
                for (std::int64_t r = 0; r < pad + n; ++r)
                    for (std::size_t c = 0; c < w; ++c)
                        slab.data()[r * static_cast<std::int64_t>(w) +
                                    static_cast<std::int64_t>(c)] =
                            r < pad ? static_cast<float>(r + 1)
                                    : b.data()[(r - pad) * k +
                                               static_cast<std::int64_t>(
                                                   kb * k1 + c)];
                chunks[kb] = gemm::PackedOperand::quantize(
                    plan, slab.data(), static_cast<std::size_t>(pad + n),
                    w, rounder);
            }
            std::vector<gemm::NnBlockRef> refs;
            for (const auto& c : chunks)
                refs.push_back({&c, static_cast<std::size_t>(pad)});
            Tensor base;
            {
                ScopedGemmThreads serial(1);
                base = gemm::matmul_nn_packed(
                    gp, aop, refs, static_cast<std::size_t>(n));
            }
            for (std::size_t t : {std::size_t{2}, std::size_t{7}}) {
                ScopedGemmThreads threads(t);
                Tensor got = gemm::matmul_nn_packed(
                    gp, aop, refs, static_cast<std::size_t>(n));
                EXPECT_EQ(tensor::max_abs_diff(got, base), 0.0)
                    << fmt.name << " t=" << t << " leg=" << leg;
            }
        }
    });
}

TEST(PackedGemmThreading, EnvKnobResolvesAndClamps)
{
    ::setenv("MX_GEMM_THREADS", "7", 1);
    gemm::set_gemm_threads(0); // drop the cache, re-resolve
    EXPECT_EQ(gemm::gemm_threads(), 7u);
    // 0 is numeric nonsense for a lane count: the shared knob parser
    // clamps to the floor of 1 (serial) instead of silently falling
    // back to full pool fan-out — the opposite of what was asked.
    ::setenv("MX_GEMM_THREADS", "0", 1);
    gemm::set_gemm_threads(0);
    EXPECT_EQ(gemm::gemm_threads(), 1u);
    ::unsetenv("MX_GEMM_THREADS");
    gemm::set_gemm_threads(0);
    EXPECT_EQ(gemm::gemm_threads(),
              core::ThreadPool::default_thread_count());
    gemm::set_gemm_threads(5); // runtime override wins over env
    EXPECT_EQ(gemm::gemm_threads(), 5u);
    gemm::set_gemm_threads(0);
}

// ---------------------------------------------------------------------------
// The AVX-512/VNNI leg: bit-identical to the scalar reference wherever
// the host can run it; auto-skip (not fail) elsewhere.
// ---------------------------------------------------------------------------

TEST(PackedGemmAvx512, ScalarAndAvx512BitIdentical)
{
    if (gemm::avx512_gemm_kernel() == nullptr ||
        !core::kernels::avx512_supported())
        GTEST_SKIP() << "no AVX-512/VNNI on this host/build";
    stats::Rng rng(132);
    for (const auto& fa : mx_formats()) {
        for (const auto& fb : mx_formats()) {
            for (const GemmCase& cs : kCases) {
                Tensor x = spread_randn(cs.m, cs.k, rng);
                Tensor w = spread_randn(cs.n, cs.k, rng);
                const QuantPlan pa = make_quant_plan(fa);
                const QuantPlan pb = make_quant_plan(fb);
                core::Rounder rounder;
                const auto a = gemm::PackedOperand::quantize(
                    pa, x.data(), static_cast<std::size_t>(cs.m),
                    static_cast<std::size_t>(cs.k), rounder);
                const auto b = gemm::PackedOperand::quantize(
                    pb, w.data(), static_cast<std::size_t>(cs.n),
                    static_cast<std::size_t>(cs.k), rounder);
                const gemm::GemmPlan plan = gemm::make_gemm_plan(pa, pb);
                Tensor cs_out({cs.m, cs.n}), cv_out({cs.m, cs.n});
                gemm::scalar_gemm_kernel().gemm(plan, a, b,
                                                cs_out.data());
                gemm::avx512_gemm_kernel()->gemm(plan, a, b,
                                                 cv_out.data());
                EXPECT_EQ(tensor::max_abs_diff(cs_out, cv_out), 0.0)
                    << fa.name << " x " << fb.name << " [" << cs.m << ","
                    << cs.k << "," << cs.n << "]";
            }
        }
    }
}

TEST(PackedGemmAvx512, NnLegBitIdenticalToScalar)
{
    if (gemm::avx512_gemm_kernel() == nullptr ||
        !core::kernels::avx512_supported())
        GTEST_SKIP() << "no AVX-512/VNNI on this host/build";
    // k = 80 gives 5 chunks: two VNNI block pairs + the odd trailing
    // chunk; k = 40 adds the ragged tail chunk behind one pair.
    stats::Rng rng(133);
    constexpr std::size_t k1 = 16;
    for (const auto& fmt : mx_formats()) {
        for (std::int64_t k : {80, 40}) {
            const std::int64_t m = 4, n = 9, pad = 1;
            Tensor x = spread_randn(m, k, rng);
            Tensor b = spread_randn(n, k, rng);
            const QuantPlan plan = make_quant_plan(fmt);
            core::Rounder rounder;
            const auto aop = gemm::PackedOperand::quantize(
                plan, x.data(), static_cast<std::size_t>(m),
                static_cast<std::size_t>(k), rounder);
            const gemm::GemmPlan gp = gemm::make_gemm_plan(plan, plan);
            const std::size_t nblocks =
                (static_cast<std::size_t>(k) + k1 - 1) / k1;
            std::vector<gemm::PackedOperand> chunks(nblocks);
            for (std::size_t kb = 0; kb < nblocks; ++kb) {
                const std::size_t w =
                    std::min(k1, static_cast<std::size_t>(k) - kb * k1);
                Tensor slab({pad + n, static_cast<std::int64_t>(w)});
                for (std::int64_t r = 0; r < pad + n; ++r)
                    for (std::size_t c = 0; c < w; ++c)
                        slab.data()[r * static_cast<std::int64_t>(w) +
                                    static_cast<std::int64_t>(c)] =
                            r < pad ? 2.0f
                                    : b.data()[(r - pad) * k +
                                               static_cast<std::int64_t>(
                                                   kb * k1 + c)];
                chunks[kb] = gemm::PackedOperand::quantize(
                    plan, slab.data(), static_cast<std::size_t>(pad + n),
                    w, rounder);
            }
            std::vector<gemm::NnBlockRef> refs;
            for (const auto& c : chunks)
                refs.push_back({&c, static_cast<std::size_t>(pad)});
            Tensor sc({m, n}), vn({m, n});
            gemm::scalar_gemm_kernel().gemm_nn(
                gp, aop, refs, static_cast<std::size_t>(n), sc.data());
            gemm::avx512_gemm_kernel()->gemm_nn(
                gp, aop, refs, static_cast<std::size_t>(n), vn.data());
            EXPECT_EQ(tensor::max_abs_diff(sc, vn), 0.0)
                << fmt.name << " k=" << k;
        }
    }
}

TEST(KernelDispatch, SimdLevelSelectsTheGemmKernel)
{
    namespace ck = core::kernels;
    ck::set_simd_level(ck::SimdLevel::Scalar);
    EXPECT_STREQ(gemm::active_gemm_kernel().name(), "scalar");
    EXPECT_FALSE(gemm::packed_profitable());
    if (ck::avx2_supported()) {
        ck::set_simd_level(ck::SimdLevel::Avx2);
        EXPECT_STREQ(gemm::active_gemm_kernel().name(), "avx2");
        EXPECT_TRUE(gemm::packed_profitable());
    }
    if (ck::avx512_supported()) {
        ck::set_simd_level(ck::SimdLevel::Avx512);
        EXPECT_STREQ(gemm::active_gemm_kernel().name(), "avx512");
        EXPECT_TRUE(gemm::packed_profitable());
    }
    // The hook caps at the host ceiling: asking for AVX-512 anywhere
    // resolves to a kernel this machine can actually execute.
    ck::set_simd_level(ck::SimdLevel::Avx512);
    const char* capped = gemm::active_gemm_kernel().name();
    EXPECT_TRUE(ck::avx512_supported() ? std::string(capped) == "avx512"
                : ck::avx2_supported() ? std::string(capped) == "avx2"
                                       : std::string(capped) == "scalar");
    ck::reset_simd_level();
    // The legacy pin still works on top of the level machinery.
    ck::set_force_scalar(true);
    EXPECT_STREQ(gemm::active_gemm_kernel().name(), "scalar");
    ck::set_force_scalar(false);
}
