/**
 * @file
 * Engineering microbenchmarks: throughput of the quantizers, the packed
 * codec, the hardware dot-product pipeline, and the quantized matmul.
 * Uses the calibrated run_bench loop from bench_report.h and emits
 * BENCH_perf_quantize.json — the perf baseline that optimization PRs
 * are measured against.
 */

#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "core/kernels/dispatch.h"
#include "core/quantize.h"
#include "formats/block_codec.h"
#include "formats/packed.h"
#include "hw/pipeline.h"
#include "nn/quant.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::core;

namespace {

std::vector<float>
make_data(std::size_t n)
{
    stats::Rng rng(1);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

bench::BenchResult
bm_quantize(const BdrFormat& fmt)
{
    auto x = make_data(4096);
    std::vector<float> out(x.size());
    Quantizer q(fmt, RoundingMode::NearestEven, ScalingPolicy::JustInTime);
    return bench::run_bench(
        [&] {
            q(x, out);
            bench::do_not_optimize(out.data());
        },
        x.size());
}

bench::BenchResult
bm_quantize_kernel(const BdrFormat& fmt, const core::kernels::QuantKernel& k)
{
    auto x = make_data(4096);
    std::vector<float> out(x.size());
    const auto plan = core::kernels::make_quant_plan(fmt);
    Rounder rounder;
    return bench::run_bench(
        [&] {
            k.quantize(plan, x, out, rounder);
            bench::do_not_optimize(out.data());
        },
        x.size());
}

bench::BenchResult
bm_pack(const BdrFormat& fmt)
{
    auto x = make_data(4096);
    return bench::run_bench(
        [&] {
            auto p = formats::pack(fmt, x);
            bench::do_not_optimize(p.bytes.data());
        },
        x.size());
}

bench::BenchResult
bm_fused_quantize_pack(const BdrFormat& fmt)
{
    // The kernel-level fused path behind formats::pack, without the
    // PackedTensor wrapper: quantize straight into the bit stream.
    auto x = make_data(4096);
    const auto plan = core::kernels::make_quant_plan(fmt);
    const auto& k = core::kernels::active_kernel();
    Rounder rounder;
    return bench::run_bench(
        [&] {
            formats::BitWriter w;
            k.quantize_pack(plan, x, rounder, w);
            bench::do_not_optimize(w.bytes().data());
        },
        x.size());
}

bench::BenchResult
bm_unpack(const BdrFormat& fmt)
{
    auto x = make_data(4096);
    auto packed = formats::pack(fmt, x);
    std::vector<float> out;
    return bench::run_bench(
        [&] {
            out = formats::unpack(packed);
            bench::do_not_optimize(out.data());
        },
        x.size());
}

bench::BenchResult
bm_pipeline(const BdrFormat& fmt)
{
    auto a = make_data(64), b = make_data(64);
    hw::DotProductPipeline pipe({fmt, 64, 25});
    return bench::run_bench(
        [&] {
            double v = pipe.dot(a, b);
            bench::do_not_optimize(v);
        },
        64);
}

bench::BenchResult
bm_qmatmul()
{
    stats::Rng rng(2);
    tensor::Tensor a = tensor::Tensor::randn({64, 256}, rng);
    tensor::Tensor b = tensor::Tensor::randn({64, 256}, rng);
    return bench::run_bench(
        [&] {
            auto c = nn::qmatmul_nt(a, b, mx9());
            bench::do_not_optimize(c.data());
        },
        64 * 64 * 256);
}

void
row(bench::Report& report, const std::string& name,
    const bench::BenchResult& r)
{
    std::printf("%-24s %12.1f ns/iter %14.3e items/s (%llu iters)\n",
                name.c_str(), r.ns_per_iter, r.items_per_sec,
                static_cast<unsigned long long>(r.iterations));
    report.bench_result(name, r);
}

} // namespace

int
main()
{
    bench::Report report("perf_quantize");
    bench::banner("Quantizer throughput (4096-element vectors)");
    struct NamedFmt
    {
        const char* label;
        BdrFormat fmt;
    };
    const NamedFmt quant_fmts[] = {
        {"quantize_mx9", mx9()},         {"quantize_mx6", mx6()},
        {"quantize_mx4", mx4()},         {"quantize_msfp16", msfp16()},
        {"quantize_fp8_e4m3", fp8_e4m3()},
        {"quantize_int8", scaled_int(8)}, {"quantize_vsq8", vsq(8, 8)},
    };
    for (const NamedFmt& n : quant_fmts)
        row(report, n.label, bm_quantize(n.fmt));

    bench::banner("Kernel comparison (MX9, via kernels/dispatch.h)");
    std::printf("active kernel: %s\n",
                core::kernels::active_kernel().name());
    row(report, "quantize_mx9_scalar",
        bm_quantize_kernel(mx9(), core::kernels::scalar_kernel()));
    if (core::kernels::avx2_supported())
        row(report, "quantize_mx9_avx2",
            bm_quantize_kernel(mx9(), *core::kernels::avx2_kernel()));

    bench::banner("Packed codec throughput");
    row(report, "pack_mx9", bm_pack(mx9()));
    row(report, "pack_fp8_e4m3", bm_pack(fp8_e4m3()));
    row(report, "fused_quantize_pack_mx9", bm_fused_quantize_pack(mx9()));
    row(report, "fused_quantize_pack_mx4", bm_fused_quantize_pack(mx4()));
    row(report, "unpack_mx9", bm_unpack(mx9()));
    row(report, "unpack_fp8_e4m3", bm_unpack(fp8_e4m3()));

    bench::banner("Dot-product pipeline (r = 64)");
    row(report, "pipeline_mx9", bm_pipeline(mx9()));
    row(report, "pipeline_fp8_e4m3", bm_pipeline(fp8_e4m3()));

    bench::banner("Quantized matmul (64x256 @ 256x64, MX9)");
    row(report, "qmatmul_mx9", bm_qmatmul());

    return report.finish(true);
}
