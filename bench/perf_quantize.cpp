/**
 * @file
 * Engineering microbenchmarks (google-benchmark): throughput of the
 * quantizers, the packed codec, and the pipeline simulator.
 */

#include <benchmark/benchmark.h>

#include "core/quantize.h"
#include "formats/block_codec.h"
#include "hw/pipeline.h"
#include "nn/quant.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::core;

namespace {

std::vector<float>
make_data(std::size_t n)
{
    stats::Rng rng(1);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

void
bm_quantize(benchmark::State& state, const BdrFormat& fmt)
{
    auto x = make_data(4096);
    std::vector<float> out(x.size());
    Quantizer q(fmt, RoundingMode::NearestEven, ScalingPolicy::JustInTime);
    for (auto _ : state) {
        q(x, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(x.size()));
}

void
bm_pack(benchmark::State& state, const BdrFormat& fmt)
{
    auto x = make_data(4096);
    for (auto _ : state) {
        auto p = formats::pack(fmt, x);
        benchmark::DoNotOptimize(p.bytes.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(x.size()));
}

void
bm_pipeline(benchmark::State& state, const BdrFormat& fmt)
{
    auto a = make_data(64), b = make_data(64);
    hw::DotProductPipeline pipe({fmt, 64, 25});
    for (auto _ : state) {
        double v = pipe.dot(a, b);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            64);
}

void
bm_qmatmul(benchmark::State& state)
{
    stats::Rng rng(2);
    tensor::Tensor a = tensor::Tensor::randn({64, 256}, rng);
    tensor::Tensor b = tensor::Tensor::randn({64, 256}, rng);
    for (auto _ : state) {
        auto c = nn::qmatmul_nt(a, b, mx9());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            64 * 64 * 256);
}

} // namespace

BENCHMARK_CAPTURE(bm_quantize, mx9, mx9());
BENCHMARK_CAPTURE(bm_quantize, mx6, mx6());
BENCHMARK_CAPTURE(bm_quantize, mx4, mx4());
BENCHMARK_CAPTURE(bm_quantize, msfp16, msfp16());
BENCHMARK_CAPTURE(bm_quantize, fp8_e4m3, fp8_e4m3());
BENCHMARK_CAPTURE(bm_quantize, int8, scaled_int(8));
BENCHMARK_CAPTURE(bm_quantize, vsq8, vsq(8, 8));
BENCHMARK_CAPTURE(bm_pack, mx9, mx9());
BENCHMARK_CAPTURE(bm_pack, fp8_e4m3, fp8_e4m3());
BENCHMARK_CAPTURE(bm_pipeline, mx9, mx9());
BENCHMARK_CAPTURE(bm_pipeline, fp8_e4m3, fp8_e4m3());
BENCHMARK(bm_qmatmul);

BENCHMARK_MAIN();
