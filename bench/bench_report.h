#pragma once

/**
 * @file
 * Machine-readable reporting for the experiment benches.
 *
 * Every bench binary owns one Report.  While the bench prints its
 * human-readable tables as before, it also records the headline numbers
 * through Report::metric()/throughput()/flag(); Report::finish() then
 * writes `BENCH_<name>.json` (total wall time, every recorded metric,
 * and the REPRODUCED/MISMATCH verdict) into the current directory — or
 * into `$MX_BENCH_OUT_DIR` when set — and returns the process exit
 * code.  `scripts/run_benches.sh` collects these files to track the
 * perf and fidelity trajectory across PRs.
 *
 * The same header provides a dependency-free micro-benchmark runner
 * (run_bench) used by perf_quantize: it calibrates an iteration count
 * to a minimum wall time and reports ns/iteration and elements/second.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_util.h"

namespace mx {
namespace bench {

/** Keeps the compiler from eliding a benchmarked computation. */
template <typename T>
inline void
do_not_optimize(const T& value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "g"(&value) : "memory");
#else
    // Forcing a volatile read of the value keeps it (and the
    // computation feeding it) alive under optimizers without GNU asm.
    const volatile char* p =
        reinterpret_cast<const volatile char*>(&value);
    (void)*p;
#endif
}

/** Result of one micro-benchmark measurement. */
struct BenchResult
{
    double ns_per_iter = 0;      ///< Best-of-reps wall time per iteration.
    double items_per_sec = 0;    ///< Throughput (elements, ops, ...).
    std::uint64_t iterations = 0; ///< Iterations actually timed.
};

namespace detail {

/** Monotonic wall clock in nanoseconds. */
std::uint64_t now_ns();

/** Calibrated timing loop behind run_bench (type-erased). */
BenchResult run_bench_impl(void (*step)(void*), void* ctx,
                           std::size_t items_per_iter, double min_sec);

template <typename Fn>
void
invoke_thunk(void* ctx)
{
    (*static_cast<Fn*>(ctx))();
}

} // namespace detail

/**
 * Time `fn` (a nullary callable running ONE iteration of the kernel).
 * The runner warms up, calibrates an iteration count so the timed
 * region lasts at least `min_sec` (shrunk in fast mode), repeats the
 * calibrated batch three times, and returns the fastest pass's
 * ns/iteration plus `items_per_iter`-scaled throughput.
 */
template <typename Fn>
BenchResult
run_bench(Fn&& fn, std::size_t items_per_iter, double min_sec = 0.25)
{
    using Decayed = typename std::remove_reference<Fn>::type;
    Decayed& ref = fn;
    return detail::run_bench_impl(&detail::invoke_thunk<Decayed>, &ref,
                                  items_per_iter,
                                  fast_mode() ? min_sec * 0.1 : min_sec);
}

/**
 * Resolve an artifact filename against `$MX_BENCH_OUT_DIR` (falling
 * back to the current directory) — the same convention the JSON
 * reports use, so CSV dumps and reports land together.
 */
std::string output_file(const std::string& filename);

/**
 * Collects named metrics for one bench binary and serializes them to
 * `BENCH_<name>.json` on finish().
 */
class Report
{
public:
    /** Starts the wall clock.  `name` must be filename-safe. */
    explicit Report(std::string name);

    /** Writes the JSON file on destruction if finish() was not called. */
    ~Report();

    Report(const Report&) = delete;
    Report& operator=(const Report&) = delete;

    /**
     * Record a scalar metric (QSNR, accuracy, cost ratio, ...).
     * `name` is slugified to [a-z0-9_] so display labels ("FP8 (E4M3)",
     * "MLP (clusters)") become stable jq/shell-friendly JSON keys.
     */
    void metric(const std::string& name, double value,
                const std::string& unit = "");

    /** Record a micro-benchmark result as <name>_ns_per_iter plus
     *  <name>_items_per_sec. */
    void bench_result(const std::string& name, const BenchResult& r);

    /** Record a boolean claim check (name slugified like metric()). */
    void flag(const std::string& name, bool value);

    /**
     * Record the verdict, stop the wall clock, write the JSON file,
     * and return the process exit code: 0 only when the claim is
     * reproduced AND the report was written (a missing report must
     * not masquerade as a recorded baseline).
     */
    int finish(bool reproduced);

    /** Destination path, for logging: directory honours
     *  $MX_BENCH_OUT_DIR, falling back to the current directory. */
    std::string output_path() const;

private:
    struct Metric
    {
        std::string name;
        double value;
        std::string unit;
    };
    struct Flag
    {
        std::string name;
        bool value;
    };

    bool write_json(bool reproduced, bool has_verdict) const;

    std::string name_;
    std::uint64_t start_ns_;
    std::vector<Metric> metrics_;
    std::vector<Flag> flags_;
    bool finished_ = false;
};

} // namespace bench
} // namespace mx
